#!/usr/bin/env sh
# Runs the checked-in .clang-tidy profile over src/. The offline CI
# container has no clang-tidy, so a missing binary is a skip (exit 0),
# not a failure — lumos_lint covers the repo-specific invariants there.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#   build-dir must contain compile_commands.json; the root CMakeLists sets
#   CMAKE_EXPORT_COMPILE_COMMANDS=ON, so any configured build dir has one.
#   Defaults to build/.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (not an error)."
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON." >&2
  exit 2
fi

status=0
for f in $(find "$repo_root/src" -name '*.cpp' | sort); do
  echo "== $f"
  clang-tidy -p "$build_dir" --quiet "$f" || status=1
done
exit $status

// Call-graph pass: one graph over a set of source files.
//
// Each function definition from the symbol pass becomes a Node. Scanning
// its body token range yields
//
//   * call sites — `name(`, with the explicit qualifier (`FlatForest::
//     flatten(`) or the receiver chain (`tier.regressor.predict(` gives
//     {"tier", "regressor"}) recorded for resolution;
//   * effect sites — banned-by-name operations: heap allocation (new,
//     make_unique/shared, container growth methods, to_string, ...),
//     lock acquisition (scoped_lock/lock_guard/..., .lock()), `throw`,
//     blocking I/O (fopen/ifstream/printf/sleep_for/...), and wall-clock
//     reads (steady_clock/system_clock/...).
//
// Resolution is conservative but type-assisted, in precedence order:
//
//   1. explicit qualifier: defs whose qualified name ends with
//      `Qual::name`; an unmatched qualified call (std::..., macro-like)
//      resolves to nothing;
//   2. receiver chain: the leftmost receiver resolves through local
//      `Type var` declarations, the enclosing class's member hints, then
//      the union of every class's same-named member hint; subsequent
//      elements walk member hints forward. The final type's methods plus
//      those of its base/derived closure (virtual dispatch) match;
//      an unresolvable receiver contributes NO edge (precision over
//      recall — binding `x.predict(` to every predict in the repo would
//      drown the analysis in false paths);
//   3. unqualified free call: same-class methods (incl. base closure)
//      plus free functions of that name anywhere in the file set.
//
// Calls whose line carries `// lumos-lint: allow(hot-path)` are marked
// blessed: the reachability pass does not walk through them.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.h"
#include "symbols.h"

namespace lumos::lint {

enum class EffectKind : std::uint8_t { kAlloc, kLock, kThrow, kIo, kClock };

/// "hot-path-alloc", "hot-path-lock", ... — the rule id for a kind.
[[nodiscard]] const char* effect_rule(EffectKind k);

struct EffectSite {
  EffectKind kind = EffectKind::kAlloc;
  std::string what;  ///< the offending identifier ("push_back", "throw"…)
  std::uint32_t line = 0;
};

struct CallSite {
  std::string name;               ///< callee identifier
  std::string qualifier;          ///< explicit "A::B" prefix, or ""
  std::vector<std::string> recv;  ///< receiver chain, leftmost first
  std::uint32_t line = 0;
  bool blessed = false;  ///< allow(hot-path) on this line: edge not walked
};

/// One lock-acquisition site (`std::scoped_lock lock(mu_, other.mu_);`)
/// with the mutex names it grabs, in argument order.
struct LockSite {
  std::vector<std::string> mutexes;
  std::uint32_t line = 0;
};

/// One range-for over an unordered container whose body accumulates or
/// emits (determinism pass raw material).
struct UnorderedLoop {
  std::string range;  ///< the iterated expression's first identifier
  std::uint32_t line = 0;
};

struct Node {
  FunctionDef def;
  std::string path;  ///< file the definition lives in
  std::vector<CallSite> calls;
  std::vector<EffectSite> effects;
  std::vector<LockSite> locks;
  std::vector<UnorderedLoop> unordered_loops;
  /// Resolved edges: out[k] lists node indices calls[k] may reach.
  std::vector<std::vector<std::size_t>> out;
};

/// Line-level allow directives of one file, as the analysis passes consume
/// them (a directive covers its own line and the next, exactly like
/// scan_file's).
struct AllowSet {
  std::set<std::pair<std::uint32_t, std::string>> lines;
  std::set<std::string> whole_file;

  [[nodiscard]] bool covers(std::uint32_t line, const std::string& id) const {
    return whole_file.count(id) > 0 || lines.count({line, id}) > 0;
  }
};

struct CallGraph {
  std::vector<Node> nodes;
  std::vector<ClassDef> classes;          ///< all files merged
  std::map<std::string, AllowSet> allows;  ///< per path

  /// First node whose qualified name equals `qual`, or npos.
  [[nodiscard]] std::size_t find(const std::string& qual) const;
};

/// Lexes every file, extracts symbols, scans bodies, resolves edges.
[[nodiscard]] CallGraph build_callgraph(const std::vector<SourceFile>& files);

}  // namespace lumos::lint

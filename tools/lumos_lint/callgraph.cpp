#include "callgraph.h"

#include <algorithm>
#include <regex>

namespace lumos::lint {
namespace {

const std::set<std::string>& alloc_calls() {
  // Fire only as `name(`; the *_back/insert family additionally needs a
  // member-access receiver so a same-named free function cannot trip it.
  static const std::set<std::string> kNames = {
      "make_unique", "make_shared", "malloc",       "calloc",
      "realloc",     "strdup",      "to_string",    "push_back",
      "emplace_back", "emplace",    "emplace_front", "push_front",
      "resize",      "reserve",     "insert",       "append",
      "assign",      "substr",      "shrink_to_fit", "free",
  };
  return kNames;
}

bool alloc_needs_receiver(const std::string& name) {
  static const std::set<std::string> kMethods = {
      "push_back", "emplace_back", "emplace", "emplace_front", "push_front",
      "resize",    "reserve",      "insert",  "append",        "assign",
      "substr",    "shrink_to_fit",
  };
  return kMethods.count(name) > 0;
}

const std::set<std::string>& lock_types() {
  static const std::set<std::string> kNames = {"scoped_lock", "lock_guard",
                                               "unique_lock", "shared_lock"};
  return kNames;
}

const std::set<std::string>& lock_calls() {
  static const std::set<std::string> kNames = {"lock", "try_lock",
                                               "lock_shared"};
  return kNames;
}

const std::set<std::string>& clock_idents() {
  static const std::set<std::string> kNames = {
      "steady_clock", "system_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime", "localtime", "gmtime", "mktime"};
  return kNames;
}

const std::set<std::string>& io_idents() {
  static const std::set<std::string> kNames = {
      "ifstream", "ofstream", "fstream", "cin", "cout", "cerr", "clog"};
  return kNames;
}

const std::set<std::string>& io_calls() {
  static const std::set<std::string> kNames = {
      "fopen",  "fclose", "fread",   "fwrite",   "fseek",  "fprintf",
      "fscanf", "printf", "scanf",   "puts",     "fputs",  "fgets",
      "getline", "getchar", "putchar", "perror", "fflush", "system",
      "popen",  "sleep_for", "sleep_until", "usleep", "nanosleep"};
  return kNames;
}

bool not_a_call(const std::string& ident) {
  static const std::set<std::string> kKw = {
      "if",     "for",     "while",  "switch",       "catch",
      "return", "sizeof",  "alignof", "static_assert", "decltype",
      "new",    "delete",  "throw",  "noexcept",     "alignas",
      "assert", "defined",
  };
  return kKw.count(ident) > 0;
}

std::string short_name(const std::string& qual) {
  const std::size_t sep = qual.rfind("::");
  return sep == std::string::npos ? qual : qual.substr(sep + 2);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

struct Registry {
  std::map<std::string, std::vector<std::size_t>> free_by_name;
  /// class short name -> method name -> node indices
  std::map<std::string, std::map<std::string, std::vector<std::size_t>>>
      methods;
  std::map<std::string, std::vector<const ClassDef*>> class_by_short;
  /// member name -> union of type hints across every class
  std::map<std::string, std::set<std::string>> member_union;
  /// member name -> declared-with-unordered-container anywhere
  std::set<std::string> unordered_members;
  /// base short -> derived shorts (one level; closed over in related())
  std::map<std::string, std::set<std::string>> derived;

  /// {T} ∪ bases*(T) ∪ derived*(T) — the virtual-dispatch set.
  std::set<std::string> related(const std::string& t) const {
    std::set<std::string> out{t};
    std::vector<std::string> work{t};
    while (!work.empty()) {
      const std::string cur = work.back();
      work.pop_back();
      const auto ci = class_by_short.find(cur);
      if (ci != class_by_short.end()) {
        for (const ClassDef* cd : ci->second) {
          for (const std::string& b : cd->bases) {
            if (out.insert(b).second) work.push_back(b);
          }
        }
      }
      const auto di = derived.find(cur);
      if (di != derived.end()) {
        for (const std::string& d : di->second) {
          if (out.insert(d).second) work.push_back(d);
        }
      }
    }
    return out;
  }

  /// Type hints for member `m` as seen from any type in `types`.
  std::set<std::string> member_hint(const std::set<std::string>& types,
                                    const std::string& m) const {
    std::set<std::string> out;
    for (const std::string& t : types) {
      for (const std::string& r : related(t)) {
        const auto ci = class_by_short.find(r);
        if (ci == class_by_short.end()) continue;
        for (const ClassDef* cd : ci->second) {
          const auto mi = cd->members.find(m);
          if (mi != cd->members.end()) out.insert(mi->second);
        }
      }
    }
    return out;
  }
};

/// Per-file working state while scanning bodies.
struct FileCtx {
  LexedFile lex;
  FileSymbols syms;
};

AllowSet parse_allows(const LexedFile& lexed) {
  static const std::regex kDirective(
      R"(lumos-lint:[[:space:]]*allow(-file)?\(([A-Za-z0-9_-]+)\))");
  AllowSet out;
  std::uint32_t line = 1;
  std::size_t start = 0;
  const std::string& c = lexed.comments;
  for (std::size_t i = 0; i <= c.size(); ++i) {
    if (i != c.size() && c[i] != '\n') continue;
    const std::string text = c.substr(start, i - start);
    auto begin = std::sregex_iterator(text.begin(), text.end(), kDirective);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string id = (*it)[2].str();
      if ((*it)[1].matched) {
        out.whole_file.insert(id);
      } else {
        out.lines.insert({line, id});
        out.lines.insert({line + 1, id});
      }
    }
    start = i + 1;
    ++line;
  }
  return out;
}

}  // namespace

const char* effect_rule(EffectKind k) {
  switch (k) {
    case EffectKind::kAlloc: return "hot-path-alloc";
    case EffectKind::kLock: return "hot-path-lock";
    case EffectKind::kThrow: return "hot-path-throw";
    case EffectKind::kIo: return "hot-path-io";
    case EffectKind::kClock: return "hot-path-clock";
  }
  return "hot-path-alloc";
}

std::size_t CallGraph::find(const std::string& qual) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].def.qual == qual) return i;
  }
  return static_cast<std::size_t>(-1);
}

CallGraph build_callgraph(const std::vector<SourceFile>& files) {
  CallGraph g;
  std::vector<FileCtx> ctx(files.size());
  for (std::size_t f = 0; f < files.size(); ++f) {
    ctx[f].lex = lex_file(files[f].text);
    ctx[f].syms = extract_symbols(files[f].path, ctx[f].lex);
    g.allows[files[f].path] = parse_allows(ctx[f].lex);
  }

  // ---- registries ---------------------------------------------------------
  Registry reg;
  for (FileCtx& fc : ctx) {
    for (const ClassDef& cd : fc.syms.classes) g.classes.push_back(cd);
  }
  for (const ClassDef& cd : g.classes) {
    reg.class_by_short[cd.name].push_back(&cd);
    for (const std::string& b : cd.bases) reg.derived[b].insert(cd.name);
    for (const auto& [member, hint] : cd.members) {
      reg.member_union[member].insert(hint);
    }
    for (const std::string& m : cd.unordered_members) {
      reg.unordered_members.insert(m);
    }
  }
  for (std::size_t f = 0; f < ctx.size(); ++f) {
    for (const FunctionDef& fn : ctx[f].syms.functions) {
      Node n;
      n.def = fn;
      n.path = files[f].path;
      g.nodes.push_back(std::move(n));
    }
  }
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const FunctionDef& d = g.nodes[i].def;
    if (d.cls.empty()) {
      reg.free_by_name[d.name].push_back(i);
    } else {
      reg.methods[short_name(d.cls)][d.name].push_back(i);
    }
  }

  // ---- body scans ---------------------------------------------------------
  // Local `Type var` hints per node, kept alive for edge resolution below.
  std::vector<std::map<std::string, std::string>> node_hints(g.nodes.size());
  std::size_t node_i = 0;
  for (std::size_t f = 0; f < ctx.size(); ++f) {
    const std::vector<Token>& t = ctx[f].lex.tokens;
    const AllowSet& allows = g.allows[files[f].path];
    const auto is_p = [&](std::size_t i, const char* s) {
      return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == s;
    };
    const auto is_ident = [&](std::size_t i) {
      return i < t.size() && t[i].kind == TokKind::kIdent;
    };

    for (const FunctionDef& fn : ctx[f].syms.functions) {
      const std::size_t node_idx = node_i++;
      Node& node = g.nodes[node_idx];

      // Local type hints: `Type [<...>] [&*]* name` over signature + body.
      std::map<std::string, std::string>& local_hints = node_hints[node_idx];
      std::set<std::string> local_unordered;
      for (std::size_t i = fn.sig_begin; i < fn.body_end; ++i) {
        if (!is_ident(i)) continue;
        const std::string& ty = t[i].text;
        const bool unordered = ty.compare(0, 10, "unordered_") == 0;
        if (reg.class_by_short.find(ty) == reg.class_by_short.end() &&
            !unordered) {
          continue;
        }
        std::size_t j = i + 1;
        if (is_p(j, "<")) {  // skip template arguments
          int angle = 0;
          while (j < fn.body_end) {
            if (is_p(j, "<")) ++angle;
            if (is_p(j, ">") && --angle == 0) {
              ++j;
              break;
            }
            ++j;
          }
        }
        while (is_p(j, "&") || is_p(j, "*")) ++j;
        if (!is_ident(j)) continue;
        const std::string& var = t[j].text;
        if (is_p(j + 1, ";") || is_p(j + 1, "=") || is_p(j + 1, "(") ||
            is_p(j + 1, "{") || is_p(j + 1, ",") || is_p(j + 1, ")") ||
            is_p(j + 1, ":")) {
          if (unordered) {
            local_unordered.insert(var);
          } else {
            local_hints.emplace(var, ty);
          }
        }
      }

      // Calls + effects + locks + unordered loops over the body.
      for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
        if (!is_ident(i)) continue;
        const std::string& w = t[i].text;
        const std::uint32_t line = t[i].line;
        const bool called = is_p(i + 1, "(");
        const bool member_access = i > 0 && (is_p(i - 1, ".") ||
                                             is_p(i - 1, "->"));

        // ---- effects ----
        if (w == "throw") {
          node.effects.push_back({EffectKind::kThrow, "throw", line});
        } else if (w == "new" && !member_access &&
                   !(i > 0 && is_p(i - 1, "::"))) {
          node.effects.push_back({EffectKind::kAlloc, "new", line});
        } else if (called && alloc_calls().count(w) > 0 &&
                   (!alloc_needs_receiver(w) || member_access)) {
          node.effects.push_back({EffectKind::kAlloc, w, line});
        } else if (lock_types().count(w) > 0 ||
                   (called && member_access && lock_calls().count(w) > 0)) {
          node.effects.push_back({EffectKind::kLock, w, line});
        } else if (clock_idents().count(w) > 0) {
          node.effects.push_back({EffectKind::kClock, w, line});
        } else if (io_idents().count(w) > 0 ||
                   (called && io_calls().count(w) > 0)) {
          node.effects.push_back({EffectKind::kIo, w, line});
        }

        // ---- lock sites (mutex names for the lock-order pass) ----
        if (lock_types().count(w) > 0) {
          std::size_t j = i + 1;
          while (j < fn.body_end && is_ident(j)) ++j;  // variable name
          if (is_p(j, "(")) {
            LockSite site;
            site.line = line;
            int depth = 0;
            for (; j < fn.body_end; ++j) {
              if (is_p(j, "(") && ++depth == 1) continue;
              if (is_p(j, ")") && --depth == 0) break;
              if (depth == 1 && is_ident(j) &&
                  (is_p(j + 1, ",") || is_p(j + 1, ")"))) {
                static const std::set<std::string> kTags = {
                    "adopt_lock", "defer_lock", "try_to_lock"};
                if (kTags.count(t[j].text) == 0 &&
                    !is_hint_noise(t[j].text)) {
                  site.mutexes.push_back(t[j].text);
                }
              }
            }
            node.locks.push_back(std::move(site));
          }
        }

        // ---- range-for over an unordered container ----
        if (w == "for" && is_p(i + 1, "(")) {
          int depth = 0;
          std::size_t colon = 0, close = 0;
          for (std::size_t j = i + 1; j < fn.body_end; ++j) {
            if (is_p(j, "(")) ++depth;
            if (is_p(j, ")") && --depth == 0) {
              close = j;
              break;
            }
            if (depth == 1 && colon == 0 && is_p(j, ":")) colon = j;
          }
          if (colon != 0 && close != 0) {
            std::string range_var;
            bool unordered_range = false;
            for (std::size_t j = colon + 1; j < close; ++j) {
              if (!is_ident(j)) continue;
              if (range_var.empty()) range_var = t[j].text;
              if (t[j].text.compare(0, 10, "unordered_") == 0 ||
                  local_unordered.count(t[j].text) > 0 ||
                  reg.unordered_members.count(t[j].text) > 0) {
                unordered_range = true;
              }
            }
            if (unordered_range) {
              // does the loop body accumulate or emit?
              std::size_t body_from = close + 1;
              std::size_t body_to;
              if (is_p(body_from, "{")) {
                int bd = 0;
                body_to = body_from;
                for (std::size_t j = body_from; j < fn.body_end; ++j) {
                  if (is_p(j, "{")) ++bd;
                  if (is_p(j, "}") && --bd == 0) {
                    body_to = j;
                    break;
                  }
                }
              } else {
                body_to = body_from;
                while (body_to < fn.body_end && !is_p(body_to, ";")) {
                  ++body_to;
                }
              }
              static const std::set<std::string> kAccum = {
                  "push_back", "emplace_back", "insert", "append"};
              bool accum = false;
              for (std::size_t j = body_from; j < body_to; ++j) {
                if (is_ident(j) && kAccum.count(t[j].text) > 0) accum = true;
                if (is_p(j, "+") && is_p(j + 1, "=")) accum = true;
                if (is_p(j, "<") && is_p(j + 1, "<")) accum = true;
                if (is_p(j, "|") && is_p(j + 1, "=")) accum = true;
              }
              if (accum) {
                node.unordered_loops.push_back({range_var, line});
              }
            }
          }
        }

        // ---- call sites ----
        if (!called || not_a_call(w)) continue;
        CallSite call;
        call.name = w;
        call.line = line;
        call.blessed = allows.covers(line, "hot-path");
        if (i > 0 && is_p(i - 1, "::")) {
          // explicit qualifier chain
          std::size_t k = i - 1;
          std::vector<std::string> parts;
          while (k >= 1 && is_p(k, "::") && is_ident(k - 1)) {
            parts.push_back(t[k - 1].text);
            if (k < 2) break;
            k -= 2;
          }
          std::reverse(parts.begin(), parts.end());
          std::string q;
          for (const std::string& p : parts) {
            if (!q.empty()) q += "::";
            q += p;
          }
          call.qualifier = q;
        } else if (member_access) {
          // receiver chain, rightmost to leftmost
          std::size_t k = i - 1;  // the '.'/'->'
          std::vector<std::string> chain;
          while (true) {
            if (k == 0) break;
            std::size_t before = k - 1;
            if (is_ident(before)) {
              chain.push_back(t[before].text);
              if (before >= 1 &&
                  (is_p(before - 1, ".") || is_p(before - 1, "->"))) {
                k = before - 1;
                continue;
              }
              break;
            }
            if (is_p(before, "]")) {  // indexed receiver: skip [ ... ]
              int depth = 0;
              std::size_t j = before;
              while (true) {
                if (is_p(j, "]")) ++depth;
                if (is_p(j, "[") && --depth == 0) break;
                if (j == 0) break;
                --j;
              }
              if (j >= 1 && is_ident(j - 1)) {
                chain.push_back(t[j - 1].text);
                if (j >= 2 && (is_p(j - 2, ".") || is_p(j - 2, "->"))) {
                  k = j - 2;
                  continue;
                }
                break;
              }
              chain.push_back("?");
              break;
            }
            if (is_p(before, ")")) {  // f().g() — opaque receiver
              chain.push_back("?");
              break;
            }
            chain.push_back("?");
            break;
          }
          std::reverse(chain.begin(), chain.end());
          call.recv = std::move(chain);
        }
        node.calls.push_back(std::move(call));
      }
    }
  }

  // ---- edge resolution ----------------------------------------------------
  for (std::size_t ni = 0; ni < g.nodes.size(); ++ni) {
    Node& node = g.nodes[ni];
    const std::map<std::string, std::string>& local_hints = node_hints[ni];
    node.out.resize(node.calls.size());
    const std::string cls_short =
        node.def.cls.empty() ? "" : short_name(node.def.cls);
    for (std::size_t c = 0; c < node.calls.size(); ++c) {
      const CallSite& call = node.calls[c];
      std::vector<std::size_t>& out = node.out[c];
      const auto add_methods = [&](const std::set<std::string>& types) {
        for (const std::string& ty : types) {
          for (const std::string& r : reg.related(ty)) {
            const auto mi = reg.methods.find(r);
            if (mi == reg.methods.end()) continue;
            const auto found = mi->second.find(call.name);
            if (found == mi->second.end()) continue;
            out.insert(out.end(), found->second.begin(),
                       found->second.end());
          }
        }
      };

      if (!call.qualifier.empty()) {
        const std::string want = call.qualifier + "::" + call.name;
        for (std::size_t i = 0; i < g.nodes.size(); ++i) {
          const std::string& q = g.nodes[i].def.qual;
          if (q == want || ends_with(q, "::" + want)) out.push_back(i);
        }
      } else if (!call.recv.empty()) {
        std::set<std::string> types;
        const std::string& r0 = call.recv.front();
        if (r0 == "this") {
          if (!cls_short.empty()) types.insert(cls_short);
        } else if (r0 != "?") {
          // local `Type var` declaration first, then the enclosing class's
          // member hint (incl. base closure), then the global union.
          const auto li = local_hints.find(r0);
          if (li != local_hints.end()) {
            types.insert(li->second);
          }
          if (types.empty() && !cls_short.empty()) {
            types = reg.member_hint({cls_short}, r0);
          }
          if (types.empty()) {
            const auto mi = reg.member_union.find(r0);
            if (mi != reg.member_union.end()) types = mi->second;
          }
        }
        for (std::size_t step = 1; step < call.recv.size() && !types.empty();
             ++step) {
          std::set<std::string> next =
              reg.member_hint(types, call.recv[step]);
          if (next.empty()) {
            const auto mi = reg.member_union.find(call.recv[step]);
            if (mi != reg.member_union.end()) next = mi->second;
          }
          types = std::move(next);
        }
        add_methods(types);
      } else {
        if (!cls_short.empty()) add_methods({cls_short});
        const auto fi = reg.free_by_name.find(call.name);
        if (fi != reg.free_by_name.end()) {
          out.insert(out.end(), fi->second.begin(), fi->second.end());
        }
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
    }
  }
  return g;
}

}  // namespace lumos::lint

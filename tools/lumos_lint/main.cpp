// lumos_lint CLI. Exit status 0 = clean, 1 = findings, 2 = usage error.
//
//   lumos_lint --root <repo>       scan src/ tests/ bench/ tools/ under repo
//   lumos_lint --list-rules        print the rule table
//   lumos_lint --format=json       one JSON object per finding per line
//                                  (path, line, rule, message, chain);
//                                  default is the human-readable format
#include <cstdio>
#include <cstring>
#include <string>

#include "lint.h"

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const lumos::lint::Finding& f) {
  std::string s = "{\"path\":\"" + json_escape(f.path) + "\",\"line\":" +
                  std::to_string(f.line) + ",\"rule\":\"" +
                  json_escape(f.rule) + "\",\"excerpt\":\"" +
                  json_escape(f.excerpt) + "\",\"message\":\"" +
                  json_escape(f.message) + "\",\"chain\":[";
  for (std::size_t i = 0; i < f.chain.size(); ++i) {
    if (i != 0) s += ',';
    s += '"' + json_escape(f.chain[i]) + '"';
  }
  s += "]}";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool list_rules = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      list_rules = true;
    } else if (std::strcmp(argv[i], "--format=json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--format=human") == 0) {
      json = false;
    } else {
      std::fprintf(stderr,
                   "usage: lumos_lint [--root DIR] [--list-rules] "
                   "[--format=json|human]\n");
      return 2;
    }
  }

  const auto& rules = lumos::lint::default_rules();
  if (list_rules) {
    for (const auto& r : rules) {
      std::printf("%-22s %s\n", r.id.c_str(), r.summary.c_str());
    }
    return 0;
  }

  const auto findings = lumos::lint::scan_tree(root, rules);
  for (const auto& f : findings) {
    if (json) {
      std::printf("%s\n", to_json(f).c_str());
    } else {
      std::printf("%s\n", lumos::lint::format(f).c_str());
    }
  }
  if (json) return findings.empty() ? 0 : 1;
  if (findings.empty()) {
    std::printf("lumos_lint: clean (%zu rules)\n", rules.size());
    return 0;
  }
  std::printf("lumos_lint: %zu finding(s)\n", findings.size());
  return 1;
}

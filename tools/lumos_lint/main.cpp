// lumos_lint CLI. Exit status 0 = clean, 1 = findings, 2 = usage error.
//
//   lumos_lint --root <repo>     scan src/ tests/ bench/ tools/ under repo
//   lumos_lint --list-rules      print the rule table
#include <cstdio>
#include <cstring>
#include <string>

#include "lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      list_rules = true;
    } else {
      std::fprintf(stderr,
                   "usage: lumos_lint [--root DIR] [--list-rules]\n");
      return 2;
    }
  }

  const auto& rules = lumos::lint::default_rules();
  if (list_rules) {
    for (const auto& r : rules) {
      std::printf("%-22s %s\n", r.id.c_str(), r.summary.c_str());
    }
    return 0;
  }

  const auto findings = lumos::lint::scan_tree(root, rules);
  for (const auto& f : findings) {
    std::printf("%s\n", lumos::lint::format(f).c_str());
  }
  if (findings.empty()) {
    std::printf("lumos_lint: clean (%zu rules)\n", rules.size());
    return 0;
  }
  std::printf("lumos_lint: %zu finding(s)\n", findings.size());
  return 1;
}

#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace lumos::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Raw-string opener at text[i]? The optional encoding prefix (u8, u, U,
/// L) must not itself be the tail of a longer identifier. On success sets
/// `prefix_len` to the characters before the opening quote (e.g. 3 for
/// `u8R"`).
bool raw_string_opens(const std::string& text, std::size_t i,
                      std::size_t& prefix_len) {
  std::size_t r = i;  // position of the 'R'
  if (text[i] == 'u' && i + 1 < text.size() && text[i + 1] == '8') {
    r = i + 2;
  } else if (text[i] == 'u' || text[i] == 'U' || text[i] == 'L') {
    r = i + 1;
  }
  if (r >= text.size() || text[r] != 'R') return false;
  if (r + 1 >= text.size() || text[r + 1] != '"') return false;
  if (i > 0 && ident_char(text[i - 1])) return false;
  prefix_len = r + 1 - i;
  return true;
}

}  // namespace

LexedFile lex_file(const std::string& text) {
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };

  LexedFile out;
  const std::size_t n = text.size();
  out.code.assign(n, ' ');
  out.comments.assign(n, ' ');

  St st = St::kCode;
  std::string raw_close;        // ")delim\"" of the open raw string
  bool in_directive = false;    // accumulating a preprocessor directive
  bool line_has_code = false;   // non-ws code seen on this physical line
  std::uint32_t line = 1;
  Directive dir;

  const auto close_directive = [&] {
    if (in_directive) {
      out.directives.push_back(dir);
      dir = Directive{};
      in_directive = false;
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';

    // Line splice: backslash-newline joins logical lines inside line
    // comments, directives, and string literals. The physical newline is
    // kept in both views so line arithmetic stays exact.
    if (c == '\\' && next == '\n' &&
        (in_directive || st == St::kLineComment || st == St::kString)) {
      // Directive splices keep the backslash in the code view so the token
      // pass knows the next physical line is still preprocessor text.
      if (in_directive) out.code[i] = '\\';
      out.code[i + 1] = '\n';
      out.comments[i + 1] = '\n';
      ++line;
      line_has_code = true;  // a '#' after a splice is directive content
      ++i;
      continue;
    }

    if (c == '\n') {
      out.code[i] = '\n';
      out.comments[i] = '\n';
      if (st == St::kLineComment) st = St::kCode;
      // An unterminated string at end of line is malformed input; close
      // the directive anyway rather than swallowing the rest of the file.
      if (st == St::kCode || st == St::kString || st == St::kChar) {
        close_directive();
        if (st != St::kCode) st = St::kCode;
      }
      ++line;
      line_has_code = false;
      continue;
    }

    switch (st) {
      case St::kCode: {
        std::size_t prefix_len = 0;
        if (c == '/' && next == '/') {
          st = St::kLineComment;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          if (in_directive) dir.text.push_back(' ');
          ++i;  // don't let "/*/" open and close at once
        } else if (raw_string_opens(text, i, prefix_len)) {
          // R"delim( ... )delim" — delimiter is at most 16 chars and may
          // not contain spaces, parens or backslashes. A malformed opener
          // degrades to an ordinary string literal.
          const std::size_t q = i + prefix_len;  // the opening quote
          std::size_t open = std::string::npos;
          bool ok = true;
          for (std::size_t k = q + 1; k < n && k <= q + 17; ++k) {
            if (text[k] == '(') {
              open = k;
              break;
            }
            if (text[k] == ' ' || text[k] == ')' || text[k] == '\\' ||
                text[k] == '\n') {
              ok = false;
              break;
            }
          }
          if (ok && open != std::string::npos) {
            raw_close = ")" + text.substr(q + 1, open - (q + 1)) + "\"";
            st = St::kRaw;
            if (in_directive) dir.text.append("\"\"");
            i = open;  // prefix + delimiter dropped from both views
          } else {
            st = St::kString;
            if (in_directive) dir.text.push_back('"');
            i = q;  // treat the prefix as dropped, scan as a string
          }
        } else if (c == '"') {
          st = St::kString;
          if (in_directive) dir.text.push_back('"');
        } else if (c == '\'') {
          st = St::kChar;
          if (in_directive) dir.text.push_back('\'');
        } else {
          if (c == '#' && !line_has_code && !in_directive) {
            in_directive = true;
            dir = Directive{"", line};
          }
          if (!std::isspace(static_cast<unsigned char>(c))) {
            line_has_code = true;
          }
          out.code[i] = c;
          if (in_directive) dir.text.push_back(c);
        }
        break;
      }
      case St::kLineComment:
        out.comments[i] = c;
        break;
      case St::kBlockComment:
        out.comments[i] = c;
        if (c == '*' && next == '/') {
          out.comments[i + 1] = '/';
          ++i;
          st = St::kCode;
        }
        break;
      case St::kString:
        if (in_directive && c != '\\') dir.text.push_back(c);
        if (c == '\\') {
          if (next != '\n') ++i;  // escaped char stays blank in the view
        } else if (c == '"') {
          st = St::kCode;
        }
        break;
      case St::kChar:
        if (in_directive && c != '\\') dir.text.push_back(c);
        if (c == '\\') {
          if (next != '\n') ++i;
        } else if (c == '\'') {
          st = St::kCode;
        }
        break;
      case St::kRaw:
        if (text.compare(i, raw_close.size(), raw_close) == 0) {
          i += raw_close.size() - 1;
          st = St::kCode;
        } else if (c == '\n') {
          // unreachable: the newline branch above runs first; kept for
          // clarity that raw strings preserve line structure.
        }
        break;
    }
  }
  close_directive();

  // ---- token pass over the blanked code view ------------------------------
  // Comments, literal bodies and quotes are spaces here, so tokenization is
  // a straightforward scan. Preprocessor text is present in the view but
  // excluded from the token stream: the structural passes reason about
  // directives through `directives`, not tokens.
  std::uint32_t tok_line = 1;
  bool in_pp_line = false;
  bool pp_splice = false;  // directive continues past the next newline
  const std::string& code = out.code;
  for (std::size_t i = 0; i < n;) {
    const char c = code[i];
    if (c == '\n') {
      ++tok_line;
      in_pp_line = in_pp_line && pp_splice;
      pp_splice = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' && !in_pp_line) {
      in_pp_line = true;  // skip the directive; tokens never include it
      ++i;
      continue;
    }
    if (in_pp_line) {
      // A kept `\` right before the newline marks a spliced directive: the
      // next physical line is still preprocessor text, not code.
      if (c == '\\' && i + 1 < n && code[i + 1] == '\n') pp_splice = true;
      ++i;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(code[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, code.substr(i, j - i), tok_line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      // pp-number: digits, idents chars, dots, digit separators, and
      // exponent signs.
      std::size_t j = i + 1;
      while (j < n) {
        const char d = code[j];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                    code[j - 1] == 'p' || code[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      out.tokens.push_back({TokKind::kNumber, code.substr(i, j - i), tok_line});
      i = j;
      continue;
    }
    if (c == ':' && i + 1 < n && code[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", tok_line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && code[i + 1] == '>') {
      out.tokens.push_back({TokKind::kPunct, "->", tok_line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), tok_line});
    ++i;
  }
  return out;
}

}  // namespace lumos::lint

#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

#include "lexer.h"
#include "reach.h"

namespace lumos::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule table. Patterns run against comment- and string-stripped lines, so a
// mention in a comment or a string literal never fires.
// ---------------------------------------------------------------------------

/// Include-layering contract between the src/ subsystems. A quoted include
/// from a file under `dir` must start with one of `allowed`; everything
/// else is a layering break (e.g. ml/ reaching into sim/). tests/, bench/,
/// tools/ and examples/ may include anything.
struct Layer {
  const char* dir;
  std::vector<const char*> allowed;
};

const std::vector<Layer>& layer_table() {
  static const std::vector<Layer> kLayers = {
      {"src/common/", {"common/"}},
      {"src/geo/", {"common/", "geo/"}},
      {"src/stats/", {"common/", "stats/"}},
      {"src/nn/", {"common/", "nn/"}},
      {"src/ml/", {"common/", "ml/"}},
      {"src/data/", {"common/", "geo/", "ml/", "nn/", "data/"}},
      {"src/sim/", {"common/", "geo/", "data/", "sim/"}},
      {"src/core/",
       {"common/", "geo/", "stats/", "data/", "ml/", "nn/", "core/"}},
      {"src/serve/",
       {"common/", "geo/", "stats/", "data/", "ml/", "nn/", "core/",
        "serve/"}},
  };
  return kLayers;
}

std::vector<Rule> make_rules() {
  std::vector<Rule> r;

  r.push_back({"banned-rand",
               "C rand()/srand()/random_shuffle are nondeterministic across "
               "platforms; use lumos::Rng (common/rng.h)",
               RuleKind::kPattern,
               R"((^|[^_[:alnum:]])(std::)?(rand|srand|rand_r|random_shuffle)[[:space:]]*\()",
               {},
               {}});

  r.push_back({"banned-std-random",
               "std::random engines/distributions have unspecified streams; "
               "all randomness flows through lumos::Rng (common/rng.h)",
               RuleKind::kPattern,
               R"(std::(random_device|mt19937(_64)?|minstd_rand0?|default_random_engine|knuth_b|ranlux24|ranlux48|(uniform_int|uniform_real|normal|lognormal|bernoulli|poisson|exponential|discrete)_distribution)([^_[:alnum:]]|$))",
               {},
               {"src/common/rng.h"}});

  r.push_back({"unordered-container",
               "std::unordered_* iteration order is implementation-defined; "
               "library code must use ordered containers so every "
               "reduction/serialization is reproducible",
               RuleKind::kPattern,
               R"(std::unordered_(map|set|multimap|multiset)([^_[:alnum:]]|$))",
               {"src/"},
               {}});

  r.push_back({"wall-clock",
               "library results must not depend on wall time; inject a "
               "lumos::Clock (common/clock.h) instead — src/common/clock.cpp "
               "is the single blessed real-clock implementation",
               RuleKind::kPattern,
               R"((system_clock|steady_clock|high_resolution_clock)::now[[:space:]]*\(|(^|[^_[:alnum:]])(time[[:space:]]*\([[:space:]]*(NULL|nullptr|0)?[[:space:]]*\)|gettimeofday[[:space:]]*\(|clock_gettime[[:space:]]*\())",
               {"src/"},
               {"src/common/clock."}});

  r.push_back({"thread-outside-pool",
               "raw std::thread/std::async bypasses the deterministic "
               "fork-join pool (common/parallel.h) and voids the "
               "bit-identical-at-any-thread-count guarantee",
               RuleKind::kPattern,
               R"(std::(thread|jthread|async)([^_[:alnum:]]|$))",
               {"src/"},
               {"src/common/parallel."}});

  r.push_back({"throw-on-query-path",
               "the serving path reports failures as Expected<T> / "
               "lumos::Error (common/error.h); throwing would tear down a "
               "query instead of degrading",
               RuleKind::kPattern,
               R"((^|[^_[:alnum:]])throw([^_[:alnum:]]|$))",
               {"src/core/", "src/ml/", "src/serve/"},
               {}});

  r.push_back({"naked-assert",
               "use LUMOS_ASSERT / LUMOS_EXPECTS / LUMOS_ENSURES "
               "(common/contracts.h): uniform message + file:line and a "
               "single NDEBUG story",
               RuleKind::kPattern,
               R"(<cassert>|<assert\.h>|(^|[^_[:alnum:]])assert[[:space:]]*\()",
               {"src/"},
               {}});

  r.push_back({"layering",
               "include crosses the subsystem layering contract (see the "
               "layer table in tools/lumos_lint/lint.cpp)",
               RuleKind::kLayering,
               "",
               {"src/"},
               {}});

  r.push_back({"pragma-once",
               "every header uses #pragma once (the repo's include-guard "
               "convention)",
               RuleKind::kPragmaOnce,
               "",
               {},
               {},
               /*headers_only=*/true});

  // `bad-suppression` is issued by the suppression parser itself; it is in
  // the table so --list-rules documents it and allow(bad-suppression) is
  // a valid (if perverse) directive.
  r.push_back({"bad-suppression",
               "a lumos-lint suppression names a rule id that does not "
               "exist; fix or delete the stale directive",
               RuleKind::kPattern,
               "",
               {},
               {}});

  // ---- interprocedural passes (tools/lumos_lint/reach.cpp) ----------------
  // These rules have no line pattern: findings come from the call-graph
  // reachability analysis over src/. They are registered here so
  // --list-rules documents them and allow(<id>) suppressions validate.
  r.push_back({"hot-path-alloc",
               "a serving hot-path root reaches a heap allocation (new, "
               "make_unique/shared, container growth); use a preallocated "
               "arena or bless the edge with a reason",
               RuleKind::kAnalysis,
               "",
               {"src/"},
               {}});
  r.push_back({"hot-path-lock",
               "a serving hot-path root reaches a mutex/lock acquisition; "
               "only the admission edge is blessed",
               RuleKind::kAnalysis,
               "",
               {"src/"},
               {}});
  r.push_back({"hot-path-throw",
               "a serving hot-path root reaches a throw; hot paths report "
               "failures as Expected<T>/lumos::Error",
               RuleKind::kAnalysis,
               "",
               {"src/"},
               {}});
  r.push_back({"hot-path-io",
               "a serving hot-path root reaches blocking I/O",
               RuleKind::kAnalysis,
               "",
               {"src/"},
               {}});
  r.push_back({"hot-path-clock",
               "a serving hot-path root reaches a wall-clock read; time is "
               "injected via lumos::Clock at the boundary",
               RuleKind::kAnalysis,
               "",
               {"src/"},
               {}});
  // `hot-path` is the *edge* bless id: `// lumos-lint: allow(hot-path)` on
  // a call site stops the reachability walk from traversing that edge.
  r.push_back({"hot-path",
               "blesses a call edge so reachability does not walk through "
               "it (annotate the call site, with a reason)",
               RuleKind::kAnalysis,
               "",
               {"src/"},
               {}});
  r.push_back({"lock-order",
               "lock acquired out of the declared order (see the "
               "acquisition-order table in tools/lumos_lint/reach.cpp), or "
               "an undeclared mutex is locked in serve/",
               RuleKind::kAnalysis,
               "",
               {"src/serve/"},
               {}});
  r.push_back({"unordered-accumulate",
               "iteration over an unordered container feeds an accumulation "
               "or output; iteration order is implementation-defined, so "
               "the result is irreproducible",
               RuleKind::kAnalysis,
               "",
               {},
               {}});
  return r;
}

// Source views come from the shared lexer (lexer.h): `code` with comments
// and literal bodies blanked (pattern rules), `comments` with only comment
// text (suppression directives), and the logical preprocessor `directives`
// (layering / pragma-once — splice-proof).

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(std::move(cur));
  return lines;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool starts_with_any(const std::string& path,
                     const std::vector<std::string>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](const std::string& p) {
                       return path.compare(0, p.size(), p) == 0;
                     });
}

bool is_header(const std::string& path) {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

bool rule_applies(const Rule& rule, const std::string& path) {
  if (rule.headers_only && !is_header(path)) return false;
  if (!rule.dirs.empty() && !starts_with_any(path, rule.dirs)) return false;
  return !starts_with_any(path, rule.exempt);
}

/// Per-line and whole-file suppressions harvested from comment text.
struct Suppressions {
  /// (line, rule-id) pairs; a directive covers its own line and the next.
  std::set<std::pair<std::size_t, std::string>> lines;
  std::set<std::string> whole_file;
  std::vector<Finding> bad;  ///< directives naming unknown rules
};

Suppressions parse_suppressions(const std::string& path,
                                const std::vector<std::string>& comment_lines,
                                const std::vector<Rule>& rules) {
  static const std::regex kDirective(
      R"(lumos-lint:[[:space:]]*allow(-file)?\(([A-Za-z0-9_-]+)\))");
  Suppressions sup;
  for (std::size_t i = 0; i < comment_lines.size(); ++i) {
    auto begin = std::sregex_iterator(comment_lines[i].begin(),
                                      comment_lines[i].end(), kDirective);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const bool file_wide = (*it)[1].matched;
      const std::string id = (*it)[2].str();
      const bool known =
          std::any_of(rules.begin(), rules.end(),
                      [&](const Rule& r) { return r.id == id; });
      if (!known) {
        sup.bad.push_back({path, i + 1, "bad-suppression",
                           trim(comment_lines[i]),
                           "suppression names unknown rule '" + id + "'",
                           {}});
        continue;
      }
      if (file_wide) {
        sup.whole_file.insert(id);
      } else {
        sup.lines.emplace(i + 1, id);      // its own line
        sup.lines.emplace(i + 2, id);      // and the line below
      }
    }
  }
  return sup;
}

bool suppressed(const Suppressions& sup, std::size_t line,
                const std::string& rule_id) {
  return sup.whole_file.count(rule_id) > 0 ||
         sup.lines.count({line, rule_id}) > 0;
}

void check_layering(const std::string& path,
                    const std::vector<Directive>& directives,
                    const Rule& rule, const Suppressions& sup,
                    std::vector<Finding>& out) {
  const Layer* layer = nullptr;
  for (const Layer& l : layer_table()) {
    if (path.compare(0, std::string(l.dir).size(), l.dir) == 0) {
      layer = &l;
      break;
    }
  }
  if (layer == nullptr) return;  // outside the layered area
  // Matched against the *logical* directive text: line splices are already
  // resolved and commented-out includes never become directives, so a
  // `#include \`<newline>`"sim/x.h"` split cannot dodge the check.
  static const std::regex kIncludePath(
      R"rx(^#[[:space:]]*include[[:space:]]*"([^"]+)")rx");
  for (const Directive& d : directives) {
    std::smatch m;
    if (!std::regex_search(d.text, m, kIncludePath)) continue;
    const std::string inc = m[1].str();
    const bool ok = std::any_of(
        layer->allowed.begin(), layer->allowed.end(), [&](const char* p) {
          return inc.compare(0, std::string(p).size(), p) == 0;
        });
    if (!ok && !suppressed(sup, d.line, rule.id)) {
      out.push_back({path, d.line, rule.id, trim(d.text),
                     "'" + inc + "' is not an allowed dependency of " +
                         layer->dir,
                     {}});
    }
  }
}

}  // namespace

const std::vector<Rule>& default_rules() {
  static const std::vector<Rule> kRules = make_rules();
  return kRules;
}

std::vector<Finding> scan_file(const std::string& path,
                               const std::string& text,
                               const std::vector<Rule>& rules) {
  const LexedFile views = lex_file(text);
  const auto code_lines = split_lines(views.code);
  const auto comment_lines = split_lines(views.comments);
  const auto raw_lines = split_lines(text);

  Suppressions sup = parse_suppressions(path, comment_lines, rules);
  std::vector<Finding> out;
  for (Finding& f : sup.bad) {
    if (!suppressed(sup, f.line, "bad-suppression")) {
      out.push_back(std::move(f));
    }
  }

  for (const Rule& rule : rules) {
    if (!rule_applies(rule, path)) continue;
    switch (rule.kind) {
      case RuleKind::kPattern: {
        if (rule.pattern.empty()) break;  // parser-issued rules
        const std::regex re(rule.pattern);
        for (std::size_t i = 0; i < code_lines.size(); ++i) {
          if (std::regex_search(code_lines[i], re) &&
              !suppressed(sup, i + 1, rule.id)) {
            out.push_back({path, i + 1, rule.id,
                           trim(i < raw_lines.size() ? raw_lines[i] : ""),
                           rule.summary,
                           {}});
          }
        }
        break;
      }
      case RuleKind::kLayering:
        check_layering(path, views.directives, rule, sup, out);
        break;
      case RuleKind::kPragmaOnce: {
        const bool found = std::any_of(
            views.directives.begin(), views.directives.end(),
            [](const Directive& d) {
              static const std::regex kPragma(
                  R"(^#[[:space:]]*pragma[[:space:]]+once)");
              return std::regex_search(d.text, kPragma);
            });
        if (!found && !suppressed(sup, 1, rule.id)) {
          out.push_back({path, 1, rule.id, "", rule.summary, {}});
        }
        break;
      }
      case RuleKind::kAnalysis:
        break;  // whole-program: produced by analyze_sources(), not here
    }
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return out;
}

std::vector<Finding> scan_tree(const std::filesystem::path& root,
                               const std::vector<Rule>& rules) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const char* top : {"src", "tests", "bench", "tools"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      if (rel.find("lint_fixtures/") != std::string::npos) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cpp") files.push_back(rel);
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> out;
  std::vector<SourceFile> lib_sources;  // src/ only: the analyzed program
  for (const std::string& rel : files) {
    std::ifstream in(root / rel, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    auto found = scan_file(rel, text.str(), rules);
    out.insert(out.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
    if (rel.compare(0, 4, "src/") == 0) {
      lib_sources.push_back({rel, text.str()});
    }
  }

  // Interprocedural passes run over src/ as one program (tests/, bench/
  // and tools/ are not on the serving path and would only add noise).
  auto analysis = analyze_sources(lib_sources, rules);
  out.insert(out.end(), std::make_move_iterator(analysis.begin()),
             std::make_move_iterator(analysis.end()));

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.rule) <
           std::tie(b.path, b.line, b.rule);
  });
  return out;
}

std::string format(const Finding& f) {
  std::string s = f.path + ":" + std::to_string(f.line) + ": [" + f.rule +
                  "] " + f.excerpt;
  if (!f.message.empty()) s += "\n    — " + f.message;
  for (const std::string& hop : f.chain) s += "\n      " + hop;
  return s;
}

}  // namespace lumos::lint

// Symbol pass: function/method definitions and class shapes per file.
//
// extract_symbols() walks one file's token stream with a scope stack
// (namespaces — including `namespace a::b` —, classes/structs with base
// lists, enums) and records:
//
//   * every function/method *definition* (a body, not a declaration) with
//     its qualified name, its enclosing class, and the token range of its
//     body — the call-graph pass (callgraph.h) scans exactly that range;
//   * every class with its base-class names (virtual-dispatch resolution:
//     a call through a `Clock*` member may land in any derived override)
//     and a member-name -> type-hint map. The hint is the *last*
//     non-builtin identifier of the declared type, which deliberately
//     names the element type for containers (`std::vector<FlatForest>
//     per_class_` hints FlatForest) — exactly what `per_class_[c].m(...)`
//     receiver resolution needs;
//   * the quoted includes (the include graph used for edge resolution).
//
// Qualified names drop the repo-wide `lumos::` prefix, so the hot-path
// roots table reads naturally (`serve::Server::submit`). The parser is
// heuristic by design: on input it cannot classify it records nothing
// rather than guessing (precision over recall — a missed symbol weakens
// one edge, a wrong one poisons the graph).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lexer.h"

namespace lumos::lint {

struct FunctionDef {
  std::string qual;  ///< e.g. "serve::Server::submit" (lumos:: stripped)
  std::string name;  ///< e.g. "submit"
  std::string cls;   ///< enclosing class qual ("serve::Server") or ""
  std::uint32_t line = 0;      ///< line of the body's opening brace
  std::size_t sig_begin = 0;   ///< first token of the declaration (for
                               ///< parameter type hints)
  std::size_t body_begin = 0;  ///< token index of '{'
  std::size_t body_end = 0;    ///< token index of the matching '}'
};

struct ClassDef {
  std::string qual;  ///< e.g. "serve::Predictor::FlatTier"
  std::string name;  ///< last segment
  std::vector<std::string> bases;  ///< base-class short names
  /// member name -> type-hint short name (see header comment).
  std::map<std::string, std::string> members;
  /// members declared with an unordered container type (determinism pass).
  std::vector<std::string> unordered_members;
};

struct FileSymbols {
  std::string path;
  std::vector<FunctionDef> functions;
  std::vector<ClassDef> classes;
  std::vector<std::string> includes;  ///< quoted include paths
};

[[nodiscard]] FileSymbols extract_symbols(const std::string& path,
                                          const LexedFile& lexed);

/// True for identifiers that never make useful type hints: cv/storage
/// keywords, builtin types, and std vocabulary/container names.
[[nodiscard]] bool is_hint_noise(const std::string& ident);

}  // namespace lumos::lint

// lumos_lint — the repo's own static checker for the invariants the test
// suite cannot see locally: sources of nondeterminism that would break the
// bit-identical-at-any-thread-count guarantee, error-discipline violations
// on the query path, include-layering breaks between subsystems, and —
// since the multi-pass rework — *reachability* proofs that the serving hot
// path stays allocation-, lock-, throw-, I/O- and wall-clock-free.
//
// The checker is deliberately libclang-free: a shared tokenizer (lexer.h)
// feeds both the line-level pattern rules and the structural passes
// (symbols.h -> callgraph.h -> reach.h), so it builds and runs in the
// offline CI container in milliseconds and is registered as an ordinary
// ctest (`ctest -L lint`).
//
// Suppressing a rule at a specific site:
//   code();  // lumos-lint: allow(<rule-id>) reason for the exemption
// The directive covers its own line and the line directly below it, so it
// can ride on the offending line or sit on a comment line above. A
// file-wide exemption is spelled `lumos-lint: allow-file(<rule-id>)`.
// Referencing an unknown rule id is itself a finding (`bad-suppression`),
// so stale suppressions cannot rot silently.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace lumos::lint {

enum class RuleKind {
  kPattern,     ///< regex over stripped source lines
  kLayering,    ///< quoted-include prefixes vs. the layer table
  kPragmaOnce,  ///< headers must contain #pragma once
  kAnalysis,    ///< whole-program pass (reach.h), not a per-line scan
};

struct Rule {
  std::string id;       ///< stable kebab-case name used in suppressions
  std::string summary;  ///< one-line rationale shown with findings
  RuleKind kind = RuleKind::kPattern;
  std::string pattern;  ///< ECMAScript regex source (kPattern only)
  /// Repo-relative path prefixes the rule applies to; empty = every
  /// scanned file.
  std::vector<std::string> dirs;
  /// Path prefixes exempt from the rule (e.g. the one blessed RNG header).
  std::vector<std::string> exempt;
  bool headers_only = false;
};

struct Finding {
  std::string path;  ///< repo-relative, forward slashes
  std::size_t line = 0;
  std::string rule;
  std::string excerpt;  ///< offending source line, whitespace-trimmed
  std::string message;
  /// For reachability findings: the call chain from a hot-path root to the
  /// banned effect, one human-readable hop per entry (root first). Empty
  /// for line-level findings.
  std::vector<std::string> chain;
};

/// One in-memory source file handed to the whole-program passes (reach.h);
/// `path` is repo-relative and does not have to exist on disk.
struct SourceFile {
  std::string path;
  std::string text;
};

/// The checked-in rule table (see lint.cpp for the layer table it uses).
const std::vector<Rule>& default_rules();

/// Scans one file's text. `path` is the repo-relative path used for rule
/// scoping and reporting; it does not have to exist on disk.
std::vector<Finding> scan_file(const std::string& path,
                               const std::string& text,
                               const std::vector<Rule>& rules);

/// Recursively scans src/, tests/, bench/ and tools/ under `root`
/// (skipping tests/lint_fixtures/, whose snippets violate rules on
/// purpose). Findings are sorted by path, then line.
std::vector<Finding> scan_tree(const std::filesystem::path& root,
                               const std::vector<Rule>& rules);

/// "path:line: [rule] excerpt — summary"
std::string format(const Finding& f);

}  // namespace lumos::lint

// The shared C++ tokenizer under every lumos_lint pass.
//
// PR 3's checker worked on a hand-rolled comment/string stripper; the
// multi-pass analyzer (symbols -> call graph -> reachability) needs an
// actual token stream, and the stripper itself had two latent holes this
// lexer closes:
//
//   * raw string literals: encoding prefixes (`u8R"(...)"`, `LR"..."`)
//     were not recognized, so the opening quote started an ordinary
//     string literal and the `)"` inside the raw body closed it early,
//     leaking raw-string text into the scanned "code" view;
//   * `\`-spliced preprocessor lines: `#include \` + `"sim/x.h"` dodged
//     the layering pass entirely, because each physical line was matched
//     in isolation.
//
// lex_file() produces three coordinated artifacts from one pass:
//
//   code       same-shaped view of the input with comments and
//              string/char-literal bodies blanked to spaces (newlines
//              kept), used by the line-level pattern rules;
//   comments   the complementary view holding only comment text, used by
//              the suppression parser;
//   directives the *logical* preprocessor directives — line splices
//              resolved, comments dropped, string spellings kept — used
//              by the layering and pragma-once passes;
//   tokens     the code token stream (identifiers, numbers, punctuation)
//              with 1-based line numbers, used by the symbol, call-graph
//              and reachability passes. `::` and `->` are single tokens;
//              all other punctuation is one character per token.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lumos::lint {

enum class TokKind : std::uint8_t {
  kIdent,   ///< identifier or keyword: [A-Za-z_][A-Za-z0-9_]*
  kNumber,  ///< pp-number (integer/float/hex, rough)
  kPunct,   ///< "::", "->", or a single punctuation character
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::uint32_t line = 0;  ///< 1-based physical line of the token start
};

/// One logical preprocessor directive. `text` starts at the `#` and has
/// line splices resolved and comments removed; string spellings (e.g. the
/// quoted include path) are preserved.
struct Directive {
  std::string text;
  std::uint32_t line = 0;  ///< 1-based physical line of the `#`
};

struct LexedFile {
  std::string code;      ///< physical view for pattern rules
  std::string comments;  ///< physical view for suppression directives
  std::vector<Directive> directives;
  std::vector<Token> tokens;
};

/// Tokenizes one translation unit. Never fails: malformed input degrades
/// to fewer tokens, not an error (the linter must keep scanning a tree
/// that may not even compile yet).
[[nodiscard]] LexedFile lex_file(const std::string& text);

}  // namespace lumos::lint

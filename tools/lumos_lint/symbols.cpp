#include "symbols.h"

#include <algorithm>
#include <regex>
#include <set>

namespace lumos::lint {
namespace {

const std::set<std::string>& hint_noise() {
  static const std::set<std::string> kNoise = {
      // cv / storage / specifiers
      "const", "constexpr", "consteval", "constinit", "static", "mutable",
      "inline", "volatile", "extern", "explicit", "virtual", "friend",
      "typename", "register", "thread_local", "noexcept", "final",
      "override", "nodiscard", "maybe_unused",
      // builtin types
      "unsigned", "signed", "long", "short", "int", "double", "float",
      "bool", "char", "wchar_t", "char8_t", "char16_t", "char32_t", "void",
      "auto", "size_t", "ssize_t", "ptrdiff_t", "nullptr_t", "byte",
      "int8_t", "int16_t", "int32_t", "int64_t", "uint8_t", "uint16_t",
      "uint32_t", "uint64_t", "intptr_t", "uintptr_t",
      // std vocabulary and containers (the hint wants the *element* type)
      "std", "string", "string_view", "vector", "deque", "array", "span",
      "optional", "variant", "map", "set", "multimap", "multiset", "list",
      "pair", "tuple", "function", "unique_ptr", "shared_ptr", "weak_ptr",
      "atomic", "mutex", "shared_mutex", "recursive_mutex",
      "condition_variable", "filesystem", "path", "initializer_list",
      "chrono", "milliseconds", "reference_wrapper", "bitset",
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset",
  };
  return kNoise;
}

bool is_keyword_not_callable(const std::string& s) {
  static const std::set<std::string> kKw = {
      "if",     "for",   "while",   "switch",        "catch",
      "return", "sizeof", "alignof", "static_assert", "decltype",
      "new",    "delete", "throw",   "co_await",      "co_return",
      "co_yield",
  };
  return kKw.count(s) > 0;
}

struct Scope {
  enum Kind { kNamespace, kClass, kOther } kind = kOther;
  std::string name;           ///< may be "a::b" for namespace a::b, or ""
  std::size_t class_index = 0;  ///< into FileSymbols::classes (kClass only)
};

/// Joined scope names + optional trailing chain, `lumos::` stripped.
std::string make_qual(const std::vector<Scope>& scopes,
                      const std::string& tail) {
  std::string q;
  for (const Scope& s : scopes) {
    if (s.name.empty()) continue;
    if (!q.empty()) q += "::";
    q += s.name;
  }
  if (!tail.empty()) {
    if (!q.empty()) q += "::";
    q += tail;
  }
  if (q.compare(0, 7, "lumos::") == 0) q = q.substr(7);
  return q;
}

}  // namespace

bool is_hint_noise(const std::string& ident) {
  return hint_noise().count(ident) > 0;
}

FileSymbols extract_symbols(const std::string& path, const LexedFile& lexed) {
  FileSymbols out;
  out.path = path;

  static const std::regex kIncludePath(
      R"rx(^#[[:space:]]*include[[:space:]]*"([^"]+)")rx");
  for (const Directive& d : lexed.directives) {
    std::smatch m;
    if (std::regex_search(d.text, m, kIncludePath)) {
      out.includes.push_back(m[1].str());
    }
  }

  const std::vector<Token>& t = lexed.tokens;
  const std::size_t n = t.size();
  std::vector<Scope> scopes;
  std::vector<std::size_t> decl;  // token indices of the pending declaration
  int paren_depth = 0;

  const auto is_p = [&](std::size_t i, const char* s) {
    return t[i].kind == TokKind::kPunct && t[i].text == s;
  };
  const auto is_id = [&](std::size_t i, const char* s) {
    return t[i].kind == TokKind::kIdent && t[i].text == s;
  };

  /// Index past the matching '}' for the '{' at `open` (or n).
  const auto skip_braces = [&](std::size_t open) {
    int depth = 0;
    for (std::size_t j = open; j < n; ++j) {
      if (is_p(j, "{")) ++depth;
      if (is_p(j, "}") && --depth == 0) return j + 1;
    }
    return n;
  };

  /// decl index of the first top-level '(' whose preceding token is a
  /// plausible function name; npos when the declaration cannot be one.
  const auto find_param_paren = [&]() -> std::size_t {
    int depth = 0;
    for (std::size_t k = 0; k < decl.size(); ++k) {
      const std::size_t i = decl[k];
      if (is_p(i, "(")) {
        if (depth == 0) {
          if (k == 0) return std::string::npos;
          const std::size_t prev = decl[k - 1];
          if (t[prev].kind != TokKind::kIdent ||
              is_keyword_not_callable(t[prev].text)) {
            return std::string::npos;
          }
          return k;
        }
        ++depth;
      } else if (is_p(i, ")")) {
        --depth;
      } else if (depth == 0 && is_p(i, "=")) {
        // `T x = init(...)...` — an initializer, not a parameter list.
        return std::string::npos;
      }
    }
    return std::string::npos;
  };

  /// Walks `Foo::Bar::name` (and `~name`) backwards from decl[k]; returns
  /// the joined chain.
  const auto name_chain = [&](std::size_t k) {
    std::string chain = t[decl[k]].text;
    while (k >= 1 && is_p(decl[k - 1], "~")) {
      chain = "~" + chain;
      --k;
    }
    while (k >= 2 && is_p(decl[k - 1], "::") &&
           t[decl[k - 2]].kind == TokKind::kIdent) {
      chain = t[decl[k - 2]].text + "::" + chain;
      k -= 2;
    }
    return chain;
  };

  /// Records a member-variable hint from the declaration ending at ';'
  /// while directly inside a class scope.
  const auto record_member = [&]() {
    if (scopes.empty() || scopes.back().kind != Scope::kClass) return;
    ClassDef& cls = out.classes[scopes.back().class_index];
    // Skip anything that is not a plain data member.
    int depth = 0;
    std::size_t name_k = std::string::npos;
    for (std::size_t k = 0; k < decl.size(); ++k) {
      const std::size_t i = decl[k];
      if (is_p(i, "(")) {
        if (depth == 0) return;  // function declaration / fn-pointer
        ++depth;
        continue;
      }
      if (is_p(i, ")")) {
        --depth;
        continue;
      }
      if (depth > 0) continue;
      if (is_id(i, "using") || is_id(i, "typedef") || is_id(i, "friend") ||
          is_id(i, "operator") || is_id(i, "class") || is_id(i, "struct") ||
          is_id(i, "union") || is_id(i, "enum") || is_id(i, "namespace") ||
          is_id(i, "template") || is_id(i, "static_assert")) {
        return;
      }
      if (is_p(i, "=") || is_p(i, "{")) break;  // initializer starts
      if (t[i].kind == TokKind::kIdent) name_k = k;
    }
    if (name_k == std::string::npos || name_k == 0) return;
    const std::string member = t[decl[name_k]].text;
    bool unordered = false;
    std::string hint;
    for (std::size_t k = 0; k < name_k; ++k) {
      const std::size_t i = decl[k];
      if (t[i].kind != TokKind::kIdent) continue;
      if (t[i].text.compare(0, 10, "unordered_") == 0) unordered = true;
      if (!is_hint_noise(t[i].text)) hint = t[i].text;
    }
    if (!hint.empty()) cls.members[member] = hint;
    if (unordered) cls.unordered_members.push_back(member);
  };

  std::size_t i = 0;
  while (i < n) {
    if (is_p(i, "(")) ++paren_depth;
    if (is_p(i, ")")) paren_depth = std::max(0, paren_depth - 1);
    if (paren_depth > 0) {
      decl.push_back(i++);
      continue;
    }
    if (is_p(i, ";")) {
      record_member();
      decl.clear();
      ++i;
      continue;
    }
    if (is_p(i, "}")) {
      if (!scopes.empty()) scopes.pop_back();
      decl.clear();
      ++i;
      continue;
    }
    if (!is_p(i, "{")) {
      decl.push_back(i++);
      continue;
    }

    // ---- classify the declaration ending at this top-level '{' ----------
    // 1. namespace?
    std::size_t ns_k = std::string::npos;
    for (std::size_t k = 0; k < decl.size(); ++k) {
      if (is_id(decl[k], "namespace")) {
        ns_k = k;
        break;
      }
    }
    if (ns_k != std::string::npos) {
      std::string name;
      for (std::size_t k = ns_k + 1; k < decl.size(); ++k) {
        if (t[decl[k]].kind == TokKind::kIdent) {
          if (!name.empty()) name += "::";
          name += t[decl[k]].text;
        }
      }
      scopes.push_back({Scope::kNamespace, name, 0});
      decl.clear();
      ++i;
      continue;
    }

    // 2. enum? (before class: `enum class X` must not push a class scope)
    bool is_enum = false;
    for (std::size_t k = 0; k < decl.size(); ++k) {
      if (is_id(decl[k], "enum")) is_enum = true;
    }
    if (is_enum) {
      scopes.push_back({Scope::kOther, "", 0});
      decl.clear();
      ++i;
      continue;
    }

    // 3. class/struct/union? Only when the keyword opens the declaration
    // (skipping template<...> heads and attributes): `struct X s{...};`
    // initializers and return types like `std::vector<X>` never do.
    std::size_t cls_k = std::string::npos;
    {
      std::size_t k = 0;
      // skip `template` `<` ... `>` heads
      while (k < decl.size()) {
        if (is_id(decl[k], "template")) {
          int angle = 0;
          ++k;
          while (k < decl.size()) {
            if (is_p(decl[k], "<")) ++angle;
            if (is_p(decl[k], ">") && --angle == 0) {
              ++k;
              break;
            }
            ++k;
          }
          continue;
        }
        if (is_p(decl[k], "[") || is_p(decl[k], "]")) {
          ++k;  // attribute brackets
          continue;
        }
        if (t[decl[k]].kind == TokKind::kIdent &&
            (is_id(decl[k], "alignas"))) {
          ++k;  // alignas(...) — parens were accumulated; idents inside too
          continue;
        }
        break;
      }
      if (k < decl.size() &&
          (is_id(decl[k], "class") || is_id(decl[k], "struct") ||
           is_id(decl[k], "union"))) {
        cls_k = k;
      }
    }
    if (cls_k != std::string::npos) {
      // name = first ident after the keyword that is not an attribute
      std::string name;
      std::size_t base_from = std::string::npos;
      for (std::size_t k = cls_k + 1; k < decl.size(); ++k) {
        if (name.empty() && t[decl[k]].kind == TokKind::kIdent &&
            !is_id(decl[k], "final") && !is_id(decl[k], "alignas") &&
            !is_hint_noise(t[decl[k]].text)) {
          name = t[decl[k]].text;
          continue;
        }
        if (!name.empty() && is_p(decl[k], ":")) {
          base_from = k + 1;
          break;
        }
      }
      ClassDef cls;
      cls.qual = make_qual(scopes, name);
      cls.name = name;
      if (base_from != std::string::npos) {
        for (std::size_t k = base_from; k < decl.size(); ++k) {
          const std::size_t idx = decl[k];
          if (t[idx].kind != TokKind::kIdent) continue;
          const std::string& b = t[idx].text;
          if (b == "public" || b == "protected" || b == "private" ||
              b == "virtual" || b == "final" || is_hint_noise(b)) {
            continue;
          }
          // keep the last segment of a qualified base
          if (k + 1 < decl.size() && is_p(decl[k + 1], "::")) continue;
          if (std::find(cls.bases.begin(), cls.bases.end(), b) ==
              cls.bases.end()) {
            cls.bases.push_back(b);
          }
        }
      }
      out.classes.push_back(std::move(cls));
      scopes.push_back({Scope::kClass, name, out.classes.size() - 1});
      decl.clear();
      ++i;
      continue;
    }

    // 4. function definition? Needs a parameter list introduced by a named
    // '(' — plus, for constructors, member-init groups between ')' and the
    // body brace: `Foo() : a_{1}, b_(2) {`. A '{' directly preceded by an
    // identifier after a top-level ':' is a member initializer, not the
    // body.
    const std::size_t param_k = find_param_paren();
    bool has_operator = false;
    for (std::size_t k = 0; k < decl.size(); ++k) {
      if (is_id(decl[k], "operator")) has_operator = true;
    }
    if (param_k != std::string::npos || has_operator) {
      bool in_init_list = false;
      if (param_k != std::string::npos) {
        int depth = 0;
        for (std::size_t k = param_k; k < decl.size(); ++k) {
          if (is_p(decl[k], "(")) ++depth;
          if (is_p(decl[k], ")")) --depth;
          if (depth == 0 && k > param_k && is_p(decl[k], ":")) {
            in_init_list = true;
            break;
          }
        }
      }
      if (in_init_list && !decl.empty() &&
          t[decl.back()].kind == TokKind::kIdent) {
        // member-init brace group: absorb it into the declaration
        const std::size_t past = skip_braces(i);
        if (past > 0 && past <= n) decl.push_back(past - 1);  // the '}'
        i = past;
        continue;
      }
      FunctionDef fn;
      if (has_operator && param_k == std::string::npos) {
        fn.name = "operator";
      } else {
        std::string chain = name_chain(param_k - 1);
        const std::size_t sep = chain.rfind("::");
        fn.name = sep == std::string::npos ? chain : chain.substr(sep + 2);
        if (sep != std::string::npos) {
          fn.cls = make_qual(scopes, chain.substr(0, sep));
        } else if (!scopes.empty() && scopes.back().kind == Scope::kClass) {
          fn.cls = out.classes[scopes.back().class_index].qual;
        }
        fn.qual = make_qual(scopes, chain);
      }
      if (fn.qual.empty()) fn.qual = make_qual(scopes, fn.name);
      fn.line = t[i].line;
      fn.sig_begin = decl.empty() ? i : decl.front();
      fn.body_begin = i;
      fn.body_end = skip_braces(i) - 1;
      out.functions.push_back(std::move(fn));
      i = out.functions.back().body_end + 1;
      decl.clear();
      continue;
    }

    // 5. anything else: an `= {...}` initializer, a bare block, an
    // extern/linkage block. Skip the brace group; an initializer keeps its
    // declaration alive until the ';'.
    if (decl.empty()) {
      scopes.push_back({Scope::kOther, "", 0});
      ++i;
    } else {
      const std::size_t past = skip_braces(i);
      if (past > 0 && past <= n) decl.push_back(past - 1);
      i = past;
    }
  }
  return out;
}

}  // namespace lumos::lint

// Reachability pass: the hot-path proof.
//
// A checked-in roots table names the serving entry points (Server::submit,
// Server::poll, Predictor::predict/predict_spans, the flat-model traversal,
// core::Lumos5G::predict). analyze_sources() builds the call graph over the
// whole src/ tree, walks every root's reachable set, and reports each
// banned effect (heap allocation, lock acquisition, throw, blocking I/O,
// wall-clock read) together with the full call chain from root to effect —
// the finding a developer sees is not "push_back here" but "Server::poll
// -> Predictor::predict -> feature_row_from_window -> push_back".
//
// Escapes are deliberate and all spelled in source:
//   * `// lumos-lint: allow(hot-path-<effect>) reason` on the effect line
//     blesses that one site (e.g. the amortized thread_local arena resize);
//   * `// lumos-lint: allow(hot-path) reason` on a call line blesses that
//     edge — the walk does not continue through it;
//   * the blessed-paths table exempts whole files with a recorded reason
//     (the virtual clock seam, the deterministic thread pool).
//
// Two sibling policy passes reuse the same graph:
//   * lock-order: every lock site in src/serve/ must name only mutexes
//     from the declared acquisition order, acquired in table order;
//   * unordered-accumulate: a range-for over an unordered container whose
//     body accumulates or emits is order-dependent and breaks the
//     bit-identical-at-any-thread-count guarantee.
#pragma once

#include <string>
#include <vector>

#include "callgraph.h"
#include "lint.h"

namespace lumos::lint {

/// A file-prefix exemption from the hot-path rules, with the reason
/// recorded next to it (the table is the documentation).
struct BlessedPath {
  std::string prefix;
  std::string reason;
};

struct AnalysisConfig {
  /// Qualified names (lumos:: stripped) of the serving entry points.
  std::vector<std::string> roots;
  std::vector<BlessedPath> blessed_paths;
  /// Declared mutex acquisition order for src/serve/ (names as declared,
  /// e.g. "mu_"). A lock site naming an unlisted mutex, or listing mutexes
  /// out of table order, is a lock-order finding.
  std::vector<std::string> lock_order;
};

/// The checked-in serving-path configuration this repo is linted against.
[[nodiscard]] const AnalysisConfig& default_analysis();

/// Runs the whole-program passes (reachability, lock-order, determinism)
/// over `files` as one program. Only rules present in `rules` (and whose
/// dir scoping matches the finding's path) are reported.
[[nodiscard]] std::vector<Finding> analyze_sources(
    const std::vector<SourceFile>& files, const std::vector<Rule>& rules,
    const AnalysisConfig& cfg);

/// Same, against default_analysis().
[[nodiscard]] std::vector<Finding> analyze_sources(
    const std::vector<SourceFile>& files, const std::vector<Rule>& rules);

}  // namespace lumos::lint

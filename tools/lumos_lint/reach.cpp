#include "reach.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <tuple>

namespace lumos::lint {
namespace {

bool path_blessed(const AnalysisConfig& cfg, const std::string& path) {
  for (const BlessedPath& b : cfg.blessed_paths) {
    if (path.compare(0, b.prefix.size(), b.prefix) == 0) return true;
  }
  return false;
}

/// Rule lookup restricted to the analysis rules actually registered.
const Rule* find_rule(const std::vector<Rule>& rules, const std::string& id) {
  for (const Rule& r : rules) {
    if (r.kind == RuleKind::kAnalysis && r.id == id) return &r;
  }
  return nullptr;
}

bool rule_covers_path(const Rule& rule, const std::string& path) {
  for (const std::string& ex : rule.exempt) {
    if (path.compare(0, ex.size(), ex) == 0) return false;
  }
  if (rule.dirs.empty()) return true;
  for (const std::string& d : rule.dirs) {
    if (path.compare(0, d.size(), d) == 0) return true;
  }
  return false;
}

std::string hop(const Node& n) {
  return n.def.qual + " (" + n.path + ":" + std::to_string(n.def.line) + ")";
}

}  // namespace

const AnalysisConfig& default_analysis() {
  static const AnalysisConfig kCfg = {
      // The serving entry points. step()/predict_batch()/predict_windows()
      // are convenience wrappers that allocate their output containers and
      // immediately delegate here; the span-based entry points are what a
      // latency-critical caller uses, and what the proof covers.
      {
          "serve::Server::submit",
          "serve::Server::poll",
          "serve::Server::poll_shard",
          "serve::Predictor::predict",
          "serve::Predictor::predict_spans",
          "serve::Predictor::predict_spans_columnar",
          "serve::FlatForest::predict",
          "serve::FlatForest::predict_columnar",
          "serve::FlatForest::eval_block",
          "serve::FlatForest::eval_block_scalar",
          "serve::FlatForest::eval_block_simd",
          "serve::FlatClassifier::predict",
          "serve::FlatClassifier::predict_columnar",
          "core::Lumos5G::predict",
          "ml::KnnRegressor::predict_scan",
          "ml::KnnClassifier::predict_scan",
          "ml::OrdinaryKriging::predict_scan",
          "ml::LuSolver::solve_into",
      },
      {
          {"src/common/clock.",
           "virtual clock seam; SteadyClock is the one sanctioned "
           "wall-clock site and tests inject ManualClock"},
          {"src/common/parallel.",
           "deterministic fork-join pool; worker parking/wakeup is the "
           "pool's contract, not the serving path's"},
      },
      {"mu_"},
  };
  return kCfg;
}

std::vector<Finding> analyze_sources(const std::vector<SourceFile>& files,
                                     const std::vector<Rule>& rules,
                                     const AnalysisConfig& cfg) {
  std::vector<Finding> out;
  if (files.empty()) return out;
  const CallGraph g = build_callgraph(files);

  const auto allowed = [&](const std::string& path, std::uint32_t line,
                           const std::string& id) {
    const auto it = g.allows.find(path);
    return it != g.allows.end() && it->second.covers(line, id);
  };

  // ---- reachability -------------------------------------------------------
  std::set<std::tuple<std::string, std::uint32_t, std::string>> seen;
  for (const std::string& root : cfg.roots) {
    std::vector<std::size_t> starts;
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
      if (g.nodes[i].def.qual == root) starts.push_back(i);
    }
    // Per-root BFS with predecessor links so the reported chain is the
    // shortest route from this root to the effect.
    std::map<std::size_t, std::size_t> pred;
    std::set<std::size_t> visited;
    std::deque<std::size_t> work;
    for (std::size_t s : starts) {
      if (visited.insert(s).second) work.push_back(s);
    }
    while (!work.empty()) {
      const std::size_t cur = work.front();
      work.pop_front();
      const Node& n = g.nodes[cur];

      if (!path_blessed(cfg, n.path)) {
        for (const EffectSite& e : n.effects) {
          const std::string rule_id = effect_rule(e.kind);
          const Rule* rule = find_rule(rules, rule_id);
          if (rule == nullptr || !rule_covers_path(*rule, n.path)) continue;
          if (allowed(n.path, e.line, rule_id)) continue;
          if (!seen.insert({n.path, e.line, rule_id}).second) continue;
          Finding f;
          f.path = n.path;
          f.line = e.line;
          f.rule = rule_id;
          f.excerpt = e.what;
          f.message = rule->summary + " (reachable from " + root + ")";
          // chain: root first, effect's function last
          std::vector<std::string> chain;
          std::size_t at = cur;
          chain.push_back(hop(g.nodes[at]));
          while (pred.count(at) > 0) {
            at = pred.at(at);
            chain.push_back(hop(g.nodes[at]));
          }
          std::reverse(chain.begin(), chain.end());
          f.chain = std::move(chain);
          out.push_back(std::move(f));
        }
      }

      for (std::size_t c = 0; c < n.calls.size(); ++c) {
        if (n.calls[c].blessed) continue;
        for (std::size_t target : n.out[c]) {
          if (path_blessed(cfg, g.nodes[target].path)) continue;
          if (visited.insert(target).second) {
            pred[target] = cur;
            work.push_back(target);
          }
        }
      }
    }
  }

  // ---- lock-order ---------------------------------------------------------
  if (const Rule* rule = find_rule(rules, "lock-order")) {
    for (const Node& n : g.nodes) {
      if (!rule_covers_path(*rule, n.path)) continue;
      for (const LockSite& site : n.locks) {
        if (allowed(n.path, site.line, rule->id)) continue;
        std::size_t last_rank = 0;
        bool first = true;
        for (const std::string& m : site.mutexes) {
          const auto it =
              std::find(cfg.lock_order.begin(), cfg.lock_order.end(), m);
          if (it == cfg.lock_order.end()) {
            if (seen.insert({n.path, site.line, rule->id}).second) {
              out.push_back({n.path, site.line, rule->id, m,
                             rule->summary + " (mutex '" + m +
                                 "' is not in the declared acquisition "
                                 "order)",
                             {hop(n)}});
            }
            continue;
          }
          const std::size_t rank =
              static_cast<std::size_t>(it - cfg.lock_order.begin());
          if (!first && rank < last_rank &&
              seen.insert({n.path, site.line, rule->id}).second) {
            out.push_back({n.path, site.line, rule->id, m,
                           rule->summary + " (mutex '" + m +
                               "' acquired out of declared order)",
                           {hop(n)}});
          }
          last_rank = rank;
          first = false;
        }
      }
    }
  }

  // ---- unordered-accumulate ----------------------------------------------
  if (const Rule* rule = find_rule(rules, "unordered-accumulate")) {
    for (const Node& n : g.nodes) {
      if (!rule_covers_path(*rule, n.path)) continue;
      for (const UnorderedLoop& loop : n.unordered_loops) {
        if (allowed(n.path, loop.line, rule->id)) continue;
        if (!seen.insert({n.path, loop.line, rule->id}).second) continue;
        out.push_back({n.path, loop.line, rule->id, loop.range,
                       rule->summary,
                       {hop(n)}});
      }
    }
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.rule) <
           std::tie(b.path, b.line, b.rule);
  });
  return out;
}

std::vector<Finding> analyze_sources(const std::vector<SourceFile>& files,
                                     const std::vector<Rule>& rules) {
  return analyze_sources(files, rules, default_analysis());
}

}  // namespace lumos::lint

// benchgate — perf-regression gate over the committed micro-benchmark
// baseline. Runs the serve/predict rows of bench_micro in google-benchmark
// JSON mode, compares each row's cpu_time against the committed
// BENCH_micro.json, and fails (exit 1) when any row regresses beyond the
// threshold (default 2x — generous enough for shared-CI noise, tight
// enough to catch an accidental O(n) -> O(n^2) or a lost arena).
//
//   benchgate --bench <bench_micro> --baseline <BENCH_micro.json>
//             [--filter <regex>] [--threshold <x>]
//
// The threshold default can also be set via LUMOS_BENCHGATE_FACTOR (a CI
// knob for noisier-than-usual runners); an explicit --threshold wins over
// the environment. A one-line worst-ratio summary prints even on pass, so
// green runs still leave a trend datapoint in the log.
//
// Exit status: 0 = within threshold (or a row is missing from the
// baseline — new rows gate once the baseline is refreshed), 1 = regression,
// 2 = usage/run error — including a build-type mismatch: when the
// baseline's recorded build type (lumos_build_type, falling back to
// google-benchmark's library_build_type) differs from the fresh run's,
// the comparison measures the build type rather than the change under
// test, and benchgate refuses to gate it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// benchmark name -> cpu_time in nanoseconds.
using Rows = std::map<std::string, double>;

double unit_to_ns(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;
}

/// Minimal scanner for google-benchmark JSON output: pulls (name,
/// cpu_time, time_unit) triples out of the "benchmarks" array without a
/// full JSON parser. Aggregate rows (mean/median/stddev) are skipped.
Rows parse_rows(const std::string& text) {
  Rows out;
  static const std::regex kRow(
      R"rx("name"\s*:\s*"([^"]+)"[^{}]*?"cpu_time"\s*:\s*([0-9.eE+-]+)\s*,\s*"time_unit"\s*:\s*"([a-z]+)")rx");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kRow);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (name.find("_mean") != std::string::npos ||
        name.find("_median") != std::string::npos ||
        name.find("_stddev") != std::string::npos) {
      continue;
    }
    out[name] = std::atof((*it)[2].str().c_str()) * unit_to_ns((*it)[3].str());
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Build type recorded in a google-benchmark JSON context. Prefers the
/// bench binary's own `lumos_build_type` stamp (the build type of the
/// measured library); falls back to google-benchmark's
/// `library_build_type` (how the benchmark library was compiled) for
/// baselines recorded before the custom stamp existed. Empty when neither
/// key is present.
std::string build_type_of(const std::string& text) {
  static const std::regex kKey(
      R"rx("(?:lumos|library)_build_type"\s*:\s*"([^"]+)")rx");
  std::string lumos, library;
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kKey);
       it != std::sregex_iterator(); ++it) {
    const std::string whole = (*it)[0].str();
    if (whole.find("lumos_build_type") != std::string::npos) {
      lumos = (*it)[1].str();
    } else {
      library = (*it)[1].str();
    }
  }
  return lumos.empty() ? library : lumos;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bench;
  std::string baseline;
  std::string filter = "BM_ServerThroughput|BM_FlatVsPointerPredict|"
                       "BM_ServePredictBatch|BM_HistogramBuild|"
                       "BM_ColumnarVsRowPredict|BM_ColumnarWalkSimd";
  double threshold = 2.0;
  if (const char* env = std::getenv("LUMOS_BENCHGATE_FACTOR")) {
    const double f = std::atof(env);
    if (f > 0.0) threshold = f;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench") == 0 && i + 1 < argc) {
      bench = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline = argv[++i];
    } else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      filter = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: benchgate --bench BIN --baseline JSON "
                   "[--filter RE] [--threshold X]\n");
      return 2;
    }
  }
  if (bench.empty() || baseline.empty()) {
    std::fprintf(stderr, "benchgate: --bench and --baseline are required\n");
    return 2;
  }

  const Rows base = parse_rows(read_file(baseline));
  if (base.empty()) {
    std::fprintf(stderr, "benchgate: no rows parsed from baseline %s\n",
                 baseline.c_str());
    return 2;
  }

  const std::string out_path = bench + ".benchgate.json";
  const std::string cmd = "\"" + bench + "\" --benchmark_filter=\"" + filter +
                          "\" --benchmark_format=json --benchmark_out=\"" +
                          out_path + "\" >/dev/null 2>&1";
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "benchgate: bench run failed: %s\n", cmd.c_str());
    return 2;
  }
  const std::string fresh_text = read_file(out_path);
  const Rows fresh = parse_rows(fresh_text);
  if (fresh.empty()) {
    std::fprintf(stderr, "benchgate: no rows parsed from fresh run\n");
    return 2;
  }

  // A debug run gated against a Release baseline (or vice versa) measures
  // the build type, not the change under test — refuse outright rather
  // than emit a misleading pass/fail.
  const std::string base_bt = build_type_of(read_file(baseline));
  const std::string fresh_bt = build_type_of(fresh_text);
  if (!base_bt.empty() && !fresh_bt.empty() && base_bt != fresh_bt) {
    std::fprintf(stderr,
                 "benchgate: build-type mismatch: baseline is '%s' but the "
                 "fresh run is '%s'; refusing to gate (rebuild to match, or "
                 "refresh the baseline from a '%s' build)\n",
                 base_bt.c_str(), fresh_bt.c_str(), fresh_bt.c_str());
    return 2;
  }

  int regressions = 0;
  int gated = 0;
  double worst_ratio = 0.0;
  std::string worst_name;
  for (const auto& [name, ns] : fresh) {
    const auto it = base.find(name);
    if (it == base.end()) {
      std::printf("benchgate: %-40s NEW (no baseline row, not gated)\n",
                  name.c_str());
      continue;
    }
    const double ratio = ns / it->second;
    const bool bad = ratio > threshold;
    std::printf("benchgate: %-40s %10.3f ms vs %10.3f ms  (%.2fx)%s\n",
                name.c_str(), ns / 1e6, it->second / 1e6, ratio,
                bad ? "  REGRESSION" : "");
    ++gated;
    if (ratio > worst_ratio) {
      worst_ratio = ratio;
      worst_name = name;
    }
    if (bad) ++regressions;
  }
  if (regressions > 0) {
    std::printf("benchgate: %d row(s) regressed beyond %.1fx\n", regressions,
                threshold);
    return 1;
  }
  // Print the worst ratio even on pass: green runs leave a trend
  // datapoint, and a slow drift toward the gate is visible before it trips.
  if (gated > 0) {
    std::printf(
        "benchgate: PASS  %d row(s) within %.1fx; worst %.2fx (%s)\n", gated,
        threshold, worst_ratio, worst_name.c_str());
  } else {
    std::printf("benchgate: PASS  no gated rows matched the filter\n");
  }
  return 0;
}

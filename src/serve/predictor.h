// The low-latency serving runtime over a trained (or reloaded)
// core::Lumos5G facade. Compilation flattens every tier's GBDT pair into
// contiguous FlatForest/FlatClassifier layouts; queries then walk the same
// fallback chain as the facade — first trained tier whose features the
// window can produce answers, harmonic tail last — and return predictions
// bit-identical to Lumos5G::predict (enforced by tests/test_serve.cpp).
//
// Per-UE state lives in serve::Session: the C feature group needs the UE's
// recent throughput/context history, so each UE keeps a small rolling
// window of SampleRecords and the app feeds one record per second via
// observe(). Batched prediction over many sessions is chunked across
// lumos::ThreadPool and is bit-identical at any LUMOS_THREADS setting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "core/lumos5g.h"
#include "data/column_store.h"
#include "data/features.h"
#include "data/sample.h"
#include "serve/flat_model.h"

namespace lumos::serve {

/// Rolling per-UE context window. Bounded: observing past capacity drops
/// the oldest sample. The buffer stays contiguous (feature extraction
/// wants one span), and at the default capacity the shift is a few
/// hundred bytes — noise next to model traversal.
class Session {
 public:
  /// Default capacity comfortably covers the facade's lag features
  /// (FeatureConfig::throughput_lags, default 5) and harmonic window.
  explicit Session(std::size_t capacity = 32) : capacity_(capacity) {
    window_.reserve(capacity_);
  }

  void observe(const data::SampleRecord& sample) {
    if (window_.size() == capacity_ && !window_.empty()) {
      window_.erase(window_.begin());
    }
    // Bounded: capacity_ was reserved at construction and the erase above
    // keeps size < capacity_, so this never reallocates.
    window_.push_back(sample);  // lumos-lint: allow(hot-path-alloc) reserved at construction, never grows
  }

  std::span<const data::SampleRecord> window() const noexcept {
    return window_;
  }
  std::size_t size() const noexcept { return window_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  void clear() noexcept { window_.clear(); }

 private:
  std::size_t capacity_;
  std::vector<data::SampleRecord> window_;
};

/// Preallocated working set for Predictor::predict_spans_columnar. The
/// caller owns it and reserves once (cold) for the largest batch it will
/// submit; every per-batch structure — the column-major feature arena, the
/// packed-row maps, the per-row model outputs — then lives here, so the
/// batched columnar walk itself never allocates. Reusable across batches
/// and across reloads as long as (max_windows, max_width) still fit.
class PredictScratch {
 public:
  PredictScratch() = default;

  /// Sizes every arena for up to `max_windows` windows of feature rows up
  /// to `max_width` wide (Predictor::max_width()). Allocates; cold path.
  void reserve(std::size_t max_windows, std::size_t max_width) {
    cols_.reshape(max_windows, max_width);
    row_.assign(max_width, 0.0);
    pending_.assign(max_windows, 0);
    packed_.assign(max_windows, 0);
    reg_.assign(max_windows, 0.0);
    cls_.assign(max_windows, 0);
  }

  std::size_t max_windows() const noexcept { return pending_.size(); }
  std::size_t max_width() const noexcept { return row_.size(); }

 private:
  friend class Predictor;
  data::ColumnStore cols_;             ///< packed rows, column-major
  std::vector<double> row_;            ///< one extracted row (scatter source)
  std::vector<std::uint32_t> pending_; ///< window indices not yet answered
  std::vector<std::uint32_t> packed_;  ///< packed row -> window index
  std::vector<double> reg_;            ///< regressor output per packed row
  std::vector<int> cls_;               ///< classifier output per packed row
};

class Predictor {
 public:
  /// Builds the flattened serving snapshot of a trained facade. Errors
  /// with kNotTrained when no tier is trained (nothing to serve).
  [[nodiscard]] static Expected<Predictor> compile(
      const core::Lumos5G& model);

  /// Predicts from a raw context window (last element = "now"). Tier
  /// walk, feature extraction, and errors mirror Lumos5G::predict.
  ///
  /// `min_tier` starts the fallback walk at that tier index instead of 0 —
  /// the serving loop's overload degradation: under queue pressure the
  /// server asks for a cheaper tier and the answering tier is still
  /// reported honestly on Prediction::tier. A `min_tier` at or past the
  /// chain length leaves only the harmonic tail. min_tier = 0 is exactly
  /// the facade walk.
  [[nodiscard]] Expected<core::Prediction> predict(
      std::span<const data::SampleRecord> recent,
      std::size_t min_tier = 0) const;

  [[nodiscard]] Expected<core::Prediction> predict(
      const Session& session, std::size_t min_tier = 0) const {
    return predict(session.window(), min_tier);
  }

  /// Allocation-free batched walk: out[i] receives windows[i]'s prediction
  /// (or its typed error). Requires out.size() == windows.size(). Windows
  /// are chunked over the global thread pool; each slot is written once,
  /// so the result is identical at any LUMOS_THREADS. This is the batched
  /// serving hot path — serve::Server::poll calls it with preallocated
  /// arenas, and it is a root in the lint reachability proof.
  void predict_spans(std::span<const std::span<const data::SampleRecord>> windows,
                     std::span<Expected<core::Prediction>> out,
                     std::size_t min_tier = 0) const;

  /// Columnar batched walk, bit-identical to predict_spans on the same
  /// inputs. Instead of walking every tier per row, it walks every row per
  /// tier: for each tier (starting at `min_tier`), the windows still
  /// unanswered are feature-extracted, scattered into the scratch's
  /// column-major arena, and evaluated in one predict_columnar pass per
  /// model — many rows advance together through each tree level over
  /// contiguous feature columns. Windows no tier can serve fall to the
  /// harmonic tail, exactly like predict().
  ///
  /// Allocation-free given a scratch with max_windows() >= windows.size()
  /// and max_width() >= this->max_width() (reserve it cold; Server does so
  /// at construction and reload). A root in the lint reachability proof.
  void predict_spans_columnar(
      std::span<const std::span<const data::SampleRecord>> windows,
      std::span<Expected<core::Prediction>> out, PredictScratch& scratch,
      std::size_t min_tier = 0) const;

  /// Batched prediction: out[i] is sessions[i]'s prediction (or its typed
  /// error — e.g. a freshly created session with an unusable window).
  /// Allocating convenience wrapper over predict_spans().
  [[nodiscard]] std::vector<Expected<core::Prediction>> predict_batch(
      std::span<const Session> sessions, std::size_t min_tier = 0) const;

  /// Same batched walk over raw window snapshots (one per queued request).
  /// Allocating convenience wrapper over predict_spans().
  [[nodiscard]] std::vector<Expected<core::Prediction>> predict_windows(
      std::span<const std::vector<data::SampleRecord>> windows,
      std::size_t min_tier = 0) const;

  /// The model tier chain (most capable first), as in Lumos5G.
  const std::vector<data::FeatureSetSpec>& tier_specs() const noexcept {
    return specs_;
  }
  bool tier_compiled(std::size_t i) const noexcept {
    return i < tiers_.size() && tiers_[i].compiled;
  }

  /// Total flattened nodes across all tiers (serving-memory footprint:
  /// 16 bytes each).
  std::size_t n_nodes() const noexcept;

  /// Widest tier's feature-row width — what a PredictScratch must be
  /// reserved for to serve this predictor.
  std::size_t max_width() const noexcept { return max_width_; }

 private:
  struct FlatTier {
    FlatForest regressor;
    FlatClassifier classifier;
    bool compiled = false;
  };

  Predictor() = default;

  /// The post-tier fallback shared by predict() and the columnar walk:
  /// harmonic mean of recent positive throughputs when enabled, else the
  /// static kWindowUnusable error.
  Expected<core::Prediction> tail_predict(
      std::span<const data::SampleRecord> recent) const;

  data::FeatureConfig features_;
  core::FallbackConfig fallback_;
  std::vector<data::FeatureSetSpec> specs_;
  std::vector<FlatTier> tiers_;
  // Precomputed at compile() so predict() never formats a name or
  // recomputes a width per call (both would allocate on the hot path).
  std::vector<std::string> tier_names_;
  std::vector<std::size_t> tier_widths_;
  std::size_t max_width_ = 0;
};

}  // namespace lumos::serve

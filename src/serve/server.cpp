#include "serve/server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "serve/model_io.h"

namespace lumos::serve {

Server::Server(Predictor predictor, ServerConfig cfg, Clock& clock)
    : cfg_(std::move(cfg)), clock_(&clock), predictor_(std::move(predictor)) {
  // Normalize the config so every depth -> behaviour mapping below is
  // total and monotone even for adversarial values.
  cfg_.queue_capacity = std::max<std::size_t>(1, cfg_.queue_capacity);
  cfg_.max_batch = std::max<std::size_t>(1, cfg_.max_batch);
  cfg_.max_sessions = std::max<std::size_t>(1, cfg_.max_sessions);
  cfg_.session_capacity = std::max<std::size_t>(1, cfg_.session_capacity);
  cfg_.reload_max_attempts = std::max<std::size_t>(1, cfg_.reload_max_attempts);
  cfg_.shed_watermark = std::clamp(cfg_.shed_watermark, 0.0, 1.0);
  std::sort(cfg_.degrade_watermarks.begin(), cfg_.degrade_watermarks.end());
  stats_.served_by_tier.assign(predictor_.tier_specs().size() + 1, 0);

  // Every buffer the serving path touches is allocated here, once: the
  // admission ring and the poll() batch/window/result arenas. After
  // construction, submit() and poll() never allocate (enforced by the
  // lumos_lint reachability pass).
  ring_.resize(cfg_.queue_capacity);
  batch_arena_.resize(cfg_.max_batch);
  window_arena_.resize(cfg_.max_batch * cfg_.session_capacity);
  span_arena_.resize(cfg_.max_batch);
  slot_arena_.resize(cfg_.max_batch);
  result_arena_.assign(
      cfg_.max_batch,
      Expected<core::Prediction>(Error{ErrorCode::kWindowUnusable, ""}));
  scratch_.reserve(cfg_.max_batch, predictor_.max_width());
}

Expected<std::uint64_t> Server::submit(const Request& req) {
  const std::uint64_t now = clock_->now_ms();
  // Admission is the one sanctioned lock on the hot path: the critical
  // section is a bounded handful of scalar writes into the preallocated
  // ring — no allocation, no I/O, no model work ever happens under mu_.
  const std::scoped_lock lock(mu_);  // lumos-lint: allow(hot-path-lock) bounded admission critical section
  if (shutting_down_) {
    ++stats_.rejected_shutdown;
    // Static messages: admission never formats. The typed code carries
    // the decision; depths and watermarks are visible via stats().
    return Error{ErrorCode::kShuttingDown, "draining"};
  }
  // Shed at the watermark, and unconditionally at the hard capacity bound.
  const auto shed_at = static_cast<std::size_t>(
      cfg_.shed_watermark * static_cast<double>(cfg_.queue_capacity));
  if (count_ >= std::max<std::size_t>(1, shed_at) ||
      count_ >= cfg_.queue_capacity) {
    ++stats_.shed;
    return Error{ErrorCode::kOverloaded, "over watermark"};
  }
  Pending& p = ring_[(head_ + count_) % cfg_.queue_capacity];
  p.ticket = next_ticket_++;
  p.ue_id = req.ue_id;
  p.enqueued_ms = now;
  const std::uint64_t budget =
      req.deadline_ms != 0 ? req.deadline_ms : cfg_.default_deadline_ms;
  p.expiry_ms = budget != 0 ? now + budget : 0;
  p.sample = req.sample;
  ++count_;
  ++stats_.submitted;
  stats_.peak_depth = std::max(stats_.peak_depth, count_);
  return p.ticket;
}

void Server::begin_shutdown() {
  const std::scoped_lock lock(mu_);
  shutting_down_ = true;
}

std::size_t Server::queue_depth() const {
  const std::scoped_lock lock(mu_);
  return count_;
}

bool Server::shutting_down() const {
  const std::scoped_lock lock(mu_);
  return shutting_down_;
}

std::size_t Server::min_tier_for_depth(std::size_t depth) const noexcept {
  const double occupancy = static_cast<double>(depth) /
                           static_cast<double>(cfg_.queue_capacity);
  std::size_t tier = 0;
  // Watermarks are sorted ascending (constructor), so the count of crossed
  // watermarks — and with it the tier floor — is monotone in depth.
  for (const double w : cfg_.degrade_watermarks) {
    if (occupancy >= w) ++tier;
  }
  return std::min(tier, predictor_.tier_specs().size());
}

Server::SessionEntry& Server::touch_session(std::uint64_t ue,
                                            std::uint64_t now) {
  auto it = sessions_.find(ue);
  if (it == sessions_.end()) {
    if (sessions_.size() >= cfg_.max_sessions) {
      // Evict the least-recently-used entry. use_seq_ gives a strict,
      // clock-independent recency order, so the victim is deterministic
      // even when many sessions share one coarse timestamp.
      auto victim = sessions_.begin();
      for (auto cand = sessions_.begin(); cand != sessions_.end(); ++cand) {
        if (cand->second.last_used_seq < victim->second.last_used_seq) {
          victim = cand;
        }
      }
      sessions_.erase(victim);
      ++stats_.evicted_lru;
    }
    // First contact for this UE: the one amortized allocation on the
    // serving path (a map node + the session's reserved window). Steady
    // state — every UE already seen — allocates nothing.
    it = sessions_.emplace(ue, SessionEntry{Session(cfg_.session_capacity),  // lumos-lint: allow(hot-path-alloc) first-contact session creation, amortized
                                            now, 0}).first;
  }
  it->second.last_used_ms = now;
  it->second.last_used_seq = ++use_seq_;
  return it->second;
}

void Server::evict_expired_sessions(std::uint64_t now) {
  if (cfg_.session_ttl_ms == 0) return;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.last_used_ms + cfg_.session_ttl_ms < now) {
      it = sessions_.erase(it);
      ++stats_.evicted_ttl;
    } else {
      ++it;
    }
  }
}

std::size_t Server::poll(std::span<Response> out) {
  // 1. Drain up to min(max_batch, out.size()) requests into the batch
  //    arena. The tier floor is derived from the depth at the start of the
  //    step — the batch about to be served is part of the pressure it was
  //    admitted under.
  std::size_t n = 0;
  std::size_t depth_at_start = 0;
  {
    // Same bounded critical section as submit(): scalar copies out of the
    // preallocated ring, nothing else.
    const std::scoped_lock lock(mu_);  // lumos-lint: allow(hot-path-lock) bounded drain critical section
    depth_at_start = count_;
    n = std::min({cfg_.max_batch, count_, out.size()});
    for (std::size_t i = 0; i < n; ++i) {
      batch_arena_[i] = ring_[(head_ + i) % cfg_.queue_capacity];
    }
    head_ = (head_ + n) % cfg_.queue_capacity;
    count_ -= n;
  }
  const std::size_t min_tier = min_tier_for_depth(depth_at_start);
  const std::uint64_t now = clock_->now_ms();

  // 2. Expire overdue requests without touching sessions or the model —
  //    an expired answer is pure waste, so it must cost nothing. Live
  //    requests update their session and snapshot its window into the
  //    contiguous window arena at their position in admission order, so a
  //    UE submitting twice in one batch sees its first observation but not
  //    its second.
  std::size_t n_windows = 0;
  std::size_t arena_used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Pending& p = batch_arena_[i];
    Response& r = out[i];
    r.ticket = p.ticket;
    r.ue_id = p.ue_id;
    r.enqueued_ms = p.enqueued_ms;
    r.served_ms = now;
    r.min_tier = min_tier;
    if (p.expiry_ms != 0 && now > p.expiry_ms) {
      r.result = Error{ErrorCode::kDeadlineExceeded, "past deadline"};
      ++stats_.deadline_expired;
      continue;
    }
    SessionEntry& entry = touch_session(p.ue_id, now);
    entry.session.observe(p.sample);
    const auto w = entry.session.window();
    // arena_used never exceeds max_batch * session_capacity (the arena's
    // constructed size): at most max_batch windows of at most
    // session_capacity records each.
    std::copy(w.begin(), w.end(), window_arena_.begin() + arena_used);
    span_arena_[n_windows] = {window_arena_.data() + arena_used, w.size()};
    slot_arena_[n_windows] = i;
    arena_used += w.size();
    ++n_windows;
  }

  // 3. One batched columnar walk into the result arena: the batch's
  //    feature rows are packed tier-by-tier into the preallocated scratch
  //    and evaluated level-synchronously over contiguous columns —
  //    bit-identical to predict_spans (enforced by tests/test_columnar.cpp)
  //    but cache-friendlier per tree level.
  predictor_.predict_spans_columnar({span_arena_.data(), n_windows},
                                    {result_arena_.data(), n_windows},
                                    scratch_, min_tier);
  for (std::size_t j = 0; j < n_windows; ++j) {
    Response& r = out[slot_arena_[j]];
    if (result_arena_[j].has_value()) {
      const auto tier = static_cast<std::size_t>(result_arena_[j]->tier);
      if (tier < stats_.served_by_tier.size()) ++stats_.served_by_tier[tier];
      ++stats_.served;
    } else {
      ++stats_.failed;
    }
    r.result = std::move(result_arena_[j]);
  }

  // 4. Idle-session TTL sweep against the same `now` the batch saw.
  evict_expired_sessions(now);
  return n;
}

std::vector<Response> Server::step() {
  std::vector<Response> out(cfg_.max_batch);
  const std::size_t n = poll(out);
  out.resize(n);
  return out;
}

std::vector<Response> Server::drain() {
  std::vector<Response> all;
  while (queue_depth() > 0) {
    auto batch = step();
    all.insert(all.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  return all;
}

Expected<void> Server::reload_bytes(std::string_view bytes) {
  ++stats_.reload_attempts;
  // Validate fully on the side: envelope hash, payload parse, tier-chain
  // compile. The serving predictor_ is untouched until the very last move,
  // so a request between steps can never observe a half-loaded model.
  auto model = load_lumos5g(bytes);
  if (!model) {
    ++stats_.reloads_failed;
    return Error{model.error().code,
                 "reload rolled back (still serving generation " +
                     std::to_string(generation_) + "): " +
                     model.error().message};
  }
  auto compiled = Predictor::compile(*model);
  if (!compiled) {
    ++stats_.reloads_failed;
    return Error{compiled.error().code,
                 "reload rolled back (still serving generation " +
                     std::to_string(generation_) + "): " +
                     compiled.error().message};
  }
  if (compiled->tier_specs().size() != predictor_.tier_specs().size()) {
    // A different tier chain re-shapes the per-tier stats; keep the
    // counters coherent across the swap.
    stats_.served_by_tier.assign(compiled->tier_specs().size() + 1, 0);
  }
  predictor_ = std::move(*compiled);
  // The new model's widest tier may differ; re-reserve the columnar
  // scratch here (cold path) so poll() stays allocation-free.
  scratch_.reserve(cfg_.max_batch, predictor_.max_width());
  ++generation_;
  ++stats_.reloads_ok;
  return {};
}

Expected<void> Server::reload(const std::filesystem::path& path) {
  std::uint64_t backoff = std::max<std::uint64_t>(1, cfg_.reload_backoff_ms);
  Error last{ErrorCode::kIoError, "reload never attempted"};
  for (std::size_t attempt = 0; attempt < cfg_.reload_max_attempts; ++attempt) {
    if (attempt > 0) {
      clock_->sleep_ms(backoff);
      backoff *= 2;
    }
    auto bytes = read_artifact(path);
    if (!bytes) {
      // Transient by assumption (file momentarily absent mid-publish, EIO
      // blip): worth the bounded backoff-retry loop.
      ++stats_.reload_attempts;
      last = bytes.error();
      continue;
    }
    auto swapped = reload_bytes(*bytes);
    if (swapped) return swapped;
    last = swapped.error();
    if (last.code != ErrorCode::kIoError) {
      // Validation failure: the artifact itself is bad, retrying the same
      // bytes cannot help. reload_bytes already rolled back.
      return last;
    }
  }
  ++stats_.reloads_failed;
  return Error{last.code,
               "reload gave up after " +
                   std::to_string(cfg_.reload_max_attempts) +
                   " attempts (still serving generation " +
                   std::to_string(generation_) + "): " + last.message};
}

}  // namespace lumos::serve

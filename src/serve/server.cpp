#include "serve/server.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/parallel.h"
#include "serve/model_io.h"

namespace lumos::serve {

Server::Server(Predictor predictor, ServerConfig cfg, Clock& clock)
    : cfg_(std::move(cfg)), clock_(&clock), predictor_(std::move(predictor)) {
  // Normalize the config so every depth -> behaviour mapping below is
  // total and monotone even for adversarial values.
  cfg_.queue_capacity = std::max<std::size_t>(1, cfg_.queue_capacity);
  cfg_.max_batch = std::max<std::size_t>(1, cfg_.max_batch);
  cfg_.max_sessions = std::max<std::size_t>(1, cfg_.max_sessions);
  cfg_.session_capacity = std::max<std::size_t>(1, cfg_.session_capacity);
  cfg_.reload_max_attempts = std::max<std::size_t>(1, cfg_.reload_max_attempts);
  cfg_.shed_watermark = std::clamp(cfg_.shed_watermark, 0.0, 1.0);
  std::sort(cfg_.degrade_watermarks.begin(), cfg_.degrade_watermarks.end());
  stats_.served_by_tier.assign(predictor_.tier_specs().size() + 1, 0);
  shed_threshold_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg_.shed_watermark *
                                  static_cast<double>(cfg_.queue_capacity)));

  // Every buffer the serving path touches is allocated here, once: the
  // per-shard admission rings and poll() window/result arenas plus the
  // global merge arena. After construction, submit() and poll() never
  // allocate (enforced by the lumos_lint reachability pass).
  n_shards_ = cfg_.num_shards != 0 ? cfg_.num_shards
                                   : ThreadPool::global().threads();
  n_shards_ = std::max<std::size_t>(1, n_shards_);
  cfg_.num_shards = n_shards_;
  shards_ = std::make_unique<Shard[]>(n_shards_);
  for (std::size_t s = 0; s < n_shards_; ++s) {
    Shard& sh = shards_[s];
    sh.ring_.resize(cfg_.queue_capacity);
    sh.window_arena_.resize(cfg_.max_batch * cfg_.session_capacity);
    sh.span_arena_.resize(cfg_.max_batch);
    sh.slot_arena_.resize(cfg_.max_batch);
    sh.result_arena_.assign(
        cfg_.max_batch,
        Expected<core::Prediction>(Error{ErrorCode::kWindowUnusable, ""}));
    sh.scratch_.reserve(cfg_.max_batch, predictor_.max_width());
  }
  batch_arena_.resize(cfg_.max_batch);
}

Expected<std::uint64_t> Server::submit(const Request& req) {
  const std::uint64_t now = clock_->now_ms();
  if (shutting_down_.load(std::memory_order_acquire)) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    // Static messages: admission never formats. The typed code carries
    // the decision; depths and watermarks are visible via stats().
    return Error{ErrorCode::kShuttingDown, "draining"};
  }
  // Shed at the watermark, and unconditionally at the hard capacity
  // bound. The global depth is a lock-free counter: reserve a slot first,
  // give it back if the pre-increment depth was already at the threshold —
  // the same decision the single-queue server took under its lock.
  const std::size_t prev =
      total_count_.fetch_add(1, std::memory_order_acq_rel);
  if (prev >= shed_threshold_ || prev >= cfg_.queue_capacity) {
    total_count_.fetch_sub(1, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Error{ErrorCode::kOverloaded, "over watermark"};
  }
  // Admission is the one sanctioned lock on the hot path, and it is now
  // per-shard: the critical section is a bounded handful of scalar writes
  // into the shard's preallocated ring — no allocation, no I/O, no model
  // work ever happens under a shard mutex. The ticket is drawn inside the
  // lock so every shard ring stays ticket-ascending (what poll()'s k-way
  // merge relies on).
  Shard& shard = shards_[shard_of(req.ue_id)];
  const std::scoped_lock lock(shard.mu_);  // lumos-lint: allow(hot-path-lock) bounded admission critical section
  Pending& p = shard.ring_[(shard.head_ + shard.count_) % cfg_.queue_capacity];
  p.ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  p.ue_id = req.ue_id;
  p.enqueued_ms = now;
  const std::uint64_t budget =
      req.deadline_ms != 0 ? req.deadline_ms : cfg_.default_deadline_ms;
  p.expiry_ms = budget != 0 ? now + budget : 0;
  p.sample = req.sample;
  ++shard.count_;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t depth = prev + 1;
  std::size_t peak = peak_depth_.load(std::memory_order_relaxed);
  while (peak < depth && !peak_depth_.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
  return p.ticket;
}

void Server::begin_shutdown() {
  shutting_down_.store(true, std::memory_order_release);
}

std::size_t Server::queue_depth() const {
  return total_count_.load(std::memory_order_acquire);
}

bool Server::shutting_down() const {
  return shutting_down_.load(std::memory_order_acquire);
}

std::size_t Server::min_tier_for_depth(std::size_t depth) const noexcept {
  const double occupancy = static_cast<double>(depth) /
                           static_cast<double>(cfg_.queue_capacity);
  std::size_t tier = 0;
  // Watermarks are sorted ascending (constructor), so the count of crossed
  // watermarks — and with it the tier floor — is monotone in depth.
  for (const double w : cfg_.degrade_watermarks) {
    if (occupancy >= w) ++tier;
  }
  return std::min(tier, predictor_.tier_specs().size());
}

Server::SessionEntry& Server::touch_session(std::uint64_t ue,
                                            std::uint64_t now) {
  Shard& home = shards_[shard_of(ue)];
  auto it = home.sessions_.find(ue);
  if (it == home.sessions_.end()) {
    if (n_sessions_ >= cfg_.max_sessions) {
      // Evict the least-recently-used entry ACROSS ALL SHARDS — the LRU
      // capacity is global, exactly as in the single-shard server, so the
      // victim set never depends on num_shards. use_seq_ gives a strict,
      // clock-independent recency order, so the victim is deterministic
      // even when many sessions share one coarse timestamp.
      Shard* victim_shard = nullptr;
      std::map<std::uint64_t, SessionEntry>::iterator victim;
      for (std::size_t s = 0; s < n_shards_; ++s) {
        auto& sess = shards_[s].sessions_;
        for (auto cand = sess.begin(); cand != sess.end(); ++cand) {
          if (victim_shard == nullptr ||
              cand->second.last_used_seq < victim->second.last_used_seq) {
            victim_shard = &shards_[s];
            victim = cand;
          }
        }
      }
      if (victim_shard != nullptr) {
        victim_shard->sessions_.erase(victim);
        --n_sessions_;
        ++stats_.evicted_lru;
      }
    }
    // First contact for this UE: the one amortized allocation on the
    // serving path (a map node + the session's reserved window). Steady
    // state — every UE already seen — allocates nothing.
    it = home.sessions_.emplace(ue, SessionEntry{Session(cfg_.session_capacity),  // lumos-lint: allow(hot-path-alloc) first-contact session creation, amortized
                                                 now, 0}).first;
    ++n_sessions_;
  }
  it->second.last_used_ms = now;
  it->second.last_used_seq = ++use_seq_;
  return it->second;
}

void Server::evict_expired_sessions(std::uint64_t now) {
  if (cfg_.session_ttl_ms == 0) return;
  // Shards ascending, then map order within a shard: the evicted SET is
  // the TTL predicate's, identical to the single-map sweep; only the
  // bookkeeping order differs, and no observable output depends on it.
  for (std::size_t s = 0; s < n_shards_; ++s) {
    auto& sess = shards_[s].sessions_;
    for (auto it = sess.begin(); it != sess.end();) {
      if (it->second.last_used_ms + cfg_.session_ttl_ms < now) {
        it = sess.erase(it);
        --n_sessions_;
        ++stats_.evicted_ttl;
      } else {
        ++it;
      }
    }
  }
}

std::size_t Server::poll(std::span<Response> out) {
  // 1. Drain up to min(max_batch, out.size()) requests into the merge
  //    arena, reassembling GLOBAL ticket order from the shard rings with
  //    a k-way smallest-head-ticket merge (each ring is ticket-ascending,
  //    so the merged batch is exactly the oldest n admitted requests —
  //    the same batch, in the same order, the single-queue server
  //    drained). The tier floor is derived from the depth at the start of
  //    the step — the batch about to be served is part of the pressure it
  //    was admitted under. The critical section is bounded scalar copies
  //    out of preallocated rings, nothing else; shard mutexes are taken
  //    in ascending index order (the one multi-lock site in the tree).
  std::size_t n = 0;
  std::size_t depth_at_start = 0;
  for (std::size_t s = 0; s < n_shards_; ++s) shards_[s].mu_.lock();  // lumos-lint: allow(hot-path-lock) bounded drain critical section
  for (std::size_t s = 0; s < n_shards_; ++s) {
    depth_at_start += shards_[s].count_;
  }
  n = std::min({cfg_.max_batch, depth_at_start, out.size()});
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = n_shards_;
    std::uint64_t best_ticket = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t s = 0; s < n_shards_; ++s) {
      const Shard& sh = shards_[s];
      if (sh.count_ != 0 && sh.ring_[sh.head_].ticket < best_ticket) {
        best_ticket = sh.ring_[sh.head_].ticket;
        best = s;
      }
    }
    Shard& sh = shards_[best];
    batch_arena_[i] = sh.ring_[sh.head_];
    sh.head_ = (sh.head_ + 1) % cfg_.queue_capacity;
    --sh.count_;
  }
  total_count_.fetch_sub(n, std::memory_order_acq_rel);
  for (std::size_t s = 0; s < n_shards_; ++s) shards_[s].mu_.unlock();

  const std::size_t min_tier = min_tier_for_depth(depth_at_start);
  const std::uint64_t now = clock_->now_ms();

  // 2. Expire overdue requests without touching sessions or the model —
  //    an expired answer is pure waste, so it must cost nothing. Live
  //    requests update their session and snapshot its window into their
  //    OWNING shard's contiguous window arena, still walking the batch in
  //    admission order, so a UE submitting twice in one batch sees its
  //    first observation but not its second — and every window of a UE
  //    lands in the shard that owns its session, giving phase 3 fully
  //    disjoint per-shard work.
  for (std::size_t s = 0; s < n_shards_; ++s) {
    shards_[s].n_windows_ = 0;
    shards_[s].arena_used_ = 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Pending& p = batch_arena_[i];
    Response& r = out[i];
    r.ticket = p.ticket;
    r.ue_id = p.ue_id;
    r.enqueued_ms = p.enqueued_ms;
    r.served_ms = now;
    r.min_tier = min_tier;
    if (p.expiry_ms != 0 && now > p.expiry_ms) {
      r.result = Error{ErrorCode::kDeadlineExceeded, "past deadline"};
      ++stats_.deadline_expired;
      continue;
    }
    SessionEntry& entry = touch_session(p.ue_id, now);
    entry.session.observe(p.sample);
    const auto w = entry.session.window();
    Shard& home = shards_[shard_of(p.ue_id)];
    // arena_used_ never exceeds max_batch * session_capacity (the arena's
    // constructed size): at most max_batch windows of at most
    // session_capacity records each, even if one shard owns the batch.
    std::copy(w.begin(), w.end(),
              home.window_arena_.begin() + home.arena_used_);
    home.span_arena_[home.n_windows_] = {
        home.window_arena_.data() + home.arena_used_, w.size()};
    home.slot_arena_[home.n_windows_] = i;
    home.arena_used_ += w.size();
    ++home.n_windows_;
  }

  // 3. Fork-join over the shards: each runs one batched columnar walk
  //    over its own spans into its own result arena (poll_shard). A
  //    window's prediction depends only on its own rows and the tier
  //    floor — never on which other windows share the batch — so the
  //    per-shard split is bit-identical to the single whole-batch call
  //    (enforced by tests/test_shard.cpp digest crosses). Grain 1 lets
  //    LUMOS_GRAIN collapse the fan-out on hosts where it costs more
  //    than it buys.
  parallel_for(0, n_shards_, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t s = b; s < e; ++s) {
      poll_shard(shards_[s], min_tier);
    }
  });

  //    Merge + tally sequentially (counters are order-insensitive sums;
  //    each out[] slot is written exactly once via slot_arena_).
  for (std::size_t s = 0; s < n_shards_; ++s) {
    Shard& sh = shards_[s];
    for (std::size_t j = 0; j < sh.n_windows_; ++j) {
      Response& r = out[sh.slot_arena_[j]];
      if (sh.result_arena_[j].has_value()) {
        const auto tier = static_cast<std::size_t>(sh.result_arena_[j]->tier);
        if (tier < stats_.served_by_tier.size()) {
          ++stats_.served_by_tier[tier];
        }
        ++stats_.served;
      } else {
        ++stats_.failed;
      }
      r.result = std::move(sh.result_arena_[j]);
    }
  }

  // 4. Idle-session TTL sweep against the same `now` the batch saw.
  evict_expired_sessions(now);
  return n;
}

void Server::poll_shard(Shard& shard, std::size_t min_tier) const {
  if (shard.n_windows_ == 0) return;
  // One batched columnar walk into the shard's result arena: the shard's
  // feature rows are packed tier-by-tier into its preallocated scratch
  // and evaluated level-synchronously over contiguous columns —
  // bit-identical to predict_spans (enforced by tests/test_columnar.cpp)
  // but cache-friendlier per tree level.
  predictor_.predict_spans_columnar(
      {shard.span_arena_.data(), shard.n_windows_},
      {shard.result_arena_.data(), shard.n_windows_}, shard.scratch_,
      min_tier);
}

std::vector<Response> Server::step() {
  std::vector<Response> out(cfg_.max_batch);
  const std::size_t n = poll(out);
  out.resize(n);
  return out;
}

std::vector<Response> Server::drain() {
  std::vector<Response> all;
  while (queue_depth() > 0) {
    auto batch = step();
    all.insert(all.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  return all;
}

Expected<void> Server::reload_bytes(std::string_view bytes) {
  ++stats_.reload_attempts;
  // Validate fully on the side: envelope hash, payload parse, tier-chain
  // compile. The serving predictor_ is untouched until the very last move,
  // so a request between steps can never observe a half-loaded model.
  auto model = load_lumos5g(bytes);
  if (!model) {
    ++stats_.reloads_failed;
    return Error{model.error().code,
                 "reload rolled back (still serving generation " +
                     std::to_string(generation_) + "): " +
                     model.error().message};
  }
  auto compiled = Predictor::compile(*model);
  if (!compiled) {
    ++stats_.reloads_failed;
    return Error{compiled.error().code,
                 "reload rolled back (still serving generation " +
                     std::to_string(generation_) + "): " +
                     compiled.error().message};
  }
  if (compiled->tier_specs().size() != predictor_.tier_specs().size()) {
    // A different tier chain re-shapes the per-tier stats; keep the
    // counters coherent across the swap.
    stats_.served_by_tier.assign(compiled->tier_specs().size() + 1, 0);
  }
  predictor_ = std::move(*compiled);
  // The new model's widest tier may differ; re-reserve every shard's
  // columnar scratch here (cold path) so poll() stays allocation-free.
  for (std::size_t s = 0; s < n_shards_; ++s) {
    shards_[s].scratch_.reserve(cfg_.max_batch, predictor_.max_width());
  }
  ++generation_;
  ++stats_.reloads_ok;
  return {};
}

Expected<void> Server::reload(const std::filesystem::path& path) {
  std::uint64_t backoff = std::max<std::uint64_t>(1, cfg_.reload_backoff_ms);
  Error last{ErrorCode::kIoError, "reload never attempted"};
  for (std::size_t attempt = 0; attempt < cfg_.reload_max_attempts; ++attempt) {
    if (attempt > 0) {
      clock_->sleep_ms(backoff);
      backoff *= 2;
    }
    auto bytes = read_artifact(path);
    if (!bytes) {
      // Transient by assumption (file momentarily absent mid-publish, EIO
      // blip): worth the bounded backoff-retry loop.
      ++stats_.reload_attempts;
      last = bytes.error();
      continue;
    }
    auto swapped = reload_bytes(*bytes);
    if (swapped) return swapped;
    last = swapped.error();
    if (last.code != ErrorCode::kIoError) {
      // Validation failure: the artifact itself is bad, retrying the same
      // bytes cannot help. reload_bytes already rolled back.
      return last;
    }
  }
  ++stats_.reloads_failed;
  return Error{last.code,
               "reload gave up after " +
                   std::to_string(cfg_.reload_max_attempts) +
                   " attempts (still serving generation " +
                   std::to_string(generation_) + "): " + last.message};
}

}  // namespace lumos::serve

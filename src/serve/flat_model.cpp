#include "serve/flat_model.h"

#include <cmath>

#include "common/contracts.h"
#include "common/parallel.h"
#include "common/simd.h"

#if defined(LUMOS_SIMD_AVX2) || defined(LUMOS_SIMD_SSE2) || \
    defined(LUMOS_SIMD_NEON)
#define LUMOS_HAS_VECTOR_WALK 1
#endif

namespace lumos::serve {
namespace {

/// Appends one tree to `out` in adjacent-children order and returns its
/// root index. Works for any source node ordering (freshly fit or
/// deserialized): an explicit worklist rewrites parent→child links as the
/// pair slots are allocated.
std::uint32_t flatten_tree(const ml::GradientTree& tree,
                           std::vector<FlatNode>& out) {
  const auto& src = tree.nodes();
  const auto root = static_cast<std::uint32_t>(out.size());
  if (src.empty()) {
    // An unfit tree predicts 0.0; emit the equivalent single leaf.
    out.push_back(FlatNode{0.0, -1, 0});
    return root;
  }

  struct Pending {
    std::size_t src_index;
    std::uint32_t dst_index;
  };
  out.push_back(FlatNode{});
  std::vector<Pending> stack{{0, root}};
  while (!stack.empty()) {
    const Pending p = stack.back();
    stack.pop_back();
    const auto& n = src[p.src_index];
    FlatNode flat;
    if (n.feature < 0) {
      flat.value = n.value;
      flat.feature = -1;
      flat.left = 0;
    } else {
      const auto left_dst = static_cast<std::uint32_t>(out.size());
      LUMOS_ASSERT(left_dst < FlatNode::kChildMask - 1,
                   "flattened ensemble exceeds 2^31 nodes");
      flat.value = n.threshold;
      flat.feature = n.feature;
      flat.left = left_dst |
                  (n.default_left ? FlatNode::kDefaultLeftBit : 0U);
      out.push_back(FlatNode{});
      out.push_back(FlatNode{});
      stack.push_back({static_cast<std::size_t>(n.left), left_dst});
      stack.push_back({static_cast<std::size_t>(n.right), left_dst + 1});
    }
    out[p.dst_index] = flat;
  }
  return root;
}

double traverse(const FlatNode* nodes, std::uint32_t root,
                std::span<const double> row) noexcept {
  const FlatNode* n = &nodes[root];
  while (n->feature >= 0) {
    const double v = row[static_cast<std::size_t>(n->feature)];
    const std::uint32_t left = n->left & FlatNode::kChildMask;
    // NaN routes along the learned default branch, exactly like
    // GradientTree::predict; finite values take the threshold compare.
    const bool go_left = std::isnan(v)
                             ? (n->left & FlatNode::kDefaultLeftBit) != 0U
                             : v <= n->value;
    n = &nodes[left + (go_left ? 0U : 1U)];
  }
  return n->value;
}

}  // namespace

FlatForest FlatForest::flatten(std::span<const ml::GradientTree> trees,
                               std::size_t first, std::size_t stride,
                               Aggregate agg, double base, double scale) {
  LUMOS_EXPECTS(stride >= 1, "FlatForest::flatten: stride must be >= 1");
  FlatForest f;
  f.agg_ = agg;
  f.base_ = base;
  f.scale_ = scale;
  std::size_t total_nodes = 0;
  for (std::size_t t = first; t < trees.size(); t += stride) {
    total_nodes += trees[t].nodes().empty() ? 1 : trees[t].nodes().size();
  }
  f.nodes_.reserve(total_nodes);
  for (std::size_t t = first; t < trees.size(); t += stride) {
    f.roots_.push_back(flatten_tree(trees[t], f.nodes_));
  }
  return f;
}

FlatForest FlatForest::flatten(const ml::GbdtRegressor& model) {
  return flatten(model.trees(), 0, 1, Aggregate::kScaledSum, model.base(),
                 model.config().learning_rate);
}

FlatForest FlatForest::flatten(const ml::RandomForestRegressor& model) {
  return flatten(model.trees(), 0, 1, Aggregate::kMean, 0.0, 1.0);
}

double FlatForest::predict(std::span<const double> row) const noexcept {
  if (agg_ == Aggregate::kMean) {
    if (roots_.empty()) return 0.0;  // matches RandomForest on no trees
    double s = 0.0;
    for (const std::uint32_t root : roots_) {
      s += traverse(nodes_.data(), root, row);
    }
    return s / static_cast<double>(roots_.size());
  }
  double s = base_;
  for (const std::uint32_t root : roots_) {
    s += scale_ * traverse(nodes_.data(), root, row);
  }
  return s;
}

std::vector<double> FlatForest::predict_batch(
    const ml::FeatureMatrix& x) const {
  std::vector<double> out(x.rows());
  parallel_for(0, x.rows(), 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t r = b; r < e; ++r) out[r] = predict(x.row(r));
  });
  return out;
}

void FlatForest::eval_block(const data::ColumnBlock& block, std::size_t row0,
                            std::size_t m, double* acc) const noexcept {
#if defined(LUMOS_HAS_VECTOR_WALK)
  // The vector kernel addresses nodes and column values through 32-bit
  // gather indices (node index * 4 int32 slots; feature * stride + row).
  // Both are far inside range for every real model, but guard anyway and
  // fall back to the scalar walk — same bits either way.
  if (simd::enabled() && nodes_.size() < (1U << 28) &&
      block.n_cols * block.stride < (1U << 31)) {
    eval_block_simd(block, row0, m, acc);
    return;
  }
#endif
  eval_block_scalar(block, row0, m, acc);
}

void FlatForest::eval_block_scalar(const data::ColumnBlock& block,
                                   std::size_t row0, std::size_t m,
                                   double* acc) const noexcept {
  const bool mean = agg_ == Aggregate::kMean;
  const double init = mean ? 0.0 : base_;
  for (std::size_t j = 0; j < m; ++j) acc[j] = init;
  if (roots_.empty()) return;  // mean-of-nothing stays 0.0, like predict()

  const FlatNode* nodes = nodes_.data();
  std::uint32_t cur[kColumnarRowBlock];
  for (const std::uint32_t root : roots_) {
    for (std::size_t j = 0; j < m; ++j) cur[j] = root;
    // Level-synchronous walk: one pass moves every still-internal row one
    // level down. Rows are independent, so the feature gathers of a pass
    // overlap; rows that reached a leaf park there (feature < 0).
    bool any = true;
    while (any) {
      any = false;
      for (std::size_t j = 0; j < m; ++j) {
        const FlatNode& n = nodes[cur[j]];
        if (n.feature < 0) continue;
        const double v = block.col(static_cast<std::size_t>(n.feature))[row0 + j];
        const std::uint32_t left = n.left & FlatNode::kChildMask;
        const bool go_left = std::isnan(v)
                                 ? (n.left & FlatNode::kDefaultLeftBit) != 0U
                                 : v <= n.value;
        cur[j] = left + (go_left ? 0U : 1U);
        any = true;
      }
    }
    // Fold this tree's leaves in tree order — the accumulation order of
    // predict(), so the block result is bit-identical per row.
    if (mean) {
      for (std::size_t j = 0; j < m; ++j) acc[j] += nodes[cur[j]].value;
    } else {
      for (std::size_t j = 0; j < m; ++j) {
        acc[j] += scale_ * nodes[cur[j]].value;
      }
    }
  }
  if (mean) {
    const double n_trees = static_cast<double>(roots_.size());
    for (std::size_t j = 0; j < m; ++j) acc[j] /= n_trees;
  }
}

#if defined(LUMOS_HAS_VECTOR_WALK)
void FlatForest::eval_block_simd(const data::ColumnBlock& block,
                                 std::size_t row0, std::size_t m,
                                 double* acc) const noexcept {
  namespace vs = simd;
  constexpr std::size_t kW = vs::kDoubleWidth;
  const std::size_t m_vec = m - m % kW;
  if (roots_.empty() || m_vec == 0) {
    eval_block_scalar(block, row0, m, acc);
    return;
  }

  // FlatNode is 16 bytes: viewed as doubles, node i's value/threshold is
  // slot 2*i; viewed as int32s, its feature is slot 4*i + 2 and its
  // packed left/default word is slot 4*i + 3. The gathers below read the
  // exact addresses the scalar walk dereferences.
  const auto* node_f64 = reinterpret_cast<const double*>(nodes_.data());
  const auto* node_i32 = reinterpret_cast<const std::int32_t*>(nodes_.data());

  const bool mean = agg_ == Aggregate::kMean;
  const auto scale_v = vs::broadcast_f64(scale_);
  const auto init_v = vs::broadcast_f64(mean ? 0.0 : base_);
  const auto stride_v =
      vs::broadcast_i32(static_cast<std::int32_t>(block.stride));
  const auto zero_i = vs::broadcast_i32(0);
  const auto one_i = vs::broadcast_i32(1);
  const auto two_i = vs::broadcast_i32(2);
  const auto three_i = vs::broadcast_i32(3);
  const auto four_i = vs::broadcast_i32(4);
  const auto minus1_i = vs::broadcast_i32(-1);
  const auto child_mask_i =
      vs::broadcast_i32(static_cast<std::int32_t>(FlatNode::kChildMask));
  const auto zero_f = vs::broadcast_f64(0.0);
  const auto all_lanes = vs::cmp_le(zero_f, zero_f);  // all-ones mask

  alignas(16) static constexpr std::int32_t kLaneOff[4] = {0, 1, 2, 3};
  const auto lane_off = vs::load_i32(kLaneOff);

  // Level-synchronous across the WHOLE block, mirroring the scalar walk:
  // one pass advances every still-active lane group one level before any
  // group takes its next step. A single group's four gathers form a
  // serial dependency chain (cur -> feat -> value -> next cur), so
  // walking one group to completion is latency-bound; interleaving the
  // groups keeps n_groups independent chains in flight per pass, exactly
  // the ILP the scalar per-row loop gets from its independent rows.
  constexpr std::size_t kMaxGroups = kColumnarRowBlock / kW;
  const std::size_t n_groups = m_vec / kW;
  vs::VInt32 row_v[kMaxGroups];
  vs::VInt32 cur[kMaxGroups];
  vs::VDouble acc_v[kMaxGroups];
  bool done[kMaxGroups];
  for (std::size_t g = 0; g < n_groups; ++g) {
    row_v[g] = vs::add_i32(
        vs::broadcast_i32(static_cast<std::int32_t>(row0 + g * kW)),
        lane_off);
    acc_v[g] = init_v;
  }

  for (const std::uint32_t root : roots_) {
    for (std::size_t g = 0; g < n_groups; ++g) {
      cur[g] = vs::broadcast_i32(static_cast<std::int32_t>(root));
      done[g] = false;
    }
    std::size_t n_active = n_groups;
    while (n_active > 0) {
      for (std::size_t g = 0; g < n_groups; ++g) {
        if (done[g]) continue;
        const auto nidx4 = vs::mul_i32(cur[g], four_i);
        const auto feat = vs::gather_i32(node_i32, vs::add_i32(nidx4, two_i));
        // A lane parks once it reaches a leaf (feature == -1); the group
        // drops out of the passes when every lane is parked.
        const auto active32 = vs::cmp_gt_i32(feat, minus1_i);
        if (vs::movemask_i32(active32) == 0) {
          done[g] = true;
          --n_active;
          continue;
        }
        const auto active = vs::mask_widen(active32);
        const auto left_raw =
            vs::gather_i32(node_i32, vs::add_i32(nidx4, three_i));
        const auto thresh =
            vs::gather_f64(node_f64, vs::mul_i32(cur[g], two_i), active);
        // Column gather: parked lanes have feature == -1, so their index
        // is garbage — the mask guarantees no memory access happens for
        // them (gather_f64 contract).
        const auto col_idx =
            vs::add_i32(vs::mul_i32(feat, stride_v), row_v[g]);
        const auto v = vs::gather_f64(block.base, col_idx, active);
        // go_left = NaN ? default-left-bit : v <= threshold. cmp_le is an
        // ordered compare, so a NaN lane reads false there, and the
        // default bit is the sign bit of the packed left word.
        const auto le = vs::cmp_le(v, thresh);
        const auto nan = vs::is_nan(v);
        const auto dfl = vs::mask_widen(vs::topbit_mask_i32(left_raw));
        const auto go_left =
            vs::bit_or(vs::bit_andnot(nan, le), vs::bit_and(nan, dfl));
        const auto left = vs::and_i32(left_raw, child_mask_i);
        const auto child =
            vs::add_i32(left, vs::blend_i32(go_left, zero_i, one_i));
        cur[g] = vs::blend_i32(active, child, cur[g]);
      }
    }
    // Fold this tree's leaves in tree order: one mul + one add per lane,
    // the same IEEE op sequence as predict()/eval_block_scalar.
    for (std::size_t g = 0; g < n_groups; ++g) {
      const auto leaf =
          vs::gather_f64(node_f64, vs::mul_i32(cur[g], two_i), all_lanes);
      acc_v[g] = mean ? vs::add(acc_v[g], leaf)
                      : vs::add(acc_v[g], vs::mul(scale_v, leaf));
    }
  }
  const auto n_trees_v =
      vs::broadcast_f64(static_cast<double>(roots_.size()));
  for (std::size_t g = 0; g < n_groups; ++g) {
    if (mean) acc_v[g] = vs::div(acc_v[g], n_trees_v);
    vs::store_f64(acc + g * kW, acc_v[g]);
  }

  if (m_vec < m) {
    eval_block_scalar(block, row0 + m_vec, m - m_vec, acc + m_vec);
  }
}
#endif  // LUMOS_HAS_VECTOR_WALK

void FlatForest::predict_columnar(const data::ColumnBlock& block,
                                  std::span<double> out) const {
  LUMOS_EXPECTS(out.size() >= block.n_rows,
                "FlatForest::predict_columnar: one output slot per row");
  parallel_for(0, block.n_rows, kColumnarRowBlock,
               [&](std::size_t b, std::size_t e) {
    for (std::size_t j0 = b; j0 < e; j0 += kColumnarRowBlock) {
      const std::size_t m = std::min(kColumnarRowBlock, e - j0);
      double acc[kColumnarRowBlock];
      eval_block(block, j0, m, acc);
      for (std::size_t j = 0; j < m; ++j) out[j0 + j] = acc[j];
    }
  });
}

FlatClassifier FlatClassifier::flatten(const ml::GbdtClassifier& model) {
  FlatClassifier c;
  const int kc = model.n_classes();
  if (kc <= 0) return c;
  // decision_function folds stages per class as
  //   score[c] = base[c] + lr_scale * tree(stage 0, c) + ... ,
  // which is exactly one kScaledSum forest per class over the interleaved
  // [stage * kc + c] tree layout.
  const double lr_scale = model.config().learning_rate *
                          static_cast<double>(kc - 1) /
                          static_cast<double>(kc);
  c.per_class_.reserve(static_cast<std::size_t>(kc));
  for (int cls = 0; cls < kc; ++cls) {
    c.per_class_.push_back(FlatForest::flatten(
        model.trees(), static_cast<std::size_t>(cls),
        static_cast<std::size_t>(kc), FlatForest::Aggregate::kScaledSum,
        model.base()[static_cast<std::size_t>(cls)], lr_scale));
  }
  return c;
}

FlatClassifier FlatClassifier::flatten(const ml::RandomForestClassifier& model) {
  FlatClassifier c;
  const int kc = model.n_classes();
  if (kc <= 0) return c;
  // RandomForestClassifier::predict sums raw per-class votes (no mean, no
  // base); kScaledSum with base 0 / scale 1 reproduces that sum exactly.
  c.per_class_.reserve(static_cast<std::size_t>(kc));
  for (int cls = 0; cls < kc; ++cls) {
    c.per_class_.push_back(FlatForest::flatten(
        model.trees(), static_cast<std::size_t>(cls),
        static_cast<std::size_t>(kc), FlatForest::Aggregate::kScaledSum, 0.0,
        1.0));
  }
  return c;
}

std::vector<double> FlatClassifier::decision_function(
    std::span<const double> row) const {
  std::vector<double> score(per_class_.size());
  for (std::size_t c = 0; c < per_class_.size(); ++c) {
    score[c] = per_class_[c].predict(row);
  }
  return score;
}

int FlatClassifier::predict(std::span<const double> row) const noexcept {
  if (per_class_.empty()) return 0;
  // First-max-wins argmax, matching both training-time classifiers.
  int best = 0;
  double best_score = per_class_[0].predict(row);
  for (std::size_t c = 1; c < per_class_.size(); ++c) {
    const double s = per_class_[c].predict(row);
    if (s > best_score) {
      best_score = s;
      best = static_cast<int>(c);
    }
  }
  return best;
}

void FlatClassifier::predict_columnar(const data::ColumnBlock& block,
                                      std::span<int> out) const {
  LUMOS_EXPECTS(out.size() >= block.n_rows,
                "FlatClassifier::predict_columnar: one output slot per row");
  if (per_class_.empty()) {
    for (std::size_t r = 0; r < block.n_rows; ++r) out[r] = 0;
    return;
  }
  parallel_for(0, block.n_rows, kColumnarRowBlock,
               [&](std::size_t b, std::size_t e) {
    for (std::size_t j0 = b; j0 < e; j0 += kColumnarRowBlock) {
      const std::size_t m = std::min(kColumnarRowBlock, e - j0);
      double best[kColumnarRowBlock];
      double score[kColumnarRowBlock];
      int best_class[kColumnarRowBlock];
      per_class_[0].eval_block(block, j0, m, best);
      for (std::size_t j = 0; j < m; ++j) best_class[j] = 0;
      // First-max-wins argmax across classes, matching predict().
      for (std::size_t c = 1; c < per_class_.size(); ++c) {
        per_class_[c].eval_block(block, j0, m, score);
        for (std::size_t j = 0; j < m; ++j) {
          if (score[j] > best[j]) {
            best[j] = score[j];
            best_class[j] = static_cast<int>(c);
          }
        }
      }
      for (std::size_t j = 0; j < m; ++j) out[j0 + j] = best_class[j];
    }
  });
}

std::vector<int> FlatClassifier::predict_batch(
    const ml::FeatureMatrix& x) const {
  std::vector<int> out(x.rows());
  parallel_for(0, x.rows(), 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t r = b; r < e; ++r) out[r] = predict(x.row(r));
  });
  return out;
}

std::size_t FlatClassifier::n_nodes() const noexcept {
  std::size_t n = 0;
  for (const auto& f : per_class_) n += f.n_nodes();
  return n;
}

}  // namespace lumos::serve

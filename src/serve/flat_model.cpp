#include "serve/flat_model.h"

#include <cmath>

#include "common/contracts.h"
#include "common/parallel.h"

namespace lumos::serve {
namespace {

/// Appends one tree to `out` in adjacent-children order and returns its
/// root index. Works for any source node ordering (freshly fit or
/// deserialized): an explicit worklist rewrites parent→child links as the
/// pair slots are allocated.
std::uint32_t flatten_tree(const ml::GradientTree& tree,
                           std::vector<FlatNode>& out) {
  const auto& src = tree.nodes();
  const auto root = static_cast<std::uint32_t>(out.size());
  if (src.empty()) {
    // An unfit tree predicts 0.0; emit the equivalent single leaf.
    out.push_back(FlatNode{0.0, -1, 0});
    return root;
  }

  struct Pending {
    std::size_t src_index;
    std::uint32_t dst_index;
  };
  out.push_back(FlatNode{});
  std::vector<Pending> stack{{0, root}};
  while (!stack.empty()) {
    const Pending p = stack.back();
    stack.pop_back();
    const auto& n = src[p.src_index];
    FlatNode flat;
    if (n.feature < 0) {
      flat.value = n.value;
      flat.feature = -1;
      flat.left = 0;
    } else {
      const auto left_dst = static_cast<std::uint32_t>(out.size());
      LUMOS_ASSERT(left_dst < FlatNode::kChildMask - 1,
                   "flattened ensemble exceeds 2^31 nodes");
      flat.value = n.threshold;
      flat.feature = n.feature;
      flat.left = left_dst |
                  (n.default_left ? FlatNode::kDefaultLeftBit : 0U);
      out.push_back(FlatNode{});
      out.push_back(FlatNode{});
      stack.push_back({static_cast<std::size_t>(n.left), left_dst});
      stack.push_back({static_cast<std::size_t>(n.right), left_dst + 1});
    }
    out[p.dst_index] = flat;
  }
  return root;
}

double traverse(const FlatNode* nodes, std::uint32_t root,
                std::span<const double> row) noexcept {
  const FlatNode* n = &nodes[root];
  while (n->feature >= 0) {
    const double v = row[static_cast<std::size_t>(n->feature)];
    const std::uint32_t left = n->left & FlatNode::kChildMask;
    // NaN routes along the learned default branch, exactly like
    // GradientTree::predict; finite values take the threshold compare.
    const bool go_left = std::isnan(v)
                             ? (n->left & FlatNode::kDefaultLeftBit) != 0U
                             : v <= n->value;
    n = &nodes[left + (go_left ? 0U : 1U)];
  }
  return n->value;
}

}  // namespace

FlatForest FlatForest::flatten(std::span<const ml::GradientTree> trees,
                               std::size_t first, std::size_t stride,
                               Aggregate agg, double base, double scale) {
  LUMOS_EXPECTS(stride >= 1, "FlatForest::flatten: stride must be >= 1");
  FlatForest f;
  f.agg_ = agg;
  f.base_ = base;
  f.scale_ = scale;
  std::size_t total_nodes = 0;
  for (std::size_t t = first; t < trees.size(); t += stride) {
    total_nodes += trees[t].nodes().empty() ? 1 : trees[t].nodes().size();
  }
  f.nodes_.reserve(total_nodes);
  for (std::size_t t = first; t < trees.size(); t += stride) {
    f.roots_.push_back(flatten_tree(trees[t], f.nodes_));
  }
  return f;
}

FlatForest FlatForest::flatten(const ml::GbdtRegressor& model) {
  return flatten(model.trees(), 0, 1, Aggregate::kScaledSum, model.base(),
                 model.config().learning_rate);
}

FlatForest FlatForest::flatten(const ml::RandomForestRegressor& model) {
  return flatten(model.trees(), 0, 1, Aggregate::kMean, 0.0, 1.0);
}

double FlatForest::predict(std::span<const double> row) const noexcept {
  if (agg_ == Aggregate::kMean) {
    if (roots_.empty()) return 0.0;  // matches RandomForest on no trees
    double s = 0.0;
    for (const std::uint32_t root : roots_) {
      s += traverse(nodes_.data(), root, row);
    }
    return s / static_cast<double>(roots_.size());
  }
  double s = base_;
  for (const std::uint32_t root : roots_) {
    s += scale_ * traverse(nodes_.data(), root, row);
  }
  return s;
}

std::vector<double> FlatForest::predict_batch(
    const ml::FeatureMatrix& x) const {
  std::vector<double> out(x.rows());
  parallel_for(0, x.rows(), 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t r = b; r < e; ++r) out[r] = predict(x.row(r));
  });
  return out;
}

void FlatForest::eval_block(const data::ColumnBlock& block, std::size_t row0,
                            std::size_t m, double* acc) const noexcept {
  const bool mean = agg_ == Aggregate::kMean;
  const double init = mean ? 0.0 : base_;
  for (std::size_t j = 0; j < m; ++j) acc[j] = init;
  if (roots_.empty()) return;  // mean-of-nothing stays 0.0, like predict()

  const FlatNode* nodes = nodes_.data();
  std::uint32_t cur[kColumnarRowBlock];
  for (const std::uint32_t root : roots_) {
    for (std::size_t j = 0; j < m; ++j) cur[j] = root;
    // Level-synchronous walk: one pass moves every still-internal row one
    // level down. Rows are independent, so the feature gathers of a pass
    // overlap; rows that reached a leaf park there (feature < 0).
    bool any = true;
    while (any) {
      any = false;
      for (std::size_t j = 0; j < m; ++j) {
        const FlatNode& n = nodes[cur[j]];
        if (n.feature < 0) continue;
        const double v = block.col(static_cast<std::size_t>(n.feature))[row0 + j];
        const std::uint32_t left = n.left & FlatNode::kChildMask;
        const bool go_left = std::isnan(v)
                                 ? (n.left & FlatNode::kDefaultLeftBit) != 0U
                                 : v <= n.value;
        cur[j] = left + (go_left ? 0U : 1U);
        any = true;
      }
    }
    // Fold this tree's leaves in tree order — the accumulation order of
    // predict(), so the block result is bit-identical per row.
    if (mean) {
      for (std::size_t j = 0; j < m; ++j) acc[j] += nodes[cur[j]].value;
    } else {
      for (std::size_t j = 0; j < m; ++j) {
        acc[j] += scale_ * nodes[cur[j]].value;
      }
    }
  }
  if (mean) {
    const double n_trees = static_cast<double>(roots_.size());
    for (std::size_t j = 0; j < m; ++j) acc[j] /= n_trees;
  }
}

void FlatForest::predict_columnar(const data::ColumnBlock& block,
                                  std::span<double> out) const {
  LUMOS_EXPECTS(out.size() >= block.n_rows,
                "FlatForest::predict_columnar: one output slot per row");
  parallel_for(0, block.n_rows, kColumnarRowBlock,
               [&](std::size_t b, std::size_t e) {
    for (std::size_t j0 = b; j0 < e; j0 += kColumnarRowBlock) {
      const std::size_t m = std::min(kColumnarRowBlock, e - j0);
      double acc[kColumnarRowBlock];
      eval_block(block, j0, m, acc);
      for (std::size_t j = 0; j < m; ++j) out[j0 + j] = acc[j];
    }
  });
}

FlatClassifier FlatClassifier::flatten(const ml::GbdtClassifier& model) {
  FlatClassifier c;
  const int kc = model.n_classes();
  if (kc <= 0) return c;
  // decision_function folds stages per class as
  //   score[c] = base[c] + lr_scale * tree(stage 0, c) + ... ,
  // which is exactly one kScaledSum forest per class over the interleaved
  // [stage * kc + c] tree layout.
  const double lr_scale = model.config().learning_rate *
                          static_cast<double>(kc - 1) /
                          static_cast<double>(kc);
  c.per_class_.reserve(static_cast<std::size_t>(kc));
  for (int cls = 0; cls < kc; ++cls) {
    c.per_class_.push_back(FlatForest::flatten(
        model.trees(), static_cast<std::size_t>(cls),
        static_cast<std::size_t>(kc), FlatForest::Aggregate::kScaledSum,
        model.base()[static_cast<std::size_t>(cls)], lr_scale));
  }
  return c;
}

FlatClassifier FlatClassifier::flatten(const ml::RandomForestClassifier& model) {
  FlatClassifier c;
  const int kc = model.n_classes();
  if (kc <= 0) return c;
  // RandomForestClassifier::predict sums raw per-class votes (no mean, no
  // base); kScaledSum with base 0 / scale 1 reproduces that sum exactly.
  c.per_class_.reserve(static_cast<std::size_t>(kc));
  for (int cls = 0; cls < kc; ++cls) {
    c.per_class_.push_back(FlatForest::flatten(
        model.trees(), static_cast<std::size_t>(cls),
        static_cast<std::size_t>(kc), FlatForest::Aggregate::kScaledSum, 0.0,
        1.0));
  }
  return c;
}

std::vector<double> FlatClassifier::decision_function(
    std::span<const double> row) const {
  std::vector<double> score(per_class_.size());
  for (std::size_t c = 0; c < per_class_.size(); ++c) {
    score[c] = per_class_[c].predict(row);
  }
  return score;
}

int FlatClassifier::predict(std::span<const double> row) const noexcept {
  if (per_class_.empty()) return 0;
  // First-max-wins argmax, matching both training-time classifiers.
  int best = 0;
  double best_score = per_class_[0].predict(row);
  for (std::size_t c = 1; c < per_class_.size(); ++c) {
    const double s = per_class_[c].predict(row);
    if (s > best_score) {
      best_score = s;
      best = static_cast<int>(c);
    }
  }
  return best;
}

void FlatClassifier::predict_columnar(const data::ColumnBlock& block,
                                      std::span<int> out) const {
  LUMOS_EXPECTS(out.size() >= block.n_rows,
                "FlatClassifier::predict_columnar: one output slot per row");
  if (per_class_.empty()) {
    for (std::size_t r = 0; r < block.n_rows; ++r) out[r] = 0;
    return;
  }
  parallel_for(0, block.n_rows, kColumnarRowBlock,
               [&](std::size_t b, std::size_t e) {
    for (std::size_t j0 = b; j0 < e; j0 += kColumnarRowBlock) {
      const std::size_t m = std::min(kColumnarRowBlock, e - j0);
      double best[kColumnarRowBlock];
      double score[kColumnarRowBlock];
      int best_class[kColumnarRowBlock];
      per_class_[0].eval_block(block, j0, m, best);
      for (std::size_t j = 0; j < m; ++j) best_class[j] = 0;
      // First-max-wins argmax across classes, matching predict().
      for (std::size_t c = 1; c < per_class_.size(); ++c) {
        per_class_[c].eval_block(block, j0, m, score);
        for (std::size_t j = 0; j < m; ++j) {
          if (score[j] > best[j]) {
            best[j] = score[j];
            best_class[j] = static_cast<int>(c);
          }
        }
      }
      for (std::size_t j = 0; j < m; ++j) out[j0 + j] = best_class[j];
    }
  });
}

std::vector<int> FlatClassifier::predict_batch(
    const ml::FeatureMatrix& x) const {
  std::vector<int> out(x.rows());
  parallel_for(0, x.rows(), 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t r = b; r < e; ++r) out[r] = predict(x.row(r));
  });
  return out;
}

std::size_t FlatClassifier::n_nodes() const noexcept {
  std::size_t n = 0;
  for (const auto& f : per_class_) n += f.n_nodes();
  return n;
}

}  // namespace lumos::serve

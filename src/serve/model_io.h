// Versioned binary model serialization — the artifact side of the paper's
// consumer story (§2.3, Fig. 4): a per-area predictor is trained once,
// saved to a file, shipped to devices, and reloaded for online queries.
//
// Format (everything little-endian, byte-composed — independent of host
// endianness and padding):
//
//   offset 0   u32  magic "L5GM"
//   offset 4   u32  format version (kFormatVersion)
//   offset 8   u8   model kind (ModelKind)
//   offset 9   u64  total artifact size in bytes (header + payload + hash)
//   offset 17  ...  kind-specific payload
//   last 8     u64  FNV-1a hash of every byte before it
//
// Guarantees:
//   * Deterministic: saving the same fitted model twice yields identical
//     bytes (no timestamps, no addresses, no locale).
//   * Round-trip exact: every double is stored as its IEEE-754 bit
//     pattern, so a loaded model predicts bit-identically to the saved
//     one.
//   * Fail-typed, never UB: a wrong magic, incompatible version, short
//     file, or flipped bit yields Expected<T> carrying kBadMagic /
//     kVersionMismatch / kTruncated / kCorrupt; structural impossibilities
//     that survive the hash (a hand-crafted file) yield kParseError.
//
// Versioning policy: any change to the byte layout bumps kFormatVersion.
// Readers accept exactly the version they were built for — a serving
// fleet upgrades its binary before its model artifacts, never the other
// way around. Old-version artifacts are rejected with kVersionMismatch
// (carrying both versions in the message) rather than best-effort parsed.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "common/error.h"
#include "core/lumos5g.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "nn/seq2seq.h"

namespace lumos::serve {

/// First four artifact bytes, in file order.
inline constexpr char kMagic[4] = {'L', '5', 'G', 'M'};

/// Current (and only accepted) format version.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Kind tag stored in the artifact header; a loader for kind X rejects an
/// artifact of kind Y with kParseError.
enum class ModelKind : std::uint8_t {
  kGbdtRegressor = 0,
  kGbdtClassifier = 1,
  kForestRegressor = 2,
  kForestClassifier = 3,
  kLumos5G = 4,
  kSeq2Seq = 5,
};

/// Highest kind tag this build understands; anything above is rejected
/// with kParseError instead of being guessed at.
inline constexpr std::uint8_t kMaxKindTag =
    static_cast<std::uint8_t>(ModelKind::kSeq2Seq);

[[nodiscard]] const char* to_string(ModelKind k) noexcept;

// --- byte-buffer API ------------------------------------------------------
// The in-memory half: save_bytes is pure and deterministic; the loaders
// parse a buffer without touching the filesystem. File I/O wraps these.

[[nodiscard]] std::string save_bytes(const ml::GbdtRegressor& model);
[[nodiscard]] std::string save_bytes(const ml::GbdtClassifier& model);
[[nodiscard]] std::string save_bytes(const ml::RandomForestRegressor& model);
[[nodiscard]] std::string save_bytes(const ml::RandomForestClassifier& model);
[[nodiscard]] std::string save_bytes(const core::Lumos5G& model);
[[nodiscard]] std::string save_bytes(const nn::Seq2Seq& model);

[[nodiscard]] Expected<ml::GbdtRegressor> load_gbdt_regressor(
    std::string_view bytes);
[[nodiscard]] Expected<ml::GbdtClassifier> load_gbdt_classifier(
    std::string_view bytes);
[[nodiscard]] Expected<ml::RandomForestRegressor> load_forest_regressor(
    std::string_view bytes);
[[nodiscard]] Expected<ml::RandomForestClassifier> load_forest_classifier(
    std::string_view bytes);
[[nodiscard]] Expected<core::Lumos5G> load_lumos5g(std::string_view bytes);
[[nodiscard]] Expected<nn::Seq2Seq> load_seq2seq(std::string_view bytes);

/// Kind recorded in an artifact's header, without parsing the payload.
/// Errors like the loaders on short/invalid headers.
[[nodiscard]] Expected<ModelKind> peek_kind(std::string_view bytes);

// --- file API -------------------------------------------------------------

/// Writes `bytes` atomically enough for a model store: to a sibling temp
/// file first, then renamed over `path`. Errors with kIoError.
[[nodiscard]] Expected<void> write_artifact(const std::filesystem::path& path,
                                            const std::string& bytes);

/// Reads a whole artifact file. Errors with kIoError when the file cannot
/// be opened or read.
[[nodiscard]] Expected<std::string> read_artifact(
    const std::filesystem::path& path);

template <typename Model>
[[nodiscard]] Expected<void> save_model(const Model& model,
                                        const std::filesystem::path& path) {
  return write_artifact(path, save_bytes(model));
}

}  // namespace lumos::serve

#include "serve/model_io.h"

#include <atomic>
#include <bit>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <utility>
#include <vector>

namespace lumos::serve {
namespace {

constexpr std::size_t kHeaderSize = 4 + 4 + 1 + 8;  // magic, version, kind, size
constexpr std::size_t kHashSize = 8;

/// FNV-1a 64-bit over a byte range — endian-free, dependency-free, and
/// plenty to catch truncation and bit rot (this is an integrity check, not
/// an authenticity one).
std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Byte-level primitives. Everything is composed/decomposed byte by byte in
// little-endian order, so artifacts are identical across hosts regardless
// of endianness or struct padding.
// ---------------------------------------------------------------------------

class Writer {
 public:
  void raw(const char* p, std::size_t n) { buf_.append(p, n); }
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { append_le(v, 2); }
  void u32(std::uint32_t v) { append_le(v, 4); }
  void u64(std::uint64_t v) { append_le(v, 8); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  const std::string& view() const noexcept { return buf_; }
  std::string take() noexcept { return std::move(buf_); }

 private:
  void append_le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFU));
    }
  }
  std::string buf_;
};

/// Bounds-checked little-endian cursor. A read past the end (possible only
/// for a hand-crafted payload — the envelope hash already passed) trips the
/// fail flag; every subsequent read returns 0 and the loader reports a
/// typed error instead of touching out-of-range memory.
class Reader {
 public:
  explicit Reader(std::string_view d) noexcept : d_(d) {}

  bool ok() const noexcept { return ok_; }
  /// ok() and fully consumed — trailing payload bytes are a parse error.
  bool done() const noexcept { return ok_ && pos_ == d_.size(); }
  std::size_t remaining() const noexcept { return d_.size() - pos_; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }

  /// Reads an element count and rejects it when even minimally-sized
  /// elements could not fit in the remaining bytes — so a corrupt count
  /// fails fast instead of driving a multi-gigabyte allocation.
  std::size_t count(std::size_t min_elem_size) {
    const std::uint64_t c = u64();
    if (ok_ && min_elem_size > 0 &&
        c > remaining() / min_elem_size) {
      ok_ = false;
      return 0;
    }
    return ok_ ? static_cast<std::size_t>(c) : 0;
  }

 private:
  std::uint64_t le(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(d_[pos_ + i]))
           << (8 * i);
    }
    pos_ += n;
    return v;
  }

  std::string_view d_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

Error parse_error(std::string message) {
  return Error{ErrorCode::kParseError, std::move(message)};
}

// ---------------------------------------------------------------------------
// Component writers/readers. Readers only signal through the Reader fail
// flag plus a returned bool for structural checks; loaders translate.
// ---------------------------------------------------------------------------

void write_gbdt_config(Writer& w, const ml::GbdtConfig& c) {
  w.u64(c.n_estimators);
  w.i32(c.max_depth);
  w.f64(c.learning_rate);
  w.u64(c.min_samples_leaf);
  w.f64(c.lambda);
  w.i32(c.n_bins);
  w.f64(c.subsample);
  w.u64(c.seed);
}

ml::GbdtConfig read_gbdt_config(Reader& r) {
  ml::GbdtConfig c;
  c.n_estimators = static_cast<std::size_t>(r.u64());
  c.max_depth = r.i32();
  c.learning_rate = r.f64();
  c.min_samples_leaf = static_cast<std::size_t>(r.u64());
  c.lambda = r.f64();
  c.n_bins = r.i32();
  c.subsample = r.f64();
  c.seed = r.u64();
  return c;
}

void write_forest_config(Writer& w, const ml::ForestConfig& c) {
  w.u64(c.n_trees);
  w.i32(c.max_depth);
  w.u64(c.min_samples_leaf);
  w.i32(c.n_bins);
  w.u64(c.feature_subsample);
  w.f64(c.bootstrap_fraction);
  w.u64(c.seed);
}

ml::ForestConfig read_forest_config(Reader& r) {
  ml::ForestConfig c;
  c.n_trees = static_cast<std::size_t>(r.u64());
  c.max_depth = r.i32();
  c.min_samples_leaf = static_cast<std::size_t>(r.u64());
  c.n_bins = r.i32();
  c.feature_subsample = static_cast<std::size_t>(r.u64());
  c.bootstrap_fraction = r.f64();
  c.seed = r.u64();
  return c;
}

void write_mapper(Writer& w, const ml::BinMapper& m) {
  w.i32(m.max_bins());
  w.u64(m.n_features());
  for (const auto& e : m.edges()) {
    w.u64(e.size());
    for (const double v : e) w.f64(v);
  }
}

bool read_mapper(Reader& r, ml::BinMapper& out) {
  const std::int32_t max_bins = r.i32();
  const std::size_t d = r.count(8);
  std::vector<std::vector<double>> edges(d);
  for (auto& e : edges) {
    const std::size_t n = r.count(8);
    e.resize(n);
    for (auto& v : e) v = r.f64();
  }
  if (!r.ok() || max_bins < 0) return false;
  out.restore(std::move(edges), max_bins);
  return true;
}

void write_tree(Writer& w, const ml::GradientTree& t) {
  w.u64(t.nodes().size());
  for (const auto& n : t.nodes()) {
    w.i32(n.feature);
    w.f64(n.threshold);
    w.i32(n.bin);
    w.i32(n.left);
    w.i32(n.right);
    w.f64(n.value);
    w.boolean(n.default_left);
  }
  for (const double g : t.gains()) w.f64(g);
  w.u16(t.missing_code());
}

/// Structural soundness of a decoded node array: children always point
/// forward (the builder allocates them after their parent, and forwardness
/// makes traversal provably terminating), stay in range, and splits name a
/// feature the model actually has.
bool valid_tree(const std::vector<ml::GradientTree::Node>& nodes,
                std::size_t n_features) {
  const auto n = static_cast<std::int64_t>(nodes.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const auto& node = nodes[static_cast<std::size_t>(i)];
    if (node.feature < 0) {
      if (node.left != -1 || node.right != -1) return false;
    } else {
      if (static_cast<std::size_t>(node.feature) >= n_features) return false;
      if (node.bin < 0 || node.bin > 0xFFFF) return false;
      if (node.left <= i || node.left >= n) return false;
      if (node.right <= i || node.right >= n) return false;
    }
  }
  return true;
}

/// Node count 0 is legal (an unfit tree predicts 0.0); `n_features` bounds
/// the split features a node may reference.
bool read_tree(Reader& r, std::size_t n_features, ml::GradientTree& out) {
  constexpr std::size_t kNodeBytes = 4 + 8 + 4 + 4 + 4 + 8 + 1;
  const std::size_t n = r.count(kNodeBytes);
  std::vector<ml::GradientTree::Node> nodes(n);
  for (auto& node : nodes) {
    node.feature = r.i32();
    node.threshold = r.f64();
    node.bin = r.i32();
    node.left = r.i32();
    node.right = r.i32();
    node.value = r.f64();
    node.default_left = r.boolean();
  }
  std::vector<double> gains(n);
  for (auto& g : gains) g = r.f64();
  const std::uint16_t missing = r.u16();
  if (!r.ok() || !valid_tree(nodes, n_features)) return false;
  out.restore(std::move(nodes), std::move(gains), missing);
  return true;
}

void write_spec(Writer& w, const data::FeatureSetSpec& s) {
  w.boolean(s.L);
  w.boolean(s.M);
  w.boolean(s.T);
  w.boolean(s.C);
}

data::FeatureSetSpec read_spec(Reader& r) {
  data::FeatureSetSpec s;
  s.L = r.boolean();
  s.M = r.boolean();
  s.T = r.boolean();
  s.C = r.boolean();
  return s;
}

void write_feature_config(Writer& w, const data::FeatureConfig& c) {
  w.i32(c.throughput_lags);
  w.i32(c.horizon);
  w.f64(c.low_mbps);
  w.f64(c.high_mbps);
  w.f64(c.max_gap_s);
}

data::FeatureConfig read_feature_config(Reader& r) {
  data::FeatureConfig c;
  c.throughput_lags = r.i32();
  c.horizon = r.i32();
  c.low_mbps = r.f64();
  c.high_mbps = r.f64();
  c.max_gap_s = r.f64();
  return c;
}

void write_fallback_config(Writer& w, const core::FallbackConfig& c) {
  w.boolean(c.enabled);
  w.u64(c.tiers.size());
  for (const auto& s : c.tiers) write_spec(w, s);
  w.boolean(c.harmonic_tail);
  w.u64(c.harmonic_window);
}

core::FallbackConfig read_fallback_config(Reader& r) {
  core::FallbackConfig c;
  c.enabled = r.boolean();
  const std::size_t n = r.count(4);
  c.tiers.resize(n);
  for (auto& s : c.tiers) s = read_spec(r);
  c.harmonic_tail = r.boolean();
  c.harmonic_window = static_cast<std::size_t>(r.u64());
  return c;
}

// --- per-model payloads ---------------------------------------------------

void write_gbdt_regressor_payload(Writer& w, const ml::GbdtRegressor& m) {
  write_gbdt_config(w, m.config());
  w.u64(m.n_features());
  w.f64(m.base());
  write_mapper(w, m.mapper());
  w.u64(m.trees().size());
  for (const auto& t : m.trees()) write_tree(w, t);
}

bool read_gbdt_regressor_payload(Reader& r, ml::GbdtRegressor& out) {
  const ml::GbdtConfig cfg = read_gbdt_config(r);
  const std::size_t n_features = static_cast<std::size_t>(r.u64());
  const double base = r.f64();
  ml::BinMapper mapper;
  if (!read_mapper(r, mapper)) return false;
  const std::size_t n_trees = r.count(8 + 2);
  std::vector<ml::GradientTree> trees(n_trees);
  for (auto& t : trees) {
    if (!read_tree(r, n_features, t)) return false;
  }
  if (!r.ok()) return false;
  out = ml::GbdtRegressor(cfg);
  out.restore(std::move(mapper), base, std::move(trees), n_features);
  return true;
}

void write_gbdt_classifier_payload(Writer& w, const ml::GbdtClassifier& m) {
  write_gbdt_config(w, m.config());
  w.u64(m.n_features());
  w.i32(m.n_classes());
  for (const double b : m.base()) w.f64(b);
  write_mapper(w, m.mapper());
  w.u64(m.trees().size());
  for (const auto& t : m.trees()) write_tree(w, t);
}

bool read_gbdt_classifier_payload(Reader& r, ml::GbdtClassifier& out) {
  const ml::GbdtConfig cfg = read_gbdt_config(r);
  const std::size_t n_features = static_cast<std::size_t>(r.u64());
  const std::int32_t n_classes = r.i32();
  if (!r.ok() || n_classes < 0 ||
      static_cast<std::size_t>(n_classes) > r.remaining() / 8) {
    return false;
  }
  std::vector<double> base(static_cast<std::size_t>(n_classes));
  for (auto& b : base) b = r.f64();
  ml::BinMapper mapper;
  if (!read_mapper(r, mapper)) return false;
  const std::size_t n_trees = r.count(8 + 2);
  if (n_classes > 0 && n_trees % static_cast<std::size_t>(n_classes) != 0) {
    return false;
  }
  if (n_classes == 0 && n_trees != 0) return false;
  std::vector<ml::GradientTree> trees(n_trees);
  for (auto& t : trees) {
    if (!read_tree(r, n_features, t)) return false;
  }
  if (!r.ok()) return false;
  out = ml::GbdtClassifier(cfg);
  out.restore(std::move(mapper), n_classes, std::move(base), std::move(trees),
              n_features);
  return true;
}

void write_forest_regressor_payload(Writer& w,
                                    const ml::RandomForestRegressor& m) {
  write_forest_config(w, m.config());
  write_mapper(w, m.mapper());
  w.u64(m.trees().size());
  for (const auto& t : m.trees()) write_tree(w, t);
}

bool read_forest_regressor_payload(Reader& r,
                                   ml::RandomForestRegressor& out) {
  const ml::ForestConfig cfg = read_forest_config(r);
  ml::BinMapper mapper;
  if (!read_mapper(r, mapper)) return false;
  const std::size_t n_trees = r.count(8 + 2);
  std::vector<ml::GradientTree> trees(n_trees);
  for (auto& t : trees) {
    if (!read_tree(r, mapper.n_features(), t)) return false;
  }
  if (!r.ok()) return false;
  out = ml::RandomForestRegressor(cfg);
  out.restore(std::move(mapper), std::move(trees));
  return true;
}

void write_forest_classifier_payload(Writer& w,
                                     const ml::RandomForestClassifier& m) {
  write_forest_config(w, m.config());
  w.i32(m.n_classes());
  write_mapper(w, m.mapper());
  w.u64(m.trees().size());
  for (const auto& t : m.trees()) write_tree(w, t);
}

bool read_forest_classifier_payload(Reader& r,
                                    ml::RandomForestClassifier& out) {
  const ml::ForestConfig cfg = read_forest_config(r);
  const std::int32_t n_classes = r.i32();
  ml::BinMapper mapper;
  if (n_classes < 0 || !read_mapper(r, mapper)) return false;
  const std::size_t n_trees = r.count(8 + 2);
  // predict() indexes trees as [t * n_classes + c] with t < cfg.n_trees,
  // so the stored count must match the stored config exactly.
  if (n_trees != cfg.n_trees * static_cast<std::size_t>(n_classes)) {
    return false;
  }
  std::vector<ml::GradientTree> trees(n_trees);
  for (auto& t : trees) {
    if (!read_tree(r, mapper.n_features(), t)) return false;
  }
  if (!r.ok()) return false;
  out = ml::RandomForestClassifier(cfg);
  out.restore(std::move(mapper), n_classes, std::move(trees));
  return true;
}

void write_lumos5g_payload(Writer& w, const core::Lumos5G& m) {
  const core::Lumos5GConfig& cfg = m.config();
  write_spec(w, cfg.feature_spec);
  write_feature_config(w, cfg.features);
  write_gbdt_config(w, cfg.gbdt);
  write_fallback_config(w, cfg.fallback);
  w.u64(m.tier_specs().size());
  for (std::size_t i = 0; i < m.tier_specs().size(); ++i) {
    w.boolean(m.tier_trained(i));
    if (m.tier_trained(i)) {
      write_gbdt_regressor_payload(w, m.tier_regressor(i));
      write_gbdt_classifier_payload(w, m.tier_classifier(i));
    }
  }
}

// --- seq2seq payload ------------------------------------------------------

void write_seq2seq_config(Writer& w, const nn::Seq2SeqConfig& c) {
  w.u64(c.input_dim);
  w.u64(c.hidden);
  w.u64(c.layers);
  w.u64(c.seq_len);
  w.u64(c.out_len);
  w.u64(c.epochs);
  w.u64(c.batch_size);
  w.f64(c.lr);
  w.f64(c.clip_norm);
  w.u64(c.seed);
  w.boolean(c.verbose);
}

nn::Seq2SeqConfig read_seq2seq_config(Reader& r) {
  nn::Seq2SeqConfig c;
  c.input_dim = static_cast<std::size_t>(r.u64());
  c.hidden = static_cast<std::size_t>(r.u64());
  c.layers = static_cast<std::size_t>(r.u64());
  c.seq_len = static_cast<std::size_t>(r.u64());
  c.out_len = static_cast<std::size_t>(r.u64());
  c.epochs = static_cast<std::size_t>(r.u64());
  c.batch_size = static_cast<std::size_t>(r.u64());
  c.lr = r.f64();
  c.clip_norm = r.f64();
  c.seed = r.u64();
  c.verbose = r.boolean();
  return c;
}

/// a*b, saturating at uint64 max instead of wrapping — used to bound a
/// crafted config's parameter volume before any allocation happens.
std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) noexcept {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

/// Number of doubles a Seq2Seq of this config carries. Mirrors the
/// construction in Seq2Seq's ctor: per LSTM cell wx (4H x in), wh (4H x H),
/// b (1 x 4H); encoder layer 0 reads input_dim, decoder layer 0 reads the
/// scalar token, deeper layers read H; head is (1 x H) + (1 x 1).
std::uint64_t seq2seq_param_count(const nn::Seq2SeqConfig& c) noexcept {
  const std::uint64_t h4 = sat_mul(4, c.hidden);
  std::uint64_t total = 0;
  const auto cell = [&](std::uint64_t in_dim) {
    total = total + sat_mul(h4, in_dim);  // wx
    total = total + sat_mul(h4, c.hidden);  // wh
    total = total + h4;  // b
  };
  for (std::size_t l = 0; l < c.layers; ++l) {
    cell(l == 0 ? c.input_dim : c.hidden);
    cell(l == 0 ? 1 : c.hidden);
    if (total == std::numeric_limits<std::uint64_t>::max()) break;
  }
  return total + c.hidden + 1;  // head weight + bias
}

void write_seq2seq_payload(Writer& w, const nn::Seq2Seq& m) {
  write_seq2seq_config(w, m.config());
  const auto matrices = m.parameter_matrices();
  w.u64(matrices.size());
  for (const nn::Matrix* mat : matrices) {
    w.u64(mat->rows());
    w.u64(mat->cols());
    for (std::size_t i = 0; i < mat->size(); ++i) w.f64(mat->data()[i]);
  }
}

Expected<nn::Seq2Seq> read_seq2seq_payload(Reader& r) {
  const nn::Seq2SeqConfig cfg = read_seq2seq_config(r);
  if (!r.ok()) return parse_error("malformed seq2seq config block");
  // The Seq2Seq ctor refuses zero dimensions (by throwing, which the serve
  // layer never does on the query path) — reject before constructing. Also
  // bound the parameter volume a crafted config implies against the bytes
  // actually present, so a hash-valid but hand-built artifact cannot drive
  // a multi-gigabyte allocation.
  if (cfg.input_dim == 0 || cfg.hidden == 0 || cfg.layers == 0 ||
      cfg.seq_len == 0 || cfg.out_len == 0) {
    return parse_error("seq2seq config has a zero dimension");
  }
  if (seq2seq_param_count(cfg) > r.remaining() / 8) {
    return parse_error(
        "seq2seq config implies more parameters than the payload holds");
  }
  nn::Seq2Seq model(cfg);
  const auto matrices = model.parameter_matrices();
  const std::size_t stored = r.count(8 + 8);
  if (!r.ok() || stored != matrices.size()) {
    return parse_error("stored matrix count disagrees with the network "
                       "derived from the stored config");
  }
  for (nn::Matrix* mat : matrices) {
    const auto rows = static_cast<std::size_t>(r.u64());
    const auto cols = static_cast<std::size_t>(r.u64());
    if (!r.ok() || rows != mat->rows() || cols != mat->cols()) {
      return parse_error("stored matrix shape disagrees with the network "
                         "derived from the stored config");
    }
    for (std::size_t i = 0; i < mat->size(); ++i) mat->data()[i] = r.f64();
  }
  if (!r.done()) return parse_error("malformed seq2seq payload");
  return model;
}

// ---------------------------------------------------------------------------
// Envelope: header + hash around a payload.
// ---------------------------------------------------------------------------

std::string finalize(ModelKind kind, const std::string& payload) {
  Writer w;
  w.raw(kMagic, sizeof(kMagic));
  w.u32(kFormatVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(kHeaderSize + payload.size() + kHashSize);
  w.raw(payload.data(), payload.size());
  w.u64(fnv1a(w.view()));
  return w.take();
}

/// Validates magic/version/size/hash and hands back the payload slice.
Expected<std::string_view> check_envelope(std::string_view bytes,
                                          ModelKind expected) {
  if (bytes.size() < sizeof(kMagic)) {
    return Error{ErrorCode::kTruncated,
                 "model artifact shorter than the 4-byte magic"};
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Error{ErrorCode::kBadMagic,
                 "not a Lumos5G model artifact (magic != \"L5GM\")"};
  }
  if (bytes.size() < kHeaderSize + kHashSize) {
    return Error{ErrorCode::kTruncated,
                 "model artifact shorter than its fixed header"};
  }
  Reader header(bytes.substr(sizeof(kMagic)));
  const std::uint32_t version = header.u32();
  if (version != kFormatVersion) {
    return Error{ErrorCode::kVersionMismatch,
                 "model artifact is format v" + std::to_string(version) +
                     "; this build reads exactly v" +
                     std::to_string(kFormatVersion)};
  }
  const std::uint8_t kind = header.u8();
  const std::uint64_t declared = header.u64();
  if (declared < kHeaderSize + kHashSize) {
    return Error{ErrorCode::kCorrupt,
                 "declared artifact size smaller than header + hash"};
  }
  if (bytes.size() < declared) {
    return Error{ErrorCode::kTruncated,
                 "model artifact declares " + std::to_string(declared) +
                     " bytes but only " + std::to_string(bytes.size()) +
                     " are present"};
  }
  if (bytes.size() > declared) {
    return Error{ErrorCode::kCorrupt,
                 std::to_string(bytes.size() - declared) +
                     " trailing bytes after the declared artifact end"};
  }
  const std::size_t hash_at = static_cast<std::size_t>(declared) - kHashSize;
  Reader stored_hash(bytes.substr(hash_at));
  if (fnv1a(bytes.substr(0, hash_at)) != stored_hash.u64()) {
    return Error{ErrorCode::kCorrupt,
                 "model artifact failed its integrity hash (bit rot or "
                 "partial write)"};
  }
  if (kind != static_cast<std::uint8_t>(expected)) {
    if (kind > kMaxKindTag) {
      return parse_error("unknown model kind tag " + std::to_string(kind));
    }
    return parse_error(
        std::string("artifact holds a ") +
        to_string(static_cast<ModelKind>(kind)) + ", loader expects a " +
        to_string(expected));
  }
  return bytes.substr(kHeaderSize, hash_at - kHeaderSize);
}

}  // namespace

const char* to_string(ModelKind k) noexcept {
  switch (k) {
    case ModelKind::kGbdtRegressor: return "gbdt_regressor";
    case ModelKind::kGbdtClassifier: return "gbdt_classifier";
    case ModelKind::kForestRegressor: return "forest_regressor";
    case ModelKind::kForestClassifier: return "forest_classifier";
    case ModelKind::kLumos5G: return "lumos5g";
    case ModelKind::kSeq2Seq: return "seq2seq";
  }
  return "?";
}

std::string save_bytes(const ml::GbdtRegressor& model) {
  Writer w;
  write_gbdt_regressor_payload(w, model);
  return finalize(ModelKind::kGbdtRegressor, w.view());
}

std::string save_bytes(const ml::GbdtClassifier& model) {
  Writer w;
  write_gbdt_classifier_payload(w, model);
  return finalize(ModelKind::kGbdtClassifier, w.view());
}

std::string save_bytes(const ml::RandomForestRegressor& model) {
  Writer w;
  write_forest_regressor_payload(w, model);
  return finalize(ModelKind::kForestRegressor, w.view());
}

std::string save_bytes(const ml::RandomForestClassifier& model) {
  Writer w;
  write_forest_classifier_payload(w, model);
  return finalize(ModelKind::kForestClassifier, w.view());
}

std::string save_bytes(const core::Lumos5G& model) {
  Writer w;
  write_lumos5g_payload(w, model);
  return finalize(ModelKind::kLumos5G, w.view());
}

std::string save_bytes(const nn::Seq2Seq& model) {
  Writer w;
  write_seq2seq_payload(w, model);
  return finalize(ModelKind::kSeq2Seq, w.view());
}

Expected<ml::GbdtRegressor> load_gbdt_regressor(std::string_view bytes) {
  const auto payload = check_envelope(bytes, ModelKind::kGbdtRegressor);
  if (!payload) return payload.error();
  Reader r(*payload);
  ml::GbdtRegressor model;
  if (!read_gbdt_regressor_payload(r, model) || !r.done()) {
    return parse_error("malformed gbdt_regressor payload");
  }
  return model;
}

Expected<ml::GbdtClassifier> load_gbdt_classifier(std::string_view bytes) {
  const auto payload = check_envelope(bytes, ModelKind::kGbdtClassifier);
  if (!payload) return payload.error();
  Reader r(*payload);
  ml::GbdtClassifier model;
  if (!read_gbdt_classifier_payload(r, model) || !r.done()) {
    return parse_error("malformed gbdt_classifier payload");
  }
  return model;
}

Expected<ml::RandomForestRegressor> load_forest_regressor(
    std::string_view bytes) {
  const auto payload = check_envelope(bytes, ModelKind::kForestRegressor);
  if (!payload) return payload.error();
  Reader r(*payload);
  ml::RandomForestRegressor model;
  if (!read_forest_regressor_payload(r, model) || !r.done()) {
    return parse_error("malformed forest_regressor payload");
  }
  return model;
}

Expected<ml::RandomForestClassifier> load_forest_classifier(
    std::string_view bytes) {
  const auto payload = check_envelope(bytes, ModelKind::kForestClassifier);
  if (!payload) return payload.error();
  Reader r(*payload);
  ml::RandomForestClassifier model;
  if (!read_forest_classifier_payload(r, model) || !r.done()) {
    return parse_error("malformed forest_classifier payload");
  }
  return model;
}

Expected<core::Lumos5G> load_lumos5g(std::string_view bytes) {
  const auto payload = check_envelope(bytes, ModelKind::kLumos5G);
  if (!payload) return payload.error();
  Reader r(*payload);
  core::Lumos5GConfig cfg;
  cfg.feature_spec = read_spec(r);
  cfg.features = read_feature_config(r);
  cfg.gbdt = read_gbdt_config(r);
  cfg.fallback = read_fallback_config(r);
  if (!r.ok()) return parse_error("malformed lumos5g config block");
  core::Lumos5G model(cfg);
  const std::size_t n_tiers = r.count(1);
  // The tier chain is derived deterministically from the config, so the
  // stored tier count must match what the rebuilt facade derived.
  if (!r.ok() || n_tiers != model.tier_specs().size()) {
    return parse_error("stored tier count disagrees with the tier chain "
                       "derived from the stored config");
  }
  for (std::size_t i = 0; i < n_tiers; ++i) {
    const bool tier_trained = r.boolean();
    if (!tier_trained) continue;
    ml::GbdtRegressor reg;
    ml::GbdtClassifier cls;
    if (!read_gbdt_regressor_payload(r, reg) ||
        !read_gbdt_classifier_payload(r, cls)) {
      return parse_error("malformed models for tier " + std::to_string(i));
    }
    model.restore_tier(i, std::move(reg), std::move(cls));
  }
  if (!r.done()) return parse_error("malformed lumos5g payload");
  return model;
}

Expected<nn::Seq2Seq> load_seq2seq(std::string_view bytes) {
  const auto payload = check_envelope(bytes, ModelKind::kSeq2Seq);
  if (!payload) return payload.error();
  Reader r(*payload);
  return read_seq2seq_payload(r);
}

Expected<ModelKind> peek_kind(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) {
    return Error{ErrorCode::kTruncated,
                 "model artifact shorter than its fixed header"};
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Error{ErrorCode::kBadMagic,
                 "not a Lumos5G model artifact (magic != \"L5GM\")"};
  }
  Reader header(bytes.substr(sizeof(kMagic)));
  const std::uint32_t version = header.u32();
  if (version != kFormatVersion) {
    return Error{ErrorCode::kVersionMismatch,
                 "model artifact is format v" + std::to_string(version) +
                     "; this build reads exactly v" +
                     std::to_string(kFormatVersion)};
  }
  const std::uint8_t kind = header.u8();
  if (kind > kMaxKindTag) {
    return parse_error("unknown model kind tag " + std::to_string(kind));
  }
  return static_cast<ModelKind>(kind);
}

Expected<void> write_artifact(const std::filesystem::path& path,
                              const std::string& bytes) {
  // Each writer gets its own temp name: two threads saving to the same
  // destination must never interleave bytes in a shared ".tmp" file. The
  // final rename is atomic, so concurrent writers race to whole artifacts,
  // not to torn ones.
  static std::atomic<std::uint64_t> temp_serial{0};
  const std::filesystem::path tmp =
      path.string() + ".tmp." +
      std::to_string(temp_serial.fetch_add(1, std::memory_order_relaxed));
  const auto fail = [&tmp](std::string message) -> Expected<void> {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);  // never leave a temp behind
    return Error{ErrorCode::kIoError, std::move(message)};
  };
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return fail("cannot open " + tmp.string() + " for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      return fail("short write to " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return fail("cannot rename " + tmp.string() + " to " + path.string() +
                ": " + ec.message());
  }
  return {};
}

Expected<std::string> read_artifact(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error{ErrorCode::kIoError, "cannot open " + path.string()};
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Error{ErrorCode::kIoError, "read failure on " + path.string()};
  }
  return bytes;
}

}  // namespace lumos::serve

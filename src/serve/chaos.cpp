#include "serve/chaos.h"

#include <algorithm>

namespace lumos::serve {

ChaosConfig ChaosConfig::uniform(double r) noexcept {
  ChaosConfig c;
  c.corrupt_artifact = r;
  c.truncate_artifact = r;
  c.duplicate_request = r;
  c.stale_request = r;
  c.flood = r;
  c.clock_jump = r;
  return c;
}

std::string ChaosInjector::damage_artifact(std::string bytes) {
  if (bytes.empty()) return bytes;
  // Each draw happens unconditionally so the stream position — and with it
  // every later fault — depends only on the call sequence, not on which
  // faults fired (same discipline as Rng::normal discarding its spare).
  const bool flip = rng_.bernoulli(cfg_.corrupt_artifact);
  const std::size_t flip_at =
      static_cast<std::size_t>(rng_.uniform_int(bytes.size()));
  const int flip_bit = static_cast<int>(rng_.uniform_int(8));
  const bool cut = rng_.bernoulli(cfg_.truncate_artifact);
  const std::size_t cut_to =
      static_cast<std::size_t>(rng_.uniform_int(bytes.size()));
  if (flip) {
    bytes[flip_at] = static_cast<char>(
        static_cast<unsigned char>(bytes[flip_at]) ^ (1u << flip_bit));
  }
  if (cut) bytes.resize(cut_to);
  return bytes;
}

bool ChaosInjector::should_duplicate() {
  return rng_.bernoulli(cfg_.duplicate_request);
}

bool ChaosInjector::make_stale(data::SampleRecord& sample) {
  const bool stale = rng_.bernoulli(cfg_.stale_request);
  const double rewind = rng_.uniform(0.5, 1.5) * cfg_.stale_rewind_s;
  if (stale) sample.timestamp_s -= rewind;
  return stale;
}

std::size_t ChaosInjector::flood_multiplier() {
  const bool burst = rng_.bernoulli(cfg_.flood);
  return burst ? std::max<std::size_t>(1, cfg_.flood_factor) : 1;
}

std::uint64_t ChaosInjector::clock_jump_ms() {
  const bool jump = rng_.bernoulli(cfg_.clock_jump);
  const std::uint64_t ms = rng_.uniform_int(cfg_.max_clock_jump_ms + 1);
  return jump ? ms : 0;
}

}  // namespace lumos::serve

#include "serve/predictor.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/contracts.h"
#include "common/parallel.h"

namespace lumos::serve {

Expected<Predictor> Predictor::compile(const core::Lumos5G& model) {
  if (!model.trained()) {
    return Error{ErrorCode::kNotTrained,
                 "Predictor::compile: facade has no trained tier"};
  }
  Predictor p;
  p.features_ = model.config().features;
  p.fallback_ = model.config().fallback;
  p.specs_ = model.tier_specs();
  p.tiers_.resize(p.specs_.size());
  p.tier_names_.reserve(p.specs_.size());
  p.tier_widths_.reserve(p.specs_.size());
  for (std::size_t i = 0; i < p.specs_.size(); ++i) {
    p.tier_names_.push_back(p.specs_[i].name());
    p.tier_widths_.push_back(data::feature_width(p.specs_[i], p.features_));
    p.max_width_ = std::max(p.max_width_, p.tier_widths_.back());
    if (!model.tier_trained(i)) continue;
    p.tiers_[i].regressor = FlatForest::flatten(model.tier_regressor(i));
    p.tiers_[i].classifier = FlatClassifier::flatten(model.tier_classifier(i));
    p.tiers_[i].compiled = true;
  }
  return p;
}

Expected<core::Prediction> Predictor::predict(
    std::span<const data::SampleRecord> recent, std::size_t min_tier) const {
  // Mirrors Lumos5G::predict tier by tier so a compiled predictor answers
  // bit-identically to the facade it came from. min_tier skips the front
  // of the chain (overload degradation); the walk below it is unchanged,
  // so min_tier = 0 stays bit-identical to the facade.
  // Per-thread row arena: sized once to the widest tier, then reused by
  // every call on this thread. The resize is amortized cold (a no-op after
  // the first call at this width), and the contents are fully overwritten
  // by feature_row_into before use, so reuse cannot leak state between
  // calls or threads.
  thread_local std::vector<double> row_arena;
  if (row_arena.size() < max_width_) {
    row_arena.resize(max_width_);  // lumos-lint: allow(hot-path-alloc) amortized thread-local arena growth
  }
  for (std::size_t i = min_tier; i < tiers_.size(); ++i) {
    const FlatTier& tier = tiers_[i];
    if (!tier.compiled) continue;
    const std::span<double> row{row_arena.data(), tier_widths_[i]};
    if (!data::feature_row_into(recent, specs_[i], features_, row)) continue;
    core::Prediction p;
    p.throughput_mbps = tier.regressor.predict(row);
    p.throughput_class = tier.classifier.predict(row);
    p.tier = static_cast<int>(i);
    p.feature_group = tier_names_[i];  // SSO copy: tier names are short
    return p;
  }
  return tail_predict(recent);
}

Expected<core::Prediction> Predictor::tail_predict(
    std::span<const data::SampleRecord> recent) const {
  if (fallback_.enabled && fallback_.harmonic_tail) {
    // Same harmonic tail as the facade: harmonic mean of the most recent
    // positive finite throughputs.
    double inv_sum = 0.0;
    std::size_t n = 0;
    for (std::size_t k = recent.size();
         k-- > 0 && n < fallback_.harmonic_window;) {
      const double v = recent[k].throughput_mbps;
      if (std::isfinite(v) && v > 0.0) {
        inv_sum += 1.0 / v;
        ++n;
      }
    }
    if (n > 0) {
      core::Prediction p;
      p.throughput_mbps = static_cast<double>(n) / inv_sum;
      p.throughput_class =
          data::throughput_class(p.throughput_mbps, features_);
      p.tier = static_cast<int>(specs_.size());
      p.feature_group = "harmonic";
      return p;
    }
  }
  // Static message: the hot path never formats. The code plus the window
  // length on the Response are enough for the caller to diagnose.
  return Error{ErrorCode::kWindowUnusable, "window unusable"};
}

void Predictor::predict_spans(
    std::span<const std::span<const data::SampleRecord>> windows,
    std::span<Expected<core::Prediction>> out, std::size_t min_tier) const {
  LUMOS_EXPECTS(out.size() >= windows.size(),
                "Predictor::predict_spans: one output slot per window");
  parallel_for(0, windows.size(), 8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      out[i] = predict(windows[i], min_tier);
    }
  });
}

void Predictor::predict_spans_columnar(
    std::span<const std::span<const data::SampleRecord>> windows,
    std::span<Expected<core::Prediction>> out, PredictScratch& scratch,
    std::size_t min_tier) const {
  LUMOS_EXPECTS(out.size() >= windows.size(),
                "Predictor::predict_spans_columnar: one output slot per window");
  LUMOS_EXPECTS(scratch.max_windows() >= windows.size(),
                "Predictor::predict_spans_columnar: scratch too small for batch");
  LUMOS_EXPECTS(scratch.max_width() >= max_width_,
                "Predictor::predict_spans_columnar: scratch narrower than widest tier");

  // Start with every window pending, in submission order. The tier loop
  // answers windows tier-by-tier; pending_ is compacted in place each pass
  // (write index trails read index, so compaction is safe and preserves
  // order — which keeps feature extraction deterministic and the walk
  // per-window identical to predict()).
  std::size_t n_pending = windows.size();
  for (std::size_t i = 0; i < n_pending; ++i) {
    scratch.pending_[i] = static_cast<std::uint32_t>(i);
  }

  for (std::size_t t = min_tier; t < tiers_.size() && n_pending > 0; ++t) {
    const FlatTier& tier = tiers_[t];
    if (!tier.compiled) continue;
    const std::span<double> row{scratch.row_.data(), tier_widths_[t]};
    // Pack: extract this tier's feature row for every still-pending
    // window; successes scatter into the column arena, failures stay
    // pending for the next tier. A window either packs here or compacts
    // forward — exactly the per-row "first tier whose features the window
    // can produce" rule of predict().
    std::size_t n_packed = 0;
    std::size_t n_next = 0;
    for (std::size_t k = 0; k < n_pending; ++k) {
      const std::uint32_t idx = scratch.pending_[k];
      if (data::feature_row_into(windows[idx], specs_[t], features_, row)) {
        scratch.cols_.put_row(n_packed, row);
        scratch.packed_[n_packed++] = idx;
      } else {
        scratch.pending_[n_next++] = idx;
      }
    }
    n_pending = n_next;
    if (n_packed == 0) continue;

    // Evaluate the packed rows in one columnar pass per model: every row
    // advances together through each tree level over contiguous feature
    // columns. Per row this is bit-identical to tier.regressor.predict /
    // tier.classifier.predict on the same extracted features.
    const data::ColumnBlock block = scratch.cols_.block(0, n_packed);
    tier.regressor.predict_columnar(
        block, std::span<double>{scratch.reg_.data(), n_packed});
    tier.classifier.predict_columnar(
        block, std::span<int>{scratch.cls_.data(), n_packed});
    for (std::size_t j = 0; j < n_packed; ++j) {
      core::Prediction p;
      p.throughput_mbps = scratch.reg_[j];
      p.throughput_class = scratch.cls_[j];
      p.tier = static_cast<int>(t);
      p.feature_group = tier_names_[t];  // SSO copy: tier names are short
      out[scratch.packed_[j]] = std::move(p);
    }
  }

  // Whatever no tier could serve falls to the same tail as predict().
  for (std::size_t k = 0; k < n_pending; ++k) {
    const std::uint32_t idx = scratch.pending_[k];
    out[idx] = tail_predict(windows[idx]);
  }
}

std::vector<Expected<core::Prediction>> Predictor::predict_batch(
    std::span<const Session> sessions, std::size_t min_tier) const {
  std::vector<std::span<const data::SampleRecord>> spans;
  spans.reserve(sessions.size());
  for (const Session& s : sessions) spans.push_back(s.window());
  std::vector<Expected<core::Prediction>> out(
      sessions.size(),
      Expected<core::Prediction>(Error{ErrorCode::kWindowUnusable, ""}));
  predict_spans(spans, out, min_tier);
  return out;
}

std::vector<Expected<core::Prediction>> Predictor::predict_windows(
    std::span<const std::vector<data::SampleRecord>> windows,
    std::size_t min_tier) const {
  std::vector<std::span<const data::SampleRecord>> spans;
  spans.reserve(windows.size());
  for (const auto& w : windows) spans.emplace_back(w);
  std::vector<Expected<core::Prediction>> out(
      windows.size(),
      Expected<core::Prediction>(Error{ErrorCode::kWindowUnusable, ""}));
  predict_spans(spans, out, min_tier);
  return out;
}

std::size_t Predictor::n_nodes() const noexcept {
  std::size_t n = 0;
  for (const auto& t : tiers_) {
    n += t.regressor.n_nodes() + t.classifier.n_nodes();
  }
  return n;
}

}  // namespace lumos::serve

#include "serve/predictor.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/contracts.h"
#include "common/parallel.h"

namespace lumos::serve {

Expected<Predictor> Predictor::compile(const core::Lumos5G& model) {
  if (!model.trained()) {
    return Error{ErrorCode::kNotTrained,
                 "Predictor::compile: facade has no trained tier"};
  }
  Predictor p;
  p.features_ = model.config().features;
  p.fallback_ = model.config().fallback;
  p.specs_ = model.tier_specs();
  p.tiers_.resize(p.specs_.size());
  p.tier_names_.reserve(p.specs_.size());
  p.tier_widths_.reserve(p.specs_.size());
  for (std::size_t i = 0; i < p.specs_.size(); ++i) {
    p.tier_names_.push_back(p.specs_[i].name());
    p.tier_widths_.push_back(data::feature_width(p.specs_[i], p.features_));
    p.max_width_ = std::max(p.max_width_, p.tier_widths_.back());
    if (!model.tier_trained(i)) continue;
    p.tiers_[i].regressor = FlatForest::flatten(model.tier_regressor(i));
    p.tiers_[i].classifier = FlatClassifier::flatten(model.tier_classifier(i));
    p.tiers_[i].compiled = true;
  }
  return p;
}

Expected<core::Prediction> Predictor::predict(
    std::span<const data::SampleRecord> recent, std::size_t min_tier) const {
  // Mirrors Lumos5G::predict tier by tier so a compiled predictor answers
  // bit-identically to the facade it came from. min_tier skips the front
  // of the chain (overload degradation); the walk below it is unchanged,
  // so min_tier = 0 stays bit-identical to the facade.
  // Per-thread row arena: sized once to the widest tier, then reused by
  // every call on this thread. The resize is amortized cold (a no-op after
  // the first call at this width), and the contents are fully overwritten
  // by feature_row_into before use, so reuse cannot leak state between
  // calls or threads.
  thread_local std::vector<double> row_arena;
  if (row_arena.size() < max_width_) {
    row_arena.resize(max_width_);  // lumos-lint: allow(hot-path-alloc) amortized thread-local arena growth
  }
  for (std::size_t i = min_tier; i < tiers_.size(); ++i) {
    const FlatTier& tier = tiers_[i];
    if (!tier.compiled) continue;
    const std::span<double> row{row_arena.data(), tier_widths_[i]};
    if (!data::feature_row_into(recent, specs_[i], features_, row)) continue;
    core::Prediction p;
    p.throughput_mbps = tier.regressor.predict(row);
    p.throughput_class = tier.classifier.predict(row);
    p.tier = static_cast<int>(i);
    p.feature_group = tier_names_[i];  // SSO copy: tier names are short
    return p;
  }
  if (fallback_.enabled && fallback_.harmonic_tail) {
    // Same harmonic tail as the facade: harmonic mean of the most recent
    // positive finite throughputs.
    double inv_sum = 0.0;
    std::size_t n = 0;
    for (std::size_t k = recent.size();
         k-- > 0 && n < fallback_.harmonic_window;) {
      const double v = recent[k].throughput_mbps;
      if (std::isfinite(v) && v > 0.0) {
        inv_sum += 1.0 / v;
        ++n;
      }
    }
    if (n > 0) {
      core::Prediction p;
      p.throughput_mbps = static_cast<double>(n) / inv_sum;
      p.throughput_class =
          data::throughput_class(p.throughput_mbps, features_);
      p.tier = static_cast<int>(specs_.size());
      p.feature_group = "harmonic";
      return p;
    }
  }
  // Static message: the hot path never formats. The code plus the window
  // length on the Response are enough for the caller to diagnose.
  return Error{ErrorCode::kWindowUnusable, "window unusable"};
}

void Predictor::predict_spans(
    std::span<const std::span<const data::SampleRecord>> windows,
    std::span<Expected<core::Prediction>> out, std::size_t min_tier) const {
  LUMOS_EXPECTS(out.size() >= windows.size(),
                "Predictor::predict_spans: one output slot per window");
  parallel_for(0, windows.size(), 8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      out[i] = predict(windows[i], min_tier);
    }
  });
}

std::vector<Expected<core::Prediction>> Predictor::predict_batch(
    std::span<const Session> sessions, std::size_t min_tier) const {
  std::vector<std::span<const data::SampleRecord>> spans;
  spans.reserve(sessions.size());
  for (const Session& s : sessions) spans.push_back(s.window());
  std::vector<Expected<core::Prediction>> out(
      sessions.size(),
      Expected<core::Prediction>(Error{ErrorCode::kWindowUnusable, ""}));
  predict_spans(spans, out, min_tier);
  return out;
}

std::vector<Expected<core::Prediction>> Predictor::predict_windows(
    std::span<const std::vector<data::SampleRecord>> windows,
    std::size_t min_tier) const {
  std::vector<std::span<const data::SampleRecord>> spans;
  spans.reserve(windows.size());
  for (const auto& w : windows) spans.emplace_back(w);
  std::vector<Expected<core::Prediction>> out(
      windows.size(),
      Expected<core::Prediction>(Error{ErrorCode::kWindowUnusable, ""}));
  predict_spans(spans, out, min_tier);
  return out;
}

std::size_t Predictor::n_nodes() const noexcept {
  std::size_t n = 0;
  for (const auto& t : tiers_) {
    n += t.regressor.n_nodes() + t.classifier.n_nodes();
  }
  return n;
}

}  // namespace lumos::serve

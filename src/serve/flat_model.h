// Flattened serving-time tree layout. Training-time GradientTree nodes are
// 48+ bytes and scattered across one vector per tree; for serving, every
// tree of an ensemble is re-packed into ONE contiguous array of 16-byte
// nodes laid out so that the two children of a split are always adjacent
// (right child = left child + 1). Traversal is a tight iterative loop: one
// compare, one add, one indexed load per level, with the whole ensemble
// walking a single cache-resident buffer instead of chasing per-tree heap
// allocations.
//
// Flattening is exact, not approximate: thresholds and leaf values keep
// their IEEE-754 bit patterns and the per-tree accumulation order matches
// the training-time predict() loops, so a FlatForest/FlatClassifier is
// bit-identical to the pointer-layout model it was built from (enforced by
// tests/test_serve.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/column_store.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/tree.h"
#include "ml/types.h"

namespace lumos::serve {

/// Rows evaluated together by the columnar batch kernels: a block's
/// per-row cursors and accumulators live in fixed stack arrays, and each
/// tree is walked level-synchronously across the whole block (the rows'
/// traversals are independent, so the per-level gathers overlap instead
/// of serializing on one row's dependency chain).
inline constexpr std::size_t kColumnarRowBlock = 64;

/// One node, 16 bytes. Internal nodes: `value` is the split threshold,
/// `feature` >= 0, `left` encodes the left-child index in its low 31 bits
/// and the split's default-missing-direction in its top bit; the right
/// child is always at left-child index + 1. Leaves: `feature` == -1 and
/// `value` is the leaf output.
struct FlatNode {
  double value = 0.0;
  std::int32_t feature = -1;
  std::uint32_t left = 0;

  static constexpr std::uint32_t kDefaultLeftBit = 0x80000000U;
  static constexpr std::uint32_t kChildMask = 0x7FFFFFFFU;
};

static_assert(sizeof(FlatNode) == 16, "FlatNode must stay 16 bytes");

/// A contiguous, iteratively-traversed ensemble with a fixed aggregation
/// rule. Covers a GBDT margin (base + lr * sum) and a Random Forest mean.
class FlatForest {
 public:
  enum class Aggregate : std::uint8_t {
    kScaledSum,  ///< base + scale * tree_0 + scale * tree_1 + ...
    kMean,       ///< (tree_0 + tree_1 + ...) / n_trees; 0.0 when empty
  };

  FlatForest() = default;

  /// Flattens every `stride`-th tree of `trees` starting at `first` (the
  /// interleaved [stage * n_classes + c] classifier layout selects one
  /// class with first = c, stride = n_classes; plain ensembles use
  /// first = 0, stride = 1). Tree order — and therefore floating-point
  /// accumulation order — is preserved.
  static FlatForest flatten(std::span<const ml::GradientTree> trees,
                            std::size_t first, std::size_t stride,
                            Aggregate agg, double base, double scale);

  /// Convenience: the full prediction path of a fitted model.
  static FlatForest flatten(const ml::GbdtRegressor& model);
  static FlatForest flatten(const ml::RandomForestRegressor& model);

  /// Bit-identical to the source ensemble's predict() on the same row.
  [[nodiscard]] double predict(std::span<const double> row) const noexcept;

  /// Batch predict, chunked over the global thread pool; rows are
  /// independent so the output is identical at any LUMOS_THREADS.
  [[nodiscard]] std::vector<double> predict_batch(
      const ml::FeatureMatrix& x) const;

  /// Columnar batch predict: out[r] receives row r's prediction,
  /// bit-identical to predict() on the equivalent contiguous row (same
  /// per-tree accumulation order, same NaN default routing). Rows are
  /// evaluated in blocks of kColumnarRowBlock — per block, every tree is
  /// walked one level at a time across all rows, reading feature values
  /// from the block's contiguous columns. Allocation-free (stack cursors
  /// only); blocks are chunked over the global thread pool and each out
  /// slot is written once, so the result is identical at any
  /// LUMOS_THREADS. Requires out.size() >= block.n_rows. A root in the
  /// lint hot-path reachability proof.
  void predict_columnar(const data::ColumnBlock& block,
                        std::span<double> out) const;

  std::size_t n_trees() const noexcept { return roots_.size(); }
  std::size_t n_nodes() const noexcept { return nodes_.size(); }

 private:
  friend class FlatClassifier;

  /// Evaluates rows [row0, row0 + m) of `block` into acc[0..m);
  /// m <= kColumnarRowBlock. The per-row result is bit-identical to
  /// predict() on that row. Dispatches between the scalar walk and the
  /// SIMD-width walk (common/simd.h) — both produce the same bits, so the
  /// choice is pure throughput (simd::enabled(), plus 32-bit gather-index
  /// range guards).
  void eval_block(const data::ColumnBlock& block, std::size_t row0,
                  std::size_t m, double* acc) const noexcept;

  /// The reference level-synchronous scalar walk (always compiled; the
  /// LUMOS_SIMD=off fallback and the short-tail path).
  void eval_block_scalar(const data::ColumnBlock& block, std::size_t row0,
                         std::size_t m, double* acc) const noexcept;

  /// Branch-free SIMD-width walk: per level one feature gather, one
  /// column-value masked gather, one ordered compare + NaN default-route
  /// blend per lane group. Defined only when a vector ISA is compiled in.
  void eval_block_simd(const data::ColumnBlock& block, std::size_t row0,
                       std::size_t m, double* acc) const noexcept;

  std::vector<FlatNode> nodes_;
  std::vector<std::uint32_t> roots_;  ///< root node index per tree
  Aggregate agg_ = Aggregate::kScaledSum;
  double base_ = 0.0;
  double scale_ = 1.0;
};

/// Argmax over per-class FlatForests; mirrors GbdtClassifier /
/// RandomForestClassifier prediction (first class wins ties, matching the
/// training-time argmax scans).
class FlatClassifier {
 public:
  FlatClassifier() = default;

  static FlatClassifier flatten(const ml::GbdtClassifier& model);
  static FlatClassifier flatten(const ml::RandomForestClassifier& model);

  /// Per-class scores, bit-identical to the source model's margins.
  [[nodiscard]] std::vector<double> decision_function(
      std::span<const double> row) const;

  /// Bit-identical to the source classifier's predict().
  [[nodiscard]] int predict(std::span<const double> row) const noexcept;

  /// Batch predict over the global thread pool (deterministic).
  [[nodiscard]] std::vector<int> predict_batch(
      const ml::FeatureMatrix& x) const;

  /// Columnar batch predict: out[r] is row r's class, bit-identical to
  /// predict() (per-class scores via the same block kernel, first-max-wins
  /// argmax). Allocation-free; requires out.size() >= block.n_rows. A
  /// root in the lint hot-path reachability proof.
  void predict_columnar(const data::ColumnBlock& block,
                        std::span<int> out) const;

  int n_classes() const noexcept { return static_cast<int>(per_class_.size()); }
  std::size_t n_nodes() const noexcept;

 private:
  std::vector<FlatForest> per_class_;
};

}  // namespace lumos::serve

// serve::ChaosInjector — seeded fault injection for the serving loop, the
// serve-layer sibling of sim::FaultInjector (which hardens the *data*
// pipeline). Where the data injector dirties traces, the chaos injector
// dirties *operations*: artifacts get bit-flipped or truncated mid-reload,
// ticks turn into request floods, session updates arrive duplicated or
// stale, and the clock jumps forward (suspend/resume, NTP-free steady
// drift). Every draw comes from one lumos::Rng stream, so a soak is a pure
// function of (config, seed, drive sequence) and replays bit for bit; with
// all rates at zero every hook is an identity / no-op.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "data/sample.h"

namespace lumos::serve {

/// Per-event fault probabilities, all in [0, 1] and all zero by default
/// (the injector is then a no-op).
struct ChaosConfig {
  // --- reload path ---
  double corrupt_artifact = 0.0;   ///< flip one random bit of the artifact
  double truncate_artifact = 0.0;  ///< drop a random-length suffix

  // --- request stream ---
  double duplicate_request = 0.0;  ///< observation submitted twice
  double stale_request = 0.0;      ///< observation timestamp rewound
  double stale_rewind_s = 30.0;    ///< how far a stale timestamp rewinds

  // --- load ---
  double flood = 0.0;              ///< this tick bursts flood_factor x load
  std::size_t flood_factor = 8;

  // --- time ---
  double clock_jump = 0.0;              ///< forward clock jump at this tick
  std::uint64_t max_clock_jump_ms = 5000;

  /// Convenience: every probability above set to `r` (amplitude knobs
  /// untouched), mirroring sim::FaultConfig::uniform.
  [[nodiscard]] static ChaosConfig uniform(double r) noexcept;
};

class ChaosInjector {
 public:
  ChaosInjector(ChaosConfig cfg, std::uint64_t seed) noexcept
      : cfg_(cfg), rng_(seed) {}

  /// Maybe damages artifact bytes on their way to a reload: a single
  /// random bit flip (caught by the envelope hash -> kCorrupt) and/or a
  /// truncation (-> kTruncated). Returns the bytes unchanged when no fault
  /// is drawn; never grows the buffer.
  [[nodiscard]] std::string damage_artifact(std::string bytes);

  /// True when the current observation should also be submitted a second
  /// time (crowdsourced uploaders retry on flaky links).
  [[nodiscard]] bool should_duplicate();

  /// Maybe rewinds `sample`'s timestamp by ~stale_rewind_s (a delayed
  /// upload arriving after fresher data). Returns whether it did.
  bool make_stale(data::SampleRecord& sample);

  /// Requests to submit this tick: 1 normally, flood_factor on a flood.
  [[nodiscard]] std::size_t flood_multiplier();

  /// Milliseconds the clock should jump forward this tick (0 = no jump).
  [[nodiscard]] std::uint64_t clock_jump_ms();

  const ChaosConfig& config() const noexcept { return cfg_; }

 private:
  ChaosConfig cfg_;
  Rng rng_;
};

}  // namespace lumos::serve

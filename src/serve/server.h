// serve::Server — the resilient long-running loop over serve::Predictor.
//
// The Predictor answers one call at a time and trusts its caller; a real
// deployment faces bursty crowdsourced traffic, per-request latency
// budgets, unbounded per-UE state, and model artifacts that get republished
// (and occasionally corrupted) underneath it. The Server adds exactly that
// missing operational layer:
//
//   * Bounded MPSC admission queue, sharded by UE. Any number of producer
//     threads call submit(); one consumer drives step(). Requests route to
//     one of `num_shards` shards by a stable hash of ue_id — producers on
//     different shards contend only on a lock-free global depth counter —
//     and poll() merges the shard rings back into global ticket order, so
//     sharding is invisible in every output. Admission is controlled by a
//     shed watermark: at or above `shed_watermark` occupancy the request is
//     rejected with a typed kOverloaded error instead of growing the queue
//     (and a hard cap at queue_capacity backstops a watermark of 1.0).
//     Within poll(), the per-shard batch slices are predicted fork-join
//     over the thread pool (see DESIGN §12), bit-identically to the
//     single-shard walk.
//
//   * Per-request deadlines. Each accepted request carries an absolute
//     expiry (relative budget stamped against the injected Clock at
//     admission); a request still queued past its expiry is answered with
//     kDeadlineExceeded and costs no model work — under backlog the server
//     spends its cycles only on answers somebody still wants.
//
//   * Graceful degradation before shedding. Queue occupancy maps through
//     `degrade_watermarks` to a minimum fallback tier for the batch
//     (T+M+C -> ... -> harmonic): pressure first buys cheaper answers, and
//     only past the shed watermark buys rejections. The tier that actually
//     answered is reported honestly on Prediction::tier. The mapping is
//     monotone in depth by construction (watermarks are kept sorted).
//
//   * Session lifecycle. Per-UE rolling windows are created on first use
//     and evicted two ways: TTL (idle longer than session_ttl_ms) and
//     capacity (LRU beyond max_sessions). An evicted UE's next request
//     transparently rebuilds its session — it may answer from a lower tier
//     until the window refills, which is the fallback chain working as
//     designed, never an error.
//
//   * Hot model reload with rollback. reload() fully validates the new
//     artifact (envelope hash, payload parse, compile) on the side and
//     atomically swaps the serving snapshot only on success. Transient
//     kIoError is retried with bounded exponential backoff; validation
//     failures (kCorrupt / kTruncated / kVersionMismatch / kBadMagic /
//     kParseError) roll back immediately: the old model keeps serving and
//     the error is reported to the operator. No request ever observes a
//     partially-loaded model.
//
// All time flows through an injected lumos::Clock, so tests and the chaos
// soak drive a ManualClock (bit-reproducible runs, scripted clock jumps)
// while production wires a SteadyClock. The consumer side is poll-driven
// (step()/drain()) rather than owning a thread: the repo bans raw threads
// outside the pool, and a pumped loop is what makes the soak deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "data/sample.h"
#include "serve/predictor.h"

namespace lumos::serve {

struct ServerConfig {
  // --- admission ---
  std::size_t queue_capacity = 256;  ///< hard bound on queued requests
  /// Occupancy fraction at or above which submit() sheds with kOverloaded.
  /// 1.0 = shed only when full.
  double shed_watermark = 0.9;

  // --- degradation ---
  /// Ascending occupancy fractions; crossing the i-th raises the minimum
  /// served fallback tier to i+1 for the next batch (see
  /// Server::min_tier_for_depth). Empty = never degrade.
  std::vector<double> degrade_watermarks = {0.50, 0.70, 0.85};

  // --- batching ---
  std::size_t max_batch = 64;  ///< requests drained per step()

  // --- deadlines ---
  /// Default per-request budget (ms) when Request::deadline_ms is 0;
  /// 0 = requests never expire.
  std::uint64_t default_deadline_ms = 0;

  // --- session lifecycle ---
  std::size_t max_sessions = 256;      ///< LRU capacity for per-UE windows
  std::uint64_t session_ttl_ms = 0;    ///< idle eviction; 0 = no TTL
  std::size_t session_capacity = 32;   ///< rolling window per session

  // --- hot reload ---
  std::size_t reload_max_attempts = 3;   ///< tries per reload() call
  std::uint64_t reload_backoff_ms = 10;  ///< initial backoff, doubles per retry

  // --- sharding ---
  /// Number of admission/session shards (requests are routed by a stable
  /// hash of ue_id). 0 = thread-pool size at construction. Sharding never
  /// changes results — poll() merges shard queues back into global ticket
  /// order, so responses, tiers, and eviction effects are bit-identical at
  /// any shard count; it only sets how wide poll() can fan out.
  std::size_t num_shards = 0;
};

/// One prediction request: UE `ue_id` observed `sample` this second and
/// wants the next-slot throughput. `deadline_ms` is a relative budget
/// (0 = use the server default).
struct Request {
  std::uint64_t ue_id = 0;
  data::SampleRecord sample;
  std::uint64_t deadline_ms = 0;
};

/// The answer (or typed failure) for one admitted request.
struct Response {
  std::uint64_t ticket = 0;       ///< admission ticket from submit()
  std::uint64_t ue_id = 0;
  std::uint64_t enqueued_ms = 0;  ///< Clock time at admission
  std::uint64_t served_ms = 0;    ///< Clock time at the serving step
  std::size_t min_tier = 0;       ///< degradation floor applied to the batch
  Expected<core::Prediction> result;

  Response() : result(Error{ErrorCode::kWindowUnusable, ""}) {}
};

/// Monotone counters exposed for tests, benches, and operators. Updated
/// only by the consumer side (step()/reload()) except submitted/shed/
/// rejected_shutdown/peak_depth, which the admission path maintains as
/// lock-free atomics (stats() snapshots them into this plain view).
struct ServerStats {
  std::uint64_t submitted = 0;          ///< accepted by submit()
  std::uint64_t shed = 0;               ///< rejected kOverloaded
  std::uint64_t rejected_shutdown = 0;  ///< rejected kShuttingDown
  std::uint64_t served = 0;             ///< responses carrying a prediction
  std::uint64_t failed = 0;             ///< responses carrying a model error
  std::uint64_t deadline_expired = 0;   ///< responses kDeadlineExceeded
  std::uint64_t evicted_ttl = 0;
  std::uint64_t evicted_lru = 0;
  std::uint64_t reload_attempts = 0;
  std::uint64_t reloads_ok = 0;
  std::uint64_t reloads_failed = 0;  ///< reload() calls that rolled back
  std::size_t peak_depth = 0;        ///< max queue depth ever observed
  /// served_by_tier[t] counts answers from tier t; the last slot is the
  /// harmonic tail.
  std::vector<std::uint64_t> served_by_tier;
};

class Server {
 public:
  /// The clock is borrowed and must outlive the server.
  Server(Predictor predictor, ServerConfig cfg, Clock& clock);

  // --- producer side (thread-safe) -----------------------------------------

  /// Admits a request. Returns its ticket, or kOverloaded (above the shed
  /// watermark / queue full) or kShuttingDown (after begin_shutdown()).
  [[nodiscard]] Expected<std::uint64_t> submit(const Request& req);

  /// Stops admitting; queued requests still drain through step().
  void begin_shutdown();

  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] bool shutting_down() const;

  // --- consumer side (single-threaded) -------------------------------------

  /// Allocation-free serving step: drains up to min(max_batch, out.size())
  /// requests into caller-provided storage — expires overdue ones, applies
  /// the depth-derived tier floor, feeds sessions, and batch-predicts over
  /// the thread pool using the server's preallocated arenas. Returns the
  /// number of responses written (admission order). Also runs TTL eviction
  /// against the current clock. This is the consumer-side hot-path root in
  /// the lint reachability proof; step() is its allocating wrapper.
  [[nodiscard]] std::size_t poll(std::span<Response> out);

  /// Drains up to max_batch requests: expires overdue ones, applies the
  /// depth-derived tier floor, feeds sessions, and batch-predicts over the
  /// thread pool. Returns responses in admission order. Also runs TTL
  /// eviction against the current clock. Allocating wrapper over poll().
  std::vector<Response> step();

  /// Pumps step() until the queue is empty; returns all responses.
  std::vector<Response> drain();

  /// The documented occupancy -> minimum-tier mapping (monotone in depth).
  [[nodiscard]] std::size_t min_tier_for_depth(std::size_t depth) const noexcept;

  // --- hot reload (consumer side) ------------------------------------------

  /// Reads, validates, compiles, and atomically swaps in the artifact at
  /// `path`. kIoError retries with exponential backoff (clock.sleep_ms);
  /// validation failures roll back immediately. On failure the previous
  /// model keeps serving and model_generation() is unchanged.
  [[nodiscard]] Expected<void> reload(const std::filesystem::path& path);

  /// Same swap semantics for an in-memory artifact (no retry loop — there
  /// is no transient failure mode for bytes already in hand).
  [[nodiscard]] Expected<void> reload_bytes(std::string_view bytes);

  /// Increments on every successful reload; 1 for the construction model.
  [[nodiscard]] std::uint64_t model_generation() const noexcept {
    return generation_;
  }

  // --- introspection -------------------------------------------------------

  const Predictor& predictor() const noexcept { return predictor_; }
  const ServerConfig& config() const noexcept { return cfg_; }
  /// Snapshot view: folds the admission-side atomics into the plain
  /// counter struct. Call from a quiescent point for exact totals.
  const ServerStats& stats() const noexcept {
    stats_.submitted = submitted_.load(std::memory_order_relaxed);
    stats_.shed = shed_.load(std::memory_order_relaxed);
    stats_.rejected_shutdown =
        rejected_shutdown_.load(std::memory_order_relaxed);
    stats_.peak_depth = peak_depth_.load(std::memory_order_relaxed);
    return stats_;
  }
  [[nodiscard]] std::size_t n_sessions() const noexcept {
    return n_sessions_;
  }
  [[nodiscard]] std::size_t n_shards() const noexcept { return n_shards_; }

 private:
  struct Pending {
    std::uint64_t ticket = 0;
    std::uint64_t ue_id = 0;
    std::uint64_t enqueued_ms = 0;
    std::uint64_t expiry_ms = 0;  ///< absolute; 0 = never expires
    data::SampleRecord sample;
  };

  struct SessionEntry {
    Session session;
    std::uint64_t last_used_ms = 0;    ///< for TTL eviction
    std::uint64_t last_used_seq = 0;   ///< for deterministic LRU order
  };

  /// One admission/session shard. Padded to a cache line so one shard's
  /// queue counters and mutex never false-share with a neighbour's while
  /// producers on different shards admit concurrently. Each shard owns a
  /// full-capacity ring (any single shard may momentarily hold the whole
  /// admitted load) and the poll() arenas for its slice of the batch, so
  /// the per-shard predict fan-out shares no mutable state.
  struct alignas(64) Shard {
    mutable std::mutex mu_;  ///< guards ring_/head_/count_
    std::vector<Pending> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;

    // Consumer-side state (poll()/reload() only; no lock needed).
    std::map<std::uint64_t, SessionEntry> sessions_;
    std::vector<data::SampleRecord> window_arena_;
    std::vector<std::span<const data::SampleRecord>> span_arena_;
    std::vector<std::size_t> slot_arena_;  ///< out[] index per window
    std::vector<Expected<core::Prediction>> result_arena_;
    std::size_t n_windows_ = 0;
    std::size_t arena_used_ = 0;
    /// Columnar working set for predict_spans_columnar: reserved at
    /// construction and after every successful reload (the new model may
    /// be wider), never on the serving path.
    PredictScratch scratch_;
  };

  /// Stable ue -> shard routing (splitmix64 finalizer): platform- and
  /// run-independent, so shard membership — and therefore every digest —
  /// depends only on (ue_id, num_shards).
  [[nodiscard]] std::size_t shard_of(std::uint64_t ue) const noexcept {
    std::uint64_t x = ue + 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % n_shards_);
  }

  /// Returns the session for `ue`, creating it (and LRU-evicting past the
  /// GLOBAL capacity, scanning every shard for the minimum-seq victim) if
  /// needed.
  SessionEntry& touch_session(std::uint64_t ue, std::uint64_t now);
  void evict_expired_sessions(std::uint64_t now);

  /// Phase-3 per-shard model work: one batched columnar predict over the
  /// shard's window spans into its result arena. A hot-path root in the
  /// lint reachability proof (runs inside the poll() fork-join).
  void poll_shard(Shard& shard, std::size_t min_tier) const;

  ServerConfig cfg_;
  Clock* clock_;
  Predictor predictor_;

  std::size_t n_shards_ = 1;
  std::unique_ptr<Shard[]> shards_;

  // Admission-side shared state: lock-free so producers on different
  // shards only contend on their own shard's mutex.
  std::atomic<std::size_t> total_count_{0};
  std::atomic<bool> shutting_down_{false};
  std::atomic<std::uint64_t> next_ticket_{1};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::size_t> peak_depth_{0};
  /// Precomputed max(1, shed_watermark * queue_capacity).
  std::size_t shed_threshold_ = 1;

  // Consumer-side state: only touched from poll()/reload().
  std::size_t n_sessions_ = 0;  ///< sum over shards_[*].sessions_.size()
  std::uint64_t use_seq_ = 0;
  std::uint64_t generation_ = 1;
  mutable ServerStats stats_;

  /// Preallocated merge arena: poll() reassembles the global-ticket-order
  /// batch here from the shard rings.
  std::vector<Pending> batch_arena_;
};

}  // namespace lumos::serve

// Seq2Seq LSTM encoder-decoder (paper §5.2, Fig. 15; Sutskever et al.
// 2014). The encoder consumes a window of per-second feature vectors; the
// decoder, initialized with the encoder's final state, emits the predicted
// throughput for the next k time slots. Trained with teacher forcing and
// MSE loss; inference feeds predictions back autoregressively.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/dense.h"
#include "nn/lstm.h"

namespace lumos::nn {

/// One training/inference sample: an input window and the future targets.
struct SeqSample {
  std::vector<double> x;  ///< row-major (seq_len x input_dim) feature window
  std::vector<double> y;  ///< `out_len` future target values
};

struct Seq2SeqConfig {
  std::size_t input_dim = 1;
  std::size_t hidden = 64;    ///< paper uses 128
  std::size_t layers = 2;     ///< paper uses a two-layer encoder-decoder
  std::size_t seq_len = 20;   ///< encoder window (paper: 20)
  std::size_t out_len = 1;    ///< decoder horizon (paper: up to 20)
  std::size_t epochs = 30;    ///< paper: 2000 (GPU rig); scaled down
  std::size_t batch_size = 64;
  double lr = 1e-3;
  double clip_norm = 5.0;
  std::uint64_t seed = 42;
  bool verbose = false;
};

class Seq2Seq {
 public:
  explicit Seq2Seq(const Seq2SeqConfig& cfg);

  /// Trains on `samples` with teacher forcing; returns per-epoch mean loss.
  std::vector<double> fit(const std::vector<SeqSample>& samples);

  /// Autoregressive prediction of `out_len` future values for one window.
  std::vector<double> predict(const std::vector<double>& x_window) const;

  const Seq2SeqConfig& config() const noexcept { return cfg_; }

  // --- fitted-state access for serialization (serve/model_io) ---
  /// Every trainable weight matrix in a stable order: encoder layers then
  /// decoder layers (wx, wh, b each), then the output head (weight, bias).
  /// predict() depends only on these, so overwriting them on a
  /// freshly-constructed net of the same config reproduces a fitted model
  /// bit for bit. The mutable overload exists for deserialization; it does
  /// not touch optimizer state (a restored net serves, it does not resume
  /// training mid-run).
  std::vector<const Matrix*> parameter_matrices() const;
  std::vector<Matrix*> parameter_matrices();

 private:
  struct StepCaches {
    // caches[layer][t]
    std::vector<std::vector<LSTMCache>> enc;
    std::vector<std::vector<LSTMCache>> dec;
    std::vector<Matrix> dec_in;    ///< decoder inputs per step (B x 1)
    std::vector<Matrix> preds;     ///< head outputs per step (B x 1)
  };

  /// Forward over a batch; fills caches; returns summed MSE numerator info
  /// via preds.
  void forward_batch(const std::vector<const SeqSample*>& batch,
                     StepCaches& caches, bool teacher_force);

  double backward_batch(const std::vector<const SeqSample*>& batch,
                        StepCaches& caches);

  std::vector<Param*> all_params();

  Seq2SeqConfig cfg_;
  Rng rng_;
  std::vector<LSTMCell> enc_layers_;
  std::vector<LSTMCell> dec_layers_;
  Dense head_;
  Adam opt_;
};

}  // namespace lumos::nn

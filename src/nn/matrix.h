// Minimal dense row-major matrix used by the neural-network stack
// (lumos::nn). Sized for the paper's Seq2Seq models: hundreds of rows,
// hundreds of columns — a hand-rolled kernel is plenty.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/contracts.h"

namespace lumos::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    LUMOS_EXPECTS(r < rows_ && c < cols_, "Matrix element index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    LUMOS_EXPECTS(r < rows_ && c < cols_, "Matrix element index out of range");
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) noexcept {
    LUMOS_EXPECTS(r < rows_, "Matrix row index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    LUMOS_EXPECTS(r < rows_, "Matrix row index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  void fill(double v) noexcept {
    for (auto& x : data_) x = v;
  }
  void zero() noexcept { fill(0.0); }

  /// Resizes and zeroes.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// out = a * b. Shapes must agree; `out` is resized.
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b^T.
void matmul_bt(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a^T * b.
void matmul_at(const Matrix& a, const Matrix& b, Matrix& out);

/// out += a (same shape).
void add_inplace(Matrix& out, const Matrix& a);

/// Adds row vector `bias` (1 x C) to every row of `m` (R x C).
void add_row_broadcast(Matrix& m, const Matrix& bias);

/// Per-element: out = a ⊙ b.
void hadamard(const Matrix& a, const Matrix& b, Matrix& out);

}  // namespace lumos::nn

#include "nn/adam.h"

#include <cmath>

namespace lumos::nn {

void Adam::step(const std::vector<Param*>& params) {
  ++t_;

  if (cfg_.clip_norm > 0.0) {
    double sq = 0.0;
    for (const Param* p : params) {
      for (std::size_t i = 0; i < p->g.size(); ++i) {
        sq += p->g.data()[i] * p->g.data()[i];
      }
    }
    const double norm = std::sqrt(sq);
    if (norm > cfg_.clip_norm) {
      const double scale = cfg_.clip_norm / norm;
      for (Param* p : params) {
        for (std::size_t i = 0; i < p->g.size(); ++i) {
          p->g.data()[i] *= scale;
        }
      }
    }
  }

  const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));
  for (Param* p : params) {
    for (std::size_t i = 0; i < p->w.size(); ++i) {
      const double g = p->g.data()[i];
      double& m = p->m.data()[i];
      double& v = p->v.data()[i];
      m = cfg_.beta1 * m + (1.0 - cfg_.beta1) * g;
      v = cfg_.beta2 * v + (1.0 - cfg_.beta2) * g * g;
      const double mhat = m / bc1;
      const double vhat = v / bc2;
      p->w.data()[i] -= cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.eps);
    }
    p->zero_grad();
  }
}

void Adam::reset(const std::vector<Param*>& params) {
  t_ = 0;
  for (Param* p : params) {
    p->m.zero();
    p->v.zero();
    p->zero_grad();
  }
}

}  // namespace lumos::nn

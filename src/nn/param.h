// A trainable parameter: weight matrix plus its gradient accumulator and
// Adam moment buffers.
#pragma once

#include <cmath>

#include "common/rng.h"
#include "nn/matrix.h"

namespace lumos::nn {

struct Param {
  Matrix w;  ///< value
  Matrix g;  ///< gradient (accumulated over a batch, zeroed by the optimizer)
  Matrix m;  ///< Adam first moment
  Matrix v;  ///< Adam second moment

  Param() = default;
  Param(std::size_t rows, std::size_t cols)
      : w(rows, cols), g(rows, cols), m(rows, cols), v(rows, cols) {}

  /// Xavier/Glorot-uniform initialization.
  void init_xavier(Rng& rng) {
    const double limit =
        std::sqrt(6.0 / static_cast<double>(w.rows() + w.cols()));
    for (std::size_t i = 0; i < w.size(); ++i) {
      w.data()[i] = rng.uniform(-limit, limit);
    }
  }

  void zero_grad() noexcept { g.zero(); }
};

}  // namespace lumos::nn

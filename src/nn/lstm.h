// LSTM cell (Hochreiter & Schmidhuber 1997) with full backpropagation
// through time. Gate layout within the fused pre-activation matrix is
// [input | forget | candidate | output], i.e. 4*H columns.
#pragma once

#include <vector>

#include "nn/param.h"

namespace lumos::nn {

/// Hidden/cell state for a batch: both (B x H).
struct LSTMState {
  Matrix h;
  Matrix c;

  LSTMState() = default;
  LSTMState(std::size_t batch, std::size_t hidden)
      : h(batch, hidden), c(batch, hidden) {}
};

/// Per-timestep activations cached for the backward pass.
struct LSTMCache {
  Matrix x;       ///< input (B x D)
  Matrix h_prev;  ///< previous hidden (B x H)
  Matrix c_prev;  ///< previous cell (B x H)
  Matrix i, f, g, o;  ///< post-activation gates (B x H)
  Matrix c;       ///< new cell state (B x H)
  Matrix tanh_c;  ///< tanh(c) (B x H)
};

class LSTMCell {
 public:
  LSTMCell() = default;
  LSTMCell(std::size_t input_dim, std::size_t hidden_dim, Rng& rng);

  /// One step: consumes `x` (B x D) and `in` state, produces `out` state and
  /// fills `cache` for the backward pass.
  void forward(const Matrix& x, const LSTMState& in, LSTMState& out,
               LSTMCache& cache) const;

  /// Inference-only step; no cache is recorded.
  void forward_nocache(const Matrix& x, const LSTMState& in,
                       LSTMState& out) const;

  /// One BPTT step. `dh`/`dc` are dL/dh_t and dL/dc_t (already summed over
  /// output-head and next-step contributions). Accumulates parameter grads
  /// and emits gradients w.r.t. x, h_{t-1}, c_{t-1}.
  void backward(const LSTMCache& cache, const Matrix& dh, const Matrix& dc,
                Matrix& dx, Matrix& dh_prev, Matrix& dc_prev);

  std::vector<Param*> params();
  /// Same parameters, read-only (serialization walks a const model).
  std::vector<const Param*> params() const { return {&wx_, &wh_, &b_}; }

  std::size_t input_dim() const noexcept { return wx_.w.cols(); }
  std::size_t hidden_dim() const noexcept { return hidden_; }

 private:
  void gates(const Matrix& x, const Matrix& h_prev, Matrix& z) const;

  std::size_t hidden_ = 0;
  Param wx_;  ///< (4H x D)
  Param wh_;  ///< (4H x H)
  Param b_;   ///< (1 x 4H)
};

}  // namespace lumos::nn

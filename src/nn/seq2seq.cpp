#include "nn/seq2seq.h"

#include "common/contracts.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace lumos::nn {

Seq2Seq::Seq2Seq(const Seq2SeqConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), opt_(AdamConfig{
                                      .lr = cfg.lr,
                                      .beta1 = 0.9,
                                      .beta2 = 0.999,
                                      .eps = 1e-8,
                                      .clip_norm = cfg.clip_norm,
                                  }) {
  if (cfg_.layers == 0 || cfg_.hidden == 0 || cfg_.input_dim == 0 ||
      cfg_.seq_len == 0 || cfg_.out_len == 0) {
    throw std::invalid_argument("Seq2Seq: all dimensions must be nonzero");
  }
  enc_layers_.reserve(cfg_.layers);
  dec_layers_.reserve(cfg_.layers);
  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    const std::size_t enc_in = l == 0 ? cfg_.input_dim : cfg_.hidden;
    const std::size_t dec_in = l == 0 ? 1 : cfg_.hidden;
    enc_layers_.emplace_back(enc_in, cfg_.hidden, rng_);
    dec_layers_.emplace_back(dec_in, cfg_.hidden, rng_);
  }
  head_ = Dense(cfg_.hidden, 1, rng_);
}

std::vector<const Matrix*> Seq2Seq::parameter_matrices() const {
  std::vector<const Matrix*> ms;
  for (const auto& l : enc_layers_) {
    for (const Param* p : l.params()) ms.push_back(&p->w);
  }
  for (const auto& l : dec_layers_) {
    for (const Param* p : l.params()) ms.push_back(&p->w);
  }
  for (const Param* p : static_cast<const Dense&>(head_).params()) {
    ms.push_back(&p->w);
  }
  return ms;
}

std::vector<Matrix*> Seq2Seq::parameter_matrices() {
  std::vector<Matrix*> ms;
  for (Param* p : all_params()) ms.push_back(&p->w);
  return ms;
}

std::vector<Param*> Seq2Seq::all_params() {
  std::vector<Param*> ps;
  for (auto& l : enc_layers_) {
    for (Param* p : l.params()) ps.push_back(p);
  }
  for (auto& l : dec_layers_) {
    for (Param* p : l.params()) ps.push_back(p);
  }
  for (Param* p : head_.params()) ps.push_back(p);
  return ps;
}

void Seq2Seq::forward_batch(const std::vector<const SeqSample*>& batch,
                            StepCaches& caches, bool teacher_force) {
  const std::size_t B = batch.size();
  const std::size_t T = cfg_.seq_len;
  const std::size_t D = cfg_.input_dim;
  const std::size_t K = cfg_.out_len;
  const std::size_t L = cfg_.layers;

  caches.enc.assign(L, std::vector<LSTMCache>(T));
  caches.dec.assign(L, std::vector<LSTMCache>(K));
  caches.dec_in.assign(K, Matrix{});
  caches.preds.assign(K, Matrix{});

  // --- Encoder ---
  std::vector<LSTMState> state(L, LSTMState(B, cfg_.hidden));
  Matrix xt(B, D);
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t b = 0; b < B; ++b) {
      const auto& x = batch[b]->x;
      LUMOS_ASSERT(x.size() == T * D,
                   "Seq2Seq: cached sample length disagrees with (T, D)");
      for (std::size_t d = 0; d < D; ++d) xt(b, d) = x[t * D + d];
    }
    const Matrix* input = &xt;
    for (std::size_t l = 0; l < L; ++l) {
      LSTMState out;
      enc_layers_[l].forward(*input, state[l], out, caches.enc[l][t]);
      state[l] = std::move(out);
      input = &state[l].h;
    }
  }

  // --- Decoder (state initialized from encoder's final state) ---
  for (std::size_t t = 0; t < K; ++t) {
    Matrix& yin = caches.dec_in[t];
    yin.resize(B, 1);
    if (t == 0) {
      // Start token: zero (targets are standardized by the caller).
      yin.zero();
    } else if (teacher_force) {
      for (std::size_t b = 0; b < B; ++b) yin(b, 0) = batch[b]->y[t - 1];
    } else {
      for (std::size_t b = 0; b < B; ++b) yin(b, 0) = caches.preds[t - 1](b, 0);
    }
    const Matrix* input = &yin;
    for (std::size_t l = 0; l < L; ++l) {
      LSTMState out;
      dec_layers_[l].forward(*input, state[l], out, caches.dec[l][t]);
      state[l] = std::move(out);
      input = &state[l].h;
    }
    head_.forward_infer(state[L - 1].h, caches.preds[t]);
  }
}

double Seq2Seq::backward_batch(const std::vector<const SeqSample*>& batch,
                               StepCaches& caches) {
  const std::size_t B = batch.size();
  const std::size_t T = cfg_.seq_len;
  const std::size_t K = cfg_.out_len;
  const std::size_t L = cfg_.layers;
  const double inv_n = 1.0 / static_cast<double>(B * K);

  double loss = 0.0;

  // Per-layer gradients flowing backward in time through the decoder.
  std::vector<Matrix> dh_next(L, Matrix(B, cfg_.hidden));
  std::vector<Matrix> dc_next(L, Matrix(B, cfg_.hidden));

  for (std::size_t t = K; t-- > 0;) {
    // Loss gradient for this step's prediction.
    Matrix dpred(B, 1);
    for (std::size_t b = 0; b < B; ++b) {
      const double d = caches.preds[t](b, 0) - batch[b]->y[t];
      loss += d * d;
      dpred(b, 0) = 2.0 * d * inv_n;
    }

    // Head backward: input was the top decoder layer's h at step t.
    const LSTMCache& top = caches.dec[L - 1][t];
    Matrix top_h;
    hadamard(top.o, top.tanh_c, top_h);  // h = o .* tanh(c)
    Matrix dh_top;
    head_.backward_with_input(dpred, top_h, dh_top);

    // Propagate down the decoder stack at this timestep. `from_above` is
    // the gradient arriving at layer l's output h from the layer above
    // (or from the head at the top layer).
    Matrix from_above = std::move(dh_top);
    for (std::size_t l = L; l-- > 0;) {
      Matrix dh = dh_next[l];
      add_inplace(dh, from_above);
      Matrix dx, dh_prev, dc_prev;
      dec_layers_[l].backward(caches.dec[l][t], dh, dc_next[l], dx, dh_prev,
                              dc_prev);
      dh_next[l] = std::move(dh_prev);
      dc_next[l] = std::move(dc_prev);
      // The input to layer l was layer (l-1)'s h; at l == 0 it is the
      // teacher-forced token, whose gradient is dropped.
      from_above = std::move(dx);
    }
  }

  // The decoder's t==0 dh_prev/dc_prev are the gradients w.r.t. the
  // encoder's final state; continue BPTT through the encoder.
  for (std::size_t t = T; t-- > 0;) {
    Matrix dx_from_above;  // dL/d(input) emitted by the layer above at t
    for (std::size_t l = L; l-- > 0;) {
      Matrix dh = dh_next[l];
      if (l < L - 1) add_inplace(dh, dx_from_above);
      Matrix dx, dh_prev, dc_prev;
      enc_layers_[l].backward(caches.enc[l][t], dh, dc_next[l], dx, dh_prev,
                              dc_prev);
      dh_next[l] = std::move(dh_prev);
      dc_next[l] = std::move(dc_prev);
      dx_from_above = std::move(dx);
      // dx at l == 0 is the gradient w.r.t. raw features: unused.
    }
  }

  return loss * inv_n;
}

std::vector<double> Seq2Seq::fit(const std::vector<SeqSample>& samples) {
  if (samples.empty()) throw std::invalid_argument("Seq2Seq::fit: no samples");
  for (const auto& s : samples) {
    if (s.x.size() != cfg_.seq_len * cfg_.input_dim ||
        s.y.size() != cfg_.out_len) {
      throw std::invalid_argument("Seq2Seq::fit: sample shape mismatch");
    }
  }
  const auto params = all_params();
  opt_.reset(params);

  std::vector<double> epoch_losses;
  epoch_losses.reserve(cfg_.epochs);
  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng_.shuffle(order);
    double total = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += cfg_.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + cfg_.batch_size);
      std::vector<const SeqSample*> batch;
      batch.reserve(end - start);
      for (std::size_t i = start; i < end; ++i) {
        batch.push_back(&samples[order[i]]);
      }
      StepCaches caches;
      forward_batch(batch, caches, /*teacher_force=*/true);
      total += backward_batch(batch, caches);
      opt_.step(params);
      ++batches;
    }
    const double avg = batches > 0 ? total / static_cast<double>(batches) : 0.0;
    epoch_losses.push_back(avg);
    if (cfg_.verbose) {
      std::printf("epoch %3zu  loss %.6f\n", epoch + 1, avg);
    }
  }
  return epoch_losses;
}

std::vector<double> Seq2Seq::predict(const std::vector<double>& x_window) const {
  if (x_window.size() != cfg_.seq_len * cfg_.input_dim) {
    throw std::invalid_argument("Seq2Seq::predict: window shape mismatch");
  }
  const std::size_t L = cfg_.layers;
  std::vector<LSTMState> state(L, LSTMState(1, cfg_.hidden));
  Matrix xt(1, cfg_.input_dim);
  for (std::size_t t = 0; t < cfg_.seq_len; ++t) {
    for (std::size_t d = 0; d < cfg_.input_dim; ++d) {
      xt(0, d) = x_window[t * cfg_.input_dim + d];
    }
    const Matrix* input = &xt;
    for (std::size_t l = 0; l < L; ++l) {
      LSTMState out;
      enc_layers_[l].forward_nocache(*input, state[l], out);
      state[l] = std::move(out);
      input = &state[l].h;
    }
  }
  std::vector<double> preds;
  preds.reserve(cfg_.out_len);
  Matrix yin(1, 1);
  yin(0, 0) = 0.0;
  Matrix out_val;
  for (std::size_t t = 0; t < cfg_.out_len; ++t) {
    const Matrix* input = &yin;
    for (std::size_t l = 0; l < L; ++l) {
      LSTMState out;
      dec_layers_[l].forward_nocache(*input, state[l], out);
      state[l] = std::move(out);
      input = &state[l].h;
    }
    head_.forward_infer(state[L - 1].h, out_val);
    preds.push_back(out_val(0, 0));
    yin(0, 0) = out_val(0, 0);
  }
  return preds;
}

}  // namespace lumos::nn

#include "nn/lstm.h"

#include <cmath>

namespace lumos::nn {
namespace {

double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

LSTMCell::LSTMCell(std::size_t input_dim, std::size_t hidden_dim, Rng& rng)
    : hidden_(hidden_dim),
      wx_(4 * hidden_dim, input_dim),
      wh_(4 * hidden_dim, hidden_dim),
      b_(1, 4 * hidden_dim) {
  wx_.init_xavier(rng);
  wh_.init_xavier(rng);
  // Forget-gate bias starts at 1.0: the standard trick to preserve long-range
  // memory early in training.
  for (std::size_t j = 0; j < hidden_; ++j) b_.w(0, hidden_ + j) = 1.0;
}

void LSTMCell::gates(const Matrix& x, const Matrix& h_prev, Matrix& z) const {
  matmul_bt(x, wx_.w, z);
  Matrix zh;
  matmul_bt(h_prev, wh_.w, zh);
  add_inplace(z, zh);
  add_row_broadcast(z, b_.w);
}

void LSTMCell::forward(const Matrix& x, const LSTMState& in, LSTMState& out,
                       LSTMCache& cache) const {
  const std::size_t batch = x.rows();
  Matrix z;
  gates(x, in.h, z);

  cache.x = x;
  cache.h_prev = in.h;
  cache.c_prev = in.c;
  cache.i.resize(batch, hidden_);
  cache.f.resize(batch, hidden_);
  cache.g.resize(batch, hidden_);
  cache.o.resize(batch, hidden_);
  cache.c.resize(batch, hidden_);
  cache.tanh_c.resize(batch, hidden_);
  out.h.resize(batch, hidden_);
  out.c.resize(batch, hidden_);

  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t j = 0; j < hidden_; ++j) {
      const double zi = z(r, j);
      const double zf = z(r, hidden_ + j);
      const double zg = z(r, 2 * hidden_ + j);
      const double zo = z(r, 3 * hidden_ + j);
      const double i = sigmoid(zi);
      const double f = sigmoid(zf);
      const double g = std::tanh(zg);
      const double o = sigmoid(zo);
      const double c = f * in.c(r, j) + i * g;
      const double tc = std::tanh(c);
      cache.i(r, j) = i;
      cache.f(r, j) = f;
      cache.g(r, j) = g;
      cache.o(r, j) = o;
      cache.c(r, j) = c;
      cache.tanh_c(r, j) = tc;
      out.c(r, j) = c;
      out.h(r, j) = o * tc;
    }
  }
}

void LSTMCell::forward_nocache(const Matrix& x, const LSTMState& in,
                               LSTMState& out) const {
  const std::size_t batch = x.rows();
  Matrix z;
  gates(x, in.h, z);
  out.h.resize(batch, hidden_);
  out.c.resize(batch, hidden_);
  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t j = 0; j < hidden_; ++j) {
      const double i = sigmoid(z(r, j));
      const double f = sigmoid(z(r, hidden_ + j));
      const double g = std::tanh(z(r, 2 * hidden_ + j));
      const double o = sigmoid(z(r, 3 * hidden_ + j));
      const double c = f * in.c(r, j) + i * g;
      out.c(r, j) = c;
      out.h(r, j) = o * std::tanh(c);
    }
  }
}

void LSTMCell::backward(const LSTMCache& cache, const Matrix& dh,
                        const Matrix& dc, Matrix& dx, Matrix& dh_prev,
                        Matrix& dc_prev) {
  const std::size_t batch = dh.rows();
  Matrix dz(batch, 4 * hidden_);
  dc_prev.resize(batch, hidden_);

  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t j = 0; j < hidden_; ++j) {
      const double i = cache.i(r, j);
      const double f = cache.f(r, j);
      const double g = cache.g(r, j);
      const double o = cache.o(r, j);
      const double tc = cache.tanh_c(r, j);

      const double dht = dh(r, j);
      // dL/dc flows in both from the next timestep (dc) and through h_t.
      const double dct = dc(r, j) + dht * o * (1.0 - tc * tc);

      const double d_o = dht * tc;
      const double d_i = dct * g;
      const double d_g = dct * i;
      const double d_f = dct * cache.c_prev(r, j);
      dc_prev(r, j) = dct * f;

      dz(r, j) = d_i * i * (1.0 - i);
      dz(r, hidden_ + j) = d_f * f * (1.0 - f);
      dz(r, 2 * hidden_ + j) = d_g * (1.0 - g * g);
      dz(r, 3 * hidden_ + j) = d_o * o * (1.0 - o);
    }
  }

  Matrix dwx, dwh;
  matmul_at(dz, cache.x, dwx);
  matmul_at(dz, cache.h_prev, dwh);
  add_inplace(wx_.g, dwx);
  add_inplace(wh_.g, dwh);
  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t c = 0; c < 4 * hidden_; ++c) b_.g(0, c) += dz(r, c);
  }
  matmul(dz, wx_.w, dx);
  matmul(dz, wh_.w, dh_prev);
}

std::vector<Param*> LSTMCell::params() { return {&wx_, &wh_, &b_}; }

}  // namespace lumos::nn

// Adam optimizer (Kingma & Ba 2015) with optional global-norm gradient
// clipping.
#pragma once

#include <vector>

#include "nn/param.h"

namespace lumos::nn {

struct AdamConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double clip_norm = 5.0;  ///< <=0 disables clipping
};

class Adam {
 public:
  explicit Adam(AdamConfig cfg = {}) noexcept : cfg_(cfg) {}

  /// Applies one update to every parameter and zeroes its gradient.
  void step(const std::vector<Param*>& params);

  /// Resets moment estimates and the step counter.
  void reset(const std::vector<Param*>& params);

  const AdamConfig& config() const noexcept { return cfg_; }
  void set_lr(double lr) noexcept { cfg_.lr = lr; }

 private:
  AdamConfig cfg_;
  long t_ = 0;
};

}  // namespace lumos::nn

#include "nn/matrix.h"

namespace lumos::nn {

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  LUMOS_EXPECTS(a.cols() == b.rows(), "matmul: inner dimensions differ");
  out.resize(a.rows(), b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  // ikj loop order: streams through b and out rows contiguously.
  for (std::size_t i = 0; i < m; ++i) {
    double* orow = out.data() + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const double av = a(i, p);
      if (av == 0.0) continue;
      const double* brow = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void matmul_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  LUMOS_EXPECTS(a.cols() == b.cols(), "matmul_bt: inner dimensions differ");
  out.resize(a.rows(), b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a.data() + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = b.data() + j * k;
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      out(i, j) = acc;
    }
  }
}

void matmul_at(const Matrix& a, const Matrix& b, Matrix& out) {
  LUMOS_EXPECTS(a.rows() == b.rows(), "matmul_at: inner dimensions differ");
  out.resize(a.cols(), b.cols());
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a.data() + p * m;
    const double* brow = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void add_inplace(Matrix& out, const Matrix& a) {
  LUMOS_EXPECTS(out.rows() == a.rows() && out.cols() == a.cols(),
                "add_inplace: shape mismatch");
  double* o = out.data();
  const double* x = a.data();
  for (std::size_t i = 0; i < out.size(); ++i) o[i] += x[i];
}

void add_row_broadcast(Matrix& m, const Matrix& bias) {
  LUMOS_EXPECTS(bias.rows() == 1 && bias.cols() == m.cols(),
                "add_row_broadcast: bias must be 1 x cols(m)");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double* row = m.data() + r * m.cols();
    const double* b = bias.data();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += b[c];
  }
}

void hadamard(const Matrix& a, const Matrix& b, Matrix& out) {
  LUMOS_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols(),
                "hadamard: shape mismatch");
  out.resize(a.rows(), a.cols());
  const double* x = a.data();
  const double* y = b.data();
  double* o = out.data();
  for (std::size_t i = 0; i < a.size(); ++i) o[i] = x[i] * y[i];
}

}  // namespace lumos::nn

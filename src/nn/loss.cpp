#include "nn/loss.h"

#include "common/contracts.h"

namespace lumos::nn {

double mse_loss(const Matrix& pred, const Matrix& target, Matrix& grad) {
  LUMOS_EXPECTS(pred.rows() == target.rows() && pred.cols() == target.cols(),
                "mse_loss: pred/target shape mismatch");
  grad.resize(pred.rows(), pred.cols());
  const auto n = static_cast<double>(pred.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.data()[i] - target.data()[i];
    loss += d * d;
    grad.data()[i] = 2.0 * d / n;
  }
  return loss / n;
}

double mse(const Matrix& pred, const Matrix& target) noexcept {
  LUMOS_EXPECTS(pred.rows() == target.rows() && pred.cols() == target.cols(),
                "mse: pred/target shape mismatch");
  const auto n = static_cast<double>(pred.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.data()[i] - target.data()[i];
    loss += d * d;
  }
  return loss / n;
}

}  // namespace lumos::nn

// Fully-connected layer y = x W^T + b with optional activation, used as
// the Seq2Seq output head.
#pragma once

#include <vector>

#include "nn/param.h"

namespace lumos::nn {

class Dense {
 public:
  Dense() = default;
  Dense(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  /// Forward pass: x is (B x in), result (B x out). Caches x for backward.
  void forward(const Matrix& x, Matrix& y);

  /// Inference-only forward; does not record the backward cache.
  void forward_infer(const Matrix& x, Matrix& y) const;

  /// Backward: `dy` is dL/dy (B x out); accumulates weight grads, writes
  /// dL/dx to `dx`.
  void backward(const Matrix& dy, Matrix& dx);

  /// Backward against an explicitly supplied input (for layers applied
  /// several times per step, e.g. a decoder head unrolled over time).
  void backward_with_input(const Matrix& dy, const Matrix& x, Matrix& dx);

  std::vector<Param*> params();
  /// Same parameters, read-only (serialization walks a const model).
  std::vector<const Param*> params() const { return {&weight_, &bias_}; }

  std::size_t in_dim() const noexcept { return weight_.w.cols(); }
  std::size_t out_dim() const noexcept { return weight_.w.rows(); }

 private:
  Param weight_;  ///< (out x in)
  Param bias_;    ///< (1 x out)
  Matrix x_cache_;
};

}  // namespace lumos::nn

#include "nn/dense.h"

namespace lumos::nn {

Dense::Dense(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : weight_(out_dim, in_dim), bias_(1, out_dim) {
  weight_.init_xavier(rng);
}

void Dense::forward(const Matrix& x, Matrix& y) {
  x_cache_ = x;
  matmul_bt(x, weight_.w, y);
  add_row_broadcast(y, bias_.w);
}

void Dense::forward_infer(const Matrix& x, Matrix& y) const {
  matmul_bt(x, weight_.w, y);
  add_row_broadcast(y, bias_.w);
}

void Dense::backward(const Matrix& dy, Matrix& dx) {
  backward_with_input(dy, x_cache_, dx);
}

void Dense::backward_with_input(const Matrix& dy, const Matrix& x, Matrix& dx) {
  // dW += dy^T x ; db += sum_rows(dy) ; dx = dy W
  Matrix dw;
  matmul_at(dy, x, dw);
  add_inplace(weight_.g, dw);
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    for (std::size_t c = 0; c < dy.cols(); ++c) {
      bias_.g(0, c) += dy(r, c);
    }
  }
  matmul(dy, weight_.w, dx);
}

std::vector<Param*> Dense::params() { return {&weight_, &bias_}; }

}  // namespace lumos::nn

// Losses for Seq2Seq training. The paper trains with mean-squared error
// (§6.1).
#pragma once

#include "nn/matrix.h"

namespace lumos::nn {

/// MSE over all elements; also writes dL/dpred into `grad` (same shape as
/// pred), with the 1/N factor folded in.
double mse_loss(const Matrix& pred, const Matrix& target, Matrix& grad);

/// Plain MSE without gradient.
double mse(const Matrix& pred, const Matrix& target) noexcept;

}  // namespace lumos::nn

// Per-UE connection state machine: serving-panel selection with hysteresis,
// horizontal (panel-to-panel) handoffs with momentary outage, and vertical
// handoffs to/from the LTE fallback layer — the mechanisms behind the
// handoff patches visible in the paper's throughput maps (Figs. 1, 2, 9).
#pragma once

#include <vector>

#include "common/rng.h"
#include "data/sample.h"
#include "sim/environment.h"

namespace lumos::sim {

struct ConnectionConfig {
  /// Candidate must beat the serving panel's capacity by this factor, for
  /// `handoff_eval_s` consecutive seconds, before a horizontal handoff.
  double handoff_hysteresis = 1.35;
  int handoff_eval_s = 2;
  /// Throughput factor retained during a handoff second.
  double handoff_outage_factor = 0.06;
  /// Below this 5G capacity the UE falls back to LTE.
  double lte_fallback_mbps = 25.0;
  /// Best 5G capacity must exceed this, for `nr_reentry_delay_s` seconds,
  /// to return from LTE to 5G.
  double nr_reentry_mbps = 70.0;
  int nr_reentry_delay_s = 3;
  /// UE modem ceiling: commercial mmWave UEs top out near 2 Gbps
  /// (paper §1: "up to 2 Gbps").
  double ue_max_mbps = 2000.0;
  /// Beam-tracking inertia: the realized rate follows the instantaneous
  /// link capacity through an exponential moving average (beam adaptation
  /// takes a few seconds after geometry changes). This gives throughput a
  /// short predictable memory — the temporal structure Seq2Seq and the
  /// C-group's past-throughput features exploit (paper §6.2).
  double beam_ema_alpha = 0.45;
};

/// The per-second outcome of the connection state machine.
struct TickResult {
  data::RadioType radio = data::RadioType::kNrMmWave;
  int cell_id = -1;           ///< serving panel id (5G) or -1000 (LTE cell)
  int serving_index = -1;     ///< index into env.panels() when on 5G
  double throughput_mbps = 0.0;
  double serving_capacity_mbps = 0.0;  ///< pre-outage shared capacity
  bool horizontal_handoff = false;
  bool vertical_handoff = false;
};

class ConnectionManager {
 public:
  ConnectionManager(const Environment& env, Rng& rng,
                    ConnectionConfig cfg = {});

  /// Advances one second. `n_sharing_ues` is the number of UEs actively
  /// saturating the same serving panel (>=1), modelling the airtime split
  /// measured in paper A.1.4.
  TickResult tick(const UEContext& ue, Rng& rng, int n_sharing_ues = 1);

  const ConnectionConfig& config() const noexcept { return cfg_; }

 private:
  const Environment& env_;
  ConnectionConfig cfg_;
  std::vector<ShadowingProcess> shadowing_;  ///< one per panel
  int serving_ = -1;           ///< panel index; -1 = LTE / unattached
  bool ever_attached_ = false;
  int switch_candidate_ = -1;
  int switch_streak_ = 0;
  int reentry_streak_ = 0;
  double smoothed_cap_ = -1.0;  ///< beam-tracking EMA; <0 = uninitialized
};

}  // namespace lumos::sim

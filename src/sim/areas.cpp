#include "sim/areas.h"

namespace lumos::sim {
namespace {

/// Adds the four walls of an axis-aligned box [x0,x1] x [y0,y1].
void add_box(Environment& env, double x0, double y0, double x1, double y1,
             double penetration, const std::string& label) {
  env.add_wall({{x0, y0}, {x1, y0}, penetration, label + "-s"});
  env.add_wall({{x1, y0}, {x1, y1}, penetration, label + "-e"});
  env.add_wall({{x1, y1}, {x0, y1}, penetration, label + "-n"});
  env.add_wall({{x0, y1}, {x0, y0}, penetration, label + "-w"});
}

}  // namespace

Area make_airport() {
  // Indoor mall corridor at MSP airport: axis along North-South, ~340 m of
  // walkable length, two head-on single panels ~200 m apart (paper §3.2).
  Environment env("airport", geo::LatLon{44.8800, -93.2050});

  // The two single-face panels sit on the corridor axis ~200 m apart,
  // with matching hardware (the paper's transferability experiment trains
  // on one and tests on the other, §6.2). Indoor installs run well below
  // the outdoor 1.9 Gbps peaks.
  env.add_panel({/*id=*/1, /*pos=*/{0.0, -100.0}, /*bearing=*/0.0, /*peak=*/1150.0});
  env.add_panel({/*id=*/2, /*pos=*/{-3.0, 100.0}, /*bearing=*/182.0, /*peak=*/1150.0});

  // All clutter lives on the WEST half of the corridor (x < 0), i.e. the
  // SB walkway side. The NB walkway (x > 0) keeps clean LoS to both
  // panels, which gives the north panel its monotone distance profile
  // (paper Fig. 11a).
  //
  // Booth cluster: open-space restaurants 22-52 m north of the south
  // panel. SB walking inside the band loses LoS to the south panel and
  // regains it beyond — the paper's Fig. 11b dip-and-regain.
  add_box(env, -8.0, -78.0, -1.3, -48.0, 0.35, "booths");
  // Kiosk row at mid-corridor: shadows the south panel for the whole SB
  // north half, so SB service there depends on the (body-blocked) north
  // panel. This flattens SB's profile and makes NB/SB heatmaps differ
  // (paper §4.2, Fig. 9).
  env.add_wall({{-12.0, -10.0}, {-1.4, -10.0}, 0.25, "kiosk-row"});

  // Concrete side structures of the mall (outside the walkable strip).
  env.add_wall({{-18.0, -170.0}, {-18.0, 170.0}, 0.02, "west-facade"});
  env.add_wall({{18.0, -170.0}, {18.0, 170.0}, 0.02, "east-facade"});

  // Reflective interior (glass storefronts, metal panels) around the booth
  // band: salvages some NLoS paths (the theta_m outlier of §4.4).
  env.add_reflective_zone({{-4.0, -60.0}, 35.0});

  Area area{std::move(env), {}, {}, {}};

  // Both walks include short cross-corridor detours (to seating on the
  // east, kiosks on the west): the near-perpendicular segments populate
  // the intermediate mobility-angle bins of paper Figs. 8/18.
  Trajectory nb;
  nb.id = 1;
  nb.name = "NB";
  nb.waypoints = {{1.5, -95.0}, {1.5, -45.0}, {7.0, -44.0}, {7.0, -15.0},
                  {1.5, -13.0}, {1.5, 95.0}};
  // SB continues ~65 m past the south panel into its back lobe; the two
  // walks overlap only partially (paper §4.2: "partial overlap in their
  // coverage footprints").
  Trajectory sb;
  sb.id = 2;
  sb.name = "SB";
  sb.waypoints = {{-1.6, 95.0}, {-1.6, 75.0}, {-6.0, 74.0}, {-6.0, 55.0},
                  {-1.6, 53.0}, {-1.6, -165.0}};
  area.walking.push_back(std::move(nb));
  area.walking.push_back(std::move(sb));
  return area;
}

Area make_intersection() {
  // Outdoor 4-way downtown intersection with 3 dual-panel towers
  // (paper §3.2). Roads run N-S and E-W; high-rises occupy the corners.
  Environment env("intersection", geo::LatLon{44.9770, -93.2650});

  // Street poles on the curb corners (outside the buildings), each with
  // two panels covering the street canyons.
  // Tower A, NE curb: north + east arms.
  env.add_panel({10, {12.0, 12.0}, 0.0});
  env.add_panel({11, {12.0, 12.0}, 90.0});
  // Tower B, NW curb: west + south arms.
  env.add_panel({12, {-12.0, 12.0}, 270.0});
  env.add_panel({13, {-12.0, 12.0}, 180.0});
  // Tower C, SE curb: south + east arms (east arm double-covered, so
  // horizontal handoffs concentrate there).
  env.add_panel({14, {12.0, -12.0}, 180.0});
  env.add_panel({15, {12.0, -12.0}, 90.0});

  // Corner buildings (concrete, effectively opaque at 28 GHz).
  add_box(env, 15.0, 15.0, 110.0, 110.0, 0.03, "bldg-ne");
  add_box(env, -110.0, 15.0, -15.0, 110.0, 0.03, "bldg-nw");
  add_box(env, 15.0, -110.0, 110.0, -15.0, 0.03, "bldg-se");
  add_box(env, -110.0, -110.0, -15.0, -15.0, 0.03, "bldg-sw");

  // Street canyon reflections near the center.
  env.add_reflective_zone({{0.0, 0.0}, 35.0});

  // Per-arm clutter that differentiates the arms' throughput profiles
  // (real downtown blocks are not interchangeable): an enclosed skyway
  // crossing the north arm and a construction fence on the west arm.
  env.add_wall({{-14.0, 70.0}, {14.0, 70.0}, 0.40, "skyway"});
  env.add_wall({{-60.0, -14.0}, {-60.0, 14.0}, 0.55, "construction"});

  Area area{std::move(env), {}, {}, {}};

  // 12 walking trajectories: every arm walked inbound and outbound (8)
  // plus four L-shaped corner-to-corner crossings (paper Table 2:
  // trajectories of 232-274 m).
  int id = 1;
  const double kArm = 130.0;  // arm length from the center
  const double kOff = 8.0;    // sidewalk offset from the road axis
  const auto add_traj = [&](const std::string& name,
                            std::vector<geo::Vec2> wps) {
    Trajectory t;
    t.id = id++;
    t.name = name;
    t.waypoints = std::move(wps);
    area.walking.push_back(std::move(t));
  };
  // North arm (walking south-bound and north-bound on the west sidewalk).
  add_traj("N-in", {{-kOff, kArm}, {-kOff, -kArm}});
  add_traj("N-out", {{kOff, -kArm}, {kOff, kArm}});
  // South arm (east sidewalk).
  add_traj("S-in", {{kOff, -kArm}, {kOff, kArm}});
  add_traj("S-out", {{-kOff, kArm}, {-kOff, -kArm}});
  // East arm.
  add_traj("E-in", {{kArm, kOff}, {-kArm, kOff}});
  add_traj("E-out", {{-kArm, -kOff}, {kArm, -kOff}});
  // West arm.
  add_traj("W-in", {{-kArm, -kOff}, {kArm, -kOff}});
  add_traj("W-out", {{kArm, kOff}, {-kArm, kOff}});
  // L-shaped crossings, one per corner.
  add_traj("X-ne", {{kOff, kArm}, {kOff, kOff}, {kArm, kOff}});
  add_traj("X-nw", {{-kArm, kOff}, {-kOff, kOff}, {-kOff, kArm}});
  add_traj("X-se", {{kArm, -kOff}, {kOff, -kOff}, {kOff, -kArm}});
  add_traj("X-sw", {{-kOff, -kArm}, {-kOff, -kOff}, {-kArm, -kOff}});
  return area;
}

Area make_loop() {
  // The 1300 m loop near U.S. Bank Stadium: roads, a rail crossing that
  // kills mmWave coverage, restaurants, a park. Panel sites exist but were
  // NOT reliably surveyed (paper §6.2: no T features for the Loop).
  Environment env("loop", geo::LatLon{44.9740, -93.2580});

  // Loop rectangle: 400 m x 250 m = 1300 m perimeter. One panel per side,
  // each aimed down its road so roughly half of the loop has 5G coverage
  // and the rest falls back to LTE (the 4G stretches of paper Figs. 1-2).
  env.add_panel({21, {60.0, -6.0}, 90.0});     // south side, facing east
  env.add_panel({22, {406.0, 10.0}, 0.0});     // east side, facing north
  env.add_panel({23, {340.0, 256.0}, 270.0});  // north side, facing west
  env.add_panel({24, {-6.0, 220.0}, 180.0});   // west side, facing south
  env.set_panels_surveyed(false);

  // Stadium-side high-rise inside the loop blocks diagonal coverage.
  add_box(env, 140.0, 60.0, 300.0, 190.0, 0.02, "stadium");
  // Rail crossing shelter + underpass near (200, 0): a 5G dead patch.
  add_box(env, 185.0, -14.0, 225.0, 14.0, 0.04, "rail");
  // Restaurant row along the north edge (lighter obstruction).
  add_box(env, 40.0, 236.0, 120.0, 252.0, 0.30, "restaurants");

  // Park greenery on the west edge reflects poorly but scatters some
  // energy back.
  env.add_reflective_zone({{0.0, 125.0}, 60.0});

  Area area{std::move(env), {}, {}, {}};

  // The loop is walked/driven in both directions (paper Table 2 lists two
  // Loop trajectories).
  Trajectory ccw;
  ccw.id = 1;
  ccw.name = "loop-ccw";
  ccw.waypoints = {{0.0, 0.0},   {400.0, 0.0}, {400.0, 250.0},
                   {0.0, 250.0}, {0.0, 0.0}};
  Trajectory cw;
  cw.id = 2;
  cw.name = "loop-cw";
  cw.waypoints = {{0.0, 0.0},   {0.0, 250.0}, {400.0, 250.0},
                  {400.0, 0.0}, {0.0, 0.0}};
  Trajectory ccw_drive = ccw;
  ccw_drive.id = 3;
  ccw_drive.name = "loop-ccw-drive";
  Trajectory cw_drive = cw;
  cw_drive.id = 4;
  cw_drive.name = "loop-cw-drive";
  area.walking.push_back(std::move(ccw));
  area.walking.push_back(std::move(cw));
  area.driving.push_back(std::move(ccw_drive));
  area.driving.push_back(std::move(cw_drive));

  // Mid-block pedestrian lights (inside panel coverage) plus the rail
  // crossing (a 5G dead zone, so stopped traffic there sits on LTE).
  area.stop_points = {{100.0, 0.0}, {400.0, 125.0}, {240.0, 250.0},
                      {0.0, 100.0}, {205.0, 0.0}};
  return area;
}

data::Dataset collect_area_dataset(const Area& area, int walk_runs,
                                   int drive_runs, std::uint64_t seed,
                                   const CollectorConfig& base) {
  data::Dataset ds;
  MeasurementCollector collector(area.env);
  Rng seeder(seed);

  CollectorConfig cfg = base;
  cfg.n_runs = walk_runs;
  MotionConfig walk;
  walk.mode = data::Activity::kWalking;
  for (const auto& traj : area.walking) {
    collector.collect(traj, walk, {}, cfg, seeder.next_u64(), ds);
  }

  cfg.n_runs = drive_runs;
  MotionConfig drive;
  drive.mode = data::Activity::kDriving;
  for (const auto& traj : area.driving) {
    collector.collect(traj, drive, area.stop_points, cfg, seeder.next_u64(),
                      ds);
  }

  ds.clean();
  return ds;
}

}  // namespace lumos::sim

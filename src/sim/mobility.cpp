#include "sim/mobility.h"

#include <algorithm>
#include <cmath>

namespace lumos::sim {

double Trajectory::length_m() const noexcept {
  double len = 0.0;
  for (std::size_t i = 1; i < waypoints.size(); ++i) {
    len += geo::distance(waypoints[i - 1], waypoints[i]);
  }
  return len;
}

MotionSimulator::MotionSimulator(const Trajectory& traj,
                                 const MotionConfig& cfg,
                                 std::vector<geo::Vec2> stop_points, Rng& rng)
    : traj_(traj), cfg_(cfg), stop_points_(std::move(stop_points)) {
  stop_armed_.assign(stop_points_.size(), true);
  // Randomly disarm "green light" stops for this pass.
  for (std::size_t i = 0; i < stop_armed_.size(); ++i) {
    if (!rng.bernoulli(cfg_.stop_probability)) stop_armed_[i] = false;
  }
  retarget_speed(rng);
  speed_mps_ = cfg_.mode == data::Activity::kDriving ? 0.0 : target_speed_mps_;
  finished_ = traj_.waypoints.size() < 2;
}

double MotionSimulator::segment_heading() const noexcept {
  const std::size_t i = std::min(seg_, traj_.waypoints.size() - 2);
  return geo::bearing_of(traj_.waypoints[i + 1] - traj_.waypoints[i]);
}

void MotionSimulator::retarget_speed(Rng& rng) {
  if (cfg_.mode == data::Activity::kDriving) {
    target_speed_mps_ =
        rng.uniform(cfg_.drive_cruise_kmph_min, cfg_.drive_cruise_kmph_max) /
        3.6;
  } else {
    target_speed_mps_ = std::clamp(
        rng.normal(cfg_.walk_speed_mps, cfg_.walk_speed_jitter), 0.5, 2.2);
  }
}

MotionSample MotionSimulator::step(Rng& rng) {
  MotionSample out;
  if (finished_) {
    out.pos = traj_.waypoints.back();
    out.heading_deg = segment_heading();
    out.finished = true;
    return out;
  }

  // Dwell at a stop (driving only).
  if (stop_wait_s_ > 0.0) {
    stop_wait_s_ -= 1.0;
    speed_mps_ = 0.0;
    const std::size_t i = std::min(seg_, traj_.waypoints.size() - 2);
    const geo::Vec2 dir = geo::unit_from_bearing(segment_heading());
    out.pos = traj_.waypoints[i] + dir * seg_offset_m_;
    out.heading_deg = segment_heading();
    out.speed_mps = 0.0;
    return out;
  }

  // Speed dynamics.
  if (cfg_.mode == data::Activity::kDriving) {
    // Occasionally re-pick the cruise speed (traffic flow).
    if (rng.bernoulli(0.03)) retarget_speed(rng);
    if (speed_mps_ < target_speed_mps_) {
      speed_mps_ = std::min(target_speed_mps_, speed_mps_ + cfg_.accel_mps2);
    } else {
      speed_mps_ = std::max(target_speed_mps_, speed_mps_ - cfg_.accel_mps2);
    }
  } else {
    if (rng.bernoulli(0.08)) retarget_speed(rng);
    speed_mps_ = std::clamp(
        speed_mps_ + rng.normal(0.0, 0.1) +
            0.3 * (target_speed_mps_ - speed_mps_),
        0.0, 2.2);
  }

  // Advance along the polyline.
  double remaining = speed_mps_;  // 1-second step
  while (remaining > 0.0 && !finished_) {
    const geo::Vec2 a = traj_.waypoints[seg_];
    const geo::Vec2 b = traj_.waypoints[seg_ + 1];
    const double seg_len = geo::distance(a, b);
    const double left = seg_len - seg_offset_m_;
    if (remaining < left) {
      seg_offset_m_ += remaining;
      remaining = 0.0;
    } else {
      remaining -= left;
      seg_offset_m_ = 0.0;
      ++seg_;
      if (seg_ + 1 >= traj_.waypoints.size()) {
        finished_ = true;
        seg_ = traj_.waypoints.size() - 2;
        seg_offset_m_ = geo::distance(traj_.waypoints[seg_],
                                      traj_.waypoints[seg_ + 1]);
      }
    }
  }

  const geo::Vec2 a = traj_.waypoints[seg_];
  const geo::Vec2 b = traj_.waypoints[seg_ + 1];
  const double seg_len = std::max(1e-9, geo::distance(a, b));
  const geo::Vec2 dir = (b - a) * (1.0 / seg_len);
  out.pos = a + dir * seg_offset_m_;
  out.heading_deg = segment_heading();
  out.speed_mps = speed_mps_;
  out.finished = finished_;

  // Check scripted stop points (driving only).
  if (cfg_.mode == data::Activity::kDriving && stop_wait_s_ <= 0.0) {
    for (std::size_t i = 0; i < stop_points_.size(); ++i) {
      if (stop_armed_[i] &&
          geo::distance(out.pos, stop_points_[i]) <= cfg_.stop_radius_m) {
        stop_armed_[i] = false;
        stop_wait_s_ = std::max(2.0, rng.exponential(
                                         1.0 / cfg_.stop_duration_mean_s));
        speed_mps_ = 0.0;
        out.speed_mps = 0.0;
        break;
      }
    }
  }
  return out;
}

}  // namespace lumos::sim

#include "sim/lte.h"

#include <algorithm>
#include <cmath>

namespace lumos::sim {

double LteModel::mean_capacity(geo::Vec2 pos) const noexcept {
  // A smooth pseudo-random field: sum of a few fixed sinusoids whose
  // phases derive from the seed. Deterministic in space, so repeated
  // passes over a trajectory see the same 4G levels (the property paper
  // A.4 relies on).
  const double s1 = static_cast<double>(seed_ % 1000) * 0.013;
  const double s2 = static_cast<double>((seed_ / 1000) % 1000) * 0.007;
  const double k = 2.0 * 3.14159265358979323846 / cfg_.field_scale_m;
  const double f = 0.5 * std::sin(k * pos.x + s1) +
                   0.35 * std::sin(k * 1.7 * pos.y + s2) +
                   0.15 * std::sin(k * 0.6 * (pos.x + pos.y) + s1 + s2);
  // f in ~[-1, 1] -> scale around the median.
  const double cap = cfg_.median_mbps * (1.0 + 0.55 * f);
  return std::clamp(cap, cfg_.min_mbps, cfg_.max_mbps);
}

double LteModel::capacity(geo::Vec2 pos, Rng& rng) const noexcept {
  const double s = cfg_.noise_sigma;
  const double jitter = rng.lognormal(-0.5 * s * s, s);
  return std::clamp(mean_capacity(pos) * jitter, cfg_.min_mbps, cfg_.max_mbps);
}

}  // namespace lumos::sim

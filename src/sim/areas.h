// Factories for the paper's three study areas (Table 2):
//   Airport      — indoor mall corridor, two head-on single panels ~200 m
//                  apart, shopping-booth NLoS band, NB/SB trajectories
//   Intersection — outdoor 4-way downtown intersection, 3 dual-panel
//                  towers, corner buildings, 12 walking trajectories
//   Loop         — 1300 m downtown loop with rail crossing and traffic
//                  stops; panel locations NOT surveyed (no T features)
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "sim/collector.h"
#include "sim/environment.h"
#include "sim/mobility.h"

namespace lumos::sim {

struct Area {
  Environment env;
  std::vector<Trajectory> walking;
  std::vector<Trajectory> driving;
  std::vector<geo::Vec2> stop_points;  ///< scripted stops (driving)
};

Area make_airport();
Area make_intersection();
Area make_loop();

/// Collects a cleaned dataset for an area: every walking trajectory
/// `walk_runs` times and every driving trajectory `drive_runs` times.
data::Dataset collect_area_dataset(const Area& area, int walk_runs,
                                   int drive_runs, std::uint64_t seed,
                                   const CollectorConfig& base = {});

}  // namespace lumos::sim

#include "sim/congestion.h"

#include <cmath>
#include <limits>
#include <memory>

#include "sim/connection.h"

namespace lumos::sim {

CongestionResult run_congestion_experiment(const Environment& env,
                                           const CongestionConfig& cfg,
                                           std::uint64_t seed) {
  CongestionResult out;
  const auto n = static_cast<std::size_t>(cfg.n_ues);
  const auto total = static_cast<std::size_t>(cfg.total_s);
  out.throughput.assign(n, std::vector<double>(
                               total, std::numeric_limits<double>::quiet_NaN()));
  out.active_count.assign(total, 0);

  Rng master(seed);
  std::vector<Rng> rngs;
  std::vector<std::unique_ptr<ConnectionManager>> conns;
  rngs.reserve(n);
  conns.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    rngs.push_back(master.fork());
    conns.push_back(std::make_unique<ConnectionManager>(env, rngs[u]));
  }

  const UEContext ue{cfg.position, cfg.heading_deg, 0.0,
                     data::Activity::kStill};
  for (std::size_t t = 0; t < total; ++t) {
    int active = 0;
    for (std::size_t u = 0; u < n; ++u) {
      if (t >= u * static_cast<std::size_t>(cfg.stagger_s)) ++active;
    }
    out.active_count[t] = active;
    for (std::size_t u = 0; u < n; ++u) {
      if (t < u * static_cast<std::size_t>(cfg.stagger_s)) continue;
      const TickResult r = conns[u]->tick(ue, rngs[u], active);
      out.throughput[u][t] = r.throughput_mbps;
    }
  }
  return out;
}

}  // namespace lumos::sim

#include "sim/propagation.h"

#include <algorithm>
#include <cmath>

#include "geo/angles.h"

namespace lumos::sim {
namespace {

/// Smoothstep on [lo, hi]: 0 below lo, 1 above hi.
double smoothstep(double x, double lo, double hi) noexcept {
  if (x <= lo) return 0.0;
  if (x >= hi) return 1.0;
  const double t = (x - lo) / (hi - lo);
  return t * t * (3.0 - 2.0 * t);
}

}  // namespace

LinkGeometry link_geometry(const Panel& panel, const UEContext& ue) noexcept {
  LinkGeometry g;
  const geo::Vec2 rel = ue.pos - panel.pos;
  g.distance_m = geo::length(rel);
  const double to_ue_bearing =
      g.distance_m > 1e-9 ? geo::bearing_of(rel) : panel.bearing_deg;
  g.theta_p_deg = geo::positional_angle(panel.bearing_deg, to_ue_bearing);
  g.theta_m_deg = geo::mobility_angle(panel.bearing_deg, ue.heading_deg);
  return g;
}

double PropagationModel::distance_capacity(double distance_m,
                                           double peak) const noexcept {
  const double ratio = distance_m / cfg_.half_capacity_distance_m;
  return peak / (1.0 + std::pow(ratio, cfg_.distance_exponent));
}

double PropagationModel::positional_gain(double theta_p_deg) const noexcept {
  if (theta_p_deg <= cfg_.beam_full_gain_deg) return 1.0;
  if (theta_p_deg >= 150.0) return cfg_.back_lobe_gain;
  // Smooth falloff between the main lobe edge and the back of the panel.
  const double t = smoothstep(theta_p_deg, cfg_.beam_full_gain_deg, 150.0);
  return 1.0 - (1.0 - cfg_.back_lobe_gain) * t;
}

double PropagationModel::body_blockage(double theta_m_deg,
                                       data::Activity mode) const noexcept {
  // Only hand-held (walking/still) UEs suffer body blockage; in a car the
  // vehicle factor dominates instead. theta_m == 0 means the user moves in
  // the panel's facing direction, i.e. walks away with the body between
  // UE and panel (paper §4.4).
  if (mode == data::Activity::kDriving) return 1.0;
  const double t =
      smoothstep(theta_m_deg, cfg_.body_block_full_deg, cfg_.body_block_none_deg);
  return cfg_.body_blockage_factor + (1.0 - cfg_.body_blockage_factor) * t;
}

double PropagationModel::vehicle_factor(double speed_mps,
                                        data::Activity mode) const noexcept {
  if (mode != data::Activity::kDriving) return 1.0;
  const double kmph = speed_mps * 3.6;
  // Below ~5 kmph (stoplights, stop signs) the link behaves almost like a
  // stationary UE behind glass; above that, beam tracking struggles
  // (paper Fig. 14a shows the cliff past 5 kmph).
  const double pen = cfg_.vehicle_penetration;
  if (kmph <= 5.0) return std::min(1.0, pen * 2.4);
  const double speed_term =
      1.0 - cfg_.driving_speed_penalty_per_kmph * (kmph - 5.0);
  return pen * std::max(cfg_.driving_speed_penalty_floor, speed_term);
}

double PropagationModel::mean_capacity(const Panel& panel, const UEContext& ue,
                                       const std::vector<Wall>& walls,
                                       bool reflective) const noexcept {
  const LinkGeometry g = link_geometry(panel, ue);
  const double base = distance_capacity(g.distance_m, panel.peak_mbps);
  const double gain = positional_gain(g.theta_p_deg);
  double blockage = body_blockage(g.theta_m_deg, ue.mode) *
                    path_penetration(walls, ue.pos, panel.pos);
  if (reflective) {
    // Reflections off surrounding structures keep a floor under the
    // obstruction losses (paper §4.4's high-throughput NLoS outlier).
    blockage = std::max(blockage, cfg_.reflection_floor);
  }
  const double vehicle = vehicle_factor(ue.speed_mps, ue.mode);
  return base * gain * blockage * vehicle;
}

}  // namespace lumos::sim

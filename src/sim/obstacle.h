// Obstacles are wall segments with a penetration attenuation. mmWave
// signals are blocked by concrete, tinted glass and bodies (paper §2.1,
// footnote 2); a blocked path may still be served by environmental
// reflections at reduced rate (§4.4's "outlier" observation).
#pragma once

#include <string>
#include <vector>

#include "geo/local_frame.h"

namespace lumos::sim {

struct Wall {
  geo::Vec2 a;
  geo::Vec2 b;
  /// Linear capacity factor retained when the direct path crosses this wall
  /// (0 = fully opaque concrete, 0.3 = light partition/booth).
  double penetration = 0.0;
  std::string label;
};

/// True if segments (p1,p2) and (q1,q2) properly intersect (shared
/// endpoints count as intersection).
bool segments_intersect(geo::Vec2 p1, geo::Vec2 p2, geo::Vec2 q1,
                        geo::Vec2 q2) noexcept;

/// Product of penetration factors over every wall crossed by the segment
/// from `from` to `to`; 1.0 when the path is clear (LoS).
double path_penetration(const std::vector<Wall>& walls, geo::Vec2 from,
                        geo::Vec2 to) noexcept;

}  // namespace lumos::sim

// Android-like sensor observation model: GPS fixes with noise and a
// reported accuracy, compass readings with drift, speed readings, and
// activity recognition — the imperfections the paper's data-quality rules
// (§3.1) are designed to contain.
#pragma once

#include "common/rng.h"
#include "data/sample.h"
#include "geo/local_frame.h"
#include "sim/mobility.h"

namespace lumos::sim {

struct SensorConfig {
  /// Per-run GPS error scale is drawn uniformly from this range (m).
  double gps_sigma_min_m = 1.2;
  double gps_sigma_max_m = 3.5;
  /// Probability a run is a "bad GPS day" with error well above the paper's
  /// 5 m cleaning threshold (those runs get discarded by Dataset::clean).
  double gps_bad_run_prob = 0.04;
  double gps_bad_sigma_m = 9.0;
  double compass_sigma_deg = 4.0;
  double speed_sigma_mps = 0.12;
  double activity_error_prob = 0.02;
};

/// What the measurement app records from the platform APIs each second.
struct SensorReading {
  double latitude = 0.0;
  double longitude = 0.0;
  double gps_accuracy_m = 0.0;
  double compass_deg = 0.0;
  double compass_accuracy = 0.0;
  double speed_mps = 0.0;
  data::Activity activity = data::Activity::kStill;
};

class SensorModel {
 public:
  SensorModel(const SensorConfig& cfg, Rng& rng);

  SensorReading observe(const MotionSample& truth, data::Activity true_mode,
                        const geo::LocalFrame& frame, Rng& rng) const;

  double run_gps_sigma() const noexcept { return gps_sigma_m_; }

 private:
  SensorConfig cfg_;
  double gps_sigma_m_ = 1.0;  ///< this run's GPS quality
};

}  // namespace lumos::sim

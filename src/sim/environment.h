// The radio environment of one study area: panels, obstacles, reflective
// zones, the LTE fallback layer and the propagation model, anchored to a
// geographic origin so samples carry real (lat, lon).
#pragma once

#include <string>
#include <vector>

#include "geo/local_frame.h"
#include "sim/fading.h"
#include "sim/lte.h"
#include "sim/obstacle.h"
#include "sim/panel.h"
#include "sim/propagation.h"

namespace lumos::sim {

/// Circular zone in which blocked paths are partially salvaged by
/// reflections off surrounding structures.
struct ReflectiveZone {
  geo::Vec2 center;
  double radius_m = 0.0;
};

class Environment {
 public:
  Environment(std::string name, geo::LatLon origin,
              PropagationConfig prop = {}, FadingConfig fading = {},
              LteConfig lte = {})
      : name_(std::move(name)),
        origin_(origin),
        frame_(origin),
        prop_(prop),
        fading_cfg_(fading),
        lte_(lte) {}

  const std::string& name() const noexcept { return name_; }
  const geo::LocalFrame& frame() const noexcept { return frame_; }

  void add_panel(Panel p) { panels_.push_back(p); }
  void add_wall(Wall w) { walls_.push_back(std::move(w)); }
  void add_reflective_zone(ReflectiveZone z) { zones_.push_back(z); }

  const std::vector<Panel>& panels() const noexcept { return panels_; }
  const std::vector<Wall>& walls() const noexcept { return walls_; }

  /// Whether panel locations/orientations were surveyed (needed for the T
  /// feature group; false for the Loop area per the paper).
  bool panels_surveyed() const noexcept { return panels_surveyed_; }
  void set_panels_surveyed(bool v) noexcept { panels_surveyed_ = v; }

  bool in_reflective_zone(geo::Vec2 pos) const noexcept;

  /// Mean (pre-fading, pre-sharing) capacity of panel index `i` for `ue`.
  double mean_capacity(std::size_t i, const UEContext& ue) const noexcept;

  const PropagationModel& propagation() const noexcept { return prop_; }
  const FadingConfig& fading_config() const noexcept { return fading_cfg_; }
  const LteModel& lte() const noexcept { return lte_; }

 private:
  std::string name_;
  geo::LatLon origin_;
  geo::LocalFrame frame_;
  std::vector<Panel> panels_;
  std::vector<Wall> walls_;
  std::vector<ReflectiveZone> zones_;
  PropagationModel prop_;
  FadingConfig fading_cfg_;
  LteModel lte_;
  bool panels_surveyed_ = true;
};

}  // namespace lumos::sim

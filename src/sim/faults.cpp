#include "sim/faults.h"

#include <cmath>
#include <fstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace lumos::sim {
namespace {

/// Metres-per-degree at mid latitudes; good enough for jitter injection
/// (the repair path never needs the inverse).
constexpr double kMetersPerDegLat = 111320.0;

double wrap_deg(double d) noexcept {
  d = std::fmod(d, 360.0);
  if (d < 0.0) d += 360.0;
  return d;
}

bool same_run(const data::SampleRecord& a, const data::SampleRecord& b) {
  return a.area == b.area && a.trajectory_id == b.trajectory_id &&
         a.run_id == b.run_id;
}

}  // namespace

FaultConfig FaultConfig::uniform(double r) noexcept {
  FaultConfig c;
  c.gps_dropout = r;
  c.gps_jitter = r;
  c.compass_noise = r;
  c.signal_loss = r;
  c.sample_loss = r;
  c.duplicate = r;
  c.out_of_order = r;
  c.field_corruption = r;
  return c;
}

data::Dataset FaultInjector::inject(const data::Dataset& ds) const {
  Rng rng(seed_);
  std::vector<data::SampleRecord> out;
  out.reserve(ds.size());
  for (const auto& src : ds.samples()) {
    if (rng.bernoulli(cfg_.sample_loss)) continue;  // row never logged

    data::SampleRecord rec = src;
    if (rng.bernoulli(cfg_.gps_dropout)) {
      rec.latitude = data::SampleRecord::nan_value();
      rec.longitude = data::SampleRecord::nan_value();
      rec.gps_accuracy_m = data::SampleRecord::nan_value();
    } else if (rng.bernoulli(cfg_.gps_jitter)) {
      const double cos_lat =
          std::max(0.2, std::cos(rec.latitude * 3.14159265358979323846 / 180.0));
      rec.latitude +=
          rng.normal(0.0, cfg_.gps_jitter_sigma_m) / kMetersPerDegLat;
      rec.longitude += rng.normal(0.0, cfg_.gps_jitter_sigma_m) /
                       (kMetersPerDegLat * cos_lat);
      // The reported accuracy does NOT reflect the real error — that is
      // what makes jitter a fault rather than honest sensor noise.
    }
    if (rng.bernoulli(cfg_.compass_noise)) {
      rec.compass_deg =
          wrap_deg(rec.compass_deg + rng.normal(0.0, cfg_.compass_sigma_deg));
      rec.compass_accuracy += cfg_.compass_sigma_deg;
    }
    const double p_signal = rec.radio_type == data::RadioType::kLte
                                ? std::min(1.0, 4.0 * cfg_.signal_loss)
                                : cfg_.signal_loss;
    if (rng.bernoulli(p_signal)) {
      rec.lte_rsrp = data::SampleRecord::nan_value();
      rec.lte_rsrq = data::SampleRecord::nan_value();
      rec.lte_rssi = data::SampleRecord::nan_value();
      rec.nr_ssrsrp = data::SampleRecord::nan_value();
      rec.nr_ssrsrq = data::SampleRecord::nan_value();
      rec.nr_ssrssi = data::SampleRecord::nan_value();
    }

    out.push_back(std::move(rec));
    if (rng.bernoulli(cfg_.duplicate)) {
      out.push_back(out.back());  // logged twice, same timestamp
    }
    if (rng.bernoulli(cfg_.out_of_order) && out.size() >= 2 &&
        same_run(out[out.size() - 2], out.back())) {
      std::swap(out[out.size() - 2], out.back());
    }
  }
  return data::Dataset(std::move(out));
}

std::size_t FaultInjector::corrupt_csv(const std::string& in_path,
                                       const std::string& out_path) const {
  std::ifstream in(in_path);
  if (!in) {
    throw std::runtime_error("FaultInjector::corrupt_csv: cannot open " +
                             in_path);
  }
  std::ofstream out(out_path);
  if (!out) {
    throw std::runtime_error("FaultInjector::corrupt_csv: cannot open " +
                             out_path);
  }
  Rng rng(seed_ ^ 0xc0ffee);
  static constexpr const char* kJunk[] = {"", "garbage", "1e999999"};
  std::string line;
  std::size_t corrupted = 0;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {  // keep the header intact: corruption hits data rows
      out << line << '\n';
      header = false;
      continue;
    }
    std::string field;
    std::string rebuilt;
    const auto flush = [&] {
      if (rng.bernoulli(cfg_.field_corruption)) {
        field = kJunk[rng.uniform_int(3)];
        ++corrupted;
      }
      rebuilt += field;
      field.clear();
    };
    for (const char ch : line) {
      if (ch == ',') {
        flush();
        rebuilt += ',';
      } else {
        field.push_back(ch);
      }
    }
    flush();
    out << rebuilt << '\n';
  }
  if (!out) {
    throw std::runtime_error("FaultInjector::corrupt_csv: write failed for " +
                             out_path);
  }
  return corrupted;
}

}  // namespace lumos::sim

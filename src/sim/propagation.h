// Deterministic part of the mmWave link model: how much capacity a panel
// can offer a UE given geometry, obstacles, body blockage and vehicle
// penetration. Implements the UE-side effects the paper measures in §4:
//   distance decay (§4.3), positional-angle gain (§4.5), mobility-angle
//   body blockage (§4.4), speed/vehicle degradation (§4.6), NLoS with
//   environmental reflection (§4.3-§4.4).
#pragma once

#include <vector>

#include "data/sample.h"
#include "sim/obstacle.h"
#include "sim/panel.h"

namespace lumos::sim {

struct PropagationConfig {
  double half_capacity_distance_m = 110.0;  ///< d where free-path cap halves
  double distance_exponent = 2.6;
  /// Front-lobe half width (deg) of full antenna gain.
  double beam_full_gain_deg = 35.0;
  /// Residual gain directly behind the panel.
  double back_lobe_gain = 0.02;
  /// Capacity factor when the user's body blocks LoS (walking away,
  /// theta_m near 0 for a hand-held UE).
  double body_blockage_factor = 0.25;
  /// theta_m below which blockage is maximal / above which it is absent.
  double body_block_full_deg = 55.0;
  double body_block_none_deg = 130.0;
  /// Vehicle body/windshield penetration while driving.
  double vehicle_penetration = 0.38;
  /// Additional per-kmph beam-tracking penalty while driving.
  double driving_speed_penalty_per_kmph = 0.024;
  double driving_speed_penalty_floor = 0.12;
  /// Floor factor salvaged by environmental reflections when the direct
  /// path is blocked but reflective surfaces exist around the UE.
  double reflection_floor = 0.22;
};

struct UEContext {
  geo::Vec2 pos;
  double heading_deg = 0.0;     ///< direction of travel
  double speed_mps = 0.0;
  data::Activity mode = data::Activity::kWalking;
};

/// Geometry of a UE w.r.t. one panel.
struct LinkGeometry {
  double distance_m = 0.0;
  double theta_p_deg = 0.0;  ///< positional angle (0 = dead ahead of panel)
  double theta_m_deg = 0.0;  ///< mobility angle (paper convention)
};

LinkGeometry link_geometry(const Panel& panel, const UEContext& ue) noexcept;

class PropagationModel {
 public:
  explicit PropagationModel(PropagationConfig cfg = {}) noexcept : cfg_(cfg) {}

  /// Mean achievable capacity (Mbps) of `panel` for `ue`, before fading and
  /// airtime sharing. `reflective` marks zones where NLoS paths can be
  /// salvaged by reflections.
  double mean_capacity(const Panel& panel, const UEContext& ue,
                       const std::vector<Wall>& walls,
                       bool reflective) const noexcept;

  /// Individual factors, exposed for tests and ablation benches.
  double distance_capacity(double distance_m, double peak) const noexcept;
  double positional_gain(double theta_p_deg) const noexcept;
  double body_blockage(double theta_m_deg,
                       data::Activity mode) const noexcept;
  double vehicle_factor(double speed_mps,
                        data::Activity mode) const noexcept;

  const PropagationConfig& config() const noexcept { return cfg_; }

 private:
  PropagationConfig cfg_;
};

}  // namespace lumos::sim

#include "sim/environment.h"

namespace lumos::sim {

bool Environment::in_reflective_zone(geo::Vec2 pos) const noexcept {
  for (const auto& z : zones_) {
    if (geo::distance(pos, z.center) <= z.radius_m) return true;
  }
  return false;
}

double Environment::mean_capacity(std::size_t i,
                                  const UEContext& ue) const noexcept {
  return prop_.mean_capacity(panels_[i], ue, walls_,
                             in_reflective_zone(ue.pos));
}

}  // namespace lumos::sim

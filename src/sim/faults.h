// Deterministic fault injection for collected traces — the dirty-data
// conditions real UE measurement campaigns exhibit and crowdsourced 5G
// studies call out as the dominant data-quality problem: GPS fixes drop
// out or jitter far beyond the reported accuracy, compass readings spike,
// SignalStrength parses fail (especially around 4G/LTE fallback), whole
// seconds are lost, and rows arrive duplicated or out of order. Each
// impairment is independently configurable with a rate, so any existing
// bench or test can re-run against an impaired trace; the injector is a
// pure function of (config, seed, input) and with all rates at zero the
// output is bit-identical to the input.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace lumos::sim {

/// Per-sample (or per-field) impairment probabilities, all in [0, 1] and
/// all zero by default (injector is an identity transform).
struct FaultConfig {
  // --- location ---
  double gps_dropout = 0.0;  ///< fix lost: lat/lon/accuracy become NaN
  double gps_jitter = 0.0;   ///< degraded fix: position error far beyond
                             ///< the reported accuracy
  double gps_jitter_sigma_m = 15.0;

  // --- compass ---
  double compass_noise = 0.0;  ///< magnetometer spike on this reading
  double compass_sigma_deg = 45.0;

  // --- radio telemetry ---
  /// SignalStrength parse failure: all six dBm fields become NaN. Applied
  /// at this rate on 5G seconds and at 4x the rate (capped at 1) on LTE
  /// fallback seconds — parse failures cluster around RAT transitions.
  double signal_loss = 0.0;

  // --- per-second logging ---
  double sample_loss = 0.0;   ///< the row is never logged
  double duplicate = 0.0;     ///< the row is logged twice (same timestamp)
  double out_of_order = 0.0;  ///< the row lands before its predecessor

  // --- storage ---
  /// Per-field CSV garbling rate used by corrupt_csv() (empty field,
  /// non-numeric junk, or an out-of-range literal).
  double field_corruption = 0.0;

  /// Convenience: every rate above (except the amplitude knobs) set to `r`.
  static FaultConfig uniform(double r) noexcept;
};

class FaultInjector {
 public:
  FaultInjector(FaultConfig cfg, std::uint64_t seed) noexcept
      : cfg_(cfg), seed_(seed) {}

  /// Returns an impaired copy of `ds`. Deterministic for a fixed
  /// (config, seed); with all rates zero the result is bit-identical to
  /// `ds`. Row order is preserved except where duplicate / sample-loss /
  /// out-of-order faults apply; swaps never cross a run boundary.
  data::Dataset inject(const data::Dataset& ds) const;

  /// Garbles individual fields of the CSV at `in_path` into `out_path`
  /// (header preserved): each data field is independently replaced, at
  /// `cfg.field_corruption` rate, with an empty string, non-numeric junk,
  /// or an out-of-range numeric literal. Returns the number of fields
  /// corrupted. Throws lumos-style std::runtime_error on I/O failure.
  std::size_t corrupt_csv(const std::string& in_path,
                          const std::string& out_path) const;

  const FaultConfig& config() const noexcept { return cfg_; }
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  FaultConfig cfg_;
  std::uint64_t seed_;
};

}  // namespace lumos::sim

#include "sim/sensors.h"

#include <algorithm>
#include <cmath>

#include "geo/angles.h"

namespace lumos::sim {

SensorModel::SensorModel(const SensorConfig& cfg, Rng& rng) : cfg_(cfg) {
  gps_sigma_m_ = rng.bernoulli(cfg.gps_bad_run_prob)
                     ? cfg.gps_bad_sigma_m
                     : rng.uniform(cfg.gps_sigma_min_m, cfg.gps_sigma_max_m);
}

SensorReading SensorModel::observe(const MotionSample& truth,
                                   data::Activity true_mode,
                                   const geo::LocalFrame& frame,
                                   Rng& rng) const {
  SensorReading r;
  const geo::Vec2 noisy_pos{truth.pos.x + rng.normal(0.0, gps_sigma_m_),
                            truth.pos.y + rng.normal(0.0, gps_sigma_m_)};
  const geo::LatLon ll = frame.to_geo(noisy_pos);
  r.latitude = ll.lat_deg;
  r.longitude = ll.lon_deg;
  // Reported accuracy tracks the real error scale with optimism jitter,
  // like Android's Location#getAccuracy.
  r.gps_accuracy_m =
      std::max(0.5, gps_sigma_m_ * (1.0 + rng.normal(0.0, 0.15)));

  r.compass_deg = geo::norm360(truth.heading_deg +
                               rng.normal(0.0, cfg_.compass_sigma_deg));
  r.compass_accuracy = cfg_.compass_sigma_deg;

  r.speed_mps =
      std::max(0.0, truth.speed_mps + rng.normal(0.0, cfg_.speed_sigma_mps));

  if (rng.bernoulli(cfg_.activity_error_prob)) {
    r.activity = data::Activity::kStill;  // common misdetection
  } else if (true_mode == data::Activity::kWalking && truth.speed_mps < 0.2) {
    r.activity = data::Activity::kStill;
  } else {
    r.activity = true_mode;
  }
  return r;
}

}  // namespace lumos::sim

#include "sim/fading.h"

namespace lumos::sim {

double fast_fading(const FadingConfig& cfg, Rng& rng) noexcept {
  // Mean-one log-normal: exp(N(-sigma^2/2, sigma)).
  const double s = cfg.fast_sigma;
  return rng.lognormal(-0.5 * s * s, s);
}

}  // namespace lumos::sim

#include "sim/obstacle.h"

#include <algorithm>

namespace lumos::sim {
namespace {

int orientation(geo::Vec2 a, geo::Vec2 b, geo::Vec2 c) noexcept {
  const double v = geo::cross(b - a, c - a);
  if (v > 1e-12) return 1;
  if (v < -1e-12) return -1;
  return 0;
}

bool on_segment(geo::Vec2 a, geo::Vec2 b, geo::Vec2 p) noexcept {
  return std::min(a.x, b.x) - 1e-12 <= p.x && p.x <= std::max(a.x, b.x) + 1e-12 &&
         std::min(a.y, b.y) - 1e-12 <= p.y && p.y <= std::max(a.y, b.y) + 1e-12;
}

}  // namespace

bool segments_intersect(geo::Vec2 p1, geo::Vec2 p2, geo::Vec2 q1,
                        geo::Vec2 q2) noexcept {
  const int o1 = orientation(p1, p2, q1);
  const int o2 = orientation(p1, p2, q2);
  const int o3 = orientation(q1, q2, p1);
  const int o4 = orientation(q1, q2, p2);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && on_segment(p1, p2, q1)) return true;
  if (o2 == 0 && on_segment(p1, p2, q2)) return true;
  if (o3 == 0 && on_segment(q1, q2, p1)) return true;
  if (o4 == 0 && on_segment(q1, q2, p2)) return true;
  return false;
}

double path_penetration(const std::vector<Wall>& walls, geo::Vec2 from,
                        geo::Vec2 to) noexcept {
  double factor = 1.0;
  for (const Wall& w : walls) {
    if (segments_intersect(from, to, w.a, w.b)) {
      factor *= w.penetration;
      if (factor <= 1e-6) return 0.0;
    }
  }
  return factor;
}

}  // namespace lumos::sim

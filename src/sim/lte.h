// 4G LTE fallback model. LTE is omnidirectional, far less sensitive to
// environment and mobility than mmWave (paper A.4 shows location-based
// models predict 4G an order of magnitude better than 5G), so its capacity
// is modeled as a smooth location-dependent field with mild noise.
#pragma once

#include "common/rng.h"
#include "geo/local_frame.h"

namespace lumos::sim {

struct LteConfig {
  double median_mbps = 95.0;
  double min_mbps = 20.0;
  double max_mbps = 220.0;
  /// Spatial variation scale: capacity varies smoothly over ~this many m.
  double field_scale_m = 120.0;
  double noise_sigma = 0.10;  ///< per-second log-normal jitter
};

/// Deterministic smooth capacity field plus small temporal noise.
class LteModel {
 public:
  explicit LteModel(LteConfig cfg = {}, std::uint64_t field_seed = 99) noexcept
      : cfg_(cfg), seed_(field_seed) {}

  /// Location-dependent mean capacity (no temporal noise).
  double mean_capacity(geo::Vec2 pos) const noexcept;

  /// Per-second realized capacity.
  double capacity(geo::Vec2 pos, Rng& rng) const noexcept;

  const LteConfig& config() const noexcept { return cfg_; }

 private:
  LteConfig cfg_;
  std::uint64_t seed_;
};

}  // namespace lumos::sim

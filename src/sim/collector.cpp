#include "sim/collector.h"

#include <algorithm>
#include <cmath>

#include "geo/angles.h"

namespace lumos::sim {
namespace {

/// Maps a capacity fraction to an RSRP-like dBm value.
double capacity_to_rsrp(double cap_mbps, double peak_mbps, Rng& rng) noexcept {
  const double frac = std::max(1e-4, cap_mbps / std::max(1.0, peak_mbps));
  const double dbm = -70.0 + 20.0 * std::log10(frac) + rng.normal(0.0, 1.5);
  return std::clamp(dbm, -140.0, -60.0);
}

}  // namespace

void fill_panel_geometry(const Environment& env, int serving_index,
                         const UEContext& observed_ue,
                         data::SampleRecord& rec) noexcept {
  if (!env.panels_surveyed() || env.panels().empty()) return;
  std::size_t panel_idx;
  if (serving_index >= 0) {
    panel_idx = static_cast<std::size_t>(serving_index);
  } else {
    // On LTE: compute geometry w.r.t. the strongest 5G candidate — the
    // panel a 5G attach would use, which is what the exogenous tower survey
    // gives the pipeline.
    panel_idx = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < env.panels().size(); ++i) {
      const double c = env.mean_capacity(i, observed_ue);
      if (c > best) {
        best = c;
        panel_idx = i;
      }
    }
  }
  const Panel& p = env.panels()[panel_idx];
  UEContext ue = observed_ue;
  const LinkGeometry g = link_geometry(p, ue);
  rec.ue_panel_distance_m = g.distance_m;
  rec.theta_p_deg = g.theta_p_deg;
  rec.theta_m_deg = g.theta_m_deg;
}

void MeasurementCollector::collect(const Trajectory& traj,
                                   const MotionConfig& motion,
                                   const std::vector<geo::Vec2>& stop_points,
                                   const CollectorConfig& cfg,
                                   std::uint64_t seed,
                                   data::Dataset& out) const {
  Rng master(seed);
  for (int run = 0; run < cfg.n_runs; ++run) {
    Rng rng = master.fork();
    MotionSimulator motion_sim(traj, motion, stop_points, rng);
    SensorModel sensors(cfg.sensors, rng);
    ConnectionManager conn(env_, rng, cfg.connection);

    for (int t = 0; t < cfg.max_run_seconds; ++t) {
      const MotionSample m = motion_sim.step(rng);
      const SensorReading obs = sensors.observe(m, motion.mode,
                                                env_.frame(), rng);

      // The radio sees the TRUE position/heading; the log records the
      // observed ones.
      UEContext true_ue{m.pos, m.heading_deg, m.speed_mps, motion.mode};

      data::SampleRecord rec;
      rec.area = env_.name();
      rec.trajectory_id = traj.id;
      rec.run_id = run;
      rec.timestamp_s = static_cast<double>(t);
      rec.latitude = obs.latitude;
      rec.longitude = obs.longitude;
      rec.gps_accuracy_m = obs.gps_accuracy_m;
      rec.detected_activity = obs.activity;
      rec.moving_speed_mps = obs.speed_mps;
      rec.compass_deg = obs.compass_deg;
      rec.compass_accuracy = obs.compass_accuracy;

      if (cfg.lock_lte) {
        rec.radio_type = data::RadioType::kLte;
        rec.cell_id = -1000;
        const double lte_cap = env_.lte().capacity(m.pos, rng);
        rec.throughput_mbps = lte_cap;
        rec.lte_rsrp = capacity_to_rsrp(lte_cap, 220.0, rng);
        rec.nr_ssrsrp = -140.0;
      } else {
        const TickResult tick = conn.tick(true_ue, rng, cfg.n_sharing_ues);
        rec.radio_type = tick.radio;
        rec.cell_id = tick.cell_id;
        rec.throughput_mbps = tick.throughput_mbps;
        rec.horizontal_handoff = tick.horizontal_handoff;
        rec.vertical_handoff = tick.vertical_handoff;
        if (tick.radio == data::RadioType::kNrMmWave) {
          const double peak =
              env_.panels()[static_cast<std::size_t>(tick.serving_index)]
                  .peak_mbps;
          rec.nr_ssrsrp = capacity_to_rsrp(tick.serving_capacity_mbps, peak,
                                           rng);
        } else {
          rec.nr_ssrsrp = -140.0;
        }
        // LTE anchor (NSA keeps an LTE link up for control plane).
        rec.lte_rsrp =
            capacity_to_rsrp(env_.lte().mean_capacity(m.pos), 220.0, rng);

        // Post-processed tower geometry from the OBSERVED fix/compass.
        const geo::LocalFrame& frame = env_.frame();
        UEContext observed_ue{
            frame.to_local({obs.latitude, obs.longitude}),
            obs.compass_deg, obs.speed_mps, motion.mode};
        fill_panel_geometry(env_, tick.serving_index, observed_ue, rec);
      }
      rec.lte_rsrq = -19.5 + (rec.lte_rsrp + 120.0) / 6.0;
      rec.lte_rssi = rec.lte_rsrp + 20.0;
      rec.nr_ssrsrq = -20.0 + (rec.nr_ssrsrp + 140.0) / 8.0;
      rec.nr_ssrssi = rec.nr_ssrsrp + 18.0;

      out.append(std::move(rec));
      if (m.finished) break;
    }
  }
}

}  // namespace lumos::sim

// The measurement campaign driver: walks/drives a UE along a trajectory,
// runs the connection state machine, and logs one SampleRecord per second
// with all the Table 1 fields — the simulated counterpart of the paper's
// Android measurement app + iPerf backend (§3.1).
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "sim/connection.h"
#include "sim/environment.h"
#include "sim/mobility.h"
#include "sim/sensors.h"

namespace lumos::sim {

struct CollectorConfig {
  int n_runs = 30;              ///< repeated passes per trajectory (paper: >=30)
  int max_run_seconds = 3600;   ///< safety cap per pass
  bool lock_lte = false;        ///< 4G-only UE (paper A.4 side-by-side phone)
  int n_sharing_ues = 1;        ///< concurrent saturating UEs on the panel
  SensorConfig sensors{};
  ConnectionConfig connection{};
};

class MeasurementCollector {
 public:
  explicit MeasurementCollector(const Environment& env) noexcept : env_(env) {}

  /// Runs `cfg.n_runs` passes of `traj` under `motion` and appends the
  /// logged samples to `out`. `stop_points` are scripted stop locations
  /// (traffic lights etc., driving mode only).
  void collect(const Trajectory& traj, const MotionConfig& motion,
               const std::vector<geo::Vec2>& stop_points,
               const CollectorConfig& cfg, std::uint64_t seed,
               data::Dataset& out) const;

 private:
  const Environment& env_;
};

/// Fills the post-processed panel-geometry fields of `rec` (distance, θp,
/// θm) w.r.t. the serving panel (or the strongest panel when on LTE),
/// using the *observed* position/compass like the paper's post-processing.
void fill_panel_geometry(const Environment& env, int serving_index,
                         const UEContext& observed_ue,
                         data::SampleRecord& rec) noexcept;

}  // namespace lumos::sim

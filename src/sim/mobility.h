// Trajectories and motion profiles. A trajectory is a polyline in local
// meters; a motion profile turns it into a per-second sequence of
// (position, heading, speed) — walking at pedestrian pace with natural
// jitter, or driving with acceleration, cruise and scripted stop points
// (traffic lights / rail crossings on the paper's Loop area).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/sample.h"
#include "geo/local_frame.h"

namespace lumos::sim {

struct Trajectory {
  int id = 0;
  std::string name;
  std::vector<geo::Vec2> waypoints;

  double length_m() const noexcept;
};

struct MotionConfig {
  data::Activity mode = data::Activity::kWalking;
  // Walking parameters.
  double walk_speed_mps = 1.4;
  double walk_speed_jitter = 0.25;
  // Driving parameters.
  double drive_cruise_kmph_min = 25.0;
  double drive_cruise_kmph_max = 45.0;
  double accel_mps2 = 1.8;
  double stop_radius_m = 12.0;
  double stop_probability = 0.6;       ///< chance a stop point is "red"
  double stop_duration_mean_s = 12.0;
};

/// A point on the trajectory at one second boundary.
struct MotionSample {
  geo::Vec2 pos;
  double heading_deg = 0.0;  ///< true direction of travel
  double speed_mps = 0.0;    ///< true ground speed
  bool finished = false;
};

/// Walks/drives a trajectory one simulated second at a time.
class MotionSimulator {
 public:
  MotionSimulator(const Trajectory& traj, const MotionConfig& cfg,
                  std::vector<geo::Vec2> stop_points, Rng& rng);

  /// Advances one second. Returns the state at the *new* time.
  MotionSample step(Rng& rng);

  bool finished() const noexcept { return finished_; }

 private:
  double segment_heading() const noexcept;
  void retarget_speed(Rng& rng);

  const Trajectory& traj_;
  MotionConfig cfg_;
  std::vector<geo::Vec2> stop_points_;
  std::vector<bool> stop_armed_;  ///< stop point not yet consumed
  std::size_t seg_ = 0;           ///< current segment index
  double seg_offset_m_ = 0.0;     ///< distance along current segment
  double speed_mps_ = 0.0;
  double target_speed_mps_ = 0.0;
  double stop_wait_s_ = 0.0;
  bool finished_ = false;
};

}  // namespace lumos::sim

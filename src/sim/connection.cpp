#include "sim/connection.h"

#include <algorithm>

namespace lumos::sim {

ConnectionManager::ConnectionManager(const Environment& env, Rng& rng,
                                     ConnectionConfig cfg)
    : env_(env), cfg_(cfg) {
  shadowing_.reserve(env.panels().size());
  for (std::size_t i = 0; i < env.panels().size(); ++i) {
    shadowing_.emplace_back(env.fading_config(), rng);
  }
}

TickResult ConnectionManager::tick(const UEContext& ue, Rng& rng,
                                   int n_sharing_ues) {
  TickResult out;
  const auto& panels = env_.panels();
  n_sharing_ues = std::max(1, n_sharing_ues);

  // Per-panel capacity this second (deterministic geometry x shadowing).
  std::vector<double> cap(panels.size(), 0.0);
  int best = -1;
  double best_cap = 0.0;
  for (std::size_t i = 0; i < panels.size(); ++i) {
    cap[i] = env_.mean_capacity(i, ue) * shadowing_[i].step(rng);
    if (cap[i] > best_cap) {
      best_cap = cap[i];
      best = static_cast<int>(i);
    }
  }

  bool outage = false;

  if (serving_ < 0) {
    if (!ever_attached_) {
      // Session start: attach straight away if any panel is viable;
      // otherwise camp on LTE (and future 5G entries count as handoffs).
      if (best >= 0 && best_cap >= cfg_.lte_fallback_mbps) {
        serving_ = best;
      }
    } else if (best >= 0 && best_cap >= cfg_.nr_reentry_mbps) {
      // On LTE: must see solid 5G for a few seconds before returning.
      ++reentry_streak_;
      if (reentry_streak_ >= cfg_.nr_reentry_delay_s) {
        serving_ = best;
        reentry_streak_ = 0;
        out.vertical_handoff = true;
        outage = true;
      }
    } else {
      reentry_streak_ = 0;
    }
  } else {
    const double serving_cap = cap[static_cast<std::size_t>(serving_)];
    if (serving_cap < cfg_.lte_fallback_mbps &&
        best_cap < cfg_.lte_fallback_mbps) {
      // 5G is dead here: vertical handoff down to LTE.
      serving_ = -1;
      switch_candidate_ = -1;
      switch_streak_ = 0;
      out.vertical_handoff = true;
      outage = true;
    } else if (best >= 0 && best != serving_ &&
               best_cap > cfg_.handoff_hysteresis * serving_cap) {
      if (best == switch_candidate_) {
        ++switch_streak_;
      } else {
        switch_candidate_ = best;
        switch_streak_ = 1;
      }
      if (switch_streak_ >= cfg_.handoff_eval_s) {
        serving_ = best;
        switch_candidate_ = -1;
        switch_streak_ = 0;
        out.horizontal_handoff = true;
        outage = true;
      }
    } else {
      switch_candidate_ = -1;
      switch_streak_ = 0;
    }
  }

  // Realized throughput.
  const double fast = fast_fading(env_.fading_config(), rng);
  if (serving_ >= 0) {
    out.radio = data::RadioType::kNrMmWave;
    out.serving_index = serving_;
    out.cell_id = panels[static_cast<std::size_t>(serving_)].id;
    // Beam-tracking inertia: the rate converges to the link capacity over
    // a few seconds. Reset on (re)attach.
    const double link_cap = cap[static_cast<std::size_t>(serving_)];
    if (smoothed_cap_ < 0.0 || out.horizontal_handoff ||
        out.vertical_handoff) {
      smoothed_cap_ = link_cap;
    } else {
      smoothed_cap_ = cfg_.beam_ema_alpha * link_cap +
                      (1.0 - cfg_.beam_ema_alpha) * smoothed_cap_;
    }
    const double shared = smoothed_cap_ / static_cast<double>(n_sharing_ues);
    out.serving_capacity_mbps = shared;
    out.throughput_mbps =
        shared * fast * (outage ? cfg_.handoff_outage_factor : 1.0);
  } else {
    smoothed_cap_ = -1.0;
    out.radio = data::RadioType::kLte;
    out.serving_index = -1;
    out.cell_id = -1000;
    const double lte_cap = env_.lte().capacity(ue.pos, rng);
    out.serving_capacity_mbps = lte_cap;
    out.throughput_mbps =
        lte_cap * (outage ? cfg_.handoff_outage_factor : 1.0);
  }
  ever_attached_ = true;
  out.throughput_mbps =
      std::clamp(out.throughput_mbps, 0.0, cfg_.ue_max_mbps);
  return out;
}

}  // namespace lumos::sim

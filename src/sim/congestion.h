// Multi-UE congestion experiment (paper A.1.4, Fig. 21): several UEs placed
// side-by-side in the coverage of one panel start staggered iPerf sessions;
// the panel's airtime is shared among the active ones.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/environment.h"

namespace lumos::sim {

struct CongestionConfig {
  int n_ues = 4;
  int stagger_s = 60;   ///< gap between session starts
  int total_s = 240;    ///< experiment length (all sessions end together)
  geo::Vec2 position;   ///< shared UE location (paper: ~25 m, clear LoS)
  double heading_deg = 0.0;
};

struct CongestionResult {
  /// throughput[u][t] is UE u's throughput at second t; NaN while inactive.
  std::vector<std::vector<double>> throughput;
  /// Number of active UEs at each second.
  std::vector<int> active_count;
};

CongestionResult run_congestion_experiment(const Environment& env,
                                           const CongestionConfig& cfg,
                                           std::uint64_t seed);

}  // namespace lumos::sim

// A 5G mmWave panel (transceiver face). Real deployments observed in the
// paper had 1-3 panels per tower, each covering one facing direction
// (§3.1, footnote 4).
#pragma once

#include "geo/local_frame.h"

namespace lumos::sim {

struct Panel {
  int id = 0;
  geo::Vec2 pos;            ///< local meters
  double bearing_deg = 0.0; ///< compass direction the face points toward
  double peak_mbps = 1900.0;///< best-case single-UE capacity at close range
};

}  // namespace lumos::sim

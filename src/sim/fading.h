// Stochastic channel components: slow log-normal shadowing (AR(1) in time)
// and per-second fast fading. Together these produce the heavy per-location
// throughput variability the paper quantifies (CV >= 50% at ~half of the
// geolocations, §4.1).
#pragma once

#include "common/rng.h"

namespace lumos::sim {

struct FadingConfig {
  double shadow_sigma = 0.24;  ///< std-dev of log-shadowing process
  double shadow_rho = 0.92;    ///< AR(1) coefficient per second
  double fast_sigma = 0.14;    ///< per-second log-normal fast fading
};

/// Temporally-correlated shadowing for one UE-panel link.
class ShadowingProcess {
 public:
  ShadowingProcess() = default;
  ShadowingProcess(const FadingConfig& cfg, Rng& rng) noexcept
      : cfg_(cfg), x_(rng.normal(0.0, cfg.shadow_sigma)) {}

  /// Advances one second and returns the multiplicative factor exp(x_t).
  double step(Rng& rng) noexcept {
    const double innovation_sd =
        cfg_.shadow_sigma * std::sqrt(1.0 - cfg_.shadow_rho * cfg_.shadow_rho);
    x_ = cfg_.shadow_rho * x_ + rng.normal(0.0, innovation_sd);
    return std::exp(x_);
  }

  double current() const noexcept { return std::exp(x_); }

 private:
  FadingConfig cfg_;
  double x_ = 0.0;
};

/// Per-second i.i.d. fast-fading factor.
double fast_fading(const FadingConfig& cfg, Rng& rng) noexcept;

}  // namespace lumos::sim

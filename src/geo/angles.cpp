#include "geo/angles.h"

#include <cmath>

namespace lumos::geo {

double norm360(double deg) noexcept {
  double r = std::fmod(deg, 360.0);
  if (r < 0.0) r += 360.0;
  return r;
}

double norm180(double deg) noexcept {
  double r = norm360(deg);
  if (r > 180.0) r -= 360.0;
  return r;
}

double angular_distance(double a_deg, double b_deg) noexcept {
  return std::fabs(norm180(a_deg - b_deg));
}

double positional_angle(double panel_bearing_deg,
                        double panel_to_ue_bearing_deg) noexcept {
  return angular_distance(panel_bearing_deg, panel_to_ue_bearing_deg);
}

double mobility_angle(double panel_bearing_deg, double ue_heading_deg) noexcept {
  // 0° when moving along the panel's facing direction, 180° when moving
  // opposite to it (i.e. head-on toward the panel face).
  return angular_distance(panel_bearing_deg, ue_heading_deg);
}

char positional_sector(double theta_p_deg, double signed_offset_deg) noexcept {
  if (theta_p_deg < 45.0) return 'F';
  if (theta_p_deg >= 135.0) return 'B';
  return signed_offset_deg < 0.0 ? 'L' : 'R';
}

}  // namespace lumos::geo

#include "geo/grid.h"

#include <cmath>

namespace lumos::geo {

GridCell Grid::cell_of(Vec2 p) const noexcept {
  return {static_cast<std::int32_t>(std::floor(p.x / cell_m_)),
          static_cast<std::int32_t>(std::floor(p.y / cell_m_))};
}

Vec2 Grid::center_of(GridCell c) const noexcept {
  return {(static_cast<double>(c.ix) + 0.5) * cell_m_,
          (static_cast<double>(c.iy) + 0.5) * cell_m_};
}

}  // namespace lumos::geo

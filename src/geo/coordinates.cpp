#include "geo/coordinates.h"

#include <algorithm>

#include "common/contracts.h"

namespace lumos::geo {
namespace {

/// Maximum latitude representable in Web-Mercator.
constexpr double kMaxMercatorLat = 85.05112877980659;

double clamp_lat(double lat) noexcept {
  return std::clamp(lat, -kMaxMercatorLat, kMaxMercatorLat);
}

double wrap_lon(double lon) noexcept {
  while (lon < -180.0) lon += 360.0;
  while (lon >= 180.0) lon -= 360.0;
  return lon;
}

}  // namespace

WorldCoord project(const LatLon& ll) noexcept {
  const double lat = deg2rad(clamp_lat(ll.lat_deg));
  const double lon = wrap_lon(ll.lon_deg);
  WorldCoord wc;
  wc.x = kTileSize * (0.5 + lon / 360.0);
  const double siny = std::sin(lat);
  wc.y = kTileSize * (0.5 - std::log((1.0 + siny) / (1.0 - siny)) / (4.0 * kPi));
  // Guard against floating-point spill just past the clamped poles.
  wc.y = std::clamp(wc.y, 0.0, static_cast<double>(kTileSize));
  return wc;
}

LatLon unproject(const WorldCoord& wc) noexcept {
  LatLon ll;
  ll.lon_deg = (wc.x / kTileSize - 0.5) * 360.0;
  const double n = kPi * (1.0 - 2.0 * wc.y / kTileSize);
  ll.lat_deg = rad2deg(std::atan(std::sinh(n)));
  return ll;
}

PixelCoord pixelize(const LatLon& ll, int zoom) noexcept {
  LUMOS_EXPECTS(zoom >= 0 && zoom < 62,
                "pixelize: zoom outside the Web-Mercator shift range");
  const WorldCoord wc = project(ll);
  const double scale = static_cast<double>(std::int64_t{1} << zoom);
  PixelCoord px;
  px.x = static_cast<std::int64_t>(std::floor(wc.x * scale));
  px.y = static_cast<std::int64_t>(std::floor(wc.y * scale));
  px.zoom = zoom;
  return px;
}

LatLon pixel_center(const PixelCoord& px) noexcept {
  LUMOS_EXPECTS(px.zoom >= 0 && px.zoom < 62,
                "pixel_center: zoom outside the Web-Mercator shift range");
  const double scale = static_cast<double>(std::int64_t{1} << px.zoom);
  WorldCoord wc;
  wc.x = (static_cast<double>(px.x) + 0.5) / scale;
  wc.y = (static_cast<double>(px.y) + 0.5) / scale;
  return unproject(wc);
}

double meters_per_pixel(double lat_deg, int zoom) noexcept {
  const double scale = static_cast<double>(std::int64_t{1} << zoom);
  const double circumference = 2.0 * kPi * kEarthRadiusM;
  return circumference * std::cos(deg2rad(clamp_lat(lat_deg))) /
         (kTileSize * scale);
}

double haversine_m(const LatLon& a, const LatLon& b) noexcept {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

double bearing_deg(const LatLon& a, const LatLon& b) noexcept {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  double brg = rad2deg(std::atan2(y, x));
  if (brg < 0.0) brg += 360.0;
  if (brg >= 360.0) brg = 0.0;  // atan2(-0.0, x) rounds to exactly 360
  LUMOS_ENSURES(brg >= 0.0 && brg < 360.0,
                "bearing_deg: result escaped [0, 360)");
  return brg;
}

LatLon destination(const LatLon& origin, double bearing, double distance_m) noexcept {
  const double ang = distance_m / kEarthRadiusM;
  const double brg = deg2rad(bearing);
  const double lat1 = deg2rad(origin.lat_deg);
  const double lon1 = deg2rad(origin.lon_deg);
  const double lat2 = std::asin(std::sin(lat1) * std::cos(ang) +
                                std::cos(lat1) * std::sin(ang) * std::cos(brg));
  const double lon2 =
      lon1 + std::atan2(std::sin(brg) * std::sin(ang) * std::cos(lat1),
                        std::cos(ang) - std::sin(lat1) * std::sin(lat2));
  return LatLon{rad2deg(lat2), wrap_lon(rad2deg(lon2))};
}

}  // namespace lumos::geo

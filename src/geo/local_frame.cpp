#include "geo/local_frame.h"

#include <cmath>

namespace lumos::geo {

double length(Vec2 v) noexcept { return std::hypot(v.x, v.y); }

double distance(Vec2 a, Vec2 b) noexcept { return length(b - a); }

double bearing_of(Vec2 v) noexcept {
  double deg = rad2deg(std::atan2(v.x, v.y));
  if (deg < 0.0) deg += 360.0;
  return deg;
}

Vec2 unit_from_bearing(double deg) noexcept {
  const double rad = deg2rad(deg);
  return {std::sin(rad), std::cos(rad)};
}

LocalFrame::LocalFrame(const LatLon& origin) noexcept
    : origin_(origin),
      m_per_deg_lat_(kEarthRadiusM * kPi / 180.0),
      m_per_deg_lon_(kEarthRadiusM * kPi / 180.0 *
                     std::cos(deg2rad(origin.lat_deg))) {}

Vec2 LocalFrame::to_local(const LatLon& ll) const noexcept {
  return {(ll.lon_deg - origin_.lon_deg) * m_per_deg_lon_,
          (ll.lat_deg - origin_.lat_deg) * m_per_deg_lat_};
}

LatLon LocalFrame::to_geo(const Vec2& v) const noexcept {
  return {origin_.lat_deg + v.y / m_per_deg_lat_,
          origin_.lon_deg + v.x / m_per_deg_lon_};
}

}  // namespace lumos::geo

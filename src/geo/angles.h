// Angle utilities for the UE–panel geometry studied in paper §4.3–§4.5:
// the positional angle θp and the mobility angle θm (Fig. 5).
#pragma once

namespace lumos::geo {

struct Vec2;  // from local_frame.h

/// Normalizes an angle in degrees into [0, 360).
double norm360(double deg) noexcept;

/// Normalizes an angle in degrees into (-180, 180].
double norm180(double deg) noexcept;

/// Absolute smallest difference between two bearings, in [0, 180].
double angular_distance(double a_deg, double b_deg) noexcept;

/// UE–panel positional angle θp (paper §4.5): the angle between the line
/// normal to the panel's front face and the line from the panel to the UE.
/// 0° means the UE is dead ahead of the panel ("F"), 180° means directly
/// behind ("B").
///
/// `panel_bearing_deg` is the compass direction the panel faces;
/// `panel_to_ue_bearing_deg` is the compass bearing from panel to UE.
double positional_angle(double panel_bearing_deg,
                        double panel_to_ue_bearing_deg) noexcept;

/// UE–panel mobility angle θm (paper §4.4): the angle between the panel's
/// facing direction and the UE's direction of travel. By the paper's
/// convention θm = 180° when the UE moves head-on toward the panel face and
/// θm = 0° when it moves the same direction the panel faces (walking away,
/// body blocking LoS).
double mobility_angle(double panel_bearing_deg,
                      double ue_heading_deg) noexcept;

/// Classifies θp into the paper's four coarse sectors: 'F' (|θp|<45°),
/// 'L', 'R' (side quadrants) and 'B' (back).
char positional_sector(double theta_p_deg, double signed_offset_deg) noexcept;

}  // namespace lumos::geo

// Geographic coordinate types and the Web-Mercator projection used by the
// Lumos5G pipeline to "pixelize" raw GPS fixes (paper §3.1: Google Maps
// pixel coordinates at zoom level 17, ~1 m spatial resolution).
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

namespace lumos::geo {

/// Mean Earth radius in meters (WGS-84 authalic sphere, as used by the
/// Web-Mercator projection).
inline constexpr double kEarthRadiusM = 6378137.0;

/// Size in pixels of one Web-Mercator world tile edge at zoom 0.
inline constexpr int kTileSize = 256;

inline constexpr double kPi = 3.14159265358979323846;

constexpr double deg2rad(double deg) noexcept { return deg * kPi / 180.0; }
constexpr double rad2deg(double rad) noexcept { return rad * 180.0 / kPi; }

/// A WGS-84 geographic coordinate in degrees.
struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const LatLon&, const LatLon&) = default;
};

/// A position in Web-Mercator "world coordinates": the continuous
/// [0, 256) x [0, 256) square covering the whole Earth at zoom 0.
struct WorldCoord {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const WorldCoord&, const WorldCoord&) = default;
};

/// An integral pixel coordinate at a specific zoom level. Two samples that
/// map to the same PixelCoord are treated as the same geolocation
/// (paper §3.1, data-quality rule 4).
struct PixelCoord {
  std::int64_t x = 0;
  std::int64_t y = 0;
  int zoom = 17;

  friend auto operator<=>(const PixelCoord&, const PixelCoord&) = default;
};

/// Projects a WGS-84 coordinate to Web-Mercator world coordinates.
/// Latitude is clamped to the Mercator validity range (~±85.05113°).
[[nodiscard]] WorldCoord project(const LatLon& ll) noexcept;

/// Inverse Web-Mercator projection.
[[nodiscard]] LatLon unproject(const WorldCoord& wc) noexcept;

/// Quantizes a geographic coordinate to an integral pixel at `zoom`.
[[nodiscard]] PixelCoord pixelize(const LatLon& ll, int zoom = 17) noexcept;

/// Center of a pixel as a geographic coordinate.
[[nodiscard]] LatLon pixel_center(const PixelCoord& px) noexcept;

/// Ground meters covered by one pixel edge at `zoom` and latitude `lat_deg`.
/// At zoom 17 near 45°N this is ~0.84 m; the paper quotes 0.99–1.19 m over
/// its study areas.
[[nodiscard]] double meters_per_pixel(double lat_deg, int zoom) noexcept;

/// Great-circle distance between two coordinates in meters (haversine).
[[nodiscard]] double haversine_m(const LatLon& a, const LatLon& b) noexcept;

/// Initial great-circle bearing from `a` to `b` in degrees clockwise from
/// North, in [0, 360).
[[nodiscard]] double bearing_deg(const LatLon& a, const LatLon& b) noexcept;

/// Destination point starting at `origin`, moving `distance_m` meters along
/// `bearing` degrees (clockwise from North). Spherical Earth model.
[[nodiscard]] LatLon destination(const LatLon& origin, double bearing,
                                 double distance_m) noexcept;

}  // namespace lumos::geo

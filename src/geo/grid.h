// Spatial grid binning used for throughput maps (paper Fig. 6: 2m x 2m
// cells) and for per-geolocation statistics (pixelized coordinates).
#pragma once

#include <cstdint>
#include <functional>

#include "common/contracts.h"
#include "geo/local_frame.h"

namespace lumos::geo {

/// Key identifying one square cell of a uniform grid over the local frame.
struct GridCell {
  std::int32_t ix = 0;
  std::int32_t iy = 0;

  friend auto operator<=>(const GridCell&, const GridCell&) = default;
};

struct GridCellHash {
  std::size_t operator()(const GridCell& c) const noexcept {
    const auto ux = static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.ix));
    const auto uy = static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.iy));
    std::uint64_t h = (ux << 32) | uy;
    // SplitMix64 finalizer: excellent avalanche for composite keys.
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }
};

/// Uniform square grid over a local tangent plane.
class Grid {
 public:
  /// `cell_m` is the cell edge length in meters (2.0 for the paper's maps).
  explicit Grid(double cell_m) noexcept : cell_m_(cell_m) {
    LUMOS_EXPECTS(cell_m > 0.0, "Grid: cell edge length must be positive");
  }

  [[nodiscard]] GridCell cell_of(Vec2 p) const noexcept;

  /// Center of a cell in local meters.
  [[nodiscard]] Vec2 center_of(GridCell c) const noexcept;

  double cell_size_m() const noexcept { return cell_m_; }

 private:
  double cell_m_;
};

}  // namespace lumos::geo

// A local East-North tangent-plane frame. The radio simulator does all of
// its geometry (LoS ray tests, distances, angles) in flat meters around an
// area origin; this frame converts between that plane and WGS-84.
#pragma once

#include "geo/coordinates.h"

namespace lumos::geo {

/// A 2-D vector/point in meters within a local tangent plane
/// (x = East, y = North).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(Vec2 v, double s) noexcept {
    return {v.x * s, v.y * s};
  }
  friend constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }
  friend bool operator==(const Vec2&, const Vec2&) = default;
};

constexpr double dot(Vec2 a, Vec2 b) noexcept { return a.x * b.x + a.y * b.y; }
constexpr double cross(Vec2 a, Vec2 b) noexcept { return a.x * b.y - a.y * b.x; }
double length(Vec2 v) noexcept;
double distance(Vec2 a, Vec2 b) noexcept;

/// Compass bearing (degrees clockwise from North) of vector `v`; {0,1} -> 0,
/// {1,0} -> 90.
double bearing_of(Vec2 v) noexcept;

/// Unit vector pointing along compass bearing `deg`.
Vec2 unit_from_bearing(double deg) noexcept;

/// Equirectangular local frame anchored at `origin`. Accurate to well under
/// 0.1% over the few-km extents of the paper's study areas.
class LocalFrame {
 public:
  explicit LocalFrame(const LatLon& origin) noexcept;

  /// Converts a geographic coordinate to local East/North meters.
  Vec2 to_local(const LatLon& ll) const noexcept;

  /// Converts local meters back to a geographic coordinate.
  LatLon to_geo(const Vec2& v) const noexcept;

  const LatLon& origin() const noexcept { return origin_; }

 private:
  LatLon origin_;
  double m_per_deg_lat_;
  double m_per_deg_lon_;
};

}  // namespace lumos::geo

// Deterministic, seedable pseudo-random generator shared by the simulator,
// the ML training code and the tests. xoshiro256** seeded via SplitMix64 —
// fast, high quality, and identical output across platforms (unlike
// std::mt19937 + std::normal_distribution, whose stream is unspecified).
#pragma once

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

namespace lumos {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Raw 64 random bits.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation.
    if (n == 0) return 0;
    const __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (single value; spare discarded to keep
  /// the stream position deterministic regardless of call pattern).
  double normal() noexcept {
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  double normal(double mean, double sd) noexcept { return mean + sd * normal(); }

  /// Log-normal with given parameters of the underlying normal.
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with rate lambda.
  double exponential(double lambda) noexcept {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / lambda;
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n) noexcept {
    std::vector<std::size_t> p(n);
    std::iota(p.begin(), p.end(), std::size_t{0});
    shuffle(p);
    return p;
  }

  /// Derives an independent child generator; useful to give each subsystem
  /// its own stream from one experiment seed.
  Rng fork() noexcept { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace lumos

#include "common/simd.h"

#include <atomic>
#include <cstdlib>

namespace lumos::simd {
namespace {

// -1 = not yet resolved from the environment; 0/1 afterwards. Plain
// atomic so set_enabled from a test races benignly with readers.
std::atomic<int> g_enabled{-1};

bool env_allows() noexcept {
  const char* v = std::getenv("LUMOS_SIMD");
  if (v == nullptr) return true;
  if (v[0] == '\0') return true;
  if ((v[0] == '0' || v[0] == 'o' || v[0] == 'O') &&
      ((v[0] == '0' && v[1] == '\0') ||
       ((v[1] == 'f' || v[1] == 'F') && (v[2] == 'f' || v[2] == 'F') &&
        v[3] == '\0'))) {
    return false;  // "0" or "off" (any case)
  }
  return true;
}

}  // namespace

bool enabled() noexcept {
  if (kDoubleWidth <= 1) return false;
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = env_allows() ? 1 : 0;
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

const char* isa_name() noexcept {
#if defined(LUMOS_SIMD_AVX2)
  return "avx2";
#elif defined(LUMOS_SIMD_SSE2)
  return "sse2";
#elif defined(LUMOS_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

}  // namespace lumos::simd

#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace lumos {
namespace {

thread_local bool t_in_parallel_region = false;

// static_cast<size_t>(-1) = "not yet resolved from LUMOS_GRAIN".
std::atomic<std::size_t> g_grain_floor{static_cast<std::size_t>(-1)};

std::size_t env_grain_floor() noexcept {
  if (const char* env = std::getenv("LUMOS_GRAIN")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  return 0;
}

}  // namespace

std::size_t grain_floor() noexcept {
  std::size_t f = g_grain_floor.load(std::memory_order_relaxed);
  if (f == static_cast<std::size_t>(-1)) {
    f = env_grain_floor();
    g_grain_floor.store(f, std::memory_order_relaxed);
  }
  return f;
}

void set_grain_floor(std::size_t floor) noexcept {
  g_grain_floor.store(floor, std::memory_order_relaxed);
}

std::size_t configured_threads() noexcept {
  if (const char* env = std::getenv("LUMOS_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

struct ThreadPool::Impl {
  /// One blocking parallel_for invocation: chunks are claimed through the
  /// atomic `next` cursor; `done` counts completed chunks.
  struct Job {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::size_t n_chunks = 0;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex m;
    std::condition_variable cv;  ///< signalled when the last chunk finishes
    std::exception_ptr error;
    std::size_t error_chunk = static_cast<std::size_t>(-1);
  };

  std::size_t n_threads = 1;
  std::vector<std::thread> workers;
  std::mutex m;                ///< guards `job` / `stop`
  std::condition_variable cv;  ///< wakes idle workers
  std::shared_ptr<Job> job;    ///< currently running job, nullptr when idle
  bool stop = false;
  std::mutex submit_m;  ///< serializes submitters from distinct threads

  static void run_chunks(Job& j) {
    const bool prev = t_in_parallel_region;
    t_in_parallel_region = true;
    for (;;) {
      const std::size_t c = j.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= j.n_chunks) break;
      const std::size_t b = j.begin + c * j.grain;
      const std::size_t e = std::min(j.end, b + j.grain);
      try {
        (*j.fn)(b, e);
      } catch (...) {
        std::lock_guard<std::mutex> lk(j.m);
        if (c < j.error_chunk) {
          j.error_chunk = c;
          j.error = std::current_exception();
        }
      }
      if (j.done.fetch_add(1, std::memory_order_acq_rel) + 1 == j.n_chunks) {
        std::lock_guard<std::mutex> lk(j.m);
        j.cv.notify_all();
      }
    }
    t_in_parallel_region = prev;
  }

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Job> j;
      {
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [&] { return stop || job != nullptr; });
        if (stop) return;
        j = job;
      }
      run_chunks(*j);
      // All chunks claimed: detach the job so idle workers stop seeing it.
      std::lock_guard<std::mutex> lk(m);
      if (job == j) job = nullptr;
    }
  }

  void start(std::size_t n) {
    n_threads = std::max<std::size_t>(1, n);
    workers.reserve(n_threads - 1);
    for (std::size_t i = 1; i < n_threads; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lk(m);
      stop = true;
    }
    cv.notify_all();
    for (auto& w : workers) w.join();
    workers.clear();
    stop = false;
  }
};

ThreadPool::ThreadPool(std::size_t n_threads) : impl_(new Impl) {
  impl_->start(n_threads == 0 ? configured_threads() : n_threads);
}

ThreadPool::~ThreadPool() { impl_->shutdown(); }

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

std::size_t ThreadPool::threads() const noexcept { return impl_->n_threads; }

void ThreadPool::set_threads(std::size_t n) {
  std::lock_guard<std::mutex> submit(impl_->submit_m);
  if (n == 0) n = configured_threads();
  if (n == impl_->n_threads) return;
  impl_->shutdown();
  impl_->start(n);
}

bool ThreadPool::in_parallel_region() noexcept { return t_in_parallel_region; }

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  grain = std::max(grain, grain_floor());
  const std::size_t n_chunks = (end - begin + grain - 1) / grain;

  // Sequential fallback: pool of one, a nested region, or a single chunk.
  // Chunks run in ascending order so an exception surfaces from the same
  // (lowest) chunk the parallel path would report.
  if (impl_->n_threads <= 1 || t_in_parallel_region || n_chunks <= 1) {
    const bool prev = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      for (std::size_t c = 0; c < n_chunks; ++c) {
        const std::size_t b = begin + c * grain;
        fn(b, std::min(end, b + grain));
      }
    } catch (...) {
      t_in_parallel_region = prev;
      throw;
    }
    t_in_parallel_region = prev;
    return;
  }

  std::lock_guard<std::mutex> submit(impl_->submit_m);
  auto j = std::make_shared<Impl::Job>();
  j->begin = begin;
  j->end = end;
  j->grain = grain;
  j->n_chunks = n_chunks;
  j->fn = &fn;
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->job = j;
  }
  impl_->cv.notify_all();

  Impl::run_chunks(*j);  // the submitting thread works too

  {
    std::unique_lock<std::mutex> lk(j->m);
    j->cv.wait(lk, [&] {
      return j->done.load(std::memory_order_acquire) == j->n_chunks;
    });
  }
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    if (impl_->job == j) impl_->job = nullptr;
  }
  if (j->error) std::rethrow_exception(j->error);
}

}  // namespace lumos

// Deterministic fork-join thread pool shared by the ML training/inference
// stack and the evaluation harness.
//
// Design constraints (see DESIGN.md "Threading model"):
//   * Results must be bit-identical to the sequential path. parallel_for
//     only distributes index ranges whose iterations write disjoint state;
//     parallel_reduce fixes the chunk boundaries from (begin, end, grain)
//     alone — never from the thread count — and folds the per-chunk
//     partials in ascending chunk order, so floating-point grouping is
//     reproducible for any LUMOS_THREADS setting.
//   * No work stealing, no task graph: one blocking loop at a time, chunks
//     handed out by an atomic cursor. The caller participates, so a pool
//     of size N uses N-1 background workers.
//   * Nested parallel_for calls (a parallel region entered from inside a
//     chunk body) run inline on the calling thread instead of deadlocking
//     on the pool.
//   * Exceptions thrown by chunk bodies are captured and the one from the
//     lowest chunk index is rethrown on the submitting thread.
//
// Pool size resolution: LUMOS_THREADS env var if set (>= 1), otherwise
// std::thread::hardware_concurrency(). Size 1 means strictly sequential
// execution on the calling thread.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace lumos {

/// Pool size implied by the environment: LUMOS_THREADS when set to a
/// positive integer, else the hardware concurrency (min 1).
std::size_t configured_threads() noexcept;

/// Grain floor applied to every parallel_for: the effective grain is
/// max(call-site grain, this). 0 (the default) leaves call sites alone.
/// Resolved once from LUMOS_GRAIN; set_grain_floor overrides in-process
/// (tests, or embedders tuning fork-join overhead on small hosts).
///
/// Determinism: parallel_for distributes disjoint-write iterations, so
/// regrouping chunks never changes results; parallel_reduce derives its
/// FP fold boundaries from its own `grain` argument before entering
/// parallel_for (with an inner grain of 1 chunk), so a floor here cannot
/// reassociate reductions either. Raising the floor is always
/// bit-identity-safe.
std::size_t grain_floor() noexcept;
void set_grain_floor(std::size_t floor) noexcept;

class ThreadPool {
 public:
  /// `n_threads` = 0 resolves via configured_threads().
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool, lazily created with configured_threads() workers.
  static ThreadPool& global();

  /// Current parallelism (>= 1). 1 = sequential fallback.
  std::size_t threads() const noexcept;

  /// Re-sizes the pool (joins the old workers first). Must not be called
  /// from inside a parallel region or concurrently with parallel_for.
  void set_threads(std::size_t n);

  /// Runs fn(chunk_begin, chunk_end) over [begin, end) split into chunks
  /// of `grain` indices (last chunk may be short). Blocks until every
  /// chunk completed. Safe to call from inside a chunk body: nested calls
  /// run inline on the current thread.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// True while the current thread is executing a chunk body (used to
  /// divert nested parallel regions inline).
  static bool in_parallel_region() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience wrapper over the global pool.
inline void parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  ThreadPool::global().parallel_for(begin, end, grain, fn);
}

/// Deterministic ordered reduction over [begin, end): `map(b, e)` produces
/// a partial result per chunk, `combine(acc, partial)` folds the partials
/// in ascending chunk order. Chunk boundaries depend only on
/// (begin, end, grain), so the result is bit-identical for any pool size —
/// including floating-point accumulations.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T identity, MapFn&& map, CombineFn&& combine) {
  if (end <= begin) return identity;
  if (grain == 0) grain = 1;
  const std::size_t n_chunks = (end - begin + grain - 1) / grain;
  std::vector<T> partial(n_chunks, identity);
  ThreadPool::global().parallel_for(
      0, n_chunks, 1, [&](std::size_t cb, std::size_t ce) {
        for (std::size_t c = cb; c < ce; ++c) {
          const std::size_t b = begin + c * grain;
          partial[c] = map(b, std::min(end, b + grain));
        }
      });
  T acc = std::move(partial[0]);
  for (std::size_t c = 1; c < n_chunks; ++c) {
    acc = combine(std::move(acc), std::move(partial[c]));
  }
  return acc;
}

}  // namespace lumos

// The single wall-clock-reading translation unit in src/ (see the
// `wall-clock` lumos-lint rule, which exempts src/common/clock. so the
// real Clock implementation can exist at all). Everything else takes a
// Clock& and never touches std::chrono clocks directly.
#include "common/clock.h"

#include <chrono>
#include <thread>

namespace lumos {
namespace {

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SteadyClock::SteadyClock() noexcept : epoch_ms_(steady_now_ms()) {}

std::uint64_t SteadyClock::now_ms() {
  const std::uint64_t t = steady_now_ms();
  return t >= epoch_ms_ ? t - epoch_ms_ : 0;
}

void SteadyClock::sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace lumos

// Injectable monotonic time source for the long-running serving loop.
//
// Library code must never read the wall clock directly (the lumos-lint
// `wall-clock` rule bans it in src/): results that depend on real time are
// unreproducible, and the serving soak tests need to script time — advance
// it tick by tick, jump it hours forward, replay a run bit for bit. So
// anything time-dependent takes a Clock&:
//
//   * ManualClock — a virtual clock owned by the test/sim harness. now_ms()
//     returns whatever the harness set; sleep_ms() advances it (a sleeping
//     server "experiences" the wait without stalling the test).
//   * SteadyClock — the one blessed real-time implementation, backed by
//     std::chrono::steady_clock (monotonic: immune to NTP steps and
//     daylight-saving jumps). Its implementation lives in clock.cpp, which
//     is the single wall-clock-exempt file in src/.
//
// Milliseconds in a uint64 cover ~584 million years of uptime; everything
// in the serving layer (deadlines, TTLs, backoff) is ms-granular.
#pragma once

#include <atomic>
#include <cstdint>

namespace lumos {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic milliseconds since an arbitrary epoch (process start for
  /// SteadyClock, construction value for ManualClock). Never decreases.
  virtual std::uint64_t now_ms() = 0;

  /// Blocks (or, for a virtual clock, pretends to block) for `ms`.
  virtual void sleep_ms(std::uint64_t ms) = 0;
};

/// Scriptable clock for tests and deterministic soaks. Thread-safe: time
/// only moves forward via atomic adds, so concurrent readers always see a
/// monotone sequence.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::uint64_t start_ms = 0) noexcept : now_(start_ms) {}

  std::uint64_t now_ms() override { return now_.load(std::memory_order_relaxed); }

  /// A virtual sleep is just the passage of virtual time.
  void sleep_ms(std::uint64_t ms) override { advance_ms(ms); }

  void advance_ms(std::uint64_t ms) noexcept {
    now_.fetch_add(ms, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_;
};

/// Real monotonic clock for production serving loops. now_ms() is relative
/// to the first SteadyClock construction in the process.
class SteadyClock final : public Clock {
 public:
  SteadyClock() noexcept;
  std::uint64_t now_ms() override;
  void sleep_ms(std::uint64_t ms) override;

 private:
  std::uint64_t epoch_ms_;  ///< steady_clock reading captured at construction
};

}  // namespace lumos

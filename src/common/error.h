// Typed error layer for recoverable failure modes. Instead of bare
// std::runtime_error (which callers cannot dispatch on) or a silent
// std::nullopt (which erases the reason), fallible operations return
// Expected<T>: either a value or a lumos::Error carrying a machine-readable
// code plus a human-readable message. Expected<T> intentionally mirrors the
// std::optional access surface (has_value / operator bool / * / ->) so
// optional-returning APIs can migrate without touching every call site.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace lumos {

enum class ErrorCode {
  kNotTrained,       ///< model queried before (successful) train()
  kDatasetTooSmall,  ///< not enough usable rows to fit anything
  kWindowUnusable,   ///< query window cannot produce any feature tier
  kInvalidArgument,  ///< bad configuration value
  kIoError,          ///< file open/read/write failure
  kParseError,       ///< malformed input data
  kBadMagic,         ///< model file does not start with the LUM5 magic
  kVersionMismatch,  ///< model file written by an incompatible format version
  kTruncated,        ///< model file shorter than its header declares
  kCorrupt,          ///< model file checksum mismatch (bit rot / tampering)
  kOverloaded,       ///< request shed: serving queue above its watermark
  kDeadlineExceeded, ///< request expired in the queue before being served
  kShuttingDown,     ///< server no longer admits requests
};

inline const char* to_string(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::kNotTrained: return "not_trained";
    case ErrorCode::kDatasetTooSmall: return "dataset_too_small";
    case ErrorCode::kWindowUnusable: return "window_unusable";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kBadMagic: return "bad_magic";
    case ErrorCode::kVersionMismatch: return "version_mismatch";
    case ErrorCode::kTruncated: return "truncated";
    case ErrorCode::kCorrupt: return "corrupt";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kShuttingDown: return "shutting_down";
  }
  return "?";
}

struct [[nodiscard]] Error {
  ErrorCode code = ErrorCode::kInvalidArgument;
  std::string message;

  std::string describe() const {
    return std::string(to_string(code)) + ": " + message;
  }
};

/// Minimal expected-or-error holder (std::expected is C++23; we target
/// C++20). `value()` on an error throws std::logic_error so misuse is a
/// defined, diagnosable failure rather than UB.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : v_(std::move(value)) {}        // NOLINT(*-explicit-*)
  Expected(Error error) : v_(std::move(error)) {}    // NOLINT(*-explicit-*)

  bool has_value() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return has_value(); }

  T& value() {
    check();
    return std::get<T>(v_);
  }
  const T& value() const {
    check();
    return std::get<T>(v_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Only valid when !has_value().
  const Error& error() const { return std::get<Error>(v_); }

  T value_or(T fallback) const {
    return has_value() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  void check() const {
    if (!has_value()) {
      throw std::logic_error("Expected<T>::value() on error — " +
                             std::get<Error>(v_).describe());
    }
  }

  std::variant<T, Error> v_;
};

/// void specialization: success carries no payload.
template <>
class [[nodiscard]] Expected<void> {
 public:
  Expected() = default;
  Expected(Error error) : err_(std::move(error)) {}  // NOLINT(*-explicit-*)

  bool has_value() const noexcept { return !err_.has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  const Error& error() const { return *err_; }

 private:
  std::optional<Error> err_;
};

}  // namespace lumos

// Contract macros for internal invariants, preconditions and
// postconditions. Three spellings with identical mechanics but distinct
// intent, so a failure message tells the reader *whose* bug it is:
//
//   LUMOS_EXPECTS(cond, msg)  precondition  — the caller passed bad input
//   LUMOS_ENSURES(cond, msg)  postcondition — this function failed its own
//                                             promise
//   LUMOS_ASSERT(cond, msg)   invariant     — internal state is corrupt
//
// All three compile to nothing under NDEBUG (release builds pay zero cost
// on the hot paths they guard); in debug builds a violation prints the
// kind, the failed expression, the message and file:line to stderr, then
// aborts — so a contract break dies loudly at the broken line instead of
// surfacing as a wrong prediction three layers up.
//
// These are for states that are *unreachable unless the code is wrong*.
// Recoverable conditions (bad user config, unusable query window, short
// dataset) must keep returning Expected<T> / lumos::Error — see
// common/error.h and the error-discipline lint rules in tools/lumos_lint.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lumos::detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* msg, const char* file,
                                       int line) noexcept {
  std::fprintf(stderr, "%s:%d: %s violated: (%s) — %s\n", file, line, kind,
               expr, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace lumos::detail

#ifdef NDEBUG
#define LUMOS_CONTRACT_(kind, cond, msg) ((void)0)
#else
#define LUMOS_CONTRACT_(kind, cond, msg)                                  \
  ((cond) ? (void)0                                                       \
          : ::lumos::detail::contract_fail(kind, #cond, msg, __FILE__,    \
                                           __LINE__))
#endif

/// Internal invariant: state reachable only through a bug in this module.
#define LUMOS_ASSERT(cond, msg) LUMOS_CONTRACT_("invariant", cond, msg)
/// Precondition: the caller broke this function's contract.
#define LUMOS_EXPECTS(cond, msg) LUMOS_CONTRACT_("precondition", cond, msg)
/// Postcondition: this function broke its own promise to the caller.
#define LUMOS_ENSURES(cond, msg) LUMOS_CONTRACT_("postcondition", cond, msg)

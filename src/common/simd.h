// Portable SIMD wrapper for the columnar serving kernels (DESIGN §12).
//
// One ISA is selected at compile time — AVX2 (4 doubles/vector, hardware
// gathers), SSE2 (2 doubles, emulated gathers), NEON (2 doubles, emulated
// gathers) — with a scalar build when none is available. The wrapper
// deliberately exposes only operations whose per-lane semantics are
// IEEE-754-identical to the scalar code they replace: lane-wise add / mul
// / div, ordered comparisons (NaN compares false, exactly like a scalar
// `<=`), NaN tests via unordered self-compare, bit blends, and gathers
// that read the same addresses the scalar loop would. No FMA contraction,
// no reassociation, no approximate math: a vectorized kernel built on
// this header produces bit-identical results to its scalar twin, which is
// what lets serve::FlatForest dispatch between the two freely.
//
// Runtime policy: `enabled()` consults LUMOS_SIMD once ("off"/"0" forces
// the scalar path; anything else, or unset, allows the vector path) and
// tests/benches can override in-process via set_enabled(). The kill
// switch exists so the scalar fallback stays exercised (ctest label
// `simd`) and so A/B benches (BM_ColumnarWalkSimd) measure both paths in
// one binary.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#define LUMOS_SIMD_AVX2 1
#elif defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))
#include <emmintrin.h>
#define LUMOS_SIMD_SSE2 1
#elif defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#define LUMOS_SIMD_NEON 1
#endif

namespace lumos::simd {

/// True when the vector kernels should run: the compile-time ISA offers
/// more than one lane AND the LUMOS_SIMD kill switch is not "off". Cached
/// after the first call; never consulted inside a kernel loop.
[[nodiscard]] bool enabled() noexcept;

/// Test/bench override for the runtime switch (does not touch the
/// environment). Passing `true` cannot widen past the compiled ISA: on a
/// scalar build enabled() stays false.
void set_enabled(bool on) noexcept;

/// The compile-time ISA, for logs and bench context.
[[nodiscard]] const char* isa_name() noexcept;

#if defined(LUMOS_SIMD_AVX2)

inline constexpr std::size_t kDoubleWidth = 4;

using VDouble = __m256d;
using VInt32 = __m128i;  ///< one 32-bit lane per double lane

inline VDouble broadcast_f64(double v) noexcept { return _mm256_set1_pd(v); }
inline VInt32 broadcast_i32(std::int32_t v) noexcept {
  return _mm_set1_epi32(v);
}
inline VInt32 load_i32(const std::int32_t* p) noexcept {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
inline void store_i32(std::int32_t* p, VInt32 v) noexcept {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}
inline VDouble load_f64(const double* p) noexcept { return _mm256_loadu_pd(p); }
inline void store_f64(double* p, VDouble v) noexcept {
  _mm256_storeu_pd(p, v);
}

/// out[l] = base[idx[l]] where mask_pd lane is all-ones; other lanes 0.0.
/// Masked-off lanes perform NO memory access (safe for invalid indices).
inline VDouble gather_f64(const double* base, VInt32 idx,
                          VDouble mask_pd) noexcept {
  return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, idx, mask_pd, 8);
}

/// out[l] = base[idx[l]] for every lane (indices must all be in bounds).
inline VInt32 gather_i32(const std::int32_t* base, VInt32 idx) noexcept {
  return _mm_i32gather_epi32(base, idx, 4);
}

inline VDouble add(VDouble a, VDouble b) noexcept { return _mm256_add_pd(a, b); }
inline VDouble mul(VDouble a, VDouble b) noexcept { return _mm256_mul_pd(a, b); }
inline VDouble div(VDouble a, VDouble b) noexcept { return _mm256_div_pd(a, b); }

/// Ordered a <= b: NaN in either operand gives a false (zero) lane,
/// matching the scalar `v <= threshold` the tree walk uses.
inline VDouble cmp_le(VDouble a, VDouble b) noexcept {
  return _mm256_cmp_pd(a, b, _CMP_LE_OQ);
}
/// All-ones lane where a is NaN (unordered self-compare).
inline VDouble is_nan(VDouble a) noexcept {
  return _mm256_cmp_pd(a, a, _CMP_UNORD_Q);
}
inline VDouble bit_and(VDouble a, VDouble b) noexcept {
  return _mm256_and_pd(a, b);
}
inline VDouble bit_andnot(VDouble mask, VDouble a) noexcept {
  return _mm256_andnot_pd(mask, a);  // (~mask) & a
}
inline VDouble bit_or(VDouble a, VDouble b) noexcept {
  return _mm256_or_pd(a, b);
}
/// mask lane all-ones -> a, else b. Bitwise select; mask lanes must be
/// all-ones or all-zeros.
inline VDouble blend_f64(VDouble mask, VDouble a, VDouble b) noexcept {
  return _mm256_blendv_pd(b, a, mask);
}
inline VInt32 blend_i32(VDouble mask_pd, VInt32 a, VInt32 b) noexcept {
  // Narrow the 64-bit lane masks to 32-bit lane masks (both halves of a
  // double lane's mask are identical, so any 32-bit half works).
  const __m128i lo = _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_castpd_si256(mask_pd),
                                  _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0)));
  return _mm_blendv_epi8(b, a, lo);
}
/// Widen 32-bit lane masks to 64-bit double lane masks.
inline VDouble mask_widen(VInt32 mask32) noexcept {
  return _mm256_castsi256_pd(_mm256_cvtepi32_epi64(mask32));
}

inline VInt32 add_i32(VInt32 a, VInt32 b) noexcept {
  return _mm_add_epi32(a, b);
}
inline VInt32 sub_i32(VInt32 a, VInt32 b) noexcept {
  return _mm_sub_epi32(a, b);
}
inline VInt32 mul_i32(VInt32 a, VInt32 b) noexcept {
  return _mm_mullo_epi32(a, b);
}
inline VInt32 and_i32(VInt32 a, VInt32 b) noexcept {
  return _mm_and_si128(a, b);
}
/// All-ones lane where a > b (signed).
inline VInt32 cmp_gt_i32(VInt32 a, VInt32 b) noexcept {
  return _mm_cmpgt_epi32(a, b);
}
/// Arithmetic shift right by 31: lane becomes all-ones when the sign/top
/// bit is set, all-zeros otherwise.
inline VInt32 topbit_mask_i32(VInt32 a) noexcept {
  return _mm_srai_epi32(a, 31);
}
/// One bit per double lane (4 on AVX2); 0 = every lane mask is zero.
inline int movemask(VDouble mask) noexcept { return _mm256_movemask_pd(mask); }
inline int movemask_i32(VInt32 mask) noexcept {
  return _mm_movemask_ps(_mm_castsi128_ps(mask));
}

#elif defined(LUMOS_SIMD_SSE2) || defined(LUMOS_SIMD_NEON)

inline constexpr std::size_t kDoubleWidth = 2;

#if defined(LUMOS_SIMD_SSE2)
using VDouble = __m128d;
#else
using VDouble = float64x2_t;
#endif

/// Two 32-bit lanes, one per double lane. SSE2/NEON have no 64-bit
/// gathers keyed by 32-bit indices, so indices live in a tiny struct and
/// gathers are per-lane scalar loads — still branch-free at the kernel
/// level, and the blend/compare structure is shared with the AVX2 path.
struct VInt32 {
  std::int32_t v[2];
};

inline VInt32 broadcast_i32(std::int32_t x) noexcept { return {{x, x}}; }
inline VInt32 load_i32(const std::int32_t* p) noexcept {
  return {{p[0], p[1]}};
}
inline void store_i32(std::int32_t* p, VInt32 a) noexcept {
  p[0] = a.v[0];
  p[1] = a.v[1];
}
inline VInt32 add_i32(VInt32 a, VInt32 b) noexcept {
  return {{a.v[0] + b.v[0], a.v[1] + b.v[1]}};
}
inline VInt32 sub_i32(VInt32 a, VInt32 b) noexcept {
  return {{a.v[0] - b.v[0], a.v[1] - b.v[1]}};
}
inline VInt32 mul_i32(VInt32 a, VInt32 b) noexcept {
  return {{a.v[0] * b.v[0], a.v[1] * b.v[1]}};
}
inline VInt32 and_i32(VInt32 a, VInt32 b) noexcept {
  return {{a.v[0] & b.v[0], a.v[1] & b.v[1]}};
}
inline VInt32 cmp_gt_i32(VInt32 a, VInt32 b) noexcept {
  return {{a.v[0] > b.v[0] ? -1 : 0, a.v[1] > b.v[1] ? -1 : 0}};
}
inline VInt32 topbit_mask_i32(VInt32 a) noexcept {
  return {{a.v[0] >> 31, a.v[1] >> 31}};
}
inline int movemask_i32(VInt32 a) noexcept {
  return ((a.v[0] < 0) ? 1 : 0) | ((a.v[1] < 0) ? 2 : 0);
}

#if defined(LUMOS_SIMD_SSE2)
inline VDouble broadcast_f64(double v) noexcept { return _mm_set1_pd(v); }
inline VDouble load_f64(const double* p) noexcept { return _mm_loadu_pd(p); }
inline void store_f64(double* p, VDouble v) noexcept { _mm_storeu_pd(p, v); }
inline VDouble add(VDouble a, VDouble b) noexcept { return _mm_add_pd(a, b); }
inline VDouble mul(VDouble a, VDouble b) noexcept { return _mm_mul_pd(a, b); }
inline VDouble div(VDouble a, VDouble b) noexcept { return _mm_div_pd(a, b); }
inline VDouble cmp_le(VDouble a, VDouble b) noexcept {
  return _mm_cmple_pd(a, b);
}
inline VDouble is_nan(VDouble a) noexcept { return _mm_cmpunord_pd(a, a); }
inline VDouble bit_and(VDouble a, VDouble b) noexcept {
  return _mm_and_pd(a, b);
}
inline VDouble bit_andnot(VDouble mask, VDouble a) noexcept {
  return _mm_andnot_pd(mask, a);
}
inline VDouble bit_or(VDouble a, VDouble b) noexcept {
  return _mm_or_pd(a, b);
}
inline VDouble blend_f64(VDouble mask, VDouble a, VDouble b) noexcept {
  return _mm_or_pd(_mm_and_pd(mask, a), _mm_andnot_pd(mask, b));
}
inline int movemask(VDouble mask) noexcept { return _mm_movemask_pd(mask); }
inline VDouble mask_widen(VInt32 mask32) noexcept {
  return _mm_castsi128_pd(_mm_set_epi32(mask32.v[1], mask32.v[1],
                                        mask32.v[0], mask32.v[0]));
}
inline VDouble gather_f64(const double* base, VInt32 idx,
                          VDouble mask_pd) noexcept {
  const int mm = movemask(mask_pd);
  return _mm_set_pd((mm & 2) ? base[idx.v[1]] : 0.0,
                    (mm & 1) ? base[idx.v[0]] : 0.0);
}
inline VInt32 gather_i32(const std::int32_t* base, VInt32 idx) noexcept {
  return {{base[idx.v[0]], base[idx.v[1]]}};
}
#else  // NEON
inline VDouble broadcast_f64(double v) noexcept { return vdupq_n_f64(v); }
inline VDouble load_f64(const double* p) noexcept { return vld1q_f64(p); }
inline void store_f64(double* p, VDouble v) noexcept { vst1q_f64(p, v); }
inline VDouble add(VDouble a, VDouble b) noexcept { return vaddq_f64(a, b); }
inline VDouble mul(VDouble a, VDouble b) noexcept { return vmulq_f64(a, b); }
inline VDouble div(VDouble a, VDouble b) noexcept { return vdivq_f64(a, b); }
inline VDouble cmp_le(VDouble a, VDouble b) noexcept {
  return vreinterpretq_f64_u64(vcleq_f64(a, b));
}
inline VDouble is_nan(VDouble a) noexcept {
  // NaN != NaN: lane is NaN exactly when the equality self-compare fails.
  return vreinterpretq_f64_u32(
      vmvnq_u32(vreinterpretq_u32_u64(vceqq_f64(a, a))));
}
inline VDouble bit_and(VDouble a, VDouble b) noexcept {
  return vreinterpretq_f64_u64(
      vandq_u64(vreinterpretq_u64_f64(a), vreinterpretq_u64_f64(b)));
}
inline VDouble bit_andnot(VDouble mask, VDouble a) noexcept {
  return vreinterpretq_f64_u64(
      vbicq_u64(vreinterpretq_u64_f64(a), vreinterpretq_u64_f64(mask)));
}
inline VDouble bit_or(VDouble a, VDouble b) noexcept {
  return vreinterpretq_f64_u64(
      vorrq_u64(vreinterpretq_u64_f64(a), vreinterpretq_u64_f64(b)));
}
inline VDouble blend_f64(VDouble mask, VDouble a, VDouble b) noexcept {
  return vbslq_f64(vreinterpretq_u64_f64(mask), a, b);
}
inline int movemask(VDouble mask) noexcept {
  const uint64x2_t m = vreinterpretq_u64_f64(mask);
  return static_cast<int>((vgetq_lane_u64(m, 0) >> 63) |
                          ((vgetq_lane_u64(m, 1) >> 63) << 1));
}
inline VDouble mask_widen(VInt32 mask32) noexcept {
  const int64x2_t wide = {static_cast<std::int64_t>(mask32.v[0]),
                          static_cast<std::int64_t>(mask32.v[1])};
  return vreinterpretq_f64_s64(wide);
}
inline VDouble gather_f64(const double* base, VInt32 idx,
                          VDouble mask_pd) noexcept {
  const int mm = movemask(mask_pd);
  const double lane0 = (mm & 1) ? base[idx.v[0]] : 0.0;
  const double lane1 = (mm & 2) ? base[idx.v[1]] : 0.0;
  const float64x2_t out = {lane0, lane1};
  return out;
}
inline VInt32 gather_i32(const std::int32_t* base, VInt32 idx) noexcept {
  return {{base[idx.v[0]], base[idx.v[1]]}};
}
#endif

/// blend_i32: mask comes from the double-lane comparisons.
inline VInt32 blend_i32(VDouble mask_pd, VInt32 a, VInt32 b) noexcept {
  const int mm = movemask(mask_pd);
  return {{(mm & 1) ? a.v[0] : b.v[0], (mm & 2) ? a.v[1] : b.v[1]}};
}

#else  // scalar build: no vector ISA detected

inline constexpr std::size_t kDoubleWidth = 1;

#endif

}  // namespace lumos::simd

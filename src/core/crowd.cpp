#include "core/crowd.h"

#include <cmath>

namespace lumos::core {
namespace {

std::pair<std::int64_t, std::int64_t> cell_key(std::int64_t px,
                                               std::int64_t py,
                                               std::int64_t cell_px) {
  const auto fx = px >= 0 ? px / cell_px : (px - cell_px + 1) / cell_px;
  const auto fy = py >= 0 ? py / cell_px : (py - cell_px + 1) / cell_px;
  return {fx, fy};
}

}  // namespace

CrowdMap CrowdMap::build(const std::vector<Contribution>& uploads,
                         std::int64_t cell_px) {
  CrowdMap out;
  out.cell_px_ = std::max<std::int64_t>(1, cell_px);
  out.n_uploads_ = uploads.size();

  struct UserAcc {
    double sum = 0.0;
    std::size_t n = 0;
  };
  struct CellAcc {
    // Per-contributor accumulation first, so one heavy uploader cannot
    // swamp the between-user statistics.
    std::vector<std::pair<UserAcc, double>> users;  // (acc, weight)
    std::size_t samples = 0;
  };
  std::map<std::pair<std::int64_t, std::int64_t>, CellAcc> acc;

  for (const auto& upload : uploads) {
    std::map<std::pair<std::int64_t, std::int64_t>, UserAcc> mine;
    for (const auto& s : upload.samples.samples()) {
      auto& u = mine[cell_key(s.pixel_x, s.pixel_y, out.cell_px_)];
      u.sum += s.throughput_mbps;
      ++u.n;
    }
    for (const auto& [key, u] : mine) {
      auto& cell = acc[key];
      cell.users.emplace_back(u, upload.weight);
      cell.samples += u.n;
    }
  }

  for (const auto& [key, cell] : acc) {
    CrowdCellStats stats;
    stats.contributors = cell.users.size();
    stats.samples = cell.samples;
    double wsum = 0.0, mean = 0.0;
    for (const auto& [u, w] : cell.users) {
      mean += w * (u.sum / static_cast<double>(u.n));
      wsum += w;
    }
    if (wsum > 0.0) mean /= wsum;
    stats.mean_mbps = mean;
    if (cell.users.size() >= 2 && mean > 0.0) {
      double var = 0.0;
      for (const auto& [u, w] : cell.users) {
        const double m = u.sum / static_cast<double>(u.n);
        var += (m - mean) * (m - mean);
      }
      var /= static_cast<double>(cell.users.size() - 1);
      stats.between_user_cv = std::sqrt(var) / mean;
    }
    out.cells_[key] = stats;
  }
  return out;
}

const CrowdCellStats* CrowdMap::lookup(std::int64_t px,
                                       std::int64_t py) const noexcept {
  const auto it = cells_.find(cell_key(px, py, cell_px_));
  return it == cells_.end() ? nullptr : &it->second;
}

double CrowdMap::fraction_with_support(
    std::size_t min_contributors) const noexcept {
  if (cells_.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& [key, c] : cells_) {
    if (c.contributors >= min_contributors) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(cells_.size());
}

}  // namespace lumos::core

// Crowdsourced map aggregation (paper §2.2 / §8.2): Lumos5G envisions a
// user-carrier collaborative platform where many UEs contribute
// measurement campaigns and the platform fuses them into one throughput
// map. This module merges per-contributor datasets/maps with basic
// quality weighting and reports per-cell contributor counts so consumers
// can judge confidence.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/throughput_map.h"
#include "data/dataset.h"

namespace lumos::core {

/// One contributor's upload: a cleaned dataset plus a device quality
/// weight (e.g. derived from its GPS accuracy history).
struct Contribution {
  data::Dataset samples;
  double weight = 1.0;
};

struct CrowdCellStats {
  std::size_t contributors = 0;   ///< distinct uploads covering the cell
  std::size_t samples = 0;
  double mean_mbps = 0.0;         ///< weighted mean across contributions
  double between_user_cv = 0.0;   ///< dispersion of per-user cell means
};

/// Aggregated crowd map over ~2 m cells (pixel/cell_px grid).
class CrowdMap {
 public:
  [[nodiscard]] static CrowdMap build(const std::vector<Contribution>& uploads,
                        std::int64_t cell_px = 2);

  const std::map<std::pair<std::int64_t, std::int64_t>, CrowdCellStats>&
  cells() const noexcept {
    return cells_;
  }

  [[nodiscard]] const CrowdCellStats* lookup(
      std::int64_t px, std::int64_t py) const noexcept;

  /// Cells covered by at least `min_contributors` distinct uploads —
  /// the "trustworthy" fraction of the map.
  double fraction_with_support(std::size_t min_contributors) const noexcept;

  std::size_t total_contributions() const noexcept { return n_uploads_; }
  std::int64_t cell_px() const noexcept { return cell_px_; }

 private:
  std::map<std::pair<std::int64_t, std::int64_t>, CrowdCellStats> cells_;
  std::int64_t cell_px_ = 2;
  std::size_t n_uploads_ = 0;
};

}  // namespace lumos::core

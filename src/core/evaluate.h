// The experiment harness behind Tables 7, 8 and 9: train one model family
// on one feature-group combination over one dataset, evaluate regression
// (MAE/RMSE) and classification (weighted-average F1, low-class recall)
// on a random 70/30 split (paper §6.1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/features.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/knn.h"
#include "ml/kriging.h"
#include "nn/seq2seq.h"

namespace lumos::core {

enum class ModelKind {
  kGdbt,
  kSeq2Seq,
  kKnn,
  kRandomForest,
  kKriging,       ///< Ordinary Kriging; L group only
  kHarmonicMean,  ///< history-only; ignores the feature spec
};

const char* to_string(ModelKind kind) noexcept;

struct ExperimentConfig {
  data::FeatureConfig features{};
  double train_fraction = 0.7;
  std::uint64_t split_seed = 1234;

  ml::GbdtConfig gbdt{};
  ml::ForestConfig forest{};
  ml::KnnConfig knn{};
  ml::KrigingConfig kriging{};
  nn::Seq2SeqConfig seq2seq{};  ///< input_dim/seq_len filled internally
  std::size_t hm_window = 5;
};

struct EvalResult {
  std::string model;
  std::string feature_group;
  double mae = 0.0;
  double rmse = 0.0;
  double weighted_f1 = 0.0;
  double low_recall = 0.0;
  std::size_t n_train = 0;
  std::size_t n_test = 0;
  bool valid = false;  ///< false when the combination is not applicable
};

/// Runs the full train/eval pipeline for one (model, feature group) cell.
/// Returns valid=false for inapplicable combinations (e.g. Kriging beyond
/// group L, or T groups on a dataset without panel geometry).
[[nodiscard]] EvalResult evaluate_model(ModelKind kind, const data::Dataset& ds,
                          const data::FeatureSetSpec& spec,
                          const ExperimentConfig& cfg = {});

/// One (model, feature group) cell of a Table 7/8/9-style sweep.
struct GridCell {
  ModelKind kind;
  data::FeatureSetSpec spec;
};

/// Evaluates independent grid cells concurrently on the global thread pool
/// (pool size = LUMOS_THREADS). Each cell is trained single-threaded while
/// running on a pool worker (nested parallel regions fall back inline), so
/// every EvalResult is identical to a sequential evaluate_model call.
[[nodiscard]] std::vector<EvalResult> evaluate_grid(const data::Dataset& ds,
                                      std::span<const GridCell> cells,
                                      const ExperimentConfig& cfg = {});

/// Transferability (paper §6.2): train on `train_ds`, test on `test_ds`
/// (e.g. North-panel vs South-panel samples), classification metrics only.
[[nodiscard]] EvalResult evaluate_transfer(ModelKind kind,
                                           const data::Dataset& train_ds,
                             const data::Dataset& test_ds,
                             const data::FeatureSetSpec& spec,
                             const ExperimentConfig& cfg = {});

/// Paired regression predictions on the test split (used by Fig. 16).
struct TracePredictions {
  std::vector<double> actual;
  std::vector<double> predicted;
};
[[nodiscard]] TracePredictions predict_test_trace(ModelKind kind,
                                                  const data::Dataset& ds,
                                    const data::FeatureSetSpec& spec,
                                    const ExperimentConfig& cfg,
                                    std::size_t max_points = 200);

}  // namespace lumos::core

// Lumos5G — the user-facing prediction facade (paper §2.3, Fig. 4).
// A 5G-aware app trains (or downloads) a predictor for its area and
// feature-group combination, then queries it online with the UE's recent
// context window to drive decisions like initial-bitrate selection or
// bitrate adaptation.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/features.h"
#include "ml/gbdt.h"

namespace lumos::core {

struct Lumos5GConfig {
  data::FeatureSetSpec feature_spec = data::FeatureSetSpec::parse("L+M");
  data::FeatureConfig features{};
  ml::GbdtConfig gbdt{};
};

/// Prediction made for one context window.
struct Prediction {
  double throughput_mbps = 0.0;
  int throughput_class = 0;  ///< 0 low / 1 medium / 2 high (paper §5.2)
};

class Lumos5G {
 public:
  explicit Lumos5G(Lumos5GConfig cfg = {});

  /// Trains the GDBT regressor + classifier pair on a (cleaned) dataset.
  void train(const data::Dataset& ds);

  /// Predicts the next-slot throughput from the UE's recent samples (the
  /// last element is "now"). Returns nullopt when the window cannot
  /// produce the configured features.
  std::optional<Prediction> predict(
      std::span<const data::SampleRecord> recent) const;

  bool trained() const noexcept { return trained_; }
  const std::vector<std::string>& feature_names() const noexcept {
    return feature_names_;
  }

  /// GDBT global gain importance, aligned with feature_names() (Fig. 22).
  std::vector<double> feature_importance() const;

  const Lumos5GConfig& config() const noexcept { return cfg_; }

 private:
  Lumos5GConfig cfg_;
  ml::GbdtRegressor regressor_;
  ml::GbdtClassifier classifier_;
  std::vector<std::string> feature_names_;
  bool trained_ = false;
};

}  // namespace lumos::core

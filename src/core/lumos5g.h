// Lumos5G — the user-facing prediction facade (paper §2.3, Fig. 4).
// A 5G-aware app trains (or downloads) a predictor for its area and
// feature-group combination, then queries it online with the UE's recent
// context window to drive decisions like initial-bitrate selection or
// bitrate adaptation.
//
// Robustness: prediction degrades gracefully instead of failing. The
// facade maintains a fallback chain of feature tiers (e.g. T+M+C → L+M+C
// → L+M); when the query window cannot produce the primary tier's
// features — panels unsurveyed, GPS outage mid-window, lag history
// interrupted — the first tier that CAN fire answers, and the chosen tier
// is reported on the Prediction. A final non-ML tail (harmonic mean of
// recent throughput, the classic ABR estimator) catches windows no model
// tier can serve. Fallible operations return Expected<T> with a typed
// lumos::Error instead of throwing or silently returning nullopt.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "data/dataset.h"
#include "data/features.h"
#include "ml/gbdt.h"

namespace lumos::core {

/// Graceful-degradation policy for prediction.
struct FallbackConfig {
  bool enabled = true;

  /// Explicit tier chain, most capable first. Leave empty to derive it
  /// from the primary feature spec: drop T (adding L so location signal
  /// survives), then drop C (lag features are the most fragile input).
  /// The primary spec is always tier 0 whether listed here or not.
  std::vector<data::FeatureSetSpec> tiers;

  /// Final non-ML tail: harmonic mean of the most recent finite
  /// throughput samples when no model tier can fire.
  bool harmonic_tail = true;
  std::size_t harmonic_window = 5;
};

struct Lumos5GConfig {
  data::FeatureSetSpec feature_spec = data::FeatureSetSpec::parse("L+M");
  data::FeatureConfig features{};
  ml::GbdtConfig gbdt{};
  FallbackConfig fallback{};
};

/// Prediction made for one context window.
struct Prediction {
  double throughput_mbps = 0.0;
  int throughput_class = 0;  ///< 0 low / 1 medium / 2 high (paper §5.2)
  /// Which tier answered: index into Lumos5G::tier_specs() for a model
  /// tier; tier_specs().size() for the harmonic-mean tail.
  int tier = 0;
  /// Feature-group name of the answering tier ("T+M+C", "L+M", ...), or
  /// "harmonic" for the tail.
  std::string feature_group;
};

class Lumos5G {
 public:
  explicit Lumos5G(Lumos5GConfig cfg = {});

  /// Trains a GDBT regressor + classifier pair for every tier of the
  /// fallback chain the dataset can support (>= kMinTrainRows usable
  /// feature rows). Errors with kDatasetTooSmall when no tier is
  /// trainable.
  Expected<void> train(const data::Dataset& ds);

  /// Predicts the next-slot throughput from the UE's recent samples (the
  /// last element is "now"). Walks the fallback chain: the first trained
  /// tier whose features the window can produce answers. Errors with
  /// kNotTrained before a successful train() and kWindowUnusable when no
  /// tier (nor the harmonic tail) can serve the window.
  Expected<Prediction> predict(
      std::span<const data::SampleRecord> recent) const;

  /// True once train() has fit at least one tier.
  bool trained() const noexcept { return trained_; }

  /// Feature names of the best trained tier (the one tier-0 queries use);
  /// primary-spec names before training.
  const std::vector<std::string>& feature_names() const noexcept;

  /// GDBT global gain importance of the best trained tier, aligned with
  /// feature_names() (Fig. 22). Errors with kNotTrained before train().
  Expected<std::vector<double>> feature_importance() const;

  /// The model tier chain, most capable first; tier 0 is the primary spec.
  const std::vector<data::FeatureSetSpec>& tier_specs() const noexcept {
    return tier_specs_;
  }
  /// Whether tier `i` was successfully fit by the last train().
  bool tier_trained(std::size_t i) const noexcept {
    return i < tiers_.size() && tiers_[i].trained;
  }

  const Lumos5GConfig& config() const noexcept { return cfg_; }

  // --- fitted-state access for serialization (serve/model_io) ---
  /// Models of tier `i`; only meaningful when tier_trained(i).
  const ml::GbdtRegressor& tier_regressor(std::size_t i) const noexcept {
    return tiers_[i].regressor;
  }
  const ml::GbdtClassifier& tier_classifier(std::size_t i) const noexcept {
    return tiers_[i].classifier;
  }

  /// Reinstates tier `i` from deserialized models and marks it trained.
  /// The facade must have been constructed with the same config that was
  /// saved, so the tier chain (and feature names) line up.
  void restore_tier(std::size_t i, ml::GbdtRegressor regressor,
                    ml::GbdtClassifier classifier) {
    tiers_[i].regressor = std::move(regressor);
    tiers_[i].classifier = std::move(classifier);
    tiers_[i].trained = true;
    trained_ = true;
  }

  /// Minimum usable feature rows for a tier to be trainable.
  static constexpr std::size_t kMinTrainRows = 10;

 private:
  struct Tier {
    ml::GbdtRegressor regressor;
    ml::GbdtClassifier classifier;
    std::vector<std::string> names;
    bool trained = false;
  };

  /// Index of the best (lowest) trained tier; 0 before training.
  std::size_t best_tier() const noexcept;

  Lumos5GConfig cfg_;
  std::vector<data::FeatureSetSpec> tier_specs_;
  std::vector<Tier> tiers_;
  // Precomputed at construction so predict() never formats a group name or
  // recomputes a row width per call (both would allocate on the hot path).
  std::vector<std::string> tier_group_names_;
  std::vector<std::size_t> tier_widths_;
  std::size_t max_width_ = 0;
  bool trained_ = false;
};

}  // namespace lumos::core

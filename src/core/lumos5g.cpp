#include "core/lumos5g.h"

#include <stdexcept>

namespace lumos::core {

Lumos5G::Lumos5G(Lumos5GConfig cfg)
    : cfg_(std::move(cfg)),
      regressor_(cfg_.gbdt),
      classifier_(cfg_.gbdt),
      feature_names_(data::feature_names(cfg_.feature_spec, cfg_.features)) {}

void Lumos5G::train(const data::Dataset& ds) {
  const auto built =
      data::build_features(ds, cfg_.feature_spec, cfg_.features);
  if (built.x.rows() < 10) {
    throw std::runtime_error(
        "Lumos5G::train: dataset too small for the configured features");
  }
  regressor_.fit(built.x, built.y_reg);
  classifier_.fit(built.x, built.y_cls, data::kNumThroughputClasses);
  trained_ = true;
}

std::optional<Prediction> Lumos5G::predict(
    std::span<const data::SampleRecord> recent) const {
  if (!trained_) return std::nullopt;
  const auto row = data::feature_row_from_window(recent, cfg_.feature_spec,
                                                 cfg_.features);
  if (!row) return std::nullopt;
  Prediction p;
  p.throughput_mbps = regressor_.predict(*row);
  p.throughput_class = classifier_.predict(*row);
  return p;
}

std::vector<double> Lumos5G::feature_importance() const {
  return regressor_.feature_importance();
}

}  // namespace lumos::core

#include "core/lumos5g.h"

#include <algorithm>
#include <cmath>

namespace lumos::core {
namespace {

/// Derives the fallback chain from the primary spec: drop T first (adding
/// L so a location signal survives — panel geometry is the input most
/// often unavailable), then drop C (lag features need an uninterrupted
/// history and are the most fragile at query time).
std::vector<data::FeatureSetSpec> derive_tiers(
    const data::FeatureSetSpec& primary, const FallbackConfig& fb) {
  std::vector<data::FeatureSetSpec> chain{primary};
  const auto push_unique = [&chain](const data::FeatureSetSpec& s) {
    if (!s.L && !s.M && !s.T && !s.C) return;  // empty spec is not a tier
    if (std::find(chain.begin(), chain.end(), s) == chain.end()) {
      chain.push_back(s);
    }
  };
  if (!fb.enabled) return chain;
  if (!fb.tiers.empty()) {
    for (const auto& s : fb.tiers) push_unique(s);
    return chain;
  }
  if (primary.T) {
    data::FeatureSetSpec s = primary;
    s.T = false;
    s.L = true;
    push_unique(s);
  }
  data::FeatureSetSpec last = chain.back();
  if (last.C) {
    last.C = false;
    push_unique(last);
  }
  return chain;
}

}  // namespace

Lumos5G::Lumos5G(Lumos5GConfig cfg)
    : cfg_(std::move(cfg)),
      tier_specs_(derive_tiers(cfg_.feature_spec, cfg_.fallback)) {
  tiers_.reserve(tier_specs_.size());
  tier_group_names_.reserve(tier_specs_.size());
  tier_widths_.reserve(tier_specs_.size());
  for (const auto& spec : tier_specs_) {
    tiers_.push_back(Tier{ml::GbdtRegressor(cfg_.gbdt),
                          ml::GbdtClassifier(cfg_.gbdt),
                          data::feature_names(spec, cfg_.features), false});
    tier_group_names_.push_back(spec.name());
    tier_widths_.push_back(data::feature_width(spec, cfg_.features));
    max_width_ = std::max(max_width_, tier_widths_.back());
  }
}

std::size_t Lumos5G::best_tier() const noexcept {
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (tiers_[i].trained) return i;
  }
  return 0;
}

Expected<void> Lumos5G::train(const data::Dataset& ds) {
  trained_ = false;
  std::size_t best_rows = 0;
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    Tier& tier = tiers_[i];
    tier.trained = false;
    const auto built =
        data::build_features(ds, tier_specs_[i], cfg_.features);
    best_rows = std::max(best_rows, built.x.rows());
    if (built.x.rows() < kMinTrainRows) continue;
    tier.regressor = ml::GbdtRegressor(cfg_.gbdt);
    tier.classifier = ml::GbdtClassifier(cfg_.gbdt);
    tier.regressor.fit(built.x, built.y_reg);
    tier.classifier.fit(built.x, built.y_cls, data::kNumThroughputClasses);
    tier.trained = true;
    trained_ = true;
  }
  if (!trained_) {
    return Error{ErrorCode::kDatasetTooSmall,
                 "Lumos5G::train: no fallback tier has >= " +
                     std::to_string(kMinTrainRows) +
                     " usable feature rows (best tier had " +
                     std::to_string(best_rows) + ")"};
  }
  return {};
}

Expected<Prediction> Lumos5G::predict(
    std::span<const data::SampleRecord> recent) const {
  if (!trained_) {
    return Error{ErrorCode::kNotTrained,
                 "Lumos5G::predict: train() has not succeeded yet"};
  }
  // Per-thread row arena, as in serve::Predictor::predict: sized once to
  // the widest tier, fully overwritten by feature_row_into before use.
  thread_local std::vector<double> row_arena;
  if (row_arena.size() < max_width_) {
    row_arena.resize(max_width_);  // lumos-lint: allow(hot-path-alloc) amortized thread-local arena growth
  }
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    const Tier& tier = tiers_[i];
    if (!tier.trained) continue;
    const std::span<double> row{row_arena.data(), tier_widths_[i]};
    if (!data::feature_row_into(recent, tier_specs_[i], cfg_.features, row)) {
      continue;
    }
    Prediction p;
    p.throughput_mbps = tier.regressor.predict(row);
    p.throughput_class = tier.classifier.predict(row);
    p.tier = static_cast<int>(i);
    p.feature_group = tier_group_names_[i];  // SSO copy: group names are short
    return p;
  }
  if (cfg_.fallback.enabled && cfg_.fallback.harmonic_tail) {
    // Harmonic mean of the most recent positive finite throughputs — the
    // classic ABR estimator; robust to a single outlier spike.
    double inv_sum = 0.0;
    std::size_t n = 0;
    for (std::size_t k = recent.size();
         k-- > 0 && n < cfg_.fallback.harmonic_window;) {
      const double v = recent[k].throughput_mbps;
      if (std::isfinite(v) && v > 0.0) {
        inv_sum += 1.0 / v;
        ++n;
      }
    }
    if (n > 0) {
      Prediction p;
      p.throughput_mbps = static_cast<double>(n) / inv_sum;
      p.throughput_class =
          data::throughput_class(p.throughput_mbps, cfg_.features);
      p.tier = static_cast<int>(tier_specs_.size());
      p.feature_group = "harmonic";
      return p;
    }
  }
  // Static message: the hot path never formats (see lumos_lint's
  // hot-path-alloc pass); the typed code is the contract.
  return Error{ErrorCode::kWindowUnusable, "window unusable"};
}

const std::vector<std::string>& Lumos5G::feature_names() const noexcept {
  return tiers_[best_tier()].names;
}

Expected<std::vector<double>> Lumos5G::feature_importance() const {
  if (!trained_) {
    return Error{ErrorCode::kNotTrained,
                 "Lumos5G::feature_importance: train() has not succeeded yet"};
  }
  return tiers_[best_tier()].regressor.feature_importance();
}

}  // namespace lumos::core

#include "core/evaluate.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "common/parallel.h"
#include "data/split.h"
#include "ml/harmonic.h"
#include "ml/metrics.h"

namespace lumos::core {
namespace {

using data::BuiltFeatures;
using data::FeatureSetSpec;

/// True when enough of the dataset carries panel geometry to train
/// tower-based features. The paper's "Global" T rows use only the areas
/// with surveyed panels (§6.2) — feature building drops the rest — so a
/// sizeable minority with geometry is sufficient.
bool dataset_supports_T(const data::Dataset& ds) {
  if (ds.empty()) return false;
  std::size_t with = 0;
  for (const auto& s : ds.samples()) {
    if (s.has_panel_geometry()) ++with;
  }
  return with * 10 >= ds.size() * 3;  // >= 30%
}

void fill_classification_metrics(std::span<const int> pred,
                                 std::span<const int> truth,
                                 EvalResult& out) {
  const auto cm =
      ml::confusion_matrix(pred, truth, data::kNumThroughputClasses);
  out.weighted_f1 = ml::weighted_f1(cm);
  out.low_recall = ml::recall_of(cm, 0);
}

std::vector<int> classify_predictions(std::span<const double> pred,
                                      const data::FeatureConfig& fc) {
  std::vector<int> cls;
  cls.reserve(pred.size());
  for (double p : pred) cls.push_back(data::throughput_class(p, fc));
  return cls;
}

std::unique_ptr<ml::Regressor> make_regressor(ModelKind kind,
                                              const ExperimentConfig& cfg) {
  switch (kind) {
    case ModelKind::kGdbt:
      return std::make_unique<ml::GbdtRegressor>(cfg.gbdt);
    case ModelKind::kKnn:
      return std::make_unique<ml::KnnRegressor>(cfg.knn);
    case ModelKind::kRandomForest:
      return std::make_unique<ml::RandomForestRegressor>(cfg.forest);
    case ModelKind::kKriging:
      return std::make_unique<ml::OrdinaryKriging>(cfg.kriging);
    default:
      return nullptr;
  }
}

std::unique_ptr<ml::Classifier> make_classifier(ModelKind kind,
                                                const ExperimentConfig& cfg) {
  switch (kind) {
    case ModelKind::kGdbt:
      return std::make_unique<ml::GbdtClassifier>(cfg.gbdt);
    case ModelKind::kKnn:
      return std::make_unique<ml::KnnClassifier>(cfg.knn);
    case ModelKind::kRandomForest:
      return std::make_unique<ml::RandomForestClassifier>(cfg.forest);
    default:
      return nullptr;  // Kriging classifies via thresholded regression
  }
}

EvalResult eval_tabular(ModelKind kind, const BuiltFeatures& built,
                        const data::SplitIndices& split,
                        const ExperimentConfig& cfg) {
  EvalResult out;
  const auto x_train = data::subset(built.x, split.train);
  const auto x_test = data::subset(built.x, split.test);
  const auto y_train = data::subset(built.y_reg, split.train);
  const auto y_test = data::subset(built.y_reg, split.test);
  const auto c_train = data::subset(built.y_cls, split.train);
  const auto c_test = data::subset(built.y_cls, split.test);
  out.n_train = split.train.size();
  out.n_test = split.test.size();

  auto reg = make_regressor(kind, cfg);
  reg->fit(x_train, y_train);
  const auto pred = reg->predict_all(x_test);
  out.mae = ml::mae(pred, y_test);
  out.rmse = ml::rmse(pred, y_test);

  if (auto cls = make_classifier(kind, cfg)) {
    cls->fit(x_train, c_train, data::kNumThroughputClasses);
    const auto cpred = cls->predict_all(x_test);
    fill_classification_metrics(cpred, c_test, out);
  } else {
    const auto cpred = classify_predictions(pred, cfg.features);
    fill_classification_metrics(cpred, c_test, out);
  }
  out.valid = true;
  return out;
}

EvalResult eval_seq2seq(const data::Dataset& ds, const FeatureSetSpec& spec,
                        const ExperimentConfig& cfg) {
  EvalResult out;
  data::SequenceConfig seq_cfg;
  seq_cfg.seq_len = cfg.seq2seq.seq_len;
  seq_cfg.out_len = cfg.seq2seq.out_len;
  auto built = data::build_sequences(ds, spec, cfg.features, seq_cfg);
  if (built.samples.size() < 50) return out;

  // Recode the absolute pixel coordinates for the sequence model: on
  // multi-area (Global) data the inter-area pixel offsets are ~1e4x the
  // within-area variation, so a single affine standardization washes out
  // all location signal for the LSTM (GDBT's axis splits are unaffected).
  // Each area's pixels are centered and scaled to meters-ish units, plus
  // a small per-area offset that preserves the area identity the absolute
  // coordinates carried. Unsupervised, information-preserving.
  if (spec.L) {
    struct AreaCode {
      double cx = 0.0, cy = 0.0;
      std::size_t n = 0;
      double offset = 0.0;
    };
    std::map<std::string, AreaCode> acc;
    for (std::size_t i = 0; i < built.samples.size(); ++i) {
      const auto& s = ds[built.source_index[i]];
      auto& slot = acc[s.area];
      slot.cx += static_cast<double>(s.pixel_x);
      slot.cy += static_cast<double>(s.pixel_y);
      ++slot.n;
    }
    double next_offset = 0.0;
    for (auto& [area, slot] : acc) {
      slot.cx /= static_cast<double>(slot.n);
      slot.cy /= static_cast<double>(slot.n);
      slot.offset = next_offset;
      next_offset += 600.0;  // ~well-separated in scaled units
    }
    const std::size_t dim = built.input_dim;
    for (std::size_t i = 0; i < built.samples.size(); ++i) {
      const AreaCode& code = acc[ds[built.source_index[i]].area];
      auto& x = built.samples[i].x;
      for (std::size_t t = 0; t * dim < x.size(); ++t) {
        x[t * dim + 0] = (x[t * dim + 0] - code.cx) + code.offset;
        x[t * dim + 1] = (x[t * dim + 1] - code.cy) + code.offset;
      }
    }
  }

  // Bound the training-set size so the CPU-budgeted Seq2Seq stays fast on
  // large (Global-scale) datasets: deterministic stride subsample.
  constexpr std::size_t kMaxWindows = 6000;
  if (built.samples.size() > kMaxWindows) {
    std::vector<nn::SeqSample> sub;
    std::vector<std::size_t> src;
    sub.reserve(kMaxWindows);
    const double step = static_cast<double>(built.samples.size()) /
                        static_cast<double>(kMaxWindows);
    for (std::size_t i = 0; i < kMaxWindows; ++i) {
      const auto idx =
          static_cast<std::size_t>(static_cast<double>(i) * step);
      sub.push_back(std::move(built.samples[idx]));
      src.push_back(built.source_index[idx]);
    }
    built.samples = std::move(sub);
    built.source_index = std::move(src);
  }

  const auto split = data::train_test_split(
      built.samples.size(), cfg.train_fraction, cfg.split_seed);
  out.n_train = split.train.size();
  out.n_test = split.test.size();

  auto train = data::subset(built.samples, split.train);
  auto test = data::subset(built.samples, split.test);

  data::Standardizer scaler;
  scaler.fit_sequences(train, built.input_dim);
  scaler.transform_sequences(train);
  scaler.transform_sequences(test);

  std::vector<double> y_train_flat;
  for (const auto& s : train) {
    y_train_flat.insert(y_train_flat.end(), s.y.begin(), s.y.end());
  }
  data::TargetScaler target;
  target.fit(y_train_flat);
  // Keep raw test targets for metric computation before scaling.
  std::vector<double> y_test;
  y_test.reserve(test.size());
  for (const auto& s : test) y_test.push_back(s.y.front());
  target.transform_sequence_targets(train);

  nn::Seq2SeqConfig net_cfg = cfg.seq2seq;
  net_cfg.input_dim = built.input_dim;
  nn::Seq2Seq net(net_cfg);
  net.fit(train);

  std::vector<double> pred;
  pred.reserve(test.size());
  for (const auto& s : test) {
    pred.push_back(target.inverse(net.predict(s.x).front()));
  }
  out.mae = ml::mae(pred, y_test);
  out.rmse = ml::rmse(pred, y_test);
  const auto cpred = classify_predictions(pred, cfg.features);
  std::vector<int> ctruth;
  ctruth.reserve(y_test.size());
  for (double v : y_test) {
    ctruth.push_back(data::throughput_class(v, cfg.features));
  }
  fill_classification_metrics(cpred, ctruth, out);
  out.valid = true;
  return out;
}

EvalResult eval_harmonic(const data::Dataset& ds,
                         const ExperimentConfig& cfg) {
  EvalResult out;
  const ml::HarmonicMeanPredictor hm(cfg.hm_window);
  std::vector<double> pred, truth;
  std::size_t history_samples = 0;
  for (const auto& trace : ds.throughput_traces()) {
    if (trace.size() < cfg.hm_window + 2) continue;
    history_samples += cfg.hm_window;  // warm-up samples never predicted
    for (std::size_t i = cfg.hm_window; i < trace.size(); ++i) {
      pred.push_back(
          hm.predict_next(std::span<const double>(trace).subspan(0, i)));
      truth.push_back(trace[i]);
    }
  }
  if (pred.empty()) return out;
  out.n_train = history_samples;
  out.n_test = pred.size();
  out.mae = ml::mae(pred, truth);
  out.rmse = ml::rmse(pred, truth);
  const auto cpred = classify_predictions(pred, cfg.features);
  std::vector<int> ctruth;
  ctruth.reserve(truth.size());
  for (double v : truth) ctruth.push_back(data::throughput_class(v, cfg.features));
  fill_classification_metrics(cpred, ctruth, out);
  out.valid = true;
  return out;
}

}  // namespace

const char* to_string(ModelKind kind) noexcept {
  switch (kind) {
    case ModelKind::kGdbt: return "GDBT";
    case ModelKind::kSeq2Seq: return "Seq2Seq";
    case ModelKind::kKnn: return "KNN";
    case ModelKind::kRandomForest: return "RF";
    case ModelKind::kKriging: return "OK";
    case ModelKind::kHarmonicMean: return "HM";
  }
  return "?";
}

EvalResult evaluate_model(ModelKind kind, const data::Dataset& ds,
                          const data::FeatureSetSpec& spec,
                          const ExperimentConfig& cfg) {
  EvalResult out;
  out.model = to_string(kind);
  out.feature_group = spec.name();

  if (kind == ModelKind::kHarmonicMean) {
    EvalResult r = eval_harmonic(ds, cfg);
    r.model = out.model;
    r.feature_group = "history";
    return r;
  }
  if (spec.T && !dataset_supports_T(ds)) return out;  // paper: Loop has no T
  if (kind == ModelKind::kKriging &&
      (spec.M || spec.T || spec.C || !spec.L)) {
    return out;  // OK is a pure spatial interpolator (Table 9 footnote)
  }
  if (kind == ModelKind::kSeq2Seq) {
    EvalResult r = eval_seq2seq(ds, spec, cfg);
    r.model = out.model;
    r.feature_group = out.feature_group;
    return r;
  }

  const auto built = data::build_features(ds, spec, cfg.features);
  if (built.x.rows() < 50) return out;
  const auto split = data::train_test_split(built.x.rows(),
                                            cfg.train_fraction, cfg.split_seed);
  EvalResult r = eval_tabular(kind, built, split, cfg);
  r.model = out.model;
  r.feature_group = out.feature_group;
  return r;
}

std::vector<EvalResult> evaluate_grid(const data::Dataset& ds,
                                      std::span<const GridCell> cells,
                                      const ExperimentConfig& cfg) {
  std::vector<EvalResult> out(cells.size());
  // One cell per chunk: cells differ wildly in cost (Seq2Seq vs KNN), so
  // fine chunking lets the pool balance them. Cells only read `ds`/`cfg`
  // and write their own slot — no shared mutable state.
  parallel_for(0, cells.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      out[i] = evaluate_model(cells[i].kind, ds, cells[i].spec, cfg);
    }
  });
  return out;
}

EvalResult evaluate_transfer(ModelKind kind, const data::Dataset& train_ds,
                             const data::Dataset& test_ds,
                             const data::FeatureSetSpec& spec,
                             const ExperimentConfig& cfg) {
  EvalResult out;
  out.model = to_string(kind);
  out.feature_group = spec.name();
  const auto train = data::build_features(train_ds, spec, cfg.features);
  const auto test = data::build_features(test_ds, spec, cfg.features);
  if (train.x.rows() < 50 || test.x.rows() < 20) return out;
  out.n_train = train.x.rows();
  out.n_test = test.x.rows();

  auto reg = make_regressor(kind, cfg);
  if (!reg) return out;
  reg->fit(train.x, train.y_reg);
  const auto pred = reg->predict_all(test.x);
  out.mae = ml::mae(pred, test.y_reg);
  out.rmse = ml::rmse(pred, test.y_reg);

  if (auto cls = make_classifier(kind, cfg)) {
    cls->fit(train.x, train.y_cls, data::kNumThroughputClasses);
    const auto cpred = cls->predict_all(test.x);
    fill_classification_metrics(cpred, test.y_cls, out);
  } else {
    const auto cpred = classify_predictions(pred, cfg.features);
    fill_classification_metrics(cpred, test.y_cls, out);
  }
  out.valid = true;
  return out;
}

TracePredictions predict_test_trace(ModelKind kind, const data::Dataset& ds,
                                    const data::FeatureSetSpec& spec,
                                    const ExperimentConfig& cfg,
                                    std::size_t max_points) {
  TracePredictions out;
  const auto built = data::build_features(ds, spec, cfg.features);
  if (built.x.rows() < 50) return out;
  const auto split = data::train_test_split(built.x.rows(),
                                            cfg.train_fraction, cfg.split_seed);
  const auto x_train = data::subset(built.x, split.train);
  const auto y_train = data::subset(built.y_reg, split.train);

  auto reg = make_regressor(kind, cfg);
  if (!reg) return out;
  reg->fit(x_train, y_train);
  const std::size_t n = std::min(max_points, split.test.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = split.test[i];
    out.actual.push_back(built.y_reg[idx]);
    out.predicted.push_back(reg->predict(built.x.row(idx)));
  }
  return out;
}

}  // namespace lumos::core

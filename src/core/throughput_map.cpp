#include "core/throughput_map.h"

#include <algorithm>
#include <cmath>

namespace lumos::core {
namespace {

std::pair<std::int64_t, std::int64_t> cell_key(std::int64_t px,
                                               std::int64_t py,
                                               std::int64_t cell_px) {
  const auto fx =
      px >= 0 ? px / cell_px : (px - cell_px + 1) / cell_px;
  const auto fy =
      py >= 0 ? py / cell_px : (py - cell_px + 1) / cell_px;
  return {fx, fy};
}

char glyph(double mean_mbps) noexcept {
  if (mean_mbps >= 1000.0) return '#';
  if (mean_mbps >= 700.0) return '+';
  if (mean_mbps >= 300.0) return 'o';
  if (mean_mbps >= 60.0) return '.';
  return '_';
}

}  // namespace

ThroughputMap ThroughputMap::build(const data::Dataset& ds,
                                   std::int64_t cell_px) {
  ThroughputMap map;
  map.cell_px_ = std::max<std::int64_t>(1, cell_px);

  struct Acc {
    std::size_t n = 0;
    double sum = 0.0;
    double sumsq = 0.0;
    std::size_t n5g = 0;
  };
  std::map<std::pair<std::int64_t, std::int64_t>, Acc> acc;
  for (const auto& s : ds.samples()) {
    auto& a = acc[cell_key(s.pixel_x, s.pixel_y, map.cell_px_)];
    ++a.n;
    a.sum += s.throughput_mbps;
    a.sumsq += s.throughput_mbps * s.throughput_mbps;
    if (s.radio_type == data::RadioType::kNrMmWave) ++a.n5g;
    ++map.total_samples_;
    if (s.radio_type == data::RadioType::kNrMmWave) ++map.samples_5g_;
  }
  for (const auto& [key, a] : acc) {
    CellStats c;
    c.count = a.n;
    c.mean_mbps = a.sum / static_cast<double>(a.n);
    const double var =
        std::max(0.0, a.sumsq / static_cast<double>(a.n) -
                          c.mean_mbps * c.mean_mbps);
    c.stddev_mbps = std::sqrt(var);
    c.cv = c.mean_mbps > 0.0 ? c.stddev_mbps / c.mean_mbps : 0.0;
    c.coverage_5g = static_cast<double>(a.n5g) / static_cast<double>(a.n);
    map.cells_[key] = c;
  }
  return map;
}

const CellStats* ThroughputMap::lookup(std::int64_t px,
                                       std::int64_t py) const noexcept {
  const auto it = cells_.find(cell_key(px, py, cell_px_));
  return it == cells_.end() ? nullptr : &it->second;
}

double ThroughputMap::fraction_above(double threshold_mbps) const noexcept {
  if (cells_.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& [key, c] : cells_) {
    if (c.mean_mbps > threshold_mbps) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(cells_.size());
}

double ThroughputMap::coverage_5g() const noexcept {
  if (total_samples_ == 0) return 0.0;
  return static_cast<double>(samples_5g_) /
         static_cast<double>(total_samples_);
}

std::string ThroughputMap::render_ascii(int max_dim) const {
  if (cells_.empty()) return "(empty map)\n";
  std::int64_t min_x = cells_.begin()->first.first, max_x = min_x;
  std::int64_t min_y = cells_.begin()->first.second, max_y = min_y;
  for (const auto& [key, c] : cells_) {
    min_x = std::min(min_x, key.first);
    max_x = std::max(max_x, key.first);
    min_y = std::min(min_y, key.second);
    max_y = std::max(max_y, key.second);
  }
  // Down-sample if the extent exceeds max_dim.
  const std::int64_t w = max_x - min_x + 1;
  const std::int64_t h = max_y - min_y + 1;
  const std::int64_t step =
      std::max<std::int64_t>(1, std::max(w, h) / std::max(1, max_dim));

  std::string out;
  for (std::int64_t y = min_y; y <= max_y; y += step) {
    for (std::int64_t x = min_x; x <= max_x; x += step) {
      // Aggregate the step x step block.
      double sum = 0.0;
      std::size_t n = 0;
      for (std::int64_t dy = 0; dy < step; ++dy) {
        for (std::int64_t dx = 0; dx < step; ++dx) {
          const auto it = cells_.find({x + dx, y + dy});
          if (it != cells_.end()) {
            sum += it->second.mean_mbps * static_cast<double>(it->second.count);
            n += it->second.count;
          }
        }
      }
      out += n == 0 ? ' ' : glyph(sum / static_cast<double>(n));
    }
    out += '\n';
  }
  return out;
}

}  // namespace lumos::core

// The 5G throughput map (paper Figs. 3c and 6): per-grid-cell aggregate
// statistics over all measurements, renderable as a text heatmap and
// queryable by apps. Cells follow the paper's ~2m x 2m convention (grid of
// pixelized zoom-17 coordinates).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "data/dataset.h"

namespace lumos::core {

struct CellStats {
  std::size_t count = 0;
  double mean_mbps = 0.0;
  double stddev_mbps = 0.0;
  double cv = 0.0;            ///< coefficient of variation
  double coverage_5g = 0.0;   ///< fraction of seconds attached to 5G
};

class ThroughputMap {
 public:
  /// Builds a map from a cleaned dataset. `cell_px` merges that many zoom
  /// pixels per cell edge (2 -> ~2 m cells).
  [[nodiscard]] static ThroughputMap build(const data::Dataset& ds,
                                           std::int64_t cell_px = 2);

  const std::map<std::pair<std::int64_t, std::int64_t>, CellStats>& cells()
      const noexcept {
    return cells_;
  }

  /// Stats of the cell containing pixel (px, py); nullptr if unmeasured.
  [[nodiscard]] const CellStats* lookup(std::int64_t px,
                                        std::int64_t py) const noexcept;

  /// Fraction of measured cells whose mean exceeds `threshold_mbps`.
  double fraction_above(double threshold_mbps) const noexcept;

  /// Fraction of measured seconds on 5G (the paper's Fig. 3b-style
  /// coverage number).
  double coverage_5g() const noexcept;

  /// ASCII heatmap: rows are y cells (north up), one char per cell —
  /// '#' >= 1000 Mbps, '+' >= 700, 'o' >= 300, '.' >= 60, '_' < 60,
  /// ' ' unmeasured. Rendering is capped to `max_dim` cells per side.
  std::string render_ascii(int max_dim = 80) const;

  std::int64_t cell_px() const noexcept { return cell_px_; }

 private:
  std::map<std::pair<std::int64_t, std::int64_t>, CellStats> cells_;
  std::int64_t cell_px_ = 2;
  std::size_t total_samples_ = 0;
  std::size_t samples_5g_ = 0;
};

}  // namespace lumos::core

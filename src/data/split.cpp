#include "data/split.h"

#include <algorithm>

#include "common/rng.h"

namespace lumos::data {

SplitIndices train_test_split(std::size_t n, double train_fraction,
                              std::uint64_t seed) {
  Rng rng(seed);
  auto perm = rng.permutation(n);
  // Clamp before the size_t cast: fractions > 1 (or rounding up to n+1)
  // would otherwise index past the end of the permutation, and casting a
  // negative product is undefined.
  const double f = std::clamp(train_fraction, 0.0, 1.0);
  const auto k =
      std::min(n, static_cast<std::size_t>(f * static_cast<double>(n)));
  SplitIndices out;
  out.train.assign(perm.begin(), perm.begin() + static_cast<std::ptrdiff_t>(k));
  out.test.assign(perm.begin() + static_cast<std::ptrdiff_t>(k), perm.end());
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

ml::FeatureMatrix subset(const ml::FeatureMatrix& x,
                         std::span<const std::size_t> idx) {
  ml::FeatureMatrix out(idx.size(), x.cols());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const auto src = x.row(idx[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

}  // namespace lumos::data

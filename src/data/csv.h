// CSV persistence for datasets — the on-disk interchange format matching
// the public Lumos5G dataset release (one row per second, Table 1 fields).
#pragma once

#include <string>

#include "data/dataset.h"

namespace lumos::data {

/// Writes the dataset as CSV with a header row. Throws std::runtime_error
/// on I/O failure.
void write_csv(const Dataset& ds, const std::string& path);

/// Reads a dataset written by write_csv. Throws std::runtime_error on I/O
/// or parse failure.
[[nodiscard]] Dataset read_csv(const std::string& path);

}  // namespace lumos::data

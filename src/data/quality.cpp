#include "data/quality.h"

#include "common/contracts.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <tuple>

#include "geo/coordinates.h"

namespace lumos::data {
namespace {

/// Non-geometry numeric fields covered by the NaN/Inf census. The T-group
/// geometry triple is excluded: NaN there is the documented "panel not
/// surveyed" sentinel, not a defect.
constexpr std::array<double SampleRecord::*, 14> kNumericFields = {
    &SampleRecord::timestamp_s,    &SampleRecord::latitude,
    &SampleRecord::longitude,      &SampleRecord::gps_accuracy_m,
    &SampleRecord::moving_speed_mps, &SampleRecord::compass_deg,
    &SampleRecord::compass_accuracy, &SampleRecord::throughput_mbps,
    &SampleRecord::lte_rsrp,       &SampleRecord::lte_rsrq,
    &SampleRecord::lte_rssi,       &SampleRecord::nr_ssrsrp,
    &SampleRecord::nr_ssrsrq,      &SampleRecord::nr_ssrssi,
};

constexpr std::array<double SampleRecord::*, 3> kGpsFields = {
    &SampleRecord::latitude, &SampleRecord::longitude,
    &SampleRecord::gps_accuracy_m};
constexpr std::array<double SampleRecord::*, 2> kCompassFields = {
    &SampleRecord::compass_deg, &SampleRecord::compass_accuracy};
constexpr std::array<double SampleRecord::*, 1> kSpeedFields = {
    &SampleRecord::moving_speed_mps};
constexpr std::array<double SampleRecord::*, 6> kSignalFields = {
    &SampleRecord::lte_rsrp,  &SampleRecord::lte_rsrq,
    &SampleRecord::lte_rssi,  &SampleRecord::nr_ssrsrp,
    &SampleRecord::nr_ssrsrq, &SampleRecord::nr_ssrssi};

bool same_key(const SampleRecord& a, const SampleRecord& b) {
  return a.area == b.area && a.trajectory_id == b.trajectory_id &&
         a.run_id == b.run_id;
}

std::size_t out_of_range_fields(const SampleRecord& s,
                                const QualityConfig& cfg) {
  std::size_t n = 0;
  const auto bad = [](bool finite_violation, double v) {
    return std::isfinite(v) && finite_violation;
  };
  if (bad(std::fabs(s.latitude) > 90.0, s.latitude)) ++n;
  if (bad(std::fabs(s.longitude) > 180.0, s.longitude)) ++n;
  if (bad(s.gps_accuracy_m < 0.0, s.gps_accuracy_m)) ++n;
  if (bad(s.moving_speed_mps < 0.0, s.moving_speed_mps)) ++n;
  if (bad(s.throughput_mbps < 0.0 ||
              s.throughput_mbps > cfg.max_throughput_mbps,
          s.throughput_mbps)) {
    ++n;
  }
  for (auto f : kSignalFields) {
    const double v = s.*f;
    if (!std::isfinite(v)) continue;
    // RSRQ fields are dB quality ratios with their own (higher) band.
    const bool is_rsrq =
        f == &SampleRecord::lte_rsrq || f == &SampleRecord::nr_ssrsrq;
    const double lo = is_rsrq ? cfg.min_rsrq_db : cfg.min_dbm;
    const double hi = is_rsrq ? cfg.max_rsrq_db : cfg.max_dbm;
    if (v < lo || v > hi) ++n;
  }
  return n;
}

/// Repairs one field over one time-ordered run. `alive[i]` false marks the
/// row as already condemned. Returns rows newly condemned by a kDrop
/// policy or an unrepairable span.
void repair_field(std::vector<SampleRecord*>& run, std::vector<bool>& alive,
                  double SampleRecord::* field, FieldRepair mode,
                  double max_span_s, RepairSummary& sum,
                  std::vector<bool>& gps_touched, bool is_gps) {
  const std::size_t n = run.size();
  // Validity snapshot BEFORE any repair: neighbours must be original
  // observations, otherwise hold-last would chain across arbitrarily long
  // outages one repaired row at a time.
  std::vector<bool> observed(n);
  for (std::size_t i = 0; i < n; ++i) {
    observed[i] = std::isfinite(run[i]->*field);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i] || observed[i]) continue;
    if (mode == FieldRepair::kDrop) {
      alive[i] = false;
      ++sum.rows_dropped;
      continue;
    }
    const double t = run[i]->timestamp_s;
    // Nearest originally-observed neighbours within the repair span.
    std::size_t prev = n, next = n;
    for (std::size_t j = i; j-- > 0;) {
      if (alive[j] && observed[j]) {
        if (t - run[j]->timestamp_s <= max_span_s) prev = j;
        break;
      }
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      if (alive[j] && observed[j]) {
        if (run[j]->timestamp_s - t <= max_span_s) next = j;
        break;
      }
    }
    if (mode == FieldRepair::kInterpolate && prev < n && next < n) {
      const double t0 = run[prev]->timestamp_s, t1 = run[next]->timestamp_s;
      const double v0 = run[prev]->*field, v1 = run[next]->*field;
      const double w = t1 > t0 ? (t - t0) / (t1 - t0) : 0.0;
      run[i]->*field = v0 + (v1 - v0) * w;
      LUMOS_ENSURES(std::isfinite(run[i]->*field),
                    "repair_field: interpolation produced a non-finite value");
      ++sum.fields_interpolated;
    } else if (prev < n) {
      run[i]->*field = run[prev]->*field;
      ++sum.fields_held;
    } else if (next < n) {
      run[i]->*field = run[next]->*field;  // backfill at the run head
      ++sum.fields_held;
    } else {
      alive[i] = false;  // no valid neighbour in range: unrepairable
      ++sum.rows_dropped;
      continue;
    }
    if (is_gps) gps_touched[i] = true;
  }
}

}  // namespace

std::string QualityReport::describe() const {
  std::string s = "samples=" + std::to_string(n_samples) +
                  " runs=" + std::to_string(n_runs) +
                  " nan=" + std::to_string(nan_fields) +
                  " inf=" + std::to_string(inf_fields) +
                  " gaps=" + std::to_string(timestamp_gaps) +
                  " dups=" + std::to_string(duplicate_timestamps) +
                  " ooo=" + std::to_string(out_of_order) +
                  " range=" + std::to_string(out_of_range) +
                  " nogeom=" + std::to_string(missing_geometry);
  return s;
}

QualityReport validate(const Dataset& ds, const QualityConfig& cfg) {
  QualityReport rep;
  rep.n_samples = ds.size();
  const auto& v = ds.samples();
  for (std::size_t i = 0; i < v.size(); ++i) {
    const SampleRecord& s = v[i];
    for (auto f : kNumericFields) {
      const double x = s.*f;
      if (std::isnan(x)) {
        ++rep.nan_fields;
      } else if (std::isinf(x)) {
        ++rep.inf_fields;
      }
    }
    if (!s.has_panel_geometry()) ++rep.missing_geometry;
    rep.out_of_range += out_of_range_fields(s, cfg);

    // Timestamp defects are judged in stored order within each run block.
    if (i == 0 || !same_key(v[i - 1], s)) {
      ++rep.n_runs;
    } else {
      const double dt = s.timestamp_s - v[i - 1].timestamp_s;
      if (std::isnan(dt)) continue;  // already counted as a NaN field
      if (dt < 0.0) {
        ++rep.out_of_order;
      } else if (dt == 0.0) {
        ++rep.duplicate_timestamps;
      } else if (dt > cfg.max_gap_s) {
        ++rep.timestamp_gaps;
      }
    }
  }
  return rep;
}

RepairSummary repair(Dataset& ds, const RepairPolicy& policy) {
  RepairSummary sum;

  // Normalize to the same (area, trajectory, run, time) order clean()
  // produces; count the rows that time-sorting actually moved.
  std::vector<SampleRecord> rows = ds.samples();
  std::stable_sort(rows.begin(), rows.end(),
                   [](const SampleRecord& a, const SampleRecord& b) {
                     return std::tie(a.area, a.trajectory_id, a.run_id) <
                            std::tie(b.area, b.trajectory_id, b.run_id);
                   });
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (same_key(rows[i - 1], rows[i]) &&
        rows[i].timestamp_s < rows[i - 1].timestamp_s) {
      ++sum.rows_reordered;
    }
  }

  std::vector<SampleRecord> kept;
  kept.reserve(rows.size());
  std::size_t i = 0;
  while (i < rows.size()) {
    std::size_t j = i;
    while (j < rows.size() && same_key(rows[i], rows[j])) ++j;

    // Rows whose timestamp is not finite cannot be ordered or repaired.
    std::vector<SampleRecord*> run;
    run.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) {
      if (std::isfinite(rows[k].timestamp_s)) {
        run.push_back(&rows[k]);
      } else {
        ++sum.rows_dropped;
      }
    }
    if (policy.sort_within_run) {
      std::stable_sort(run.begin(), run.end(),
                       [](const SampleRecord* a, const SampleRecord* b) {
                         return a->timestamp_s < b->timestamp_s;
                       });
    }
    std::vector<bool> alive(run.size(), true);
    if (policy.drop_duplicate_timestamps && !run.empty()) {
      std::size_t last_kept = 0;
      for (std::size_t k = 1; k < run.size(); ++k) {
        if (run[k]->timestamp_s == run[last_kept]->timestamp_s) {
          alive[k] = false;
          ++sum.duplicates_dropped;
        } else {
          last_kept = k;
        }
      }
    }

    std::vector<bool> gps_touched(run.size(), false);
    const auto apply = [&](auto& fields, FieldRepair mode, bool is_gps) {
      for (auto f : fields) {
        repair_field(run, alive, f, mode, policy.max_repair_span_s, sum,
                     gps_touched, is_gps);
      }
    };
    apply(kGpsFields, policy.gps, /*is_gps=*/true);
    apply(kCompassFields, policy.compass, false);
    apply(kSpeedFields, policy.speed, false);
    apply(kSignalFields, policy.signal, false);

    for (std::size_t k = 0; k < run.size(); ++k) {
      if (!alive[k]) continue;
      SampleRecord& s = *run[k];
      if (policy.drop_nan_throughput && !std::isfinite(s.throughput_mbps)) {
        alive[k] = false;
        ++sum.rows_dropped;
        continue;
      }
      if (policy.drop_out_of_range &&
          out_of_range_fields(s, policy.limits) > 0) {
        alive[k] = false;
        ++sum.rows_dropped;
        continue;
      }
      if (gps_touched[k]) {
        // Keep the L feature group consistent with the repaired fix.
        const geo::PixelCoord px =
            geo::pixelize({s.latitude, s.longitude}, policy.pixel_zoom);
        s.pixel_x = px.x;
        s.pixel_y = px.y;
      }
      kept.push_back(s);
    }
    i = j;
  }
  ds = Dataset(std::move(kept));
  return sum;
}

}  // namespace lumos::data

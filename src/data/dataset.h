// Dataset container plus the data-quality pipeline of paper §3.1:
// GPS-error filtering, warm-up buffer trimming, and pixelization of raw
// GPS coordinates to zoom-17 Web-Mercator grid cells.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "data/sample.h"
#include "geo/coordinates.h"

namespace lumos::data {

/// Cleaning rules (defaults match the paper).
struct CleaningConfig {
  double max_gps_error_m = 5.0;   ///< discard runs with worse mean GPS error
  double buffer_period_s = 10.0;  ///< drop warm-up seconds per run
  int pixel_zoom = 17;
};

/// A labelled collection of per-second samples. Samples from the same
/// (area, trajectory, run) triple form one contiguous time series.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<SampleRecord> samples)
      : samples_(std::move(samples)) {}

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  const SampleRecord& operator[](std::size_t i) const noexcept {
    return samples_[i];
  }
  SampleRecord& operator[](std::size_t i) noexcept { return samples_[i]; }

  const std::vector<SampleRecord>& samples() const noexcept { return samples_; }

  void append(SampleRecord rec) { samples_.push_back(std::move(rec)); }

  /// Pre-sizes the backing store for `n` total samples (append/append_all
  /// then grow without reallocating until that capacity is exceeded).
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t capacity() const noexcept { return samples_.capacity(); }

  void append_all(const Dataset& other) {
    samples_.reserve(samples_.size() + other.samples_.size());
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  /// Applies the paper's data-quality rules and fills pixel coordinates.
  /// Returns the number of samples dropped.
  std::size_t clean(const CleaningConfig& cfg = {});

  /// Keeps only samples matching `pred`.
  Dataset filter(const std::function<bool(const SampleRecord&)>& pred) const;

  /// Groups sample indices by (trajectory, run): each value is a run's
  /// contiguous index sequence ordered by timestamp.
  std::vector<std::vector<std::size_t>> runs() const;

  /// Throughput values grouped by pixel (or any spatial key you derive):
  /// key = (pixel_x / cell_px, pixel_y / cell_px). `cell_px` of 2 mimics
  /// the paper's ~2m grid at zoom 17.
  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<double>>
  throughput_by_grid(std::int64_t cell_px = 2) const;

  /// Per-run throughput traces (ordered by time) — the unit of the
  /// Spearman-based direction analysis (paper §4.2).
  std::vector<std::vector<double>> throughput_traces() const;

 private:
  std::vector<SampleRecord> samples_;
};

}  // namespace lumos::data

// The per-second measurement record produced by the (simulated) 5G
// monitoring tool — one row per second, mirroring paper Table 1.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace lumos::data {

/// Radio technology the UE is attached to (paper: "radio type").
enum class RadioType : std::uint8_t {
  kNrMmWave = 0,  ///< 5G NR mmWave
  kLte = 1,       ///< 4G LTE fallback
};

/// Google Activity-Recognition style transport mode.
enum class Activity : std::uint8_t {
  kStill = 0,
  kWalking = 1,
  kDriving = 2,
};

inline const char* to_string(RadioType r) noexcept {
  return r == RadioType::kNrMmWave ? "5G-NR" : "LTE";
}

inline const char* to_string(Activity a) noexcept {
  switch (a) {
    case Activity::kStill: return "still";
    case Activity::kWalking: return "walking";
    case Activity::kDriving: return "driving";
  }
  return "?";
}

/// One logged second. Fields in the first block come from (simulated)
/// Android APIs; the second block is post-processed or exogenous
/// information (paper Table 1).
struct SampleRecord {
  // --- identity / bookkeeping ---
  std::string area;        ///< "intersection" | "airport" | "loop"
  int trajectory_id = 0;   ///< which trajectory of the area
  int run_id = 0;          ///< which repeated pass over that trajectory
  double timestamp_s = 0;  ///< seconds since run start

  // --- raw values from Android-like APIs ---
  double latitude = 0.0;
  double longitude = 0.0;
  double gps_accuracy_m = 0.0;  ///< reported location error estimate
  Activity detected_activity = Activity::kStill;
  double moving_speed_mps = 0.0;
  double compass_deg = 0.0;      ///< direction of travel w.r.t. North
  double compass_accuracy = 0.0;

  // --- throughput ground truth (iPerf-style bulk download) ---
  double throughput_mbps = 0.0;

  // --- parsed from ServiceState / SignalStrength ---
  RadioType radio_type = RadioType::kNrMmWave;
  int cell_id = -1;  ///< serving panel id (5G) or LTE cell id
  double lte_rsrp = 0.0;
  double lte_rsrq = 0.0;
  double lte_rssi = 0.0;
  double nr_ssrsrp = 0.0;
  double nr_ssrsrq = 0.0;
  double nr_ssrssi = 0.0;
  bool horizontal_handoff = false;  ///< 5G panel changed this second
  bool vertical_handoff = false;    ///< radio type changed this second

  // --- post-processed tower geometry (NaN when panel location unknown) ---
  double ue_panel_distance_m = nan_value();
  double theta_p_deg = nan_value();  ///< UE-panel positional angle
  double theta_m_deg = nan_value();  ///< UE-panel mobility angle

  // --- pixelized geolocation (zoom 17), filled during cleaning ---
  std::int64_t pixel_x = 0;
  std::int64_t pixel_y = 0;

  static constexpr double nan_value() noexcept {
    return std::numeric_limits<double>::quiet_NaN();
  }

  bool has_panel_geometry() const noexcept {
    return !std::isnan(ue_panel_distance_m);
  }
};

}  // namespace lumos::data

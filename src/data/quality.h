// Data-quality layer: validate a dataset against the per-second
// measurement contract (no NaN/Inf telemetry, monotone gap-free
// timestamps, physically plausible ranges) and repair violations with a
// configurable per-field-class policy before the feature pipeline sees
// them. The paper's §3.1 cleaning rules (GPS-error discard, warm-up trim,
// pixelization) assume well-formed input; this layer is what makes that
// assumption hold on impaired traces (see sim/faults.h for the fault
// model it is tested against).
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace lumos::data {

/// Thresholds used by validate() and by the out-of-range repair step.
struct QualityConfig {
  double max_gap_s = 2.5;  ///< dt above this counts as a timestamp gap
                           ///< (nominal cadence is 1 sample/s)
  double max_throughput_mbps = 10000.0;
  double min_dbm = -160.0;  ///< plausible RSRP/RSSI band
  double max_dbm = -20.0;
  /// RSRQ is a quality ratio in dB, not a power in dBm: LTE reports
  /// [-19.5, -3], NR SS-RSRQ [-43, 20]; use a permissive common band.
  double min_rsrq_db = -43.0;
  double max_rsrq_db = 0.0;
};

/// Per-defect counts over a dataset. Runs are walked in stored order —
/// validate() deliberately does NOT sort first, so out-of-order rows are
/// visible to it.
struct [[nodiscard]] QualityReport {
  std::size_t n_samples = 0;
  std::size_t n_runs = 0;
  std::size_t nan_fields = 0;  ///< NaN in non-geometry numeric fields
  std::size_t inf_fields = 0;
  std::size_t missing_geometry = 0;  ///< NaN T-features (legitimate
                                     ///< "panel not surveyed" sentinel)
  std::size_t timestamp_gaps = 0;
  std::size_t duplicate_timestamps = 0;
  std::size_t out_of_order = 0;
  std::size_t out_of_range = 0;

  /// Defect total; the geometry sentinel is not a defect.
  std::size_t total_defects() const noexcept {
    return nan_fields + inf_fields + timestamp_gaps + duplicate_timestamps +
           out_of_order + out_of_range;
  }
  bool clean() const noexcept { return total_defects() == 0; }

  std::string describe() const;
};

[[nodiscard]] QualityReport validate(const Dataset& ds,
                                     const QualityConfig& cfg = {});

/// What to do with a NaN field of a given class.
enum class FieldRepair : std::uint8_t {
  kDrop,         ///< remove the whole row
  kHoldLast,     ///< repeat the last valid value of the run
  kInterpolate,  ///< linear interpolation in time between valid neighbours
};

struct RepairPolicy {
  FieldRepair gps = FieldRepair::kInterpolate;  ///< lat / lon / accuracy
  FieldRepair compass = FieldRepair::kHoldLast;
  FieldRepair speed = FieldRepair::kHoldLast;
  FieldRepair signal = FieldRepair::kHoldLast;  ///< *_rsrp / *_rsrq / *_rssi

  /// Ground truth is never fabricated: rows with NaN throughput are
  /// dropped regardless of the field policies above.
  bool drop_nan_throughput = true;
  bool sort_within_run = true;  ///< stable-sort each run by timestamp
  bool drop_duplicate_timestamps = true;
  bool drop_out_of_range = true;

  /// Hold-last / interpolation never bridges a gap longer than this; the
  /// affected rows are dropped instead (a 60 s GPS outage is not a line).
  double max_repair_span_s = 5.0;
  int pixel_zoom = 17;  ///< re-pixelization zoom for repaired GPS fixes

  QualityConfig limits{};
};

struct [[nodiscard]] RepairSummary {
  std::size_t rows_dropped = 0;
  std::size_t duplicates_dropped = 0;
  std::size_t rows_reordered = 0;
  std::size_t fields_held = 0;
  std::size_t fields_interpolated = 0;

  std::size_t total_repairs() const noexcept {
    return rows_dropped + duplicates_dropped + rows_reordered + fields_held +
           fields_interpolated;
  }
};

/// Repairs `ds` in place per `policy` and returns what was done.
/// Deterministic; on a dataset whose validate() report is clean this is a
/// bit-identical no-op. Repaired GPS fixes are re-pixelized so the L
/// feature group stays consistent with the repaired coordinates.
RepairSummary repair(Dataset& ds, const RepairPolicy& policy = {});

}  // namespace lumos::data

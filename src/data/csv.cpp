#include "data/csv.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace lumos::data {
namespace {

constexpr const char* kHeader =
    "area,trajectory_id,run_id,timestamp_s,latitude,longitude,"
    "gps_accuracy_m,activity,moving_speed_mps,compass_deg,compass_accuracy,"
    "throughput_mbps,radio_type,cell_id,lte_rsrp,lte_rsrq,lte_rssi,"
    "nr_ssrsrp,nr_ssrsrq,nr_ssrssi,horizontal_handoff,vertical_handoff,"
    "ue_panel_distance_m,theta_p_deg,theta_m_deg,pixel_x,pixel_y";

std::vector<std::string> split_line(const std::string& line) {
  // Hand-rolled split: std::getline on a stringstream silently drops a
  // trailing empty field, so "a,b," would parse as 2 fields instead of 3
  // and surface as a misleading field-count error one column off.
  std::vector<std::string> out;
  std::string field;
  for (const char ch : line) {
    if (ch == ',') {
      out.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(ch);
    }
  }
  out.push_back(std::move(field));
  return out;
}

double parse_double(const std::string& s) {
  if (s.empty() || s == "nan") return std::nan("");
  return std::stod(s);
}

}  // namespace

void write_csv(const Dataset& ds, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_csv: cannot open " + path);
  f << kHeader << '\n';
  f.precision(10);
  for (const auto& s : ds.samples()) {
    f << s.area << ',' << s.trajectory_id << ',' << s.run_id << ','
      << s.timestamp_s << ',' << s.latitude << ',' << s.longitude << ','
      << s.gps_accuracy_m << ',' << static_cast<int>(s.detected_activity)
      << ',' << s.moving_speed_mps << ',' << s.compass_deg << ','
      << s.compass_accuracy << ',' << s.throughput_mbps << ','
      << static_cast<int>(s.radio_type) << ',' << s.cell_id << ','
      << s.lte_rsrp << ',' << s.lte_rsrq << ',' << s.lte_rssi << ','
      << s.nr_ssrsrp << ',' << s.nr_ssrsrq << ',' << s.nr_ssrssi << ','
      << (s.horizontal_handoff ? 1 : 0) << ',' << (s.vertical_handoff ? 1 : 0)
      << ',';
    if (std::isnan(s.ue_panel_distance_m)) {
      f << "nan,nan,nan,";
    } else {
      f << s.ue_panel_distance_m << ',' << s.theta_p_deg << ','
        << s.theta_m_deg << ',';
    }
    f << s.pixel_x << ',' << s.pixel_y << '\n';
  }
  if (!f) throw std::runtime_error("write_csv: write failed for " + path);
}

Dataset read_csv(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_csv: cannot open " + path);
  std::string line;
  if (!std::getline(f, line)) {
    throw std::runtime_error("read_csv: empty file " + path);
  }
  Dataset ds;
  std::size_t lineno = 1;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto v = split_line(line);
    if (v.size() != 27) {
      throw std::runtime_error(
          "read_csv: bad field count at line " + std::to_string(lineno) +
          ": got " + std::to_string(v.size()) +
          " fields, expected 27 (a trailing ',' adds an empty 28th field)");
    }
    SampleRecord s;
    try {
      s.area = v[0];
      s.trajectory_id = std::stoi(v[1]);
      s.run_id = std::stoi(v[2]);
      s.timestamp_s = parse_double(v[3]);
      s.latitude = parse_double(v[4]);
      s.longitude = parse_double(v[5]);
      s.gps_accuracy_m = parse_double(v[6]);
      s.detected_activity = static_cast<Activity>(std::stoi(v[7]));
      s.moving_speed_mps = parse_double(v[8]);
      s.compass_deg = parse_double(v[9]);
      s.compass_accuracy = parse_double(v[10]);
      s.throughput_mbps = parse_double(v[11]);
      s.radio_type = static_cast<RadioType>(std::stoi(v[12]));
      s.cell_id = std::stoi(v[13]);
      s.lte_rsrp = parse_double(v[14]);
      s.lte_rsrq = parse_double(v[15]);
      s.lte_rssi = parse_double(v[16]);
      s.nr_ssrsrp = parse_double(v[17]);
      s.nr_ssrsrq = parse_double(v[18]);
      s.nr_ssrssi = parse_double(v[19]);
      s.horizontal_handoff = v[20] == "1";
      s.vertical_handoff = v[21] == "1";
      s.ue_panel_distance_m = parse_double(v[22]);
      s.theta_p_deg = parse_double(v[23]);
      s.theta_m_deg = parse_double(v[24]);
      s.pixel_x = std::stoll(v[25]);
      s.pixel_y = std::stoll(v[26]);
    } catch (const std::exception& e) {
      throw std::runtime_error("read_csv: bad field value at line " +
                               std::to_string(lineno) + ": " + e.what());
    }
    ds.append(std::move(s));
  }
  return ds;
}

}  // namespace lumos::data

#include "data/csv.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace lumos::data {
namespace {

constexpr const char* kHeader =
    "area,trajectory_id,run_id,timestamp_s,latitude,longitude,"
    "gps_accuracy_m,activity,moving_speed_mps,compass_deg,compass_accuracy,"
    "throughput_mbps,radio_type,cell_id,lte_rsrp,lte_rsrq,lte_rssi,"
    "nr_ssrsrp,nr_ssrsrq,nr_ssrssi,horizontal_handoff,vertical_handoff,"
    "ue_panel_distance_m,theta_p_deg,theta_m_deg,pixel_x,pixel_y";

/// Column names in header order, for parse-error reporting.
constexpr const char* kColumnNames[27] = {
    "area",           "trajectory_id",      "run_id",
    "timestamp_s",    "latitude",           "longitude",
    "gps_accuracy_m", "activity",           "moving_speed_mps",
    "compass_deg",    "compass_accuracy",   "throughput_mbps",
    "radio_type",     "cell_id",            "lte_rsrp",
    "lte_rsrq",       "lte_rssi",           "nr_ssrsrp",
    "nr_ssrsrq",      "nr_ssrssi",          "horizontal_handoff",
    "vertical_handoff", "ue_panel_distance_m", "theta_p_deg",
    "theta_m_deg",    "pixel_x",            "pixel_y"};

std::vector<std::string> split_line(const std::string& line) {
  // Hand-rolled split: std::getline on a stringstream silently drops a
  // trailing empty field, so "a,b," would parse as 2 fields instead of 3
  // and surface as a misleading field-count error one column off.
  std::vector<std::string> out;
  std::string field;
  for (const char ch : line) {
    if (ch == ',') {
      out.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(ch);
    }
  }
  out.push_back(std::move(field));
  return out;
}

// std::from_chars rather than std::stod: locale-independent, parses
// subnormals (stod throws out_of_range on e.g. 5e-324), and rejects
// trailing junk; overflow ("1e999999") still throws.
double parse_double(const std::string& s) {
  if (s.empty() || s == "nan") return std::nan("");
  double v = 0.0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size()) {
    throw std::invalid_argument("not a number");
  }
  return v;
}

}  // namespace

void write_csv(const Dataset& ds, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_csv: cannot open " + path);
  f << kHeader << '\n';
  // max_digits10: every finite double survives the write -> read round
  // trip bit-exactly.
  f.precision(17);
  for (const auto& s : ds.samples()) {
    f << s.area << ',' << s.trajectory_id << ',' << s.run_id << ','
      << s.timestamp_s << ',' << s.latitude << ',' << s.longitude << ','
      << s.gps_accuracy_m << ',' << static_cast<int>(s.detected_activity)
      << ',' << s.moving_speed_mps << ',' << s.compass_deg << ','
      << s.compass_accuracy << ',' << s.throughput_mbps << ','
      << static_cast<int>(s.radio_type) << ',' << s.cell_id << ','
      << s.lte_rsrp << ',' << s.lte_rsrq << ',' << s.lte_rssi << ','
      << s.nr_ssrsrp << ',' << s.nr_ssrsrq << ',' << s.nr_ssrssi << ','
      << (s.horizontal_handoff ? 1 : 0) << ',' << (s.vertical_handoff ? 1 : 0)
      << ',';
    if (std::isnan(s.ue_panel_distance_m)) {
      f << "nan,nan,nan,";
    } else {
      f << s.ue_panel_distance_m << ',' << s.theta_p_deg << ','
        << s.theta_m_deg << ',';
    }
    f << s.pixel_x << ',' << s.pixel_y << '\n';
  }
  if (!f) throw std::runtime_error("write_csv: write failed for " + path);
}

Dataset read_csv(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_csv: cannot open " + path);
  std::string line;
  if (!std::getline(f, line)) {
    throw std::runtime_error("read_csv: empty file " + path);
  }
  Dataset ds;
  std::size_t lineno = 1;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto v = split_line(line);
    if (v.size() != 27) {
      throw std::runtime_error(
          "read_csv: bad field count at line " + std::to_string(lineno) +
          ": got " + std::to_string(v.size()) +
          " fields, expected 27 (a trailing ',' adds an empty 28th field)");
    }
    SampleRecord s;
    // Tracks which column is being parsed so an error can name it.
    std::size_t col = 0;
    const auto fld = [&](std::size_t c) -> const std::string& {
      col = c;
      return v[c];
    };
    try {
      s.area = fld(0);
      s.trajectory_id = std::stoi(fld(1));
      s.run_id = std::stoi(fld(2));
      s.timestamp_s = parse_double(fld(3));
      s.latitude = parse_double(fld(4));
      s.longitude = parse_double(fld(5));
      s.gps_accuracy_m = parse_double(fld(6));
      s.detected_activity = static_cast<Activity>(std::stoi(fld(7)));
      s.moving_speed_mps = parse_double(fld(8));
      s.compass_deg = parse_double(fld(9));
      s.compass_accuracy = parse_double(fld(10));
      s.throughput_mbps = parse_double(fld(11));
      s.radio_type = static_cast<RadioType>(std::stoi(fld(12)));
      s.cell_id = std::stoi(fld(13));
      s.lte_rsrp = parse_double(fld(14));
      s.lte_rsrq = parse_double(fld(15));
      s.lte_rssi = parse_double(fld(16));
      s.nr_ssrsrp = parse_double(fld(17));
      s.nr_ssrsrq = parse_double(fld(18));
      s.nr_ssrssi = parse_double(fld(19));
      s.horizontal_handoff = fld(20) == "1";
      s.vertical_handoff = fld(21) == "1";
      s.ue_panel_distance_m = parse_double(fld(22));
      s.theta_p_deg = parse_double(fld(23));
      s.theta_m_deg = parse_double(fld(24));
      s.pixel_x = std::stoll(fld(25));
      s.pixel_y = std::stoll(fld(26));
    } catch (const std::exception& e) {
      throw std::runtime_error("read_csv: bad value in column '" +
                               std::string(kColumnNames[col]) + "' at line " +
                               std::to_string(lineno) + " (\"" + v[col] +
                               "\"): " + e.what());
    }
    ds.append(std::move(s));
  }
  return ds;
}

}  // namespace lumos::data

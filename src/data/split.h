// Train/test splitting utilities (paper §6.1: random 70/30 split).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/types.h"
#include "nn/seq2seq.h"

namespace lumos::data {

struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Random split of [0, n) with `train_fraction` going to train.
[[nodiscard]] SplitIndices train_test_split(std::size_t n,
                                            double train_fraction,
                              std::uint64_t seed);

/// Row subset of a feature matrix.
[[nodiscard]] ml::FeatureMatrix subset(const ml::FeatureMatrix& x,
                         std::span<const std::size_t> idx);

template <typename T>
[[nodiscard]] std::vector<T> subset(const std::vector<T>& v,
                      std::span<const std::size_t> idx) {
  std::vector<T> out;
  out.reserve(idx.size());
  for (std::size_t i : idx) out.push_back(v[i]);
  return out;
}

}  // namespace lumos::data

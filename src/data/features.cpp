#include "data/features.h"

#include "common/contracts.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "geo/coordinates.h"

namespace lumos::data {

FeatureSetSpec FeatureSetSpec::parse(const std::string& spec) {
  FeatureSetSpec s;
  for (char raw : spec) {
    const char c = static_cast<char>(std::toupper(static_cast<unsigned char>(raw)));
    switch (c) {
      case 'L': s.L = true; break;
      case 'M': s.M = true; break;
      case 'T': s.T = true; break;
      case 'C': s.C = true; break;
      case '+':
      case ' ': break;
      default:
        throw std::invalid_argument("FeatureSetSpec::parse: bad group '" +
                                    std::string(1, raw) + "'");
    }
  }
  if (!s.L && !s.M && !s.T && !s.C) {
    throw std::invalid_argument("FeatureSetSpec::parse: empty spec");
  }
  return s;
}

std::string FeatureSetSpec::name() const {
  std::string out;
  const auto add = [&out](const char* g) {
    if (!out.empty()) out += '+';
    out += g;
  };
  if (L) add("L");
  if (T) add("T");
  if (M) add("M");
  if (C) add("C");
  return out;
}

int throughput_class(double mbps, const FeatureConfig& cfg) noexcept {
  if (mbps < cfg.low_mbps) return 0;
  if (mbps < cfg.high_mbps) return 1;
  return 2;
}

std::vector<std::string> feature_names(const FeatureSetSpec& spec,
                                       const FeatureConfig& cfg) {
  std::vector<std::string> names;
  if (spec.L) {
    names.emplace_back("pixel_x");
    names.emplace_back("pixel_y");
  }
  if (spec.T) {
    names.emplace_back("ue_panel_distance_m");
    names.emplace_back("theta_p_deg");
    names.emplace_back("theta_m_deg");
  }
  if (spec.M) {
    names.emplace_back("moving_speed_mps");
    // Compass is included only when tower geometry is absent: the paper's
    // T+M combination replaces raw compass with the panel-relative angles
    // (Table 6).
    if (!spec.T) {
      names.emplace_back("compass_sin");
      names.emplace_back("compass_cos");
    }
  }
  if (spec.C) {
    for (int lag = 0; lag < cfg.throughput_lags; ++lag) {
      names.push_back("tput_lag_" + std::to_string(lag));
    }
    names.emplace_back("radio_type");
    names.emplace_back("lte_rsrp");
    names.emplace_back("nr_ssrsrp");
    names.emplace_back("horizontal_handoff");
    names.emplace_back("vertical_handoff");
  }
  return names;
}

namespace {

/// Writes the feature vector for position `i` of a record sequence into
/// `row`, which must hold feature_width() doubles. Allocation-free — this
/// sits under the serving hot path (feature_row_into). `rec_at(i - lag)`
/// must be valid for all configured lags.
template <typename GetRecord>
void fill_row_impl(GetRecord&& rec_at, std::size_t i,
                   const FeatureSetSpec& spec, const FeatureConfig& cfg,
                   std::span<double> row) {
  LUMOS_EXPECTS(!spec.C ||
                    i + 1 >= static_cast<std::size_t>(cfg.throughput_lags),
                "fill_row: C-group lags reach before the run start");
  std::size_t k = 0;
  const SampleRecord& s = rec_at(i);
  if (spec.L) {
    row[k++] = static_cast<double>(s.pixel_x);
    row[k++] = static_cast<double>(s.pixel_y);
  }
  if (spec.T) {
    row[k++] = s.ue_panel_distance_m;
    row[k++] = s.theta_p_deg;
    row[k++] = s.theta_m_deg;
  }
  if (spec.M) {
    row[k++] = s.moving_speed_mps;
    if (!spec.T) {
      const double rad = geo::deg2rad(s.compass_deg);
      row[k++] = std::sin(rad);
      row[k++] = std::cos(rad);
    }
  }
  if (spec.C) {
    for (int lag = 0; lag < cfg.throughput_lags; ++lag) {
      row[k++] = rec_at(i - static_cast<std::size_t>(lag)).throughput_mbps;
    }
    row[k++] = s.radio_type == RadioType::kNrMmWave ? 1.0 : 0.0;
    row[k++] = s.lte_rsrp;
    row[k++] = s.nr_ssrsrp;
    row[k++] = s.horizontal_handoff ? 1.0 : 0.0;
    row[k++] = s.vertical_handoff ? 1.0 : 0.0;
  }
}

/// Convenience wrapper over a run of dataset indices (training path; the
/// resize is a no-op after the first row).
void fill_row(const Dataset& ds, const std::vector<std::size_t>& run,
              std::size_t i, const FeatureSetSpec& spec,
              const FeatureConfig& cfg, std::vector<double>& row) {
  row.resize(feature_width(spec, cfg));
  fill_row_impl(
      [&](std::size_t j) -> const SampleRecord& { return ds[run[j]]; }, i,
      spec, cfg, row);
}

std::size_t min_history(const FeatureSetSpec& spec, const FeatureConfig& cfg) {
  return spec.C ? static_cast<std::size_t>(cfg.throughput_lags - 1) : 0;
}

bool contiguous(double t_prev, double t_next, double max_gap_s) {
  const double dt = t_next - t_prev;
  return std::isfinite(dt) && dt >= 0.0 && dt <= max_gap_s;
}

/// Per-run segment ids: rows k-1 and k share a segment iff their
/// timestamps are contiguous under max_gap_s; a window is gap-free iff
/// its first and last row share a segment. With the check disabled
/// (max_gap_s <= 0) everything is segment 0.
std::vector<std::uint32_t> run_segments(const Dataset& ds,
                                        const std::vector<std::size_t>& run,
                                        double max_gap_s) {
  std::vector<std::uint32_t> seg(run.size(), 0);
  if (max_gap_s <= 0.0) return seg;
  for (std::size_t k = 1; k < run.size(); ++k) {
    const bool ok = contiguous(ds[run[k - 1]].timestamp_s,
                               ds[run[k]].timestamp_s, max_gap_s);
    seg[k] = seg[k - 1] + (ok ? 0u : 1u);
  }
  return seg;
}

}  // namespace

BuiltFeatures build_features(const Dataset& ds, const FeatureSetSpec& spec,
                             const FeatureConfig& cfg) {
  if (cfg.throughput_lags < 1) {
    throw std::invalid_argument("build_features: throughput_lags must be >= 1");
  }
  if (cfg.horizon < 1) {
    throw std::invalid_argument("build_features: horizon must be >= 1");
  }
  BuiltFeatures out;
  out.feature_names = feature_names(spec, cfg);

  const std::size_t hist = min_history(spec, cfg);
  const auto horizon = static_cast<std::size_t>(cfg.horizon);
  std::vector<double> row;
  for (const auto& run : ds.runs()) {
    if (run.size() <= hist + horizon) continue;
    const auto seg = run_segments(ds, run, cfg.max_gap_s);
    for (std::size_t i = hist; i + horizon < run.size(); ++i) {
      const SampleRecord& s = ds[run[i]];
      if (spec.T && !s.has_panel_geometry()) continue;
      // The window [i - hist, i + horizon] must not straddle a gap.
      if (seg[i - hist] != seg[i + horizon]) continue;
      fill_row(ds, run, i, spec, cfg, row);
      out.x.push_row(row);
      const double target = ds[run[i + horizon]].throughput_mbps;
      out.y_reg.push_back(target);
      out.y_cls.push_back(throughput_class(target, cfg));
      out.source_index.push_back(run[i]);
    }
  }
  return out;
}

BuiltSequences build_sequences(const Dataset& ds, const FeatureSetSpec& spec,
                               const FeatureConfig& cfg,
                               const SequenceConfig& seq) {
  if (seq.seq_len == 0 || seq.out_len == 0) {
    throw std::invalid_argument("build_sequences: zero window size");
  }
  BuiltSequences out;
  out.input_dim = feature_names(spec, cfg).size();

  const std::size_t hist = min_history(spec, cfg);
  std::vector<double> row;
  for (const auto& run : ds.runs()) {
    if (run.size() < hist + seq.seq_len + seq.out_len) continue;
    const auto seg = run_segments(ds, run, cfg.max_gap_s);
    // Window end index e: window covers [e - seq_len + 1, e];
    // targets cover (e, e + out_len].
    for (std::size_t e = hist + seq.seq_len - 1; e + seq.out_len < run.size();
         ++e) {
      bool usable = true;
      if (spec.T) {
        for (std::size_t t = e + 1 - seq.seq_len; t <= e && usable; ++t) {
          usable = ds[run[t]].has_panel_geometry();
        }
      }
      // The full consumed span — lag history of the first window element
      // through the last target — must not straddle a gap.
      if (seg[e + 1 - seq.seq_len - hist] != seg[e + seq.out_len]) {
        usable = false;
      }
      if (!usable) continue;
      nn::SeqSample sample;
      sample.x.reserve(seq.seq_len * out.input_dim);
      for (std::size_t t = e + 1 - seq.seq_len; t <= e; ++t) {
        fill_row(ds, run, t, spec, cfg, row);
        sample.x.insert(sample.x.end(), row.begin(), row.end());
      }
      sample.y.reserve(seq.out_len);
      for (std::size_t k = 1; k <= seq.out_len; ++k) {
        sample.y.push_back(ds[run[e + k]].throughput_mbps);
      }
      out.samples.push_back(std::move(sample));
      out.source_index.push_back(run[e]);
    }
  }
  return out;
}

std::size_t feature_width(const FeatureSetSpec& spec,
                          const FeatureConfig& cfg) noexcept {
  std::size_t w = 0;
  if (spec.L) w += 2;
  if (spec.T) w += 3;
  if (spec.M) w += spec.T ? 1 : 3;
  if (spec.C) w += static_cast<std::size_t>(cfg.throughput_lags) + 5;
  return w;
}

bool feature_row_into(std::span<const SampleRecord> window,
                      const FeatureSetSpec& spec, const FeatureConfig& cfg,
                      std::span<double> out) {
  const std::size_t hist = spec.C
                               ? static_cast<std::size_t>(cfg.throughput_lags)
                               : 1;
  if (window.size() < hist) return false;
  const std::size_t i = window.size() - 1;
  if (spec.T && !window[i].has_panel_geometry()) return false;
  if (cfg.max_gap_s > 0.0) {
    // Only the consumed history (last `hist` records) must be gap-free.
    for (std::size_t k = window.size() - hist + 1; k <= i; ++k) {
      if (!contiguous(window[k - 1].timestamp_s, window[k].timestamp_s,
                      cfg.max_gap_s)) {
        return false;
      }
    }
  }
  LUMOS_EXPECTS(out.size() >= feature_width(spec, cfg),
                "feature_row_into: output span narrower than feature_width");
  fill_row_impl(
      [&](std::size_t j) -> const SampleRecord& { return window[j]; }, i,
      spec, cfg, out);
  return true;
}

std::optional<std::vector<double>> feature_row_from_window(
    std::span<const SampleRecord> window, const FeatureSetSpec& spec,
    const FeatureConfig& cfg) {
  std::vector<double> row(feature_width(spec, cfg));
  if (!feature_row_into(window, spec, cfg, row)) return std::nullopt;
  return row;
}

void Standardizer::fit(const ml::FeatureMatrix& x) {
  const std::size_t d = x.cols(), n = x.rows();
  mean_.assign(d, 0.0);
  sd_.assign(d, 1.0);
  if (n == 0) return;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) mean_[c] += x.at(r, c);
  }
  for (auto& m : mean_) m /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      const double dv = x.at(r, c) - mean_[c];
      var[c] += dv * dv;
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    const double s = std::sqrt(var[c] / static_cast<double>(n));
    sd_[c] = s > 1e-12 ? s : 1.0;
  }
}

void Standardizer::fit_sequences(const std::vector<nn::SeqSample>& samples,
                                 std::size_t input_dim) {
  mean_.assign(input_dim, 0.0);
  sd_.assign(input_dim, 1.0);
  std::size_t count = 0;
  for (const auto& s : samples) count += s.x.size() / input_dim;
  if (count == 0) return;
  for (const auto& s : samples) {
    for (std::size_t i = 0; i < s.x.size(); ++i) mean_[i % input_dim] += s.x[i];
  }
  for (auto& m : mean_) m /= static_cast<double>(count);
  std::vector<double> var(input_dim, 0.0);
  for (const auto& s : samples) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double dv = s.x[i] - mean_[i % input_dim];
      var[i % input_dim] += dv * dv;
    }
  }
  for (std::size_t c = 0; c < input_dim; ++c) {
    const double sd = std::sqrt(var[c] / static_cast<double>(count));
    sd_[c] = sd > 1e-12 ? sd : 1.0;
  }
}

void Standardizer::transform(ml::FeatureMatrix& x) const {
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      row[c] = (row[c] - mean_[c]) / sd_[c];
    }
  }
}

void Standardizer::transform_sequences(
    std::vector<nn::SeqSample>& samples) const {
  const std::size_t d = mean_.size();
  for (auto& s : samples) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const std::size_t c = i % d;
      s.x[i] = (s.x[i] - mean_[c]) / sd_[c];
    }
  }
}

std::vector<double> Standardizer::transform_row(
    std::span<const double> row) const {
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - mean_[c]) / sd_[c];
  }
  return out;
}

void TargetScaler::fit(std::span<const double> y) {
  mean_ = 0.0;
  sd_ = 1.0;
  if (y.empty()) return;
  for (double v : y) mean_ += v;
  mean_ /= static_cast<double>(y.size());
  double var = 0.0;
  for (double v : y) var += (v - mean_) * (v - mean_);
  const double sd = std::sqrt(var / static_cast<double>(y.size()));
  if (sd > 1e-12) sd_ = sd;
}

void TargetScaler::transform_sequence_targets(
    std::vector<nn::SeqSample>& samples) const {
  for (auto& s : samples) {
    for (auto& v : s.y) v = transform(v);
  }
}

}  // namespace lumos::data

#include "data/dataset.h"

#include <algorithm>
#include <tuple>

namespace lumos::data {

std::size_t Dataset::clean(const CleaningConfig& cfg) {
  const std::size_t before = samples_.size();

  // Stable order: by (area, trajectory, run, time).
  std::stable_sort(samples_.begin(), samples_.end(),
                   [](const SampleRecord& a, const SampleRecord& b) {
                     return std::tie(a.area, a.trajectory_id, a.run_id,
                                     a.timestamp_s) <
                            std::tie(b.area, b.trajectory_id, b.run_id,
                                     b.timestamp_s);
                   });

  // Rule (2): discard whole runs whose mean GPS error exceeds the budget.
  // Rule (3): drop the warm-up buffer at the start of each run.
  std::vector<SampleRecord> kept;
  kept.reserve(samples_.size());
  std::size_t i = 0;
  while (i < samples_.size()) {
    std::size_t j = i;
    double err_sum = 0.0;
    while (j < samples_.size() && samples_[j].area == samples_[i].area &&
           samples_[j].trajectory_id == samples_[i].trajectory_id &&
           samples_[j].run_id == samples_[i].run_id) {
      err_sum += samples_[j].gps_accuracy_m;
      ++j;
    }
    const double mean_err = err_sum / static_cast<double>(j - i);
    if (mean_err <= cfg.max_gps_error_m) {
      const double t0 = samples_[i].timestamp_s;
      for (std::size_t k = i; k < j; ++k) {
        if (samples_[k].timestamp_s - t0 >= cfg.buffer_period_s) {
          kept.push_back(samples_[k]);
        }
      }
    }
    i = j;
  }
  samples_ = std::move(kept);

  // Rule (4): pixelize to the zoom grid.
  for (auto& s : samples_) {
    const geo::PixelCoord px =
        geo::pixelize({s.latitude, s.longitude}, cfg.pixel_zoom);
    s.pixel_x = px.x;
    s.pixel_y = px.y;
  }
  return before - samples_.size();
}

Dataset Dataset::filter(
    const std::function<bool(const SampleRecord&)>& pred) const {
  Dataset out;
  for (const auto& s : samples_) {
    if (pred(s)) out.append(s);
  }
  return out;
}

std::vector<std::vector<std::size_t>> Dataset::runs() const {
  std::map<std::tuple<std::string, int, int>, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const auto& s = samples_[i];
    groups[{s.area, s.trajectory_id, s.run_id}].push_back(i);
  }
  std::vector<std::vector<std::size_t>> out;
  out.reserve(groups.size());
  for (auto& [key, idx] : groups) {
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return samples_[a].timestamp_s < samples_[b].timestamp_s;
    });
    out.push_back(std::move(idx));
  }
  return out;
}

std::map<std::pair<std::int64_t, std::int64_t>, std::vector<double>>
Dataset::throughput_by_grid(std::int64_t cell_px) const {
  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<double>> grid;
  if (cell_px <= 0) cell_px = 1;
  for (const auto& s : samples_) {
    // floor division keeps negative pixels consistent
    const auto fx = s.pixel_x >= 0 ? s.pixel_x / cell_px
                                   : (s.pixel_x - cell_px + 1) / cell_px;
    const auto fy = s.pixel_y >= 0 ? s.pixel_y / cell_px
                                   : (s.pixel_y - cell_px + 1) / cell_px;
    grid[{fx, fy}].push_back(s.throughput_mbps);
  }
  return grid;
}

std::vector<std::vector<double>> Dataset::throughput_traces() const {
  std::vector<std::vector<double>> traces;
  for (const auto& run : runs()) {
    std::vector<double> t;
    t.reserve(run.size());
    for (std::size_t i : run) t.push_back(samples_[i].throughput_mbps);
    traces.push_back(std::move(t));
  }
  return traces;
}

}  // namespace lumos::data

// Columnar (SoA) raw-value feature store — the batch-predict side of the
// columnar feature layer (DESIGN §11).
//
// Batched tree inference wants the value of ONE feature for MANY rows:
// per-tree, all rows in a block test the same root feature first, and the
// per-level gathers of a row block land close together when a feature's
// values are contiguous. A row-major FeatureMatrix gives the opposite
// layout, so the serving layer packs feature rows into a ColumnStore —
// a column-major arena with a fixed row capacity — and evaluates trees
// over ColumnBlock views of it (serve::FlatForest::predict_columnar).
//
// The store is plain preallocated memory: reshape() (cold) is the only
// allocation site, and put_row()/set() on a reserved store are what the
// serving hot path uses, keeping the lint reachability proof clean.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/types.h"

namespace lumos::data {

/// A read-only view of `n_rows` consecutive rows across all columns of a
/// ColumnStore. `col(f)` is the contiguous value array for feature f,
/// already offset to the view's first row.
struct ColumnBlock {
  const double* base = nullptr;  ///< column 0 at the view's first row
  std::size_t stride = 0;        ///< row capacity of the owning store
  std::size_t n_rows = 0;
  std::size_t n_cols = 0;

  const double* col(std::size_t f) const noexcept {
    return base + f * stride;
  }

  /// Sub-view of rows [row_begin, row_begin + rows) of this block.
  ColumnBlock rows(std::size_t row_begin, std::size_t rows_count) const noexcept {
    return {base + row_begin, stride, rows_count, n_cols};
  }
};

/// Column-major double matrix with a fixed row capacity. Column f's
/// values occupy one contiguous run of `row_capacity` doubles; the first
/// `n` of them are meaningful when the caller has filled rows [0, n).
class ColumnStore {
 public:
  ColumnStore() = default;
  ColumnStore(std::size_t row_capacity, std::size_t cols) {
    reshape(row_capacity, cols);
  }

  /// (Re)allocates for `row_capacity` rows by `cols` columns. Cold path:
  /// call once at setup (or on model reload), never per batch.
  void reshape(std::size_t row_capacity, std::size_t cols) {
    cap_ = row_capacity;
    cols_ = cols;
    v_.assign(cap_ * cols_, 0.0);
  }

  std::size_t row_capacity() const noexcept { return cap_; }
  std::size_t cols() const noexcept { return cols_; }

  double* col(std::size_t f) noexcept { return v_.data() + f * cap_; }
  const double* col(std::size_t f) const noexcept {
    return v_.data() + f * cap_;
  }

  void set(std::size_t r, std::size_t f, double v) noexcept {
    v_[f * cap_ + r] = v;
  }
  double at(std::size_t r, std::size_t f) const noexcept {
    return v_[f * cap_ + r];
  }

  /// Scatters one contiguous feature row into row `r` of the first
  /// row.size() columns. Allocation-free.
  void put_row(std::size_t r, std::span<const double> row) noexcept {
    for (std::size_t f = 0; f < row.size(); ++f) v_[f * cap_ + r] = row[f];
  }

  /// View of rows [row_begin, row_begin + n_rows).
  ColumnBlock block(std::size_t row_begin, std::size_t n_rows) const noexcept {
    return {v_.data() + row_begin, cap_, n_rows, cols_};
  }

  /// Transposes a row-major FeatureMatrix (row capacity = its row count).
  [[nodiscard]] static ColumnStore from_matrix(const ml::FeatureMatrix& x) {
    ColumnStore s(x.rows(), x.cols());
    for (std::size_t r = 0; r < x.rows(); ++r) s.put_row(r, x.row(r));
    return s;
  }

 private:
  std::size_t cap_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> v_;
};

}  // namespace lumos::data

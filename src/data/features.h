// Composable feature groups (paper §5.1, Table 6).
//
//   L : pixelized location coordinates
//   M : UE moving speed + compass direction
//   T : UE-panel distance + positional angle + mobility angle
//   C : past throughput + radio type + signal strengths + handoff flags
//
// A FeatureSetSpec composes any subset; build_features() materializes the
// supervised design matrix (current features -> next-slot throughput) and
// build_sequences() materializes sliding windows for Seq2Seq.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "ml/types.h"
#include "nn/seq2seq.h"

namespace lumos::data {

/// Which primary feature groups are active.
struct FeatureSetSpec {
  bool L = false;
  bool M = false;
  bool T = false;
  bool C = false;

  /// Parses "L", "L+M", "T+M+C", ... (case-insensitive, order-free).
  [[nodiscard]] static FeatureSetSpec parse(const std::string& spec);

  [[nodiscard]] std::string name() const;

  friend bool operator==(const FeatureSetSpec&, const FeatureSetSpec&) = default;
};

struct FeatureConfig {
  int throughput_lags = 5;   ///< past-throughput features in group C
  int horizon = 1;           ///< predict throughput at t + horizon seconds
  double low_mbps = 300.0;   ///< class boundary low/medium (paper §5.2)
  double high_mbps = 700.0;  ///< class boundary medium/high
  /// Gap-aware windowing: when > 0, no feature/target window may span two
  /// samples whose timestamps differ by more than this many seconds (or
  /// run backwards) — lag features across a logging outage would silently
  /// mix unrelated seconds. 0 disables the check (legacy behaviour).
  double max_gap_s = 0.0;
};

/// Classifies a throughput value into {0: low, 1: medium, 2: high}.
[[nodiscard]] int throughput_class(double mbps,
                                   const FeatureConfig& cfg) noexcept;

inline constexpr int kNumThroughputClasses = 3;

/// A materialized supervised dataset.
struct BuiltFeatures {
  ml::FeatureMatrix x;
  std::vector<double> y_reg;  ///< future throughput (Mbps)
  std::vector<int> y_cls;     ///< class of y_reg
  std::vector<std::string> feature_names;
  /// Index of the source record (feature time t) in the original dataset.
  std::vector<std::size_t> source_index;
};

/// Builds per-sample features. Samples whose run is too short for the
/// configured lags/horizon are skipped; if `spec.T` is set, samples without
/// panel geometry are skipped too (paper: no T results for the Loop area).
/// With cfg.max_gap_s > 0, windows that would straddle a timestamp
/// discontinuity are skipped as well.
[[nodiscard]] BuiltFeatures build_features(
    const Dataset& ds, const FeatureSetSpec& spec,
                             const FeatureConfig& cfg = {});

/// Feature names only (stable order), without building the matrix.
[[nodiscard]] std::vector<std::string> feature_names(
    const FeatureSetSpec& spec,
                                       const FeatureConfig& cfg = {});

/// Width of one feature row for this spec/config — the size a caller must
/// provide to feature_row_into(). Equals feature_names().size() without
/// allocating.
[[nodiscard]] std::size_t feature_width(const FeatureSetSpec& spec,
                                        const FeatureConfig& cfg = {}) noexcept;

/// Allocation-free core of feature_row_from_window(): writes the feature
/// row for `window` (last element = prediction reference time) into `out`,
/// which must hold at least feature_width() doubles. Returns false — and
/// writes nothing — if the window is too short for the configured lags,
/// lacks panel geometry while `spec.T` is set, or (with cfg.max_gap_s > 0)
/// the consumed history spans a timestamp discontinuity. This is the
/// serving hot path's entry point (serve::Predictor keeps a reusable row
/// arena and calls this).
[[nodiscard]] bool feature_row_into(std::span<const SampleRecord> window,
                                    const FeatureSetSpec& spec,
                                    const FeatureConfig& cfg,
                                    std::span<double> out);

/// Allocating convenience wrapper over feature_row_into() for training and
/// tests. Returns nullopt when the window is unusable.
[[nodiscard]] std::optional<std::vector<double>> feature_row_from_window(
    std::span<const SampleRecord> window, const FeatureSetSpec& spec,
    const FeatureConfig& cfg = {});

/// Sliding windows for Seq2Seq: input = seq_len consecutive feature
/// vectors; output = the next out_len throughput values.
struct SequenceConfig {
  std::size_t seq_len = 20;
  std::size_t out_len = 1;
};

struct BuiltSequences {
  std::vector<nn::SeqSample> samples;
  std::size_t input_dim = 0;
  /// Dataset index of the last window element (prediction reference time).
  std::vector<std::size_t> source_index;
};

[[nodiscard]] BuiltSequences build_sequences(
    const Dataset& ds, const FeatureSetSpec& spec,
                               const FeatureConfig& cfg = {},
                               const SequenceConfig& seq = {});

/// Z-score standardizer for feature matrices and sequence samples.
class Standardizer {
 public:
  void fit(const ml::FeatureMatrix& x);

  /// Fits from sequence samples laid out as (seq_len x dim) windows.
  void fit_sequences(const std::vector<nn::SeqSample>& samples,
                     std::size_t input_dim);

  void transform(ml::FeatureMatrix& x) const;
  void transform_sequences(std::vector<nn::SeqSample>& samples) const;
  std::vector<double> transform_row(std::span<const double> row) const;

  const std::vector<double>& mean() const noexcept { return mean_; }
  const std::vector<double>& stddev() const noexcept { return sd_; }

 private:
  std::vector<double> mean_, sd_;
};

/// Scalar z-score transform for regression targets.
class TargetScaler {
 public:
  void fit(std::span<const double> y);
  double transform(double v) const noexcept { return (v - mean_) / sd_; }
  double inverse(double v) const noexcept { return v * sd_ + mean_; }

  void transform_sequence_targets(std::vector<nn::SeqSample>& samples) const;

 private:
  double mean_ = 0.0;
  double sd_ = 1.0;
};

}  // namespace lumos::data

#include "ml/harmonic.h"

#include <algorithm>

namespace lumos::ml {

double HarmonicMeanPredictor::predict_next(std::span<const double> history,
                                           double floor) const noexcept {
  if (history.empty()) return floor;
  const std::size_t w = std::min(window_, history.size());
  double denom = 0.0;
  for (std::size_t i = history.size() - w; i < history.size(); ++i) {
    // Only non-positive (or NaN) observations fall back to `floor`;
    // legitimate sub-floor throughputs (0.5 Mbps in a dead zone) must
    // enter the mean as-is or the fallback tail reads biased-high exactly
    // where the network is worst.
    const double v = history[i];
    denom += 1.0 / (v > 0.0 ? v : floor);
  }
  return static_cast<double>(w) / denom;
}

std::vector<double> HarmonicMeanPredictor::predict_trace(
    std::span<const double> trace) const {
  std::vector<double> preds;
  preds.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i == 0) {
      preds.push_back(trace[0]);
    } else {
      preds.push_back(predict_next(trace.subspan(0, i)));
    }
  }
  return preds;
}

}  // namespace lumos::ml

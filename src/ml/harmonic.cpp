#include "ml/harmonic.h"

#include <algorithm>

namespace lumos::ml {

double HarmonicMeanPredictor::predict_next(std::span<const double> history,
                                           double floor) const noexcept {
  if (history.empty()) return floor;
  const std::size_t w = std::min(window_, history.size());
  double denom = 0.0;
  for (std::size_t i = history.size() - w; i < history.size(); ++i) {
    denom += 1.0 / std::max(floor, history[i]);
  }
  return static_cast<double>(w) / denom;
}

std::vector<double> HarmonicMeanPredictor::predict_trace(
    std::span<const double> trace) const {
  std::vector<double> preds;
  preds.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i == 0) {
      preds.push_back(trace[0]);
    } else {
      preds.push_back(predict_next(trace.subspan(0, i)));
    }
  }
  return preds;
}

}  // namespace lumos::ml

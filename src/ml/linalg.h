// Small dense linear-algebra helpers (LU with partial pivoting) used by the
// Ordinary Kriging baseline's system solve.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lumos::ml {

/// LU factorization with partial pivoting of an n x n row-major matrix.
class LuSolver {
 public:
  LuSolver() = default;

  /// Factorizes `a` (n x n, row-major). Returns false if singular.
  bool factorize(std::vector<double> a, std::size_t n);

  /// Solves A x = b in-place; `b` has length n. Requires factorize() ok.
  void solve(std::vector<double>& b) const;

  /// Allocation-free variant for preallocated callers (the kriging
  /// columnar scan): solves A x = b into `x`. `b` and `x` must not alias
  /// and both have length n. Identical arithmetic (and bits) to solve().
  void solve_into(std::span<const double> b, std::span<double> x) const;

  std::size_t size() const noexcept { return n_; }
  bool ok() const noexcept { return ok_; }

 private:
  std::size_t n_ = 0;
  bool ok_ = false;
  std::vector<double> lu_;
  std::vector<std::size_t> piv_;
};

}  // namespace lumos::ml

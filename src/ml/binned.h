// Columnar (SoA) pre-binned code store — the histogram-build side of the
// columnar feature layer (DESIGN §11).
//
// BinMapper::encode() produces row-major uint16 codes: the code for
// (row r, feature f) lives at codes[r * d + f], so a per-feature histogram
// pass strides through memory d*2 bytes at a time and touches one cache
// line per row. BinnedMatrix stores the same codes transposed — one
// contiguous array per feature — and narrows each column to uint8 when
// every code it holds (including the missing-value code, if the column has
// NaNs) fits: a histogram pass then reads 64 codes per cache line instead
// of one or two.
//
// The narrowing rule is a pure function of the stored data (max code in
// the column <= 255), so building the matrix twice from the same inputs
// yields byte-identical storage, and the training loops that consume it
// read codes in exactly the row order the row-major path uses — which is
// what makes columnar training bit-identical to the row path
// (tests/test_columnar.cpp).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "ml/types.h"

namespace lumos::ml {

class BinMapper;

/// Column-major bin codes with per-column uint8/uint16 width promotion.
/// Quantize once (build), then every tree of an ensemble trains against
/// the same contiguous columns.
class BinnedMatrix {
 public:
  BinnedMatrix() = default;

  /// Encodes `x` through `mapper` into per-feature columns. Column f is
  /// stored narrow (uint8) iff its largest code — the missing code, when
  /// the column contains NaNs — fits in a byte; otherwise it is promoted
  /// to uint16 (e.g. >255 quantile bins, or a NaN under a wide mapper).
  [[nodiscard]] static BinnedMatrix build(const BinMapper& mapper,
                                          const FeatureMatrix& x);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  /// True when feature f's column is stored as uint8.
  bool narrow(std::size_t f) const noexcept { return narrow_[f] != 0; }

  /// Contiguous code column for feature f; valid only for the stored
  /// width (narrow(f) selects which).
  const std::uint8_t* col8(std::size_t f) const noexcept {
    return pool8_.data() + offset_[f];
  }
  const std::uint16_t* col16(std::size_t f) const noexcept {
    return pool16_.data() + offset_[f];
  }

  /// Width-agnostic single-code access (tests, per-row traversal).
  std::uint16_t code(std::size_t r, std::size_t f) const noexcept {
    return narrow_[f] != 0 ? static_cast<std::uint16_t>(col8(f)[r])
                           : col16(f)[r];
  }

  /// The mapper's missing-value code at build time (routes NaN rows).
  std::uint16_t missing_code() const noexcept { return missing_code_; }

  /// Bytes held by the code pools (the README perf note quotes this).
  std::size_t code_bytes() const noexcept {
    return pool8_.size() + 2 * pool16_.size();
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::uint16_t missing_code_ = std::numeric_limits<std::uint16_t>::max();
  std::vector<std::uint8_t> narrow_;   ///< per-column width flag
  std::vector<std::size_t> offset_;    ///< per-column offset into its pool
  std::vector<std::uint8_t> pool8_;    ///< all narrow columns, concatenated
  std::vector<std::uint16_t> pool16_;  ///< all wide columns, concatenated
};

}  // namespace lumos::ml

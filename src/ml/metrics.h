// Evaluation metrics used in paper §6.1: MAE and RMSE for regression;
// weighted-average F1 and per-class recall for classification.
#pragma once

#include <span>
#include <vector>

namespace lumos::ml {

[[nodiscard]] double mae(std::span<const double> pred,
                         std::span<const double> truth);
[[nodiscard]] double rmse(std::span<const double> pred,
                          std::span<const double> truth);

/// n_classes x n_classes matrix; entry (t, p) counts samples of true class
/// t predicted as p.
struct ConfusionMatrix {
  int n_classes = 0;
  std::vector<std::size_t> counts;  ///< row-major (truth x predicted)

  std::size_t at(int truth, int pred) const noexcept {
    return counts[static_cast<std::size_t>(truth) *
                      static_cast<std::size_t>(n_classes) +
                  static_cast<std::size_t>(pred)];
  }
};

[[nodiscard]] ConfusionMatrix confusion_matrix(std::span<const int> pred,
                                 std::span<const int> truth, int n_classes);

/// Precision of class c: TP / (TP + FP). 0 when undefined.
[[nodiscard]] double precision_of(const ConfusionMatrix& cm, int c) noexcept;

/// Recall of class c: TP / (TP + FN). 0 when undefined. The paper tracks
/// recall of the low-throughput class specifically (§6.1).
[[nodiscard]] double recall_of(const ConfusionMatrix& cm, int c) noexcept;

/// F1 of class c (harmonic mean of precision and recall).
[[nodiscard]] double f1_of(const ConfusionMatrix& cm, int c) noexcept;

/// Weighted-average F1: per-class F1 weighted by true-class support.
[[nodiscard]] double weighted_f1(const ConfusionMatrix& cm) noexcept;

[[nodiscard]] double accuracy(const ConfusionMatrix& cm) noexcept;

}  // namespace lumos::ml

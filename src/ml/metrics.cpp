#include "ml/metrics.h"

#include <cmath>

#include "common/contracts.h"

namespace lumos::ml {

double mae(std::span<const double> pred, std::span<const double> truth) {
  LUMOS_EXPECTS(pred.size() == truth.size(),
                "mae: pred/truth length mismatch");
  if (pred.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    s += std::fabs(pred[i] - truth[i]);
  }
  return s / static_cast<double>(pred.size());
}

double rmse(std::span<const double> pred, std::span<const double> truth) {
  LUMOS_EXPECTS(pred.size() == truth.size(),
                "rmse: pred/truth length mismatch");
  if (pred.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - truth[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(pred.size()));
}

ConfusionMatrix confusion_matrix(std::span<const int> pred,
                                 std::span<const int> truth, int n_classes) {
  LUMOS_EXPECTS(pred.size() == truth.size(),
                "confusion_matrix: pred/truth length mismatch");
  ConfusionMatrix cm;
  cm.n_classes = n_classes;
  cm.counts.assign(
      static_cast<std::size_t>(n_classes) * static_cast<std::size_t>(n_classes),
      0);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const int t = truth[i], p = pred[i];
    // Out-of-range labels indicate a broken class encoding upstream; fail
    // loudly in debug builds instead of silently skewing every derived
    // metric (weighted F1 weights by per-class support).
    LUMOS_EXPECTS(t >= 0 && t < n_classes,
                  "confusion_matrix: truth label out of [0, n_classes)");
    LUMOS_EXPECTS(p >= 0 && p < n_classes,
                  "confusion_matrix: predicted label out of [0, n_classes)");
    if (t < 0 || t >= n_classes || p < 0 || p >= n_classes) continue;
    ++cm.counts[static_cast<std::size_t>(t) *
                    static_cast<std::size_t>(n_classes) +
                static_cast<std::size_t>(p)];
  }
  return cm;
}

double precision_of(const ConfusionMatrix& cm, int c) noexcept {
  std::size_t tp = cm.at(c, c);
  std::size_t denom = 0;
  for (int t = 0; t < cm.n_classes; ++t) denom += cm.at(t, c);
  return denom == 0 ? 0.0
                    : static_cast<double>(tp) / static_cast<double>(denom);
}

double recall_of(const ConfusionMatrix& cm, int c) noexcept {
  std::size_t tp = cm.at(c, c);
  std::size_t denom = 0;
  for (int p = 0; p < cm.n_classes; ++p) denom += cm.at(c, p);
  return denom == 0 ? 0.0
                    : static_cast<double>(tp) / static_cast<double>(denom);
}

double f1_of(const ConfusionMatrix& cm, int c) noexcept {
  const double p = precision_of(cm, c);
  const double r = recall_of(cm, c);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double weighted_f1(const ConfusionMatrix& cm) noexcept {
  std::size_t total = 0;
  double acc = 0.0;
  for (int c = 0; c < cm.n_classes; ++c) {
    std::size_t support = 0;
    for (int p = 0; p < cm.n_classes; ++p) support += cm.at(c, p);
    total += support;
    acc += static_cast<double>(support) * f1_of(cm, c);
  }
  return total == 0 ? 0.0 : acc / static_cast<double>(total);
}

double accuracy(const ConfusionMatrix& cm) noexcept {
  std::size_t total = 0, correct = 0;
  for (int t = 0; t < cm.n_classes; ++t) {
    for (int p = 0; p < cm.n_classes; ++p) {
      total += cm.at(t, p);
      if (t == p) correct += cm.at(t, p);
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace lumos::ml

// k-nearest-neighbors regressor/classifier over z-score standardized
// features — a classic 3G/4G prediction baseline (paper §6.3, Table 9).
//
// Two query paths, bit-identical by construction:
//   * predict(): the row-major reference loop (one training row at a time,
//     features ascending, bounded max-heap k-selection).
//   * predict_scan(): the columnar SoA path — fit() also packs the
//     standardized training rows into a column-major buffer (ml/ sits
//     below data/, so it keeps its own SoA twin rather than pulling in
//     data::ColumnStore), and the scan streams one contiguous feature
//     column at a time, accumulating each
//     row's squared distance in the SAME ascending feature order, then
//     replays the exact same max-heap push/pop sequence on a preallocated
//     buffer. Same FP order everywhere -> same bits; no allocation, so it
//     can sit on a serving hot path (a lumos_lint reachability root).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ml/types.h"

namespace lumos::ml {

struct KnnConfig {
  std::size_t k = 10;
  /// Optional cap on stored training points (uniform subsample) to bound
  /// brute-force query cost; 0 = keep everything.
  std::size_t max_train = 0;
  /// Z-score the features before distance computation. The 3G/4G-era
  /// systems the paper baselines against operate on raw coordinates
  /// (distances dominated by the largest-scale feature); disable to
  /// emulate them.
  bool standardize = true;
  std::uint64_t seed = 3;
};

/// Preallocated working set for the allocation-free columnar scans. The
/// caller owns it and reserves once (cold) against the fitted model's
/// shape; predict_scan then never allocates.
class KnnScratch {
 public:
  KnnScratch() = default;

  /// Sizes for a model with `rows` stored training rows and `width`
  /// features, selecting up to `k` neighbors; classifiers additionally
  /// need `n_classes` vote slots.
  void reserve(std::size_t rows, std::size_t width, std::size_t k,
               std::size_t n_classes = 0) {
    d2_.assign(rows, 0.0);
    q_.assign(width, 0.0);
    heap_.assign(k, {0.0, 0});
    votes_.assign(n_classes, 0);
  }

 private:
  friend class KnnRegressor;
  friend class KnnClassifier;
  std::vector<double> d2_;  ///< squared distance per training row
  std::vector<double> q_;   ///< standardized query row
  std::vector<std::pair<double, std::size_t>> heap_;  ///< bounded max-heap
  std::vector<int> votes_;  ///< classifier vote tally
};

class KnnRegressor final : public Regressor {
 public:
  explicit KnnRegressor(KnnConfig cfg = {}) noexcept : cfg_(cfg) {}

  void fit(const FeatureMatrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict(std::span<const double> row) const override;

  /// Columnar SoA scan, bit-identical to predict() (see file header).
  /// `scratch` must be reserved for (rows(), cols(), k). Allocation-free;
  /// a lumos_lint hot-path reachability root.
  [[nodiscard]] double predict_scan(std::span<const double> row,
                                    KnnScratch& scratch) const noexcept;

  std::size_t rows() const noexcept { return x_.rows(); }
  std::size_t cols() const noexcept { return x_.cols(); }
  std::size_t k() const noexcept { return cfg_.k; }
  /// Feature column `c` of the standardized training points as one
  /// contiguous run of rows() values.
  const double* column(std::size_t c) const noexcept {
    return cols_.data() + c * x_.rows();
  }

 private:
  KnnConfig cfg_;
  FeatureMatrix x_;           ///< standardized training rows
  std::vector<double> cols_;  ///< the same rows, column-major (SoA)
  std::vector<double> y_;
  std::vector<double> mean_, inv_sd_;
};

class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(KnnConfig cfg = {}) noexcept : cfg_(cfg) {}

  void fit(const FeatureMatrix& x, std::span<const int> y,
           int n_classes) override;
  [[nodiscard]] int predict(std::span<const double> row) const override;

  /// Columnar SoA scan, bit-identical to predict() (see file header).
  /// `scratch` must be reserved for (rows(), cols(), k, n_classes).
  /// Allocation-free; a lumos_lint hot-path reachability root.
  [[nodiscard]] int predict_scan(std::span<const double> row,
                                 KnnScratch& scratch) const noexcept;

  std::size_t rows() const noexcept { return x_.rows(); }
  std::size_t cols() const noexcept { return x_.cols(); }
  std::size_t k() const noexcept { return cfg_.k; }
  const double* column(std::size_t c) const noexcept {
    return cols_.data() + c * x_.rows();
  }

 private:
  KnnConfig cfg_;
  FeatureMatrix x_;
  std::vector<double> cols_;  ///< column-major twin of x_ (SoA)
  std::vector<int> y_;
  int n_classes_ = 0;
  std::vector<double> mean_, inv_sd_;
};

}  // namespace lumos::ml

// k-nearest-neighbors regressor/classifier over z-score standardized
// features — a classic 3G/4G prediction baseline (paper §6.3, Table 9).
#pragma once

#include <cstdint>

#include "ml/types.h"

namespace lumos::ml {

struct KnnConfig {
  std::size_t k = 10;
  /// Optional cap on stored training points (uniform subsample) to bound
  /// brute-force query cost; 0 = keep everything.
  std::size_t max_train = 0;
  /// Z-score the features before distance computation. The 3G/4G-era
  /// systems the paper baselines against operate on raw coordinates
  /// (distances dominated by the largest-scale feature); disable to
  /// emulate them.
  bool standardize = true;
  std::uint64_t seed = 3;
};

class KnnRegressor final : public Regressor {
 public:
  explicit KnnRegressor(KnnConfig cfg = {}) noexcept : cfg_(cfg) {}

  void fit(const FeatureMatrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict(std::span<const double> row) const override;

 private:
  KnnConfig cfg_;
  FeatureMatrix x_;           ///< standardized training rows
  std::vector<double> y_;
  std::vector<double> mean_, inv_sd_;
};

class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(KnnConfig cfg = {}) noexcept : cfg_(cfg) {}

  void fit(const FeatureMatrix& x, std::span<const int> y,
           int n_classes) override;
  [[nodiscard]] int predict(std::span<const double> row) const override;

 private:
  KnnConfig cfg_;
  FeatureMatrix x_;
  std::vector<int> y_;
  int n_classes_ = 0;
  std::vector<double> mean_, inv_sd_;
};

}  // namespace lumos::ml

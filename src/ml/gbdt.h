// Gradient-boosted decision trees (Friedman 2001) — the paper's primary
// classical model (§5.2 "GDBT"). Regression boosts squared error;
// classification boosts the multiclass softmax cross-entropy with Newton
// leaf values. Both report per-feature global gain importance (Fig. 22).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/tree.h"
#include "ml/types.h"

namespace lumos::ml {

struct GbdtConfig {
  std::size_t n_estimators = 350;  ///< paper uses 8000; scaled for CPU budget
  int max_depth = 8;               ///< paper: depth 8
  double learning_rate = 0.07;     ///< paper: 0.01 with 8000 trees
  std::size_t min_samples_leaf = 3;
  double lambda = 1.0;
  int n_bins = 128;
  double subsample = 1.0;          ///< stochastic GBM row fraction
  std::uint64_t seed = 13;
};

class GbdtRegressor final : public Regressor {
 public:
  explicit GbdtRegressor(GbdtConfig cfg = {}) noexcept : cfg_(cfg) {}

  void fit(const FeatureMatrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict(std::span<const double> row) const override;

  /// Normalized total split gain per feature (sums to 1); Fig. 22.
  [[nodiscard]] std::vector<double> feature_importance() const;

  const GbdtConfig& config() const noexcept { return cfg_; }

 private:
  GbdtConfig cfg_;
  BinMapper mapper_;
  double base_ = 0.0;
  std::vector<GradientTree> trees_;
  std::size_t n_features_ = 0;
};

class GbdtClassifier final : public Classifier {
 public:
  explicit GbdtClassifier(GbdtConfig cfg = {}) noexcept : cfg_(cfg) {}

  void fit(const FeatureMatrix& x, std::span<const int> y,
           int n_classes) override;
  [[nodiscard]] int predict(std::span<const double> row) const override;

  /// Per-class raw scores (pre-softmax margins).
  [[nodiscard]] std::vector<double> decision_function(
      std::span<const double> row) const;

  [[nodiscard]] std::vector<double> feature_importance() const;

 private:
  GbdtConfig cfg_;
  BinMapper mapper_;
  int n_classes_ = 0;
  std::vector<double> base_;  ///< per-class prior log-odds
  // trees_[stage * n_classes_ + c]
  std::vector<GradientTree> trees_;
  std::size_t n_features_ = 0;
};

}  // namespace lumos::ml

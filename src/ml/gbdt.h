// Gradient-boosted decision trees (Friedman 2001) — the paper's primary
// classical model (§5.2 "GDBT"). Regression boosts squared error;
// classification boosts the multiclass softmax cross-entropy with Newton
// leaf values. Both report per-feature global gain importance (Fig. 22).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/tree.h"
#include "ml/types.h"

namespace lumos::ml {

struct GbdtConfig {
  std::size_t n_estimators = 350;  ///< paper uses 8000; scaled for CPU budget
  int max_depth = 8;               ///< paper: depth 8
  double learning_rate = 0.07;     ///< paper: 0.01 with 8000 trees
  std::size_t min_samples_leaf = 3;
  double lambda = 1.0;
  int n_bins = 128;
  double subsample = 1.0;          ///< stochastic GBM row fraction
  std::uint64_t seed = 13;
};

class GbdtRegressor final : public Regressor {
 public:
  explicit GbdtRegressor(GbdtConfig cfg = {}) noexcept : cfg_(cfg) {}

  void fit(const FeatureMatrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict(std::span<const double> row) const override;

  /// Normalized total split gain per feature (sums to 1); Fig. 22.
  [[nodiscard]] std::vector<double> feature_importance() const;

  const GbdtConfig& config() const noexcept { return cfg_; }

  // --- fitted-state access for serialization / flattening (serve/) ---
  const BinMapper& mapper() const noexcept { return mapper_; }
  double base() const noexcept { return base_; }
  const std::vector<GradientTree>& trees() const noexcept { return trees_; }
  std::size_t n_features() const noexcept { return n_features_; }

  /// Reinstates a fitted model from its serialized parts (serve/model_io).
  void restore(BinMapper mapper, double base, std::vector<GradientTree> trees,
               std::size_t n_features) {
    mapper_ = std::move(mapper);
    base_ = base;
    trees_ = std::move(trees);
    n_features_ = n_features;
  }

 private:
  GbdtConfig cfg_;
  BinMapper mapper_;
  double base_ = 0.0;
  std::vector<GradientTree> trees_;
  std::size_t n_features_ = 0;
};

class GbdtClassifier final : public Classifier {
 public:
  explicit GbdtClassifier(GbdtConfig cfg = {}) noexcept : cfg_(cfg) {}

  void fit(const FeatureMatrix& x, std::span<const int> y,
           int n_classes) override;
  [[nodiscard]] int predict(std::span<const double> row) const override;

  /// Per-class raw scores (pre-softmax margins).
  [[nodiscard]] std::vector<double> decision_function(
      std::span<const double> row) const;

  [[nodiscard]] std::vector<double> feature_importance() const;

  const GbdtConfig& config() const noexcept { return cfg_; }

  // --- fitted-state access for serialization / flattening (serve/) ---
  const BinMapper& mapper() const noexcept { return mapper_; }
  int n_classes() const noexcept { return n_classes_; }
  const std::vector<double>& base() const noexcept { return base_; }
  /// trees()[stage * n_classes() + c] is stage `stage`'s tree for class c.
  const std::vector<GradientTree>& trees() const noexcept { return trees_; }
  std::size_t n_features() const noexcept { return n_features_; }

  /// Reinstates a fitted model from its serialized parts (serve/model_io).
  void restore(BinMapper mapper, int n_classes, std::vector<double> base,
               std::vector<GradientTree> trees, std::size_t n_features) {
    mapper_ = std::move(mapper);
    n_classes_ = n_classes;
    base_ = std::move(base);
    trees_ = std::move(trees);
    n_features_ = n_features;
  }

 private:
  GbdtConfig cfg_;
  BinMapper mapper_;
  int n_classes_ = 0;
  std::vector<double> base_;  ///< per-class prior log-odds
  // trees_[stage * n_classes_ + c]
  std::vector<GradientTree> trees_;
  std::size_t n_features_ = 0;
};

}  // namespace lumos::ml

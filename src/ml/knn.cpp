#include "ml/knn.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/rng.h"

namespace lumos::ml {
namespace {

void standardize_stats(const FeatureMatrix& x, std::vector<double>& mean,
                       std::vector<double>& inv_sd) {
  const std::size_t d = x.cols(), n = x.rows();
  mean.assign(d, 0.0);
  inv_sd.assign(d, 1.0);
  if (n == 0) return;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) mean[c] += x.at(r, c);
  }
  for (auto& m : mean) m /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      const double dv = x.at(r, c) - mean[c];
      var[c] += dv * dv;
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    const double sd = std::sqrt(var[c] / static_cast<double>(n));
    inv_sd[c] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

/// Indices of the k smallest squared distances from `q` to rows of `x`.
std::vector<std::size_t> k_nearest(const FeatureMatrix& x,
                                   std::span<const double> q, std::size_t k) {
  using Entry = std::pair<double, std::size_t>;  // (dist2, row)
  std::priority_queue<Entry> heap;               // max-heap keeps k smallest
  const std::size_t d = x.cols();
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    double d2 = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double diff = row[c] - q[c];
      d2 += diff * diff;
    }
    if (heap.size() < k) {
      heap.emplace(d2, r);
    } else if (d2 < heap.top().first) {
      heap.pop();
      heap.emplace(d2, r);
    }
  }
  std::vector<std::size_t> idx;
  idx.reserve(heap.size());
  while (!heap.empty()) {
    idx.push_back(heap.top().second);
    heap.pop();
  }
  return idx;
}

/// Column-major (SoA) copy of `x`: feature c occupies one contiguous run
/// of x.rows() values starting at c * x.rows().
std::vector<double> pack_columns(const FeatureMatrix& x) {
  std::vector<double> cols(x.rows() * x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    double* dst = cols.data() + c * x.rows();
    for (std::size_t r = 0; r < x.rows(); ++r) dst[r] = x.at(r, c);
  }
  return cols;
}

template <typename T>
void subsample_rows(FeatureMatrix& x, std::vector<T>& y, std::size_t cap,
                    std::uint64_t seed) {
  if (cap == 0 || x.rows() <= cap) return;
  Rng rng(seed);
  auto perm = rng.permutation(x.rows());
  perm.resize(cap);
  std::sort(perm.begin(), perm.end());
  FeatureMatrix nx(cap, x.cols());
  std::vector<T> ny(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    const auto src = x.row(perm[i]);
    std::copy(src.begin(), src.end(), nx.row(i).begin());
    ny[i] = y[perm[i]];
  }
  x = std::move(nx);
  y = std::move(ny);
}

}  // namespace

void KnnRegressor::fit(const FeatureMatrix& x, std::span<const double> y) {
  x_ = x;
  y_.assign(y.begin(), y.end());
  subsample_rows(x_, y_, cfg_.max_train, cfg_.seed);
  if (cfg_.standardize) {
    standardize_stats(x_, mean_, inv_sd_);
  } else {
    mean_.assign(x_.cols(), 0.0);
    inv_sd_.assign(x_.cols(), 1.0);
  }
  for (std::size_t r = 0; r < x_.rows(); ++r) {
    auto row = x_.row(r);
    for (std::size_t c = 0; c < x_.cols(); ++c) {
      row[c] = (row[c] - mean_[c]) * inv_sd_[c];
    }
  }
  // Columnar twin of the standardized rows, for predict_scan (cold).
  cols_ = pack_columns(x_);
}

double KnnRegressor::predict_scan(std::span<const double> row,
                                  KnnScratch& s) const noexcept {
  const std::size_t n = x_.rows();
  if (n == 0) return 0.0;
  const std::size_t d = x_.cols();
  for (std::size_t c = 0; c < d; ++c) {
    s.q_[c] = (row[c] - mean_[c]) * inv_sd_[c];
  }
  double* d2 = s.d2_.data();
  for (std::size_t r = 0; r < n; ++r) d2[r] = 0.0;
  // Feature-outer SoA sweep: each row's partial sum still visits features
  // in ascending order — the row-major loop's exact accumulation order —
  // but the inner loop streams one contiguous column (gather-free,
  // auto-vectorizable) instead of striding across rows.
  for (std::size_t c = 0; c < d; ++c) {
    const double* col = cols_.data() + c * n;
    const double qc = s.q_[c];
    for (std::size_t r = 0; r < n; ++r) {
      const double diff = col[r] - qc;
      d2[r] += diff * diff;
    }
  }
  // Replay k_nearest's bounded max-heap exactly: same comparator
  // (std::less on (dist2, row)), same push/pop sequence, preallocated
  // storage — so the pop order, and with it the FP order of the y sum,
  // matches predict() bit for bit.
  const std::size_t k = std::min(cfg_.k, n);
  auto* heap = s.heap_.data();
  std::size_t live = 0;
  for (std::size_t r = 0; r < n; ++r) {
    if (live < k) {
      heap[live] = {d2[r], r};
      ++live;
      std::push_heap(heap, heap + live);
    } else if (k != 0 && d2[r] < heap[0].first) {
      std::pop_heap(heap, heap + live);
      heap[live - 1] = {d2[r], r};
      std::push_heap(heap, heap + live);
    }
  }
  double sum = 0.0;
  const auto cnt = static_cast<double>(live);
  for (; live > 0; --live) {
    sum += y_[heap[0].second];
    std::pop_heap(heap, heap + live);
  }
  return sum / cnt;
}

double KnnRegressor::predict(std::span<const double> row) const {
  if (x_.rows() == 0) return 0.0;
  std::vector<double> q(row.size());
  for (std::size_t c = 0; c < q.size(); ++c) {
    q[c] = (row[c] - mean_[c]) * inv_sd_[c];
  }
  const auto idx = k_nearest(x_, q, std::min(cfg_.k, x_.rows()));
  double s = 0.0;
  for (std::size_t i : idx) s += y_[i];
  return s / static_cast<double>(idx.size());
}

void KnnClassifier::fit(const FeatureMatrix& x, std::span<const int> y,
                        int n_classes) {
  n_classes_ = n_classes;
  x_ = x;
  y_.assign(y.begin(), y.end());
  subsample_rows(x_, y_, cfg_.max_train, cfg_.seed);
  if (cfg_.standardize) {
    standardize_stats(x_, mean_, inv_sd_);
  } else {
    mean_.assign(x_.cols(), 0.0);
    inv_sd_.assign(x_.cols(), 1.0);
  }
  for (std::size_t r = 0; r < x_.rows(); ++r) {
    auto row = x_.row(r);
    for (std::size_t c = 0; c < x_.cols(); ++c) {
      row[c] = (row[c] - mean_[c]) * inv_sd_[c];
    }
  }
  cols_ = pack_columns(x_);
}

int KnnClassifier::predict_scan(std::span<const double> row,
                                KnnScratch& s) const noexcept {
  const std::size_t n = x_.rows();
  if (n == 0 || n_classes_ == 0) return 0;
  const std::size_t d = x_.cols();
  for (std::size_t c = 0; c < d; ++c) {
    s.q_[c] = (row[c] - mean_[c]) * inv_sd_[c];
  }
  double* d2 = s.d2_.data();
  for (std::size_t r = 0; r < n; ++r) d2[r] = 0.0;
  for (std::size_t c = 0; c < d; ++c) {
    const double* col = cols_.data() + c * n;
    const double qc = s.q_[c];
    for (std::size_t r = 0; r < n; ++r) {
      const double diff = col[r] - qc;
      d2[r] += diff * diff;
    }
  }
  const std::size_t k = std::min(cfg_.k, n);
  auto* heap = s.heap_.data();
  std::size_t live = 0;
  for (std::size_t r = 0; r < n; ++r) {
    if (live < k) {
      heap[live] = {d2[r], r};
      ++live;
      std::push_heap(heap, heap + live);
    } else if (k != 0 && d2[r] < heap[0].first) {
      std::pop_heap(heap, heap + live);
      heap[live - 1] = {d2[r], r};
      std::push_heap(heap, heap + live);
    }
  }
  std::fill(s.votes_.begin(), s.votes_.end(), 0);
  for (; live > 0; --live) {
    ++s.votes_[static_cast<std::size_t>(y_[heap[0].second])];
    std::pop_heap(heap, heap + live);
  }
  // First-max-wins argmax over the vote tally — what std::max_element
  // resolves to in predict().
  int best = 0;
  for (int c = 1; c < n_classes_; ++c) {
    if (s.votes_[static_cast<std::size_t>(c)] >
        s.votes_[static_cast<std::size_t>(best)]) {
      best = c;
    }
  }
  return best;
}

int KnnClassifier::predict(std::span<const double> row) const {
  if (x_.rows() == 0 || n_classes_ == 0) return 0;
  std::vector<double> q(row.size());
  for (std::size_t c = 0; c < q.size(); ++c) {
    q[c] = (row[c] - mean_[c]) * inv_sd_[c];
  }
  const auto idx = k_nearest(x_, q, std::min(cfg_.k, x_.rows()));
  std::vector<int> votes(static_cast<std::size_t>(n_classes_), 0);
  for (std::size_t i : idx) ++votes[static_cast<std::size_t>(y_[i])];
  return static_cast<int>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

}  // namespace lumos::ml

#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/contracts.h"
#include "common/parallel.h"
#include "ml/binned.h"

namespace lumos::ml {

void BinMapper::fit(const FeatureMatrix& x, int n_bins) {
  max_bins_ = n_bins;
  const std::size_t d = x.cols();
  const std::size_t n = x.rows();
  edges_.assign(d, {});
  if (n == 0) return;
  std::vector<double> col;
  col.reserve(n);
  for (std::size_t f = 0; f < d; ++f) {
    // Quantiles come from the finite values only; NaN is not orderable
    // (sorting it is UB via strict-weak-ordering violation) and gets its
    // own dedicated code in bin().
    col.clear();
    for (std::size_t r = 0; r < n; ++r) {
      const double v = x.at(r, f);
      if (!std::isnan(v)) col.push_back(v);
    }
    if (col.empty()) continue;  // all-missing feature: single bin 0
    std::sort(col.begin(), col.end());
    const std::size_t m = col.size();
    auto& e = edges_[f];
    e.reserve(static_cast<std::size_t>(n_bins));
    for (int b = 1; b < n_bins; ++b) {
      const double q = static_cast<double>(b) / n_bins;
      const auto idx = static_cast<std::size_t>(q * static_cast<double>(m - 1));
      const double cut = col[idx];
      if (e.empty() || cut > e.back()) e.push_back(cut);
    }
  }
}

std::uint16_t BinMapper::bin(std::size_t f, double v) const noexcept {
  if (std::isnan(v)) return missing_code();
  const auto& e = edges_[f];
  // First bin whose cut point is >= v; values above all cuts land in the
  // last bin.
  const auto it = std::lower_bound(e.begin(), e.end(), v);
  return static_cast<std::uint16_t>(it - e.begin());
}

double BinMapper::upper_edge(std::size_t f, std::uint16_t b) const noexcept {
  const auto& e = edges_[f];
  if (e.empty()) return std::numeric_limits<double>::infinity();
  if (b >= e.size()) return std::numeric_limits<double>::infinity();
  return e[b];
}

std::vector<std::uint16_t> BinMapper::encode(const FeatureMatrix& x) const {
  std::vector<std::uint16_t> codes(x.rows() * x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t f = 0; f < x.cols(); ++f) {
      codes[r * x.cols() + f] = bin(f, x.at(r, f));
    }
  }
  return codes;
}

namespace {

struct NodeTask {
  int node = 0;
  int depth = 0;
  std::size_t begin = 0;  ///< range into the shared index buffer
  std::size_t end = 0;
};

/// Rows-in-node threshold below which the candidate-feature loop is not
/// worth distributing across the pool (histogram build is O(rows) per
/// feature; small nodes are dominated by dispatch overhead).
constexpr std::size_t kParallelNodeRows = 1024;

/// Code source over row-major uint16 codes (the seed layout): one stride-d
/// load per row in the histogram pass.
///
/// Both sources take `idx == nullptr` to mean "the range is the identity
/// permutation" (row r == position i) — fit_impl detects that once per
/// node and the accumulate loops drop the per-row indirection. Row visit
/// order is unchanged either way, so the per-bin floating-point sums are
/// bit-identical with and without the fast path.
struct RowMajorCodes {
  const std::uint16_t* codes;
  std::size_t d;

  std::uint16_t code(std::size_t r, std::size_t f) const noexcept {
    return codes[r * d + f];
  }
  void accumulate(std::size_t f, const std::size_t* idx, std::size_t begin,
                  std::size_t end, const double* grad, const double* hess,
                  double* hg, double* hh, std::size_t* hc) const noexcept {
    if (idx == nullptr) {
      // 4-way unroll with the code loads hoisted ahead of the bin updates:
      // the four strided loads issue back to back instead of each waiting
      // behind the previous row's read-modify-write of hg/hh. Rows are
      // still visited (and each bin accumulated) in ascending row order,
      // so the per-bin FP sums are bit-identical to the plain loop.
      std::size_t r = begin;
      for (; r + 4 <= end; r += 4) {
        const std::uint16_t b0 = codes[(r + 0) * d + f];
        const std::uint16_t b1 = codes[(r + 1) * d + f];
        const std::uint16_t b2 = codes[(r + 2) * d + f];
        const std::uint16_t b3 = codes[(r + 3) * d + f];
        hg[b0] += grad[r + 0];
        hh[b0] += hess[r + 0];
        ++hc[b0];
        hg[b1] += grad[r + 1];
        hh[b1] += hess[r + 1];
        ++hc[b1];
        hg[b2] += grad[r + 2];
        hh[b2] += hess[r + 2];
        ++hc[b2];
        hg[b3] += grad[r + 3];
        hh[b3] += hess[r + 3];
        ++hc[b3];
      }
      for (; r < end; ++r) {
        const std::uint16_t b = codes[r * d + f];
        hg[b] += grad[r];
        hh[b] += hess[r];
        ++hc[b];
      }
      return;
    }
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t r = idx[i];
      const std::uint16_t b = codes[r * d + f];
      hg[b] += grad[r];
      hh[b] += hess[r];
      ++hc[b];
    }
  }
};

/// Code source over a columnar BinnedMatrix: the histogram pass walks one
/// contiguous (uint8 where possible) column, dispatched on the stored
/// width once per feature instead of once per access. Row order inside
/// the loop matches RowMajorCodes exactly, so per-bin accumulation — and
/// therefore the chosen split — is bit-identical.
struct ColumnarCodes {
  const BinnedMatrix* b;

  std::uint16_t code(std::size_t r, std::size_t f) const noexcept {
    return b->code(r, f);
  }
  void accumulate(std::size_t f, const std::size_t* idx, std::size_t begin,
                  std::size_t end, const double* grad, const double* hess,
                  double* hg, double* hh, std::size_t* hc) const noexcept {
    if (b->narrow(f)) {
      const std::uint8_t* col = b->col8(f);
      if (idx == nullptr) {
        // Identity range: the code column is read strictly sequentially —
        // 64 codes per cache line, ideal for the hardware prefetcher. Same
        // hoisted-load 4-way unroll as RowMajorCodes (bit-identical: rows
        // and their bin updates stay in ascending row order).
        std::size_t r = begin;
        for (; r + 4 <= end; r += 4) {
          const std::uint8_t c0 = col[r + 0];
          const std::uint8_t c1 = col[r + 1];
          const std::uint8_t c2 = col[r + 2];
          const std::uint8_t c3 = col[r + 3];
          hg[c0] += grad[r + 0];
          hh[c0] += hess[r + 0];
          ++hc[c0];
          hg[c1] += grad[r + 1];
          hh[c1] += hess[r + 1];
          ++hc[c1];
          hg[c2] += grad[r + 2];
          hh[c2] += hess[r + 2];
          ++hc[c2];
          hg[c3] += grad[r + 3];
          hh[c3] += hess[r + 3];
          ++hc[c3];
        }
        for (; r < end; ++r) {
          const std::uint8_t c = col[r];
          hg[c] += grad[r];
          hh[c] += hess[r];
          ++hc[c];
        }
        return;
      }
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t r = idx[i];
        const std::uint8_t c = col[r];
        hg[c] += grad[r];
        hh[c] += hess[r];
        ++hc[c];
      }
    } else {
      const std::uint16_t* col = b->col16(f);
      if (idx == nullptr) {
        std::size_t r = begin;
        for (; r + 4 <= end; r += 4) {
          const std::uint16_t c0 = col[r + 0];
          const std::uint16_t c1 = col[r + 1];
          const std::uint16_t c2 = col[r + 2];
          const std::uint16_t c3 = col[r + 3];
          hg[c0] += grad[r + 0];
          hh[c0] += hess[r + 0];
          ++hc[c0];
          hg[c1] += grad[r + 1];
          hh[c1] += hess[r + 1];
          ++hc[c1];
          hg[c2] += grad[r + 2];
          hh[c2] += hess[r + 2];
          ++hc[c2];
          hg[c3] += grad[r + 3];
          hh[c3] += hess[r + 3];
          ++hc[c3];
        }
        for (; r < end; ++r) {
          const std::uint16_t c = col[r];
          hg[c] += grad[r];
          hh[c] += hess[r];
          ++hc[c];
        }
        return;
      }
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t r = idx[i];
        const std::uint16_t c = col[r];
        hg[c] += grad[r];
        hh[c] += hess[r];
        ++hc[c];
      }
    }
  }
};

}  // namespace

void GradientTree::fit(const std::vector<std::uint16_t>& codes,
                       const BinMapper& mapper, std::span<const double> grad,
                       std::span<const double> hess,
                       std::span<const std::size_t> indices,
                       const TreeConfig& cfg, Rng* rng) {
  LUMOS_EXPECTS(codes.size() == grad.size() * mapper.n_features(),
                "GradientTree::fit: codes size disagrees with mapper width");
  fit_impl(RowMajorCodes{codes.data(), mapper.n_features()}, mapper, grad,
           hess, indices, cfg, rng);
}

void GradientTree::fit(const BinnedMatrix& binned, const BinMapper& mapper,
                       std::span<const double> grad,
                       std::span<const double> hess,
                       std::span<const std::size_t> indices,
                       const TreeConfig& cfg, Rng* rng) {
  LUMOS_EXPECTS(binned.rows() == grad.size() &&
                    binned.cols() == mapper.n_features(),
                "GradientTree::fit: binned shape disagrees with mapper");
  fit_impl(ColumnarCodes{&binned}, mapper, grad, hess, indices, cfg, rng);
}

template <class Source>
void GradientTree::fit_impl(const Source& src, const BinMapper& mapper,
                            std::span<const double> grad,
                            std::span<const double> hess,
                            std::span<const std::size_t> indices,
                            const TreeConfig& cfg, Rng* rng) {
  LUMOS_EXPECTS(grad.size() == hess.size(),
                "GradientTree::fit: grad/hess length mismatch");
  nodes_.clear();
  gains_.clear();
  const std::size_t d = mapper.n_features();
  const auto n_bins = static_cast<std::size_t>(mapper.max_bins());
  missing_code_ = mapper.missing_code();
  if (indices.empty() || d == 0) {
    nodes_.push_back(Node{});
    gains_.push_back(0.0);
    return;
  }

  std::vector<std::size_t> idx(indices.begin(), indices.end());

  // Reusable histogram buffers; the extra slot is the missing-value bin.
  std::vector<double> hist_g(n_bins + 1), hist_h(n_bins + 1);
  std::vector<std::size_t> hist_c(n_bins + 1);
  std::vector<std::size_t> feat_pool(d);
  std::iota(feat_pool.begin(), feat_pool.end(), std::size_t{0});

  nodes_.push_back(Node{});
  gains_.push_back(0.0);
  std::vector<NodeTask> stack{{0, 0, 0, idx.size()}};

  while (!stack.empty()) {
    const NodeTask task = stack.back();
    stack.pop_back();
    const std::size_t count = task.end - task.begin;

    double gsum = 0.0, hsum = 0.0;
    for (std::size_t i = task.begin; i < task.end; ++i) {
      gsum += grad[idx[i]];
      hsum += hess[idx[i]];
    }
    // Convention: `grad` holds the NEGATIVE loss gradient (i.e. the target
    // direction), so the Newton leaf is +G/(H+lambda). With grad=y, hess=1
    // this reduces to the (shrunken) mean of y.
    nodes_[static_cast<std::size_t>(task.node)].value =
        gsum / (hsum + cfg.lambda);

    if (task.depth >= cfg.max_depth || count < 2 * cfg.min_samples_leaf) {
      continue;
    }

    // Choose candidate features (all, or a random subset for forests).
    std::span<const std::size_t> features(feat_pool);
    std::vector<std::size_t> subset;
    if (cfg.feature_subsample > 0 && cfg.feature_subsample < d && rng) {
      subset = feat_pool;
      rng->shuffle(subset);
      subset.resize(cfg.feature_subsample);
      features = subset;
    }

    const double parent_score = gsum * gsum / (hsum + cfg.lambda);

    // Each candidate feature builds its histogram and scans its bins
    // independently; only the per-feature winners are compared, in fixed
    // feature order, so the chosen split does not depend on how the loop
    // is scheduled.
    // Identity probe: when the node's index range is the identity
    // permutation (always true at the root of a boosting fit, where
    // indices are 0..n-1 and no partition has run yet), every candidate
    // feature's histogram pass can skip the per-row indirection and read
    // its code column strictly sequentially. One O(count) scan amortized
    // over nf histogram passes; mismatches exit on the first permuted row.
    bool identity = true;
    for (std::size_t i = task.begin; i < task.end; ++i) {
      if (idx[i] != i) {
        identity = false;
        break;
      }
    }
    const std::size_t* acc_idx = identity ? nullptr : idx.data();

    const std::size_t nf = features.size();
    std::vector<Split> fbest(nf);
    auto eval_feature = [&](std::size_t fi, std::vector<double>& hg,
                            std::vector<double>& hh,
                            std::vector<std::size_t>& hc) {
      const std::size_t f = features[fi];
      std::fill(hg.begin(), hg.end(), 0.0);
      std::fill(hh.begin(), hh.end(), 0.0);
      std::fill(hc.begin(), hc.end(), std::size_t{0});
      src.accumulate(f, acc_idx, task.begin, task.end, grad.data(),
                     hess.data(), hg.data(), hh.data(), hc.data());
      // Missing-bin mass: scored with the missing rows attached to the
      // right child (option R, matching the historical NaN fallthrough)
      // and to the left child (option L); the better direction is learned
      // as the split's default branch, ties keeping R. With no missing
      // values the missing bin is empty, option L collapses onto option R
      // and the scan is bit-identical to the NaN-oblivious one.
      const double gm = hg[n_bins];
      const double hm = hh[n_bins];
      const std::size_t cm = hc[n_bins];
      Split local;
      double gl = 0.0, hl = 0.0;
      std::size_t cl = 0;
      for (std::size_t b = 0; b + 1 < n_bins; ++b) {
        gl += hg[b];
        hl += hh[b];
        cl += hc[b];
        const std::size_t cr = count - cl;  // right child under option R
        if (cr < cfg.min_samples_leaf) break;
        if (cl >= cfg.min_samples_leaf) {
          const double gr = gsum - gl;
          const double hr = hsum - hl;
          const double gain = gl * gl / (hl + cfg.lambda) +
                              gr * gr / (hr + cfg.lambda) - parent_score;
          if (gain > local.gain) {
            local = {static_cast<int>(f), static_cast<int>(b), gain, false};
          }
        }
        if (cm > 0 && cl + cm >= cfg.min_samples_leaf &&
            cr >= cm + cfg.min_samples_leaf) {
          const double gll = gl + gm;
          const double hll = hl + hm;
          const double grr = gsum - gll;
          const double hrr = hsum - hll;
          const double gain = gll * gll / (hll + cfg.lambda) +
                              grr * grr / (hrr + cfg.lambda) - parent_score;
          if (gain > local.gain) {
            local = {static_cast<int>(f), static_cast<int>(b), gain, true};
          }
        }
      }
      fbest[fi] = local;
    };

    if (count >= kParallelNodeRows && nf > 1) {
      parallel_for(0, nf, 1, [&](std::size_t fb, std::size_t fe) {
        std::vector<double> hg(n_bins + 1), hh(n_bins + 1);
        std::vector<std::size_t> hc(n_bins + 1);
        for (std::size_t fi = fb; fi < fe; ++fi) eval_feature(fi, hg, hh, hc);
      });
    } else {
      for (std::size_t fi = 0; fi < nf; ++fi) {
        eval_feature(fi, hist_g, hist_h, hist_c);
      }
    }

    Split best;
    for (std::size_t fi = 0; fi < nf; ++fi) {
      if (fbest[fi].gain > best.gain) best = fbest[fi];
    }

    if (best.feature < 0 || best.gain <= cfg.min_gain) continue;

    // Partition the index range: codes <= bin go left; the missing code
    // follows the learned default direction.
    const auto bf = static_cast<std::size_t>(best.feature);
    const std::uint16_t missing = missing_code_;
    const auto mid_it = std::partition(
        idx.begin() + static_cast<std::ptrdiff_t>(task.begin),
        idx.begin() + static_cast<std::ptrdiff_t>(task.end),
        [&](std::size_t r) {
          const std::uint16_t c = src.code(r, bf);
          if (c == missing) return best.default_left;
          return c <= static_cast<std::uint16_t>(best.bin);
        });
    const auto mid =
        static_cast<std::size_t>(mid_it - idx.begin());
    if (mid == task.begin || mid == task.end) continue;  // degenerate

    Node& node = nodes_[static_cast<std::size_t>(task.node)];
    node.feature = best.feature;
    node.bin = best.bin;
    node.default_left = best.default_left;
    node.threshold = mapper.upper_edge(bf, static_cast<std::uint16_t>(best.bin));
    gains_[static_cast<std::size_t>(task.node)] = best.gain;

    const int left = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{});
    gains_.push_back(0.0);
    const int right = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{});
    gains_.push_back(0.0);
    nodes_[static_cast<std::size_t>(task.node)].left = left;
    nodes_[static_cast<std::size_t>(task.node)].right = right;

    stack.push_back({left, task.depth + 1, task.begin, mid});
    stack.push_back({right, task.depth + 1, mid, task.end});
  }
}

double GradientTree::predict_binned(
    std::span<const std::uint16_t> row_codes) const noexcept {
  if (nodes_.empty()) return 0.0;
  int cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    const std::uint16_t c = row_codes[static_cast<std::size_t>(n.feature)];
    if (c == missing_code_) {
      cur = n.default_left ? n.left : n.right;
    } else {
      cur = c <= static_cast<std::uint16_t>(n.bin) ? n.left : n.right;
    }
  }
  return nodes_[static_cast<std::size_t>(cur)].value;
}

double GradientTree::predict_binned(const BinnedMatrix& binned,
                                    std::size_t row) const noexcept {
  if (nodes_.empty()) return 0.0;
  int cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    const std::uint16_t c =
        binned.code(row, static_cast<std::size_t>(n.feature));
    if (c == missing_code_) {
      cur = n.default_left ? n.left : n.right;
    } else {
      cur = c <= static_cast<std::uint16_t>(n.bin) ? n.left : n.right;
    }
  }
  return nodes_[static_cast<std::size_t>(cur)].value;
}

void GradientTree::predict_binned_all(const BinnedMatrix& binned,
                                      std::span<double> out) const {
  LUMOS_EXPECTS(out.size() >= binned.rows(),
                "GradientTree::predict_binned_all: one slot per row");
  parallel_for(0, binned.rows(), 2048, [&](std::size_t b, std::size_t e) {
    for (std::size_t r = b; r < e; ++r) out[r] = predict_binned(binned, r);
  });
}

double GradientTree::predict(std::span<const double> row) const noexcept {
  if (nodes_.empty()) return 0.0;
  int cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    const double v = row[static_cast<std::size_t>(n.feature)];
    if (std::isnan(v)) {
      cur = n.default_left ? n.left : n.right;
    } else {
      cur = v <= n.threshold ? n.left : n.right;
    }
  }
  return nodes_[static_cast<std::size_t>(cur)].value;
}

void GradientTree::accumulate_gain(std::span<double> gain_by_feature) const noexcept {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].feature >= 0) {
      const auto f = static_cast<std::size_t>(nodes_[i].feature);
      if (f < gain_by_feature.size()) gain_by_feature[f] += gains_[i];
    }
  }
}

}  // namespace lumos::ml

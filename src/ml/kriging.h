// Ordinary Kriging (OK) geospatial interpolation — the analytical baseline
// of Chakraborty et al. 2017 [26] the paper compares against (Table 9,
// footnote 6: OK only applies to the pure location feature group L).
//
// Implementation: duplicate coordinates are aggregated to their mean value;
// an exponential variogram gamma(h) = nugget + sill*(1 - exp(-h/range)) is
// fit to the empirical semivariogram by weighted least squares on binned
// lags; prediction solves the standard OK system with a Lagrange
// multiplier over a capped set of support points.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/linalg.h"
#include "ml/types.h"

namespace lumos::ml {

/// Preallocated RHS/solution buffers for OrdinaryKriging::predict_scan.
/// Reserve once (cold) for the fitted model's support size.
class KrigingScratch {
 public:
  KrigingScratch() = default;

  /// `max_support` = the model's support() (or the config cap).
  void reserve(std::size_t max_support) {
    rhs_.assign(max_support + 1, 0.0);
    x_.assign(max_support + 1, 0.0);
  }

 private:
  friend class OrdinaryKriging;
  std::vector<double> rhs_;
  std::vector<double> x_;
};

struct KrigingConfig {
  std::size_t max_support = 300;  ///< cap on aggregated support points
  int variogram_bins = 15;
  std::uint64_t seed = 11;
};

class OrdinaryKriging final : public Regressor {
 public:
  explicit OrdinaryKriging(KrigingConfig cfg = {}) noexcept : cfg_(cfg) {}

  /// `x` must have exactly 2 columns (location coordinates).
  void fit(const FeatureMatrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict(std::span<const double> row) const override;

  /// Allocation-free twin of predict() over the SoA support arrays
  /// (px_/py_ are already one contiguous column each): variogram RHS
  /// fill, LuSolver::solve_into, and the weight/value dot product all run
  /// in the same order as predict(), so the result is bit-identical.
  /// `scratch` must be reserved for support(). A lumos_lint hot-path
  /// reachability root.
  [[nodiscard]] double predict_scan(std::span<const double> row,
                                    KrigingScratch& scratch) const noexcept;

  /// Number of aggregated support points the fitted system solves over.
  std::size_t support() const noexcept { return px_.size(); }

  double nugget() const noexcept { return nugget_; }
  double sill() const noexcept { return sill_; }
  double range() const noexcept { return range_; }

 private:
  double variogram(double h) const noexcept;

  KrigingConfig cfg_;
  std::vector<double> px_, py_, pv_;  ///< support points and their values
  double nugget_ = 0.0;
  double sill_ = 1.0;
  double range_ = 1.0;
  double mean_value_ = 0.0;
  LuSolver lu_;
};

}  // namespace lumos::ml

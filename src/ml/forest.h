// Random Forest (Breiman 2001): bagged gradient trees with per-node feature
// subsampling. One of the 3G/4G-era baselines the paper compares against
// (Alimpertis et al. 2019 [20]).
#pragma once

#include <cstdint>
#include <memory>

#include "ml/tree.h"
#include "ml/types.h"

namespace lumos::ml {

struct ForestConfig {
  std::size_t n_trees = 100;
  int max_depth = 12;
  std::size_t min_samples_leaf = 2;
  int n_bins = 64;
  std::size_t feature_subsample = 0;  ///< 0 = ceil(sqrt(d)) chosen at fit
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 7;
};

class RandomForestRegressor final : public Regressor {
 public:
  explicit RandomForestRegressor(ForestConfig cfg = {}) noexcept : cfg_(cfg) {}

  void fit(const FeatureMatrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict(std::span<const double> row) const override;

  const ForestConfig& config() const noexcept { return cfg_; }

  // --- fitted-state access for serialization / flattening (serve/) ---
  const BinMapper& mapper() const noexcept { return mapper_; }
  const std::vector<GradientTree>& trees() const noexcept { return trees_; }

  /// Reinstates a fitted model from its serialized parts (serve/model_io).
  void restore(BinMapper mapper, std::vector<GradientTree> trees) {
    mapper_ = std::move(mapper);
    trees_ = std::move(trees);
  }

 private:
  ForestConfig cfg_;
  BinMapper mapper_;
  std::vector<GradientTree> trees_;
};

/// Classification via one-vs-rest probability forests: each class gets a
/// forest fit on 0/1 indicators; prediction is the argmax of the averaged
/// votes. Equivalent to majority voting over class-probability trees.
class RandomForestClassifier final : public Classifier {
 public:
  explicit RandomForestClassifier(ForestConfig cfg = {}) noexcept : cfg_(cfg) {}

  void fit(const FeatureMatrix& x, std::span<const int> y,
           int n_classes) override;
  [[nodiscard]] int predict(std::span<const double> row) const override;

  const ForestConfig& config() const noexcept { return cfg_; }

  // --- fitted-state access for serialization / flattening (serve/) ---
  const BinMapper& mapper() const noexcept { return mapper_; }
  int n_classes() const noexcept { return n_classes_; }
  /// trees()[t * n_classes() + c] is tree t's score for class c.
  const std::vector<GradientTree>& trees() const noexcept { return trees_; }

  /// Reinstates a fitted model from its serialized parts (serve/model_io).
  void restore(BinMapper mapper, int n_classes,
               std::vector<GradientTree> trees) {
    mapper_ = std::move(mapper);
    n_classes_ = n_classes;
    trees_ = std::move(trees);
  }

 private:
  ForestConfig cfg_;
  BinMapper mapper_;
  int n_classes_ = 0;
  // trees_[t * n_classes_ + c]: tree t's score for class c.
  std::vector<GradientTree> trees_;
};

}  // namespace lumos::ml

// Histogram-based CART decision tree fit on gradient/hessian pairs.
// A single building block serves all tree ensembles in this library:
//   * plain regression tree: grad = y, hess = 1  (leaf = mean y)
//   * GDBT regression stage: grad = residual, hess = 1
//   * GDBT multiclass stage: grad/hess from the softmax loss (Newton leaf)
// Split gain is the standard XGBoost-style score
//   gain = GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/rng.h"
#include "ml/types.h"

namespace lumos::ml {

class BinnedMatrix;

/// Quantile-based feature binning shared by all trees of an ensemble.
/// NaN feature values are first-class citizens: fit() learns quantiles
/// from the finite values only, and bin() maps NaN to a dedicated
/// missing-value code (missing_code()) that trees route along a learned
/// default branch direction.
class BinMapper {
 public:
  BinMapper() = default;

  /// Learns up to `n_bins` bins per feature from quantiles of the
  /// non-NaN values of `x`.
  void fit(const FeatureMatrix& x, int n_bins);

  /// Bin code of a raw value for feature `f`; NaN maps to missing_code().
  std::uint16_t bin(std::size_t f, double v) const noexcept;

  /// The reserved code for missing (NaN) values: one past the last real
  /// bin, so histogram buffers need max_bins() + 1 slots.
  std::uint16_t missing_code() const noexcept {
    return static_cast<std::uint16_t>(max_bins_);
  }

  /// Upper boundary value of bin `b` for feature `f`: the split threshold
  /// "x <= threshold goes left" for a split after bin b.
  double upper_edge(std::size_t f, std::uint16_t b) const noexcept;

  /// Encodes a full matrix to row-major bin codes.
  [[nodiscard]] std::vector<std::uint16_t> encode(const FeatureMatrix& x) const;

  std::size_t n_features() const noexcept { return edges_.size(); }
  int max_bins() const noexcept { return max_bins_; }

  /// Per-feature cut points, exposed for serialization (serve/model_io).
  const std::vector<std::vector<double>>& edges() const noexcept {
    return edges_;
  }

  /// Reinstates a fitted mapper from its serialized parts (serve/model_io).
  void restore(std::vector<std::vector<double>> edges, int max_bins) {
    edges_ = std::move(edges);
    max_bins_ = max_bins;
  }

 private:
  std::vector<std::vector<double>> edges_;  ///< per-feature cut points
  int max_bins_ = 0;
};

struct TreeConfig {
  int max_depth = 6;
  std::size_t min_samples_leaf = 5;
  double lambda = 1.0;          ///< L2 regularization on leaf values
  double min_gain = 1e-12;      ///< minimum gain to accept a split
  std::size_t feature_subsample = 0;  ///< features tried per node; 0 = all
};

/// One fitted tree. Nodes are stored in a flat array; leaves have
/// feature == -1.
class GradientTree {
 public:
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    int bin = -1;  ///< split bin code; codes <= bin go left (mirrors threshold)
    int left = -1;
    int right = -1;
    double value = 0.0;  ///< leaf output
    /// Which branch a missing (NaN) value takes. Learned during fit():
    /// when the node's training rows contain missing values, both
    /// directions are scored and the better one wins (ties keep right,
    /// matching the historical NaN-comparison fallthrough); when they
    /// don't, the direction stays right.
    bool default_left = false;
  };

  /// Fits on pre-binned codes (row-major n x d, matching `mapper`).
  /// `grad` and `hess` have length n; `indices` selects the rows to train
  /// on (bootstrap sample for forests, all rows for boosting).
  /// `rng` is used for per-node feature subsampling when
  /// cfg.feature_subsample > 0.
  ///
  /// Large nodes spread the candidate-feature histogram loop across the
  /// global thread pool; per-feature work is independent and the best
  /// split is reduced in fixed feature order, so the fitted tree is
  /// bit-identical for any LUMOS_THREADS setting.
  void fit(const std::vector<std::uint16_t>& codes, const BinMapper& mapper,
           std::span<const double> grad, std::span<const double> hess,
           std::span<const std::size_t> indices, const TreeConfig& cfg,
           Rng* rng = nullptr);

  /// Columnar fit: the same algorithm over a pre-binned SoA store
  /// (ml::BinnedMatrix). The histogram build becomes a tight loop over one
  /// contiguous (often uint8) code column per candidate feature instead of
  /// a d-strided walk through row-major codes. Rows are accumulated in the
  /// same order as the row-major overload, per-feature work is reduced in
  /// fixed feature order, and the split scan is shared code — so the
  /// fitted tree is bit-identical to fit(codes, ...) on the same data at
  /// any LUMOS_THREADS setting (tests/test_columnar.cpp).
  void fit(const BinnedMatrix& binned, const BinMapper& mapper,
           std::span<const double> grad, std::span<const double> hess,
           std::span<const std::size_t> indices, const TreeConfig& cfg,
           Rng* rng = nullptr);

  /// Predicts from a raw feature row. A NaN value takes the split's
  /// learned default branch (Node::default_left) instead of the
  /// comparison fallthrough.
  [[nodiscard]] double predict(std::span<const double> row) const noexcept;

  /// Predicts from one row of pre-binned codes (length = n_features of the
  /// mapper used at fit time). Reaches exactly the same leaf as predict()
  /// on the raw row: a raw value satisfies `v <= upper_edge(f, bin)` iff
  /// its code satisfies `code <= bin`, and the missing code routes along
  /// the same default branch as a raw NaN. Used by the boosting loop to
  /// avoid re-binning every training row each round.
  [[nodiscard]] double predict_binned(std::span<const std::uint16_t> row_codes)
      const noexcept;

  /// Same leaf walk over one row of a columnar code store. Reaches the
  /// same leaf as predict_binned on the equivalent row-major codes; the
  /// boosting loops use it so the margin update never materializes
  /// row-major codes.
  [[nodiscard]] double predict_binned(const BinnedMatrix& binned,
                                      std::size_t row) const noexcept;

  /// Batched leaf assignment over every row of the store: out[r] is the
  /// leaf value row r reaches. Rows are chunked over the global thread
  /// pool; each slot is written once, so the output is identical at any
  /// LUMOS_THREADS. Rows ascend within a chunk, so each visited code
  /// column is read at monotonically increasing offsets (cache-friendly,
  /// unlike a row-major gather).
  void predict_binned_all(const BinnedMatrix& binned,
                          std::span<double> out) const;

  /// Adds each split's gain to `gain_by_feature` (size = n_features).
  void accumulate_gain(std::span<double> gain_by_feature) const noexcept;

  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  bool empty() const noexcept { return nodes_.empty(); }

  /// Per-node split gains, aligned with nodes() (0 at leaves). Exposed for
  /// serialization (serve/model_io) so a reloaded tree keeps reporting the
  /// same feature importances.
  const std::vector<double>& gains() const noexcept { return gains_; }

  /// The missing-value bin code this tree was fit against (needed by
  /// predict_binned and by the flattened serving layout).
  std::uint16_t missing_code() const noexcept { return missing_code_; }

  /// Reinstates a fitted tree from its serialized parts (serve/model_io).
  /// `gains` must be the same length as `nodes`.
  void restore(std::vector<Node> nodes, std::vector<double> gains,
               std::uint16_t missing_code) {
    nodes_ = std::move(nodes);
    gains_ = std::move(gains);
    missing_code_ = missing_code;
  }

 private:
  struct Split {
    int feature = -1;
    int bin = -1;
    double gain = 0.0;
    bool default_left = false;  ///< where the missing bin goes
  };

  /// Shared fit body. `Source` supplies the code layout: a histogram
  /// accumulator (per candidate feature, over an index range) and a
  /// single-code lookup (for partitioning). Both public fit overloads
  /// instantiate it in tree.cpp; the split scan, reduction order, and
  /// partition logic are one piece of code, which is what guarantees the
  /// row and columnar paths stay bit-identical.
  template <class Source>
  void fit_impl(const Source& src, const BinMapper& mapper,
                std::span<const double> grad, std::span<const double> hess,
                std::span<const std::size_t> indices, const TreeConfig& cfg,
                Rng* rng);

  std::vector<Node> nodes_;
  std::vector<double> gains_;  ///< gain of the split at each internal node
  /// Code that marks a missing value in pre-binned rows (the fitting
  /// mapper's missing_code()); kept so predict_binned can route it.
  std::uint16_t missing_code_ = std::numeric_limits<std::uint16_t>::max();
};

}  // namespace lumos::ml

#include "ml/linalg.h"

#include <cmath>

namespace lumos::ml {

bool LuSolver::factorize(std::vector<double> a, std::size_t n) {
  n_ = n;
  lu_ = std::move(a);
  piv_.resize(n);
  ok_ = false;
  for (std::size_t i = 0; i < n; ++i) piv_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: pick the largest magnitude in this column.
    std::size_t pivot = col;
    double best = std::fabs(lu_[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(lu_[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) return false;  // numerically singular
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_[pivot * n + c], lu_[col * n + c]);
      }
      std::swap(piv_[pivot], piv_[col]);
    }
    const double inv = 1.0 / lu_[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu_[r * n + col] * inv;
      lu_[r * n + col] = factor;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu_[r * n + c] -= factor * lu_[col * n + c];
      }
    }
  }
  ok_ = true;
  return true;
}

void LuSolver::solve(std::vector<double>& b) const {
  std::vector<double> x(n_);
  solve_into(b, x);
  b = std::move(x);
}

void LuSolver::solve_into(std::span<const double> b,
                          std::span<double> x) const {
  const std::size_t n = n_;
  for (std::size_t i = 0; i < n; ++i) x[i] = b[piv_[i]];
  // Forward substitution (unit lower-triangular L).
  for (std::size_t i = 1; i < n; ++i) {
    double s = x[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_[i * n + j] * x[j];
    x[i] = s;
  }
  // Back substitution (U).
  for (std::size_t i = n; i-- > 0;) {
    double s = x[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= lu_[i * n + j] * x[j];
    x[i] = s / lu_[i * n + i];
  }
}

}  // namespace lumos::ml

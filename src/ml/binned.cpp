#include "ml/binned.h"

#include "ml/tree.h"

namespace lumos::ml {

BinnedMatrix BinnedMatrix::build(const BinMapper& mapper,
                                 const FeatureMatrix& x) {
  BinnedMatrix b;
  b.rows_ = x.rows();
  b.cols_ = x.cols();
  b.missing_code_ = mapper.missing_code();
  b.narrow_.assign(b.cols_, 0);
  b.offset_.assign(b.cols_, 0);

  // Two passes per column: encode into a scratch column and find its max
  // code, then append to the pool whose width that max selects. Encoding
  // happens exactly once per (row, feature) — the point of the store.
  std::vector<std::uint16_t> scratch(b.rows_);
  for (std::size_t f = 0; f < b.cols_; ++f) {
    std::uint16_t max_code = 0;
    for (std::size_t r = 0; r < b.rows_; ++r) {
      const std::uint16_t c = mapper.bin(f, x.at(r, f));
      scratch[r] = c;
      if (c > max_code) max_code = c;
    }
    if (max_code <= 255) {
      b.narrow_[f] = 1;
      b.offset_[f] = b.pool8_.size();
      b.pool8_.reserve(b.pool8_.size() + b.rows_);
      for (std::size_t r = 0; r < b.rows_; ++r) {
        b.pool8_.push_back(static_cast<std::uint8_t>(scratch[r]));
      }
    } else {
      b.narrow_[f] = 0;
      b.offset_[f] = b.pool16_.size();
      b.pool16_.insert(b.pool16_.end(), scratch.begin(), scratch.end());
    }
  }
  return b;
}

}  // namespace lumos::ml

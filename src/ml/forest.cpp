#include "ml/forest.h"

#include <cmath>

namespace lumos::ml {
namespace {

std::size_t default_subsample(std::size_t d, std::size_t requested) noexcept {
  if (requested > 0) return requested;
  return static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(d))));
}

std::vector<std::size_t> bootstrap(std::size_t n, double fraction, Rng& rng) {
  const auto k = static_cast<std::size_t>(
      std::max(1.0, fraction * static_cast<double>(n)));
  std::vector<std::size_t> idx(k);
  for (auto& i : idx) i = static_cast<std::size_t>(rng.uniform_int(n));
  return idx;
}

}  // namespace

void RandomForestRegressor::fit(const FeatureMatrix& x,
                                std::span<const double> y) {
  mapper_.fit(x, cfg_.n_bins);
  const auto codes = mapper_.encode(x);
  std::vector<double> hess(x.rows(), 1.0);

  TreeConfig tc;
  tc.max_depth = cfg_.max_depth;
  tc.min_samples_leaf = cfg_.min_samples_leaf;
  tc.lambda = 0.0;  // unregularized means, classic RF behaviour
  tc.feature_subsample = default_subsample(x.cols(), cfg_.feature_subsample);

  Rng rng(cfg_.seed);
  trees_.assign(cfg_.n_trees, {});
  for (auto& tree : trees_) {
    const auto idx = bootstrap(x.rows(), cfg_.bootstrap_fraction, rng);
    tree.fit(codes, mapper_, y, hess, idx, tc, &rng);
  }
}

double RandomForestRegressor::predict(std::span<const double> row) const {
  if (trees_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& t : trees_) s += t.predict(row);
  return s / static_cast<double>(trees_.size());
}

void RandomForestClassifier::fit(const FeatureMatrix& x,
                                 std::span<const int> y, int n_classes) {
  n_classes_ = n_classes;
  mapper_.fit(x, cfg_.n_bins);
  const auto codes = mapper_.encode(x);
  std::vector<double> hess(x.rows(), 1.0);

  TreeConfig tc;
  tc.max_depth = cfg_.max_depth;
  tc.min_samples_leaf = cfg_.min_samples_leaf;
  tc.lambda = 0.0;
  tc.feature_subsample = default_subsample(x.cols(), cfg_.feature_subsample);

  Rng rng(cfg_.seed);
  trees_.assign(cfg_.n_trees * static_cast<std::size_t>(n_classes), {});
  std::vector<double> indicator(x.rows());
  for (std::size_t t = 0; t < cfg_.n_trees; ++t) {
    const auto idx = bootstrap(x.rows(), cfg_.bootstrap_fraction, rng);
    for (int c = 0; c < n_classes; ++c) {
      for (std::size_t r = 0; r < x.rows(); ++r) {
        indicator[r] = y[r] == c ? 1.0 : 0.0;
      }
      trees_[t * static_cast<std::size_t>(n_classes) +
             static_cast<std::size_t>(c)]
          .fit(codes, mapper_, indicator, hess, idx, tc, &rng);
    }
  }
}

int RandomForestClassifier::predict(std::span<const double> row) const {
  if (trees_.empty() || n_classes_ == 0) return 0;
  int best = 0;
  double best_score = -1.0;
  for (int c = 0; c < n_classes_; ++c) {
    double s = 0.0;
    for (std::size_t t = 0; t < cfg_.n_trees; ++t) {
      s += trees_[t * static_cast<std::size_t>(n_classes_) +
                  static_cast<std::size_t>(c)]
               .predict(row);
    }
    if (s > best_score) {
      best_score = s;
      best = c;
    }
  }
  return best;
}

}  // namespace lumos::ml

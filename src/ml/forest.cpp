#include "ml/forest.h"

#include <cmath>

#include "common/parallel.h"
#include "ml/binned.h"

namespace lumos::ml {
namespace {

std::size_t default_subsample(std::size_t d, std::size_t requested) noexcept {
  if (requested > 0) return requested;
  return static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(d))));
}

std::vector<std::size_t> bootstrap(std::size_t n, double fraction, Rng& rng) {
  if (n == 0) return {};
  const auto k = static_cast<std::size_t>(
      std::max(1.0, fraction * static_cast<double>(n)));
  std::vector<std::size_t> idx(k);
  for (auto& i : idx) i = static_cast<std::size_t>(rng.uniform_int(n));
  return idx;
}

/// Deterministic per-tree seed streams: the root generator is consumed
/// once, in tree order, before any tree is fit, so each tree owns an
/// independent Rng regardless of which thread fits it (or in what order).
std::vector<std::uint64_t> tree_seeds(std::uint64_t seed, std::size_t n) {
  Rng root(seed);
  std::vector<std::uint64_t> seeds(n);
  for (auto& s : seeds) s = root.next_u64();
  return seeds;
}

}  // namespace

void RandomForestRegressor::fit(const FeatureMatrix& x,
                                std::span<const double> y) {
  mapper_.fit(x, cfg_.n_bins);
  // One columnar quantization shared by every tree of the forest.
  const auto binned = BinnedMatrix::build(mapper_, x);
  std::vector<double> hess(x.rows(), 1.0);

  TreeConfig tc;
  tc.max_depth = cfg_.max_depth;
  tc.min_samples_leaf = cfg_.min_samples_leaf;
  tc.lambda = 0.0;  // unregularized means, classic RF behaviour
  tc.feature_subsample = default_subsample(x.cols(), cfg_.feature_subsample);

  const auto seeds = tree_seeds(cfg_.seed, cfg_.n_trees);
  trees_.assign(cfg_.n_trees, {});
  parallel_for(0, cfg_.n_trees, 1, [&](std::size_t tb, std::size_t te) {
    for (std::size_t t = tb; t < te; ++t) {
      Rng rng(seeds[t]);
      const auto idx = bootstrap(x.rows(), cfg_.bootstrap_fraction, rng);
      trees_[t].fit(binned, mapper_, y, hess, idx, tc, &rng);
    }
  });
}

double RandomForestRegressor::predict(std::span<const double> row) const {
  if (trees_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& t : trees_) s += t.predict(row);
  return s / static_cast<double>(trees_.size());
}

void RandomForestClassifier::fit(const FeatureMatrix& x,
                                 std::span<const int> y, int n_classes) {
  n_classes_ = n_classes;
  mapper_.fit(x, cfg_.n_bins);
  const auto binned = BinnedMatrix::build(mapper_, x);
  std::vector<double> hess(x.rows(), 1.0);

  TreeConfig tc;
  tc.max_depth = cfg_.max_depth;
  tc.min_samples_leaf = cfg_.min_samples_leaf;
  tc.lambda = 0.0;
  tc.feature_subsample = default_subsample(x.cols(), cfg_.feature_subsample);

  const auto seeds = tree_seeds(cfg_.seed, cfg_.n_trees);
  trees_.assign(cfg_.n_trees * static_cast<std::size_t>(n_classes), {});
  parallel_for(0, cfg_.n_trees, 1, [&](std::size_t tb, std::size_t te) {
    std::vector<double> indicator(x.rows());
    for (std::size_t t = tb; t < te; ++t) {
      Rng rng(seeds[t]);
      const auto idx = bootstrap(x.rows(), cfg_.bootstrap_fraction, rng);
      for (int c = 0; c < n_classes; ++c) {
        for (std::size_t r = 0; r < x.rows(); ++r) {
          indicator[r] = y[r] == c ? 1.0 : 0.0;
        }
        trees_[t * static_cast<std::size_t>(n_classes) +
               static_cast<std::size_t>(c)]
            .fit(binned, mapper_, indicator, hess, idx, tc, &rng);
      }
    }
  });
}

int RandomForestClassifier::predict(std::span<const double> row) const {
  if (trees_.empty() || n_classes_ == 0) return 0;
  int best = 0;
  double best_score = -1.0;
  for (int c = 0; c < n_classes_; ++c) {
    double s = 0.0;
    for (std::size_t t = 0; t < cfg_.n_trees; ++t) {
      s += trees_[t * static_cast<std::size_t>(n_classes_) +
                  static_cast<std::size_t>(c)]
               .predict(row);
    }
    if (s > best_score) {
      best_score = s;
      best = c;
    }
  }
  return best;
}

}  // namespace lumos::ml

#include "ml/gbdt.h"

#include "common/contracts.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "ml/binned.h"

namespace lumos::ml {
namespace {

std::vector<std::size_t> row_sample(std::size_t n, double fraction, Rng& rng) {
  if (n == 0) return {};  // never fabricate an index into an empty matrix
  if (fraction >= 1.0) {
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    return idx;
  }
  const auto k = static_cast<std::size_t>(
      std::max(1.0, fraction * static_cast<double>(n)));
  auto perm = rng.permutation(n);
  perm.resize(k);
  return perm;
}

std::vector<double> normalized_gains(const std::vector<GradientTree>& trees,
                                     std::size_t n_features) {
  std::vector<double> gains(n_features, 0.0);
  for (const auto& t : trees) t.accumulate_gain(gains);
  const double total = std::accumulate(gains.begin(), gains.end(), 0.0);
  if (total > 0.0) {
    for (auto& g : gains) g /= total;
  }
  return gains;
}

}  // namespace

void GbdtRegressor::fit(const FeatureMatrix& x, std::span<const double> y) {
  LUMOS_EXPECTS(y.size() == x.rows(),
                "GbdtRegressor::fit: one target per row required");
  n_features_ = x.cols();
  trees_.clear();
  base_ = 0.0;
  const std::size_t n = x.rows();
  if (n == 0) return;  // empty training set: predict the 0 base margin

  mapper_.fit(x, cfg_.n_bins);
  // Quantize once into the columnar store; every boosting round reuses the
  // same contiguous code columns for its histogram builds and its margin
  // update (bit-identical to the old row-major code path — see
  // tests/test_columnar.cpp).
  const auto binned = BinnedMatrix::build(mapper_, x);

  for (double v : y) base_ += v;
  base_ /= static_cast<double>(n);

  std::vector<double> pred(n, base_);
  std::vector<double> residual(n);
  std::vector<double> hess(n, 1.0);

  TreeConfig tc;
  tc.max_depth = cfg_.max_depth;
  tc.min_samples_leaf = cfg_.min_samples_leaf;
  tc.lambda = cfg_.lambda;

  Rng rng(cfg_.seed);
  trees_.assign(cfg_.n_estimators, {});
  for (auto& tree : trees_) {
    for (std::size_t i = 0; i < n; ++i) residual[i] = y[i] - pred[i];
    const auto idx = row_sample(n, cfg_.subsample, rng);
    tree.fit(binned, mapper_, residual, hess, idx, tc, &rng);
    // Margin update on the pre-binned columns: reaches the same leaves as
    // re-traversing the raw rows, without re-binning every round. Rows are
    // independent, so chunking across the pool keeps results identical.
    parallel_for(0, n, 2048, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        pred[i] += cfg_.learning_rate * tree.predict_binned(binned, i);
      }
    });
  }
}

double GbdtRegressor::predict(std::span<const double> row) const {
  LUMOS_EXPECTS(trees_.empty() || row.size() == n_features_,
                "GbdtRegressor::predict: row width differs from training");
  double s = base_;
  for (const auto& t : trees_) s += cfg_.learning_rate * t.predict(row);
  return s;
}

std::vector<double> GbdtRegressor::feature_importance() const {
  return normalized_gains(trees_, n_features_);
}

void GbdtClassifier::fit(const FeatureMatrix& x, std::span<const int> y,
                         int n_classes) {
  LUMOS_EXPECTS(y.size() == x.rows(),
                "GbdtClassifier::fit: one label per row required");
  LUMOS_EXPECTS(n_classes >= 1, "GbdtClassifier::fit: n_classes must be >= 1");
  n_classes_ = n_classes;
  n_features_ = x.cols();
  trees_.clear();
  const std::size_t n = x.rows();
  const auto kc = static_cast<std::size_t>(n_classes);

  // Prior log-probabilities as the initial margin.
  base_.assign(kc, 0.0);
  std::vector<double> counts(kc, 0.0);
  for (int c : y) counts[static_cast<std::size_t>(c)] += 1.0;
  for (std::size_t c = 0; c < kc; ++c) {
    const double p =
        std::max(1e-9, counts[c] / std::max<double>(1.0, static_cast<double>(n)));
    base_[c] = std::log(p);
  }
  if (n == 0) return;  // empty training set: predict the prior argmax

  mapper_.fit(x, cfg_.n_bins);
  const auto binned = BinnedMatrix::build(mapper_, x);

  // margins[i * kc + c]
  std::vector<double> margin(n * kc);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < kc; ++c) margin[i * kc + c] = base_[c];
  }

  std::vector<double> grad(n), hess(n);
  TreeConfig tc;
  tc.max_depth = cfg_.max_depth;
  tc.min_samples_leaf = cfg_.min_samples_leaf;
  tc.lambda = cfg_.lambda;

  Rng rng(cfg_.seed);
  trees_.assign(cfg_.n_estimators * kc, {});
  for (std::size_t stage = 0; stage < cfg_.n_estimators; ++stage) {
    const auto idx = row_sample(n, cfg_.subsample, rng);
    for (std::size_t c = 0; c < kc; ++c) {
      // Softmax probabilities and the class-c gradient/hessian. Each row
      // writes only its own grad/hess slot, so the chunks are independent.
      parallel_for(0, n, 1024, [&](std::size_t rb, std::size_t re) {
        std::vector<double> prob(kc);
        for (std::size_t i = rb; i < re; ++i) {
          double mx = margin[i * kc];
          for (std::size_t k = 1; k < kc; ++k) {
            mx = std::max(mx, margin[i * kc + k]);
          }
          double z = 0.0;
          for (std::size_t k = 0; k < kc; ++k) {
            prob[k] = std::exp(margin[i * kc + k] - mx);
            z += prob[k];
          }
          const double p = prob[c] / z;
          const double target = y[i] == static_cast<int>(c) ? 1.0 : 0.0;
          grad[i] = target - p;            // negative gradient
          hess[i] = std::max(1e-9, p * (1.0 - p));
        }
      });
      GradientTree& tree = trees_[stage * kc + c];
      tree.fit(binned, mapper_, grad, hess, idx, tc, &rng);
      const double lr_scale =
          cfg_.learning_rate * static_cast<double>(kc - 1) /
          static_cast<double>(kc);
      parallel_for(0, n, 2048, [&](std::size_t rb, std::size_t re) {
        for (std::size_t i = rb; i < re; ++i) {
          margin[i * kc + c] += lr_scale * tree.predict_binned(binned, i);
        }
      });
    }
  }
}

std::vector<double> GbdtClassifier::decision_function(
    std::span<const double> row) const {
  const auto kc = static_cast<std::size_t>(n_classes_);
  std::vector<double> score(base_.begin(), base_.end());
  const double lr_scale = cfg_.learning_rate *
                          static_cast<double>(n_classes_ - 1) /
                          static_cast<double>(n_classes_);
  for (std::size_t stage = 0; stage * kc < trees_.size(); ++stage) {
    for (std::size_t c = 0; c < kc; ++c) {
      score[c] += lr_scale * trees_[stage * kc + c].predict(row);
    }
  }
  return score;
}

int GbdtClassifier::predict(std::span<const double> row) const {
  if (n_classes_ == 0) return 0;
  const auto score = decision_function(row);
  return static_cast<int>(
      std::max_element(score.begin(), score.end()) - score.begin());
}

std::vector<double> GbdtClassifier::feature_importance() const {
  return normalized_gains(trees_, n_features_);
}

}  // namespace lumos::ml

#include "ml/kriging.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/parallel.h"
#include "common/rng.h"

namespace lumos::ml {

void OrdinaryKriging::fit(const FeatureMatrix& x, std::span<const double> y) {
  px_.clear();
  py_.clear();
  pv_.clear();
  if (x.rows() == 0) {
    // Empty training set: degrade to the (zero) global mean instead of
    // rejecting — the column check below cannot even run on a default
    // FeatureMatrix whose width is still 0.
    mean_value_ = 0.0;
    return;
  }
  if (x.cols() != 2) {
    // Fit-time configuration validation, not the serving path.
    // lumos-lint: allow(throw-on-query-path) fit() rejects a malformed design matrix
    throw std::invalid_argument(
        "OrdinaryKriging: expects exactly 2 location columns (group L)");
  }

  // Aggregate duplicate coordinates to their mean (grid cells repeat a lot).
  std::map<std::pair<double, double>, std::pair<double, std::size_t>> agg;
  double total = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto& slot = agg[{x.at(r, 0), x.at(r, 1)}];
    slot.first += y[r];
    ++slot.second;
    total += y[r];
  }
  mean_value_ = x.rows() > 0 ? total / static_cast<double>(x.rows()) : 0.0;

  for (const auto& [key, val] : agg) {
    px_.push_back(key.first);
    py_.push_back(key.second);
    pv_.push_back(val.first / static_cast<double>(val.second));
  }

  // Cap support size for a tractable solve.
  if (px_.size() > cfg_.max_support) {
    Rng rng(cfg_.seed);
    auto perm = rng.permutation(px_.size());
    perm.resize(cfg_.max_support);
    std::sort(perm.begin(), perm.end());
    std::vector<double> nx, ny, nv;
    nx.reserve(perm.size());
    ny.reserve(perm.size());
    nv.reserve(perm.size());
    for (std::size_t i : perm) {
      nx.push_back(px_[i]);
      ny.push_back(py_[i]);
      nv.push_back(pv_[i]);
    }
    px_ = std::move(nx);
    py_ = std::move(ny);
    pv_ = std::move(nv);
  }

  const std::size_t m = px_.size();
  if (m < 3) {
    // Too few distinct support points for a variogram: degrade to the
    // global mean (predict() checks px_).
    px_.clear();
    py_.clear();
    pv_.clear();
    return;
  }

  // Empirical semivariogram on binned lags. Both O(m^2) pair sweeps are
  // chunked over the pool with parallel_reduce: the bin accumulators are
  // combined in fixed chunk order, so the fit is bit-identical for any
  // LUMOS_THREADS setting.
  double max_h = parallel_reduce(
      0, m, 16, 0.0,
      [&](std::size_t ib, std::size_t ie) {
        double local = 0.0;
        for (std::size_t i = ib; i < ie; ++i) {
          for (std::size_t j = i + 1; j < m; ++j) {
            local =
                std::max(local, std::hypot(px_[i] - px_[j], py_[i] - py_[j]));
          }
        }
        return local;
      },
      [](double a, double b) { return std::max(a, b); });
  if (max_h <= 0.0) max_h = 1.0;
  const auto bins = static_cast<std::size_t>(cfg_.variogram_bins);
  struct GammaAcc {
    std::vector<double> sum;
    std::vector<std::size_t> cnt;
  };
  const auto acc = parallel_reduce(
      0, m, 16, GammaAcc{std::vector<double>(bins, 0.0),
                         std::vector<std::size_t>(bins, 0)},
      [&](std::size_t ib, std::size_t ie) {
        GammaAcc local{std::vector<double>(bins, 0.0),
                       std::vector<std::size_t>(bins, 0)};
        for (std::size_t i = ib; i < ie; ++i) {
          for (std::size_t j = i + 1; j < m; ++j) {
            const double h = std::hypot(px_[i] - px_[j], py_[i] - py_[j]);
            auto b =
                static_cast<std::size_t>(h / max_h * static_cast<double>(bins));
            if (b >= bins) b = bins - 1;
            const double diff = pv_[i] - pv_[j];
            local.sum[b] += 0.5 * diff * diff;
            ++local.cnt[b];
          }
        }
        return local;
      },
      [&](GammaAcc a, GammaAcc b) {
        for (std::size_t i = 0; i < bins; ++i) {
          a.sum[i] += b.sum[i];
          a.cnt[i] += b.cnt[i];
        }
        return a;
      });
  const std::vector<double>& gamma_sum = acc.sum;
  const std::vector<std::size_t>& gamma_cnt = acc.cnt;

  // Method-of-moments fit of the exponential model: range from the lag
  // where the empirical curve reaches ~95% of its plateau; sill from the
  // plateau level; nugget from the first bin.
  double plateau = 0.0;
  std::size_t filled = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    if (gamma_cnt[b] > 0) {
      plateau += gamma_sum[b] / static_cast<double>(gamma_cnt[b]);
      ++filled;
    }
  }
  plateau = filled > 0 ? plateau / static_cast<double>(filled) : 1.0;
  nugget_ = gamma_cnt[0] > 0
                ? std::min(plateau * 0.5,
                           gamma_sum[0] / static_cast<double>(gamma_cnt[0]))
                : 0.0;
  sill_ = std::max(1e-9, plateau - nugget_);
  range_ = max_h / 3.0;  // effective range ~ 3x exponential parameter
  if (range_ <= 0.0) range_ = 1.0;

  // Assemble and factorize the OK matrix:
  // [ Gamma  1 ] [w]   [gamma(q)]
  // [ 1^T    0 ] [mu] = [   1    ]
  const std::size_t nsys = m + 1;
  std::vector<double> a(nsys * nsys, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double h = std::hypot(px_[i] - px_[j], py_[i] - py_[j]);
      a[i * nsys + j] = variogram(h);
    }
    a[i * nsys + m] = 1.0;
    a[m * nsys + i] = 1.0;
  }
  if (!lu_.factorize(std::move(a), nsys)) {
    // Singular system (e.g. colinear layout): fall back to mean prediction.
    px_.clear();
  }
}

double OrdinaryKriging::variogram(double h) const noexcept {
  if (h <= 0.0) return 0.0;
  return nugget_ + sill_ * (1.0 - std::exp(-h / range_));
}

double OrdinaryKriging::predict(std::span<const double> row) const {
  const std::size_t m = px_.size();
  if (m == 0 || row.size() < 2) return mean_value_;
  std::vector<double> rhs(m + 1);
  for (std::size_t i = 0; i < m; ++i) {
    rhs[i] = variogram(std::hypot(px_[i] - row[0], py_[i] - row[1]));
  }
  rhs[m] = 1.0;
  lu_.solve(rhs);
  double pred = 0.0;
  for (std::size_t i = 0; i < m; ++i) pred += rhs[i] * pv_[i];
  return pred;
}

double OrdinaryKriging::predict_scan(std::span<const double> row,
                                     KrigingScratch& s) const noexcept {
  const std::size_t m = px_.size();
  if (m == 0 || row.size() < 2) return mean_value_;
  // SoA sweep over the support columns. The variogram itself stays scalar
  // (hypot/exp — vectorizing those would change bits; see DESIGN §12
  // blind spots), but the scan allocates nothing and streams px_/py_
  // contiguously.
  double* rhs = s.rhs_.data();
  for (std::size_t i = 0; i < m; ++i) {
    rhs[i] = variogram(std::hypot(px_[i] - row[0], py_[i] - row[1]));
  }
  rhs[m] = 1.0;
  lu_.solve_into({rhs, m + 1}, {s.x_.data(), m + 1});
  double pred = 0.0;
  for (std::size_t i = 0; i < m; ++i) pred += s.x_[i] * pv_[i];
  return pred;
}

}  // namespace lumos::ml

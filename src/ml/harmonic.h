// History-based Harmonic Mean (HM) predictor (Jiang et al. FESTIVE 2012;
// Yin et al. 2015): the next throughput is the harmonic mean of the last w
// observations. The paper's short-term in-situ baseline (Table 9 bottom).
#pragma once

#include <span>
#include <vector>

namespace lumos::ml {

class HarmonicMeanPredictor {
 public:
  explicit HarmonicMeanPredictor(std::size_t window = 5) noexcept
      : window_(window) {}

  /// Predicts the next value from the trailing window of `history`.
  /// Only non-positive (or NaN) observations are replaced by `floor` to
  /// keep the harmonic mean defined (5G throughput can legitimately hit 0
  /// in dead zones); positive observations below `floor` are used as-is —
  /// clamping them would bias the prediction high exactly in dead zones.
  [[nodiscard]] double predict_next(std::span<const double> history,
                      double floor = 1.0) const noexcept;

  /// One-step-ahead predictions over a whole trace: output[i] is the
  /// prediction for trace[i] given trace[0..i). The first element is
  /// seeded with trace[0] (no history available).
  [[nodiscard]] std::vector<double> predict_trace(
      std::span<const double> trace) const;

  std::size_t window() const noexcept { return window_; }

 private:
  std::size_t window_;
};

}  // namespace lumos::ml

// Core data types and model interfaces for the classical ML stack.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"

namespace lumos::ml {

/// Row-major feature matrix. Rows are samples, columns are features.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  FeatureMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), x_(rows * cols, 0.0) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c) noexcept { return x_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const noexcept {
    return x_[r * cols_ + c];
  }

  std::span<const double> row(std::size_t r) const noexcept {
    return {x_.data() + r * cols_, cols_};
  }
  std::span<double> row(std::size_t r) noexcept {
    return {x_.data() + r * cols_, cols_};
  }

  /// Appends one row; its length must equal cols() (or set the width on the
  /// first append).
  void push_row(std::span<const double> row) {
    if (rows_ == 0 && cols_ == 0) cols_ = row.size();
    if (row.size() != cols_) {
      // Matrix-assembly validation, not the serving path.
      // lumos-lint: allow(throw-on-query-path) push_row rejects ragged rows
      throw std::invalid_argument("FeatureMatrix::push_row: width mismatch");
    }
    x_.insert(x_.end(), row.begin(), row.end());
    ++rows_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> x_;
};

/// Interface for regression models mapping a feature vector to a scalar.
class Regressor {
 public:
  virtual ~Regressor() = default;
  virtual void fit(const FeatureMatrix& x, std::span<const double> y) = 0;
  [[nodiscard]] virtual double predict(std::span<const double> row) const = 0;

  /// Batch prediction, chunked across the global thread pool. Rows are
  /// independent so the output is identical for any LUMOS_THREADS setting.
  [[nodiscard]] std::vector<double> predict_all(const FeatureMatrix& x) const {
    std::vector<double> out(x.rows());
    lumos::parallel_for(0, x.rows(), 64,
                        [&](std::size_t b, std::size_t e) {
                          for (std::size_t r = b; r < e; ++r) {
                            out[r] = predict(x.row(r));
                          }
                        });
    return out;
  }
};

/// Interface for classifiers over integer class labels [0, n_classes).
class Classifier {
 public:
  virtual ~Classifier() = default;
  virtual void fit(const FeatureMatrix& x, std::span<const int> y,
                   int n_classes) = 0;
  [[nodiscard]] virtual int predict(std::span<const double> row) const = 0;

  /// Batch prediction, chunked across the global thread pool (see
  /// Regressor::predict_all).
  [[nodiscard]] std::vector<int> predict_all(const FeatureMatrix& x) const {
    std::vector<int> out(x.rows());
    lumos::parallel_for(0, x.rows(), 64,
                        [&](std::size_t b, std::size_t e) {
                          for (std::size_t r = b; r < e; ++r) {
                            out[r] = predict(x.row(r));
                          }
                        });
    return out;
  }
};

}  // namespace lumos::ml

#include "stats/distribution.h"

#include <algorithm>
#include <cmath>

namespace lumos::stats {

std::vector<HistogramBin> histogram(std::span<const double> xs, int bins) {
  std::vector<HistogramBin> out;
  if (xs.empty() || bins <= 0) return out;
  const auto [mn_it, mx_it] = std::minmax_element(xs.begin(), xs.end());
  double lo = *mn_it, hi = *mx_it;
  if (lo == hi) hi = lo + 1.0;  // degenerate: single bucket of width 1
  const double width = (hi - lo) / bins;
  out.resize(static_cast<std::size_t>(bins));
  for (int b = 0; b < bins; ++b) {
    out[static_cast<std::size_t>(b)].lo = lo + b * width;
    out[static_cast<std::size_t>(b)].hi = lo + (b + 1) * width;
  }
  for (double x : xs) {
    auto b = static_cast<std::size_t>((x - lo) / width);
    if (b >= out.size()) b = out.size() - 1;
    ++out[b].count;
  }
  return out;
}

double ecdf_at(std::span<const double> xs, double x) noexcept {
  if (xs.empty()) return 0.0;
  std::size_t c = 0;
  for (double v : xs) {
    if (v <= x) ++c;
  }
  return static_cast<double>(c) / static_cast<double>(xs.size());
}

std::vector<std::pair<double, double>> ecdf_curve(std::span<const double> xs,
                                                  int points) {
  std::vector<std::pair<double, double>> curve;
  if (xs.empty() || points <= 1) return curve;
  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  curve.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double frac = static_cast<double>(i) / (points - 1);
    const auto idx = static_cast<std::size_t>(
        std::round(frac * static_cast<double>(s.size() - 1)));
    curve.emplace_back(s[idx],
                       static_cast<double>(idx + 1) /
                           static_cast<double>(s.size()));
  }
  return curve;
}

}  // namespace lumos::stats

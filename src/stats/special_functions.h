// Special mathematical functions needed to compute p-values for the
// statistical tests in paper §4 (t-test, Levene, D'Agostino-Pearson,
// Anderson-Darling).
#pragma once

namespace lumos::stats {

/// Natural log of the gamma function (Lanczos approximation).
double log_gamma(double x) noexcept;

/// Regularized lower incomplete gamma function P(a, x).
double reg_lower_gamma(double a, double x) noexcept;

/// Regularized incomplete beta function I_x(a, b).
double reg_incomplete_beta(double a, double b, double x) noexcept;

/// Standard normal CDF.
double normal_cdf(double z) noexcept;

/// Two-sided p-value of a Student-t statistic with `df` degrees of freedom.
double t_two_sided_pvalue(double t, double df) noexcept;

/// Upper-tail p-value of an F statistic with (df1, df2) degrees of freedom.
double f_upper_pvalue(double f, double df1, double df2) noexcept;

/// Upper-tail p-value of a chi-squared statistic with `df` degrees of freedom.
double chi2_upper_pvalue(double x, double df) noexcept;

}  // namespace lumos::stats

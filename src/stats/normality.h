// Normality tests used in paper §4.1 / A.1.1 to decide whether per-grid
// throughput samples follow a normal distribution. The paper uses two
// tests and treats a sample as normal if it passes either:
//   (1) D'Agostino-Pearson omnibus K^2 test
//   (2) Anderson-Darling test
#pragma once

#include <span>

#include "stats/hypothesis.h"

namespace lumos::stats {

/// D'Agostino-Pearson omnibus K^2 normality test. Requires n >= 8.
/// Returns p-value ~ probability of observing the sample's skew/kurtosis
/// under normality; small p rejects normality.
TestResult dagostino_pearson_test(std::span<const double> xs);

/// Anderson-Darling test of normality with estimated mean/variance
/// (case 3). The returned p-value uses the Stephens (1974)-style
/// approximation on the small-sample adjusted statistic A*^2.
TestResult anderson_darling_test(std::span<const double> xs);

/// Paper's rule: normal if either test fails to reject at `alpha`
/// (significance 0.001 in §4.1).
bool is_normal_either(std::span<const double> xs, double alpha = 0.001);

}  // namespace lumos::stats

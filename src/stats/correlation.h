// Correlation measures. Spearman's rank correlation quantifies the
// monotone-trend similarity between throughput traces along a trajectory
// (paper §4.2, Fig. 10).
#pragma once

#include <span>

namespace lumos::stats {

/// Pearson product-moment correlation in [-1, 1]. Returns 0 if either
/// sample is constant or sizes mismatch.
double pearson(std::span<const double> xs, std::span<const double> ys) noexcept;

/// Spearman's rank correlation coefficient: Pearson correlation of the
/// (tie-averaged) ranks.
double spearman(std::span<const double> xs, std::span<const double> ys);

}  // namespace lumos::stats

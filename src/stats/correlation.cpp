#include "stats/correlation.h"

#include <cmath>

#include "stats/descriptive.h"

namespace lumos::stats {

double pearson(std::span<const double> xs, std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

}  // namespace lumos::stats

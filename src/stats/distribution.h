// Histogram and empirical-CDF helpers for rendering the paper's CDF plots
// (Figs. 7b and 17) in text form.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace lumos::stats {

struct HistogramBin {
  double lo = 0.0;
  double hi = 0.0;
  std::size_t count = 0;
};

/// Uniform-width histogram with `bins` buckets covering [min, max].
std::vector<HistogramBin> histogram(std::span<const double> xs, int bins);

/// Empirical CDF evaluated at `x`: fraction of samples <= x.
double ecdf_at(std::span<const double> xs, double x) noexcept;

/// Samples the empirical CDF at `points` evenly spaced quantile positions;
/// returns (value, cumulative fraction) pairs, useful for plotting.
std::vector<std::pair<double, double>> ecdf_curve(std::span<const double> xs,
                                                  int points = 100);

}  // namespace lumos::stats

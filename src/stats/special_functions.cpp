#include "stats/special_functions.h"

#include <cmath>
#include <limits>

namespace lumos::stats {
namespace {

constexpr int kMaxIter = 300;
constexpr double kEps = 3.0e-12;
constexpr double kFpMin = 1.0e-300;

/// Continued-fraction evaluation of the incomplete beta function
/// (Lentz's algorithm, cf. Numerical Recipes betacf).
double betacf(double a, double b, double x) noexcept {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

/// Series expansion of P(a, x) for x < a + 1.
double gamma_series(double a, double x) noexcept {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < kMaxIter; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

/// Continued fraction for Q(a, x) = 1 - P(a, x) for x >= a + 1.
double gamma_cf(double a, double x) noexcept {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

}  // namespace

double log_gamma(double x) noexcept { return std::lgamma(x); }

double reg_lower_gamma(double a, double x) noexcept {
  if (x <= 0.0 || a <= 0.0) return 0.0;
  if (x < a + 1.0) return gamma_series(a, x);
  return 1.0 - gamma_cf(a, x);
}

double reg_incomplete_beta(double a, double b, double x) noexcept {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double t_two_sided_pvalue(double t, double df) noexcept {
  if (!std::isfinite(t)) return 0.0;
  if (df <= 0.0) return 1.0;
  const double x = df / (df + t * t);
  return reg_incomplete_beta(df / 2.0, 0.5, x);
}

double f_upper_pvalue(double f, double df1, double df2) noexcept {
  if (f <= 0.0) return 1.0;
  const double x = df2 / (df2 + df1 * f);
  return reg_incomplete_beta(df2 / 2.0, df1 / 2.0, x);
}

double chi2_upper_pvalue(double x, double df) noexcept {
  if (x <= 0.0) return 1.0;
  return 1.0 - reg_lower_gamma(df / 2.0, x / 2.0);
}

}  // namespace lumos::stats

// Descriptive statistics used throughout paper §4: mean, variance,
// coefficient of variation (CV), quantiles and five-number summaries.
#pragma once

#include <span>
#include <vector>

namespace lumos::stats {

double mean(std::span<const double> xs) noexcept;

/// Sample variance with Bessel's correction (n-1 denominator).
double variance(std::span<const double> xs) noexcept;

double stddev(std::span<const double> xs) noexcept;

/// Coefficient of variation = stddev / mean. Returns 0 for empty input or
/// zero mean.
double coefficient_of_variation(std::span<const double> xs) noexcept;

/// Minimum / maximum of a sample. Empty input returns quiet NaN: an
/// extremum of nothing is not 0.0, and a silent zero is indistinguishable
/// from a real one in downstream aggregation (NaN propagates loudly).
double min_of(std::span<const double> xs) noexcept;
double max_of(std::span<const double> xs) noexcept;

/// Linear-interpolated quantile, q in [0, 1]. Input need not be sorted.
/// Empty input returns quiet NaN (see min_of).
double quantile(std::span<const double> xs, double q);

/// Empty input returns quiet NaN (see min_of).
double median(std::span<const double> xs);

/// Box-plot style summary of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

/// Skewness (g1, biased estimator as used by the D'Agostino test input).
double skewness(std::span<const double> xs) noexcept;

/// Excess kurtosis is kurtosis(xs) - 3; this returns plain kurtosis (b2).
double kurtosis(std::span<const double> xs) noexcept;

/// Ranks of the values (average ranks for ties), 1-based, as used by the
/// Spearman correlation.
std::vector<double> ranks(std::span<const double> xs);

}  // namespace lumos::stats

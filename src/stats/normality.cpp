#include "stats/normality.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "stats/descriptive.h"
#include "stats/special_functions.h"

namespace lumos::stats {
namespace {

/// Transformed skewness Z-score (D'Agostino 1970).
double skew_zscore(double g1, double n) noexcept {
  const double y =
      g1 * std::sqrt((n + 1.0) * (n + 3.0) / (6.0 * (n - 2.0)));
  const double beta2 = 3.0 * (n * n + 27.0 * n - 70.0) * (n + 1.0) * (n + 3.0) /
                       ((n - 2.0) * (n + 5.0) * (n + 7.0) * (n + 9.0));
  const double w2 = -1.0 + std::sqrt(2.0 * (beta2 - 1.0));
  const double delta = 1.0 / std::sqrt(0.5 * std::log(w2));
  const double alpha = std::sqrt(2.0 / (w2 - 1.0));
  const double ya = y / alpha;
  return delta * std::log(ya + std::sqrt(ya * ya + 1.0));
}

/// Transformed kurtosis Z-score (Anscombe & Glynn 1983).
double kurt_zscore(double b2, double n) noexcept {
  const double eb2 = 3.0 * (n - 1.0) / (n + 1.0);
  const double vb2 = 24.0 * n * (n - 2.0) * (n - 3.0) /
                     ((n + 1.0) * (n + 1.0) * (n + 3.0) * (n + 5.0));
  const double x = (b2 - eb2) / std::sqrt(vb2);
  const double beta1 = 6.0 * (n * n - 5.0 * n + 2.0) / ((n + 7.0) * (n + 9.0)) *
                       std::sqrt(6.0 * (n + 3.0) * (n + 5.0) /
                                 (n * (n - 2.0) * (n - 3.0)));
  const double a =
      6.0 + 8.0 / beta1 * (2.0 / beta1 + std::sqrt(1.0 + 4.0 / (beta1 * beta1)));
  const double t1 = 1.0 - 2.0 / (9.0 * a);
  const double denom = 1.0 + x * std::sqrt(2.0 / (a - 4.0));
  if (denom <= 0.0) return 6.0;  // extreme tail; any large z works
  const double t2 = std::cbrt((1.0 - 2.0 / a) / denom);
  return (t1 - t2) / std::sqrt(2.0 / (9.0 * a));
}

}  // namespace

TestResult dagostino_pearson_test(std::span<const double> xs) {
  TestResult r;
  const auto n = static_cast<double>(xs.size());
  if (xs.size() < 8) return r;  // test undefined for tiny samples
  if (variance(xs) <= 0.0) {
    r.statistic = std::numeric_limits<double>::infinity();
    r.p_value = 0.0;  // constant sample: degenerate, reject
    return r;
  }
  const double zs = skew_zscore(skewness(xs), n);
  const double zk = kurt_zscore(kurtosis(xs), n);
  r.statistic = zs * zs + zk * zk;
  r.p_value = chi2_upper_pvalue(r.statistic, 2.0);
  return r;
}

TestResult anderson_darling_test(std::span<const double> xs) {
  TestResult r;
  const std::size_t n = xs.size();
  if (n < 8) return r;
  const double m = mean(xs);
  const double sd = stddev(xs);
  if (sd <= 0.0) {
    r.statistic = std::numeric_limits<double>::infinity();
    r.p_value = 0.0;
    return r;
  }
  std::vector<double> z(xs.begin(), xs.end());
  std::sort(z.begin(), z.end());
  double a2 = 0.0;
  const auto nd = static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double zi = (z[i] - m) / sd;
    const double zri = (z[n - 1 - i] - m) / sd;
    double cdf_i = normal_cdf(zi);
    double cdf_r = normal_cdf(zri);
    // Clamp away from 0/1 so the logs stay finite for extreme outliers.
    cdf_i = std::clamp(cdf_i, 1e-15, 1.0 - 1e-15);
    cdf_r = std::clamp(cdf_r, 1e-15, 1.0 - 1e-15);
    a2 += (2.0 * static_cast<double>(i) + 1.0) *
          (std::log(cdf_i) + std::log(1.0 - cdf_r));
  }
  a2 = -nd - a2 / nd;
  // Small-sample adjustment for estimated parameters (case 3).
  const double a2_star = a2 * (1.0 + 0.75 / nd + 2.25 / (nd * nd));
  r.statistic = a2_star;
  // Piecewise p-value approximation (D'Agostino & Stephens 1986, Table 4.9).
  double p;
  if (a2_star >= 0.6) {
    p = std::exp(1.2937 - 5.709 * a2_star + 0.0186 * a2_star * a2_star);
  } else if (a2_star >= 0.34) {
    p = std::exp(0.9177 - 4.279 * a2_star - 1.38 * a2_star * a2_star);
  } else if (a2_star >= 0.2) {
    p = 1.0 - std::exp(-8.318 + 42.796 * a2_star - 59.938 * a2_star * a2_star);
  } else {
    p = 1.0 - std::exp(-13.436 + 101.14 * a2_star - 223.73 * a2_star * a2_star);
  }
  r.p_value = std::clamp(p, 0.0, 1.0);
  return r;
}

bool is_normal_either(std::span<const double> xs, double alpha) {
  const TestResult dp = dagostino_pearson_test(xs);
  if (dp.p_value > alpha) return true;
  const TestResult ad = anderson_darling_test(xs);
  return ad.p_value > alpha;
}

}  // namespace lumos::stats

#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace lumos::stats {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - m;
    ss += d * d;
  }
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double coefficient_of_variation(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

double min_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  if (lo == hi) return s[lo];
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    if (lo == hi) return sorted[lo];
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  s.p25 = at(0.25);
  s.median = at(0.5);
  s.p75 = at(0.75);
  return s;
}

double skewness(std::span<const double> xs) noexcept {
  const auto n = static_cast<double>(xs.size());
  if (xs.size() < 3) return 0.0;
  const double m = mean(xs);
  double m2 = 0.0, m3 = 0.0;
  for (double x : xs) {
    const double d = x - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= n;
  m3 /= n;
  if (m2 <= 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

double kurtosis(std::span<const double> xs) noexcept {
  const auto n = static_cast<double>(xs.size());
  if (xs.size() < 4) return 3.0;
  const double m = mean(xs);
  double m2 = 0.0, m4 = 0.0;
  for (double x : xs) {
    const double d = x - m;
    const double d2 = d * d;
    m2 += d2;
    m4 += d2 * d2;
  }
  m2 /= n;
  m4 /= n;
  if (m2 <= 0.0) return 3.0;
  return m4 / (m2 * m2);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    // Average rank for the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[idx[k]] = avg;
    i = j + 1;
  }
  return r;
}

}  // namespace lumos::stats

// Two-sample hypothesis tests used in paper §4.1/Table 5: pairwise t-test
// on mean throughput per geolocation and Levene's test on variances.
#pragma once

#include <span>

namespace lumos::stats {

struct TestResult {
  double statistic = 0.0;
  double p_value = 1.0;
};

/// Welch's unequal-variance two-sample t-test (two-sided).
TestResult welch_t_test(std::span<const double> a, std::span<const double> b);

/// Pooled-variance Student's two-sample t-test (two-sided).
TestResult student_t_test(std::span<const double> a, std::span<const double> b);

/// Levene's test for equality of variances between two samples.
/// `center` selects the classic mean-centered variant or the more robust
/// Brown-Forsythe median-centered variant.
enum class LeveneCenter { kMean, kMedian };

TestResult levene_test(std::span<const double> a, std::span<const double> b,
                       LeveneCenter center = LeveneCenter::kMean);

}  // namespace lumos::stats

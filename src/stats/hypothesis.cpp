#include "stats/hypothesis.h"

#include <cmath>
#include <limits>
#include <vector>

#include "stats/descriptive.h"
#include "stats/special_functions.h"

namespace lumos::stats {

TestResult welch_t_test(std::span<const double> a, std::span<const double> b) {
  TestResult r;
  if (a.size() < 2 || b.size() < 2) return r;
  const double ma = mean(a), mb = mean(b);
  const double va = variance(a), vb = variance(b);
  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());
  const double se2 = va / na + vb / nb;
  if (se2 <= 0.0) {
    r.statistic = (ma == mb) ? 0.0 : std::numeric_limits<double>::infinity();
    r.p_value = (ma == mb) ? 1.0 : 0.0;
    return r;
  }
  r.statistic = (ma - mb) / std::sqrt(se2);
  // Welch-Satterthwaite degrees of freedom.
  const double num = se2 * se2;
  const double den = (va / na) * (va / na) / (na - 1.0) +
                     (vb / nb) * (vb / nb) / (nb - 1.0);
  const double df = den > 0.0 ? num / den : na + nb - 2.0;
  r.p_value = t_two_sided_pvalue(r.statistic, df);
  return r;
}

TestResult student_t_test(std::span<const double> a, std::span<const double> b) {
  TestResult r;
  if (a.size() < 2 || b.size() < 2) return r;
  const double ma = mean(a), mb = mean(b);
  const double va = variance(a), vb = variance(b);
  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());
  const double df = na + nb - 2.0;
  const double sp2 = ((na - 1.0) * va + (nb - 1.0) * vb) / df;
  const double se = std::sqrt(sp2 * (1.0 / na + 1.0 / nb));
  if (se <= 0.0) {
    r.statistic = (ma == mb) ? 0.0 : std::numeric_limits<double>::infinity();
    r.p_value = (ma == mb) ? 1.0 : 0.0;
    return r;
  }
  r.statistic = (ma - mb) / se;
  r.p_value = t_two_sided_pvalue(r.statistic, df);
  return r;
}

TestResult levene_test(std::span<const double> a, std::span<const double> b,
                       LeveneCenter center) {
  TestResult r;
  if (a.size() < 2 || b.size() < 2) return r;
  const double ca = center == LeveneCenter::kMean ? mean(a) : median(a);
  const double cb = center == LeveneCenter::kMean ? mean(b) : median(b);

  std::vector<double> za, zb;
  za.reserve(a.size());
  zb.reserve(b.size());
  for (double x : a) za.push_back(std::fabs(x - ca));
  for (double x : b) zb.push_back(std::fabs(x - cb));

  const double mza = mean(za), mzb = mean(zb);
  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());
  const double n = na + nb;
  const double grand = (mza * na + mzb * nb) / n;

  const double between =
      na * (mza - grand) * (mza - grand) + nb * (mzb - grand) * (mzb - grand);
  double within = 0.0;
  for (double z : za) within += (z - mza) * (z - mza);
  for (double z : zb) within += (z - mzb) * (z - mzb);

  constexpr double k = 2.0;  // two groups
  const double df1 = k - 1.0;
  const double df2 = n - k;
  if (within <= 0.0) {
    r.statistic = between > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
    r.p_value = between > 0.0 ? 0.0 : 1.0;
    return r;
  }
  r.statistic = (df2 / df1) * (between / within);
  r.p_value = f_upper_pvalue(r.statistic, df1, df2);
  return r;
}

}  // namespace lumos::stats

// Tests for lumos::data — dataset cleaning (paper §3.1 rules), CSV round
// trips, the composable feature groups (Table 6), sequence windowing and
// the split/standardization utilities.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/csv.h"
#include "data/dataset.h"
#include "data/features.h"
#include "data/split.h"

namespace lumos::data {
namespace {

/// Builds a minimal synthetic run: `n` seconds along a line with fixed
/// throughput ramp, as (area, traj, run).
std::vector<SampleRecord> make_run(const std::string& area, int traj, int run,
                                   int n, double gps_err = 2.0,
                                   double tput0 = 100.0) {
  std::vector<SampleRecord> v;
  for (int t = 0; t < n; ++t) {
    SampleRecord s;
    s.area = area;
    s.trajectory_id = traj;
    s.run_id = run;
    s.timestamp_s = t;
    s.latitude = 44.98 + t * 1e-5;
    s.longitude = -93.26;
    s.gps_accuracy_m = gps_err;
    s.detected_activity = Activity::kWalking;
    s.moving_speed_mps = 1.4;
    s.compass_deg = 45.0;
    s.throughput_mbps = tput0 + 10.0 * t;
    s.radio_type = RadioType::kNrMmWave;
    s.cell_id = 1;
    s.lte_rsrp = -90.0;
    s.nr_ssrsrp = -85.0;
    s.ue_panel_distance_m = 50.0 + t;
    s.theta_p_deg = 10.0;
    s.theta_m_deg = 170.0;
    v.push_back(std::move(s));
  }
  return v;
}

Dataset two_run_dataset(int n = 40) {
  Dataset ds;
  for (const auto& s : make_run("airport", 1, 0, n)) ds.append(s);
  for (const auto& s : make_run("airport", 1, 1, n)) ds.append(s);
  return ds;
}

// ---------- cleaning ----------

TEST(Cleaning, DropsHighGpsErrorRuns) {
  Dataset ds;
  for (const auto& s : make_run("airport", 1, 0, 30, /*gps_err=*/2.0)) {
    ds.append(s);
  }
  for (const auto& s : make_run("airport", 1, 1, 30, /*gps_err=*/8.0)) {
    ds.append(s);
  }
  ds.clean();
  EXPECT_EQ(ds.runs().size(), 1u);
  for (const auto& s : ds.samples()) EXPECT_EQ(s.run_id, 0);
}

TEST(Cleaning, TrimsWarmupBuffer) {
  Dataset ds = two_run_dataset(40);
  const std::size_t dropped = ds.clean(CleaningConfig{.buffer_period_s = 10.0});
  EXPECT_EQ(dropped, 2u * 10u);
  for (const auto& s : ds.samples()) {
    EXPECT_GE(s.timestamp_s, 10.0);
  }
}

TEST(Cleaning, FillsPixelCoordinates) {
  Dataset ds = two_run_dataset();
  ds.clean();
  for (const auto& s : ds.samples()) {
    EXPECT_GT(s.pixel_x, 0);
    EXPECT_GT(s.pixel_y, 0);
  }
  // Same lat/lon quantize identically.
  const auto px = geo::pixelize({ds[0].latitude, ds[0].longitude}, 17);
  EXPECT_EQ(ds[0].pixel_x, px.x);
  EXPECT_EQ(ds[0].pixel_y, px.y);
}

TEST(Cleaning, SortsByAreaTrajectoryRunTime) {
  Dataset ds;
  auto run = make_run("airport", 1, 0, 5);
  // Insert out of order.
  ds.append(run[3]);
  ds.append(run[1]);
  ds.append(run[4]);
  ds.append(run[0]);
  ds.append(run[2]);
  ds.clean(CleaningConfig{.buffer_period_s = 0.0});
  for (std::size_t i = 1; i < ds.size(); ++i) {
    EXPECT_LT(ds[i - 1].timestamp_s, ds[i].timestamp_s);
  }
}

TEST(DatasetOps, RunsGroupAndOrder) {
  Dataset ds = two_run_dataset(20);
  const auto runs = ds.runs();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].size(), 20u);
  EXPECT_EQ(runs[1].size(), 20u);
}

TEST(DatasetOps, FilterKeepsMatching) {
  Dataset ds = two_run_dataset(20);
  const Dataset only0 =
      ds.filter([](const SampleRecord& s) { return s.run_id == 0; });
  EXPECT_EQ(only0.size(), 20u);
}

TEST(DatasetOps, ThroughputTracesMatchRuns) {
  Dataset ds = two_run_dataset(15);
  const auto traces = ds.throughput_traces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_NEAR(traces[0][0], 100.0, 1e-9);
  EXPECT_NEAR(traces[0][14], 240.0, 1e-9);
}

TEST(DatasetOps, GridGroupsNearbySamples) {
  Dataset ds = two_run_dataset(20);
  ds.clean(CleaningConfig{.buffer_period_s = 0.0});
  const auto grid = ds.throughput_by_grid(2);
  std::size_t total = 0;
  for (const auto& [key, v] : grid) total += v.size();
  EXPECT_EQ(total, ds.size());
  EXPECT_LT(grid.size(), ds.size());  // some cells shared
}

// ---------- CSV ----------

TEST(Csv, RoundTripPreservesEverything) {
  Dataset ds = two_run_dataset(10);
  ds.clean(CleaningConfig{.buffer_period_s = 0.0});
  ds[3].horizontal_handoff = true;
  ds[4].vertical_handoff = true;
  ds[5].radio_type = RadioType::kLte;
  ds[5].ue_panel_distance_m = SampleRecord::nan_value();
  ds[5].theta_p_deg = SampleRecord::nan_value();
  ds[5].theta_m_deg = SampleRecord::nan_value();

  const std::string path = "/tmp/lumos_test_roundtrip.csv";
  write_csv(ds, path);
  const Dataset back = read_csv(path);
  std::filesystem::remove(path);

  ASSERT_EQ(back.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(back[i].area, ds[i].area);
    EXPECT_EQ(back[i].run_id, ds[i].run_id);
    EXPECT_NEAR(back[i].latitude, ds[i].latitude, 1e-8);
    EXPECT_NEAR(back[i].throughput_mbps, ds[i].throughput_mbps, 1e-6);
    EXPECT_EQ(back[i].radio_type, ds[i].radio_type);
    EXPECT_EQ(back[i].horizontal_handoff, ds[i].horizontal_handoff);
    EXPECT_EQ(back[i].vertical_handoff, ds[i].vertical_handoff);
    EXPECT_EQ(back[i].pixel_x, ds[i].pixel_x);
    EXPECT_EQ(std::isnan(back[i].ue_panel_distance_m),
              std::isnan(ds[i].ue_panel_distance_m));
  }
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv("/tmp/definitely_not_here_lumos.csv"),
               std::runtime_error);
}

// ---------- feature specs ----------

TEST(FeatureSpec, ParseAndName) {
  EXPECT_EQ(FeatureSetSpec::parse("L").name(), "L");
  EXPECT_EQ(FeatureSetSpec::parse("l+m").name(), "L+M");
  EXPECT_EQ(FeatureSetSpec::parse("T+M+C").name(), "T+M+C");
  EXPECT_EQ(FeatureSetSpec::parse("C+L").name(), "L+C");
  EXPECT_THROW((void)FeatureSetSpec::parse(""), std::invalid_argument);
  EXPECT_THROW((void)FeatureSetSpec::parse("X"), std::invalid_argument);
}

TEST(FeatureSpec, NamesMatchTable6) {
  const FeatureConfig cfg;
  const auto l = feature_names(FeatureSetSpec::parse("L"), cfg);
  EXPECT_EQ(l, (std::vector<std::string>{"pixel_x", "pixel_y"}));

  const auto lm = feature_names(FeatureSetSpec::parse("L+M"), cfg);
  EXPECT_EQ(lm.size(), 5u);  // pixels + speed + compass sin/cos

  const auto tm = feature_names(FeatureSetSpec::parse("T+M"), cfg);
  // Table 6: T+M = speed + distance + positional + mobility angle
  // (compass replaced by panel-relative angles).
  EXPECT_EQ(tm.size(), 4u);

  const auto lmc = feature_names(FeatureSetSpec::parse("L+M+C"), cfg);
  EXPECT_EQ(lmc.size(), 5u + static_cast<std::size_t>(cfg.throughput_lags) + 5u);
}

TEST(FeatureClasses, ThresholdsMatchPaper) {
  const FeatureConfig cfg;  // 300 / 700 Mbps
  EXPECT_EQ(throughput_class(0.0, cfg), 0);
  EXPECT_EQ(throughput_class(299.9, cfg), 0);
  EXPECT_EQ(throughput_class(300.0, cfg), 1);
  EXPECT_EQ(throughput_class(699.9, cfg), 1);
  EXPECT_EQ(throughput_class(700.0, cfg), 2);
  EXPECT_EQ(throughput_class(2000.0, cfg), 2);
}

// ---------- feature building ----------

TEST(BuildFeatures, TargetsAreNextSlotThroughput) {
  Dataset ds = two_run_dataset(30);
  ds.clean(CleaningConfig{.buffer_period_s = 0.0});
  const auto built = build_features(ds, FeatureSetSpec::parse("L"));
  // Each run of 30 gives 29 samples (horizon 1, no lags for L).
  EXPECT_EQ(built.x.rows(), 2u * 29u);
  // Throughput ramps by +10/s; target should be current + 10.
  for (std::size_t i = 0; i < built.x.rows(); ++i) {
    const auto& src = ds[built.source_index[i]];
    EXPECT_NEAR(built.y_reg[i], src.throughput_mbps + 10.0, 1e-9);
  }
}

TEST(BuildFeatures, LagFeaturesLookBackwards) {
  Dataset ds = two_run_dataset(30);
  ds.clean(CleaningConfig{.buffer_period_s = 0.0});
  FeatureConfig cfg;
  cfg.throughput_lags = 3;
  const auto built = build_features(ds, FeatureSetSpec::parse("C"), cfg);
  // First usable index is lag-2 (3 lags), last emits target at +1:
  // 30 - 2 - 1 = 27 samples per run.
  EXPECT_EQ(built.x.rows(), 2u * 27u);
  const auto names = built.feature_names;
  ASSERT_EQ(names[0], "tput_lag_0");
  for (std::size_t i = 0; i < built.x.rows(); ++i) {
    const double lag0 = built.x.at(i, 0);
    const double lag1 = built.x.at(i, 1);
    const double lag2 = built.x.at(i, 2);
    EXPECT_NEAR(lag0 - lag1, 10.0, 1e-9);
    EXPECT_NEAR(lag1 - lag2, 10.0, 1e-9);
  }
}

TEST(BuildFeatures, HorizonShiftsTarget) {
  Dataset ds = two_run_dataset(30);
  ds.clean(CleaningConfig{.buffer_period_s = 0.0});
  FeatureConfig cfg;
  cfg.horizon = 5;
  const auto built = build_features(ds, FeatureSetSpec::parse("L"), cfg);
  for (std::size_t i = 0; i < built.x.rows(); ++i) {
    const auto& src = ds[built.source_index[i]];
    EXPECT_NEAR(built.y_reg[i], src.throughput_mbps + 50.0, 1e-9);
  }
}

TEST(BuildFeatures, TSkipsSamplesWithoutGeometry) {
  Dataset ds = two_run_dataset(20);
  ds.clean(CleaningConfig{.buffer_period_s = 0.0});
  // Knock geometry out of one run.
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds[i].run_id == 1) {
      ds[i].ue_panel_distance_m = SampleRecord::nan_value();
    }
  }
  const auto built = build_features(ds, FeatureSetSpec::parse("T"));
  EXPECT_EQ(built.x.rows(), 19u);  // only run 0 contributes
}

TEST(BuildFeatures, ShortRunsAreSkipped) {
  Dataset ds;
  for (const auto& s : make_run("airport", 1, 0, 2)) ds.append(s);
  ds.clean(CleaningConfig{.buffer_period_s = 0.0});
  FeatureConfig cfg;
  cfg.throughput_lags = 5;
  const auto built = build_features(ds, FeatureSetSpec::parse("C"), cfg);
  EXPECT_EQ(built.x.rows(), 0u);
}

TEST(BuildFeatures, InvalidConfigThrows) {
  Dataset ds = two_run_dataset(10);
  FeatureConfig cfg;
  cfg.throughput_lags = 0;
  EXPECT_THROW(build_features(ds, FeatureSetSpec::parse("C"), cfg),
               std::invalid_argument);
  FeatureConfig cfg2;
  cfg2.horizon = 0;
  EXPECT_THROW(build_features(ds, FeatureSetSpec::parse("L"), cfg2),
               std::invalid_argument);
}

TEST(FeatureWindow, MatchesBatchBuilder) {
  Dataset ds = two_run_dataset(30);
  ds.clean(CleaningConfig{.buffer_period_s = 0.0});
  const auto spec = FeatureSetSpec::parse("L+M+C");
  const FeatureConfig cfg;
  const auto built = build_features(ds, spec, cfg);
  // Reconstruct the first sample's window by hand and compare.
  const std::size_t src = built.source_index[0];
  std::vector<SampleRecord> window;
  for (std::size_t i = src + 1 - static_cast<std::size_t>(cfg.throughput_lags);
       i <= src; ++i) {
    window.push_back(ds[i]);
  }
  const auto row = feature_row_from_window(window, spec, cfg);
  ASSERT_TRUE(row.has_value());
  ASSERT_EQ(row->size(), built.x.cols());
  for (std::size_t c = 0; c < row->size(); ++c) {
    EXPECT_NEAR((*row)[c], built.x.at(0, c), 1e-9);
  }
}

TEST(FeatureWindow, TooShortWindowIsNullopt) {
  Dataset ds = two_run_dataset(10);
  const auto spec = FeatureSetSpec::parse("C");
  std::vector<SampleRecord> window{ds[0]};  // needs 5 lags
  EXPECT_FALSE(feature_row_from_window(window, spec, {}).has_value());
}

// ---------- sequences ----------

TEST(BuildSequences, WindowAndTargetLayout) {
  Dataset ds = two_run_dataset(40);
  ds.clean(CleaningConfig{.buffer_period_s = 0.0});
  SequenceConfig seq;
  seq.seq_len = 10;
  seq.out_len = 3;
  const auto built =
      build_sequences(ds, FeatureSetSpec::parse("L"), {}, seq);
  EXPECT_EQ(built.input_dim, 2u);
  // Per run of 40: windows end at e in [9, 36] -> 28 windows.
  EXPECT_EQ(built.samples.size(), 2u * 28u);
  const auto& s = built.samples[0];
  EXPECT_EQ(s.x.size(), 10u * 2u);
  ASSERT_EQ(s.y.size(), 3u);
  // Targets continue the +10 ramp past the window end.
  EXPECT_NEAR(s.y[1] - s.y[0], 10.0, 1e-9);
  EXPECT_NEAR(s.y[2] - s.y[1], 10.0, 1e-9);
}

TEST(BuildSequences, RejectsZeroWindows) {
  Dataset ds = two_run_dataset(40);
  SequenceConfig seq;
  seq.seq_len = 0;
  EXPECT_THROW(build_sequences(ds, FeatureSetSpec::parse("L"), {}, seq),
               std::invalid_argument);
}

// ---------- standardizer / scaler / split ----------

TEST(StandardizerTest, ZeroMeanUnitVariance) {
  ml::FeatureMatrix x(100, 2);
  Rng rng(1);
  for (std::size_t i = 0; i < 100; ++i) {
    x.at(i, 0) = rng.normal(50.0, 10.0);
    x.at(i, 1) = rng.normal(-3.0, 0.5);
  }
  Standardizer sc;
  sc.fit(x);
  sc.transform(x);
  double m0 = 0.0, v0 = 0.0;
  for (std::size_t i = 0; i < 100; ++i) m0 += x.at(i, 0);
  m0 /= 100.0;
  for (std::size_t i = 0; i < 100; ++i) {
    v0 += (x.at(i, 0) - m0) * (x.at(i, 0) - m0);
  }
  EXPECT_NEAR(m0, 0.0, 1e-9);
  EXPECT_NEAR(v0 / 100.0, 1.0, 1e-9);
}

TEST(StandardizerTest, ConstantColumnIsSafe) {
  ml::FeatureMatrix x(10, 1);
  for (std::size_t i = 0; i < 10; ++i) x.at(i, 0) = 5.0;
  Standardizer sc;
  sc.fit(x);
  sc.transform(x);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(std::isfinite(x.at(i, 0)));
  }
}

TEST(TargetScalerTest, InverseUndoesTransform) {
  TargetScaler ts;
  const std::vector<double> y{100.0, 200.0, 300.0, 400.0};
  ts.fit(y);
  EXPECT_NEAR(ts.inverse(ts.transform(237.0)), 237.0, 1e-9);
}

TEST(Split, FractionAndDisjointness) {
  const auto split = train_test_split(1000, 0.7, 42);
  EXPECT_EQ(split.train.size(), 700u);
  EXPECT_EQ(split.test.size(), 300u);
  std::vector<bool> seen(1000, false);
  for (std::size_t i : split.train) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
  for (std::size_t i : split.test) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(Split, DeterministicBySeed) {
  const auto a = train_test_split(100, 0.7, 7);
  const auto b = train_test_split(100, 0.7, 7);
  EXPECT_EQ(a.train, b.train);
  const auto c = train_test_split(100, 0.7, 8);
  EXPECT_NE(a.train, c.train);
}

TEST(Split, SubsetSelectsRows) {
  ml::FeatureMatrix x(5, 2);
  for (std::size_t i = 0; i < 5; ++i) {
    x.at(i, 0) = static_cast<double>(i);
    x.at(i, 1) = static_cast<double>(10 * i);
  }
  const std::vector<std::size_t> idx{1, 3};
  const auto sub = subset(x, idx);
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_EQ(sub.at(0, 0), 1.0);
  EXPECT_EQ(sub.at(1, 1), 30.0);
  const std::vector<double> v{0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(subset(v, idx), (std::vector<double>{1.0, 3.0}));
}

TEST(Split, ClampsOutOfRangeTrainFraction) {
  // fraction 0.0 -> everything in test, 1.0 -> everything in train.
  const auto none = train_test_split(50, 0.0, 9);
  EXPECT_EQ(none.train.size(), 0u);
  EXPECT_EQ(none.test.size(), 50u);
  const auto all = train_test_split(50, 1.0, 9);
  EXPECT_EQ(all.train.size(), 50u);
  EXPECT_EQ(all.test.size(), 0u);
  // Out-of-range fractions clamp instead of overflowing the index count.
  const auto over = train_test_split(50, 1.5, 9);
  EXPECT_EQ(over.train.size(), 50u);
  EXPECT_EQ(over.test.size(), 0u);
  const auto under = train_test_split(50, -0.5, 9);
  EXPECT_EQ(under.train.size(), 0u);
  EXPECT_EQ(under.test.size(), 50u);
  const auto empty = train_test_split(0, 0.7, 9);
  EXPECT_EQ(empty.train.size(), 0u);
  EXPECT_EQ(empty.test.size(), 0u);
}

TEST(Csv, TrailingCommaIsAnExtraEmptyField) {
  Dataset ds;
  for (const auto& s : make_run("airport", 1, 0, 3)) ds.append(s);
  const std::string path = "/tmp/lumos_test_trailing_comma.csv";
  write_csv(ds, path);

  // Simulate a hand-edited export: append a ',' to the first data row.
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 2u);
  lines[1] += ",";
  {
    std::ofstream out(path);
    for (const auto& l : lines) out << l << "\n";
  }

  // The trailing empty field must be counted (28 fields), not silently
  // dropped, and the error must say what was seen vs expected.
  try {
    (void)read_csv(path);
    FAIL() << "read_csv accepted a 28-field row";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("got 28"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected 27"), std::string::npos) << msg;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lumos::data

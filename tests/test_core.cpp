// Tests for lumos::core — the evaluation harness behind Tables 7/8/9, the
// Lumos5G prediction facade, and the throughput map.
#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "core/lumos5g.h"
#include "core/throughput_map.h"
#include "sim/areas.h"

namespace lumos::core {
namespace {

using data::FeatureSetSpec;

/// Small airport dataset shared by the fixture-based tests.
const data::Dataset& airport_ds() {
  static const data::Dataset ds = [] {
    const sim::Area area = sim::make_airport();
    return sim::collect_area_dataset(area, /*walk_runs=*/6, 0, 4242);
  }();
  return ds;
}

ExperimentConfig fast_config() {
  ExperimentConfig cfg;
  cfg.gbdt.n_estimators = 60;
  cfg.forest.n_trees = 30;
  cfg.seq2seq.epochs = 3;
  cfg.seq2seq.hidden = 16;
  cfg.seq2seq.layers = 1;
  return cfg;
}

TEST(Evaluate, GdbtProducesSaneMetrics) {
  const auto r = evaluate_model(ModelKind::kGdbt, airport_ds(),
                                FeatureSetSpec::parse("L+M"), fast_config());
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.n_train, r.n_test);
  EXPECT_GT(r.mae, 0.0);
  EXPECT_GT(r.rmse, r.mae);       // RMSE >= MAE always
  EXPECT_GT(r.weighted_f1, 0.5);  // far better than chance
  EXPECT_LE(r.weighted_f1, 1.0);
  EXPECT_GE(r.low_recall, 0.0);
  EXPECT_EQ(r.model, "GDBT");
  EXPECT_EQ(r.feature_group, "L+M");
}

TEST(Evaluate, MoreFeaturesNeverHurtMuch) {
  const auto cfg = fast_config();
  const auto l = evaluate_model(ModelKind::kGdbt, airport_ds(),
                                FeatureSetSpec::parse("L"), cfg);
  const auto lmc = evaluate_model(ModelKind::kGdbt, airport_ds(),
                                  FeatureSetSpec::parse("L+M+C"), cfg);
  ASSERT_TRUE(l.valid && lmc.valid);
  EXPECT_LT(lmc.mae, l.mae);  // the paper's core feature-group finding
  EXPECT_GT(lmc.weighted_f1, l.weighted_f1);
}

TEST(Evaluate, KrigingOnlyAppliesToL) {
  const auto cfg = fast_config();
  const auto ok_l = evaluate_model(ModelKind::kKriging, airport_ds(),
                                   FeatureSetSpec::parse("L"), cfg);
  EXPECT_TRUE(ok_l.valid);
  const auto ok_lm = evaluate_model(ModelKind::kKriging, airport_ds(),
                                    FeatureSetSpec::parse("L+M"), cfg);
  EXPECT_FALSE(ok_lm.valid);  // Table 9 footnote: OK is L-only
}

TEST(Evaluate, TGroupInvalidWithoutSurveyedPanels) {
  // The Loop area has no panel survey (paper §6.2): T must be skipped.
  const sim::Area loop = sim::make_loop();
  data::Dataset ds;
  sim::MeasurementCollector collector(loop.env);
  sim::CollectorConfig ccfg;
  ccfg.n_runs = 1;
  sim::MotionConfig motion;
  collector.collect(loop.walking[0], motion, {}, ccfg, 1, ds);
  ds.clean();
  const auto r = evaluate_model(ModelKind::kGdbt, ds,
                                FeatureSetSpec::parse("T+M"), fast_config());
  EXPECT_FALSE(r.valid);
}

TEST(Evaluate, HarmonicMeanIgnoresFeatures) {
  const auto r = evaluate_model(ModelKind::kHarmonicMean, airport_ds(),
                                FeatureSetSpec::parse("L"), fast_config());
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.feature_group, "history");
  EXPECT_GT(r.mae, 0.0);
}

TEST(Evaluate, HarmonicMeanReportsConsumedHistory) {
  const auto cfg = fast_config();
  const auto r = evaluate_model(ModelKind::kHarmonicMean, airport_ds(),
                                FeatureSetSpec::parse("L"), cfg);
  ASSERT_TRUE(r.valid);
  // n_train counts the history-window samples consumed before predicting:
  // hm_window per contributing trace, never zero when predictions exist.
  EXPECT_GT(r.n_train, 0u);
  EXPECT_EQ(r.n_train % cfg.hm_window, 0u);
}

TEST(Evaluate, GridMatchesSequentialEvaluation) {
  const auto cfg = fast_config();
  const std::vector<GridCell> cells = {
      {ModelKind::kGdbt, FeatureSetSpec::parse("L+M")},
      {ModelKind::kKnn, FeatureSetSpec::parse("L")},
      {ModelKind::kKriging, FeatureSetSpec::parse("L+M")},  // invalid cell
      {ModelKind::kRandomForest, FeatureSetSpec::parse("L+M+C")},
  };
  const auto grid = evaluate_grid(airport_ds(), cells, cfg);
  ASSERT_EQ(grid.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto seq =
        evaluate_model(cells[i].kind, airport_ds(), cells[i].spec, cfg);
    EXPECT_EQ(grid[i].valid, seq.valid) << "cell " << i;
    EXPECT_EQ(grid[i].model, seq.model) << "cell " << i;
    EXPECT_EQ(grid[i].mae, seq.mae) << "cell " << i;  // bitwise
    EXPECT_EQ(grid[i].rmse, seq.rmse) << "cell " << i;
    EXPECT_EQ(grid[i].weighted_f1, seq.weighted_f1) << "cell " << i;
    EXPECT_EQ(grid[i].n_train, seq.n_train) << "cell " << i;
  }
}

TEST(Evaluate, Seq2SeqRuns) {
  const auto r = evaluate_model(ModelKind::kSeq2Seq, airport_ds(),
                                FeatureSetSpec::parse("L+M"), fast_config());
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.weighted_f1, 0.4);
  EXPECT_GT(r.mae, 0.0);
}

TEST(Evaluate, TransferAcrossDatasets) {
  // Split airport samples by serving panel, as in the paper's
  // North-panel -> South-panel transferability experiment (§6.2).
  const auto& ds = airport_ds();
  const auto north =
      ds.filter([](const data::SampleRecord& s) { return s.cell_id == 2; });
  const auto south =
      ds.filter([](const data::SampleRecord& s) { return s.cell_id == 1; });
  const auto r =
      evaluate_transfer(ModelKind::kGdbt, north, south,
                        FeatureSetSpec::parse("T+M"), fast_config());
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.weighted_f1, 0.2);
  EXPECT_GT(r.n_train, 0u);
  EXPECT_GT(r.n_test, 0u);
}

TEST(Evaluate, PredictTestTraceHasPairedSeries) {
  const auto tp = predict_test_trace(ModelKind::kGdbt, airport_ds(),
                                     FeatureSetSpec::parse("L+M"),
                                     fast_config(), 50);
  ASSERT_EQ(tp.actual.size(), tp.predicted.size());
  ASSERT_EQ(tp.actual.size(), 50u);
}

TEST(Evaluate, ModelNames) {
  EXPECT_STREQ(to_string(ModelKind::kGdbt), "GDBT");
  EXPECT_STREQ(to_string(ModelKind::kSeq2Seq), "Seq2Seq");
  EXPECT_STREQ(to_string(ModelKind::kKnn), "KNN");
  EXPECT_STREQ(to_string(ModelKind::kRandomForest), "RF");
  EXPECT_STREQ(to_string(ModelKind::kKriging), "OK");
  EXPECT_STREQ(to_string(ModelKind::kHarmonicMean), "HM");
}

// ---------- Lumos5G facade ----------

TEST(Lumos5GFacade, TrainAndPredictOnline) {
  Lumos5GConfig cfg;
  cfg.feature_spec = FeatureSetSpec::parse("L+M+C");
  cfg.gbdt.n_estimators = 60;
  Lumos5G predictor(cfg);
  EXPECT_FALSE(predictor.trained());
  ASSERT_TRUE(predictor.train(airport_ds()).has_value());
  EXPECT_TRUE(predictor.trained());

  // Use a real window from the dataset.
  const auto runs = airport_ds().runs();
  std::vector<data::SampleRecord> window;
  for (std::size_t i = 20; i < 25; ++i) {
    window.push_back(airport_ds()[runs[0][i]]);
  }
  const auto pred = predictor.predict(window);
  ASSERT_TRUE(pred.has_value());
  EXPECT_GE(pred->throughput_mbps, -100.0);
  EXPECT_LE(pred->throughput_mbps, 2500.0);
  EXPECT_GE(pred->throughput_class, 0);
  EXPECT_LT(pred->throughput_class, 3);
  // A full-context window is answered by the primary tier.
  EXPECT_EQ(pred->tier, 0);
  EXPECT_EQ(pred->feature_group, "L+M+C");
}

TEST(Lumos5GFacade, UntrainedPredictIsTypedError) {
  Lumos5G predictor;
  std::vector<data::SampleRecord> window(5);
  const auto pred = predictor.predict(window);
  ASSERT_FALSE(pred.has_value());
  EXPECT_EQ(pred.error().code, ErrorCode::kNotTrained);
}

TEST(Lumos5GFacade, UntrainedFeatureImportanceIsTypedError) {
  Lumos5G predictor;
  const auto imp = predictor.feature_importance();
  ASSERT_FALSE(imp.has_value());
  EXPECT_EQ(imp.error().code, ErrorCode::kNotTrained);
}

TEST(Lumos5GFacade, FeatureImportanceAlignsWithNames) {
  Lumos5GConfig cfg;
  cfg.feature_spec = FeatureSetSpec::parse("L+M");
  cfg.gbdt.n_estimators = 40;
  Lumos5G predictor(cfg);
  ASSERT_TRUE(predictor.train(airport_ds()).has_value());
  const auto imp = predictor.feature_importance();
  ASSERT_TRUE(imp.has_value());
  ASSERT_EQ(imp->size(), predictor.feature_names().size());
  double total = 0.0;
  for (double v : *imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(Lumos5GFacade, TooSmallDatasetIsTypedError) {
  Lumos5G predictor;
  data::Dataset tiny;
  const auto r = predictor.train(tiny);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kDatasetTooSmall);
  EXPECT_FALSE(predictor.trained());
}

// ---------- throughput map ----------

TEST(ThroughputMapTest, AggregatesCells) {
  const auto map = ThroughputMap::build(airport_ds(), 2);
  EXPECT_GT(map.cells().size(), 50u);
  std::size_t total = 0;
  for (const auto& [key, c] : map.cells()) {
    total += c.count;
    EXPECT_GE(c.mean_mbps, 0.0);
    EXPECT_GE(c.cv, 0.0);
    EXPECT_GE(c.coverage_5g, 0.0);
    EXPECT_LE(c.coverage_5g, 1.0);
  }
  EXPECT_EQ(total, airport_ds().size());
}

TEST(ThroughputMapTest, LookupFindsMeasuredCells) {
  const auto map = ThroughputMap::build(airport_ds(), 2);
  const auto& s = airport_ds()[100];
  const CellStats* cell = map.lookup(s.pixel_x, s.pixel_y);
  ASSERT_NE(cell, nullptr);
  EXPECT_GT(cell->count, 0u);
  EXPECT_EQ(map.lookup(0, 0), nullptr);  // far away, unmeasured
}

TEST(ThroughputMapTest, CoverageAndFractions) {
  const auto map = ThroughputMap::build(airport_ds(), 2);
  EXPECT_GT(map.coverage_5g(), 0.75);  // mostly 5G; SB's tail sits on LTE
  EXPECT_GE(map.fraction_above(0.0), 0.99);
  EXPECT_LT(map.fraction_above(1e9), 0.01);
  EXPECT_GE(map.fraction_above(300.0), map.fraction_above(700.0));
}

TEST(ThroughputMapTest, AsciiRenderHasContent) {
  const auto map = ThroughputMap::build(airport_ds(), 2);
  const std::string art = map.render_ascii(40);
  EXPECT_GT(art.size(), 40u);
  EXPECT_NE(art.find('\n'), std::string::npos);
}

TEST(ThroughputMapTest, EmptyDatasetRendersPlaceholder) {
  const auto map = ThroughputMap::build(data::Dataset{}, 2);
  EXPECT_EQ(map.render_ascii(), "(empty map)\n");
  EXPECT_EQ(map.coverage_5g(), 0.0);
}

}  // namespace
}  // namespace lumos::core

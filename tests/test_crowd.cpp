// Tests for the crowdsourced map aggregation (paper §8.2 vision).
#include <gtest/gtest.h>

#include "core/crowd.h"
#include "sim/areas.h"

namespace lumos::core {
namespace {

data::Dataset tiny_run(double lat0, double tput, int run_id) {
  data::Dataset ds;
  for (int t = 0; t < 20; ++t) {
    data::SampleRecord s;
    s.area = "x";
    s.trajectory_id = 1;
    s.run_id = run_id;
    s.timestamp_s = t;
    s.latitude = lat0 + t * 2e-5;  // ~2.2 m per step
    s.longitude = -93.2;
    s.gps_accuracy_m = 1.0;
    s.throughput_mbps = tput;
    ds.append(s);
  }
  ds.clean(data::CleaningConfig{.buffer_period_s = 0.0});
  return ds;
}

TEST(CrowdMap, MergesContributorsPerCell) {
  Contribution a{tiny_run(44.9800, 100.0, 0), 1.0};
  Contribution b{tiny_run(44.9800, 300.0, 1), 1.0};
  const auto map = CrowdMap::build({a, b});
  ASSERT_FALSE(map.cells().empty());
  // Overlapping cells should have 2 contributors and a mean between the
  // two users' levels.
  bool found_shared = false;
  for (const auto& [key, c] : map.cells()) {
    if (c.contributors == 2) {
      found_shared = true;
      EXPECT_NEAR(c.mean_mbps, 200.0, 1e-6);
      EXPECT_GT(c.between_user_cv, 0.1);
    }
  }
  EXPECT_TRUE(found_shared);
}

TEST(CrowdMap, WeightsShiftTheMean) {
  Contribution a{tiny_run(44.9800, 100.0, 0), 3.0};
  Contribution b{tiny_run(44.9800, 300.0, 1), 1.0};
  const auto map = CrowdMap::build({a, b});
  for (const auto& [key, c] : map.cells()) {
    if (c.contributors == 2) {
      // Weighted mean = (3*100 + 1*300)/4 = 150.
      EXPECT_NEAR(c.mean_mbps, 150.0, 1e-6);
    }
  }
}

TEST(CrowdMap, DisjointUploadsDoNotOverlap) {
  Contribution a{tiny_run(44.9800, 100.0, 0), 1.0};
  Contribution b{tiny_run(44.9900, 300.0, 1), 1.0};  // ~1.1 km away
  const auto map = CrowdMap::build({a, b});
  for (const auto& [key, c] : map.cells()) {
    EXPECT_EQ(c.contributors, 1u);
  }
  EXPECT_EQ(map.fraction_with_support(2), 0.0);
  EXPECT_EQ(map.fraction_with_support(1), 1.0);
}

TEST(CrowdMap, SupportFractionGrowsWithUsers) {
  std::vector<Contribution> uploads;
  for (int u = 0; u < 4; ++u) {
    uploads.push_back({tiny_run(44.9800, 100.0 + 50.0 * u, u), 1.0});
  }
  const auto one = CrowdMap::build({uploads[0]});
  const auto all = CrowdMap::build(uploads);
  EXPECT_GE(all.fraction_with_support(2), one.fraction_with_support(2));
  EXPECT_GT(all.fraction_with_support(3), 0.5);
}

TEST(CrowdMap, EmptyInputIsSafe) {
  const auto map = CrowdMap::build({});
  EXPECT_TRUE(map.cells().empty());
  EXPECT_EQ(map.fraction_with_support(1), 0.0);
  EXPECT_EQ(map.lookup(0, 0), nullptr);
}

TEST(CrowdMap, LookupFindsCells) {
  Contribution a{tiny_run(44.9800, 100.0, 0), 1.0};
  const auto map = CrowdMap::build({a});
  const auto& s = a.samples[0];
  EXPECT_NE(map.lookup(s.pixel_x, s.pixel_y), nullptr);
}

TEST(CrowdMap, EndToEndWithSimulatedUsers) {
  const sim::Area area = sim::make_airport();
  const sim::MeasurementCollector collector(area.env);
  std::vector<Contribution> uploads;
  Rng seeder(2);
  for (int u = 0; u < 3; ++u) {
    data::Dataset ds;
    sim::CollectorConfig cfg;
    cfg.n_runs = 1;
    sim::MotionConfig walk;
    collector.collect(area.walking[static_cast<std::size_t>(u) % 2], walk,
                      {}, cfg, seeder.next_u64(), ds);
    ds.clean();
    uploads.push_back({std::move(ds), 1.0});
  }
  const auto map = CrowdMap::build(uploads);
  EXPECT_GT(map.cells().size(), 50u);
  EXPECT_GT(map.fraction_with_support(2), 0.05);
}

}  // namespace
}  // namespace lumos::core

// End-to-end integration tests: the full pipeline from simulated
// measurement campaign through cleaning, feature building, model training
// and evaluation — asserting the paper's qualitative findings hold on the
// simulated substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluate.h"
#include "core/throughput_map.h"
#include "data/csv.h"
#include "sim/areas.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace lumos {
namespace {

using core::ExperimentConfig;
using core::ModelKind;
using data::FeatureSetSpec;

const data::Dataset& airport() {
  static const data::Dataset ds = [] {
    return sim::collect_area_dataset(sim::make_airport(), 10, 0, 777);
  }();
  return ds;
}

ExperimentConfig quick() {
  ExperimentConfig cfg;
  cfg.gbdt.n_estimators = 80;
  cfg.forest.n_trees = 40;
  cfg.seq2seq.epochs = 3;
  cfg.seq2seq.hidden = 16;
  cfg.seq2seq.layers = 1;
  return cfg;
}

TEST(EndToEnd, MobilityFeaturesImprovePrediction) {
  // Paper Table 4 / §4.2: location alone is insufficient; adding mobility
  // reduces error materially.
  const auto l = evaluate_model(ModelKind::kRandomForest, airport(),
                                FeatureSetSpec::parse("L"), quick());
  const auto lm = evaluate_model(ModelKind::kRandomForest, airport(),
                                 FeatureSetSpec::parse("L+M"), quick());
  ASSERT_TRUE(l.valid && lm.valid);
  EXPECT_LT(lm.rmse, l.rmse * 0.85)
      << "mobility should cut RMSE by >15% (paper: 24-36%)";
}

TEST(EndToEnd, ConnectionFeaturesImproveFurther) {
  const auto lm = evaluate_model(ModelKind::kGdbt, airport(),
                                 FeatureSetSpec::parse("L+M"), quick());
  const auto lmc = evaluate_model(ModelKind::kGdbt, airport(),
                                  FeatureSetSpec::parse("L+M+C"), quick());
  ASSERT_TRUE(lm.valid && lmc.valid);
  EXPECT_LT(lmc.mae, lm.mae);
}

TEST(EndToEnd, SameDirectionTracesAreConsistent) {
  // Paper §4.2: Spearman within direction >> across directions.
  const auto nb = airport().filter(
      [](const data::SampleRecord& s) { return s.trajectory_id == 1; });
  const auto sb = airport().filter(
      [](const data::SampleRecord& s) { return s.trajectory_id == 2; });
  const auto tn = nb.throughput_traces();
  const auto ts = sb.throughput_traces();
  ASSERT_GE(tn.size(), 3u);
  ASSERT_GE(ts.size(), 3u);

  double same = 0.0;
  int n_same = 0;
  for (std::size_t i = 0; i < tn.size(); ++i) {
    for (std::size_t j = i + 1; j < tn.size(); ++j) {
      const std::size_t len = std::min(tn[i].size(), tn[j].size());
      same += stats::spearman(std::span(tn[i].data(), len),
                              std::span(tn[j].data(), len));
      ++n_same;
    }
  }
  double cross = 0.0;
  int n_cross = 0;
  for (const auto& a : tn) {
    for (const auto& b : ts) {
      const std::size_t len = std::min(a.size(), b.size());
      cross += stats::spearman(std::span(a.data(), len),
                               std::span(b.data(), len));
      ++n_cross;
    }
  }
  const double avg_same = same / n_same;
  const double avg_cross = std::fabs(cross / n_cross);
  EXPECT_GT(avg_same, 0.5);        // paper: 0.61-0.74
  EXPECT_LT(avg_cross, 0.35);      // paper: 0.021
  EXPECT_GT(avg_same, avg_cross + 0.3);
}

TEST(EndToEnd, PerCellVariabilityIsHigh) {
  // Paper §4.1: ~half the cells have CV >= 50%.
  const auto grid = airport().throughput_by_grid(2);
  std::size_t high_cv = 0, cells = 0;
  for (const auto& [key, v] : grid) {
    if (v.size() < 6) continue;
    ++cells;
    if (stats::coefficient_of_variation(v) >= 0.5) ++high_cv;
  }
  ASSERT_GT(cells, 30u);
  const double frac = static_cast<double>(high_cv) / static_cast<double>(cells);
  // The paper reports ~53% of cells with CV >= 50%; our scaled-down
  // campaign reproduces the phenomenon at a lower rate (direction mixing
  // plus fading), see EXPERIMENTS.md.
  EXPECT_GT(frac, 0.1);
  EXPECT_LT(frac, 0.8);
}

TEST(EndToEnd, SouthPanelDistanceDipAndRegain) {
  // Paper Fig. 11b: south panel throughput dips in the booth band and
  // regains beyond it (dip at 22-52 m in our airport reconstruction).
  std::vector<double> near, mid, far;
  for (const auto& s : airport().samples()) {
    if (s.cell_id != 1 || !s.has_panel_geometry()) continue;
    if (s.ue_panel_distance_m < 22.0) {
      near.push_back(s.throughput_mbps);
    } else if (s.ue_panel_distance_m < 52.0) {
      mid.push_back(s.throughput_mbps);
    } else if (s.ue_panel_distance_m < 90.0) {
      far.push_back(s.throughput_mbps);
    }
  }
  ASSERT_GT(near.size(), 20u);
  ASSERT_GT(mid.size(), 20u);
  ASSERT_GT(far.size(), 20u);
  const double m_near = stats::median(near);
  const double m_mid = stats::median(mid);
  const double m_far = stats::median(far);
  EXPECT_LT(m_mid, m_near) << "booth band should dip below near-field";
  EXPECT_GT(m_far, m_mid) << "LoS regained beyond the booths";
}

TEST(EndToEnd, NorthPanelMonotoneDecay) {
  // Paper Fig. 11a: the unobstructed north panel decays with distance.
  std::vector<double> near, far;
  for (const auto& s : airport().samples()) {
    if (s.cell_id != 2 || !s.has_panel_geometry()) continue;
    if (s.ue_panel_distance_m < 60.0) {
      near.push_back(s.throughput_mbps);
    } else if (s.ue_panel_distance_m > 120.0) {
      far.push_back(s.throughput_mbps);
    }
  }
  ASSERT_GT(near.size(), 20u);
  ASSERT_GT(far.size(), 20u);
  EXPECT_GT(stats::median(near), stats::median(far) * 1.3);
}

TEST(EndToEnd, DrivingDegradesThroughputWalkingDoesNot) {
  // Paper §4.6 / Fig. 14.
  const auto loop_ds =
      sim::collect_area_dataset(sim::make_loop(), 2, 4, 888);
  std::vector<double> stopped, fast_driving, walking;
  for (const auto& s : loop_ds.samples()) {
    const double kmph = s.moving_speed_mps * 3.6;
    if (s.detected_activity == data::Activity::kDriving ||
        (s.detected_activity == data::Activity::kStill && kmph < 1.0)) {
      if (kmph < 5.0) {
        stopped.push_back(s.throughput_mbps);
      } else if (kmph > 20.0) {
        fast_driving.push_back(s.throughput_mbps);
      }
    } else if (s.detected_activity == data::Activity::kWalking) {
      walking.push_back(s.throughput_mbps);
    }
  }
  ASSERT_GT(stopped.size(), 50u);
  ASSERT_GT(fast_driving.size(), 50u);
  ASSERT_GT(walking.size(), 50u);
  // Fast driving collapses to a fraction of stopped throughput.
  EXPECT_LT(stats::median(fast_driving), stats::median(stopped) * 0.5);
  // Walking keeps high peaks.
  EXPECT_GT(stats::quantile(walking, 0.99), 1200.0);
}

TEST(EndToEnd, DatasetSurvivesCsvRoundTripAndRetrains) {
  const std::string path = "/tmp/lumos_integration_roundtrip.csv";
  data::write_csv(airport(), path);
  const data::Dataset back = data::read_csv(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), airport().size());
  const auto r = evaluate_model(ModelKind::kGdbt, back,
                                FeatureSetSpec::parse("L+M"), quick());
  EXPECT_TRUE(r.valid);
}

TEST(EndToEnd, FullPipelineIsDeterministic) {
  const auto a = sim::collect_area_dataset(sim::make_airport(), 2, 0, 31337);
  const auto b = sim::collect_area_dataset(sim::make_airport(), 2, 0, 31337);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 17) {
    EXPECT_DOUBLE_EQ(a[i].throughput_mbps, b[i].throughput_mbps);
  }
  const auto ra = evaluate_model(ModelKind::kGdbt, a,
                                 FeatureSetSpec::parse("L+M"), quick());
  const auto rb = evaluate_model(ModelKind::kGdbt, b,
                                 FeatureSetSpec::parse("L+M"), quick());
  EXPECT_DOUBLE_EQ(ra.mae, rb.mae);
  EXPECT_DOUBLE_EQ(ra.weighted_f1, rb.weighted_f1);
}

TEST(EndToEnd, ThroughputMapShowsSpatialStructure) {
  const auto map = core::ThroughputMap::build(airport(), 2);
  // High-throughput cells near the north panel, weak cells at the south
  // end: the map must contain both extremes (paper Fig. 6 color spread).
  bool has_fast = false, has_slow = false;
  for (const auto& [key, c] : map.cells()) {
    if (c.count < 5) continue;
    if (c.mean_mbps > 700.0) has_fast = true;
    if (c.mean_mbps < 300.0) has_slow = true;
  }
  EXPECT_TRUE(has_fast);
  EXPECT_TRUE(has_slow);
}

}  // namespace
}  // namespace lumos

// Tests for lumos::nn — matrix kernels, Dense and LSTM layers (including
// numerical gradient checks of the hand-written backward passes), Adam,
// and end-to-end Seq2Seq learning on synthetic sequence tasks.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/matrix.h"
#include "nn/seq2seq.h"

namespace lumos::nn {
namespace {

void fill_random(Matrix& m, Rng& rng, double scale = 1.0) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.normal(0.0, scale);
  }
}

// ---------- matrix ----------

TEST(Matrix, MatmulKnownValues) {
  Matrix a(2, 3), b(3, 2), out;
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  matmul(a, b, out);
  EXPECT_NEAR(out(0, 0), 58.0, 1e-12);
  EXPECT_NEAR(out(0, 1), 64.0, 1e-12);
  EXPECT_NEAR(out(1, 0), 139.0, 1e-12);
  EXPECT_NEAR(out(1, 1), 154.0, 1e-12);
}

TEST(Matrix, MatmulBtMatchesExplicitTranspose) {
  Rng rng(1);
  Matrix a(4, 5), b(3, 5);
  fill_random(a, rng);
  fill_random(b, rng);
  Matrix bt(5, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 5; ++c) bt(c, r) = b(r, c);
  }
  Matrix out1, out2;
  matmul_bt(a, b, out1);
  matmul(a, bt, out2);
  ASSERT_EQ(out1.rows(), out2.rows());
  for (std::size_t i = 0; i < out1.size(); ++i) {
    EXPECT_NEAR(out1.data()[i], out2.data()[i], 1e-10);
  }
}

TEST(Matrix, MatmulAtMatchesExplicitTranspose) {
  Rng rng(2);
  Matrix a(6, 3), b(6, 4);
  fill_random(a, rng);
  fill_random(b, rng);
  Matrix at(3, 6);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 3; ++c) at(c, r) = a(r, c);
  }
  Matrix out1, out2;
  matmul_at(a, b, out1);
  matmul(at, b, out2);
  for (std::size_t i = 0; i < out1.size(); ++i) {
    EXPECT_NEAR(out1.data()[i], out2.data()[i], 1e-10);
  }
}

TEST(Matrix, BroadcastAndHadamard) {
  Matrix m(2, 2), bias(1, 2);
  m(0, 0) = 1;
  m(1, 1) = 2;
  bias(0, 0) = 10;
  bias(0, 1) = 20;
  add_row_broadcast(m, bias);
  EXPECT_NEAR(m(0, 0), 11.0, 1e-12);
  EXPECT_NEAR(m(0, 1), 20.0, 1e-12);
  EXPECT_NEAR(m(1, 0), 10.0, 1e-12);
  EXPECT_NEAR(m(1, 1), 22.0, 1e-12);

  Matrix a(1, 3), b(1, 3), out;
  for (int i = 0; i < 3; ++i) {
    a(0, static_cast<std::size_t>(i)) = i + 1;
    b(0, static_cast<std::size_t>(i)) = 2;
  }
  hadamard(a, b, out);
  EXPECT_NEAR(out(0, 2), 6.0, 1e-12);
}

// ---------- gradient checks ----------

/// Numerically checks dL/dw for one parameter entry.
double numerical_grad(const std::function<double()>& loss_fn, double& w) {
  const double eps = 1e-6;
  const double orig = w;
  w = orig + eps;
  const double lp = loss_fn();
  w = orig - eps;
  const double lm = loss_fn();
  w = orig;
  return (lp - lm) / (2.0 * eps);
}

TEST(Dense, GradientMatchesNumerical) {
  Rng rng(3);
  Dense layer(4, 3, rng);
  Matrix x(5, 4), target(5, 3);
  fill_random(x, rng);
  fill_random(target, rng);

  const auto loss_fn = [&]() {
    Matrix y;
    layer.forward_infer(x, y);
    return mse(y, target);
  };

  // Analytic gradients.
  Matrix y, grad, dx;
  layer.forward(x, y);
  const double base_loss = mse_loss(y, target, grad);
  EXPECT_GT(base_loss, 0.0);
  for (Param* p : layer.params()) p->zero_grad();
  layer.backward(grad, dx);

  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < std::min<std::size_t>(p->w.size(), 6); ++i) {
      const double num = numerical_grad(loss_fn, p->w.data()[i]);
      EXPECT_NEAR(p->g.data()[i], num, 1e-5)
          << "param entry " << i;
    }
  }
}

TEST(Lstm, ForwardShapesAndRanges) {
  Rng rng(4);
  LSTMCell cell(3, 8, rng);
  Matrix x(2, 3);
  fill_random(x, rng);
  LSTMState in(2, 8), out;
  LSTMCache cache;
  cell.forward(x, in, out, cache);
  ASSERT_EQ(out.h.rows(), 2u);
  ASSERT_EQ(out.h.cols(), 8u);
  for (std::size_t i = 0; i < out.h.size(); ++i) {
    EXPECT_LT(std::fabs(out.h.data()[i]), 1.0);  // |h| < 1 by construction
  }
}

TEST(Lstm, ForwardNocacheMatchesForward) {
  Rng rng(5);
  LSTMCell cell(3, 6, rng);
  Matrix x(2, 3);
  fill_random(x, rng);
  LSTMState in(2, 6), out1, out2;
  fill_random(in.h, rng, 0.3);
  fill_random(in.c, rng, 0.3);
  LSTMCache cache;
  cell.forward(x, in, out1, cache);
  cell.forward_nocache(x, in, out2);
  for (std::size_t i = 0; i < out1.h.size(); ++i) {
    EXPECT_NEAR(out1.h.data()[i], out2.h.data()[i], 1e-12);
    EXPECT_NEAR(out1.c.data()[i], out2.c.data()[i], 1e-12);
  }
}

TEST(Lstm, GradientMatchesNumerical) {
  Rng rng(6);
  LSTMCell cell(2, 4, rng);
  Matrix x(3, 2), target(3, 4);
  fill_random(x, rng);
  fill_random(target, rng, 0.5);
  LSTMState in(3, 4);
  fill_random(in.h, rng, 0.3);
  fill_random(in.c, rng, 0.3);

  const auto loss_fn = [&]() {
    LSTMState out;
    cell.forward_nocache(x, in, out);
    return mse(out.h, target);
  };

  LSTMState out;
  LSTMCache cache;
  cell.forward(x, in, out, cache);
  Matrix grad;
  mse_loss(out.h, target, grad);
  Matrix dc(3, 4);  // no gradient flowing from future cell state
  Matrix dx, dh_prev, dc_prev;
  for (Param* p : cell.params()) p->zero_grad();
  cell.backward(cache, grad, dc, dx, dh_prev, dc_prev);

  for (Param* p : cell.params()) {
    for (std::size_t i = 0; i < std::min<std::size_t>(p->w.size(), 8); ++i) {
      const double num = numerical_grad(loss_fn, p->w.data()[i]);
      EXPECT_NEAR(p->g.data()[i], num, 2e-5) << "param entry " << i;
    }
  }
}

TEST(Lstm, InputGradientMatchesNumerical) {
  Rng rng(7);
  LSTMCell cell(2, 4, rng);
  Matrix x(1, 2), target(1, 4);
  fill_random(x, rng);
  fill_random(target, rng, 0.5);
  LSTMState in(1, 4);

  const auto loss_fn = [&]() {
    LSTMState out;
    cell.forward_nocache(x, in, out);
    return mse(out.h, target);
  };

  LSTMState out;
  LSTMCache cache;
  cell.forward(x, in, out, cache);
  Matrix grad;
  mse_loss(out.h, target, grad);
  Matrix dc(1, 4), dx, dh_prev, dc_prev;
  cell.backward(cache, grad, dc, dx, dh_prev, dc_prev);

  for (std::size_t i = 0; i < x.size(); ++i) {
    const double num = numerical_grad(loss_fn, x.data()[i]);
    EXPECT_NEAR(dx.data()[i], num, 2e-5);
  }
}

// ---------- losses & optimizer ----------

TEST(Loss, MseAndGradient) {
  Matrix pred(1, 2), target(1, 2), grad;
  pred(0, 0) = 1.0;
  pred(0, 1) = 3.0;
  target(0, 0) = 0.0;
  target(0, 1) = 1.0;
  const double l = mse_loss(pred, target, grad);
  EXPECT_NEAR(l, (1.0 + 4.0) / 2.0, 1e-12);
  EXPECT_NEAR(grad(0, 0), 2.0 * 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(grad(0, 1), 2.0 * 2.0 / 2.0, 1e-12);
}

TEST(Adam, MinimizesQuadratic) {
  // Minimize (w - 3)^2 elementwise.
  Param p(1, 4);
  for (std::size_t i = 0; i < 4; ++i) p.w(0, i) = 10.0;
  Adam opt(AdamConfig{.lr = 0.1, .clip_norm = 0.0});
  for (int step = 0; step < 500; ++step) {
    for (std::size_t i = 0; i < 4; ++i) {
      p.g(0, i) = 2.0 * (p.w(0, i) - 3.0);
    }
    opt.step({&p});
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(p.w(0, i), 3.0, 1e-3);
  }
}

TEST(Adam, ClippingBoundsTheStep) {
  Param p(1, 1);
  p.w(0, 0) = 0.0;
  Adam opt(AdamConfig{.lr = 0.5, .clip_norm = 1.0});
  p.g(0, 0) = 1e9;  // enormous gradient
  opt.step({&p});
  EXPECT_LT(std::fabs(p.w(0, 0)), 1.0);  // step bounded by lr after clip
}

// ---------- Seq2Seq ----------

Seq2SeqConfig small_config(std::size_t in_dim, std::size_t out_len) {
  Seq2SeqConfig cfg;
  cfg.input_dim = in_dim;
  cfg.hidden = 16;
  cfg.layers = 1;
  cfg.seq_len = 8;
  cfg.out_len = out_len;
  cfg.epochs = 60;
  cfg.batch_size = 16;
  cfg.lr = 5e-3;
  cfg.seed = 9;
  return cfg;
}

/// Task: predict the mean of the input window (standardized scale).
std::vector<SeqSample> mean_task(std::size_t n, std::size_t seq_len,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SeqSample> samples(n);
  for (auto& s : samples) {
    s.x.resize(seq_len);
    double sum = 0.0;
    for (auto& v : s.x) {
      v = rng.normal(0.0, 1.0);
      sum += v;
    }
    s.y.assign(1, sum / static_cast<double>(seq_len));
  }
  return samples;
}

TEST(Seq2Seq, LearnsWindowMean) {
  const auto cfg = small_config(1, 1);
  auto train = mean_task(300, cfg.seq_len, 100);
  const auto test = mean_task(50, cfg.seq_len, 101);
  Seq2Seq net(cfg);
  const auto losses = net.fit(train);
  ASSERT_EQ(losses.size(), cfg.epochs);
  EXPECT_LT(losses.back(), losses.front() * 0.5)
      << "training loss should drop substantially";
  double err = 0.0;
  for (const auto& s : test) {
    err += std::fabs(net.predict(s.x).front() - s.y.front());
  }
  err /= static_cast<double>(test.size());
  EXPECT_LT(err, 0.15);  // target std is ~1/sqrt(8) ~ 0.35
}

TEST(Seq2Seq, MultiStepOutputHasRequestedLength) {
  auto cfg = small_config(2, 5);
  cfg.epochs = 2;
  Rng rng(102);
  std::vector<SeqSample> train(20);
  for (auto& s : train) {
    s.x.resize(cfg.seq_len * 2);
    for (auto& v : s.x) v = rng.normal(0.0, 1.0);
    s.y.resize(5, 0.5);
  }
  Seq2Seq net(cfg);
  net.fit(train);
  EXPECT_EQ(net.predict(train[0].x).size(), 5u);
}

TEST(Seq2Seq, RejectsShapeMismatches) {
  const auto cfg = small_config(1, 1);
  Seq2Seq net(cfg);
  std::vector<SeqSample> bad(1);
  bad[0].x.resize(3);  // wrong window length
  bad[0].y.resize(1);
  EXPECT_THROW(net.fit(bad), std::invalid_argument);
  EXPECT_THROW(net.predict({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(net.fit({}), std::invalid_argument);
}

TEST(Seq2Seq, RejectsZeroDimensions) {
  Seq2SeqConfig cfg;
  cfg.input_dim = 0;
  EXPECT_THROW(Seq2Seq net(cfg), std::invalid_argument);
}

TEST(Seq2Seq, DeterministicGivenSeed) {
  const auto cfg = small_config(1, 1);
  auto train = mean_task(50, cfg.seq_len, 104);
  Seq2Seq a(cfg), b(cfg);
  auto train_copy = train;
  a.fit(train);
  b.fit(train_copy);
  const auto pa = a.predict(train[0].x);
  const auto pb = b.predict(train[0].x);
  EXPECT_DOUBLE_EQ(pa.front(), pb.front());
}

}  // namespace
}  // namespace lumos::nn

// Tests for the lumos::ThreadPool fork-join primitives and the central
// guarantee of the parallel training/inference engine: models trained
// under LUMOS_THREADS=1 and LUMOS_THREADS=8 are bit-identical.
//
// The ctest tier-1 flow runs this whole binary twice, with LUMOS_THREADS
// pinned to 1 and to 8 (see tests/CMakeLists.txt); the determinism tests
// additionally flip the pool size explicitly so each run compares both
// settings in-process.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "data/features.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "sim/areas.h"

namespace lumos {
namespace {

// ---------- ThreadPool / parallel_for ----------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool::global().set_threads(4);
  std::vector<int> hits(10000, 0);
  parallel_for(0, hits.size(), 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
  EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 1);
}

TEST(ThreadPool, EmptyAndSingleChunkRangesAreSafe) {
  ThreadPool::global().set_threads(4);
  int calls = 0;
  parallel_for(5, 5, 10, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(0, 3, 10, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 3u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ExceptionsPropagateAndPoolSurvives) {
  ThreadPool::global().set_threads(4);
  EXPECT_THROW(parallel_for(0, 1000, 10,
                            [](std::size_t b, std::size_t e) {
                              for (std::size_t i = b; i < e; ++i) {
                                if (i == 537) {
                                  throw std::runtime_error("boom");
                                }
                              }
                            }),
               std::runtime_error);
  // The pool must remain usable after a failed loop.
  std::atomic<int> n{0};
  parallel_for(0, 100, 1, [&](std::size_t b, std::size_t e) {
    n += static_cast<int>(e - b);
  });
  EXPECT_EQ(n.load(), 100);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool::global().set_threads(4);
  std::vector<double> sums(8, 0.0);
  parallel_for(0, 8, 1, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o) {
      EXPECT_TRUE(ThreadPool::in_parallel_region());
      // The nested loop runs inline on this thread, so the plain
      // accumulation below is race-free.
      double s = 0.0;
      parallel_for(0, 1000, 100, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) s += static_cast<double>(i);
      });
      sums[o] = s;
    }
  });
  for (const double s : sums) EXPECT_EQ(s, 499500.0);
}

TEST(ThreadPool, SetThreadsResizesPool) {
  ThreadPool::global().set_threads(2);
  EXPECT_EQ(ThreadPool::global().threads(), 2u);
  ThreadPool::global().set_threads(1);
  EXPECT_EQ(ThreadPool::global().threads(), 1u);
  ThreadPool::global().set_threads(0);  // 0 = LUMOS_THREADS / hardware
  EXPECT_EQ(ThreadPool::global().threads(), configured_threads());
}

// ---------- parallel_reduce ----------

TEST(ParallelReduce, SumsBitIdenticallyAcrossThreadCounts) {
  const auto run = [] {
    return parallel_reduce(
        0, 100000, 1000, 0.0,
        [](std::size_t b, std::size_t e) {
          double s = 0.0;
          for (std::size_t i = b; i < e; ++i) {
            s += std::sin(static_cast<double>(i) * 1e-3);
          }
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  ThreadPool::global().set_threads(1);
  const double serial = run();
  ThreadPool::global().set_threads(8);
  const double threaded = run();
  EXPECT_EQ(serial, threaded);  // bitwise: chunk order is fixed
  ThreadPool::global().set_threads(0);
}

// ---------- model determinism on a simulated Intersection dataset ----------

const data::BuiltFeatures& intersection_features() {
  static const data::BuiltFeatures built = [] {
    const auto ds = sim::collect_area_dataset(sim::make_intersection(),
                                              /*walk_runs=*/3, 0, 7777);
    return data::build_features(ds, data::FeatureSetSpec::parse("L+M+C"), {});
  }();
  return built;
}

TEST(Determinism, GbdtRegressorIdenticalAcrossThreadCounts) {
  const auto& built = intersection_features();
  ASSERT_GT(built.x.rows(), 100u);
  ml::GbdtConfig cfg;
  cfg.n_estimators = 40;
  cfg.max_depth = 5;
  cfg.subsample = 0.8;  // exercises the row-sampling RNG too

  ThreadPool::global().set_threads(1);
  ml::GbdtRegressor serial(cfg);
  serial.fit(built.x, built.y_reg);
  const auto p1 = serial.predict_all(built.x);

  ThreadPool::global().set_threads(8);
  ml::GbdtRegressor threaded(cfg);
  threaded.fit(built.x, built.y_reg);
  const auto p8 = threaded.predict_all(built.x);
  ThreadPool::global().set_threads(0);

  ASSERT_EQ(p1.size(), p8.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    ASSERT_EQ(p1[i], p8[i]) << "row " << i;  // bitwise equality
  }
}

TEST(Determinism, GbdtClassifierIdenticalAcrossThreadCounts) {
  const auto& built = intersection_features();
  ml::GbdtConfig cfg;
  cfg.n_estimators = 25;
  cfg.max_depth = 4;

  ThreadPool::global().set_threads(1);
  ml::GbdtClassifier serial(cfg);
  serial.fit(built.x, built.y_cls, data::kNumThroughputClasses);
  const auto p1 = serial.predict_all(built.x);

  ThreadPool::global().set_threads(8);
  ml::GbdtClassifier threaded(cfg);
  threaded.fit(built.x, built.y_cls, data::kNumThroughputClasses);
  const auto p8 = threaded.predict_all(built.x);
  ThreadPool::global().set_threads(0);

  EXPECT_EQ(p1, p8);
}

TEST(Determinism, RandomForestRegressorIdenticalAcrossThreadCounts) {
  const auto& built = intersection_features();
  ml::ForestConfig cfg;
  cfg.n_trees = 30;
  cfg.max_depth = 8;

  ThreadPool::global().set_threads(1);
  ml::RandomForestRegressor serial(cfg);
  serial.fit(built.x, built.y_reg);
  const auto p1 = serial.predict_all(built.x);

  ThreadPool::global().set_threads(8);
  ml::RandomForestRegressor threaded(cfg);
  threaded.fit(built.x, built.y_reg);
  const auto p8 = threaded.predict_all(built.x);
  ThreadPool::global().set_threads(0);

  ASSERT_EQ(p1.size(), p8.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    ASSERT_EQ(p1[i], p8[i]) << "row " << i;
  }
}

TEST(Determinism, RandomForestClassifierIdenticalAcrossThreadCounts) {
  const auto& built = intersection_features();
  ml::ForestConfig cfg;
  cfg.n_trees = 20;
  cfg.max_depth = 6;

  ThreadPool::global().set_threads(1);
  ml::RandomForestClassifier serial(cfg);
  serial.fit(built.x, built.y_cls, data::kNumThroughputClasses);
  const auto p1 = serial.predict_all(built.x);

  ThreadPool::global().set_threads(8);
  ml::RandomForestClassifier threaded(cfg);
  threaded.fit(built.x, built.y_cls, data::kNumThroughputClasses);
  const auto p8 = threaded.predict_all(built.x);
  ThreadPool::global().set_threads(0);

  EXPECT_EQ(p1, p8);
}

}  // namespace
}  // namespace lumos

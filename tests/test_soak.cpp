// Deterministic chaos soak for the serving loop (ctest label: `soak`).
//
// A virtual-clock Server is driven for thousands of requests through a
// seeded ChaosInjector: request floods, duplicated and stale session
// updates, forward clock jumps, and periodic hot reloads whose artifact
// bytes are corrupted or truncated mid-flight. The invariants:
//
//   * zero crashes, zero UB — every response carries a prediction or a
//     typed error, every reload either swaps or rolls back;
//   * zero stuck requests — every admitted ticket is answered exactly once
//     and the queue drains to empty at shutdown;
//   * monotone tier degradation — a deeper queue never gets a *lower*
//     minimum tier than a shallower one;
//   * bit-reproducibility — the same seed replays the same response stream
//     bit for bit, at LUMOS_THREADS=1 and =8 alike (the suite is also run
//     under both pins from CMake).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/parallel.h"
#include "core/lumos5g.h"
#include "data/features.h"
#include "serve/chaos.h"
#include "serve/model_io.h"
#include "serve/predictor.h"
#include "serve/server.h"
#include "sim/areas.h"

namespace lumos::serve {
namespace {

const data::Dataset& airport_ds() {
  static const data::Dataset ds = [] {
    const sim::Area area = sim::make_airport();
    return sim::collect_area_dataset(area, /*walk_runs=*/6, 0, 4242);
  }();
  return ds;
}

const core::Lumos5G& facade() {
  static const core::Lumos5G* m = [] {
    core::Lumos5GConfig cfg;
    cfg.feature_spec = data::FeatureSetSpec::parse("T+M+C");
    cfg.gbdt.n_estimators = 40;
    cfg.gbdt.max_depth = 5;
    auto* f = new core::Lumos5G(cfg);
    const auto ok = f->train(airport_ds());
    EXPECT_TRUE(ok.has_value());
    return f;
  }();
  return *m;
}

const std::string& artifact_bytes() {
  static const std::string bytes = save_bytes(facade());
  return bytes;
}

/// FNV-1a accumulator: the soak's entire observable behaviour is folded
/// into one digest, so "bit-reproducible" is a single integer comparison.
struct Digest {
  std::uint64_t h = 14695981039346656037ULL;
  void byte(std::uint8_t b) noexcept {
    h ^= b;
    h *= 1099511628211ULL;
  }
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) noexcept { u64(std::bit_cast<std::uint64_t>(v)); }
};

struct SoakReport {
  std::uint64_t digest = 0;
  std::uint64_t answered = 0;
  std::uint64_t reload_ok = 0;
  std::uint64_t reload_rolled_back = 0;
  std::uint64_t floods = 0;
  std::uint64_t clock_jumps = 0;
};

/// One full soak run: pure function of (seed, ticks) — and, by the
/// serving-layer determinism contract, of nothing else (not the thread
/// count, not the shard count, not real time). `num_shards` = 0 keeps the
/// server default (pool size).
SoakReport run_soak(std::uint64_t seed, std::size_t ticks,
                    std::size_t num_shards = 0) {
  const auto& ds = airport_ds();
  const auto runs = ds.runs();

  ManualClock clock(1'000);
  ServerConfig cfg;
  cfg.queue_capacity = 32;
  cfg.shed_watermark = 0.9;
  cfg.degrade_watermarks = {0.3, 0.5, 0.75};
  cfg.max_batch = 16;
  cfg.default_deadline_ms = 4'000;
  cfg.max_sessions = 12;
  cfg.session_ttl_ms = 60'000;
  cfg.reload_max_attempts = 2;
  cfg.reload_backoff_ms = 5;
  cfg.num_shards = num_shards;
  auto compiled = Predictor::compile(facade());
  EXPECT_TRUE(compiled.has_value());
  Server server(std::move(*compiled), cfg, clock);

  ChaosConfig chaos_cfg = ChaosConfig::uniform(0.05);
  chaos_cfg.corrupt_artifact = 0.4;   // reload-path faults hit hard
  chaos_cfg.truncate_artifact = 0.3;
  chaos_cfg.flood_factor = 10;
  ChaosInjector chaos(chaos_cfg, seed);

  // Pid-unique artifact name: the same seeds run concurrently in the
  // LUMOS_THREADS=1 and =8 ctest registrations of this binary, and a
  // shared path would let one process's reload read (or remove) the
  // other's half-written bytes.
  const auto reload_path =
      std::filesystem::temp_directory_path() /
      ("lumos_soak_" + std::to_string(seed) + "_" +
       std::to_string(::getpid()) + ".l5gm");

  Digest digest;
  SoakReport report;
  std::set<std::uint64_t> outstanding;  // tickets admitted, not yet answered
  std::map<std::size_t, std::size_t> tier_floor_by_depth;
  std::size_t stream_pos = 0;

  const auto consume = [&](const std::vector<Response>& batch,
                           std::size_t depth_before) {
    // Every batch's tier floor must agree across equal depths and respect
    // monotonicity against every depth seen so far.
    if (!batch.empty()) {
      const std::size_t floor = batch.front().min_tier;
      const auto [it, inserted] =
          tier_floor_by_depth.emplace(depth_before, floor);
      EXPECT_EQ(it->second, floor) << "depth " << depth_before;
      (void)inserted;
      for (const auto& [d, t] : tier_floor_by_depth) {
        if (d <= depth_before) {
          EXPECT_LE(t, floor) << "depth " << d << " vs " << depth_before;
        } else {
          EXPECT_GE(t, floor) << "depth " << d << " vs " << depth_before;
        }
      }
    }
    for (const auto& r : batch) {
      EXPECT_EQ(outstanding.erase(r.ticket), 1u)
          << "response for unknown or already-answered ticket " << r.ticket;
      ++report.answered;
      digest.u64(r.ticket);
      digest.u64(r.ue_id);
      digest.u64(r.min_tier);
      if (r.result.has_value()) {
        digest.byte(1);
        digest.f64(r.result->throughput_mbps);
        digest.byte(static_cast<std::uint8_t>(r.result->throughput_class));
        digest.byte(static_cast<std::uint8_t>(r.result->tier));
      } else {
        digest.byte(0);
        digest.byte(static_cast<std::uint8_t>(r.result.error().code));
      }
    }
  };

  for (std::size_t tick = 0; tick < ticks; ++tick) {
    // --- time: one virtual second, sometimes a scripted jump ---
    clock.advance_ms(1'000);
    const std::uint64_t jump = chaos.clock_jump_ms();
    if (jump != 0) {
      clock.advance_ms(jump);
      ++report.clock_jumps;
    }

    // --- traffic: 1 request normally, a burst on a flood tick ---
    const std::size_t burst = chaos.flood_multiplier();
    if (burst > 1) ++report.floods;
    for (std::size_t b = 0; b < burst; ++b, ++stream_pos) {
      const std::size_t ue = stream_pos % 8;
      const auto& run = runs[ue % runs.size()];
      data::SampleRecord sample = ds[run[stream_pos % run.size()]];
      if (chaos.make_stale(sample)) digest.byte(2);
      const bool dup = chaos.should_duplicate();
      for (int copy = 0; copy < (dup ? 2 : 1); ++copy) {
        const auto ticket = server.submit({ue, sample, 0});
        if (ticket.has_value()) {
          EXPECT_TRUE(outstanding.insert(*ticket).second);
        } else {
          // Shedding is the only legal admission failure mid-run.
          EXPECT_EQ(ticket.error().code, ErrorCode::kOverloaded);
          digest.byte(3);
        }
      }
    }

    // --- serve one batch ---
    const std::size_t depth_before = server.queue_depth();
    consume(server.step(), depth_before);

    // --- periodic hot reload through damaged bytes ---
    if (tick % 100 == 50) {
      const std::uint64_t gen_before = server.model_generation();
      const std::string bytes = chaos.damage_artifact(artifact_bytes());
      const auto wrote = write_artifact(reload_path, bytes);
      EXPECT_TRUE(wrote.has_value());
      const auto swapped = server.reload(reload_path);
      if (swapped.has_value()) {
        ++report.reload_ok;
        EXPECT_EQ(server.model_generation(), gen_before + 1);
        digest.byte(4);
      } else {
        ++report.reload_rolled_back;
        EXPECT_EQ(server.model_generation(), gen_before);
        const auto code = swapped.error().code;
        EXPECT_TRUE(code == ErrorCode::kCorrupt ||
                    code == ErrorCode::kTruncated ||
                    code == ErrorCode::kVersionMismatch ||
                    code == ErrorCode::kBadMagic ||
                    code == ErrorCode::kParseError ||
                    code == ErrorCode::kIoError)
            << to_string(code);
        digest.byte(5);
        digest.byte(static_cast<std::uint8_t>(code));
      }
    }
  }

  // --- shutdown: no new admissions, everything queued still answered ---
  server.begin_shutdown();
  const auto late = server.submit({0, ds[runs[0][0]], 0});
  EXPECT_FALSE(late.has_value());
  EXPECT_EQ(late.error().code, ErrorCode::kShuttingDown);
  while (server.queue_depth() > 0) {
    const std::size_t depth_before = server.queue_depth();
    consume(server.step(), depth_before);
  }
  EXPECT_TRUE(outstanding.empty())
      << outstanding.size() << " requests stuck without a response";
  EXPECT_EQ(server.stats().submitted, report.answered);

  digest.u64(server.stats().shed);
  digest.u64(server.stats().deadline_expired);
  digest.u64(server.stats().evicted_lru);
  digest.u64(server.stats().evicted_ttl);
  digest.u64(server.model_generation());
  report.digest = digest.h;

  std::error_code ignored;
  std::filesystem::remove(reload_path, ignored);
  return report;
}

constexpr std::size_t kTicks = 3000;

TEST(Soak, ChaosRunCompletesWithZeroStuckRequests) {
  const SoakReport r = run_soak(/*seed=*/1, kTicks);
  // The run must have actually exercised the machinery, not dodged it.
  EXPECT_GT(r.answered, kTicks);  // floods + duplicates outpace the ticks
  EXPECT_GT(r.floods, 0u);
  EXPECT_GT(r.clock_jumps, 0u);
  EXPECT_GT(r.reload_rolled_back, 0u);  // damaged artifacts were offered
  EXPECT_GT(r.reload_ok + r.reload_rolled_back, 5u);
}

TEST(Soak, SameSeedReplaysBitForBit) {
  const SoakReport a = run_soak(/*seed=*/7, kTicks);
  const SoakReport b = run_soak(/*seed=*/7, kTicks);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.answered, b.answered);
  EXPECT_EQ(a.reload_ok, b.reload_ok);
  EXPECT_EQ(a.reload_rolled_back, b.reload_rolled_back);
}

TEST(Soak, DigestIsIdenticalAtOneAndEightThreads) {
  ThreadPool::global().set_threads(1);
  const SoakReport one = run_soak(/*seed=*/11, kTicks);
  ThreadPool::global().set_threads(8);
  const SoakReport eight = run_soak(/*seed=*/11, kTicks);
  ThreadPool::global().set_threads(0);  // back to the environment default
  EXPECT_EQ(one.digest, eight.digest);
  EXPECT_EQ(one.answered, eight.answered);
}

TEST(Soak, DigestIsIdenticalAcrossShardCounts) {
  const SoakReport one = run_soak(/*seed=*/13, kTicks, /*num_shards=*/1);
  const SoakReport eight = run_soak(/*seed=*/13, kTicks, /*num_shards=*/8);
  EXPECT_EQ(one.digest, eight.digest);
  EXPECT_EQ(one.answered, eight.answered);
  EXPECT_EQ(one.reload_ok, eight.reload_ok);
  EXPECT_EQ(one.reload_rolled_back, eight.reload_rolled_back);
}

// The full cross: the response stream is one digest for every
// (threads, shards) pairing — the sharded fan-out neither reorders nor
// re-associates anything at any pool size.
TEST(Soak, DigestIsIdenticalAcrossThreadShardCross) {
  std::uint64_t expect = 0;
  bool first = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ThreadPool::global().set_threads(threads);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
      const SoakReport r = run_soak(/*seed=*/17, kTicks / 3, shards);
      if (first) {
        expect = r.digest;
        first = false;
      }
      EXPECT_EQ(r.digest, expect)
          << "threads=" << threads << " shards=" << shards;
    }
  }
  ThreadPool::global().set_threads(0);
}

}  // namespace
}  // namespace lumos::serve

// Tests for lumos::sim — geometry/obstacle tests, the propagation model's
// monotonicity properties (the physics behind paper §4), fading, LTE,
// the connection state machine, mobility, sensors, the collector and the
// area factories.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sim/areas.h"
#include "sim/collector.h"
#include "sim/congestion.h"
#include "sim/connection.h"
#include "sim/environment.h"
#include "sim/fading.h"
#include "sim/lte.h"
#include "sim/mobility.h"
#include "sim/obstacle.h"
#include "sim/propagation.h"
#include "sim/sensors.h"

namespace lumos::sim {
namespace {

using data::Activity;
using data::RadioType;

// ---------- obstacles ----------

TEST(Obstacle, SegmentsIntersectBasic) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 1}, {2, 2}, {3, 3}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
}

TEST(Obstacle, SharedEndpointCounts) {
  EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(Obstacle, CollinearOverlapCounts) {
  EXPECT_TRUE(segments_intersect({0, 0}, {4, 0}, {2, 0}, {6, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(Obstacle, PathPenetrationMultipliesWalls) {
  std::vector<Wall> walls{
      {{1, -1}, {1, 1}, 0.5, "w1"},
      {{2, -1}, {2, 1}, 0.4, "w2"},
      {{10, -1}, {10, 1}, 0.1, "unhit"},
  };
  EXPECT_NEAR(path_penetration(walls, {0, 0}, {3, 0}), 0.2, 1e-12);
  EXPECT_NEAR(path_penetration(walls, {0, 0}, {0.5, 0}), 1.0, 1e-12);
}

TEST(Obstacle, FullyOpaqueShortCircuitsToZero) {
  std::vector<Wall> walls{{{1, -1}, {1, 1}, 0.0, "concrete"}};
  EXPECT_EQ(path_penetration(walls, {0, 0}, {2, 0}), 0.0);
}

// ---------- link geometry ----------

TEST(LinkGeometryTest, FrontalUE) {
  const Panel p{1, {0, 0}, 0.0};  // facing north
  UEContext ue;
  ue.pos = {0, 50};  // due north
  ue.heading_deg = 180.0;  // walking toward the panel
  const LinkGeometry g = link_geometry(p, ue);
  EXPECT_NEAR(g.distance_m, 50.0, 1e-9);
  EXPECT_NEAR(g.theta_p_deg, 0.0, 1e-9);
  EXPECT_NEAR(g.theta_m_deg, 180.0, 1e-9);
}

TEST(LinkGeometryTest, BehindUE) {
  const Panel p{1, {0, 0}, 0.0};
  UEContext ue;
  ue.pos = {0, -30};  // due south = behind the face
  ue.heading_deg = 0.0;
  const LinkGeometry g = link_geometry(p, ue);
  EXPECT_NEAR(g.theta_p_deg, 180.0, 1e-9);
  EXPECT_NEAR(g.theta_m_deg, 0.0, 1e-9);
}

TEST(LinkGeometryTest, SideUE) {
  const Panel p{1, {0, 0}, 0.0};
  UEContext ue;
  ue.pos = {40, 0};  // due east
  ue.heading_deg = 90.0;
  const LinkGeometry g = link_geometry(p, ue);
  EXPECT_NEAR(g.theta_p_deg, 90.0, 1e-9);
  EXPECT_NEAR(g.theta_m_deg, 90.0, 1e-9);
}

// ---------- propagation ----------

class DistanceMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(DistanceMonotonic, CapacityDecreasesWithDistance) {
  const PropagationModel model;
  const double d = GetParam();
  EXPECT_GT(model.distance_capacity(d, 1900.0),
            model.distance_capacity(d + 10.0, 1900.0));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistanceMonotonic,
                         ::testing::Values(1.0, 25.0, 50.0, 100.0, 150.0,
                                           200.0, 300.0));

TEST(Propagation, NearFieldApproachesPeak) {
  const PropagationModel model;
  EXPECT_GT(model.distance_capacity(1.0, 1900.0), 1880.0);
}

TEST(Propagation, PositionalGainFullInMainLobe) {
  const PropagationModel model;
  EXPECT_NEAR(model.positional_gain(0.0), 1.0, 1e-12);
  EXPECT_NEAR(model.positional_gain(30.0), 1.0, 1e-12);
  EXPECT_LT(model.positional_gain(90.0), 0.8);
  EXPECT_NEAR(model.positional_gain(180.0),
              model.config().back_lobe_gain, 1e-9);
}

TEST(Propagation, PositionalGainMonotoneDecreasing) {
  const PropagationModel model;
  for (double a = 0.0; a < 175.0; a += 5.0) {
    EXPECT_GE(model.positional_gain(a) + 1e-12,
              model.positional_gain(a + 5.0));
  }
}

TEST(Propagation, BodyBlockageOnlyWhenHandheld) {
  const PropagationModel model;
  // Walking away from the panel (theta_m = 0): blocked.
  EXPECT_NEAR(model.body_blockage(0.0, Activity::kWalking),
              model.config().body_blockage_factor, 1e-12);
  // Walking toward it: clear.
  EXPECT_NEAR(model.body_blockage(180.0, Activity::kWalking), 1.0, 1e-12);
  // Driving: vehicle model handles it instead.
  EXPECT_NEAR(model.body_blockage(0.0, Activity::kDriving), 1.0, 1e-12);
}

TEST(Propagation, BodyBlockageMonotoneInMobilityAngle) {
  const PropagationModel model;
  for (double a = 0.0; a < 180.0; a += 10.0) {
    EXPECT_LE(model.body_blockage(a, Activity::kWalking),
              model.body_blockage(a + 10.0, Activity::kWalking) + 1e-12);
  }
}

TEST(Propagation, VehicleCliffPastFiveKmph) {
  const PropagationModel model;
  const double stopped = model.vehicle_factor(4.0 / 3.6, Activity::kDriving);
  const double moving = model.vehicle_factor(30.0 / 3.6, Activity::kDriving);
  EXPECT_GT(stopped, 2.0 * moving);  // paper Fig. 14a's cliff
  EXPECT_EQ(model.vehicle_factor(2.0, Activity::kWalking), 1.0);
}

TEST(Propagation, VehicleFactorMonotoneDecreasingInSpeed) {
  const PropagationModel model;
  double prev = 10.0;
  for (double kmph = 6.0; kmph <= 60.0; kmph += 6.0) {
    const double f = model.vehicle_factor(kmph / 3.6, Activity::kDriving);
    EXPECT_LE(f, prev + 1e-12);
    EXPECT_GT(f, 0.0);
    prev = f;
  }
}

TEST(Propagation, ReflectionSalvagesBlockedPath) {
  const PropagationModel model;
  const Panel panel{1, {0, 0}, 0.0};
  UEContext ue;
  ue.pos = {0, 50};
  ue.heading_deg = 180.0;
  std::vector<Wall> walls{{{-5, 25}, {5, 25}, 0.0, "concrete"}};
  const double blocked = model.mean_capacity(panel, ue, walls, false);
  const double reflected = model.mean_capacity(panel, ue, walls, true);
  EXPECT_EQ(blocked, 0.0);
  EXPECT_GT(reflected, 0.0);
}

// ---------- fading ----------

TEST(Fading, ShadowingIsTemporallyCorrelated) {
  FadingConfig cfg;
  Rng rng(1);
  ShadowingProcess shadow(cfg, rng);
  // Lag-1 autocorrelation of log-factors should be near rho.
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(std::log(shadow.step(rng)));
  double num = 0.0, den = 0.0, mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  for (std::size_t i = 1; i < xs.size(); ++i) {
    num += (xs[i] - mean) * (xs[i - 1] - mean);
  }
  for (double x : xs) den += (x - mean) * (x - mean);
  EXPECT_NEAR(num / den, cfg.shadow_rho, 0.05);
}

TEST(Fading, FastFadingIsMeanOne) {
  FadingConfig cfg;
  Rng rng(2);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += fast_fading(cfg, rng);
  EXPECT_NEAR(sum / 20000.0, 1.0, 0.02);
}

// ---------- LTE ----------

TEST(Lte, CapacityWithinConfiguredBounds) {
  const LteModel lte;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const geo::Vec2 pos{rng.uniform(-500.0, 500.0),
                        rng.uniform(-500.0, 500.0)};
    const double c = lte.capacity(pos, rng);
    EXPECT_GE(c, lte.config().min_mbps);
    EXPECT_LE(c, lte.config().max_mbps);
  }
}

TEST(Lte, MeanFieldIsDeterministicInSpace) {
  const LteModel lte;
  EXPECT_EQ(lte.mean_capacity({10, 20}), lte.mean_capacity({10, 20}));
  // Nearby points are similar (smooth field)...
  EXPECT_NEAR(lte.mean_capacity({10, 20}), lte.mean_capacity({11, 20}), 8.0);
}

TEST(Lte, FieldVariesAcrossSpace) {
  const LteModel lte;
  double lo = 1e9, hi = 0.0;
  for (double x = 0.0; x < 400.0; x += 10.0) {
    const double c = lte.mean_capacity({x, 0.0});
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_GT(hi - lo, 30.0);
}

// ---------- connection manager ----------

Environment simple_env() {
  Environment env("test", geo::LatLon{45.0, -93.0});
  env.add_panel({1, {0.0, 0.0}, 0.0});
  env.add_panel({2, {0.0, 200.0}, 180.0});
  return env;
}

TEST(Connection, ServesNearestPanelInItsBeam) {
  Environment env = simple_env();
  Rng rng(4);
  ConnectionManager conn(env, rng);
  UEContext ue{{0.0, 30.0}, 180.0, 1.4, Activity::kWalking};
  const TickResult r = conn.tick(ue, rng);
  EXPECT_EQ(r.radio, RadioType::kNrMmWave);
  EXPECT_EQ(r.cell_id, 1);
  EXPECT_GT(r.throughput_mbps, 100.0);
}

TEST(Connection, HorizontalHandoffOnTraversal) {
  Environment env = simple_env();
  Rng rng(5);
  ConnectionManager conn(env, rng);
  // Walk from panel 1's zone into panel 2's zone.
  int handoffs = 0;
  int last_cell = -1;
  for (int t = 0; t < 180; ++t) {
    const double y = 10.0 + t * 1.0;
    UEContext ue{{0.0, y}, 0.0, 1.0, Activity::kWalking};
    const TickResult r = conn.tick(ue, rng);
    if (r.horizontal_handoff) ++handoffs;
    last_cell = r.cell_id;
  }
  EXPECT_GE(handoffs, 1);
  EXPECT_EQ(last_cell, 2);
}

TEST(Connection, HandoffSecondHasOutage) {
  Environment env = simple_env();
  Rng rng(6);
  ConnectionManager conn(env, rng);
  double pre_handoff = 0.0;
  for (int t = 0; t < 180; ++t) {
    const double y = 10.0 + t * 1.0;
    UEContext ue{{0.0, y}, 0.0, 1.0, Activity::kWalking};
    const TickResult r = conn.tick(ue, rng);
    if (r.horizontal_handoff) {
      EXPECT_LT(r.throughput_mbps, pre_handoff * 0.5)
          << "handoff at t=" << t << " should dent throughput";
      return;
    }
    pre_handoff = r.throughput_mbps;
  }
  FAIL() << "no handoff observed";
}

TEST(Connection, FallsBackToLteInDeadZone) {
  Environment env("dead", geo::LatLon{45.0, -93.0});
  env.add_panel({1, {0.0, 0.0}, 0.0});
  Rng rng(7);
  ConnectionManager conn(env, rng);
  // 2 km away, far outside mmWave range.
  UEContext ue{{0.0, 2000.0}, 0.0, 1.0, Activity::kWalking};
  TickResult r{};
  for (int t = 0; t < 5; ++t) r = conn.tick(ue, rng);
  EXPECT_EQ(r.radio, RadioType::kLte);
  EXPECT_GT(r.throughput_mbps, 10.0);  // LTE still delivers
  EXPECT_LT(r.throughput_mbps, 250.0);
}

TEST(Connection, ReentersNrAfterCoverageReturns) {
  Environment env = simple_env();
  Rng rng(8);
  ConnectionManager conn(env, rng);
  UEContext far{{0.0, 3000.0}, 180.0, 1.0, Activity::kWalking};
  for (int t = 0; t < 6; ++t) conn.tick(far, rng);
  UEContext near{{0.0, 40.0}, 180.0, 1.0, Activity::kWalking};
  bool vho = false;
  TickResult r{};
  for (int t = 0; t < 10; ++t) {
    r = conn.tick(near, rng);
    vho = vho || r.vertical_handoff;
  }
  EXPECT_TRUE(vho);
  EXPECT_EQ(r.radio, RadioType::kNrMmWave);
}

TEST(Connection, SharingDividesThroughput) {
  Environment env = simple_env();
  Rng rng_a(9), rng_b(9);
  ConnectionManager solo(env, rng_a), shared(env, rng_b);
  // Far enough that the solo link stays below the UE modem cap (clamping
  // would otherwise skew the solo/shared ratio).
  UEContext ue{{0.0, 120.0}, 180.0, 0.0, Activity::kStill};
  double solo_sum = 0.0, shared_sum = 0.0;
  for (int t = 0; t < 50; ++t) {
    solo_sum += solo.tick(ue, rng_a, 1).throughput_mbps;
    shared_sum += shared.tick(ue, rng_b, 2).throughput_mbps;
  }
  EXPECT_NEAR(shared_sum / solo_sum, 0.5, 0.05);
}

TEST(Connection, ThroughputNeverExceedsUeCap) {
  Environment env = simple_env();
  Rng rng(10);
  ConnectionManager conn(env, rng);
  UEContext ue{{0.0, 5.0}, 180.0, 0.0, Activity::kStill};
  for (int t = 0; t < 100; ++t) {
    EXPECT_LE(conn.tick(ue, rng).throughput_mbps,
              conn.config().ue_max_mbps);
  }
}

// ---------- mobility ----------

TEST(Mobility, TrajectoryLength) {
  Trajectory t;
  t.waypoints = {{0, 0}, {3, 4}, {3, 14}};
  EXPECT_NEAR(t.length_m(), 15.0, 1e-12);
}

TEST(Mobility, WalkerCoversTrajectory) {
  Trajectory t;
  t.waypoints = {{0, 0}, {100, 0}};
  MotionConfig cfg;
  cfg.mode = Activity::kWalking;
  Rng rng(11);
  MotionSimulator sim(t, cfg, {}, rng);
  int steps = 0;
  MotionSample m;
  while (!sim.finished() && steps < 500) {
    m = sim.step(rng);
    ++steps;
    EXPECT_GE(m.speed_mps, 0.0);
    EXPECT_LE(m.speed_mps, 2.5);
  }
  EXPECT_TRUE(sim.finished());
  EXPECT_NEAR(m.pos.x, 100.0, 3.0);
  // ~100m at ~1.4 m/s: between 40 and 250 seconds.
  EXPECT_GT(steps, 40);
  EXPECT_LT(steps, 250);
}

TEST(Mobility, WalkerHeadingFollowsSegments) {
  Trajectory t;
  t.waypoints = {{0, 0}, {0, 50}};
  MotionConfig cfg;
  Rng rng(12);
  MotionSimulator sim(t, cfg, {}, rng);
  const MotionSample m = sim.step(rng);
  EXPECT_NEAR(m.heading_deg, 0.0, 1e-9);  // due north
}

TEST(Mobility, DriverStopsAtStopPoint) {
  Trajectory t;
  t.waypoints = {{0, 0}, {500, 0}};
  MotionConfig cfg;
  cfg.mode = Activity::kDriving;
  cfg.stop_probability = 1.0;  // always red
  Rng rng(13);
  MotionSimulator sim(t, cfg, {{250.0, 0.0}}, rng);
  bool stopped_mid = false;
  int steps = 0;
  while (!sim.finished() && steps < 600) {
    const MotionSample m = sim.step(rng);
    ++steps;
    if (m.speed_mps == 0.0 && m.pos.x > 200.0 && m.pos.x < 300.0) {
      stopped_mid = true;
    }
  }
  EXPECT_TRUE(stopped_mid);
}

TEST(Mobility, DriverReachesCruiseSpeed) {
  Trajectory t;
  t.waypoints = {{0, 0}, {800, 0}};
  MotionConfig cfg;
  cfg.mode = Activity::kDriving;
  cfg.stop_probability = 0.0;
  Rng rng(14);
  MotionSimulator sim(t, cfg, {}, rng);
  double top = 0.0;
  while (!sim.finished()) {
    top = std::max(top, sim.step(rng).speed_mps);
  }
  EXPECT_GT(top * 3.6, 24.0);
  EXPECT_LT(top * 3.6, 46.0);  // paper: loop driving 0-45 kmph
}

// ---------- sensors ----------

TEST(Sensors, GpsNoiseMatchesReportedAccuracy) {
  SensorConfig cfg;
  cfg.gps_bad_run_prob = 0.0;
  Rng rng(15);
  const geo::LocalFrame frame({45.0, -93.0});
  SensorModel model(cfg, rng);
  MotionSample truth;
  truth.pos = {100.0, 100.0};
  truth.heading_deg = 90.0;
  truth.speed_mps = 1.4;
  double err_sum = 0.0;
  int n = 400;
  for (int i = 0; i < n; ++i) {
    const SensorReading r =
        model.observe(truth, Activity::kWalking, frame, rng);
    const geo::Vec2 obs = frame.to_local({r.latitude, r.longitude});
    err_sum += std::hypot(obs.x - 100.0, obs.y - 100.0);
    EXPECT_GT(r.gps_accuracy_m, 0.0);
  }
  // Mean radial error of 2-D Gaussian ~ sigma * sqrt(pi/2).
  const double expected = model.run_gps_sigma() * std::sqrt(3.14159 / 2.0);
  EXPECT_NEAR(err_sum / n, expected, expected * 0.3);
}

TEST(Sensors, ActivityMostlyCorrect) {
  SensorConfig cfg;
  Rng rng(16);
  const geo::LocalFrame frame({45.0, -93.0});
  SensorModel model(cfg, rng);
  MotionSample truth;
  truth.speed_mps = 1.4;
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    if (model.observe(truth, Activity::kWalking, frame, rng).activity ==
        Activity::kWalking) {
      ++correct;
    }
  }
  EXPECT_GT(correct, 180);
}

TEST(Sensors, BadGpsRunsExist) {
  SensorConfig cfg;
  cfg.gps_bad_run_prob = 1.0;
  Rng rng(17);
  SensorModel model(cfg, rng);
  EXPECT_GE(model.run_gps_sigma(), cfg.gps_bad_sigma_m);
}

// ---------- collector & areas ----------

TEST(Collector, ProducesOneRecordPerSecondPerRun) {
  Area area = make_airport();
  data::Dataset ds;
  MeasurementCollector collector(area.env);
  CollectorConfig cfg;
  cfg.n_runs = 2;
  MotionConfig motion;
  collector.collect(area.walking[1], motion, {}, cfg, 42, ds);
  ASSERT_GT(ds.size(), 100u);
  const auto runs = ds.runs();
  EXPECT_EQ(runs.size(), 2u);
  for (const auto& run : runs) {
    for (std::size_t i = 1; i < run.size(); ++i) {
      EXPECT_EQ(ds[run[i]].timestamp_s, ds[run[i - 1]].timestamp_s + 1.0);
    }
  }
}

TEST(Collector, RecordsCompleteTable1Fields) {
  Area area = make_airport();
  data::Dataset ds;
  MeasurementCollector collector(area.env);
  CollectorConfig cfg;
  cfg.n_runs = 1;
  MotionConfig motion;
  collector.collect(area.walking[0], motion, {}, cfg, 7, ds);
  ASSERT_FALSE(ds.empty());
  const auto& s = ds[10];
  EXPECT_EQ(s.area, "airport");
  EXPECT_NE(s.latitude, 0.0);
  EXPECT_NE(s.longitude, 0.0);
  EXPECT_GE(s.throughput_mbps, 0.0);
  EXPECT_TRUE(s.has_panel_geometry());
  EXPECT_GE(s.theta_p_deg, 0.0);
  EXPECT_LE(s.theta_p_deg, 180.0);
  EXPECT_GE(s.theta_m_deg, 0.0);
  EXPECT_LE(s.theta_m_deg, 180.0);
  EXPECT_LT(s.nr_ssrsrp, -50.0);
  EXPECT_GT(s.nr_ssrsrp, -141.0);
}

TEST(Collector, LteLockedUeNeverOn5G) {
  Area area = make_loop();
  data::Dataset ds;
  MeasurementCollector collector(area.env);
  CollectorConfig cfg;
  cfg.n_runs = 1;
  cfg.lock_lte = true;
  MotionConfig motion;
  collector.collect(area.walking[0], motion, {}, cfg, 8, ds);
  for (const auto& s : ds.samples()) {
    EXPECT_EQ(s.radio_type, RadioType::kLte);
    EXPECT_LT(s.throughput_mbps, 250.0);
  }
}

TEST(Collector, DeterministicGivenSeed) {
  Area area = make_airport();
  data::Dataset a, b;
  MeasurementCollector collector(area.env);
  CollectorConfig cfg;
  cfg.n_runs = 1;
  MotionConfig motion;
  collector.collect(area.walking[0], motion, {}, cfg, 99, a);
  collector.collect(area.walking[0], motion, {}, cfg, 99, b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].throughput_mbps, b[i].throughput_mbps);
    EXPECT_DOUBLE_EQ(a[i].latitude, b[i].latitude);
  }
}

TEST(Areas, FactoriesMatchPaperTable2) {
  const Area airport = make_airport();
  EXPECT_EQ(airport.walking.size(), 2u);  // NB + SB
  EXPECT_EQ(airport.env.panels().size(), 2u);
  EXPECT_TRUE(airport.env.panels_surveyed());

  const Area intersection = make_intersection();
  EXPECT_EQ(intersection.walking.size(), 12u);
  EXPECT_EQ(intersection.env.panels().size(), 6u);  // 3 dual-panel towers

  const Area loop = make_loop();
  EXPECT_FALSE(loop.env.panels_surveyed());
  EXPECT_NEAR(loop.walking[0].length_m(), 1300.0, 1.0);
}

TEST(Areas, IntersectionTrajectoryLengthsMatchPaper) {
  const Area intersection = make_intersection();
  for (std::size_t i = 0; i < 8; ++i) {  // the straight arms
    EXPECT_NEAR(intersection.walking[i].length_m(), 260.0, 20.0);
  }
}

TEST(Areas, CollectAreaDatasetCleansAndFills) {
  const Area area = make_airport();
  const data::Dataset ds = collect_area_dataset(area, 3, 0, 123);
  ASSERT_GT(ds.size(), 500u);
  for (const auto& s : ds.samples()) {
    EXPECT_NE(s.pixel_x, 0);  // pixelization ran
    EXPECT_LE(s.gps_accuracy_m, 7.0);  // bad-GPS runs dropped
  }
}

// ---------- congestion ----------

TEST(Congestion, AirtimeSharingStaircase) {
  const Area area = make_airport();
  CongestionConfig cfg;
  cfg.position = {0.0, 75.0};  // ~25 m in front of the north panel
  cfg.heading_deg = 0.0;
  const CongestionResult res =
      run_congestion_experiment(area.env, cfg, 2024);
  ASSERT_EQ(res.throughput.size(), 4u);
  ASSERT_EQ(res.active_count.size(), 240u);
  EXPECT_EQ(res.active_count[0], 1);
  EXPECT_EQ(res.active_count[239], 4);

  // UE1 alone vs UE1 sharing with 3 others: about 4x reduction.
  double solo = 0.0, crowded = 0.0;
  for (int t = 10; t < 55; ++t) solo += res.throughput[0][static_cast<std::size_t>(t)];
  for (int t = 190; t < 235; ++t) crowded += res.throughput[0][static_cast<std::size_t>(t)];
  EXPECT_GT(solo / crowded, 2.5);
  EXPECT_LT(solo / crowded, 6.0);

  // UE2 inactive during the first minute.
  EXPECT_TRUE(std::isnan(res.throughput[1][10]));
  EXPECT_FALSE(std::isnan(res.throughput[1][70]));
}

}  // namespace
}  // namespace lumos::sim

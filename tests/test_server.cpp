// Tests for serve::Server — the resilient long-running serving loop.
// Covers admission control (watermark shed, hard cap, shutdown), deadline
// expiry, watermark-driven tier degradation, deterministic session
// eviction (LRU + TTL), and hot reload with rollback. The two load-bearing
// bit-identity invariants: a UE's predictions are unchanged by eviction of
// an *unrelated* session, and unchanged across a hot reload of an
// identical artifact. Both must hold at any LUMOS_THREADS (the suite runs
// pinned to 1 and 8 from CMake).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/lumos5g.h"
#include "data/features.h"
#include "serve/model_io.h"
#include "serve/predictor.h"
#include "serve/server.h"
#include "sim/areas.h"

namespace lumos::serve {
namespace {

std::uint64_t bits(double x) noexcept { return std::bit_cast<std::uint64_t>(x); }

const data::Dataset& airport_ds() {
  static const data::Dataset ds = [] {
    const sim::Area area = sim::make_airport();
    return sim::collect_area_dataset(area, /*walk_runs=*/6, 0, 4242);
  }();
  return ds;
}

const core::Lumos5G& facade() {
  static const core::Lumos5G* m = [] {
    core::Lumos5GConfig cfg;
    cfg.feature_spec = data::FeatureSetSpec::parse("T+M+C");
    cfg.gbdt.n_estimators = 40;
    cfg.gbdt.max_depth = 5;
    auto* f = new core::Lumos5G(cfg);
    const auto ok = f->train(airport_ds());
    EXPECT_TRUE(ok.has_value());
    return f;
  }();
  return *m;
}

Predictor make_predictor() {
  auto compiled = Predictor::compile(facade());
  EXPECT_TRUE(compiled.has_value());
  return std::move(*compiled);
}

/// `n` consecutive full-context samples from one walk run.
std::vector<data::SampleRecord> run_samples(std::size_t run_idx, std::size_t n,
                                            std::size_t offset = 10) {
  const auto& ds = airport_ds();
  const auto runs = ds.runs();
  EXPECT_LT(run_idx, runs.size());
  const auto& run = runs[run_idx];
  EXPECT_LE(offset + n, run.size());
  std::vector<data::SampleRecord> out;
  out.reserve(n);
  for (std::size_t i = offset; i < offset + n; ++i) out.push_back(ds[run[i]]);
  return out;
}

/// Submits one request and serves it immediately (no queue pressure).
Response serve_one(Server& server, std::uint64_t ue,
                   const data::SampleRecord& sample) {
  const auto ticket = server.submit({ue, sample, 0});
  EXPECT_TRUE(ticket.has_value());
  auto out = server.step();
  EXPECT_EQ(out.size(), 1u);
  return std::move(out.front());
}

void expect_same_result(const Expected<core::Prediction>& a,
                        const Expected<core::Prediction>& b) {
  ASSERT_EQ(a.has_value(), b.has_value());
  if (!a.has_value()) {
    EXPECT_EQ(a.error().code, b.error().code);
    return;
  }
  EXPECT_EQ(bits(a->throughput_mbps), bits(b->throughput_mbps));
  EXPECT_EQ(a->throughput_class, b->throughput_class);
  EXPECT_EQ(a->tier, b->tier);
  EXPECT_EQ(a->feature_group, b->feature_group);
}

// ---------- admission + basic serving ----------

TEST(Server, ServesLikeDirectPredictorBitwise) {
  ManualClock clock;
  Server server(make_predictor(), ServerConfig{}, clock);
  const Predictor direct = make_predictor();
  Session shadow(ServerConfig{}.session_capacity);

  for (const auto& s : run_samples(0, 12)) {
    const Response r = serve_one(server, 1, s);
    shadow.observe(s);
    expect_same_result(r.result, direct.predict(shadow));
    clock.advance_ms(1000);
  }
  EXPECT_EQ(server.stats().submitted, 12u);
  EXPECT_EQ(server.stats().served + server.stats().failed, 12u);
}

TEST(Server, TicketsAreMonotone) {
  ManualClock clock;
  Server server(make_predictor(), ServerConfig{}, clock);
  const auto samples = run_samples(0, 4);
  std::uint64_t prev = 0;
  for (const auto& s : samples) {
    const auto t = server.submit({1, s, 0});
    ASSERT_TRUE(t.has_value());
    EXPECT_GT(*t, prev);
    prev = *t;
  }
  EXPECT_EQ(server.drain().size(), samples.size());
}

TEST(Server, OverloadShedsAtWatermarkTyped) {
  ManualClock clock;
  ServerConfig cfg;
  cfg.queue_capacity = 10;
  cfg.shed_watermark = 0.5;
  Server server(make_predictor(), cfg, clock);
  const auto samples = run_samples(0, 1);

  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(server.submit({1, samples[0], 0}).has_value()) << i;
  }
  const auto shed = server.submit({1, samples[0], 0});
  ASSERT_FALSE(shed.has_value());
  EXPECT_EQ(shed.error().code, ErrorCode::kOverloaded);
  EXPECT_EQ(server.stats().shed, 1u);
  EXPECT_EQ(server.stats().submitted, 5u);
  EXPECT_EQ(server.stats().peak_depth, 5u);

  // Serving drains the queue; admission reopens below the watermark.
  server.drain();
  EXPECT_TRUE(server.submit({1, samples[0], 0}).has_value());
}

TEST(Server, WatermarkOneShedsOnlyWhenFull) {
  ManualClock clock;
  ServerConfig cfg;
  cfg.queue_capacity = 4;
  cfg.shed_watermark = 1.0;
  Server server(make_predictor(), cfg, clock);
  const auto samples = run_samples(0, 1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(server.submit({1, samples[0], 0}).has_value()) << i;
  }
  const auto full = server.submit({1, samples[0], 0});
  ASSERT_FALSE(full.has_value());
  EXPECT_EQ(full.error().code, ErrorCode::kOverloaded);
}

TEST(Server, ShutdownRejectsNewButDrainsQueued) {
  ManualClock clock;
  Server server(make_predictor(), ServerConfig{}, clock);
  const auto samples = run_samples(0, 3);
  for (const auto& s : samples) {
    ASSERT_TRUE(server.submit({1, s, 0}).has_value());
  }
  server.begin_shutdown();
  EXPECT_TRUE(server.shutting_down());
  const auto rejected = server.submit({1, samples[0], 0});
  ASSERT_FALSE(rejected.has_value());
  EXPECT_EQ(rejected.error().code, ErrorCode::kShuttingDown);
  EXPECT_EQ(server.stats().rejected_shutdown, 1u);

  const auto out = server.drain();
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(server.queue_depth(), 0u);
}

TEST(Server, BatchedSameUeMatchesSequentialBitwise) {
  // A UE submitting twice into one batch must see exactly the windows it
  // would have seen submitting one step at a time.
  const auto samples = run_samples(0, 10);
  ManualClock c1, c2;
  Server batched(make_predictor(), ServerConfig{}, c1);
  Server sequential(make_predictor(), ServerConfig{}, c2);

  std::vector<Response> seq_out;
  for (const auto& s : samples) {
    ASSERT_TRUE(batched.submit({7, s, 0}).has_value());
    seq_out.push_back(serve_one(sequential, 7, s));
  }
  const auto batch_out = batched.step();  // one batch, all ten requests
  ASSERT_EQ(batch_out.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    expect_same_result(batch_out[i].result, seq_out[i].result);
  }
}

// ---------- deadlines ----------

TEST(Server, ExpiredRequestsAreTypedAndCostNoModelWork) {
  ManualClock clock;
  ServerConfig cfg;
  cfg.default_deadline_ms = 100;
  Server server(make_predictor(), cfg, clock);
  for (const auto& s : run_samples(0, 3)) {
    ASSERT_TRUE(server.submit({1, s, 0}).has_value());
  }
  clock.advance_ms(200);  // all three now past their budget
  const auto out = server.step();
  ASSERT_EQ(out.size(), 3u);
  for (const auto& r : out) {
    ASSERT_FALSE(r.result.has_value());
    EXPECT_EQ(r.result.error().code, ErrorCode::kDeadlineExceeded);
  }
  EXPECT_EQ(server.stats().deadline_expired, 3u);
  EXPECT_EQ(server.stats().served, 0u);
  // No session was created for the expired UE: expiry costs nothing.
  EXPECT_EQ(server.n_sessions(), 0u);
}

TEST(Server, PerRequestDeadlineOverridesDefault) {
  ManualClock clock;
  ServerConfig cfg;
  cfg.default_deadline_ms = 10'000;
  Server server(make_predictor(), cfg, clock);
  const auto samples = run_samples(0, 2);
  ASSERT_TRUE(server.submit({1, samples[0], 50}).has_value());   // tight
  ASSERT_TRUE(server.submit({2, samples[1], 0}).has_value());    // default
  clock.advance_ms(100);
  const auto out = server.step();
  ASSERT_EQ(out.size(), 2u);
  ASSERT_FALSE(out[0].result.has_value());
  EXPECT_EQ(out[0].result.error().code, ErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(out[1].result.has_value() ||
              out[1].result.error().code != ErrorCode::kDeadlineExceeded);
}

TEST(Server, ZeroDeadlineNeverExpires) {
  ManualClock clock;
  Server server(make_predictor(), ServerConfig{}, clock);  // default 0
  ASSERT_TRUE(server.submit({1, run_samples(0, 1)[0], 0}).has_value());
  clock.advance_ms(1'000'000'000);
  const auto out = server.step();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].result.has_value() ||
              out[0].result.error().code != ErrorCode::kDeadlineExceeded);
}

// ---------- watermark degradation ----------

TEST(Server, MinTierForDepthIsMonotone) {
  ManualClock clock;
  ServerConfig cfg;
  cfg.queue_capacity = 100;
  cfg.degrade_watermarks = {0.85, 0.50, 0.70};  // deliberately unsorted
  Server server(make_predictor(), cfg, clock);

  EXPECT_EQ(server.min_tier_for_depth(0), 0u);
  std::size_t prev = 0;
  for (std::size_t d = 0; d <= cfg.queue_capacity; ++d) {
    const std::size_t t = server.min_tier_for_depth(d);
    EXPECT_GE(t, prev) << "depth " << d;
    EXPECT_LE(t, server.predictor().tier_specs().size());
    prev = t;
  }
  EXPECT_EQ(server.min_tier_for_depth(49), 0u);
  EXPECT_EQ(server.min_tier_for_depth(50), 1u);
  EXPECT_EQ(server.min_tier_for_depth(70), 2u);
  EXPECT_EQ(server.min_tier_for_depth(85),
            std::min<std::size_t>(3, server.predictor().tier_specs().size()));
}

TEST(Server, PressureDegradesServedTierHonestly) {
  const auto warm = run_samples(0, 8);
  const auto extra = run_samples(0, 4, 18);

  // Control: no pressure — full-context window answers from tier 0.
  ManualClock c1;
  ServerConfig cfg;
  cfg.queue_capacity = 8;
  cfg.degrade_watermarks = {0.25};
  cfg.shed_watermark = 1.0;
  Server control(make_predictor(), cfg, c1);
  for (const auto& s : warm) serve_one(control, 1, s);
  const Response calm = serve_one(control, 1, extra[0]);
  ASSERT_TRUE(calm.result.has_value());
  ASSERT_EQ(calm.result->tier, 0);
  EXPECT_EQ(calm.min_tier, 0u);

  // Pressured: same warm window, but four requests queued at once crosses
  // the 0.25 watermark -> the whole batch is served with min_tier >= 1 and
  // the responses report the degraded tier honestly.
  ManualClock c2;
  Server pressured(make_predictor(), cfg, c2);
  for (const auto& s : warm) serve_one(pressured, 1, s);
  const std::uint64_t tier0_after_warm = pressured.stats().served_by_tier[0];
  for (const auto& s : extra) {
    ASSERT_TRUE(pressured.submit({1, s, 0}).has_value());
  }
  const auto out = pressured.step();
  ASSERT_EQ(out.size(), 4u);
  for (const auto& r : out) {
    EXPECT_GE(r.min_tier, 1u);
    if (r.result.has_value()) {
      EXPECT_GE(r.result->tier, 1);
    }
  }
  // Nothing in the pressured batch was answered from tier 0.
  EXPECT_EQ(pressured.stats().served_by_tier[0], tier0_after_warm);
}

// ---------- session lifecycle ----------

TEST(Server, UnrelatedEvictionPreservesBitIdentity) {
  // UE A's predictions must be bit-identical whether or not an unrelated
  // UE B ever existed, got evicted, or was rebuilt. Server `with_b`
  // interleaves B traffic and then LRU-evicts B via fresh UEs; A's answer
  // stream must not move by a bit.
  const auto a_samples = run_samples(0, 12);
  const auto b_samples = run_samples(1, 6);

  ManualClock c1, c2;
  ServerConfig cfg;
  cfg.max_sessions = 3;
  Server alone(make_predictor(), cfg, c1);
  Server with_b(make_predictor(), cfg, c2);

  std::vector<Response> a_alone, a_with_b;
  for (std::size_t i = 0; i < a_samples.size(); ++i) {
    a_alone.push_back(serve_one(alone, 1, a_samples[i]));
    if (i < b_samples.size()) serve_one(with_b, 2, b_samples[i]);
    a_with_b.push_back(serve_one(with_b, 1, a_samples[i]));
    if (i == 7) {
      // Two fresh UEs: the 3-session LRU evicts B (A was touched later).
      serve_one(with_b, 30, b_samples[0]);
      serve_one(with_b, 31, b_samples[1]);
      EXPECT_GE(with_b.stats().evicted_lru, 1u);
    }
  }
  ASSERT_EQ(a_alone.size(), a_with_b.size());
  for (std::size_t i = 0; i < a_alone.size(); ++i) {
    expect_same_result(a_alone[i].result, a_with_b[i].result);
  }
}

TEST(Server, LruEvictionIsDeterministicAndRebuildsTransparently) {
  ManualClock clock;
  ServerConfig cfg;
  cfg.max_sessions = 2;
  Server server(make_predictor(), cfg, clock);
  const auto samples = run_samples(0, 6);

  serve_one(server, 1, samples[0]);  // A
  serve_one(server, 2, samples[1]);  // B (A is now least recent)
  EXPECT_EQ(server.n_sessions(), 2u);
  serve_one(server, 3, samples[2]);  // C arrives -> A evicted
  EXPECT_EQ(server.n_sessions(), 2u);
  EXPECT_EQ(server.stats().evicted_lru, 1u);

  // A comes back: a fresh session is built transparently — the request is
  // answered (possibly from a lower tier), never an error about eviction.
  const Response r = serve_one(server, 1, samples[3]);
  EXPECT_EQ(server.stats().evicted_lru, 2u);  // B was the next victim
  EXPECT_TRUE(r.result.has_value() ||
              r.result.error().code == ErrorCode::kWindowUnusable);
}

TEST(Server, TtlEvictsIdleSessions) {
  ManualClock clock;
  ServerConfig cfg;
  cfg.session_ttl_ms = 1000;
  Server server(make_predictor(), cfg, clock);
  const auto samples = run_samples(0, 2);

  serve_one(server, 1, samples[0]);
  EXPECT_EQ(server.n_sessions(), 1u);
  clock.advance_ms(5000);
  serve_one(server, 2, samples[1]);  // the step's sweep reaps idle UE 1
  EXPECT_EQ(server.n_sessions(), 1u);
  EXPECT_EQ(server.stats().evicted_ttl, 1u);
}

// ---------- hot reload ----------

TEST(Server, ReloadIdenticalArtifactPreservesBitIdentity) {
  const auto samples = run_samples(0, 12);
  ManualClock c1, c2;
  Server control(make_predictor(), ServerConfig{}, c1);
  Server reloaded(make_predictor(), ServerConfig{}, c2);

  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i == 6) {
      const auto swapped = reloaded.reload_bytes(save_bytes(facade()));
      ASSERT_TRUE(swapped.has_value()) << swapped.error().message;
      EXPECT_EQ(reloaded.model_generation(), 2u);
      EXPECT_EQ(reloaded.stats().reloads_ok, 1u);
    }
    expect_same_result(serve_one(control, 1, samples[i]).result,
                       serve_one(reloaded, 1, samples[i]).result);
  }
}

TEST(Server, ReloadRollsBackOnCorruptArtifact) {
  const auto samples = run_samples(0, 10);
  ManualClock c1, c2;
  Server control(make_predictor(), ServerConfig{}, c1);
  Server server(make_predictor(), ServerConfig{}, c2);

  std::string damaged = save_bytes(facade());
  damaged[damaged.size() / 2] =
      static_cast<char>(static_cast<unsigned char>(damaged[damaged.size() / 2]) ^
                        0x40);

  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i == 5) {
      const auto swapped = server.reload_bytes(damaged);
      ASSERT_FALSE(swapped.has_value());
      EXPECT_EQ(swapped.error().code, ErrorCode::kCorrupt);
      EXPECT_NE(swapped.error().message.find("rolled back"),
                std::string::npos);
      EXPECT_EQ(server.model_generation(), 1u);
      EXPECT_EQ(server.stats().reloads_failed, 1u);
    }
    // The failed reload must be invisible to the request stream.
    expect_same_result(serve_one(control, 1, samples[i]).result,
                       serve_one(server, 1, samples[i]).result);
  }
}

TEST(Server, ReloadRollsBackOnTruncatedArtifact) {
  ManualClock clock;
  Server server(make_predictor(), ServerConfig{}, clock);
  const std::string full = save_bytes(facade());
  const auto swapped = server.reload_bytes(full.substr(0, full.size() / 2));
  ASSERT_FALSE(swapped.has_value());
  EXPECT_EQ(swapped.error().code, ErrorCode::kTruncated);
  EXPECT_EQ(server.model_generation(), 1u);
}

TEST(Server, ReloadRetriesTransientIoWithBackoffThenGivesUp) {
  ManualClock clock;
  ServerConfig cfg;
  cfg.reload_max_attempts = 3;
  cfg.reload_backoff_ms = 10;
  Server server(make_predictor(), cfg, clock);

  const std::uint64_t t0 = clock.now_ms();
  const auto r = server.reload("/nonexistent/lumos/model.l5gm");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kIoError);
  EXPECT_NE(r.error().message.find("gave up after 3"), std::string::npos);
  // Exponential backoff between attempts: 10 + 20 ms slept on the clock.
  EXPECT_EQ(clock.now_ms() - t0, 30u);
  EXPECT_EQ(server.stats().reload_attempts, 3u);
  EXPECT_EQ(server.model_generation(), 1u);
}

TEST(Server, ReloadValidationFailureDoesNotRetry) {
  ManualClock clock;
  ServerConfig cfg;
  cfg.reload_max_attempts = 5;
  cfg.reload_backoff_ms = 10;
  Server server(make_predictor(), cfg, clock);

  const auto dir =
      std::filesystem::temp_directory_path() / "lumos_test_server_reload";
  std::filesystem::create_directories(dir);
  const auto path = dir / "bad.l5gm";
  std::string damaged = save_bytes(facade());
  damaged[damaged.size() - 1] = static_cast<char>(
      static_cast<unsigned char>(damaged[damaged.size() - 1]) ^ 0x01);
  {
    std::ofstream out(path, std::ios::binary);
    out.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
  }

  const std::uint64_t t0 = clock.now_ms();
  const auto r = server.reload(path);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kCorrupt);
  // Retrying identical bytes cannot help: exactly one attempt, no backoff.
  EXPECT_EQ(server.stats().reload_attempts, 1u);
  EXPECT_EQ(clock.now_ms(), t0);
  std::filesystem::remove_all(dir);
}

TEST(Server, ReloadFromFileSwapsAndBumpsGeneration) {
  ManualClock clock;
  Server server(make_predictor(), ServerConfig{}, clock);
  const auto dir =
      std::filesystem::temp_directory_path() / "lumos_test_server_reload_ok";
  std::filesystem::create_directories(dir);
  const auto path = dir / "model.l5gm";
  ASSERT_TRUE(write_artifact(path, save_bytes(facade())).has_value());

  const auto r = server.reload(path);
  ASSERT_TRUE(r.has_value()) << r.error().message;
  EXPECT_EQ(server.model_generation(), 2u);
  EXPECT_EQ(server.stats().reloads_ok, 1u);
  std::filesystem::remove_all(dir);
}

// ---------- accounting ----------

TEST(Server, StatsPartitionEveryAdmittedRequest) {
  ManualClock clock;
  ServerConfig cfg;
  cfg.default_deadline_ms = 100;
  Server server(make_predictor(), cfg, clock);
  const auto samples = run_samples(0, 8);

  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(server.submit({1, samples[i], 0}).has_value());
  }
  clock.advance_ms(200);  // first four expire
  for (std::size_t i = 4; i < 8; ++i) {
    ASSERT_TRUE(server.submit({1, samples[i], 0}).has_value());
  }
  server.drain();

  const auto& st = server.stats();
  EXPECT_EQ(st.submitted, 8u);
  EXPECT_EQ(st.served + st.failed + st.deadline_expired, st.submitted);
  std::uint64_t by_tier = 0;
  for (const auto n : st.served_by_tier) by_tier += n;
  EXPECT_EQ(by_tier, st.served);
}

}  // namespace
}  // namespace lumos::serve

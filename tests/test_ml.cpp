// Tests for lumos::ml — metrics, binning, gradient trees, GDBT, Random
// Forest, KNN, Ordinary Kriging, Harmonic Mean and the LU solver.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>

#include "common/rng.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/harmonic.h"
#include "ml/knn.h"
#include "ml/kriging.h"
#include "ml/linalg.h"
#include "ml/metrics.h"
#include "ml/tree.h"

namespace lumos::ml {
namespace {

// ---------- metrics ----------

TEST(Metrics, MaeRmseKnownValues) {
  const std::vector<double> pred{1.0, 2.0, 3.0};
  const std::vector<double> truth{2.0, 2.0, 1.0};
  EXPECT_NEAR(mae(pred, truth), (1.0 + 0.0 + 2.0) / 3.0, 1e-12);
  EXPECT_NEAR(rmse(pred, truth), std::sqrt((1.0 + 0.0 + 4.0) / 3.0), 1e-12);
}

TEST(Metrics, ConfusionMatrixLayout) {
  const std::vector<int> truth{0, 0, 1, 1, 2};
  const std::vector<int> pred{0, 1, 1, 1, 0};
  const auto cm = confusion_matrix(pred, truth, 3);
  EXPECT_EQ(cm.at(0, 0), 1u);
  EXPECT_EQ(cm.at(0, 1), 1u);
  EXPECT_EQ(cm.at(1, 1), 2u);
  EXPECT_EQ(cm.at(2, 0), 1u);
  EXPECT_EQ(cm.at(2, 2), 0u);
}

TEST(Metrics, PerfectPredictionScoresOne) {
  const std::vector<int> y{0, 1, 2, 0, 1, 2};
  const auto cm = confusion_matrix(y, y, 3);
  EXPECT_NEAR(weighted_f1(cm), 1.0, 1e-12);
  EXPECT_NEAR(accuracy(cm), 1.0, 1e-12);
  EXPECT_NEAR(recall_of(cm, 0), 1.0, 1e-12);
}

TEST(Metrics, RecallAndPrecisionAsymmetric) {
  // Truth: 4 lows; model catches 3 -> recall 0.75.
  const std::vector<int> truth{0, 0, 0, 0, 1, 1};
  const std::vector<int> pred{0, 0, 0, 1, 1, 0};
  const auto cm = confusion_matrix(pred, truth, 2);
  EXPECT_NEAR(recall_of(cm, 0), 0.75, 1e-12);
  EXPECT_NEAR(precision_of(cm, 0), 0.75, 1e-12);
}

TEST(Metrics, WeightedF1WeightsBySupport) {
  // Class 0 has 9 samples all correct; class 1 has 1 sample wrong.
  std::vector<int> truth(10, 0);
  truth[9] = 1;
  std::vector<int> pred(10, 0);
  const auto cm = confusion_matrix(pred, truth, 2);
  // class0: f1 = 2*0.9*1/(1.9) ~ 0.947; class1: f1 = 0.
  EXPECT_NEAR(weighted_f1(cm), 0.9 * f1_of(cm, 0), 1e-12);
}

TEST(Metrics, EmptyInputIsSafe) {
  const auto cm = confusion_matrix({}, {}, 3);
  EXPECT_EQ(weighted_f1(cm), 0.0);
  EXPECT_EQ(accuracy(cm), 0.0);
}

// ---------- binning ----------

TEST(BinMapper, MonotoneAndInverse) {
  FeatureMatrix x(100, 1);
  for (std::size_t i = 0; i < 100; ++i) {
    x.at(i, 0) = static_cast<double>(i);
  }
  BinMapper mapper;
  mapper.fit(x, 16);
  std::uint16_t prev = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    const auto b = mapper.bin(0, static_cast<double>(i));
    EXPECT_GE(b, prev);
    prev = b;
  }
  // Values <= upper_edge(b) must map to bins <= b.
  for (std::uint16_t b = 0; b < 15; ++b) {
    const double edge = mapper.upper_edge(0, b);
    if (std::isfinite(edge)) {
      EXPECT_LE(mapper.bin(0, edge), b);
      EXPECT_GT(mapper.bin(0, edge + 1e-9), b);
    }
  }
}

TEST(BinMapper, ConstantFeatureGetsOneBin) {
  FeatureMatrix x(50, 1);
  for (std::size_t i = 0; i < 50; ++i) x.at(i, 0) = 3.14;
  BinMapper mapper;
  mapper.fit(x, 16);
  EXPECT_EQ(mapper.bin(0, 3.14), 0);
  EXPECT_EQ(mapper.bin(0, -100.0), 0);
}

// ---------- gradient tree ----------

TEST(GradientTree, FitsStepFunction) {
  FeatureMatrix x(200, 1);
  std::vector<double> y(200), hess(200, 1.0);
  for (std::size_t i = 0; i < 200; ++i) {
    x.at(i, 0) = static_cast<double>(i);
    y[i] = i < 100 ? 10.0 : 50.0;
  }
  BinMapper mapper;
  mapper.fit(x, 32);
  const auto codes = mapper.encode(x);
  std::vector<std::size_t> idx(200);
  for (std::size_t i = 0; i < 200; ++i) idx[i] = i;

  GradientTree tree;
  TreeConfig cfg;
  cfg.max_depth = 2;
  cfg.lambda = 0.0;
  tree.fit(codes, mapper, y, hess, idx, cfg);

  EXPECT_NEAR(tree.predict(x.row(10)), 10.0, 1.0);
  EXPECT_NEAR(tree.predict(x.row(150)), 50.0, 1.0);
}

TEST(GradientTree, RespectsMaxDepthZero) {
  FeatureMatrix x(50, 1);
  std::vector<double> y(50), hess(50, 1.0);
  for (std::size_t i = 0; i < 50; ++i) {
    x.at(i, 0) = static_cast<double>(i);
    y[i] = static_cast<double>(i);
  }
  BinMapper mapper;
  mapper.fit(x, 8);
  const auto codes = mapper.encode(x);
  std::vector<std::size_t> idx(50);
  for (std::size_t i = 0; i < 50; ++i) idx[i] = i;
  GradientTree tree;
  TreeConfig cfg;
  cfg.max_depth = 0;
  cfg.lambda = 0.0;
  tree.fit(codes, mapper, y, hess, idx, cfg);
  EXPECT_EQ(tree.nodes().size(), 1u);  // root leaf only
  EXPECT_NEAR(tree.predict(x.row(0)), 24.5, 1e-9);  // mean of 0..49
}

TEST(GradientTree, EmptyIndicesYieldZeroLeaf) {
  FeatureMatrix x(10, 1);
  BinMapper mapper;
  mapper.fit(x, 8);
  const auto codes = mapper.encode(x);
  GradientTree tree;
  std::vector<double> y(10, 1.0), hess(10, 1.0);
  tree.fit(codes, mapper, y, hess, {}, TreeConfig{});
  EXPECT_EQ(tree.predict(x.row(0)), 0.0);
}

TEST(GradientTree, GainAccumulatesOnSplitFeature) {
  FeatureMatrix x(100, 2);
  std::vector<double> y(100), hess(100, 1.0);
  Rng rng(1);
  for (std::size_t i = 0; i < 100; ++i) {
    x.at(i, 0) = rng.uniform();       // informative
    x.at(i, 1) = rng.uniform();       // noise
    y[i] = x.at(i, 0) > 0.5 ? 100.0 : 0.0;
  }
  BinMapper mapper;
  mapper.fit(x, 32);
  const auto codes = mapper.encode(x);
  std::vector<std::size_t> idx(100);
  for (std::size_t i = 0; i < 100; ++i) idx[i] = i;
  GradientTree tree;
  TreeConfig cfg;
  cfg.max_depth = 3;
  tree.fit(codes, mapper, y, hess, idx, cfg);
  std::vector<double> gains(2, 0.0);
  tree.accumulate_gain(gains);
  EXPECT_GT(gains[0], gains[1] * 10.0);
}

// ---------- GDBT ----------

TEST(GbdtRegressor, FitsNonlinearFunction) {
  Rng rng(2);
  FeatureMatrix x(600, 2);
  std::vector<double> y(600);
  for (std::size_t i = 0; i < 600; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    const double b = rng.uniform(-2.0, 2.0);
    x.at(i, 0) = a;
    x.at(i, 1) = b;
    y[i] = std::sin(a) * 10.0 + b * b * 5.0;
  }
  GbdtConfig cfg;
  cfg.n_estimators = 150;
  cfg.max_depth = 4;
  GbdtRegressor model(cfg);
  model.fit(x, y);
  double err = 0.0;
  for (std::size_t i = 0; i < 100; ++i) {
    err += std::fabs(model.predict(x.row(i)) - y[i]);
  }
  EXPECT_LT(err / 100.0, 1.5);  // y spans roughly [-10, 30]
}

TEST(GbdtRegressor, ImportanceIdentifiesInformativeFeature) {
  Rng rng(3);
  FeatureMatrix x(400, 3);
  std::vector<double> y(400);
  for (std::size_t i = 0; i < 400; ++i) {
    for (std::size_t f = 0; f < 3; ++f) x.at(i, f) = rng.uniform();
    y[i] = 50.0 * x.at(i, 1);  // only feature 1 matters
  }
  GbdtConfig cfg;
  cfg.n_estimators = 50;
  GbdtRegressor model(cfg);
  model.fit(x, y);
  const auto imp = model.feature_importance();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[1], 0.9);
  EXPECT_NEAR(imp[0] + imp[1] + imp[2], 1.0, 1e-9);
}

TEST(GbdtRegressor, ConstantTargetPredictsConstant) {
  FeatureMatrix x(50, 2);
  std::vector<double> y(50, 42.0);
  GbdtConfig cfg;
  cfg.n_estimators = 10;
  GbdtRegressor model(cfg);
  model.fit(x, y);
  EXPECT_NEAR(model.predict(x.row(0)), 42.0, 1e-6);
}

TEST(GbdtClassifier, SeparatesThreeClasses) {
  Rng rng(4);
  FeatureMatrix x(600, 2);
  std::vector<int> y(600);
  for (std::size_t i = 0; i < 600; ++i) {
    const int c = static_cast<int>(i % 3);
    x.at(i, 0) = c * 10.0 + rng.normal(0.0, 1.0);
    x.at(i, 1) = rng.normal(0.0, 1.0);
    y[i] = c;
  }
  GbdtConfig cfg;
  cfg.n_estimators = 30;
  cfg.max_depth = 3;
  GbdtClassifier model(cfg);
  model.fit(x, y, 3);
  int correct = 0;
  for (std::size_t i = 0; i < 600; ++i) {
    if (model.predict(x.row(i)) == y[i]) ++correct;
  }
  EXPECT_GT(correct, 570);
  const auto scores = model.decision_function(x.row(0));
  EXPECT_EQ(scores.size(), 3u);
}

TEST(GbdtClassifier, ImbalancedPriorRespected) {
  // 95% class 0 with useless features: prediction should be class 0.
  Rng rng(5);
  FeatureMatrix x(200, 1);
  std::vector<int> y(200, 0);
  for (std::size_t i = 0; i < 200; ++i) x.at(i, 0) = rng.uniform();
  for (std::size_t i = 0; i < 10; ++i) y[i] = 1;
  GbdtConfig cfg;
  cfg.n_estimators = 5;
  GbdtClassifier model(cfg);
  model.fit(x, y, 2);
  int zeros = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    if (model.predict(x.row(i)) == 0) ++zeros;
  }
  EXPECT_GT(zeros, 40);
}

// ---------- Random Forest ----------

TEST(RandomForest, RegressionBeatsMeanBaseline) {
  Rng rng(6);
  FeatureMatrix x(500, 2);
  std::vector<double> y(500);
  double ysum = 0.0;
  for (std::size_t i = 0; i < 500; ++i) {
    x.at(i, 0) = rng.uniform(0.0, 10.0);
    x.at(i, 1) = rng.uniform(0.0, 10.0);
    y[i] = 3.0 * x.at(i, 0) + x.at(i, 1);
    ysum += y[i];
  }
  const double ymean = ysum / 500.0;
  ForestConfig cfg;
  cfg.n_trees = 30;
  RandomForestRegressor model(cfg);
  model.fit(x, y);
  double model_err = 0.0, mean_err = 0.0;
  for (std::size_t i = 0; i < 200; ++i) {
    model_err += std::fabs(model.predict(x.row(i)) - y[i]);
    mean_err += std::fabs(ymean - y[i]);
  }
  EXPECT_LT(model_err, mean_err * 0.35);
}

TEST(RandomForest, ClassifierMajorityOnSeparableData) {
  Rng rng(7);
  FeatureMatrix x(300, 2);
  std::vector<int> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    const int c = static_cast<int>(i % 2);
    x.at(i, 0) = c == 0 ? rng.normal(-3.0, 1.0) : rng.normal(3.0, 1.0);
    x.at(i, 1) = rng.normal(0.0, 1.0);
    y[i] = c;
  }
  ForestConfig cfg;
  cfg.n_trees = 20;
  RandomForestClassifier model(cfg);
  model.fit(x, y, 2);
  int correct = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    if (model.predict(x.row(i)) == y[i]) ++correct;
  }
  EXPECT_GT(correct, 280);
}

TEST(RandomForest, DeterministicGivenSeed) {
  Rng rng(8);
  FeatureMatrix x(100, 2);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x.at(i, 0) = rng.uniform();
    x.at(i, 1) = rng.uniform();
    y[i] = x.at(i, 0);
  }
  ForestConfig cfg;
  cfg.n_trees = 10;
  RandomForestRegressor a(cfg), b(cfg);
  a.fit(x, y);
  b.fit(x, y);
  EXPECT_DOUBLE_EQ(a.predict(x.row(3)), b.predict(x.row(3)));
}

// ---------- KNN ----------

TEST(Knn, ExactOnWellSeparatedClusters) {
  FeatureMatrix x(40, 2);
  std::vector<double> y(40);
  std::vector<int> yc(40);
  Rng rng(9);
  for (std::size_t i = 0; i < 40; ++i) {
    const bool left = i < 20;
    x.at(i, 0) = (left ? -10.0 : 10.0) + rng.normal(0.0, 0.5);
    x.at(i, 1) = rng.normal(0.0, 0.5);
    y[i] = left ? 100.0 : 500.0;
    yc[i] = left ? 0 : 1;
  }
  KnnRegressor reg(KnnConfig{.k = 5});
  reg.fit(x, y);
  const std::vector<double> q_left{-10.0, 0.0}, q_right{10.0, 0.0};
  EXPECT_NEAR(reg.predict(q_left), 100.0, 1e-9);
  EXPECT_NEAR(reg.predict(q_right), 500.0, 1e-9);

  KnnClassifier cls(KnnConfig{.k = 5});
  cls.fit(x, yc, 2);
  EXPECT_EQ(cls.predict(q_left), 0);
  EXPECT_EQ(cls.predict(q_right), 1);
}

TEST(Knn, StandardizationMakesScalesComparable) {
  // Feature 0 has huge scale but is noise; feature 1 is informative.
  Rng rng(10);
  FeatureMatrix x(200, 2);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x.at(i, 0) = rng.uniform(0.0, 1e6);
    x.at(i, 1) = i < 100 ? 0.0 : 1.0;
    y[i] = i < 100 ? 10.0 : 20.0;
  }
  KnnRegressor reg(KnnConfig{.k = 3});
  reg.fit(x, y);
  const std::vector<double> q{5e5, 1.0};
  EXPECT_NEAR(reg.predict(q), 20.0, 2.0);
}

TEST(Knn, MaxTrainSubsamplingStillWorks) {
  Rng rng(11);
  FeatureMatrix x(1000, 1);
  std::vector<double> y(1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    x.at(i, 0) = static_cast<double>(i);
    y[i] = x.at(i, 0) < 500.0 ? 1.0 : 2.0;
  }
  KnnRegressor reg(KnnConfig{.k = 5, .max_train = 100});
  reg.fit(x, y);
  const std::vector<double> q{100.0};
  EXPECT_NEAR(reg.predict(q), 1.0, 0.5);
}

TEST(Knn, EmptyModelPredictsZero) {
  KnnRegressor reg;
  const std::vector<double> q{1.0};
  EXPECT_EQ(reg.predict(q), 0.0);
}

// ---------- Ordinary Kriging ----------

TEST(Kriging, InterpolatesSmoothField) {
  Rng rng(12);
  FeatureMatrix x(150, 2);
  std::vector<double> y(150);
  const auto field = [](double a, double b) {
    return 100.0 + 50.0 * std::sin(a / 20.0) + 30.0 * std::cos(b / 15.0);
  };
  for (std::size_t i = 0; i < 150; ++i) {
    x.at(i, 0) = rng.uniform(0.0, 100.0);
    x.at(i, 1) = rng.uniform(0.0, 100.0);
    y[i] = field(x.at(i, 0), x.at(i, 1));
  }
  OrdinaryKriging ok;
  ok.fit(x, y);
  double err = 0.0;
  int n = 0;
  for (double a = 10.0; a < 90.0; a += 20.0) {
    for (double b = 10.0; b < 90.0; b += 20.0) {
      const std::vector<double> q{a, b};
      err += std::fabs(ok.predict(q) - field(a, b));
      ++n;
    }
  }
  EXPECT_LT(err / n, 15.0);  // field spans ~160 units
}

TEST(Kriging, RejectsNonSpatialFeatures) {
  FeatureMatrix x(10, 3);
  std::vector<double> y(10, 1.0);
  OrdinaryKriging ok;
  EXPECT_THROW(ok.fit(x, y), std::invalid_argument);
}

TEST(Kriging, VariogramIsMonotoneNondecreasing) {
  Rng rng(13);
  FeatureMatrix x(60, 2);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x.at(i, 0) = rng.uniform(0.0, 50.0);
    x.at(i, 1) = rng.uniform(0.0, 50.0);
    y[i] = x.at(i, 0);
  }
  OrdinaryKriging ok;
  ok.fit(x, y);
  EXPECT_GE(ok.sill(), 0.0);
  EXPECT_GE(ok.range(), 0.0);
}

TEST(Kriging, DegenerateFewPointsFallsBackToMean) {
  FeatureMatrix x(2, 2);
  x.at(0, 0) = 0.0;
  x.at(1, 0) = 1.0;
  std::vector<double> y{10.0, 20.0};
  OrdinaryKriging ok;
  ok.fit(x, y);
  const std::vector<double> q{0.5, 0.5};
  EXPECT_GT(ok.predict(q), 5.0);
  EXPECT_LT(ok.predict(q), 25.0);
}

// ---------- Harmonic Mean ----------

TEST(HarmonicMean, KnownValue) {
  const std::vector<double> hist{100.0, 400.0};
  HarmonicMeanPredictor hm(2);
  // HM(100, 400) = 2 / (1/100 + 1/400) = 160.
  EXPECT_NEAR(hm.predict_next(hist), 160.0, 1e-9);
}

TEST(HarmonicMean, WindowLimitsHistory) {
  const std::vector<double> hist{1.0, 1.0, 1.0, 200.0, 200.0};
  HarmonicMeanPredictor hm(2);
  EXPECT_NEAR(hm.predict_next(hist), 200.0, 1e-9);
}

TEST(HarmonicMean, ZeroObservationsClampedToFloor) {
  const std::vector<double> hist{0.0, 0.0};
  HarmonicMeanPredictor hm(2);
  EXPECT_NEAR(hm.predict_next(hist, 1.0), 1.0, 1e-9);
}

TEST(HarmonicMean, SubFloorPositiveObservationsNotClamped) {
  // Regression: a dead-zone history of legitimate 0.5 Mbps samples must
  // predict ~0.5, not be silently clamped up to the floor (1.0).
  const std::vector<double> hist{0.5, 0.5, 0.5};
  HarmonicMeanPredictor hm(3);
  EXPECT_NEAR(hm.predict_next(hist, 1.0), 0.5, 1e-12);
}

TEST(HarmonicMean, MixedZeroAndSubFloorUsesBoth) {
  // HM over {floor-substituted 1.0, real 0.5} = 2 / (1/1 + 1/0.5) = 2/3.
  const std::vector<double> hist{0.0, 0.5};
  HarmonicMeanPredictor hm(2);
  EXPECT_NEAR(hm.predict_next(hist, 1.0), 2.0 / 3.0, 1e-12);
}

TEST(HarmonicMean, TraceFirstElementSeeded) {
  const std::vector<double> trace{10.0, 20.0, 30.0};
  HarmonicMeanPredictor hm(5);
  const auto preds = hm.predict_trace(trace);
  ASSERT_EQ(preds.size(), 3u);
  EXPECT_NEAR(preds[0], 10.0, 1e-9);
  EXPECT_NEAR(preds[1], 10.0, 1e-9);  // HM of {10}
}

TEST(HarmonicMean, DominatedByLowValues) {
  const std::vector<double> hist{1000.0, 10.0};
  HarmonicMeanPredictor hm(2);
  EXPECT_LT(hm.predict_next(hist), 50.0);  // conservative after a dip
}

// ---------- LU solver ----------

TEST(LuSolver, SolvesRandomSystems) {
  Rng rng(14);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 8;
    std::vector<double> a(n * n);
    std::vector<double> x_true(n);
    for (auto& v : a) v = rng.normal(0.0, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      a[i * n + i] += 5.0;  // diagonally dominant => well-conditioned
      x_true[i] = rng.normal(0.0, 1.0);
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * x_true[j];
    }
    LuSolver lu;
    ASSERT_TRUE(lu.factorize(a, n));
    lu.solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(b[i], x_true[i], 1e-9);
    }
  }
}

TEST(LuSolver, DetectsSingularMatrix) {
  // Two identical rows.
  std::vector<double> a{1.0, 2.0, 1.0, 2.0};
  LuSolver lu;
  EXPECT_FALSE(lu.factorize(a, 2));
  EXPECT_FALSE(lu.ok());
}

TEST(LuSolver, HandlesPermutationMatrix) {
  // Anti-diagonal: requires pivoting.
  std::vector<double> a{0.0, 1.0, 1.0, 0.0};
  LuSolver lu;
  ASSERT_TRUE(lu.factorize(a, 2));
  std::vector<double> b{3.0, 7.0};
  lu.solve(b);
  EXPECT_NEAR(b[0], 7.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

// ---------- latent-bug regressions ----------

TEST(GradientTree, BinnedPredictMatchesRawPredict) {
  Rng rng(321);
  FeatureMatrix x(300, 4);
  std::vector<double> y(300), hess(300, 1.0);
  for (std::size_t i = 0; i < 300; ++i) {
    for (std::size_t f = 0; f < 4; ++f) x.at(i, f) = rng.uniform(-5.0, 5.0);
    y[i] = std::sin(x.at(i, 0)) + 0.5 * x.at(i, 2);
  }
  BinMapper mapper;
  mapper.fit(x, 32);
  const auto codes = mapper.encode(x);
  std::vector<std::size_t> idx(300);
  for (std::size_t i = 0; i < 300; ++i) idx[i] = i;

  GradientTree tree;
  TreeConfig cfg;
  cfg.max_depth = 5;
  tree.fit(codes, mapper, y, hess, idx, cfg);

  for (std::size_t i = 0; i < 300; ++i) {
    const std::span<const std::uint16_t> row(&codes[i * 4], 4);
    ASSERT_EQ(tree.predict(x.row(i)), tree.predict_binned(row)) << "row " << i;
  }
}

TEST(GbdtRegressor, EmptyTrainingSetIsANoop) {
  FeatureMatrix x(0, 3);
  GbdtConfig cfg;
  cfg.n_estimators = 5;
  cfg.subsample = 0.5;  // row_sample(0 rows) must return empty, not crash
  GbdtRegressor model(cfg);
  model.fit(x, {});
  const std::vector<double> q{1.0, 2.0, 3.0};
  EXPECT_EQ(model.predict(q), 0.0);
}

TEST(GbdtClassifier, EmptyTrainingSetIsANoop) {
  FeatureMatrix x(0, 3);
  GbdtConfig cfg;
  cfg.n_estimators = 5;
  GbdtClassifier model(cfg);
  model.fit(x, {}, 3);
  const std::vector<double> q{0.0, 0.0, 0.0};
  const int c = model.predict(q);
  EXPECT_GE(c, 0);
  EXPECT_LT(c, 3);
}

TEST(Kriging, EmptyTrainingSetFallsBackToZeroMean) {
  OrdinaryKriging ok;
  FeatureMatrix x(0, 2);
  EXPECT_NO_THROW(ok.fit(x, {}));
  const std::vector<double> q{44.98, -93.26};
  EXPECT_EQ(ok.predict(q), 0.0);
}

TEST(RandomForestRegressor, EmptyTrainingSetIsANoop) {
  ForestConfig cfg;
  cfg.n_trees = 3;
  RandomForestRegressor model(cfg);
  FeatureMatrix x(0, 2);
  model.fit(x, {});
  const std::vector<double> q{1.0, 2.0};
  EXPECT_EQ(model.predict(q), 0.0);
}

}  // namespace
}  // namespace lumos::ml

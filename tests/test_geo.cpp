// Unit and property tests for lumos::geo — projections, pixelization,
// distances, bearings, the local tangent frame, UE-panel angles, and grids.
#include <gtest/gtest.h>

#include <cmath>

#include "geo/angles.h"
#include "geo/coordinates.h"
#include "geo/grid.h"
#include "geo/local_frame.h"

namespace lumos::geo {
namespace {

constexpr double kTol = 1e-9;

TEST(Projection, OriginMapsToWorldCenter) {
  const WorldCoord wc = project({0.0, 0.0});
  EXPECT_NEAR(wc.x, 128.0, kTol);
  EXPECT_NEAR(wc.y, 128.0, kTol);
}

TEST(Projection, LongitudeIsLinearInX) {
  EXPECT_NEAR(project({0.0, 90.0}).x, 192.0, kTol);
  EXPECT_NEAR(project({0.0, -90.0}).x, 64.0, kTol);
  EXPECT_NEAR(project({0.0, -180.0}).x, 0.0, kTol);
}

TEST(Projection, NorthIsSmallerY) {
  EXPECT_LT(project({45.0, 0.0}).y, project({0.0, 0.0}).y);
  EXPECT_GT(project({-45.0, 0.0}).y, project({0.0, 0.0}).y);
}

TEST(Projection, ClampsPolarLatitudes) {
  const WorldCoord wc = project({89.9999, 0.0});
  EXPECT_GE(wc.y, 0.0);
  EXPECT_LE(wc.y, 256.0);
}

TEST(Projection, RoundTripMinneapolis) {
  const LatLon mpls{44.9778, -93.2650};
  const LatLon back = unproject(project(mpls));
  EXPECT_NEAR(back.lat_deg, mpls.lat_deg, 1e-9);
  EXPECT_NEAR(back.lon_deg, mpls.lon_deg, 1e-9);
}

class ProjectionRoundTrip
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ProjectionRoundTrip, IsLossless) {
  const auto [lat, lon] = GetParam();
  const LatLon back = unproject(project({lat, lon}));
  EXPECT_NEAR(back.lat_deg, lat, 1e-8);
  EXPECT_NEAR(back.lon_deg, lon, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProjectionRoundTrip,
    ::testing::Values(std::pair{0.0, 0.0}, std::pair{44.98, -93.26},
                      std::pair{-33.86, 151.21}, std::pair{60.17, 24.94},
                      std::pair{-54.8, -68.3}, std::pair{80.0, 179.5},
                      std::pair{-80.0, -179.5}, std::pair{1.29, 103.85}));

TEST(Pixelize, Zoom17ResolutionNearMinneapolisIsAboutOneMeter) {
  const double mpp = meters_per_pixel(44.98, 17);
  EXPECT_GT(mpp, 0.5);
  EXPECT_LT(mpp, 1.2);  // paper quotes 0.99-1.19 m over its areas
}

TEST(Pixelize, EquatorZoom0IsWholeEarth) {
  // 256 pixels cover the full equator at zoom 0.
  const double mpp = meters_per_pixel(0.0, 0);
  EXPECT_NEAR(mpp * 256.0, 2.0 * kPi * kEarthRadiusM, 1.0);
}

TEST(Pixelize, NearbyPointsShareAPixel) {
  // Start from a pixel center so a 5 cm move cannot cross the boundary.
  const LatLon a = pixel_center(pixelize({44.9778, -93.2650}, 17));
  const LatLon b = destination(a, 90.0, 0.05);  // 5 cm east
  EXPECT_EQ(pixelize(a, 17), pixelize(b, 17));
}

TEST(Pixelize, DistantPointsDiffer) {
  const LatLon a{44.9778, -93.2650};
  const LatLon b = destination(a, 90.0, 50.0);
  EXPECT_NE(pixelize(a, 17), pixelize(b, 17));
}

TEST(Pixelize, PixelCenterRoundTrips) {
  const PixelCoord px = pixelize({44.9778, -93.2650}, 17);
  const PixelCoord back = pixelize(pixel_center(px), 17);
  EXPECT_EQ(px, back);
}

TEST(Pixelize, HigherZoomRefines) {
  const LatLon p{44.9778, -93.2650};
  const PixelCoord z17 = pixelize(p, 17);
  const PixelCoord z18 = pixelize(p, 18);
  EXPECT_EQ(z17.x, z18.x / 2);
  EXPECT_EQ(z17.y, z18.y / 2);
}

TEST(Haversine, ZeroForIdenticalPoints) {
  EXPECT_NEAR(haversine_m({45.0, -93.0}, {45.0, -93.0}), 0.0, kTol);
}

TEST(Haversine, OneDegreeLatitudeIsAbout111Km) {
  const double d = haversine_m({44.0, -93.0}, {45.0, -93.0});
  EXPECT_NEAR(d, 111000.0, 1000.0);
}

TEST(Haversine, IsSymmetric) {
  const LatLon a{44.98, -93.26}, b{44.88, -93.20};
  EXPECT_NEAR(haversine_m(a, b), haversine_m(b, a), 1e-9);
}

TEST(Bearing, CardinalDirections) {
  const LatLon o{45.0, -93.0};
  EXPECT_NEAR(bearing_deg(o, destination(o, 0.0, 100.0)), 0.0, 0.1);
  EXPECT_NEAR(bearing_deg(o, destination(o, 90.0, 100.0)), 90.0, 0.1);
  EXPECT_NEAR(bearing_deg(o, destination(o, 180.0, 100.0)), 180.0, 0.1);
  EXPECT_NEAR(bearing_deg(o, destination(o, 270.0, 100.0)), 270.0, 0.1);
}

class DestinationRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(DestinationRoundTrip, DistanceAndBearingRecovered) {
  const double bearing = GetParam();
  const LatLon o{44.98, -93.26};
  const LatLon d = destination(o, bearing, 250.0);
  EXPECT_NEAR(haversine_m(o, d), 250.0, 0.01);
  EXPECT_NEAR(angular_distance(bearing_deg(o, d), bearing), 0.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(BearingSweep, DestinationRoundTrip,
                         ::testing::Values(0.0, 30.0, 45.0, 90.0, 135.0,
                                           180.0, 225.0, 270.0, 315.0,
                                           359.0));

TEST(Angles, Norm360) {
  EXPECT_NEAR(norm360(370.0), 10.0, kTol);
  EXPECT_NEAR(norm360(-10.0), 350.0, kTol);
  EXPECT_NEAR(norm360(720.0), 0.0, kTol);
  EXPECT_NEAR(norm360(359.9), 359.9, kTol);
}

TEST(Angles, Norm180) {
  EXPECT_NEAR(norm180(190.0), -170.0, kTol);
  EXPECT_NEAR(norm180(-190.0), 170.0, kTol);
  EXPECT_NEAR(norm180(180.0), 180.0, kTol);
}

TEST(Angles, AngularDistanceWrapsCorrectly) {
  EXPECT_NEAR(angular_distance(350.0, 10.0), 20.0, kTol);
  EXPECT_NEAR(angular_distance(0.0, 180.0), 180.0, kTol);
  EXPECT_NEAR(angular_distance(90.0, 90.0), 0.0, kTol);
}

TEST(Angles, PositionalAngleConventions) {
  // Panel faces north (0 deg); UE due north of panel is dead ahead.
  EXPECT_NEAR(positional_angle(0.0, 0.0), 0.0, kTol);
  // UE due south is directly behind.
  EXPECT_NEAR(positional_angle(0.0, 180.0), 180.0, kTol);
  EXPECT_NEAR(positional_angle(0.0, 90.0), 90.0, kTol);
}

TEST(Angles, MobilityAngleConventions) {
  // Paper Fig. 8: theta_m = 180 when moving head-on toward the panel face,
  // 0 when moving in the panel's facing direction (walking away).
  EXPECT_NEAR(mobility_angle(0.0, 180.0), 180.0, kTol);
  EXPECT_NEAR(mobility_angle(0.0, 0.0), 0.0, kTol);
  EXPECT_NEAR(mobility_angle(90.0, 270.0), 180.0, kTol);
}

TEST(Angles, PositionalSectors) {
  EXPECT_EQ(positional_sector(10.0, 0.0), 'F');
  EXPECT_EQ(positional_sector(170.0, 0.0), 'B');
  EXPECT_EQ(positional_sector(90.0, -1.0), 'L');
  EXPECT_EQ(positional_sector(90.0, 1.0), 'R');
}

TEST(LocalFrame, RoundTripsNearOrigin) {
  const LocalFrame frame({44.98, -93.26});
  const Vec2 p{123.4, -56.7};
  const Vec2 back = frame.to_local(frame.to_geo(p));
  EXPECT_NEAR(back.x, p.x, 1e-6);
  EXPECT_NEAR(back.y, p.y, 1e-6);
}

TEST(LocalFrame, DistancesMatchHaversine) {
  const LocalFrame frame({44.98, -93.26});
  const LatLon a = frame.to_geo({0.0, 0.0});
  const LatLon b = frame.to_geo({300.0, 400.0});
  EXPECT_NEAR(haversine_m(a, b), 500.0, 1.0);  // 3-4-5 triangle
}

TEST(LocalFrame, BearingOfCardinalVectors) {
  EXPECT_NEAR(bearing_of({0.0, 1.0}), 0.0, kTol);
  EXPECT_NEAR(bearing_of({1.0, 0.0}), 90.0, kTol);
  EXPECT_NEAR(bearing_of({0.0, -1.0}), 180.0, kTol);
  EXPECT_NEAR(bearing_of({-1.0, 0.0}), 270.0, kTol);
}

TEST(LocalFrame, UnitFromBearingInvertsBearingOf) {
  for (double deg = 0.0; deg < 360.0; deg += 15.0) {
    EXPECT_NEAR(bearing_of(unit_from_bearing(deg)), deg, 1e-9);
  }
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ((a + b), (Vec2{4.0, 1.0}));
  EXPECT_EQ((a - b), (Vec2{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Vec2{2.0, 4.0}));
  EXPECT_NEAR(dot(a, b), 1.0, kTol);
  EXPECT_NEAR(cross(a, b), -7.0, kTol);
  EXPECT_NEAR(length({3.0, 4.0}), 5.0, kTol);
}

TEST(Grid, CellAssignmentAndCenters) {
  const Grid g(2.0);
  EXPECT_EQ(g.cell_of({0.5, 0.5}), (GridCell{0, 0}));
  EXPECT_EQ(g.cell_of({2.5, -0.5}), (GridCell{1, -1}));
  EXPECT_EQ(g.cell_of({-0.1, -0.1}), (GridCell{-1, -1}));
  const Vec2 c = g.center_of({1, -1});
  EXPECT_NEAR(c.x, 3.0, kTol);
  EXPECT_NEAR(c.y, -1.0, kTol);
}

TEST(Grid, CenterIsInsideItsOwnCell) {
  const Grid g(2.0);
  for (int ix = -3; ix <= 3; ++ix) {
    for (int iy = -3; iy <= 3; ++iy) {
      const GridCell cell{ix, iy};
      EXPECT_EQ(g.cell_of(g.center_of(cell)), cell);
    }
  }
}

TEST(Grid, HashSpreadsNeighbors) {
  GridCellHash h;
  EXPECT_NE(h({0, 0}), h({0, 1}));
  EXPECT_NE(h({0, 0}), h({1, 0}));
  EXPECT_NE(h({1, 0}), h({0, 1}));
}

}  // namespace
}  // namespace lumos::geo

// Tests for the columnar (SoA) feature layer (DESIGN §11): the pre-binned
// BinnedMatrix training store (code equality with the row-major encode,
// uint8/uint16 width promotion, NaN missing-code routing), bit-identity of
// columnar-vs-row tree training and prediction, the serving-side
// ColumnStore + FlatForest/FlatClassifier columnar block kernels, and the
// Predictor's tier-packed columnar batch walk against predict_spans. The
// suite runs with LUMOS_THREADS pinned to 1 and 8 (CMake registrations):
// every equality here is a bit-identity contract, not a tolerance.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "core/lumos5g.h"
#include "data/column_store.h"
#include "data/dataset.h"
#include "data/features.h"
#include "ml/binned.h"
#include "ml/gbdt.h"
#include "ml/tree.h"
#include "serve/flat_model.h"
#include "serve/predictor.h"
#include "sim/areas.h"

namespace lumos {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::uint64_t bits(double x) noexcept { return std::bit_cast<std::uint64_t>(x); }

/// Random matrix with a deliberate mix of pathologies: NaN holes in some
/// columns, one constant column, one near-constant column.
ml::FeatureMatrix make_matrix(std::size_t rows, std::size_t cols,
                              unsigned seed) {
  ml::FeatureMatrix x(rows, cols);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto row = x.row(r);
    for (std::size_t f = 0; f < cols; ++f) {
      if (f == 0) {
        row[f] = 3.25;  // constant column
      } else if (f == 1 && r % 7 == 3) {
        row[f] = kNaN;  // NaN-pocked column
      } else {
        row[f] = rng.normal(0.0, 1.0);
      }
    }
  }
  return x;
}

const data::Dataset& airport_ds() {
  static const data::Dataset ds = [] {
    const sim::Area area = sim::make_airport();
    return sim::collect_area_dataset(area, /*walk_runs=*/6, 0, 4242);
  }();
  return ds;
}

const data::BuiltFeatures& lmc() {
  static const data::BuiltFeatures bf =
      data::build_features(airport_ds(), data::FeatureSetSpec::parse("L+M+C"));
  return bf;
}

// ---- BinnedMatrix: codes, widths, edge cases ------------------------------

TEST(BinnedMatrix, CodesMatchRowMajorEncode) {
  const auto x = make_matrix(512, 9, 11);
  ml::BinMapper mapper;
  mapper.fit(x, 64);
  const auto codes = mapper.encode(x);
  const auto binned = ml::BinnedMatrix::build(mapper, x);

  ASSERT_EQ(binned.rows(), x.rows());
  ASSERT_EQ(binned.cols(), x.cols());
  EXPECT_EQ(binned.missing_code(), mapper.missing_code());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t f = 0; f < x.cols(); ++f) {
      ASSERT_EQ(binned.code(r, f), codes[r * x.cols() + f])
          << "r=" << r << " f=" << f;
    }
  }
  // 64 bins + missing code 64 all fit a byte: every column stays narrow,
  // and the whole store is one byte per cell.
  for (std::size_t f = 0; f < x.cols(); ++f) EXPECT_TRUE(binned.narrow(f));
  EXPECT_EQ(binned.code_bytes(), x.rows() * x.cols());
}

TEST(BinnedMatrix, WideMapperPromotesToUint16) {
  // 300 quantile bins cannot fit uint8, so every non-trivial column must
  // be promoted — and the codes must still match the row-major encode.
  const auto x = make_matrix(2048, 4, 17);
  ml::BinMapper mapper;
  mapper.fit(x, 300);
  const auto codes = mapper.encode(x);
  const auto binned = ml::BinnedMatrix::build(mapper, x);

  bool any_wide = false;
  for (std::size_t f = 0; f < x.cols(); ++f) any_wide |= !binned.narrow(f);
  EXPECT_TRUE(any_wide);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t f = 0; f < x.cols(); ++f) {
      ASSERT_EQ(binned.code(r, f), codes[r * x.cols() + f]);
    }
  }
}

TEST(BinnedMatrix, ConstantColumnStaysNarrowSingleCode) {
  const auto x = make_matrix(256, 3, 23);
  ml::BinMapper mapper;
  mapper.fit(x, 128);
  const auto binned = ml::BinnedMatrix::build(mapper, x);
  // Column 0 is constant: one code everywhere, stored narrow even though
  // the mapper allows 128 bins.
  EXPECT_TRUE(binned.narrow(0));
  const std::uint16_t c0 = binned.code(0, 0);
  for (std::size_t r = 1; r < x.rows(); ++r) EXPECT_EQ(binned.code(r, 0), c0);
}

TEST(BinnedMatrix, MissingCodeAlonePromotesColumn) {
  // 256 real bins produce codes 0..255 (narrow-able), but the missing
  // code is 256 — a column containing NaN must be promoted to uint16,
  // while NaN-free columns under the same mapper stay narrow only if
  // their max code fits. The promotion rule is per column, driven purely
  // by the codes the column actually stores.
  ml::FeatureMatrix x(4096, 2);
  Rng rng(29);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    x.at(r, 0) = rng.normal(0.0, 1.0);
    x.at(r, 1) = (r % 13 == 5) ? kNaN : rng.normal(0.0, 1.0);
  }
  ml::BinMapper mapper;
  mapper.fit(x, 256);
  const auto binned = ml::BinnedMatrix::build(mapper, x);
  EXPECT_EQ(mapper.missing_code(), 256);
  EXPECT_FALSE(binned.narrow(1));  // holds code 256 somewhere
  for (std::size_t r = 0; r < x.rows(); ++r) {
    if (r % 13 == 5) {
      EXPECT_EQ(binned.code(r, 1), mapper.missing_code());
    }
  }
}

// ---- tree training: columnar bit-identical to the row path ----------------

TEST(ColumnarTreeFit, BitIdenticalToRowMajorFit) {
  const auto x = make_matrix(1500, 8, 31);
  ml::BinMapper mapper;
  mapper.fit(x, 64);
  const auto codes = mapper.encode(x);
  const auto binned = ml::BinnedMatrix::build(mapper, x);

  std::vector<double> grad(x.rows()), hess(x.rows(), 1.0);
  Rng rng(37);
  for (auto& g : grad) g = rng.normal(0.0, 2.0);
  std::vector<std::size_t> idx(x.rows());
  std::iota(idx.begin(), idx.end(), std::size_t{0});

  ml::TreeConfig cfg;
  cfg.max_depth = 6;
  ml::GradientTree row_tree, col_tree;
  row_tree.fit(codes, mapper, grad, hess, idx, cfg);
  col_tree.fit(binned, mapper, grad, hess, idx, cfg);

  ASSERT_EQ(row_tree.nodes().size(), col_tree.nodes().size());
  for (std::size_t i = 0; i < row_tree.nodes().size(); ++i) {
    const auto& a = row_tree.nodes()[i];
    const auto& b = col_tree.nodes()[i];
    EXPECT_EQ(a.feature, b.feature) << "node " << i;
    EXPECT_EQ(a.bin, b.bin) << "node " << i;
    EXPECT_EQ(bits(a.threshold), bits(b.threshold)) << "node " << i;
    EXPECT_EQ(bits(a.value), bits(b.value)) << "node " << i;
    EXPECT_EQ(a.left, b.left) << "node " << i;
    EXPECT_EQ(a.right, b.right) << "node " << i;
    EXPECT_EQ(a.default_left, b.default_left) << "node " << i;
  }
  ASSERT_EQ(row_tree.gains().size(), col_tree.gains().size());
  for (std::size_t i = 0; i < row_tree.gains().size(); ++i) {
    EXPECT_EQ(bits(row_tree.gains()[i]), bits(col_tree.gains()[i]));
  }
}

TEST(ColumnarTreeFit, BootstrapIndicesBitIdentical) {
  // Non-identity index sets (a forest's bootstrap sample) must take the
  // indirected accumulate path and still match the row fit exactly.
  const auto x = make_matrix(1000, 6, 41);
  ml::BinMapper mapper;
  mapper.fit(x, 32);
  const auto codes = mapper.encode(x);
  const auto binned = ml::BinnedMatrix::build(mapper, x);

  std::vector<double> grad(x.rows()), hess(x.rows(), 1.0);
  Rng grng(43);
  for (auto& g : grad) g = grng.normal(0.0, 1.0);
  std::vector<std::size_t> idx(x.rows());
  Rng irng(47);
  for (auto& i : idx) {
    i = static_cast<std::size_t>(irng.uniform_int(x.rows()));
  }

  ml::TreeConfig cfg;
  cfg.max_depth = 5;
  ml::GradientTree row_tree, col_tree;
  row_tree.fit(codes, mapper, grad, hess, idx, cfg);
  col_tree.fit(binned, mapper, grad, hess, idx, cfg);
  ASSERT_EQ(row_tree.nodes().size(), col_tree.nodes().size());
  for (std::size_t i = 0; i < row_tree.nodes().size(); ++i) {
    EXPECT_EQ(bits(row_tree.nodes()[i].value),
              bits(col_tree.nodes()[i].value));
    EXPECT_EQ(row_tree.nodes()[i].feature, col_tree.nodes()[i].feature);
  }
}

TEST(ColumnarTreeFit, NaNDefaultDirectionPreserved) {
  // Trees trained columnar must learn the same default branch for missing
  // values, and raw-row predict must route NaN the same way afterwards.
  const auto x = make_matrix(1200, 5, 53);
  ml::BinMapper mapper;
  mapper.fit(x, 64);
  const auto codes = mapper.encode(x);
  const auto binned = ml::BinnedMatrix::build(mapper, x);

  std::vector<double> grad(x.rows()), hess(x.rows(), 1.0);
  Rng rng(59);
  for (auto& g : grad) g = rng.normal(0.0, 1.0);
  std::vector<std::size_t> idx(x.rows());
  std::iota(idx.begin(), idx.end(), std::size_t{0});

  ml::TreeConfig cfg;
  ml::GradientTree row_tree, col_tree;
  row_tree.fit(codes, mapper, grad, hess, idx, cfg);
  col_tree.fit(binned, mapper, grad, hess, idx, cfg);

  bool any_default_left = false;
  for (std::size_t i = 0; i < row_tree.nodes().size(); ++i) {
    EXPECT_EQ(row_tree.nodes()[i].default_left,
              col_tree.nodes()[i].default_left);
    any_default_left |= col_tree.nodes()[i].default_left;
  }
  // The NaN-pocked column makes at least one learned-left split likely;
  // regardless, every all-NaN probe row must take identical branches.
  std::vector<double> probe(x.cols(), kNaN);
  EXPECT_EQ(bits(row_tree.predict(probe)), bits(col_tree.predict(probe)));
  (void)any_default_left;
}

TEST(ColumnarTreeFit, PredictBinnedMatchesRawPredict) {
  const auto x = make_matrix(800, 7, 61);
  ml::BinMapper mapper;
  mapper.fit(x, 64);
  const auto binned = ml::BinnedMatrix::build(mapper, x);

  std::vector<double> grad(x.rows()), hess(x.rows(), 1.0);
  Rng rng(67);
  for (auto& g : grad) g = rng.normal(0.0, 1.0);
  std::vector<std::size_t> idx(x.rows());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  ml::GradientTree tree;
  tree.fit(binned, mapper, grad, hess, idx, ml::TreeConfig{});

  std::vector<double> all(x.rows());
  tree.predict_binned_all(binned, all);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double raw = tree.predict(x.row(r));
    ASSERT_EQ(bits(raw), bits(tree.predict_binned(binned, r))) << "row " << r;
    ASSERT_EQ(bits(raw), bits(all[r])) << "row " << r;
  }
}

// ---- serving: ColumnStore + columnar flat-model kernels -------------------

TEST(ColumnStore, BlockViewsAndScatter) {
  data::ColumnStore s(100, 4);
  EXPECT_EQ(s.row_capacity(), 100u);
  EXPECT_EQ(s.cols(), 4u);
  const std::vector<double> row{1.0, 2.0, 3.0, 4.0};
  s.put_row(7, row);
  for (std::size_t f = 0; f < 4; ++f) {
    EXPECT_EQ(s.at(7, f), row[f]);
    EXPECT_EQ(s.col(f)[7], row[f]);
  }
  const auto block = s.block(5, 10);
  EXPECT_EQ(block.n_rows, 10u);
  EXPECT_EQ(block.col(2)[2], 3.0);  // store row 7 = block row 2
  const auto sub = block.rows(2, 3);
  EXPECT_EQ(sub.col(2)[0], 3.0);
}

TEST(ColumnarServe, FlatForestMatchesRowPredict) {
  ml::GbdtConfig cfg;
  cfg.n_estimators = 40;
  cfg.max_depth = 5;
  ml::GbdtRegressor model(cfg);
  model.fit(lmc().x, lmc().y_reg);
  const auto flat = serve::FlatForest::flatten(model);

  const auto cols = data::ColumnStore::from_matrix(lmc().x);
  std::vector<double> out(lmc().x.rows());
  flat.predict_columnar(cols.block(0, lmc().x.rows()), out);
  for (std::size_t r = 0; r < lmc().x.rows(); ++r) {
    ASSERT_EQ(bits(out[r]), bits(flat.predict(lmc().x.row(r)))) << "row " << r;
  }
}

TEST(ColumnarServe, FlatForestRoutesNaNIdentically) {
  ml::GbdtConfig cfg;
  cfg.n_estimators = 30;
  ml::GbdtRegressor model(cfg);
  model.fit(lmc().x, lmc().y_reg);
  const auto flat = serve::FlatForest::flatten(model);

  // Blank a different feature of every row so many distinct default
  // branches are exercised, including whole-row NaN.
  ml::FeatureMatrix holed(128, lmc().x.cols());
  for (std::size_t r = 0; r < holed.rows(); ++r) {
    const auto src = lmc().x.row(r);
    const auto dst = holed.row(r);
    for (std::size_t f = 0; f < holed.cols(); ++f) dst[f] = src[f];
    if (r + 1 == holed.rows()) {
      for (std::size_t f = 0; f < holed.cols(); ++f) dst[f] = kNaN;
    } else {
      dst[r % holed.cols()] = kNaN;
    }
  }
  const auto cols = data::ColumnStore::from_matrix(holed);
  std::vector<double> out(holed.rows());
  flat.predict_columnar(cols.block(0, holed.rows()), out);
  for (std::size_t r = 0; r < holed.rows(); ++r) {
    ASSERT_EQ(bits(out[r]), bits(flat.predict(holed.row(r)))) << "row " << r;
  }
}

TEST(ColumnarServe, FlatClassifierMatchesRowPredict) {
  ml::GbdtConfig cfg;
  cfg.n_estimators = 30;
  ml::GbdtClassifier model(cfg);
  model.fit(lmc().x, lmc().y_cls, data::kNumThroughputClasses);
  const auto flat = serve::FlatClassifier::flatten(model);

  const auto cols = data::ColumnStore::from_matrix(lmc().x);
  std::vector<int> out(lmc().x.rows());
  flat.predict_columnar(cols.block(0, lmc().x.rows()), out);
  for (std::size_t r = 0; r < lmc().x.rows(); ++r) {
    ASSERT_EQ(out[r], flat.predict(lmc().x.row(r))) << "row " << r;
  }
}

TEST(ColumnarServe, EmptyClassifierPredictsClassZero) {
  const serve::FlatClassifier empty;
  data::ColumnStore s(8, 2);
  std::vector<int> out(8, 99);
  empty.predict_columnar(s.block(0, 8), out);
  for (int c : out) EXPECT_EQ(c, 0);
}

// ---- Predictor: tier-packed columnar walk vs predict_spans ----------------

const core::Lumos5G& facade() {
  static const core::Lumos5G* m = [] {
    core::Lumos5GConfig cfg;
    cfg.feature_spec = data::FeatureSetSpec::parse("T+M+C");
    cfg.gbdt.n_estimators = 40;
    cfg.gbdt.max_depth = 5;
    auto* f = new core::Lumos5G(cfg);
    const auto ok = f->train(airport_ds());
    EXPECT_TRUE(ok.has_value());
    return f;
  }();
  return *m;
}

TEST(PredictorColumnar, MatchesPredictSpansAtEveryMinTier) {
  auto compiled = serve::Predictor::compile(facade());
  ASSERT_TRUE(compiled.has_value());
  const serve::Predictor& p = *compiled;

  // Windows of every usable shape: full windows, short windows (forcing
  // tier fallback), and an empty window (forcing the error path).
  const auto& ds = airport_ds();
  const auto runs = ds.runs();
  std::vector<std::vector<data::SampleRecord>> storage;
  for (const auto& run : runs) {
    for (std::size_t start = 0; start + 2 < run.size() && storage.size() < 120;
         start += 11) {
      std::vector<data::SampleRecord> w;
      const std::size_t len = 1 + (storage.size() % 9);
      for (std::size_t i = start; i < std::min(start + len, run.size()); ++i) {
        w.push_back(ds[run[i]]);
      }
      storage.push_back(std::move(w));
    }
  }
  storage.emplace_back();  // empty window
  std::vector<std::span<const data::SampleRecord>> windows;
  for (const auto& w : storage) windows.emplace_back(w);

  serve::PredictScratch scratch;
  scratch.reserve(windows.size(), p.max_width());

  for (std::size_t min_tier = 0; min_tier <= p.tier_specs().size() + 1;
       ++min_tier) {
    std::vector<Expected<core::Prediction>> row_out(
        windows.size(),
        Expected<core::Prediction>(Error{ErrorCode::kWindowUnusable, ""}));
    std::vector<Expected<core::Prediction>> col_out(
        windows.size(),
        Expected<core::Prediction>(Error{ErrorCode::kWindowUnusable, ""}));
    p.predict_spans(windows, row_out, min_tier);
    p.predict_spans_columnar(windows, col_out, scratch, min_tier);

    for (std::size_t i = 0; i < windows.size(); ++i) {
      ASSERT_EQ(row_out[i].has_value(), col_out[i].has_value())
          << "min_tier=" << min_tier << " window " << i;
      if (!row_out[i].has_value()) {
        EXPECT_EQ(row_out[i].error().code, col_out[i].error().code);
        continue;
      }
      EXPECT_EQ(bits(row_out[i]->throughput_mbps),
                bits(col_out[i]->throughput_mbps))
          << "min_tier=" << min_tier << " window " << i;
      EXPECT_EQ(row_out[i]->throughput_class, col_out[i]->throughput_class);
      EXPECT_EQ(row_out[i]->tier, col_out[i]->tier);
      EXPECT_EQ(row_out[i]->feature_group, col_out[i]->feature_group);
    }
  }
}

TEST(PredictorColumnar, ScratchIsReusableAcrossBatches) {
  auto compiled = serve::Predictor::compile(facade());
  ASSERT_TRUE(compiled.has_value());
  const serve::Predictor& p = *compiled;

  const auto& ds = airport_ds();
  const auto runs = ds.runs();
  std::vector<data::SampleRecord> w(
      ds.samples().begin() + static_cast<std::ptrdiff_t>(runs[0][4]),
      ds.samples().begin() + static_cast<std::ptrdiff_t>(runs[0][12]));
  const std::span<const data::SampleRecord> win{w};
  const std::vector<std::span<const data::SampleRecord>> windows{win, win};

  serve::PredictScratch scratch;
  scratch.reserve(8, p.max_width());
  std::vector<Expected<core::Prediction>> first(
      2, Expected<core::Prediction>(Error{ErrorCode::kWindowUnusable, ""}));
  std::vector<Expected<core::Prediction>> second = first;
  p.predict_spans_columnar(windows, first, scratch);
  p.predict_spans_columnar(windows, second, scratch);
  ASSERT_TRUE(first[0].has_value());
  EXPECT_EQ(bits(first[0]->throughput_mbps), bits(second[0]->throughput_mbps));
  EXPECT_EQ(bits(first[1]->throughput_mbps), bits(second[1]->throughput_mbps));
}

// ---- Dataset::reserve / append_all ----------------------------------------

TEST(DatasetReserve, AppendAllReservesOnce) {
  data::Dataset a;
  a.reserve(4);
  EXPECT_GE(a.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    data::SampleRecord r;
    r.throughput_mbps = static_cast<double>(i);
    a.append(r);
  }

  data::Dataset b;
  const auto& ds = airport_ds();
  for (std::size_t i = 0; i < 100; ++i) b.append(ds[i]);

  a.append_all(b);
  EXPECT_EQ(a.size(), 104u);
  EXPECT_GE(a.capacity(), 104u);
  EXPECT_EQ(a[0].throughput_mbps, 0.0);
  EXPECT_EQ(bits(a[4].throughput_mbps), bits(ds[0].throughput_mbps));
}

}  // namespace
}  // namespace lumos

// Robustness suite: fault injection -> validate/repair -> train -> predict.
// Exercises the full dirty-data path at impairment rates {0, 0.05, 0.2,
// 0.5}, checks determinism of every stage, and verifies the prediction
// fallback chain degrades gracefully instead of failing.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/lumos5g.h"
#include "data/csv.h"
#include "data/features.h"
#include "data/quality.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "sim/areas.h"
#include "sim/faults.h"

namespace lumos {
namespace {

using core::Lumos5G;
using core::Lumos5GConfig;
using data::Dataset;
using data::FeatureSetSpec;
using sim::FaultConfig;
using sim::FaultInjector;

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

::testing::AssertionResult records_identical(const data::SampleRecord& a,
                                             const data::SampleRecord& b) {
  if (a.area != b.area || a.trajectory_id != b.trajectory_id ||
      a.run_id != b.run_id || a.detected_activity != b.detected_activity ||
      a.radio_type != b.radio_type || a.cell_id != b.cell_id ||
      a.horizontal_handoff != b.horizontal_handoff ||
      a.vertical_handoff != b.vertical_handoff || a.pixel_x != b.pixel_x ||
      a.pixel_y != b.pixel_y) {
    return ::testing::AssertionFailure() << "non-double field differs";
  }
  const double* da[] = {&a.timestamp_s, &a.latitude, &a.longitude,
                        &a.gps_accuracy_m, &a.moving_speed_mps,
                        &a.compass_deg, &a.compass_accuracy,
                        &a.throughput_mbps, &a.lte_rsrp, &a.lte_rsrq,
                        &a.lte_rssi, &a.nr_ssrsrp, &a.nr_ssrsrq,
                        &a.nr_ssrssi, &a.ue_panel_distance_m, &a.theta_p_deg,
                        &a.theta_m_deg};
  const double* db[] = {&b.timestamp_s, &b.latitude, &b.longitude,
                        &b.gps_accuracy_m, &b.moving_speed_mps,
                        &b.compass_deg, &b.compass_accuracy,
                        &b.throughput_mbps, &b.lte_rsrp, &b.lte_rsrq,
                        &b.lte_rssi, &b.nr_ssrsrp, &b.nr_ssrsrq,
                        &b.nr_ssrssi, &b.ue_panel_distance_m, &b.theta_p_deg,
                        &b.theta_m_deg};
  for (std::size_t i = 0; i < std::size(da); ++i) {
    if (!same_bits(*da[i], *db[i])) {
      return ::testing::AssertionFailure()
             << "double field " << i << " differs: " << *da[i] << " vs "
             << *db[i];
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult datasets_identical(const Dataset& a,
                                              const Dataset& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto r = records_identical(a[i], b[i]);
    if (!r) return ::testing::AssertionFailure() << "row " << i << ": "
                                                 << r.message();
  }
  return ::testing::AssertionSuccess();
}

/// Small airport campaign shared by the pipeline tests.
const Dataset& base_ds() {
  static const Dataset ds = [] {
    return sim::collect_area_dataset(sim::make_airport(), /*walk_runs=*/3,
                                     /*drive_runs=*/0, /*seed=*/777);
  }();
  return ds;
}

Lumos5GConfig pipeline_config() {
  Lumos5GConfig cfg;
  cfg.feature_spec = FeatureSetSpec::parse("L+M+C");
  cfg.features.max_gap_s = 2.5;  // gap-aware windowing on
  cfg.gbdt.n_estimators = 25;
  return cfg;
}

// ---------- injector ----------

TEST(FaultInjector, RateZeroIsBitIdentical) {
  const FaultInjector inj(FaultConfig::uniform(0.0), 123);
  const Dataset out = inj.inject(base_ds());
  EXPECT_TRUE(datasets_identical(base_ds(), out));
}

TEST(FaultInjector, DeterministicForFixedSeed) {
  const FaultInjector inj(FaultConfig::uniform(0.2), 42);
  const Dataset a = inj.inject(base_ds());
  const Dataset b = inj.inject(base_ds());
  EXPECT_TRUE(datasets_identical(a, b));

  const FaultInjector other(FaultConfig::uniform(0.2), 43);
  const Dataset c = other.inject(base_ds());
  EXPECT_FALSE(datasets_identical(a, c));
}

TEST(FaultInjector, InjectsEveryConfiguredDefectClass) {
  const FaultInjector inj(FaultConfig::uniform(0.2), 7);
  const Dataset dirty = inj.inject(base_ds());
  EXPECT_LT(dirty.size(), base_ds().size() + base_ds().size() / 4);
  const auto rep = data::validate(dirty);
  EXPECT_GT(rep.nan_fields, 0u);            // GPS dropout / signal loss
  EXPECT_GT(rep.duplicate_timestamps, 0u);  // duplicated rows
  EXPECT_GT(rep.out_of_order, 0u);          // swapped rows
  EXPECT_GT(rep.timestamp_gaps, 0u);        // sample loss
  EXPECT_FALSE(rep.clean());
}

// ---------- validate / repair ----------

TEST(Quality, CleanDatasetValidatesClean) {
  const auto rep = data::validate(base_ds());
  EXPECT_TRUE(rep.clean()) << rep.describe();
  EXPECT_EQ(rep.n_samples, base_ds().size());
  EXPECT_GT(rep.n_runs, 0u);
}

TEST(Quality, RepairIsNoOpOnCleanData) {
  Dataset copy = base_ds();
  const auto sum = data::repair(copy);
  EXPECT_EQ(sum.total_repairs(), 0u);
  EXPECT_TRUE(datasets_identical(copy, base_ds()));
}

TEST(Quality, RepairRemovesInjectedDefects) {
  const FaultInjector inj(FaultConfig::uniform(0.2), 7);
  Dataset dirty = inj.inject(base_ds());
  const auto before = data::validate(dirty);
  const auto sum = data::repair(dirty);
  EXPECT_GT(sum.total_repairs(), 0u);
  const auto after = data::validate(dirty);
  // Everything except timestamp gaps is repairable; gaps (lost seconds)
  // remain and are handled by gap-aware windowing downstream.
  EXPECT_EQ(after.nan_fields, 0u) << after.describe();
  EXPECT_EQ(after.inf_fields, 0u);
  EXPECT_EQ(after.duplicate_timestamps, 0u);
  EXPECT_EQ(after.out_of_order, 0u);
  EXPECT_EQ(after.out_of_range, 0u);
  EXPECT_LT(after.total_defects(), before.total_defects());
}

TEST(Quality, RepairIsDeterministic) {
  const FaultInjector inj(FaultConfig::uniform(0.3), 11);
  Dataset a = inj.inject(base_ds());
  Dataset b = inj.inject(base_ds());
  // Identical impaired inputs must yield identical repair actions too.
  const auto sum_a = data::repair(a);
  const auto sum_b = data::repair(b);
  EXPECT_EQ(sum_a.total_repairs(), sum_b.total_repairs());
  EXPECT_TRUE(datasets_identical(a, b));
}

TEST(Quality, MaxRepairSpanDropsLongOutages) {
  // A 30 s GPS outage must not be bridged by interpolation.
  std::vector<data::SampleRecord> rows;
  for (int t = 0; t < 60; ++t) {
    data::SampleRecord s;
    s.area = "x";
    s.timestamp_s = t;
    s.latitude = 44.0;
    s.longitude = -93.0;
    s.throughput_mbps = 100.0;
    s.lte_rsrp = -90.0;
    s.lte_rsrq = -10.0;
    s.lte_rssi = -60.0;
    s.nr_ssrsrp = -80.0;
    s.nr_ssrsrq = -10.0;
    s.nr_ssrssi = -60.0;
    if (t >= 15 && t < 45) {
      s.latitude = data::SampleRecord::nan_value();
      s.longitude = data::SampleRecord::nan_value();
    }
    rows.push_back(s);
  }
  Dataset ds(std::move(rows));
  data::RepairPolicy policy;
  policy.max_repair_span_s = 5.0;
  const auto sum = data::repair(ds, policy);
  // Rows near the edges of the outage are within span of an observed fix
  // and get repaired; the deep middle of the outage is dropped.
  EXPECT_GT(sum.rows_dropped, 0u);
  EXPECT_GT(ds.size(), 30u);
  EXPECT_LT(ds.size(), 60u);
  EXPECT_EQ(data::validate(ds).nan_fields, 0u);
}

// ---------- end-to-end sweep ----------

/// Runs the full pipeline (optionally skipping injection entirely) and
/// returns the predictions over every usable window of the repaired data.
struct PipelineResult {
  std::vector<double> predictions;
  std::vector<int> tiers;
  std::size_t windows = 0;
};

PipelineResult run_pipeline(double rate, std::uint64_t seed,
                            bool skip_injection = false) {
  Dataset ds = skip_injection
                   ? base_ds()
                   : FaultInjector(FaultConfig::uniform(rate), seed)
                         .inject(base_ds());
  (void)data::repair(ds);  // end-to-end sweep: the summary is not under test

  const Lumos5GConfig cfg = pipeline_config();
  Lumos5G predictor(cfg);
  const auto trained = predictor.train(ds);
  EXPECT_TRUE(trained.has_value())
      << "rate " << rate << ": " << trained.error().describe();
  PipelineResult out;
  if (!trained) return out;

  const auto runs = ds.runs();
  for (const auto& run : runs) {
    if (run.size() < 6) continue;
    for (std::size_t i = 5; i < run.size(); i += 7) {
      std::vector<data::SampleRecord> window;
      for (std::size_t k = i - 5; k <= i; ++k) window.push_back(ds[run[k]]);
      ++out.windows;
      const auto pred = predictor.predict(window);
      if (pred) {
        EXPECT_TRUE(std::isfinite(pred->throughput_mbps));
        EXPECT_GE(pred->throughput_class, 0);
        EXPECT_LT(pred->throughput_class, 3);
        out.predictions.push_back(pred->throughput_mbps);
        out.tiers.push_back(pred->tier);
      } else {
        EXPECT_EQ(pred.error().code, ErrorCode::kWindowUnusable);
      }
    }
  }
  return out;
}

TEST(FaultSweep, PipelineSurvivesAllImpairmentRates) {
  for (const double rate : {0.0, 0.05, 0.2, 0.5}) {
    SCOPED_TRACE("rate=" + std::to_string(rate));
    const auto res = run_pipeline(rate, 99);
    EXPECT_GT(res.windows, 0u);
    // With the harmonic tail every window with some observed throughput is
    // answerable; require the vast majority of sampled windows to be.
    EXPECT_GT(res.predictions.size(), res.windows * 3 / 4);
  }
}

TEST(FaultSweep, RateZeroMatchesUninjectedPath) {
  const auto injected = run_pipeline(0.0, 99);
  const auto pristine = run_pipeline(0.0, 1234, /*skip_injection=*/true);
  ASSERT_EQ(injected.predictions.size(), pristine.predictions.size());
  for (std::size_t i = 0; i < injected.predictions.size(); ++i) {
    EXPECT_TRUE(same_bits(injected.predictions[i], pristine.predictions[i]))
        << "prediction " << i;
  }
  EXPECT_EQ(injected.tiers, pristine.tiers);
}

TEST(FaultSweep, SweepIsDeterministicForFixedSeed) {
  const auto a = run_pipeline(0.2, 5);
  const auto b = run_pipeline(0.2, 5);
  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  for (std::size_t i = 0; i < a.predictions.size(); ++i) {
    EXPECT_TRUE(same_bits(a.predictions[i], b.predictions[i]));
  }
  EXPECT_EQ(a.tiers, b.tiers);
}

TEST(FaultSweep, LowRatesMostlyAnsweredByModelTiers) {
  const auto res = run_pipeline(0.05, 21);
  ASSERT_GT(res.predictions.size(), 0u);
  std::size_t model_answers = 0;
  for (int t : res.tiers) {
    if (t < 2) ++model_answers;  // chain is [L+M+C, L+M]; 2 = harmonic tail
  }
  EXPECT_GT(model_answers, res.predictions.size() / 2);
}

// ---------- fallback chain ----------

TEST(Fallback, ChainDerivedFromPrimarySpec) {
  Lumos5GConfig cfg;
  cfg.feature_spec = FeatureSetSpec::parse("T+M+C");
  const Lumos5G predictor(cfg);
  const auto& tiers = predictor.tier_specs();
  ASSERT_EQ(tiers.size(), 3u);
  EXPECT_EQ(tiers[0].name(), "T+M+C");
  EXPECT_EQ(tiers[1].name(), "L+M+C");  // T dropped, L added
  EXPECT_EQ(tiers[2].name(), "L+M");    // then C dropped
}

TEST(Fallback, DisabledKeepsSingleTier) {
  Lumos5GConfig cfg;
  cfg.feature_spec = FeatureSetSpec::parse("T+M+C");
  cfg.fallback.enabled = false;
  const Lumos5G predictor(cfg);
  EXPECT_EQ(predictor.tier_specs().size(), 1u);
}

TEST(Fallback, MissingGeometryFallsToNextTier) {
  Lumos5GConfig cfg = pipeline_config();
  cfg.feature_spec = FeatureSetSpec::parse("T+M+C");
  Lumos5G predictor(cfg);
  ASSERT_TRUE(predictor.train(base_ds()).has_value());

  const auto runs = base_ds().runs();
  std::vector<data::SampleRecord> window;
  for (std::size_t i = 20; i < 26; ++i) {
    window.push_back(base_ds()[runs[0][i]]);
  }
  const auto full = predictor.predict(window);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->tier, 0);

  // Panel survey unavailable at query time: T features can't be built.
  for (auto& s : window) {
    s.ue_panel_distance_m = data::SampleRecord::nan_value();
    s.theta_p_deg = data::SampleRecord::nan_value();
    s.theta_m_deg = data::SampleRecord::nan_value();
  }
  const auto degraded = predictor.predict(window);
  ASSERT_TRUE(degraded.has_value());
  EXPECT_GT(degraded->tier, 0);
  EXPECT_EQ(degraded->feature_group, "L+M+C");
}

TEST(Fallback, GapInLagHistoryDropsCGroup) {
  Lumos5GConfig cfg = pipeline_config();
  Lumos5G predictor(cfg);
  ASSERT_TRUE(predictor.train(base_ds()).has_value());

  const auto runs = base_ds().runs();
  std::vector<data::SampleRecord> window;
  for (std::size_t i = 20; i < 26; ++i) {
    window.push_back(base_ds()[runs[0][i]]);
  }
  // A 10 s logging outage inside the lag history: the C tier must refuse
  // the window and the no-C tier answers.
  window[2].timestamp_s += 10.0;
  for (std::size_t k = 3; k < window.size(); ++k) {
    window[k].timestamp_s += 10.0;
  }
  const auto pred = predictor.predict(window);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->feature_group, "L+M");
}

TEST(Fallback, HarmonicTailServesOtherwiseUnusableWindow) {
  Lumos5GConfig cfg = pipeline_config();
  cfg.feature_spec = FeatureSetSpec::parse("C");
  cfg.fallback.harmonic_window = 3;
  Lumos5G predictor(cfg);
  ASSERT_TRUE(predictor.train(base_ds()).has_value());
  ASSERT_EQ(predictor.tier_specs().size(), 1u);  // C alone has no sub-tier

  std::vector<data::SampleRecord> window;
  for (int t = 0; t < 6; ++t) {
    data::SampleRecord s;
    s.timestamp_s = t * 20.0;  // every pair of samples straddles a gap
    s.throughput_mbps = 200.0;
    window.push_back(s);
  }
  const auto pred = predictor.predict(window);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->tier, 1);  // == tier_specs().size()
  EXPECT_EQ(pred->feature_group, "harmonic");
  EXPECT_NEAR(pred->throughput_mbps, 200.0, 1e-9);

  // With the tail disabled the same window is a typed error.
  cfg.fallback.harmonic_tail = false;
  Lumos5G strict(cfg);
  ASSERT_TRUE(strict.train(base_ds()).has_value());
  const auto err = strict.predict(window);
  ASSERT_FALSE(err.has_value());
  EXPECT_EQ(err.error().code, ErrorCode::kWindowUnusable);
}

TEST(Fallback, LoopAreaTrainsViaFallbackDespiteTPrimary) {
  // The Loop has no panel survey: a T+M+C primary cannot train there, but
  // the derived L+M+C / L+M tiers can.
  const Dataset loop =
      sim::collect_area_dataset(sim::make_loop(), /*walk_runs=*/1,
                                /*drive_runs=*/1, /*seed=*/31);
  Lumos5GConfig cfg = pipeline_config();
  cfg.feature_spec = FeatureSetSpec::parse("T+M+C");
  Lumos5G predictor(cfg);
  ASSERT_TRUE(predictor.train(loop).has_value());
  EXPECT_FALSE(predictor.tier_trained(0));
  EXPECT_TRUE(predictor.tier_trained(1));

  const auto runs = loop.runs();
  std::vector<data::SampleRecord> window;
  for (std::size_t i = 20; i < 26; ++i) window.push_back(loop[runs[0][i]]);
  const auto pred = predictor.predict(window);
  ASSERT_TRUE(pred.has_value());
  EXPECT_GT(pred->tier, 0);
}

// ---------- NaN-safe trees ----------

/// Synthetic regression data where one informative feature is missing at
/// random: y depends on x0, x1; x1 is NaN for a third of rows.
void make_nan_data(ml::FeatureMatrix& x, std::vector<double>& y) {
  Rng rng(2718);
  for (int i = 0; i < 400; ++i) {
    const double x0 = rng.uniform(0.0, 10.0);
    double x1 = rng.uniform(-5.0, 5.0);
    if (i % 3 == 0) x1 = data::SampleRecord::nan_value();
    const double target = 3.0 * x0 + (std::isnan(x1) ? 0.0 : 2.0 * x1) +
                          rng.normal(0.0, 0.1);
    const double row[] = {x0, x1, rng.uniform()};
    x.push_row(row);
    y.push_back(target);
  }
}

TEST(NanSafeTrees, GbdtHandlesNaNDeterministicallyAcrossThreads) {
  ml::FeatureMatrix x;
  std::vector<double> y;
  make_nan_data(x, y);

  ml::GbdtConfig cfg;
  cfg.n_estimators = 40;
  const auto fit_and_predict = [&](std::size_t threads) {
    ThreadPool::global().set_threads(threads);
    ml::GbdtRegressor reg(cfg);
    reg.fit(x, y);
    return reg.predict_all(x);
  };
  const auto p1 = fit_and_predict(1);
  const auto p8 = fit_and_predict(8);
  ThreadPool::global().set_threads(0);  // restore configured size
  ASSERT_EQ(p1.size(), p8.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    ASSERT_TRUE(same_bits(p1[i], p8[i])) << "row " << i;
    EXPECT_TRUE(std::isfinite(p1[i]));
  }
}

TEST(NanSafeTrees, ForestHandlesNaNDeterministicallyAcrossThreads) {
  ml::FeatureMatrix x;
  std::vector<double> y;
  make_nan_data(x, y);

  ml::ForestConfig cfg;
  cfg.n_trees = 20;
  const auto fit_and_predict = [&](std::size_t threads) {
    ThreadPool::global().set_threads(threads);
    ml::RandomForestRegressor reg(cfg);
    reg.fit(x, y);
    return reg.predict_all(x);
  };
  const auto p1 = fit_and_predict(1);
  const auto p8 = fit_and_predict(8);
  ThreadPool::global().set_threads(0);
  ASSERT_EQ(p1.size(), p8.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    ASSERT_TRUE(same_bits(p1[i], p8[i])) << "row " << i;
    EXPECT_TRUE(std::isfinite(p1[i]));
  }
}

TEST(NanSafeTrees, LearnsUsefulDefaultDirection) {
  // A model trained with NaN-aware routing should beat the constant
  // predictor on rows where the feature is missing.
  ml::FeatureMatrix x;
  std::vector<double> y;
  make_nan_data(x, y);
  ml::GbdtConfig cfg;
  cfg.n_estimators = 60;
  ml::GbdtRegressor reg(cfg);
  reg.fit(x, y);

  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double model_se = 0.0, const_se = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    if (!std::isnan(x.at(i, 1))) continue;
    const double err = reg.predict(x.row(i)) - y[i];
    model_se += err * err;
    const_se += (mean - y[i]) * (mean - y[i]);
  }
  EXPECT_LT(model_se, const_se * 0.5);
}

// ---------- CSV corruption ----------

TEST(CorruptCsv, FieldGarblingIsCountedAndDetected) {
  const std::string clean_path = ::testing::TempDir() + "faults_clean.csv";
  const std::string dirty_path = ::testing::TempDir() + "faults_dirty.csv";
  Dataset small;
  for (std::size_t i = 0; i < 50; ++i) small.append(base_ds()[i]);
  data::write_csv(small, clean_path);

  FaultConfig cfg;
  cfg.field_corruption = 0.3;
  const FaultInjector inj(cfg, 9);
  const std::size_t corrupted = inj.corrupt_csv(clean_path, dirty_path);
  EXPECT_GT(corrupted, 0u);
  EXPECT_EQ(inj.corrupt_csv(clean_path, dirty_path), corrupted);  // determinism

  try {
    (void)data::read_csv(dirty_path);
    FAIL() << "corrupt file parsed without error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("column '"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line "), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace lumos

// Sharded serving + SIMD columnar walk suite (DESIGN §12).
//
// Bit-identity contracts under test:
//   * FlatForest::predict_columnar at batch sizes that are NOT multiples
//     of the 64-row block (1, 63, 65, 127) matches per-row predict()
//     bitwise, with the vector kernel forced off and on;
//   * a Server with 8 shards answers the same response stream, bit for
//     bit, as a Server with 1 shard — including when every request lands
//     on one shard (the other seven stay empty all run);
//   * more shards than pool threads still drains every admitted ticket,
//     at any LUMOS_GRAIN floor;
//   * the allocation-free KNN/kriging columnar scans match their
//     row-major predict() twins bitwise.
//
// Every assertion must hold at any LUMOS_THREADS and with LUMOS_SIMD=off
// (the suite runs under those pins from CMake).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "core/lumos5g.h"
#include "data/column_store.h"
#include "data/features.h"
#include "ml/gbdt.h"
#include "ml/knn.h"
#include "ml/kriging.h"
#include "serve/flat_model.h"
#include "serve/predictor.h"
#include "serve/server.h"
#include "sim/areas.h"

namespace lumos::serve {
namespace {

std::uint64_t bits(double x) noexcept {
  return std::bit_cast<std::uint64_t>(x);
}

const data::Dataset& airport_ds() {
  static const data::Dataset ds = [] {
    const sim::Area area = sim::make_airport();
    return sim::collect_area_dataset(area, /*walk_runs=*/6, 0, 4242);
  }();
  return ds;
}

const data::BuiltFeatures& built() {
  static const data::BuiltFeatures b = data::build_features(
      airport_ds(), data::FeatureSetSpec::parse("L+M+C"), {});
  return b;
}

const ml::GbdtRegressor& gbdt() {
  static const ml::GbdtRegressor* model = [] {
    ml::GbdtConfig cfg;
    cfg.n_estimators = 40;
    cfg.max_depth = 5;
    auto* m = new ml::GbdtRegressor(cfg);
    m->fit(built().x, built().y_reg);
    return m;
  }();
  return *model;
}

const core::Lumos5G& facade() {
  static const core::Lumos5G* m = [] {
    core::Lumos5GConfig cfg;
    cfg.feature_spec = data::FeatureSetSpec::parse("T+M+C");
    cfg.gbdt.n_estimators = 40;
    cfg.gbdt.max_depth = 5;
    auto* f = new core::Lumos5G(cfg);
    const auto ok = f->train(airport_ds());
    EXPECT_TRUE(ok.has_value());
    return f;
  }();
  return *m;
}

Predictor make_predictor() {
  auto compiled = Predictor::compile(facade());
  EXPECT_TRUE(compiled.has_value());
  return std::move(*compiled);
}

/// `n` consecutive full-context samples from one walk run.
std::vector<data::SampleRecord> run_samples(std::size_t run_idx,
                                            std::size_t n,
                                            std::size_t offset = 10) {
  const auto& ds = airport_ds();
  const auto runs = ds.runs();
  EXPECT_LT(run_idx, runs.size());
  const auto& run = runs[run_idx % runs.size()];
  EXPECT_LE(offset + n, run.size());
  std::vector<data::SampleRecord> out;
  out.reserve(n);
  for (std::size_t i = offset; i < offset + n; ++i) out.push_back(ds[run[i]]);
  return out;
}

void expect_same_response(const Response& a, const Response& b) {
  EXPECT_EQ(a.ticket, b.ticket);
  EXPECT_EQ(a.ue_id, b.ue_id);
  EXPECT_EQ(a.min_tier, b.min_tier);
  ASSERT_EQ(a.result.has_value(), b.result.has_value());
  if (!a.result.has_value()) {
    EXPECT_EQ(a.result.error().code, b.result.error().code);
    return;
  }
  EXPECT_EQ(bits(a.result->throughput_mbps), bits(b.result->throughput_mbps));
  EXPECT_EQ(a.result->throughput_class, b.result->throughput_class);
  EXPECT_EQ(a.result->tier, b.result->tier);
}

// ---------- columnar walk: tail sizes, scalar vs SIMD ----------

// Batch sizes straddling the 64-row block and the vector width: 1 (pure
// tail), 63 (one short block), 65 (full block + 1-row tail), 127 (block +
// 63 tail). Each must match per-row predict() bitwise with the vector
// kernel forced off and (where the build has one) on.
TEST(ShardSimd, ColumnarMatchesRowPredictAtTailSizes) {
  const FlatForest flat = FlatForest::flatten(gbdt());
  const data::ColumnStore cols = data::ColumnStore::from_matrix(built().x);
  const bool was_enabled = simd::enabled();
  for (const bool use_simd : {false, true}) {
    simd::set_enabled(use_simd);
    for (const std::size_t n : {std::size_t{1}, std::size_t{63},
                                std::size_t{65}, std::size_t{127}}) {
      ASSERT_LE(n, built().x.rows());
      std::vector<double> out(n);
      flat.predict_columnar(cols.block(0, n), out);
      for (std::size_t r = 0; r < n; ++r) {
        EXPECT_EQ(bits(out[r]), bits(flat.predict(built().x.row(r))))
            << "row " << r << " of " << n << " simd=" << use_simd;
      }
    }
  }
  simd::set_enabled(was_enabled);
}

// The two kernels against each other over a larger slab, so a divergence
// anywhere in the block interior (not just the tails) would surface.
TEST(ShardSimd, ScalarAndVectorWalksBitIdentical) {
  const FlatForest flat = FlatForest::flatten(gbdt());
  const std::size_t n = std::min<std::size_t>(1000, built().x.rows());
  const data::ColumnStore cols = data::ColumnStore::from_matrix(built().x);
  const bool was_enabled = simd::enabled();
  std::vector<double> scalar_out(n);
  simd::set_enabled(false);
  flat.predict_columnar(cols.block(0, n), scalar_out);
  std::vector<double> simd_out(n);
  simd::set_enabled(true);
  flat.predict_columnar(cols.block(0, n), simd_out);
  simd::set_enabled(was_enabled);
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_EQ(bits(scalar_out[r]), bits(simd_out[r])) << "row " << r;
  }
}

// ---------- sharded server vs single shard ----------

/// Drives `samples` through a server (UE id = sample index % n_ues,
/// stepping every `batch` submissions) and returns the response stream in
/// arrival order.
std::vector<Response> drive(Server& server, ManualClock& clock,
                            const std::vector<data::SampleRecord>& samples,
                            std::size_t n_ues, std::size_t batch) {
  std::vector<Response> out;
  std::size_t i = 0;
  for (const auto& s : samples) {
    const auto ticket = server.submit({i % n_ues, s, 0});
    EXPECT_TRUE(ticket.has_value());
    if (++i % batch == 0) {
      clock.advance_ms(1'000);
      for (auto& r : server.step()) out.push_back(std::move(r));
    }
  }
  for (auto& r : server.drain()) out.push_back(std::move(r));
  return out;
}

ServerConfig shard_cfg(std::size_t num_shards) {
  ServerConfig cfg;
  cfg.queue_capacity = 64;
  cfg.max_batch = 16;
  cfg.num_shards = num_shards;
  return cfg;
}

TEST(ShardServer, EightShardsMatchOneShardBitwise) {
  const auto samples = run_samples(0, 48);
  ManualClock clock1, clock8;
  Server one(make_predictor(), shard_cfg(1), clock1);
  Server eight(make_predictor(), shard_cfg(8), clock8);
  EXPECT_EQ(one.n_shards(), 1u);
  EXPECT_EQ(eight.n_shards(), 8u);
  const auto r1 = drive(one, clock1, samples, /*n_ues=*/6, /*batch=*/12);
  const auto r8 = drive(eight, clock8, samples, /*n_ues=*/6, /*batch=*/12);
  ASSERT_EQ(r1.size(), samples.size());
  ASSERT_EQ(r8.size(), r1.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    expect_same_response(r1[i], r8[i]);
  }
  EXPECT_EQ(one.stats().served, eight.stats().served);
  EXPECT_EQ(one.stats().failed, eight.stats().failed);
}

// Single-UE flood: every request hashes to the same shard, so seven of
// the eight shards stay empty through every poll — the merge must not
// stall on them, and the stream must still match the 1-shard server.
TEST(ShardServer, SingleUeFloodLandsOnOneShardAndMatches) {
  const auto samples = run_samples(0, 40);
  ManualClock clock1, clock8;
  Server one(make_predictor(), shard_cfg(1), clock1);
  Server eight(make_predictor(), shard_cfg(8), clock8);
  const auto r1 = drive(one, clock1, samples, /*n_ues=*/1, /*batch=*/16);
  const auto r8 = drive(eight, clock8, samples, /*n_ues=*/1, /*batch=*/16);
  ASSERT_EQ(r1.size(), samples.size());
  ASSERT_EQ(r8.size(), r1.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    expect_same_response(r1[i], r8[i]);
  }
}

// An empty server polls to an empty batch regardless of shard count.
TEST(ShardServer, EmptyShardsPollToNothing) {
  ManualClock clock;
  Server server(make_predictor(), shard_cfg(8), clock);
  EXPECT_TRUE(server.step().empty());
  EXPECT_EQ(server.queue_depth(), 0u);
}

// More shards than pool threads: the fork-join fan-out hands several
// shards to one worker; every admitted ticket must still be answered
// exactly once — including with the grain floor forced so high that the
// whole fan-out collapses into a single chunk.
TEST(ShardServer, MoreShardsThanThreadsDrains) {
  const auto samples = run_samples(0, 32);
  ThreadPool::global().set_threads(2);
  for (const std::size_t floor : {std::size_t{0}, std::size_t{16}}) {
    set_grain_floor(floor);
    ManualClock clock;
    Server server(make_predictor(), shard_cfg(8), clock);
    const auto responses =
        drive(server, clock, samples, /*n_ues=*/8, /*batch=*/16);
    EXPECT_EQ(responses.size(), samples.size()) << "grain floor " << floor;
    EXPECT_EQ(server.queue_depth(), 0u);
  }
  set_grain_floor(0);
  ThreadPool::global().set_threads(0);
}

// ---------- KNN / kriging columnar scans ----------

TEST(ShardScan, KnnRegressorScanMatchesPredictBitwise) {
  ml::KnnConfig cfg;
  cfg.k = 7;
  cfg.max_train = 2000;
  ml::KnnRegressor knn(cfg);
  knn.fit(built().x, built().y_reg);
  ml::KnnScratch scratch;
  scratch.reserve(knn.rows(), knn.cols(), knn.k());
  for (std::size_t r = 0; r < 200; ++r) {
    const auto row = built().x.row(r);
    EXPECT_EQ(bits(knn.predict(row)), bits(knn.predict_scan(row, scratch)))
        << "row " << r;
  }
}

TEST(ShardScan, KnnClassifierScanMatchesPredictBitwise) {
  ml::KnnConfig cfg;
  cfg.k = 7;
  cfg.max_train = 2000;
  ml::KnnClassifier knn(cfg);
  knn.fit(built().x, built().y_cls, data::kNumThroughputClasses);
  ml::KnnScratch scratch;
  scratch.reserve(knn.rows(), knn.cols(), knn.k(),
                  data::kNumThroughputClasses);
  for (std::size_t r = 0; r < 200; ++r) {
    const auto row = built().x.row(r);
    EXPECT_EQ(knn.predict(row), knn.predict_scan(row, scratch)) << "row " << r;
  }
}

TEST(ShardScan, KrigingScanMatchesPredictBitwise) {
  const auto loc = data::build_features(
      airport_ds(), data::FeatureSetSpec::parse("L"), {});
  ml::OrdinaryKriging ok;
  ok.fit(loc.x, loc.y_reg);
  ASSERT_GT(ok.support(), 0u);
  ml::KrigingScratch scratch;
  scratch.reserve(ok.support());
  for (std::size_t r = 0; r < 200; ++r) {
    const auto row = loc.x.row(r);
    EXPECT_EQ(bits(ok.predict(row)), bits(ok.predict_scan(row, scratch)))
        << "row " << r;
  }
}

}  // namespace
}  // namespace lumos::serve

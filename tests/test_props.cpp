// Property-based sweeps (parameterized gtest) over the simulator physics,
// the RNG, the feature pipeline and the models — invariants that must hold
// across whole parameter ranges, not just single examples. Also includes
// failure-injection tests for the I/O and evaluation paths.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>

#include "common/rng.h"
#include "core/evaluate.h"
#include "data/csv.h"
#include "data/features.h"
#include "ml/gbdt.h"
#include "ml/harmonic.h"
#include "sim/areas.h"
#include "sim/connection.h"
#include "sim/propagation.h"
#include "stats/descriptive.h"

namespace lumos {
namespace {

// ---------- RNG properties ----------

class RngSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeeds, UniformIsInRangeAndRoughlyUniform) {
  Rng rng(GetParam());
  double sum = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 4000.0, 0.5, 0.03);
}

TEST_P(RngSeeds, NormalHasUnitMoments) {
  Rng rng(GetParam());
  std::vector<double> v(4000);
  for (auto& x : v) x = rng.normal();
  EXPECT_NEAR(stats::mean(v), 0.0, 0.06);
  EXPECT_NEAR(stats::stddev(v), 1.0, 0.06);
}

TEST_P(RngSeeds, SameSeedSameStream) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST_P(RngSeeds, UniformIntIsBounded) {
  Rng rng(GetParam());
  for (std::uint64_t n : {1ull, 2ull, 7ull, 100ull, 1000003ull}) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_LT(rng.uniform_int(n), n);
    }
  }
}

TEST_P(RngSeeds, PermutationIsAPermutation) {
  Rng rng(GetParam());
  const auto p = rng.permutation(257);
  std::vector<bool> seen(257, false);
  for (std::size_t i : p) {
    ASSERT_LT(i, 257u);
    ASSERT_FALSE(seen[i]);
    seen[i] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeeds,
                         ::testing::Values(1u, 42u, 0xdeadbeefu, 1u << 20,
                                           0xffffffffffffffffull));

// ---------- propagation invariants across configurations ----------

struct PropCase {
  double half_dist;
  double exponent;
};

class PropagationSweep : public ::testing::TestWithParam<PropCase> {};

TEST_P(PropagationSweep, DistanceCurveIsMonotoneAndBounded) {
  sim::PropagationConfig cfg;
  cfg.half_capacity_distance_m = GetParam().half_dist;
  cfg.distance_exponent = GetParam().exponent;
  const sim::PropagationModel model(cfg);
  double prev = 1e18;
  for (double d = 0.0; d <= 500.0; d += 5.0) {
    const double c = model.distance_capacity(d, 1900.0);
    ASSERT_LE(c, 1900.0 + 1e-9);
    ASSERT_GE(c, 0.0);
    ASSERT_LE(c, prev + 1e-9);
    prev = c;
  }
  // Half-capacity property: cap(d_half) == peak/2.
  EXPECT_NEAR(model.distance_capacity(GetParam().half_dist, 1900.0), 950.0,
              1.0);
}

INSTANTIATE_TEST_SUITE_P(Configs, PropagationSweep,
                         ::testing::Values(PropCase{60.0, 2.0},
                                           PropCase{110.0, 2.6},
                                           PropCase{150.0, 3.0},
                                           PropCase{200.0, 1.5}));

class AngleSweep : public ::testing::TestWithParam<double> {};

TEST_P(AngleSweep, MeanCapacityNonNegativeEverywhere) {
  const sim::PropagationModel model;
  const sim::Panel panel{1, {0, 0}, GetParam()};
  for (double x = -100.0; x <= 100.0; x += 25.0) {
    for (double y = -100.0; y <= 100.0; y += 25.0) {
      for (double heading = 0.0; heading < 360.0; heading += 45.0) {
        sim::UEContext ue{{x, y}, heading, 1.4, data::Activity::kWalking};
        const double c = model.mean_capacity(panel, ue, {}, false);
        ASSERT_GE(c, 0.0);
        ASSERT_LE(c, 1900.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PanelBearings, AngleSweep,
                         ::testing::Values(0.0, 90.0, 180.0, 270.0, 33.0));

// ---------- connection-state invariants across seeds ----------

class ConnectionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConnectionSweep, RadioAndCellIdAreConsistent) {
  const sim::Area area = sim::make_loop();
  Rng rng(GetParam());
  sim::ConnectionManager conn(area.env, rng);
  // March around the loop; check invariants at every tick.
  for (int t = 0; t < 400; ++t) {
    const double frac = t / 400.0;
    const geo::Vec2 pos{400.0 * std::min(1.0, 2.0 * frac),
                        250.0 * std::max(0.0, 2.0 * frac - 1.0)};
    sim::UEContext ue{pos, 90.0, 1.4, data::Activity::kWalking};
    const auto r = conn.tick(ue, rng);
    ASSERT_GE(r.throughput_mbps, 0.0);
    ASSERT_LE(r.throughput_mbps, conn.config().ue_max_mbps);
    if (r.radio == data::RadioType::kNrMmWave) {
      ASSERT_GE(r.serving_index, 0);
      ASSERT_NE(r.cell_id, -1000);
    } else {
      ASSERT_EQ(r.serving_index, -1);
      ASSERT_EQ(r.cell_id, -1000);
    }
    // A tick cannot be both kinds of handoff at once.
    ASSERT_FALSE(r.horizontal_handoff && r.vertical_handoff);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConnectionSweep,
                         ::testing::Values(1u, 7u, 99u, 12345u));

// ---------- feature pipeline row-count algebra ----------

struct FeatureCase {
  int lags;
  int horizon;
};

class FeatureSweep : public ::testing::TestWithParam<FeatureCase> {};

TEST_P(FeatureSweep, RowCountMatchesFormula) {
  // Build a run of exactly 40 seconds.
  data::Dataset ds;
  for (int t = 0; t < 40; ++t) {
    data::SampleRecord s;
    s.area = "x";
    s.trajectory_id = 1;
    s.run_id = 0;
    s.timestamp_s = t;
    s.latitude = 44.9 + t * 1e-5;
    s.longitude = -93.2;
    s.gps_accuracy_m = 1.0;
    s.throughput_mbps = 100.0 + t;
    ds.append(s);
  }
  ds.clean(data::CleaningConfig{.buffer_period_s = 0.0});

  data::FeatureConfig cfg;
  cfg.throughput_lags = GetParam().lags;
  cfg.horizon = GetParam().horizon;
  const auto built =
      data::build_features(ds, data::FeatureSetSpec::parse("L+C"), cfg);
  // usable i ranges over [lags-1, 40-1-horizon]:
  const long expect = 40 - (GetParam().lags - 1) - GetParam().horizon;
  EXPECT_EQ(static_cast<long>(built.x.rows()), std::max(0l, expect));
  // Targets always horizon seconds ahead on the +1/s ramp.
  for (std::size_t i = 0; i < built.x.rows(); ++i) {
    const auto& src = ds[built.source_index[i]];
    EXPECT_NEAR(built.y_reg[i],
                src.throughput_mbps + GetParam().horizon, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LagHorizonGrid, FeatureSweep,
    ::testing::Values(FeatureCase{1, 1}, FeatureCase{5, 1}, FeatureCase{10, 1},
                      FeatureCase{5, 5}, FeatureCase{1, 30},
                      FeatureCase{20, 25}));

// ---------- harmonic mean bounds ----------

class HarmonicSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HarmonicSweep, PredictionBetweenMinAndMaxOfWindow) {
  Rng rng(GetParam());
  const ml::HarmonicMeanPredictor hm(5);
  std::vector<double> hist;
  for (int i = 0; i < 50; ++i) {
    hist.push_back(rng.uniform(10.0, 2000.0));
    const double p = hm.predict_next(hist);
    const std::size_t w = std::min<std::size_t>(5, hist.size());
    double lo = 1e18, hi = 0.0;
    for (std::size_t k = hist.size() - w; k < hist.size(); ++k) {
      lo = std::min(lo, hist[k]);
      hi = std::max(hi, hist[k]);
    }
    ASSERT_GE(p, lo - 1e-9);
    ASSERT_LE(p, hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HarmonicSweep,
                         ::testing::Values(3u, 5u, 8u, 13u));

// ---------- GDBT capacity scaling ----------

TEST(GbdtProperty, MoreTreesNeverHurtMuchInSample) {
  Rng rng(77);
  ml::FeatureMatrix x(400, 2);
  std::vector<double> y(400);
  for (std::size_t i = 0; i < 400; ++i) {
    x.at(i, 0) = rng.uniform(-3.0, 3.0);
    x.at(i, 1) = rng.uniform(-3.0, 3.0);
    y[i] = 10.0 * std::sin(x.at(i, 0)) + x.at(i, 1);
  }
  double prev_err = 1e18;
  for (std::size_t trees : {10u, 50u, 200u}) {
    ml::GbdtConfig cfg;
    cfg.n_estimators = trees;
    cfg.max_depth = 3;
    ml::GbdtRegressor model(cfg);
    model.fit(x, y);
    double err = 0.0;
    for (std::size_t i = 0; i < 400; ++i) {
      err += std::fabs(model.predict(x.row(i)) - y[i]);
    }
    EXPECT_LT(err, prev_err * 1.05);  // train error shrinks with capacity
    prev_err = err;
  }
}

// ---------- standardizer idempotence-ish ----------

TEST(StandardizerProperty, DoubleTransformEqualsIdentityOnStats) {
  Rng rng(88);
  ml::FeatureMatrix x(300, 3);
  for (std::size_t i = 0; i < 300; ++i) {
    x.at(i, 0) = rng.normal(5.0, 2.0);
    x.at(i, 1) = rng.normal(-100.0, 30.0);
    x.at(i, 2) = rng.uniform();
  }
  data::Standardizer s1;
  s1.fit(x);
  s1.transform(x);
  // Refit on standardized data: mean ~0, sd ~1 -> second transform is a
  // near no-op.
  data::Standardizer s2;
  s2.fit(x);
  for (double m : s2.mean()) EXPECT_NEAR(m, 0.0, 1e-9);
  for (double sd : s2.stddev()) EXPECT_NEAR(sd, 1.0, 1e-9);
}

// ---------- CSV round-trip fidelity ----------

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

TEST(CsvRoundTrip, BitExactWithNaNAndExtremeValues) {
  const std::string path = ::testing::TempDir() + "lumos_roundtrip.csv";
  Rng rng(404);
  data::Dataset ds;
  for (int i = 0; i < 64; ++i) {
    data::SampleRecord s;
    s.area = i % 7 == 0 ? "" : "airport";  // empty leading field
    s.trajectory_id = i % 3;
    s.run_id = i % 2;
    s.timestamp_s = i / 3.0;  // non-terminating binary fraction
    s.latitude = 44.9 + rng.normal(0.0, 1e-3);
    s.longitude = -93.2 + rng.uniform() * 1e-7;
    s.gps_accuracy_m = rng.exponential(1.0);
    s.moving_speed_mps = i % 5 == 0 ? -0.0 : rng.uniform(0.0, 30.0);
    s.compass_deg = rng.uniform(0.0, 360.0);
    s.compass_accuracy = 5e-324;  // smallest denormal
    s.throughput_mbps = rng.uniform(0.0, 2000.0);
    s.lte_rsrp = -1.7976931348623157e308;  // -DBL_MAX
    s.lte_rsrq = rng.normal(-10.0, 1.0);
    s.lte_rssi = rng.normal(-60.0, 1.0);
    // NaN in an ordinary telemetry field (LTE-fallback parse failure).
    s.nr_ssrsrp =
        i % 4 == 0 ? data::SampleRecord::nan_value() : rng.normal(-85.0, 2.0);
    s.nr_ssrsrq = rng.normal(-11.0, 1.0);
    s.nr_ssrssi = rng.normal(-62.0, 1.0);
    if (i % 2 == 0) {
      // NaN T-feature sentinel triple (panel not surveyed).
      s.ue_panel_distance_m = data::SampleRecord::nan_value();
      s.theta_p_deg = data::SampleRecord::nan_value();
      s.theta_m_deg = data::SampleRecord::nan_value();
    } else {
      s.ue_panel_distance_m = rng.uniform(10.0, 300.0);
      s.theta_p_deg = rng.uniform(-180.0, 180.0);
      s.theta_m_deg = rng.uniform(-180.0, 180.0);
    }
    s.pixel_x = 123456 + i;
    s.pixel_y = -789 + i;
    ds.append(s);
  }
  data::write_csv(ds, path);
  const data::Dataset back = data::read_csv(path);
  std::remove(path.c_str());

  ASSERT_EQ(back.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto& a = ds[i];
    const auto& b = back[i];
    ASSERT_EQ(a.area, b.area) << i;
    ASSERT_EQ(a.trajectory_id, b.trajectory_id);
    ASSERT_EQ(a.run_id, b.run_id);
    ASSERT_EQ(a.pixel_x, b.pixel_x);
    ASSERT_EQ(a.pixel_y, b.pixel_y);
    const double va[] = {a.timestamp_s,      a.latitude,      a.longitude,
                         a.gps_accuracy_m,   a.moving_speed_mps,
                         a.compass_deg,      a.compass_accuracy,
                         a.throughput_mbps,  a.lte_rsrp,      a.lte_rsrq,
                         a.lte_rssi,         a.nr_ssrsrp,     a.nr_ssrsrq,
                         a.nr_ssrssi,        a.ue_panel_distance_m,
                         a.theta_p_deg,      a.theta_m_deg};
    const double vb[] = {b.timestamp_s,      b.latitude,      b.longitude,
                         b.gps_accuracy_m,   b.moving_speed_mps,
                         b.compass_deg,      b.compass_accuracy,
                         b.throughput_mbps,  b.lte_rsrp,      b.lte_rsrq,
                         b.lte_rssi,         b.nr_ssrsrp,     b.nr_ssrsrq,
                         b.nr_ssrssi,        b.ue_panel_distance_m,
                         b.theta_p_deg,      b.theta_m_deg};
    for (std::size_t f = 0; f < std::size(va); ++f) {
      ASSERT_TRUE(same_bits(va[f], vb[f]))
          << "row " << i << " field " << f << ": " << va[f] << " vs " << vb[f];
    }
  }
}

// ---------- failure injection ----------

TEST(FailureInjection, CsvWithWrongColumnCountThrows) {
  const std::string path = "/tmp/lumos_bad_csv_test.csv";
  {
    std::ofstream f(path);
    f << "header,line,ignored\n";
    f << "only,three,fields\n";
  }
  EXPECT_THROW(data::read_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(FailureInjection, CsvParseErrorNamesColumnAndLine) {
  const std::string path = ::testing::TempDir() + "lumos_badcol.csv";
  data::Dataset ds;
  data::SampleRecord good;
  good.area = "x";
  ds.append(good);
  data::write_csv(ds, path);  // header (line 1) + one good row (line 2)
  {
    std::ofstream f(path, std::ios::app);
    // Line 3: non-numeric junk in the throughput_mbps column.
    f << "x,1,0,1,44.9,-93.2,1,0,1.4,90,5,garbage,0,2,-90,-10,-60,"
         "-80,-10,-60,0,0,nan,nan,nan,100,200\n";
  }
  try {
    (void)data::read_csv(path);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("column 'throughput_mbps'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  }
  std::remove(path.c_str());
}

TEST(FailureInjection, CleaningAllBadRunsYieldsEmpty) {
  data::Dataset ds;
  for (int t = 0; t < 30; ++t) {
    data::SampleRecord s;
    s.area = "x";
    s.run_id = 0;
    s.timestamp_s = t;
    s.gps_accuracy_m = 50.0;  // hopeless GPS
    ds.append(s);
  }
  ds.clean();
  EXPECT_TRUE(ds.empty());
}

TEST(FailureInjection, EvaluateOnTinyDatasetIsInvalidNotCrash) {
  data::Dataset tiny;
  for (int t = 0; t < 10; ++t) {
    data::SampleRecord s;
    s.area = "x";
    s.timestamp_s = t;
    s.throughput_mbps = 100.0;
    tiny.append(s);
  }
  const auto r = core::evaluate_model(core::ModelKind::kGdbt, tiny,
                                      data::FeatureSetSpec::parse("L"), {});
  EXPECT_FALSE(r.valid);
}

TEST(FailureInjection, TransferWithEmptyTestSetIsInvalid) {
  const auto ds = sim::collect_area_dataset(sim::make_airport(), 2, 0, 5);
  const auto r = core::evaluate_transfer(core::ModelKind::kGdbt, ds,
                                         data::Dataset{},
                                         data::FeatureSetSpec::parse("L"), {});
  EXPECT_FALSE(r.valid);
}

// ---------- end-to-end determinism across areas ----------

class AreaDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(AreaDeterminism, SameSeedSameDataset) {
  const auto build = [&] {
    switch (GetParam()) {
      case 0: return sim::collect_area_dataset(sim::make_airport(), 2, 0, 9);
      case 1:
        return sim::collect_area_dataset(sim::make_intersection(), 1, 0, 9);
      default: return sim::collect_area_dataset(sim::make_loop(), 1, 1, 9);
    }
  };
  const auto a = build();
  const auto b = build();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 23) {
    ASSERT_DOUBLE_EQ(a[i].throughput_mbps, b[i].throughput_mbps);
    ASSERT_EQ(a[i].cell_id, b[i].cell_id);
  }
}

INSTANTIATE_TEST_SUITE_P(Areas, AreaDeterminism, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace lumos

// Tests for tools/lumos_lint: every rule in the table must fire on its
// seeded fixture snippet (tests/lint_fixtures/), suppression directives
// must silence findings, and the real tree must scan clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

using lumos::lint::Finding;
using lumos::lint::default_rules;
using lumos::lint::scan_file;
using lumos::lint::scan_tree;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(LUMOS_LINT_FIXTURES_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Scans fixture `name` under the pretend repo path `as_path`.
std::vector<Finding> scan_fixture(const std::string& name,
                                  const std::string& as_path) {
  return scan_file(as_path, read_fixture(name), default_rules());
}

bool fires(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

struct FixtureCase {
  const char* fixture;
  const char* as_path;  ///< pretend location; picks up dir-scoped rules
  const char* rule;
};

TEST(LumosLint, EveryRuleFiresOnItsFixture) {
  const FixtureCase cases[] = {
      {"banned_rand.cpp", "src/ml/banned_rand.cpp", "banned-rand"},
      {"banned_std_random.cpp", "src/sim/banned_std_random.cpp",
       "banned-std-random"},
      {"unordered_container.cpp", "src/core/unordered_container.cpp",
       "unordered-container"},
      {"wall_clock.cpp", "src/data/wall_clock.cpp", "wall-clock"},
      {"thread_outside_pool.cpp", "src/ml/thread_outside_pool.cpp",
       "thread-outside-pool"},
      {"throw_query_path.cpp", "src/core/throw_query_path.cpp",
       "throw-on-query-path"},
      {"naked_assert.cpp", "src/nn/naked_assert.cpp", "naked-assert"},
      {"layering.cpp", "src/ml/layering.cpp", "layering"},
      {"missing_pragma_once.h", "src/geo/missing_pragma_once.h",
       "pragma-once"},
      {"bad_suppression.cpp", "src/ml/bad_suppression.cpp",
       "bad-suppression"},
  };
  for (const auto& c : cases) {
    const auto findings = scan_fixture(c.fixture, c.as_path);
    EXPECT_TRUE(fires(findings, c.rule))
        << c.fixture << " did not trigger rule " << c.rule;
  }
}

TEST(LumosLint, FindingCarriesLocationAndExcerpt) {
  const auto findings =
      scan_fixture("banned_rand.cpp", "src/ml/banned_rand.cpp");
  ASSERT_TRUE(fires(findings, "banned-rand"));
  const auto it =
      std::find_if(findings.begin(), findings.end(),
                   [](const Finding& f) { return f.rule == "banned-rand"; });
  EXPECT_EQ(it->path, "src/ml/banned_rand.cpp");
  EXPECT_EQ(it->line, 2u);
  EXPECT_NE(it->excerpt.find("rand()"), std::string::npos);
}

TEST(LumosLint, SuppressionSilencesBothPlacements) {
  const auto findings =
      scan_fixture("suppressed_ok.cpp", "src/ml/suppressed_ok.cpp");
  EXPECT_TRUE(findings.empty())
      << "unexpected finding: " << lumos::lint::format(findings.front());
}

TEST(LumosLint, CleanFixtureProducesNoFindings) {
  const auto findings = scan_fixture("clean.cpp", "src/ml/clean.cpp");
  EXPECT_TRUE(findings.empty())
      << "unexpected finding: " << lumos::lint::format(findings.front());
}

TEST(LumosLint, DirScopedRulesIgnoreBenchAndTests) {
  // The same wall-clock read is a finding in src/ but fine in bench/
  // (timing harnesses legitimately read clocks).
  EXPECT_TRUE(fires(scan_fixture("wall_clock.cpp", "src/data/wall_clock.cpp"),
                    "wall-clock"));
  EXPECT_FALSE(fires(
      scan_fixture("wall_clock.cpp", "bench/wall_clock.cpp"), "wall-clock"));
  // throw is an error-discipline violation only on the core/ml query path.
  EXPECT_FALSE(fires(
      scan_fixture("throw_query_path.cpp", "src/data/throw_query_path.cpp"),
      "throw-on-query-path"));
}

TEST(LumosLint, ExemptPathsAreExempt) {
  // The blessed RNG header may reference std:: engines (it documents and
  // replaces them); everywhere else the rule fires.
  const std::string body = read_fixture("banned_std_random.cpp");
  EXPECT_FALSE(fires(scan_file("src/common/rng.h", body, default_rules()),
                     "banned-std-random"));
  EXPECT_TRUE(fires(scan_file("src/stats/rng2.h", body, default_rules()),
                    "banned-std-random"));
}

TEST(LumosLint, CommentsAndStringsDoNotFire) {
  const std::string body =
      "// rand() in a comment\n"
      "/* std::unordered_map<int,int> in a block comment */\n"
      "const char* s = \"std::mt19937 in a string\";\n";
  const auto findings = scan_file("src/ml/ok.cpp", body, default_rules());
  EXPECT_TRUE(findings.empty())
      << "unexpected finding: " << lumos::lint::format(findings.front());
}

TEST(LumosLint, RuleTableHasAtLeastEightRules) {
  EXPECT_GE(default_rules().size(), 8u);
}

TEST(LumosLint, RealTreeScansClean) {
  const auto findings = scan_tree(LUMOS_SOURCE_ROOT, default_rules());
  for (const auto& f : findings) {
    ADD_FAILURE() << lumos::lint::format(f);
  }
  EXPECT_TRUE(findings.empty());
}

}  // namespace

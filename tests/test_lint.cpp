// Tests for tools/lumos_lint: every rule in the table must fire on its
// seeded fixture snippet (tests/lint_fixtures/), suppression directives
// must silence findings, and the real tree must scan clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "callgraph.h"
#include "lexer.h"
#include "lint.h"
#include "reach.h"
#include "symbols.h"

namespace {

using lumos::lint::Finding;
using lumos::lint::SourceFile;
using lumos::lint::analyze_sources;
using lumos::lint::build_callgraph;
using lumos::lint::default_rules;
using lumos::lint::extract_symbols;
using lumos::lint::lex_file;
using lumos::lint::scan_file;
using lumos::lint::scan_tree;
using lumos::lint::TokKind;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(LUMOS_LINT_FIXTURES_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Scans fixture `name` under the pretend repo path `as_path`.
std::vector<Finding> scan_fixture(const std::string& name,
                                  const std::string& as_path) {
  return scan_file(as_path, read_fixture(name), default_rules());
}

bool fires(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

struct FixtureCase {
  const char* fixture;
  const char* as_path;  ///< pretend location; picks up dir-scoped rules
  const char* rule;
};

TEST(LumosLint, EveryRuleFiresOnItsFixture) {
  const FixtureCase cases[] = {
      {"banned_rand.cpp", "src/ml/banned_rand.cpp", "banned-rand"},
      {"banned_std_random.cpp", "src/sim/banned_std_random.cpp",
       "banned-std-random"},
      {"unordered_container.cpp", "src/core/unordered_container.cpp",
       "unordered-container"},
      {"wall_clock.cpp", "src/data/wall_clock.cpp", "wall-clock"},
      {"thread_outside_pool.cpp", "src/ml/thread_outside_pool.cpp",
       "thread-outside-pool"},
      {"throw_query_path.cpp", "src/core/throw_query_path.cpp",
       "throw-on-query-path"},
      {"naked_assert.cpp", "src/nn/naked_assert.cpp", "naked-assert"},
      {"layering.cpp", "src/ml/layering.cpp", "layering"},
      {"missing_pragma_once.h", "src/geo/missing_pragma_once.h",
       "pragma-once"},
      {"bad_suppression.cpp", "src/ml/bad_suppression.cpp",
       "bad-suppression"},
  };
  for (const auto& c : cases) {
    const auto findings = scan_fixture(c.fixture, c.as_path);
    EXPECT_TRUE(fires(findings, c.rule))
        << c.fixture << " did not trigger rule " << c.rule;
  }
}

TEST(LumosLint, FindingCarriesLocationAndExcerpt) {
  const auto findings =
      scan_fixture("banned_rand.cpp", "src/ml/banned_rand.cpp");
  ASSERT_TRUE(fires(findings, "banned-rand"));
  const auto it =
      std::find_if(findings.begin(), findings.end(),
                   [](const Finding& f) { return f.rule == "banned-rand"; });
  EXPECT_EQ(it->path, "src/ml/banned_rand.cpp");
  EXPECT_EQ(it->line, 2u);
  EXPECT_NE(it->excerpt.find("rand()"), std::string::npos);
}

TEST(LumosLint, SuppressionSilencesBothPlacements) {
  const auto findings =
      scan_fixture("suppressed_ok.cpp", "src/ml/suppressed_ok.cpp");
  EXPECT_TRUE(findings.empty())
      << "unexpected finding: " << lumos::lint::format(findings.front());
}

TEST(LumosLint, CleanFixtureProducesNoFindings) {
  const auto findings = scan_fixture("clean.cpp", "src/ml/clean.cpp");
  EXPECT_TRUE(findings.empty())
      << "unexpected finding: " << lumos::lint::format(findings.front());
}

TEST(LumosLint, DirScopedRulesIgnoreBenchAndTests) {
  // The same wall-clock read is a finding in src/ but fine in bench/
  // (timing harnesses legitimately read clocks).
  EXPECT_TRUE(fires(scan_fixture("wall_clock.cpp", "src/data/wall_clock.cpp"),
                    "wall-clock"));
  EXPECT_FALSE(fires(
      scan_fixture("wall_clock.cpp", "bench/wall_clock.cpp"), "wall-clock"));
  // throw is an error-discipline violation only on the core/ml query path.
  EXPECT_FALSE(fires(
      scan_fixture("throw_query_path.cpp", "src/data/throw_query_path.cpp"),
      "throw-on-query-path"));
}

TEST(LumosLint, ExemptPathsAreExempt) {
  // The blessed RNG header may reference std:: engines (it documents and
  // replaces them); everywhere else the rule fires.
  const std::string body = read_fixture("banned_std_random.cpp");
  EXPECT_FALSE(fires(scan_file("src/common/rng.h", body, default_rules()),
                     "banned-std-random"));
  EXPECT_TRUE(fires(scan_file("src/stats/rng2.h", body, default_rules()),
                    "banned-std-random"));
}

TEST(LumosLint, CommentsAndStringsDoNotFire) {
  const std::string body =
      "// rand() in a comment\n"
      "/* std::unordered_map<int,int> in a block comment */\n"
      "const char* s = \"std::mt19937 in a string\";\n";
  const auto findings = scan_file("src/ml/ok.cpp", body, default_rules());
  EXPECT_TRUE(findings.empty())
      << "unexpected finding: " << lumos::lint::format(findings.front());
}

TEST(LumosLint, RuleTableHasAtLeastEightRules) {
  EXPECT_GE(default_rules().size(), 8u);
}

// ---- lexer pass ----------------------------------------------------------

TEST(LumosLintLexer, TokenGolden) {
  const auto lexed = lex_file("int x = a->b::c(42);\n");
  std::vector<std::pair<TokKind, std::string>> got;
  for (const auto& t : lexed.tokens) got.emplace_back(t.kind, t.text);
  const std::vector<std::pair<TokKind, std::string>> want = {
      {TokKind::kIdent, "int"}, {TokKind::kIdent, "x"},
      {TokKind::kPunct, "="},   {TokKind::kIdent, "a"},
      {TokKind::kPunct, "->"},  {TokKind::kIdent, "b"},
      {TokKind::kPunct, "::"},  {TokKind::kIdent, "c"},
      {TokKind::kPunct, "("},   {TokKind::kNumber, "42"},
      {TokKind::kPunct, ")"},   {TokKind::kPunct, ";"},
  };
  EXPECT_EQ(got, want);
}

TEST(LumosLintLexer, CommentsAndStringsAreBlankedNotTokenized) {
  const auto lexed = lex_file(
      "// rand() here\n"
      "/* srand(1) there */\n"
      "const char* s = \"time(nullptr)\";\n");
  for (const auto& t : lexed.tokens) {
    EXPECT_EQ(t.text.find("rand"), std::string::npos) << t.text;
    EXPECT_EQ(t.text.find("time"), std::string::npos) << t.text;
  }
  // ...but the comments view keeps them for the suppression parser.
  EXPECT_NE(lexed.comments.find("rand()"), std::string::npos);
}

TEST(LumosLintLexer, RawStringBodyIsNotCode) {
  const auto lexed =
      lex_file("const char* k = R\"x(rand(); \")\" still raw)x\"; int after;\n");
  bool saw_rand = false, saw_after = false;
  for (const auto& t : lexed.tokens) {
    if (t.text == "rand") saw_rand = true;
    if (t.text == "after") saw_after = true;
  }
  EXPECT_FALSE(saw_rand) << "raw-string body leaked into tokens";
  EXPECT_TRUE(saw_after) << "lexer lost sync after the raw string";
}

TEST(LumosLintLexer, SplicedDirectiveIsOneLogicalDirective) {
  const auto lexed = lex_file("#inc\\\nlude \\\n  \"sim/faults.h\"\nint x;\n");
  ASSERT_EQ(lexed.directives.size(), 1u);
  EXPECT_NE(lexed.directives[0].text.find("#include"), std::string::npos);
  EXPECT_NE(lexed.directives[0].text.find("sim/faults.h"), std::string::npos);
  // The directive's continuation lines must not leak into the token stream.
  for (const auto& t : lexed.tokens) {
    EXPECT_EQ(t.text.find("lude"), std::string::npos) << t.text;
  }
}

TEST(LumosLintLexer, LineNumbersSurviveStripping) {
  const auto lexed = lex_file("/* a\nb\nc */\nint x;\n");
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens.front().text, "int");
  EXPECT_EQ(lexed.tokens.front().line, 4u);
}

// ---- symbol pass ---------------------------------------------------------

TEST(LumosLintSymbols, QualifiedFunctionAndClassExtraction) {
  const std::string src =
      "namespace lumos::serve {\n"
      "class Server {\n"
      " public:\n"
      "  int submit() { return 0; }\n"
      " private:\n"
      "  Helper helper_;\n"
      "};\n"
      "int free_fn(int a) { return a; }\n"
      "}  // namespace\n";
  const auto syms = extract_symbols("src/serve/x.cpp", lex_file(src));
  ASSERT_EQ(syms.functions.size(), 2u);
  EXPECT_EQ(syms.functions[0].qual, "serve::Server::submit");
  EXPECT_EQ(syms.functions[0].cls, "serve::Server");
  EXPECT_EQ(syms.functions[1].qual, "serve::free_fn");
  EXPECT_EQ(syms.functions[1].cls, "");
  ASSERT_EQ(syms.classes.size(), 1u);
  EXPECT_EQ(syms.classes[0].name, "Server");
  ASSERT_TRUE(syms.classes[0].members.count("helper_"));
  EXPECT_EQ(syms.classes[0].members.at("helper_"), "Helper");
}

TEST(LumosLintSymbols, OutOfLineDefinitionAndBases) {
  const std::string src =
      "namespace lumos {\n"
      "class ManualClock final : public Clock {\n"
      " public:\n"
      "  void tick();\n"
      "};\n"
      "void ManualClock::tick() { ++t_; }\n"
      "}  // namespace\n";
  const auto syms = extract_symbols("src/common/x.cpp", lex_file(src));
  ASSERT_EQ(syms.classes.size(), 1u);
  ASSERT_EQ(syms.classes[0].bases.size(), 1u);
  EXPECT_EQ(syms.classes[0].bases[0], "Clock");
  ASSERT_EQ(syms.functions.size(), 1u);
  EXPECT_EQ(syms.functions[0].qual, "ManualClock::tick");
}

// ---- call-graph pass -----------------------------------------------------

TEST(LumosLintCallgraph, ReceiverChainResolvesThroughMemberHints) {
  const std::string src =
      "namespace lumos::serve {\n"
      "class Forest { public: double predict() { return 1.0; } };\n"
      "class Tier { public: Forest regressor; };\n"
      "class Predictor {\n"
      " public:\n"
      "  double run() {\n"
      "    const Tier& tier = tiers_[0];\n"
      "    return tier.regressor.predict();\n"
      "  }\n"
      " private:\n"
      "  std::vector<Tier> tiers_;\n"
      "};\n"
      "}\n";
  const auto g = build_callgraph({{"src/serve/x.cpp", src}});
  const std::size_t run = g.find("serve::Predictor::run");
  const std::size_t predict = g.find("serve::Forest::predict");
  ASSERT_NE(run, static_cast<std::size_t>(-1));
  ASSERT_NE(predict, static_cast<std::size_t>(-1));
  bool edge = false;
  for (const auto& targets : g.nodes[run].out) {
    for (std::size_t t : targets) edge |= (t == predict);
  }
  EXPECT_TRUE(edge) << "tier.regressor.predict() did not resolve";
}

TEST(LumosLintCallgraph, UnresolvableReceiverContributesNoEdge) {
  // `mystery.predict()` has no declaration anywhere: binding it to every
  // predict in the program would drown the analysis, so it must bind to
  // nothing at all.
  const std::string src =
      "namespace lumos::serve {\n"
      "class Forest { public: double predict() { return 1.0; } };\n"
      "double run(const Opaque& mystery) { return mystery.predict(); }\n"
      "}\n";
  const auto g = build_callgraph({{"src/serve/x.cpp", src}});
  const std::size_t run = g.find("serve::run");
  ASSERT_NE(run, static_cast<std::size_t>(-1));
  for (const auto& targets : g.nodes[run].out) {
    EXPECT_TRUE(targets.empty());
  }
}

TEST(LumosLintCallgraph, VirtualDispatchCoversDerivedOverrides) {
  const std::string src =
      "namespace lumos {\n"
      "class Clock { public: virtual long now() { return 0; } };\n"
      "class SteadyClock : public Clock {\n"
      " public: long now() { return 1; } };\n"
      "class User {\n"
      " public:\n"
      "  long read() { return clock_->now(); }\n"
      " private:\n"
      "  Clock* clock_;\n"
      "};\n"
      "}\n";
  const auto g = build_callgraph({{"src/common/x.cpp", src}});
  const std::size_t read = g.find("User::read");
  const std::size_t derived = g.find("SteadyClock::now");
  ASSERT_NE(read, static_cast<std::size_t>(-1));
  ASSERT_NE(derived, static_cast<std::size_t>(-1));
  bool edge = false;
  for (const auto& targets : g.nodes[read].out) {
    for (std::size_t t : targets) edge |= (t == derived);
  }
  EXPECT_TRUE(edge) << "call through Clock* must cover derived overrides";
}

// ---- reachability / policy passes over the fixtures ----------------------

std::vector<Finding> analyze_fixture(const std::string& name,
                                     const std::string& as_path) {
  return analyze_sources({{as_path, read_fixture(name)}}, default_rules());
}

TEST(LumosLintReach, HotPathAllocReportsFullChain) {
  const auto findings =
      analyze_fixture("hot_path_reach.cpp", "src/serve/hot_path_reach.cpp");
  ASSERT_TRUE(fires(findings, "hot-path-alloc"));
  const auto it = std::find_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.rule == "hot-path-alloc"; });
  ASSERT_GE(it->chain.size(), 2u) << "expected root -> helper chain";
  EXPECT_NE(it->chain.front().find("serve::Server::submit"),
            std::string::npos);
  EXPECT_NE(it->chain.back().find("DiagnosticBuffer::record"),
            std::string::npos);
}

TEST(LumosLintReach, BlessedEdgeStopsTheWalk) {
  std::string body = read_fixture("hot_path_reach.cpp");
  const std::string call = "diag_.record(7);";
  const auto at = body.find(call);
  ASSERT_NE(at, std::string::npos);
  body.insert(at + call.size(),
              "  // lumos-lint: allow(hot-path) fixture bless");
  const auto findings =
      analyze_sources({{"src/serve/hot_path_reach.cpp", body}},
                      default_rules());
  EXPECT_FALSE(fires(findings, "hot-path-alloc"))
      << "a blessed call edge must not be walked";
}

TEST(LumosLintReach, LockOrderFixtureFires) {
  const auto findings =
      analyze_fixture("lock_order.cpp", "src/serve/lock_order.cpp");
  EXPECT_TRUE(fires(findings, "lock-order"));
}

TEST(LumosLintReach, LockOrderIsServeScoped) {
  const auto findings =
      analyze_fixture("lock_order.cpp", "src/stats/lock_order.cpp");
  EXPECT_FALSE(fires(findings, "lock-order"))
      << "the lock-order table only governs src/serve/";
}

TEST(LumosLintReach, UnorderedAccumulateFixtureFires) {
  const auto findings = analyze_fixture("unordered_accumulate.cpp",
                                        "src/stats/unordered_accumulate.cpp");
  EXPECT_TRUE(fires(findings, "unordered-accumulate"));
}

TEST(LumosLintReach, RealServingPathIsProvenNotVacuous) {
  // The clean tree scan is only a proof if the roots actually exist and
  // have bodies in the graph. Guard against silent rot: the real sources
  // must yield nodes for every default root, and the batched root must
  // reach the per-window walk.
  namespace fs = std::filesystem;
  std::vector<SourceFile> sources;
  for (const auto& entry :
       fs::recursive_directory_iterator(fs::path(LUMOS_SOURCE_ROOT) / "src")) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cpp") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    sources.push_back(
        {fs::relative(entry.path(), LUMOS_SOURCE_ROOT).generic_string(),
         text.str()});
  }
  const auto g = build_callgraph(sources);
  for (const std::string& root : lumos::lint::default_analysis().roots) {
    EXPECT_NE(g.find(root), static_cast<std::size_t>(-1))
        << "hot-path root " << root << " has no definition in src/";
  }
  // predict_spans must reach the single-window walk (the chain the proof
  // covers), otherwise the batched root is vacuously clean.
  const std::size_t spans = g.find("serve::Predictor::predict_spans");
  ASSERT_NE(spans, static_cast<std::size_t>(-1));
  const std::size_t single = g.find("serve::Predictor::predict");
  bool edge = false;
  for (const auto& targets : g.nodes[spans].out) {
    for (std::size_t t : targets) edge |= (t == single);
  }
  EXPECT_TRUE(edge) << "predict_spans no longer reaches predict";
}

// ---- stripper regressions through the full scan --------------------------

TEST(LumosLint, RawStringFixtureScansClean) {
  const auto findings =
      scan_fixture("raw_string.cpp", "src/ml/raw_string.cpp");
  EXPECT_TRUE(findings.empty())
      << "unexpected finding: " << lumos::lint::format(findings.front());
}

TEST(LumosLint, SplicedIncludeCannotDodgeLayering) {
  const auto findings =
      scan_fixture("spliced_include.cpp", "src/ml/spliced_include.cpp");
  EXPECT_TRUE(fires(findings, "layering"))
      << "backslash-spliced #include dodged the layering pass";
}

TEST(LumosLint, RealTreeScansClean) {
  const auto findings = scan_tree(LUMOS_SOURCE_ROOT, default_rules());
  for (const auto& f : findings) {
    ADD_FAILURE() << lumos::lint::format(f);
  }
  EXPECT_TRUE(findings.empty());
}

}  // namespace

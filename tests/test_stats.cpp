// Tests for lumos::stats — descriptive statistics, special functions,
// hypothesis tests (t, Levene), normality tests and rank correlation,
// validated against known reference values and distributional properties.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "common/rng.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/distribution.h"
#include "stats/hypothesis.h"
#include "stats/normality.h"
#include "stats/special_functions.h"

namespace lumos::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, double mean, double sd,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal(mean, sd);
  return v;
}

std::vector<double> exponential_sample(std::size_t n, double lambda,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.exponential(lambda);
  return v;
}

// ---------- descriptive ----------

TEST(Descriptive, MeanVarianceKnownValues) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(mean(v), 5.0, 1e-12);
  EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyAndSingletonAreSafe) {
  const std::vector<double> empty;
  EXPECT_EQ(mean(empty), 0.0);
  EXPECT_EQ(variance(empty), 0.0);
  EXPECT_EQ(coefficient_of_variation(empty), 0.0);
  const std::vector<double> one{3.0};
  EXPECT_EQ(variance(one), 0.0);
}

TEST(Descriptive, CoefficientOfVariation) {
  const std::vector<double> v{10.0, 20.0, 30.0};
  EXPECT_NEAR(coefficient_of_variation(v), 10.0 / 20.0, 1e-12);
}

TEST(Descriptive, QuantilesInterpolate) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(quantile(v, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(quantile(v, 1.0), 4.0, 1e-12);
  EXPECT_NEAR(quantile(v, 0.5), 2.5, 1e-12);
  EXPECT_NEAR(median(v), 2.5, 1e-12);
}

TEST(Descriptive, EmptyInputYieldsNanExtremaAndQuantiles) {
  // Contract (descriptive.h): an extremum/quantile of nothing is NaN, not
  // a silent 0.0 that downstream aggregation can't tell from a real zero.
  const std::span<const double> empty;
  EXPECT_TRUE(std::isnan(min_of(empty)));
  EXPECT_TRUE(std::isnan(max_of(empty)));
  EXPECT_TRUE(std::isnan(quantile(empty, 0.5)));
  EXPECT_TRUE(std::isnan(median(empty)));
}

TEST(Descriptive, SummaryMatchesComponents) {
  const auto v = normal_sample(500, 10.0, 2.0, 1);
  const Summary s = summarize(v);
  EXPECT_EQ(s.n, 500u);
  EXPECT_NEAR(s.mean, mean(v), 1e-12);
  EXPECT_NEAR(s.median, median(v), 1e-12);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.min, s.p25);
  EXPECT_LE(s.p75, s.max);
}

TEST(Descriptive, SkewnessOfSymmetricSampleIsSmall) {
  const auto v = normal_sample(5000, 0.0, 1.0, 2);
  EXPECT_NEAR(skewness(v), 0.0, 0.1);
  EXPECT_NEAR(kurtosis(v), 3.0, 0.3);
}

TEST(Descriptive, SkewnessOfExponentialIsPositive) {
  const auto v = exponential_sample(5000, 1.0, 3);
  EXPECT_GT(skewness(v), 1.0);  // theory: 2
  EXPECT_GT(kurtosis(v), 5.0);  // theory: 9
}

TEST(Descriptive, RanksHandleTies) {
  const std::vector<double> v{10.0, 20.0, 20.0, 30.0};
  const auto r = ranks(v);
  EXPECT_NEAR(r[0], 1.0, 1e-12);
  EXPECT_NEAR(r[1], 2.5, 1e-12);
  EXPECT_NEAR(r[2], 2.5, 1e-12);
  EXPECT_NEAR(r[3], 4.0, 1e-12);
}

// ---------- special functions ----------

TEST(SpecialFunctions, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
}

TEST(SpecialFunctions, TTwoSidedPValues) {
  // t = 2.086 with df = 20 is the 97.5th percentile -> p = 0.05.
  EXPECT_NEAR(t_two_sided_pvalue(2.086, 20.0), 0.05, 1e-3);
  EXPECT_NEAR(t_two_sided_pvalue(0.0, 20.0), 1.0, 1e-12);
  EXPECT_LT(t_two_sided_pvalue(10.0, 20.0), 1e-6);
}

TEST(SpecialFunctions, Chi2UpperPValues) {
  // chi2 = 5.991 with df = 2 -> p = 0.05.
  EXPECT_NEAR(chi2_upper_pvalue(5.991, 2.0), 0.05, 1e-3);
  EXPECT_NEAR(chi2_upper_pvalue(0.0, 2.0), 1.0, 1e-12);
}

TEST(SpecialFunctions, FUpperPValues) {
  // F(1, 10) at 4.965 -> p = 0.05.
  EXPECT_NEAR(f_upper_pvalue(4.965, 1.0, 10.0), 0.05, 1e-3);
  EXPECT_NEAR(f_upper_pvalue(0.0, 3.0, 10.0), 1.0, 1e-12);
}

TEST(SpecialFunctions, IncompleteBetaBoundaries) {
  EXPECT_NEAR(reg_incomplete_beta(2.0, 3.0, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(reg_incomplete_beta(2.0, 3.0, 1.0), 1.0, 1e-12);
  // I_x(1, 1) = x (uniform CDF).
  EXPECT_NEAR(reg_incomplete_beta(1.0, 1.0, 0.37), 0.37, 1e-9);
}

TEST(SpecialFunctions, RegLowerGammaIsExponentialCdfForA1) {
  // P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(reg_lower_gamma(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-9);
}

// ---------- hypothesis tests ----------

TEST(TTest, DetectsMeanShift) {
  const auto a = normal_sample(200, 0.0, 1.0, 10);
  const auto b = normal_sample(200, 1.0, 1.0, 11);
  EXPECT_LT(welch_t_test(a, b).p_value, 1e-6);
  EXPECT_LT(student_t_test(a, b).p_value, 1e-6);
}

TEST(TTest, AcceptsEqualMeans) {
  const auto a = normal_sample(200, 5.0, 1.0, 12);
  const auto b = normal_sample(200, 5.0, 1.0, 13);
  EXPECT_GT(welch_t_test(a, b).p_value, 0.01);
}

TEST(TTest, TinySamplesReturnNeutralResult) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{2.0, 3.0};
  EXPECT_EQ(welch_t_test(a, b).p_value, 1.0);
}

TEST(TTest, SymmetricInArguments) {
  const auto a = normal_sample(100, 0.0, 1.0, 14);
  const auto b = normal_sample(150, 0.4, 1.5, 15);
  EXPECT_NEAR(welch_t_test(a, b).p_value, welch_t_test(b, a).p_value, 1e-12);
}

TEST(Levene, DetectsVarianceDifference) {
  const auto a = normal_sample(300, 0.0, 1.0, 16);
  const auto b = normal_sample(300, 0.0, 3.0, 17);
  EXPECT_LT(levene_test(a, b).p_value, 1e-6);
  EXPECT_LT(levene_test(a, b, LeveneCenter::kMedian).p_value, 1e-6);
}

TEST(Levene, AcceptsEqualVariances) {
  const auto a = normal_sample(300, 0.0, 2.0, 18);
  const auto b = normal_sample(300, 5.0, 2.0, 19);  // mean shift is fine
  EXPECT_GT(levene_test(a, b).p_value, 0.01);
}

// ---------- normality ----------

class NormalityOnNormal : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NormalityOnNormal, UsuallyAccepted) {
  const auto v = normal_sample(300, 50.0, 10.0, GetParam());
  EXPECT_TRUE(is_normal_either(v, 0.001));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalityOnNormal,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u,
                                           27u, 28u));

class NormalityOnExponential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NormalityOnExponential, Rejected) {
  const auto v = exponential_sample(300, 1.0, GetParam());
  EXPECT_FALSE(is_normal_either(v, 0.001));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalityOnExponential,
                         ::testing::Values(31u, 32u, 33u, 34u, 35u, 36u));

TEST(Normality, DagostinoRejectsBimodal) {
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) {
    v.push_back(i % 2 == 0 ? 0.0 : 10.0);
  }
  Rng rng(40);
  for (auto& x : v) x += rng.normal(0.0, 0.1);
  EXPECT_LT(dagostino_pearson_test(v).p_value, 0.001);
}

TEST(Normality, ConstantSampleIsDegenerate) {
  const std::vector<double> v(50, 7.0);
  EXPECT_EQ(dagostino_pearson_test(v).p_value, 0.0);
  EXPECT_EQ(anderson_darling_test(v).p_value, 0.0);
}

TEST(Normality, TinySampleIsNeutral) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_EQ(dagostino_pearson_test(v).p_value, 1.0);
}

// ---------- correlation ----------

TEST(Correlation, PearsonPerfectLinear) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> ny{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, ny), -1.0, 1e-12);
}

TEST(Correlation, SpearmanMonotoneNonlinearIsOne) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y{1.0, 8.0, 27.0, 64.0, 125.0};  // x^3
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Correlation, SpearmanReversedIsMinusOne) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y{10.0, 8.0, 7.0, 3.0, 1.0};
  EXPECT_NEAR(spearman(x, y), -1.0, 1e-12);
}

TEST(Correlation, IndependentSamplesNearZero) {
  const auto x = normal_sample(2000, 0.0, 1.0, 50);
  const auto y = normal_sample(2000, 0.0, 1.0, 51);
  EXPECT_NEAR(spearman(x, y), 0.0, 0.08);
  EXPECT_NEAR(pearson(x, y), 0.0, 0.08);
}

TEST(Correlation, DegenerateInputsReturnZero) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> c{5.0, 5.0, 5.0};
  EXPECT_EQ(pearson(x, c), 0.0);
  const std::vector<double> short_y{1.0};
  EXPECT_EQ(pearson(x, short_y), 0.0);
}

// ---------- distribution helpers ----------

TEST(Histogram, CountsSumToN) {
  const auto v = normal_sample(1000, 0.0, 1.0, 60);
  const auto h = histogram(v, 20);
  std::size_t total = 0;
  for (const auto& b : h) total += b.count;
  EXPECT_EQ(total, v.size());
  EXPECT_EQ(h.size(), 20u);
}

TEST(Histogram, DegenerateSingleValue) {
  const std::vector<double> v(10, 4.0);
  const auto h = histogram(v, 5);
  std::size_t total = 0;
  for (const auto& b : h) total += b.count;
  EXPECT_EQ(total, 10u);
}

TEST(Ecdf, MatchesDefinition) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(ecdf_at(v, 2.5), 0.5, 1e-12);
  EXPECT_NEAR(ecdf_at(v, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(ecdf_at(v, 4.0), 1.0, 1e-12);
}

TEST(Ecdf, CurveIsMonotone) {
  const auto v = normal_sample(500, 0.0, 1.0, 61);
  const auto curve = ecdf_curve(v, 50);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
}

}  // namespace
}  // namespace lumos::stats

// Fixture: wall-clock read in library code.
#include <chrono>
long long stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// Fixture: violation-free translation unit (control).
#include "ml/tree.h"
int add(int a, int b) { return a + b; }

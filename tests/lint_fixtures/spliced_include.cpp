// Fixture: a backslash-spliced #include. v1 matched rules against physical
// lines, so neither half of the spliced directive matched ^#include and a
// layering break could dodge the check. The lexer resolves splices into
// one logical directive before the layering pass runs.
#inc\
lude \
    "sim/faults.h"
#include "ml/tree.h"

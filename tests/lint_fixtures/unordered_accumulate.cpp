// Fixture: iteration order of an unordered container feeding a floating-
// point accumulation — the sum depends on hash-table layout, which breaks
// the bit-identical-at-any-thread-count guarantee.
#include <unordered_map>

namespace lumos::stats {

class CellAggregate {
 public:
  double total() const {
    double sum = 0.0;
    for (const auto& kv : counts_) {
      sum += kv.second;
    }
    return sum;
  }

 private:
  std::unordered_map<int, double> counts_;
};

}  // namespace lumos::stats

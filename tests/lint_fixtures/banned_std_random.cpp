// Fixture: std:: random engine outside common/rng.h.
#include <random>
double draw() {
  std::mt19937 gen(42);
  return 0.0;
}

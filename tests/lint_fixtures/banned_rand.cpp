// Fixture: C rand() in library code.
int noise() { return rand() % 7; }

// Fixture: a serving root reaching a heap allocation two hops down. The
// reachability pass must report the full call chain (submit -> helper ->
// the to_string/push_back sites), not just the allocation line.
#include <string>
#include <vector>

namespace lumos::serve {

class DiagnosticBuffer {
 public:
  void record(int code) {
    text_ = std::to_string(code);
    history_.push_back(code);
  }

 private:
  std::string text_;
  std::vector<int> history_;
};

class Server {
 public:
  int submit() {
    diag_.record(7);
    return 0;
  }

 private:
  DiagnosticBuffer diag_;
};

}  // namespace lumos::serve

// Fixture: lock-order violations in serve/. `aux_mu_` is not in the
// declared acquisition order (the checked-in table only knows `mu_`), so
// both sites below are findings.
#include <mutex>

namespace lumos::serve {

class WorkQueue {
 public:
  void push() {
    const std::scoped_lock lock(aux_mu_);
    ++depth_;
  }

  void transfer() {
    const std::scoped_lock lock(aux_mu_, mu_);
    --depth_;
  }

 private:
  std::mutex mu_;
  std::mutex aux_mu_;
  int depth_ = 0;
};

}  // namespace lumos::serve

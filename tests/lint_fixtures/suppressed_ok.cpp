// Fixture: a real violation silenced by a valid directive,
// exercising both same-line and line-above placement.
int noise() { return rand() % 7; }  // lumos-lint: allow(banned-rand) fixture
// lumos-lint: allow(banned-rand) fixture, directive-above form
int more_noise() { return rand() % 7; }

// Fixture: raw std::thread bypassing the pool.
#include <thread>
void spawn() {
  std::thread t([] {});
  t.join();
}

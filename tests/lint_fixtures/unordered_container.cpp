// Fixture: unordered container in library code.
#include <unordered_map>
std::unordered_map<int, double> cache;

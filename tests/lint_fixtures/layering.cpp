// Fixture: ml/ reaching into sim/ (layering break).
#include "sim/faults.h"
#include "ml/tree.h"

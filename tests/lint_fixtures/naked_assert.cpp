// Fixture: naked assert instead of LUMOS_ASSERT.
#include <cassert>
void check(int n) { assert(n > 0); }

// Fixture: raw-string regression. v1's stripper treated R"(...)" like an
// ordinary quoted string, so an embedded `)` un-stripped the remainder and
// pattern rules fired on literal content. None of the banned spellings
// below are code.
namespace lumos::ml {
const char* kPlain = R"(rand() and std::mt19937 and time(nullptr))";
const char* kDelim = R"x(std::unordered_map<int, int> m; srand(1); ")x";
const char* kMultiline = R"doc(
  std::thread worker;
  assert(false);
)doc";
}  // namespace lumos::ml

// Fixture: suppression naming a rule that does not exist.
// lumos-lint: allow(definitely-not-a-rule)
int x = 0;

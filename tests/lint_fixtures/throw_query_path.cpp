// Fixture: throw on the core/ml query path.
void answer(int x) {
  if (x < 0) throw x;
}

// Tests for lumos::serve — the versioned binary artifact format
// (deterministic saves, bit-exact round-trips, typed failure on truncated /
// bit-flipped / wrong-version files), the flattened inference layout
// (bit-identical to the pointer-layout models), and the batched serving
// Predictor (bit-identical to the Lumos5G facade, batch == individual).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "core/lumos5g.h"
#include "data/features.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "nn/seq2seq.h"
#include "serve/flat_model.h"
#include "serve/model_io.h"
#include "serve/predictor.h"
#include "sim/areas.h"

namespace lumos::serve {
namespace {

/// Bit-pattern comparison: "bit-identical" is the contract, not "close".
std::uint64_t bits(double x) noexcept { return std::bit_cast<std::uint64_t>(x); }

const data::Dataset& airport_ds() {
  static const data::Dataset ds = [] {
    const sim::Area area = sim::make_airport();
    return sim::collect_area_dataset(area, /*walk_runs=*/6, 0, 4242);
  }();
  return ds;
}

/// L+M+C supervised matrix shared by the plain-model tests.
const data::BuiltFeatures& lmc() {
  static const data::BuiltFeatures bf =
      data::build_features(airport_ds(), data::FeatureSetSpec::parse("L+M+C"));
  return bf;
}

ml::GbdtConfig small_gbdt() {
  ml::GbdtConfig cfg;
  cfg.n_estimators = 40;
  cfg.max_depth = 5;
  return cfg;
}

const ml::GbdtRegressor& gbdt_reg() {
  static const ml::GbdtRegressor* m = [] {
    auto* r = new ml::GbdtRegressor(small_gbdt());
    r->fit(lmc().x, lmc().y_reg);
    return r;
  }();
  return *m;
}

const ml::GbdtClassifier& gbdt_cls() {
  static const ml::GbdtClassifier* m = [] {
    auto* c = new ml::GbdtClassifier(small_gbdt());
    c->fit(lmc().x, lmc().y_cls, data::kNumThroughputClasses);
    return c;
  }();
  return *m;
}

const ml::RandomForestRegressor& rf_reg() {
  static const ml::RandomForestRegressor* m = [] {
    ml::ForestConfig cfg;
    cfg.n_trees = 16;
    cfg.max_depth = 8;
    auto* r = new ml::RandomForestRegressor(cfg);
    r->fit(lmc().x, lmc().y_reg);
    return r;
  }();
  return *m;
}

const ml::RandomForestClassifier& rf_cls() {
  static const ml::RandomForestClassifier* m = [] {
    ml::ForestConfig cfg;
    cfg.n_trees = 16;
    cfg.max_depth = 8;
    auto* c = new ml::RandomForestClassifier(cfg);
    c->fit(lmc().x, lmc().y_cls, data::kNumThroughputClasses);
    return c;
  }();
  return *m;
}

core::Lumos5GConfig facade_config() {
  core::Lumos5GConfig cfg;
  cfg.feature_spec = data::FeatureSetSpec::parse("T+M+C");
  cfg.gbdt = small_gbdt();
  return cfg;
}

/// A trained T+M+C facade (three-tier fallback chain), shared.
const core::Lumos5G& facade() {
  static const core::Lumos5G* m = [] {
    auto* f = new core::Lumos5G(facade_config());
    const auto ok = f->train(airport_ds());
    EXPECT_TRUE(ok.has_value());
    return f;
  }();
  return *m;
}

/// Query windows exercising every tier outcome: full context (tier 0),
/// missing panel geometry (tier 1+), and short histories.
std::vector<std::vector<data::SampleRecord>> query_windows() {
  std::vector<std::vector<data::SampleRecord>> windows;
  const auto& ds = airport_ds();
  const auto runs = ds.runs();
  for (std::size_t r = 0; r < runs.size() && windows.size() < 24; ++r) {
    const auto& run = runs[r];
    for (std::size_t start = 10; start + 8 < run.size() && windows.size() < 24;
         start += 37) {
      std::vector<data::SampleRecord> w;
      for (std::size_t i = start; i < start + 8; ++i) w.push_back(ds[run[i]]);
      windows.push_back(w);

      // Same window with panel geometry knocked out: T can't fire.
      auto degraded = w;
      for (auto& s : degraded) {
        s.ue_panel_distance_m = data::SampleRecord::nan_value();
        s.theta_p_deg = data::SampleRecord::nan_value();
        s.theta_m_deg = data::SampleRecord::nan_value();
      }
      windows.push_back(degraded);

      // Short history: lag features (group C) unavailable.
      windows.emplace_back(w.begin(), w.begin() + 2);
    }
  }
  return windows;
}

// ---------- artifact format ----------

TEST(ModelIo, SaveIsDeterministic) {
  const std::string a = save_bytes(gbdt_reg());
  const std::string b = save_bytes(gbdt_reg());
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 25u);  // header + payload + hash

  const std::string fa = save_bytes(facade());
  const std::string fb = save_bytes(facade());
  EXPECT_EQ(fa, fb);

  const auto kind = peek_kind(a);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ModelKind::kGbdtRegressor);
  const auto fkind = peek_kind(fa);
  ASSERT_TRUE(fkind.has_value());
  EXPECT_EQ(*fkind, ModelKind::kLumos5G);
}

TEST(ModelIo, GbdtRegressorRoundTripBitIdentical) {
  const auto loaded = load_gbdt_regressor(save_bytes(gbdt_reg()));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->n_features(), gbdt_reg().n_features());
  EXPECT_EQ(loaded->trees().size(), gbdt_reg().trees().size());
  for (std::size_t r = 0; r < lmc().x.rows(); ++r) {
    ASSERT_EQ(bits(loaded->predict(lmc().x.row(r))),
              bits(gbdt_reg().predict(lmc().x.row(r))))
        << "row " << r;
  }
}

TEST(ModelIo, GbdtClassifierRoundTripBitIdentical) {
  const auto loaded = load_gbdt_classifier(save_bytes(gbdt_cls()));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->n_classes(), gbdt_cls().n_classes());
  for (std::size_t r = 0; r < lmc().x.rows(); ++r) {
    const auto row = lmc().x.row(r);
    ASSERT_EQ(loaded->predict(row), gbdt_cls().predict(row)) << "row " << r;
    const auto da = loaded->decision_function(row);
    const auto db = gbdt_cls().decision_function(row);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t c = 0; c < da.size(); ++c) {
      ASSERT_EQ(bits(da[c]), bits(db[c])) << "row " << r << " class " << c;
    }
  }
}

TEST(ModelIo, ForestRegressorRoundTripBitIdentical) {
  const auto loaded = load_forest_regressor(save_bytes(rf_reg()));
  ASSERT_TRUE(loaded.has_value());
  for (std::size_t r = 0; r < lmc().x.rows(); ++r) {
    ASSERT_EQ(bits(loaded->predict(lmc().x.row(r))),
              bits(rf_reg().predict(lmc().x.row(r))))
        << "row " << r;
  }
}

TEST(ModelIo, ForestClassifierRoundTripBitIdentical) {
  const auto loaded = load_forest_classifier(save_bytes(rf_cls()));
  ASSERT_TRUE(loaded.has_value());
  for (std::size_t r = 0; r < lmc().x.rows(); ++r) {
    ASSERT_EQ(loaded->predict(lmc().x.row(r)), rf_cls().predict(lmc().x.row(r)))
        << "row " << r;
  }
}

TEST(ModelIo, Lumos5GRoundTripThroughFileBitIdentical) {
  const auto path = std::filesystem::temp_directory_path() /
                    "lumos_test_serve_facade.l5gm";
  ASSERT_TRUE(save_model(facade(), path).has_value());
  const auto bytes = read_artifact(path);
  ASSERT_TRUE(bytes.has_value());
  const auto loaded = load_lumos5g(*bytes);
  ASSERT_TRUE(loaded.has_value());
  std::filesystem::remove(path);

  EXPECT_TRUE(loaded->trained());
  ASSERT_EQ(loaded->tier_specs().size(), facade().tier_specs().size());
  for (std::size_t t = 0; t < facade().tier_specs().size(); ++t) {
    EXPECT_EQ(loaded->tier_trained(t), facade().tier_trained(t)) << "tier " << t;
  }

  for (const auto& w : query_windows()) {
    const auto a = facade().predict(w);
    const auto b = loaded->predict(w);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) {
      EXPECT_EQ(a.error().code, b.error().code);
      continue;
    }
    EXPECT_EQ(bits(a->throughput_mbps), bits(b->throughput_mbps));
    EXPECT_EQ(a->throughput_class, b->throughput_class);
    EXPECT_EQ(a->tier, b->tier);
    EXPECT_EQ(a->feature_group, b->feature_group);
  }
}

TEST(ModelIo, EveryTruncationIsTypedTruncated) {
  const std::string full = save_bytes(gbdt_reg());
  // Every strict prefix must fail as kTruncated — sample lengths densely
  // near the header and stride through the payload.
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n < 32 && n < full.size(); ++n) lengths.push_back(n);
  const std::size_t stride = std::max<std::size_t>(1, full.size() / 64);
  for (std::size_t n = 32; n < full.size(); n += stride) lengths.push_back(n);
  lengths.push_back(full.size() - 1);
  for (const std::size_t n : lengths) {
    const auto r = load_gbdt_regressor(full.substr(0, n));
    ASSERT_FALSE(r.has_value()) << "prefix length " << n;
    EXPECT_EQ(r.error().code, ErrorCode::kTruncated) << "prefix length " << n;
  }
}

TEST(ModelIo, BitFlipsAreTypedNeverUb) {
  const std::string full = save_bytes(gbdt_reg());
  const std::size_t stride = std::max<std::size_t>(1, full.size() / 96);
  for (std::size_t pos = 0; pos < full.size(); pos += stride) {
    for (const int bit : {0, 7}) {
      std::string damaged = full;
      damaged[pos] = static_cast<char>(
          static_cast<unsigned char>(damaged[pos]) ^ (1u << bit));
      const auto r = load_gbdt_regressor(damaged);
      ASSERT_FALSE(r.has_value()) << "byte " << pos << " bit " << bit;
      const auto code = r.error().code;
      EXPECT_TRUE(code == ErrorCode::kBadMagic ||
                  code == ErrorCode::kVersionMismatch ||
                  code == ErrorCode::kTruncated ||
                  code == ErrorCode::kCorrupt || code == ErrorCode::kParseError)
          << "byte " << pos << " bit " << bit << " -> " << to_string(code);
    }
  }
}

TEST(ModelIo, WrongMagicRejected) {
  std::string bytes = save_bytes(gbdt_reg());
  bytes[0] = 'X';
  const auto r = load_gbdt_regressor(bytes);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kBadMagic);
}

TEST(ModelIo, FutureVersionRejectedBeforeHashCheck) {
  std::string bytes = save_bytes(gbdt_reg());
  // Patch the u32 version field at offset 4 to kFormatVersion + 1. The
  // hash no longer matches either, but version must win: the reader can't
  // trust its own layout knowledge on a future format.
  bytes[4] = static_cast<char>(kFormatVersion + 1);
  const auto r = load_gbdt_regressor(bytes);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kVersionMismatch);
}

TEST(ModelIo, WrongKindRejected) {
  const std::string bytes = save_bytes(gbdt_reg());
  const auto r = load_forest_regressor(bytes);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kParseError);
  const auto f = load_lumos5g(bytes);
  ASSERT_FALSE(f.has_value());
  EXPECT_EQ(f.error().code, ErrorCode::kParseError);
}

TEST(ModelIo, TrailingBytesRejected) {
  std::string bytes = save_bytes(gbdt_reg());
  bytes.push_back('\0');
  const auto r = load_gbdt_regressor(bytes);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kCorrupt);
}

TEST(ModelIo, EmptyAndTinyBuffersTruncated) {
  for (const std::string_view bytes : {std::string_view{}, std::string_view{"L"},
                                       std::string_view{"L5G"}}) {
    const auto r = load_gbdt_regressor(bytes);
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().code, ErrorCode::kTruncated);
  }
}

TEST(ModelIo, MissingFileIsIoError) {
  const auto r = read_artifact("/nonexistent/lumos/model.l5gm");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kIoError);
}

// ---------- flattened layout ----------

TEST(FlatModel, GbdtForestMatchesPointerBitwise) {
  const FlatForest flat = FlatForest::flatten(gbdt_reg());
  EXPECT_EQ(flat.n_trees(), gbdt_reg().trees().size());
  const auto batch = flat.predict_batch(lmc().x);
  ASSERT_EQ(batch.size(), lmc().x.rows());
  for (std::size_t r = 0; r < lmc().x.rows(); ++r) {
    ASSERT_EQ(bits(flat.predict(lmc().x.row(r))),
              bits(gbdt_reg().predict(lmc().x.row(r))))
        << "row " << r;
    ASSERT_EQ(bits(batch[r]), bits(gbdt_reg().predict(lmc().x.row(r))));
  }
}

TEST(FlatModel, RandomForestMatchesPointerBitwise) {
  const FlatForest flat = FlatForest::flatten(rf_reg());
  for (std::size_t r = 0; r < lmc().x.rows(); ++r) {
    ASSERT_EQ(bits(flat.predict(lmc().x.row(r))),
              bits(rf_reg().predict(lmc().x.row(r))))
        << "row " << r;
  }
}

TEST(FlatModel, GbdtClassifierMatchesPointerBitwise) {
  const FlatClassifier flat = FlatClassifier::flatten(gbdt_cls());
  EXPECT_EQ(flat.n_classes(), gbdt_cls().n_classes());
  const auto batch = flat.predict_batch(lmc().x);
  for (std::size_t r = 0; r < lmc().x.rows(); ++r) {
    const auto row = lmc().x.row(r);
    ASSERT_EQ(flat.predict(row), gbdt_cls().predict(row)) << "row " << r;
    ASSERT_EQ(batch[r], gbdt_cls().predict(row));
    const auto da = flat.decision_function(row);
    const auto db = gbdt_cls().decision_function(row);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t c = 0; c < da.size(); ++c) {
      ASSERT_EQ(bits(da[c]), bits(db[c])) << "row " << r << " class " << c;
    }
  }
}

TEST(FlatModel, RandomForestClassifierMatchesPointer) {
  const FlatClassifier flat = FlatClassifier::flatten(rf_cls());
  for (std::size_t r = 0; r < lmc().x.rows(); ++r) {
    ASSERT_EQ(flat.predict(lmc().x.row(r)), rf_cls().predict(lmc().x.row(r)))
        << "row " << r;
  }
}

TEST(FlatModel, NanRoutingMatchesPointer) {
  const FlatForest flat = FlatForest::flatten(gbdt_reg());
  // Knock out each feature in turn: missing values must take the learned
  // default branch, exactly as the pointer layout does.
  for (std::size_t r = 0; r < std::min<std::size_t>(lmc().x.rows(), 40); ++r) {
    for (std::size_t f = 0; f < lmc().x.cols(); ++f) {
      std::vector<double> row(lmc().x.row(r).begin(), lmc().x.row(r).end());
      row[f] = data::SampleRecord::nan_value();
      ASSERT_EQ(bits(flat.predict(row)), bits(gbdt_reg().predict(row)))
          << "row " << r << " feature " << f;
    }
  }
}

// ---------- serving predictor ----------

TEST(Predictor, CompileRejectsUntrained) {
  const core::Lumos5G untrained;
  const auto p = Predictor::compile(untrained);
  ASSERT_FALSE(p.has_value());
  EXPECT_EQ(p.error().code, ErrorCode::kNotTrained);
}

TEST(Predictor, MatchesFacadeBitwise) {
  const auto compiled = Predictor::compile(facade());
  ASSERT_TRUE(compiled.has_value());
  EXPECT_GT(compiled->n_nodes(), 0u);
  ASSERT_EQ(compiled->tier_specs().size(), facade().tier_specs().size());

  for (const auto& w : query_windows()) {
    const auto a = facade().predict(w);
    const auto b = compiled->predict(w);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) {
      EXPECT_EQ(a.error().code, b.error().code);
      continue;
    }
    EXPECT_EQ(bits(a->throughput_mbps), bits(b->throughput_mbps));
    EXPECT_EQ(a->throughput_class, b->throughput_class);
    EXPECT_EQ(a->tier, b->tier);
    EXPECT_EQ(a->feature_group, b->feature_group);
  }
}

TEST(Predictor, ReloadedFacadeCompilesToSamePredictions) {
  // The full consumer story: train -> save -> reload in a "fresh" facade ->
  // compile -> serve. Every step must preserve bit-identity.
  const auto reloaded = load_lumos5g(save_bytes(facade()));
  ASSERT_TRUE(reloaded.has_value());
  const auto compiled = Predictor::compile(*reloaded);
  ASSERT_TRUE(compiled.has_value());
  for (const auto& w : query_windows()) {
    const auto a = facade().predict(w);
    const auto b = compiled->predict(w);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a.has_value()) {
      EXPECT_EQ(bits(a->throughput_mbps), bits(b->throughput_mbps));
      EXPECT_EQ(a->tier, b->tier);
    }
  }
}

TEST(Predictor, BatchMatchesIndividual) {
  const auto compiled = Predictor::compile(facade());
  ASSERT_TRUE(compiled.has_value());

  std::vector<Session> sessions;
  for (const auto& w : query_windows()) {
    Session s;
    for (const auto& sample : w) s.observe(sample);
    sessions.push_back(std::move(s));
  }
  sessions.emplace_back();  // empty session: typed error expected

  const auto batch = compiled->predict_batch(sessions);
  ASSERT_EQ(batch.size(), sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto single = compiled->predict(sessions[i]);
    ASSERT_EQ(batch[i].has_value(), single.has_value()) << "session " << i;
    if (!single.has_value()) {
      EXPECT_EQ(batch[i].error().code, single.error().code);
      continue;
    }
    EXPECT_EQ(bits(batch[i]->throughput_mbps), bits(single->throughput_mbps));
    EXPECT_EQ(batch[i]->throughput_class, single->throughput_class);
    EXPECT_EQ(batch[i]->tier, single->tier);
  }
}

// ---------- seq2seq artifacts ----------

nn::Seq2SeqConfig small_s2s() {
  nn::Seq2SeqConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden = 8;
  cfg.layers = 2;
  cfg.seq_len = 6;
  cfg.out_len = 3;
  cfg.epochs = 3;
  cfg.batch_size = 8;
  cfg.seed = 7;
  return cfg;
}

/// A small fitted Seq2Seq on synthetic sinusoid sequences, shared.
const nn::Seq2Seq& s2s() {
  static const nn::Seq2Seq* m = [] {
    const nn::Seq2SeqConfig cfg = small_s2s();
    auto* net = new nn::Seq2Seq(cfg);
    std::vector<nn::SeqSample> samples;
    for (std::size_t i = 0; i < 32; ++i) {
      nn::SeqSample s;
      for (std::size_t t = 0; t < cfg.seq_len; ++t) {
        const double ph = 0.31 * static_cast<double>(i + t);
        s.x.push_back(std::sin(ph));
        s.x.push_back(std::cos(0.5 * ph));
      }
      for (std::size_t k = 0; k < cfg.out_len; ++k) {
        s.y.push_back(
            std::sin(0.31 * static_cast<double>(i + cfg.seq_len + k)));
      }
      samples.push_back(std::move(s));
    }
    net->fit(samples);
    return net;
  }();
  return *m;
}

std::vector<std::vector<double>> s2s_windows() {
  const nn::Seq2SeqConfig cfg = small_s2s();
  std::vector<std::vector<double>> windows;
  for (std::size_t i = 0; i < 8; ++i) {
    std::vector<double> w;
    for (std::size_t t = 0; t < cfg.seq_len; ++t) {
      const double ph = 0.11 * static_cast<double>(3 * i + t);
      w.push_back(std::sin(ph));
      w.push_back(std::cos(0.5 * ph));
    }
    windows.push_back(std::move(w));
  }
  return windows;
}

TEST(ModelIo, Seq2SeqSaveDeterministicAndPeekable) {
  const std::string a = save_bytes(s2s());
  const std::string b = save_bytes(s2s());
  EXPECT_EQ(a, b);
  const auto kind = peek_kind(a);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ModelKind::kSeq2Seq);
}

TEST(ModelIo, Seq2SeqRoundTripBitIdentical) {
  const auto loaded = load_seq2seq(save_bytes(s2s()));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->config().hidden, s2s().config().hidden);
  for (const auto& w : s2s_windows()) {
    const auto ya = s2s().predict(w);
    const auto yb = loaded->predict(w);
    ASSERT_EQ(ya.size(), yb.size());
    for (std::size_t k = 0; k < ya.size(); ++k) {
      ASSERT_EQ(bits(ya[k]), bits(yb[k])) << "step " << k;
    }
  }
}

TEST(ModelIo, Seq2SeqEveryTruncationIsTypedTruncated) {
  const std::string full = save_bytes(s2s());
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n < 32 && n < full.size(); ++n) lengths.push_back(n);
  const std::size_t stride = std::max<std::size_t>(1, full.size() / 64);
  for (std::size_t n = 32; n < full.size(); n += stride) lengths.push_back(n);
  lengths.push_back(full.size() - 1);
  for (const std::size_t n : lengths) {
    const auto r = load_seq2seq(full.substr(0, n));
    ASSERT_FALSE(r.has_value()) << "prefix length " << n;
    EXPECT_EQ(r.error().code, ErrorCode::kTruncated) << "prefix length " << n;
  }
}

TEST(ModelIo, Seq2SeqBitFlipsAreTypedNeverUb) {
  const std::string full = save_bytes(s2s());
  const std::size_t stride = std::max<std::size_t>(1, full.size() / 96);
  for (std::size_t pos = 0; pos < full.size(); pos += stride) {
    for (const int bit : {0, 7}) {
      std::string damaged = full;
      damaged[pos] = static_cast<char>(
          static_cast<unsigned char>(damaged[pos]) ^ (1u << bit));
      const auto r = load_seq2seq(damaged);
      ASSERT_FALSE(r.has_value()) << "byte " << pos << " bit " << bit;
      const auto code = r.error().code;
      EXPECT_TRUE(code == ErrorCode::kBadMagic ||
                  code == ErrorCode::kVersionMismatch ||
                  code == ErrorCode::kTruncated ||
                  code == ErrorCode::kCorrupt || code == ErrorCode::kParseError)
          << "byte " << pos << " bit " << bit << " -> " << to_string(code);
    }
  }
}

TEST(ModelIo, Seq2SeqWrongKindRejected) {
  const auto as_gbdt = load_gbdt_regressor(save_bytes(s2s()));
  ASSERT_FALSE(as_gbdt.has_value());
  EXPECT_EQ(as_gbdt.error().code, ErrorCode::kParseError);
  const auto as_s2s = load_seq2seq(save_bytes(gbdt_reg()));
  ASSERT_FALSE(as_s2s.has_value());
  EXPECT_EQ(as_s2s.error().code, ErrorCode::kParseError);
}

// ---------- write_artifact hygiene ----------

/// Number of "<stem>.tmp.*" siblings of `path` — write_artifact must never
/// leave one behind, success or failure.
std::size_t count_temp_files(const std::filesystem::path& path) {
  const std::string prefix = path.filename().string() + ".tmp.";
  std::size_t n = 0;
  for (const auto& e :
       std::filesystem::directory_iterator(path.parent_path())) {
    if (e.path().filename().string().rfind(prefix, 0) == 0) ++n;
  }
  return n;
}

TEST(ModelIo, WriteArtifactCleansTempOnRenameFailure) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "lumos_test_serve_write_hygiene";
  std::filesystem::create_directories(dir / "occupied");
  // The destination is an existing directory: the temp write succeeds but
  // the rename over a directory cannot, so the error path must run and
  // must take the temp file with it.
  const auto r = write_artifact(dir / "occupied", "payload");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kIoError);
  EXPECT_EQ(count_temp_files(dir / "occupied"), 0u);
  std::filesystem::remove_all(dir);
}

TEST(ModelIo, RacingWritersProduceWholeArtifacts) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "lumos_test_serve_write_race";
  std::filesystem::create_directories(dir);
  const auto path = dir / "model.l5gm";
  const std::string a = save_bytes(gbdt_reg());
  const std::string b = save_bytes(rf_reg());
  ASSERT_NE(a, b);

  // Two pool threads race full write->rename cycles at the same
  // destination. Whatever the interleaving, the destination must always
  // hold one writer's bytes in full — never a torn mix — and no temp file
  // may survive.
  ThreadPool pool(2);
  for (int round = 0; round < 16; ++round) {
    pool.parallel_for(0, 2, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const auto w = write_artifact(path, i == 0 ? a : b);
        EXPECT_TRUE(w.has_value());
      }
    });
    const auto got = read_artifact(path);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(*got == a || *got == b) << "torn artifact on round " << round;
    EXPECT_EQ(count_temp_files(path), 0u) << "round " << round;
  }
  std::filesystem::remove_all(dir);
}

TEST(Session, RollingWindowDropsOldest) {
  Session s(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    data::SampleRecord rec;
    rec.timestamp_s = static_cast<double>(i);
    s.observe(rec);
  }
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.window().front().timestamp_s, 2.0);
  EXPECT_EQ(s.window().back().timestamp_s, 5.0);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
}

}  // namespace
}  // namespace lumos::serve

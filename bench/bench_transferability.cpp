// Reproduces the paper's §6.2 transferability analysis: a T+M model
// trained only on samples served by the airport NORTH panel, evaluated on
// samples served by the SOUTH panel — location-agnostic tower features
// should transfer (paper: w-avgF1 0.71 overall, 0.91 within 25 m).
#include "bench_util.h"

int main() {
  using namespace lumos;
  bench::print_header("§6.2 — transferability of T+M across panels");
  auto cfg = bench::standard_config();
  const auto ds = bench::airport_dataset();

  const auto north = ds.filter(
      [](const data::SampleRecord& s) { return s.cell_id == 2; });
  const auto south = ds.filter(
      [](const data::SampleRecord& s) { return s.cell_id == 1; });
  std::printf("north-panel samples: %zu, south-panel samples: %zu\n",
              north.size(), south.size());

  const auto spec = data::FeatureSetSpec::parse("T+M");
  const auto overall =
      core::evaluate_transfer(core::ModelKind::kGdbt, north, south, spec, cfg);
  std::printf("\nTrain on NORTH, test on SOUTH (all distances):\n");
  std::printf("  w-avgF1 %.2f | low recall %.2f | MAE %.0f | RMSE %.0f "
              "(n=%zu train / %zu test)\n",
              overall.weighted_f1, overall.low_recall, overall.mae,
              overall.rmse, overall.n_train, overall.n_test);

  const auto south_near = south.filter([](const data::SampleRecord& s) {
    return s.has_panel_geometry() && s.ue_panel_distance_m < 25.0;
  });
  const auto near =
      core::evaluate_transfer(core::ModelKind::kGdbt, north, south_near, spec,
                              cfg);
  std::printf("\nTrain on NORTH, test on SOUTH within 25 m:\n");
  if (near.valid) {
    std::printf("  w-avgF1 %.2f | low recall %.2f | MAE %.0f (n=%zu test)\n",
                near.weighted_f1, near.low_recall, near.mae, near.n_test);
  } else {
    std::printf("  insufficient near-field samples (%zu)\n", south_near.size());
  }

  // Control: the same-distribution ceiling.
  const auto self = core::evaluate_model(core::ModelKind::kGdbt, ds, spec, cfg);
  std::printf("\nControl — T+M trained and tested on the full airport: "
              "w-avgF1 %.2f\n", self.weighted_f1);

  std::printf(
      "\nPaper: transfer w-avgF1 0.71 overall, rising to 0.91 below 25 m "
      "where the two panels' environments are most similar.\n");
  return 0;
}

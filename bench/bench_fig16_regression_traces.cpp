// Reproduces paper Fig. 16: sample regression plots — predicted versus
// actual next-second throughput for GDBT and Seq2Seq using the L+M+C
// feature group on the Global dataset, with the paper's ±200 Mbps error
// band highlighted.
#include <cmath>

#include "bench_util.h"

namespace {

using namespace lumos;

void show_trace(const char* name, const core::TracePredictions& tp) {
  std::printf("\n%s — first 40 test points (actual vs predicted):\n", name);
  std::printf("%5s %9s %9s %8s  in ±200?\n", "idx", "actual", "pred", "err");
  std::size_t within = 0;
  for (std::size_t i = 0; i < tp.actual.size(); ++i) {
    const double err = tp.predicted[i] - tp.actual[i];
    if (std::fabs(err) <= 200.0) ++within;
    if (i < 40) {
      std::printf("%5zu %9.0f %9.0f %+8.0f  %s\n", i, tp.actual[i],
                  tp.predicted[i], err, std::fabs(err) <= 200.0 ? "yes" : "NO");
    }
  }
  std::printf("within ±200 Mbps: %.1f%% of %zu test points\n",
              100.0 * static_cast<double>(within) /
                  static_cast<double>(tp.actual.size()),
              tp.actual.size());
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 16 — regression traces, L+M+C on Global (±200 Mbps band)");
  auto cfg = bench::standard_config();
  const auto ds = bench::global_dataset();
  const auto spec = data::FeatureSetSpec::parse("L+M+C");

  const auto gdbt = core::predict_test_trace(core::ModelKind::kGdbt, ds, spec,
                                             cfg, 400);
  show_trace("GDBT", gdbt);

  // Seq2Seq trace: reuse evaluate's internals via a direct evaluation plus
  // the paired predictions helper for GDBT; for Seq2Seq we report the
  // aggregate accuracy numbers instead of a paired dump.
  const auto s2s =
      core::evaluate_model(core::ModelKind::kSeq2Seq, ds, spec, cfg);
  std::printf("\nSeq2Seq (same split): MAE %.0f, RMSE %.0f, w-avgF1 %.2f on "
              "%zu test windows\n", s2s.mae, s2s.rmse, s2s.weighted_f1,
              s2s.n_test);

  std::printf(
      "\nPaper: both models track the actual series with most points inside "
      "the ±200 Mbps band; Seq2Seq follows ramps more tightly than GDBT.\n");
  return 0;
}

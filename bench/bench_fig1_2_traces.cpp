// Reproduces paper Figs. 1 & 2: sample per-second 5G throughput traces
// under driving (Fig. 1) and walking (Fig. 2) — the motivating
// "wild fluctuation" time series, rendered as text sparklines with the
// radio type marked.
#include "bench_util.h"

namespace {

using namespace lumos;

void print_trace(const char* title, const data::Dataset& ds,
                 int trajectory_id, int run_id, std::size_t max_seconds) {
  bench::print_header(title);
  std::vector<const data::SampleRecord*> trace;
  for (const auto& s : ds.samples()) {
    if (s.trajectory_id == trajectory_id && s.run_id == run_id) {
      trace.push_back(&s);
    }
  }
  if (trace.empty()) {
    std::printf("(no samples)\n");
    return;
  }
  double peak = 0.0;
  for (const auto* s : trace) peak = std::max(peak, s->throughput_mbps);
  std::printf("%zu seconds, peak %.0f Mbps. Bar = throughput, tag = radio.\n\n",
              trace.size(), peak);
  const std::size_t step = std::max<std::size_t>(1, trace.size() / max_seconds);
  std::size_t handoffs = 0, lte_seconds = 0;
  for (std::size_t i = 0; i < trace.size(); i += step) {
    const auto& s = *trace[i];
    std::printf("%4.0fs %-4s %6.0f %s\n", s.timestamp_s,
                data::to_string(s.radio_type), s.throughput_mbps,
                bench::bar(s.throughput_mbps, peak, 50).c_str());
  }
  for (const auto* s : trace) {
    if (s->horizontal_handoff || s->vertical_handoff) ++handoffs;
    if (s->radio_type == data::RadioType::kLte) ++lte_seconds;
  }
  std::printf("\nhandoff seconds: %zu, LTE seconds: %zu/%zu (%.0f%%)\n",
              handoffs, lte_seconds, trace.size(),
              100.0 * static_cast<double>(lte_seconds) /
                  static_cast<double>(trace.size()));
}

}  // namespace

int main() {
  // Fig. 1: driving the 1300 m loop — frequent dips, 4G stretches.
  const auto loop = bench::loop_dataset();
  print_trace("Fig. 1 — sample DRIVING trace (Loop area)", loop,
              /*trajectory_id=*/3, /*run_id=*/0, 80);

  // Fig. 2: walking at the airport — highly variable but mostly 5G.
  const auto airport = bench::airport_dataset();
  print_trace("Fig. 2 — sample WALKING trace (Airport area, NB)", airport,
              /*trajectory_id=*/1, /*run_id=*/0, 80);

  std::printf(
      "\nPaper: throughput swings between ~0 and ~2 Gbps within seconds; "
      "driving shows long 4G fallbacks, walking stays mostly on 5G.\n");
  return 0;
}

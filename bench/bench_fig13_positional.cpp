// Reproduces paper Fig. 13: the joint impact of the UE-panel positional
// angle theta_p (sectors F/L/R/B) and distance on 5G throughput, using
// the airport south panel like the paper.
#include "bench_util.h"
#include "geo/angles.h"
#include "stats/descriptive.h"

namespace {

using namespace lumos;

const char* sector_name(char c) {
  switch (c) {
    case 'F': return "F (front)";
    case 'B': return "B (back)";
    case 'L': return "L (left)";
    case 'R': return "R (right)";
  }
  return "?";
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 13 — positional angle sector x distance vs throughput "
      "(airport south panel)");
  const auto ds = bench::airport_dataset();
  const sim::Area area = sim::make_airport();
  const sim::Panel south = area.env.panels()[0];
  const geo::LocalFrame& frame = area.env.frame();

  const double dist_edges[] = {0.0, 25.0, 50.0, 100.0, 200.0, 300.0};
  std::printf("%-10s", "sector");
  for (std::size_t d = 0; d + 1 < std::size(dist_edges); ++d) {
    std::printf(" | [%3.0f,%3.0f)m", dist_edges[d], dist_edges[d + 1]);
  }
  std::printf("\n");
  bench::print_rule();

  for (char sector : {'F', 'L', 'R', 'B'}) {
    std::printf("%-10s", sector_name(sector));
    for (std::size_t d = 0; d + 1 < std::size(dist_edges); ++d) {
      std::vector<double> v;
      for (const auto& s : ds.samples()) {
        if (s.cell_id != south.id || !s.has_panel_geometry()) continue;
        // theta_p is unsigned; recover the left/right side from the UE's
        // signed cross-track offset w.r.t. the panel's facing direction.
        const geo::Vec2 local = frame.to_local({s.latitude, s.longitude});
        const geo::Vec2 rel = local - south.pos;
        const double signed_off =
            geo::cross(geo::unit_from_bearing(south.bearing_deg), rel);
        if (geo::positional_sector(s.theta_p_deg, -signed_off) != sector) {
          continue;
        }
        if (s.ue_panel_distance_m >= dist_edges[d] &&
            s.ue_panel_distance_m < dist_edges[d + 1]) {
          v.push_back(s.throughput_mbps);
        }
      }
      if (v.size() < 10) {
        std::printf(" |   n/a     ");
      } else {
        std::printf(" | %5.0f Mbps ", stats::median(v));
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper: the F sector far outperforms L/R/B, especially at short "
      "distance; behind the panel (B) throughput collapses regardless of "
      "distance.\n");
  return 0;
}

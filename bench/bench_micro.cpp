// Micro-benchmarks (google-benchmark): hot-path costs of the simulator
// and the prediction stack — per-second sim tick, feature extraction,
// and model inference latency (GDBT vs Seq2Seq vs KNN), which bounds how
// cheaply a 5G-aware app can query Lumos5G online (paper §5.2 notes
// short-term inference must be lightweight).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "core/lumos5g.h"
#include "core/throughput_map.h"
#include "data/features.h"
#include "data/quality.h"
#include "sim/faults.h"
#include "data/column_store.h"
#include "ml/binned.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/knn.h"
#include "ml/tree.h"
#include "nn/seq2seq.h"
#include "serve/flat_model.h"
#include "serve/model_io.h"
#include "serve/predictor.h"
#include "serve/server.h"
#include "sim/areas.h"
#include "sim/connection.h"

namespace {

using namespace lumos;

const sim::Area& airport_area() {
  static const sim::Area area = sim::make_airport();
  return area;
}

const data::Dataset& airport_ds() {
  static const data::Dataset ds =
      sim::collect_area_dataset(airport_area(), 6, 0, 11);
  return ds;
}

void BM_SimTick(benchmark::State& state) {
  const auto& area = airport_area();
  Rng rng(1);
  sim::ConnectionManager conn(area.env, rng);
  sim::UEContext ue{{1.5, 0.0}, 0.0, 1.4, data::Activity::kWalking};
  double y = -95.0;
  for (auto _ : state) {
    ue.pos.y = y;
    y += 1.4;
    if (y > 95.0) y = -95.0;
    benchmark::DoNotOptimize(conn.tick(ue, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimTick);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto& ds = airport_ds();
  const auto spec = data::FeatureSetSpec::parse("L+M+C");
  const data::FeatureConfig cfg;
  const auto runs = ds.runs();
  std::vector<data::SampleRecord> window;
  for (std::size_t i = 20; i < 25; ++i) window.push_back(ds[runs[0][i]]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::feature_row_from_window(window, spec, cfg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeatureExtraction);

void BM_GdbtPredict(benchmark::State& state) {
  const auto built = data::build_features(
      airport_ds(), data::FeatureSetSpec::parse("L+M+C"), {});
  ml::GbdtConfig cfg;
  cfg.n_estimators = static_cast<std::size_t>(state.range(0));
  static std::map<long, ml::GbdtRegressor> cache;
  auto [it, fresh] = cache.try_emplace(state.range(0), cfg);
  if (fresh) it->second.fit(built.x, built.y_reg);
  std::size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(it->second.predict(built.x.row(row)));
    row = (row + 1) % built.x.rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GdbtPredict)->Arg(100)->Arg(300);

void BM_KnnPredict(benchmark::State& state) {
  const auto built = data::build_features(
      airport_ds(), data::FeatureSetSpec::parse("L+M"), {});
  static ml::KnnRegressor knn;
  static bool fitted = false;
  if (!fitted) {
    knn.fit(built.x, built.y_reg);
    fitted = true;
  }
  std::size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.predict(built.x.row(row)));
    row = (row + 1) % built.x.rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KnnPredict);

void BM_Seq2SeqPredict(benchmark::State& state) {
  nn::Seq2SeqConfig cfg;
  cfg.input_dim = 5;
  cfg.hidden = 40;
  cfg.layers = 2;
  cfg.seq_len = 12;
  cfg.epochs = 1;
  static nn::Seq2Seq* net = nullptr;
  if (net == nullptr) {
    net = new nn::Seq2Seq(cfg);
    std::vector<nn::SeqSample> tiny(8);
    Rng rng(2);
    for (auto& s : tiny) {
      s.x.resize(cfg.seq_len * cfg.input_dim);
      for (auto& v : s.x) v = rng.normal(0.0, 1.0);
      s.y.assign(1, 0.0);
    }
    net->fit(tiny);
  }
  std::vector<double> window(cfg.seq_len * cfg.input_dim, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->predict(window));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Seq2SeqPredict);

void BM_GdbtTrain1k(benchmark::State& state) {
  const auto built = data::build_features(
      airport_ds(), data::FeatureSetSpec::parse("L+M"), {});
  ml::GbdtConfig cfg;
  cfg.n_estimators = 50;
  // Train on the first 1000 rows.
  ml::FeatureMatrix x(1000, built.x.cols());
  std::vector<double> y(1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    const auto src = built.x.row(i);
    std::copy(src.begin(), src.end(), x.row(i).begin());
    y[i] = built.y_reg[i];
  }
  for (auto _ : state) {
    ml::GbdtRegressor model(cfg);
    model.fit(x, y);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_GdbtTrain1k)->Unit(benchmark::kMillisecond);

// ---- serial vs parallel engine (Arg = thread-pool size) ----
//
// The same fits as above but with the global pool pinned to Arg threads;
// Arg(1) is the sequential fallback path, Arg(4) the threaded path.
// Results are bit-identical across Args (see tests/test_parallel.cpp) —
// only the wall clock may differ, and only on multi-core hosts.

void BM_GdbtTrainThreads(benchmark::State& state) {
  const auto built = data::build_features(
      airport_ds(), data::FeatureSetSpec::parse("L+M+C"), {});
  ThreadPool::global().set_threads(static_cast<std::size_t>(state.range(0)));
  ml::GbdtConfig cfg;
  cfg.n_estimators = 60;
  for (auto _ : state) {
    ml::GbdtRegressor model(cfg);
    model.fit(built.x, built.y_reg);
    benchmark::DoNotOptimize(model);
  }
  ThreadPool::global().set_threads(0);  // back to LUMOS_THREADS / hardware
}
BENCHMARK(BM_GdbtTrainThreads)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_RfTrainThreads(benchmark::State& state) {
  const auto built = data::build_features(
      airport_ds(), data::FeatureSetSpec::parse("L+M+C"), {});
  ThreadPool::global().set_threads(static_cast<std::size_t>(state.range(0)));
  ml::ForestConfig cfg;
  cfg.n_trees = 30;
  for (auto _ : state) {
    ml::RandomForestRegressor model(cfg);
    model.fit(built.x, built.y_reg);
    benchmark::DoNotOptimize(model);
  }
  ThreadPool::global().set_threads(0);
}
BENCHMARK(BM_RfTrainThreads)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_PredictAllThreads(benchmark::State& state) {
  const auto built = data::build_features(
      airport_ds(), data::FeatureSetSpec::parse("L+M+C"), {});
  static ml::KnnRegressor knn;
  static bool fitted = false;
  if (!fitted) {
    knn.fit(built.x, built.y_reg);
    fitted = true;
  }
  ThreadPool::global().set_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.predict_all(built.x));
  }
  ThreadPool::global().set_threads(0);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(built.x.rows()));
}
BENCHMARK(BM_PredictAllThreads)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// ---- dirty-data path: validate / repair throughput ----
//
// A fault-injected copy of the airport campaign (uniform 20% impairment
// rate) exercises every defect class the quality layer knows about.

const data::Dataset& dirty_ds() {
  static const data::Dataset ds = [] {
    sim::FaultConfig fc = sim::FaultConfig::uniform(0.2);
    return sim::FaultInjector(fc, 42).inject(airport_ds());
  }();
  return ds;
}

void BM_ValidateDataset(benchmark::State& state) {
  const auto& ds = dirty_ds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::validate(ds));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ds.size()));
}
BENCHMARK(BM_ValidateDataset)->Unit(benchmark::kMillisecond);

void BM_RepairDataset(benchmark::State& state) {
  const auto& ds = dirty_ds();
  const data::RepairPolicy policy;
  for (auto _ : state) {
    data::Dataset copy = ds;  // repair() works in place
    benchmark::DoNotOptimize(data::repair(copy, policy));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ds.size()));
}
BENCHMARK(BM_RepairDataset)->Unit(benchmark::kMillisecond);

// NaN-routing overhead: the same fitted model scores a clean row
// (Arg = 0) and a row whose signal features are NaN (Arg = 1), so any
// missing-branch routing cost shows up as the delta between the two.
void BM_GdbtPredictNaNRouting(benchmark::State& state) {
  static const auto built = data::build_features(
      airport_ds(), data::FeatureSetSpec::parse("L+M+C"), {});
  ml::GbdtConfig cfg;
  cfg.n_estimators = 100;
  static ml::GbdtRegressor* model = nullptr;
  if (model == nullptr) {
    model = new ml::GbdtRegressor(cfg);
    model->fit(built.x, built.y_reg);
  }
  std::vector<double> row(built.x.row(0).begin(), built.x.row(0).end());
  if (state.range(0) == 1) {
    // Blank out the tail (connection-context) half of the feature row.
    for (std::size_t j = row.size() / 2; j < row.size(); ++j) {
      row[j] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->predict(row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GdbtPredictNaNRouting)->Arg(0)->Arg(1);

// ---- serving runtime: flattened layout vs pointer layout ----
//
// The same fitted GBDT scored three ways over the full feature matrix:
//   Arg(0)  pointer layout, per-row predict() (the seed path)
//   Arg(1)  flattened node-array, per-row predict()
//   Arg(2)  flattened node-array, predict_batch() over the thread pool
// All three are bit-identical (tests/test_serve.cpp); only the walk
// differs. items/sec is rows scored per second, so the flat/pointer
// ratio reads directly off the report.

void BM_FlatVsPointerPredict(benchmark::State& state) {
  static const auto built = data::build_features(
      airport_ds(), data::FeatureSetSpec::parse("L+M+C"), {});
  ml::GbdtConfig cfg;
  cfg.n_estimators = 300;
  static ml::GbdtRegressor* model = nullptr;
  if (model == nullptr) {
    model = new ml::GbdtRegressor(cfg);
    model->fit(built.x, built.y_reg);
  }
  static const serve::FlatForest flat = serve::FlatForest::flatten(*model);
  const long mode = state.range(0);
  for (auto _ : state) {
    if (mode == 0) {
      for (std::size_t r = 0; r < built.x.rows(); ++r) {
        benchmark::DoNotOptimize(model->predict(built.x.row(r)));
      }
    } else if (mode == 1) {
      for (std::size_t r = 0; r < built.x.rows(); ++r) {
        benchmark::DoNotOptimize(flat.predict(built.x.row(r)));
      }
    } else {
      benchmark::DoNotOptimize(flat.predict_batch(built.x));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(built.x.rows()));
}
BENCHMARK(BM_FlatVsPointerPredict)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// ---- columnar feature store (DESIGN §11) ----
//
// The histogram build is the inner loop of every tree fit. Arg(0) builds
// one tree over row-major uint16 codes (the seed layout: a d-strided walk
// per candidate feature); Arg(1) over the pre-binned SoA BinnedMatrix
// (one contiguous, usually uint8, column per feature). The fitted trees
// are bit-identical (tests/test_columnar.cpp); only the memory walk
// differs, so the Arg(0)/Arg(1) ratio is the layout win.
void BM_HistogramBuild(benchmark::State& state) {
  // Sized like a wide training campaign (full L+M+C expansion plus lag
  // features): the row-major codes (rows x cols x 2B = 4 MB, 128 B row
  // stride) spill the cache, while one columnar uint8 column (32 KB)
  // stays resident.
  constexpr std::size_t kRows = 32768;
  constexpr std::size_t kCols = 64;
  static const ml::FeatureMatrix* x = [] {
    auto* m = new ml::FeatureMatrix(kRows, kCols);
    Rng rng(7);
    for (std::size_t r = 0; r < kRows; ++r) {
      const auto row = m->row(r);
      for (std::size_t f = 0; f < kCols; ++f) row[f] = rng.normal(0.0, 1.0);
    }
    return m;
  }();
  static const std::vector<double>* grad = [] {
    auto* g = new std::vector<double>(kRows);
    Rng rng(8);
    for (auto& v : *g) v = rng.normal(0.0, 1.0);
    return g;
  }();
  static const std::vector<double> hess(kRows, 1.0);
  static const std::vector<std::size_t>* indices = [] {
    auto* idx = new std::vector<std::size_t>(kRows);
    for (std::size_t i = 0; i < kRows; ++i) (*idx)[i] = i;
    return idx;
  }();
  static const ml::BinMapper* mapper = [] {
    auto* m = new ml::BinMapper;
    m->fit(*x, 128);  // codes fit uint8: every columnar column is narrow
    return m;
  }();
  static const std::vector<std::uint16_t> codes = mapper->encode(*x);
  static const ml::BinnedMatrix binned = ml::BinnedMatrix::build(*mapper, *x);
  ml::TreeConfig cfg;
  // Shallow tree: the big sequential root-level histogram passes dominate,
  // which is the kernel under measurement (deeper levels shrink nodes into
  // cache, where layout stops mattering and tree bookkeeping takes over).
  cfg.max_depth = 3;
  const long mode = state.range(0);
  for (auto _ : state) {
    ml::GradientTree tree;
    if (mode == 0) {
      tree.fit(codes, *mapper, *grad, hess, *indices, cfg);
    } else {
      tree.fit(binned, *mapper, *grad, hess, *indices, cfg);
    }
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRows));
}
BENCHMARK(BM_HistogramBuild)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Serving-side layout comparison over the same flattened 300-tree GBDT:
//   Arg(0)  per-row predict() over row-major feature rows
//   Arg(1)  predict_columnar() over a ColumnStore (level-synchronous row
//           blocks over contiguous feature columns)
// Outputs are bit-identical (tests/test_columnar.cpp).
void BM_ColumnarVsRowPredict(benchmark::State& state) {
  static const auto built = data::build_features(
      airport_ds(), data::FeatureSetSpec::parse("L+M+C"), {});
  ml::GbdtConfig cfg;
  cfg.n_estimators = 300;
  static ml::GbdtRegressor* model = nullptr;
  if (model == nullptr) {
    model = new ml::GbdtRegressor(cfg);
    model->fit(built.x, built.y_reg);
  }
  static const serve::FlatForest flat = serve::FlatForest::flatten(*model);
  static const data::ColumnStore cols =
      data::ColumnStore::from_matrix(built.x);
  static std::vector<double> out(built.x.rows());
  const long mode = state.range(0);
  for (auto _ : state) {
    if (mode == 0) {
      for (std::size_t r = 0; r < built.x.rows(); ++r) {
        out[r] = flat.predict(built.x.row(r));
      }
    } else {
      flat.predict_columnar(cols.block(0, built.x.rows()), out);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(built.x.rows()));
}
BENCHMARK(BM_ColumnarVsRowPredict)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Shared serving fixtures: one trained T+M+C facade and its compiled
// snapshot, reused by the batch, server-loop, and reload benches.
const core::Lumos5G& serve_facade() {
  static const core::Lumos5G* facade = [] {
    core::Lumos5GConfig cfg;
    cfg.feature_spec = data::FeatureSetSpec::parse("T+M+C");
    cfg.gbdt.n_estimators = 60;
    auto* f = new core::Lumos5G(cfg);
    if (!f->train(airport_ds())) std::abort();
    return f;
  }();
  return *facade;
}

const serve::Predictor& serve_predictor() {
  static const serve::Predictor* predictor = [] {
    auto compiled = serve::Predictor::compile(serve_facade());
    if (!compiled) std::abort();
    return new serve::Predictor(std::move(*compiled));
  }();
  return *predictor;
}

// End-to-end serving throughput (preds/sec): a compiled Predictor answers
// a fleet of per-UE sessions, batched over the pool (Arg = pool size).
void BM_ServePredictBatch(benchmark::State& state) {
  static const serve::Predictor* predictor = &serve_predictor();
  static const std::vector<serve::Session> sessions = [] {
    std::vector<serve::Session> out;
    const auto& ds = airport_ds();
    const auto runs = ds.runs();
    for (const auto& run : runs) {
      for (std::size_t start = 10; start + 8 < run.size() && out.size() < 256;
           start += 9) {
        serve::Session s;
        for (std::size_t i = start; i < start + 8; ++i) s.observe(ds[run[i]]);
        out.push_back(std::move(s));
      }
    }
    return out;
  }();
  ThreadPool::global().set_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor->predict_batch(sessions));
  }
  ThreadPool::global().set_threads(0);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sessions.size()));
}
BENCHMARK(BM_ServePredictBatch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// The resilient server loop end to end (requests/sec): admission control,
// deadline stamping, session upkeep, the depth-derived tier floor, and the
// sharded batched predict, driven submit->step on a virtual clock
// (threads = pool size = shard count, the server's default pairing). The
// delta against BM_ServePredictBatch is the loop's overhead; the
// threads:1 vs threads:8 ratio is the shard fan-out win (flat on a
// single-core host). `preds_per_sec` reports served predictions per
// second directly so the scaling curve reads off the counter column.
void BM_ServerThroughput(benchmark::State& state) {
  static const std::vector<data::SampleRecord>* stream = [] {
    auto* v = new std::vector<data::SampleRecord>;
    const auto& ds = airport_ds();
    for (const auto& run : ds.runs()) {
      for (std::size_t i = 0; i < run.size() && v->size() < 2048; ++i) {
        v->push_back(ds[run[i]]);
      }
    }
    return v;
  }();
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool::global().set_threads(threads);
  for (auto _ : state) {
    ManualClock clock;
    serve::ServerConfig cfg;
    cfg.queue_capacity = 64;
    cfg.max_batch = 16;
    cfg.num_shards = threads;
    serve::Server server(serve::Predictor(serve_predictor()), cfg, clock);
    std::size_t i = 0;
    for (const auto& s : *stream) {
      benchmark::DoNotOptimize(server.submit({i % 16, s, 0}));
      if (++i % 16 == 0) {
        clock.advance_ms(1'000);
        benchmark::DoNotOptimize(server.step());
      }
    }
    benchmark::DoNotOptimize(server.drain());
  }
  ThreadPool::global().set_threads(0);
  const auto total = state.iterations() *
                     static_cast<std::int64_t>(stream->size());
  state.SetItemsProcessed(total);
  state.counters["preds_per_sec"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServerThroughput)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The SIMD columnar walk in isolation: the same flattened 300-tree GBDT
// scores the full feature matrix through predict_columnar() with the
// vector kernel forced off (simd:0 — the scalar level-synchronous walk)
// and on (simd:1 — the lane-parallel masked-gather walk, when the build
// has one). Outputs are bit-identical (tests/test_shard.cpp); the
// simd:0 / simd:1 ratio is the kernel win. On a build without a vector
// ISA both rows run the scalar path and the ratio pins at ~1x.
void BM_ColumnarWalkSimd(benchmark::State& state) {
  static const auto built = data::build_features(
      airport_ds(), data::FeatureSetSpec::parse("L+M+C"), {});
  ml::GbdtConfig cfg;
  cfg.n_estimators = 300;
  static ml::GbdtRegressor* model = nullptr;
  if (model == nullptr) {
    model = new ml::GbdtRegressor(cfg);
    model->fit(built.x, built.y_reg);
  }
  static const serve::FlatForest flat = serve::FlatForest::flatten(*model);
  static const data::ColumnStore cols =
      data::ColumnStore::from_matrix(built.x);
  static std::vector<double> out(built.x.rows());
  const bool was_enabled = simd::enabled();
  simd::set_enabled(state.range(0) == 1);
  for (auto _ : state) {
    flat.predict_columnar(cols.block(0, built.x.rows()), out);
    benchmark::DoNotOptimize(out.data());
  }
  simd::set_enabled(was_enabled);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(built.x.rows()));
  state.SetLabel(state.range(0) == 1 ? simd::isa_name() : "scalar");
}
BENCHMARK(BM_ColumnarWalkSimd)
    ->ArgName("simd")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// The stall a hot reload inserts between serving steps: full envelope
// validation + payload parse + tier compile + atomic swap of a T+M+C
// facade artifact already in memory (the disk read is BM-irrelevant and
// retried I/O is a policy knob, not a hot path).
void BM_ServerReloadStall(benchmark::State& state) {
  static const std::string* bytes =
      new std::string(serve::save_bytes(serve_facade()));
  ManualClock clock;
  serve::Server server(serve::Predictor(serve_predictor()),
                       serve::ServerConfig{}, clock);
  for (auto _ : state) {
    if (!server.reload_bytes(*bytes)) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerReloadStall)->Unit(benchmark::kMillisecond);

void BM_ThroughputMapBuild(benchmark::State& state) {
  const auto& ds = airport_ds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ThroughputMap::build(ds, 2));
  }
}
BENCHMARK(BM_ThroughputMapBuild)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of benchmark_main: stamps the context keys benchgate
// gates on (`lumos_build_type` — the measured library's own build type, as
// opposed to google-benchmark's `library_build_type` — and the selected
// SIMD ISA), and prints a loud banner when this binary was built without
// NDEBUG so debug numbers never get committed as a baseline.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("lumos_build_type", lumos::bench::build_type());
  benchmark::AddCustomContext("lumos_simd", lumos::simd::isa_name());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lumos::bench::warn_if_debug();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Reproduces paper Tables 7 AND 8 from one training grid (each evaluation
// yields both classification and regression metrics):
//   Table 7 — weighted-average F1 | low-class recall
//   Table 8 — MAE / RMSE (Mbps)
// for GDBT and Seq2Seq across feature-group combinations and areas.
#include <array>

#include "bench_util.h"

namespace {

using namespace lumos;

constexpr const char* kGroups[] = {"L", "L+M", "T+M", "L+M+C", "T+M+C"};

struct AreaEntry {
  const char* name;
  data::Dataset ds;
};

}  // namespace

int main() {
  const auto cfg = bench::standard_config();

  std::vector<AreaEntry> areas;
  areas.push_back({"Intersection", bench::intersection_dataset()});
  areas.push_back({"Loop", bench::loop_dataset()});
  areas.push_back({"Airport", bench::airport_dataset()});
  areas.push_back({"Global", bench::global_dataset()});

  // One pass over the full grid; results reused for both tables. Each
  // area's (group x model) cells evaluate concurrently on the global
  // thread pool (LUMOS_THREADS); results are identical to the sequential
  // sweep.
  // results[group][area][model(0=GDBT,1=Seq2Seq)]
  std::vector<std::vector<std::array<core::EvalResult, 2>>> results(
      std::size(kGroups));
  for (auto& row : results) row.resize(areas.size());
  for (std::size_t ai = 0; ai < areas.size(); ++ai) {
    std::vector<core::GridCell> cells;
    for (const char* g : kGroups) {
      const auto spec = data::FeatureSetSpec::parse(g);
      cells.push_back({core::ModelKind::kGdbt, spec});
      cells.push_back({core::ModelKind::kSeq2Seq, spec});
    }
    const auto cell_results = core::evaluate_grid(areas[ai].ds, cells, cfg);
    for (std::size_t gi = 0; gi < std::size(kGroups); ++gi) {
      results[gi][ai][0] = cell_results[gi * 2];
      results[gi][ai][1] = cell_results[gi * 2 + 1];
    }
  }

  bench::print_header(
      "Table 7 — classification: weighted-average F1 | low-class recall "
      "(GDBT, Seq2Seq)");
  std::printf("%-8s", "Group");
  for (const auto& a : areas) std::printf(" | %-21s", a.name);
  std::printf("\n");
  bench::print_rule();
  for (std::size_t gi = 0; gi < std::size(kGroups); ++gi) {
    std::printf("%-8s", kGroups[gi]);
    for (std::size_t ai = 0; ai < areas.size(); ++ai) {
      std::printf(" |");
      for (const auto& r : results[gi][ai]) {
        if (r.valid) {
          std::printf(" %4.2f|%4.2f", r.weighted_f1, r.low_recall);
        } else {
          std::printf("    -     ");
        }
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper (Global w-avgF1): L 0.78/0.73, L+M 0.90/0.93, T+M 0.91/0.94, "
      "L+M+C 0.92/0.96, T+M+C 0.92/0.95.\n");

  bench::print_header("Table 8 — regression: MAE / RMSE Mbps (GDBT, Seq2Seq)");
  std::printf("%-8s", "Group");
  for (const auto& a : areas) std::printf(" | %-21s", a.name);
  std::printf("\n");
  bench::print_rule();
  for (std::size_t gi = 0; gi < std::size(kGroups); ++gi) {
    std::printf("%-8s", kGroups[gi]);
    for (std::size_t ai = 0; ai < areas.size(); ++ai) {
      std::printf(" |");
      for (const auto& r : results[gi][ai]) {
        if (r.valid) {
          std::printf(" %4.0f/%4.0f", r.mae, r.rmse);
        } else {
          std::printf("     -   ");
        }
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper (Global MAE GDBT/Seq2Seq): L 225/208, L+M 127/74, T+M 115/52, "
      "L+M+C 109/49, T+M+C 100/57.\n"
      "Expected shape: steep error drop L -> L+M -> (+C); no T column for "
      "the Loop; Seq2Seq at or below GDBT on composed groups.\n");
  return 0;
}

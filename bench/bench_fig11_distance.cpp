// Reproduces paper Fig. 11: throughput versus UE-panel distance for the
// two airport panels. The unobstructed north panel decays monotonically
// (Fig. 11a); the south panel dips in the booth band and regains LoS
// beyond it (Fig. 11b).
#include "bench_util.h"
#include "stats/descriptive.h"

namespace {

using namespace lumos;

void distance_table(const char* title, const data::Dataset& ds, int cell_id,
                    double bin_m) {
  std::printf("\n%s\n", title);
  std::printf("%-14s %6s %8s %8s %8s\n", "distance bin", "n", "p25", "median",
              "p75");
  bench::print_rule();
  for (double lo = 0.0; lo < 200.0; lo += bin_m) {
    std::vector<double> v;
    for (const auto& s : ds.samples()) {
      if (s.cell_id != cell_id || !s.has_panel_geometry()) continue;
      if (s.ue_panel_distance_m >= lo && s.ue_panel_distance_m < lo + bin_m) {
        v.push_back(s.throughput_mbps);
      }
    }
    if (v.size() < 15) {
      std::printf("[%4.0f,%4.0f)m %6zu %8s %8s %8s\n", lo, lo + bin_m,
                  v.size(), "n/a", "n/a", "n/a");
      continue;
    }
    const auto su = stats::summarize(v);
    std::printf("[%4.0f,%4.0f)m %6zu %8.0f %8.0f %8.0f  %s\n", lo, lo + bin_m,
                v.size(), su.p25, su.median, su.p75,
                bench::bar(su.median, 1200.0, 30).c_str());
  }
}

}  // namespace

int main() {
  bench::print_header("Fig. 11 — varying impact of UE-panel distance");
  const auto ds = bench::airport_dataset();
  distance_table("Fig. 11a — north panel (unobstructed)", ds, /*cell=*/2,
                 25.0);
  distance_table("Fig. 11b — south panel (booths at 22-52 m)", ds, /*cell=*/1,
                 15.0);
  std::printf(
      "\nPaper: north panel decays with distance; south panel throughput "
      "first drops (NLoS band) then RAMPS BACK UP once LoS is regained — "
      "the regained throughput outweighs the distance penalty.\n");
  return 0;
}

// Reproduces paper Appendix A.4: 4G vs 5G throughput predictability.
// Two phones walk the Loop side-by-side — one locked to LTE, one on 5G.
// Location-based models (KNN, OK, RF) that work well for 4G fail on 5G
// by roughly an order of magnitude.
#include "bench_util.h"

namespace {

using namespace lumos;

data::Dataset collect_locked(bool lock_lte) {
  const sim::Area area = sim::make_loop();
  data::Dataset ds;
  const sim::MeasurementCollector collector(area.env);
  sim::CollectorConfig cfg;
  cfg.n_runs = 3;
  cfg.lock_lte = lock_lte;
  sim::MotionConfig walk;
  walk.mode = data::Activity::kWalking;
  // Both phones walk the same trajectories with the same seeds: the
  // "side-by-side" protocol of A.4.
  collector.collect(area.walking[0], walk, {}, cfg, 5150, ds);
  collector.collect(area.walking[1], walk, {}, cfg, 5151, ds);
  ds.clean();
  return ds;
}

}  // namespace

int main() {
  bench::print_header("A.4 — 4G vs 5G predictability with location models");
  auto cfg = bench::standard_config();
  const auto spec = data::FeatureSetSpec::parse("L");

  const auto lte_ds = collect_locked(true);
  const auto nr_ds = collect_locked(false);
  std::printf("4G-locked samples: %zu, 5G samples: %zu\n\n", lte_ds.size(),
              nr_ds.size());

  std::printf("%-8s %14s %14s %8s\n", "model", "4G MAE (Mbps)",
              "5G MAE (Mbps)", "ratio");
  bench::print_rule();
  for (const auto kind : {core::ModelKind::kKnn, core::ModelKind::kKriging,
                          core::ModelKind::kRandomForest}) {
    const auto r4 = core::evaluate_model(kind, lte_ds, spec, cfg);
    const auto r5 = core::evaluate_model(kind, nr_ds, spec, cfg);
    std::printf("%-8s %14.1f %14.1f %7.1fx\n", core::to_string(kind), r4.mae,
                r5.mae, r5.mae / std::max(1.0, r4.mae));
  }

  std::printf(
      "\nPaper: MAE [29.0, 69.1, 25.9] on 4G vs [326, 626, 340] on 5G for "
      "KNN/OK/RF — about 10x worse. Location alone predicts 4G but not "
      "mmWave 5G.\n");
  return 0;
}

// Reproduces paper Table 9: Lumos5G (GDBT, Seq2Seq) against the 3G/4G-era
// baselines — KNN, Random Forest [20], Ordinary Kriging [26] and the
// history-based Harmonic Mean [38, 64] — on the Global dataset, both
// regression and classification.
#include "bench_util.h"

namespace {

using namespace lumos;

constexpr core::ModelKind kModels[] = {
    core::ModelKind::kKnn, core::ModelKind::kRandomForest,
    core::ModelKind::kKriging, core::ModelKind::kGdbt,
    core::ModelKind::kSeq2Seq};

}  // namespace

int main() {
  bench::print_header("Table 9 — baseline comparison on the Global dataset");
  const auto cfg = bench::standard_config();
  const auto ds = bench::global_dataset();
  const char* groups[] = {"L", "L+M", "T+M", "L+M+C", "T+M+C"};

  // Cache results so both sub-tables reuse one training pass per cell.
  // All 25 (group, model) cells evaluate concurrently on the global
  // thread pool (LUMOS_THREADS); results match the sequential sweep.
  std::vector<core::GridCell> cells;
  for (const char* g : groups) {
    for (const auto kind : kModels) {
      cells.push_back({kind, data::FeatureSetSpec::parse(g)});
    }
  }
  const auto flat = core::evaluate_grid(ds, cells, cfg);
  std::vector<std::vector<core::EvalResult>> results;
  for (std::size_t gi = 0; gi < std::size(groups); ++gi) {
    results.emplace_back(flat.begin() + static_cast<std::ptrdiff_t>(
                                            gi * std::size(kModels)),
                         flat.begin() + static_cast<std::ptrdiff_t>(
                                            (gi + 1) * std::size(kModels)));
  }

  std::printf("\nRegression (MAE | RMSE, Mbps)\n");
  std::printf("%-8s %11s %11s %11s %11s %11s\n", "Group", "KNN", "RF", "OK",
              "GDBT", "Seq2Seq");
  bench::print_rule();
  for (std::size_t gi = 0; gi < std::size(groups); ++gi) {
    std::printf("%-8s", groups[gi]);
    for (const auto& r : results[gi]) {
      if (r.valid) {
        std::printf(" %5.0f|%5.0f", r.mae, r.rmse);
      } else {
        std::printf("     NA    ");
      }
    }
    std::printf("\n");
  }

  std::printf("\nClassification (weighted-average F1)\n");
  std::printf("%-8s %11s %11s %11s %11s %11s\n", "Group", "KNN", "RF", "OK",
              "GDBT", "Seq2Seq");
  bench::print_rule();
  for (std::size_t gi = 0; gi < std::size(groups); ++gi) {
    std::printf("%-8s", groups[gi]);
    for (const auto& r : results[gi]) {
      if (r.valid) {
        std::printf(" %10.2f", r.weighted_f1);
      } else {
        std::printf("         NA");
      }
    }
    std::printf("\n");
  }

  const auto hm = core::evaluate_model(core::ModelKind::kHarmonicMean, ds,
                                       data::FeatureSetSpec::parse("L"), cfg);
  std::printf("\nHistory-based Harmonic Mean (HM): MAE %.0f | RMSE %.0f | "
              "w-avgF1 %.2f\n", hm.mae, hm.rmse, hm.weighted_f1);

  // Headline: improvement factor of the best Lumos5G model over the best
  // baseline per feature group (paper: 1.37x-4.84x error reduction).
  std::printf("\nError-reduction factor (best baseline MAE / best Lumos5G MAE)\n");
  for (std::size_t gi = 0; gi < std::size(groups); ++gi) {
    double best_base = 1e18, best_ours = 1e18;
    for (std::size_t mi = 0; mi < std::size(kModels); ++mi) {
      const auto& r = results[gi][mi];
      if (!r.valid) continue;
      if (kModels[mi] == core::ModelKind::kGdbt ||
          kModels[mi] == core::ModelKind::kSeq2Seq) {
        best_ours = std::min(best_ours, r.mae);
      } else {
        best_base = std::min(best_base, r.mae);
      }
    }
    if (best_base < 1e17 && best_ours < 1e17) {
      std::printf("  %-8s %.2fx\n", groups[gi], best_base / best_ours);
    }
  }
  std::printf(
      "\nPaper: GDBT/Seq2Seq dominate all baselines in every group; "
      "27-79%% MAE reduction; OK applies to L only.\n");
  return 0;
}

// Reproduces paper Fig. 14: the impact of mobility speed on 5G throughput
// on the Loop area — coarse 5 kmph bins for driving (Fig. 14a) and a
// fine-grained walking-vs-driving comparison (Fig. 14b).
#include "bench_util.h"
#include "stats/descriptive.h"

namespace {

using namespace lumos;

void speed_table(const char* title, const data::Dataset& ds,
                 data::Activity mode, double bin_kmph, double max_kmph) {
  std::printf("\n%s\n", title);
  std::printf("%-14s %6s %8s %8s %8s %8s\n", "speed bin", "n", "p25",
              "median", "p75", "max");
  bench::print_rule();
  for (double lo = 0.0; lo < max_kmph; lo += bin_kmph) {
    std::vector<double> v;
    for (const auto& s : ds.samples()) {
      const double kmph = s.moving_speed_mps * 3.6;
      const bool mode_ok =
          s.detected_activity == mode ||
          (mode == data::Activity::kDriving &&
           s.detected_activity == data::Activity::kStill && kmph < 2.0 &&
           s.trajectory_id >= 3);  // stopped car still counts as driving
      if (!mode_ok) continue;
      if (kmph >= lo && kmph < lo + bin_kmph) v.push_back(s.throughput_mbps);
    }
    if (v.size() < 12) continue;
    const auto su = stats::summarize(v);
    std::printf("[%4.0f,%4.0f)  %6zu %8.0f %8.0f %8.0f %8.0f  %s\n", lo,
                lo + bin_kmph, v.size(), su.p25, su.median, su.p75, su.max,
                bench::bar(su.median, 900.0, 25).c_str());
  }
}

}  // namespace

int main() {
  bench::print_header("Fig. 14 — impact of mobility speed (Loop area)");
  const auto ds = bench::loop_dataset();

  speed_table("Fig. 14a — driving, 5 kmph bins", ds,
              data::Activity::kDriving, 5.0, 45.0);
  speed_table("Fig. 14b (driving), 1 kmph bins up to 8", ds,
              data::Activity::kDriving, 1.0, 8.0);
  speed_table("Fig. 14b (walking), 1 kmph bins", ds,
              data::Activity::kWalking, 1.0, 8.0);

  std::printf(
      "\nPaper: stopped/slow cars peak at ~1.8 Gbps (median ~557 Mbps); past "
      "5 kmph driving medians collapse to 60-164 Mbps; walking shows no "
      "degradation with speed and medians 148-457 Mbps above driving.\n");
  return 0;
}

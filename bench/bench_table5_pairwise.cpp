// Reproduces paper Table 5: the percentage of geolocation (grid cell)
// pairs whose throughput distributions differ significantly — pairwise
// t-test on means and Levene test on variances, significance level 0.1.
#include <map>

#include "bench_util.h"
#include "stats/hypothesis.h"

namespace {

using namespace lumos;

struct PairwiseResult {
  double t_frac = 0.0;
  double levene_frac = 0.0;
  std::size_t cells = 0;
  std::size_t pairs = 0;
};

PairwiseResult pairwise_tests(const data::Dataset& ds,
                              std::size_t max_cells = 120) {
  // Collect per-cell samples with enough support.
  std::vector<std::vector<double>> cells;
  for (const auto& [key, v] : ds.throughput_by_grid(3)) {
    if (v.size() >= 10) cells.push_back(v);
  }
  // Cap the O(n^2) pair count deterministically (stride subsample).
  if (cells.size() > max_cells) {
    std::vector<std::vector<double>> sub;
    const double step =
        static_cast<double>(cells.size()) / static_cast<double>(max_cells);
    for (std::size_t i = 0; i < max_cells; ++i) {
      sub.push_back(
          cells[static_cast<std::size_t>(static_cast<double>(i) * step)]);
    }
    cells = std::move(sub);
  }

  PairwiseResult out;
  out.cells = cells.size();
  std::size_t t_sig = 0, lev_sig = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      ++out.pairs;
      if (stats::welch_t_test(cells[i], cells[j]).p_value < 0.1) ++t_sig;
      if (stats::levene_test(cells[i], cells[j]).p_value < 0.1) ++lev_sig;
    }
  }
  if (out.pairs > 0) {
    out.t_frac = 100.0 * static_cast<double>(t_sig) /
                 static_cast<double>(out.pairs);
    out.levene_frac = 100.0 * static_cast<double>(lev_sig) /
                      static_cast<double>(out.pairs);
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Table 5 — % of geolocation pairs with significantly different "
      "throughput (p < 0.1)");

  const auto indoor = pairwise_tests(bench::airport_dataset());
  const auto outdoor = pairwise_tests(bench::intersection_dataset());

  std::printf("%-24s %10s %10s\n", "", "Indoor", "Outdoor");
  lumos::bench::print_rule();
  std::printf("%-24s %9.1f%% %9.1f%%\n", "Pairwise t-test", indoor.t_frac,
              outdoor.t_frac);
  std::printf("%-24s %9.1f%% %9.1f%%\n", "Pairwise Levene test",
              indoor.levene_frac, outdoor.levene_frac);
  std::printf("(cells: indoor %zu, outdoor %zu; pairs: %zu / %zu)\n",
              indoor.cells, outdoor.cells, indoor.pairs, outdoor.pairs);
  std::printf(
      "\nPaper: t-test 70.86%% / 69.66%%; Levene 64.26%% / 61.06%% — "
      "geolocation still matters for 5G throughput prediction.\n");
  return 0;
}

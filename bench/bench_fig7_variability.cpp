// Reproduces paper Figs. 7 and 17: distributions of per-cell variability.
//   Fig. 7a  — CDF of pairwise t-test p-values between geolocations
//   Fig. 7b  — CDF of per-geolocation coefficient of variation
//   Fig. 17  — Levene p-value CDF and normality-test summary
#include "bench_util.h"
#include "stats/descriptive.h"
#include "stats/distribution.h"
#include "stats/hypothesis.h"
#include "stats/normality.h"

namespace {

using namespace lumos;

std::vector<std::vector<double>> usable_cells(const data::Dataset& ds,
                                              std::size_t cap = 100) {
  std::vector<std::vector<double>> cells;
  for (const auto& [key, v] : ds.throughput_by_grid(3)) {
    if (v.size() >= 10) cells.push_back(v);
  }
  if (cells.size() > cap) {
    std::vector<std::vector<double>> sub;
    const double step =
        static_cast<double>(cells.size()) / static_cast<double>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      sub.push_back(
          cells[static_cast<std::size_t>(static_cast<double>(i) * step)]);
    }
    cells = std::move(sub);
  }
  return cells;
}

void print_cdf(const char* title, std::vector<double> values,
               const std::vector<double>& probes) {
  std::printf("\n%s (n=%zu)\n", title, values.size());
  for (double p : probes) {
    std::printf("  P(x <= %6.3f) = %5.1f%%\n", p,
                100.0 * stats::ecdf_at(values, p));
  }
}

void run_area(const char* name, const data::Dataset& ds) {
  bench::print_header(std::string("Variability analysis — ") + name);
  const auto cells = usable_cells(ds);

  std::vector<double> t_pvals, lev_pvals, cvs;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cvs.push_back(stats::coefficient_of_variation(cells[i]));
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      t_pvals.push_back(stats::welch_t_test(cells[i], cells[j]).p_value);
      lev_pvals.push_back(stats::levene_test(cells[i], cells[j]).p_value);
    }
  }
  std::size_t normal = 0;
  for (const auto& c : cells) {
    if (stats::is_normal_either(c, 0.001)) ++normal;
  }

  print_cdf("Fig. 7a — pairwise t-test p-value CDF", t_pvals,
            {0.001, 0.01, 0.05, 0.1, 0.5});
  print_cdf("Fig. 7b — per-cell CV CDF", cvs, {0.25, 0.5, 0.75, 1.0});
  print_cdf("Fig. 17 — pairwise Levene p-value CDF", lev_pvals,
            {0.001, 0.01, 0.05, 0.1, 0.5});
  std::printf("\nFig. 17 — normality: %.1f%% of cells pass either "
              "D'Agostino-Pearson or Anderson-Darling (alpha=0.001)\n",
              100.0 * static_cast<double>(normal) /
                  static_cast<double>(cells.size()));
}

}  // namespace

int main() {
  run_area("Indoor (Airport)", bench::airport_dataset());
  run_area("Outdoor (Intersection)", bench::intersection_dataset());
  std::printf(
      "\nPaper: ~70%% of t-test pairs significant at 0.1; ~53%% of cells "
      "with CV >= 50%% (indoor); roughly half of cells non-normal.\n");
  return 0;
}

// Reproduces paper Fig. 21 (Appendix A.1.4): the multi-UE congestion
// staircase — four UEs side-by-side under one panel start staggered iPerf
// sessions; each arrival roughly halves then quarters UE1's share.
#include <cmath>

#include "bench_util.h"
#include "sim/congestion.h"
#include "stats/descriptive.h"

int main() {
  using namespace lumos;
  bench::print_header("Fig. 21 — multi-UE airtime sharing (Airport, ~25 m LoS)");

  const sim::Area area = sim::make_airport();
  sim::CongestionConfig cfg;
  cfg.position = {0.0, 75.0};  // ~25 m in front of the north panel
  cfg.heading_deg = 0.0;
  const auto res = sim::run_congestion_experiment(area.env, cfg, 909);

  std::printf("UE1 throughput by minute (other UEs join at 60s intervals):\n");
  std::printf("%-8s %8s %12s %10s\n", "minute", "active", "UE1 median",
              "UE1 mean");
  bench::print_rule();
  std::vector<double> minute_medians;
  for (int m = 0; m < 4; ++m) {
    std::vector<double> v;
    for (int t = m * 60 + 5; t < (m + 1) * 60; ++t) {
      const double x = res.throughput[0][static_cast<std::size_t>(t)];
      if (!std::isnan(x)) v.push_back(x);
    }
    // stats::median on an empty sample is NaN by contract; an all-NaN
    // minute (UE never scheduled) should print as 0 rather than poison
    // the share-ratio row below.
    const double med = v.empty() ? 0.0 : stats::median(v);
    minute_medians.push_back(med);
    std::printf("%-8d %8d %9.0f %10.0f  %s\n", m + 1,
                res.active_count[static_cast<std::size_t>(m * 60 + 30)], med,
                stats::mean(v), bench::bar(med, minute_medians[0], 30).c_str());
  }

  std::printf("\nShare ratios vs solo minute: ");
  for (std::size_t m = 1; m < minute_medians.size(); ++m) {
    std::printf("1/%.1f ", minute_medians[0] / minute_medians[m]);
  }
  std::printf("\n\nPer-UE medians in the final minute (all four active):\n");
  for (std::size_t u = 0; u < res.throughput.size(); ++u) {
    std::vector<double> v;
    for (int t = 185; t < 240; ++t) {
      const double x = res.throughput[u][static_cast<std::size_t>(t)];
      if (!std::isnan(x)) v.push_back(x);
    }
    std::printf("  UE%zu: %.0f Mbps\n", u + 1,
                v.empty() ? 0.0 : stats::median(v));
  }

  std::printf(
      "\nPaper: UE1 starts >1.5 Gbps alone; each joining UE roughly splits "
      "the panel's airtime (halved with 2 UEs, quartered with 4).\n");
  return 0;
}

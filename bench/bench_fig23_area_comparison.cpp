// Reproduces paper Fig. 23 (Appendix A.3): per-area comparison of
// Lumos5G's models against the existing baselines, by weighted-average F1.
#include "bench_util.h"

namespace {

using namespace lumos;

void area_rows(const char* name, const data::Dataset& ds,
               const core::ExperimentConfig& cfg, bool has_T) {
  std::printf("\n%s\n", name);
  std::printf("%-10s %-8s %8s\n", "model", "group", "w-avgF1");
  bench::print_rule();
  struct Cell {
    core::ModelKind kind;
    const char* group;
  };
  std::vector<Cell> cells = {
      {core::ModelKind::kKnn, "L"},
      {core::ModelKind::kRandomForest, "L"},
      {core::ModelKind::kKriging, "L"},
      {core::ModelKind::kKnn, "L+M+C"},
      {core::ModelKind::kRandomForest, "L+M+C"},
      {core::ModelKind::kGdbt, "L+M+C"},
      {core::ModelKind::kSeq2Seq, "L+M+C"},
  };
  if (has_T) {
    cells.push_back({core::ModelKind::kGdbt, "T+M+C"});
    cells.push_back({core::ModelKind::kSeq2Seq, "T+M+C"});
  }
  for (const auto& c : cells) {
    const auto r = core::evaluate_model(c.kind, ds,
                                        data::FeatureSetSpec::parse(c.group),
                                        cfg);
    if (r.valid) {
      std::printf("%-10s %-8s %8.2f  %s\n", core::to_string(c.kind), c.group,
                  r.weighted_f1, bench::bar(r.weighted_f1, 1.0, 30).c_str());
    } else {
      std::printf("%-10s %-8s %8s\n", core::to_string(c.kind), c.group, "NA");
    }
  }
}

}  // namespace

int main() {
  bench::print_header("Fig. 23 — per-area model comparison (w-avgF1)");
  const auto cfg = bench::standard_config();
  area_rows("Intersection", bench::intersection_dataset(), cfg, true);
  area_rows("Airport", bench::airport_dataset(), cfg, true);
  area_rows("Loop", bench::loop_dataset(), cfg, false);
  std::printf(
      "\nPaper: Lumos5G models achieve 5-88%% higher w-avgF1 than "
      "location-only KNN/RF and 16-113%% higher than Kriging across areas.\n");
  return 0;
}

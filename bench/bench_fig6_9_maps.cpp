// Reproduces paper Figs. 3b/3c, 6 and 9: 5G coverage and throughput maps.
//   Fig. 6  — mean-throughput heatmaps for the Airport (indoor) and
//             Intersection (outdoor) areas (~2 m grid).
//   Fig. 9  — Airport maps split by walking direction (NB vs SB), showing
//             how strongly direction shapes the map.
//   Fig. 3  — coverage fraction vs throughput detail.
#include "bench_util.h"
#include "core/throughput_map.h"

namespace {

using namespace lumos;

void show_map(const char* title, const data::Dataset& ds) {
  bench::print_header(title);
  const auto map = core::ThroughputMap::build(ds, 2);
  std::printf("%s\n", map.render_ascii(64).c_str());
  std::printf("legend: '#'>=1000  '+'>=700  'o'>=300  '.'>=60  '_'<60 Mbps\n");
  std::printf("cells: %zu | 5G coverage: %.0f%% | cells >700 Mbps: %.0f%% | "
              "cells <300 Mbps: %.0f%%\n",
              map.cells().size(), 100.0 * map.coverage_5g(),
              100.0 * map.fraction_above(700.0),
              100.0 * (1.0 - map.fraction_above(300.0)));
}

}  // namespace

int main() {
  const auto airport = bench::airport_dataset();
  const auto intersection = bench::intersection_dataset();

  show_map("Fig. 6a — Airport (indoor) throughput map", airport);
  show_map("Fig. 6b — Intersection (outdoor) throughput map", intersection);

  show_map("Fig. 9a — Airport, NB walks only",
           airport.filter([](const data::SampleRecord& s) {
             return s.trajectory_id == 1;
           }));
  show_map("Fig. 9b — Airport, SB walks only",
           airport.filter([](const data::SampleRecord& s) {
             return s.trajectory_id == 2;
           }));

  std::printf(
      "\nPaper: NB and SB heatmaps over the same corridor are highly "
      "different (Fig. 9); coverage maps alone (Fig. 3b) cannot predict "
      "throughput (Fig. 3c).\n");
  return 0;
}

// Reproduces paper Tables 4 and 10: UE-side factor analysis for the
// indoor (Airport) and outdoor (Intersection) areas.
//
// Row (1) "Geolocation": statistics over all samples of each ~2 m grid
// cell, and KNN/RF models trained on the L feature group.
// Row (2) "Mobility + (1)": statistics conditioned on mobility direction
// (trajectory), and KNN/RF trained on L+T+M.
#include <map>

#include "bench_util.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/normality.h"

namespace {

using namespace lumos;

struct StatRow {
  double cv_mean = 0.0, cv_sd = 0.0;
  double normal_frac = 0.0;
  double sp_mean = 0.0, sp_sd = 0.0;
};

/// Grid statistics; when `by_direction` each (cell, trajectory) pair is a
/// separate group (paper row 2 conditions on mobility direction).
StatRow grid_stats(const data::Dataset& ds, bool by_direction) {
  std::map<std::tuple<std::int64_t, std::int64_t, int>, std::vector<double>>
      groups;
  for (const auto& s : ds.samples()) {
    const int dir = by_direction ? s.trajectory_id : 0;
    groups[{s.pixel_x / 3, s.pixel_y / 3, dir}].push_back(s.throughput_mbps);
  }
  std::vector<double> cvs;
  std::size_t normal = 0, tested = 0;
  for (const auto& [key, v] : groups) {
    if (v.size() < 8) continue;
    ++tested;
    cvs.push_back(stats::coefficient_of_variation(v));
    if (stats::is_normal_either(v, 0.001)) ++normal;
  }

  StatRow row;
  row.cv_mean = stats::mean(cvs) * 100.0;
  row.cv_sd = stats::stddev(cvs) * 100.0;
  row.normal_frac =
      tested > 0 ? 100.0 * static_cast<double>(normal) /
                       static_cast<double>(tested)
                 : 0.0;

  // Spearman coefficients between trace pairs: all pairs for row 1
  // (directions mixed), within-trajectory pairs for row 2.
  std::map<int, std::vector<std::vector<double>>> traces_by_traj;
  for (const auto& run : ds.runs()) {
    std::vector<double> t;
    t.reserve(run.size());
    for (std::size_t i : run) t.push_back(ds[i].throughput_mbps);
    traces_by_traj[ds[run.front()].trajectory_id].push_back(std::move(t));
  }
  std::vector<double> coeffs;
  const auto add_pair = [&](const std::vector<double>& a,
                            const std::vector<double>& b) {
    const std::size_t len = std::min(a.size(), b.size());
    if (len < 20) return;
    coeffs.push_back(stats::spearman(std::span(a.data(), len),
                                     std::span(b.data(), len)));
  };
  if (by_direction) {
    for (const auto& [traj, traces] : traces_by_traj) {
      for (std::size_t i = 0; i < traces.size(); ++i) {
        for (std::size_t j = i + 1; j < traces.size(); ++j) {
          add_pair(traces[i], traces[j]);
        }
      }
    }
  } else {
    std::vector<const std::vector<double>*> all;
    for (const auto& [traj, traces] : traces_by_traj) {
      for (const auto& t : traces) all.push_back(&t);
    }
    // All cross-trajectory pairs: directions mixed.
    for (const auto& [ta, traces_a] : traces_by_traj) {
      for (const auto& [tb, traces_b] : traces_by_traj) {
        if (ta >= tb) continue;
        for (const auto& a : traces_a) {
          for (const auto& b : traces_b) add_pair(a, b);
        }
      }
    }
  }
  row.sp_mean = stats::mean(coeffs);
  row.sp_sd = stats::stddev(coeffs);
  return row;
}

void run_area(const char* title, const data::Dataset& ds, bool has_T) {
  bench::print_header(std::string("Factor analysis — ") + title);
  auto cfg = bench::standard_config();

  const auto eval_models = [&](const data::FeatureSetSpec& spec) {
    const auto knn = core::evaluate_model(core::ModelKind::kKnn, ds, spec, cfg);
    const auto rf =
        core::evaluate_model(core::ModelKind::kRandomForest, ds, spec, cfg);
    return std::pair{knn, rf};
  };

  const StatRow r1 = grid_stats(ds, /*by_direction=*/false);
  const auto [knn1, rf1] = eval_models(data::FeatureSetSpec::parse("L"));
  const StatRow r2 = grid_stats(ds, /*by_direction=*/true);
  const auto [knn2, rf2] = eval_models(
      data::FeatureSetSpec::parse(has_T ? "L+T+M" : "L+M"));

  std::printf(
      "%-22s %14s %10s %16s %11s %11s\n", "UE-side factors",
      "CV mean±sd(%)", "Normal(%)", "Spearman mean±sd", "KNN MAE/RMSE",
      "RF MAE/RMSE");
  bench::print_rule();
  std::printf("%-22s %7.1f ±%5.1f %9.1f%% %8.3f ±%5.2f %5.0f /%5.0f %5.0f /%5.0f\n",
              "(1) Geolocation", r1.cv_mean, r1.cv_sd, r1.normal_frac,
              r1.sp_mean, r1.sp_sd, knn1.mae, knn1.rmse, rf1.mae, rf1.rmse);
  std::printf("%-22s %7.1f ±%5.1f %9.1f%% %8.3f ±%5.2f %5.0f /%5.0f %5.0f /%5.0f\n",
              "(2) Mobility + (1)", r2.cv_mean, r2.cv_sd, r2.normal_frac,
              r2.sp_mean, r2.sp_sd, knn2.mae, knn2.rmse, rf2.mae, rf2.rmse);
  std::printf(
      "\nPaper (indoor): row1 CV 57.6±22.2, normal 51.6%%, Sp 0.021±0.19, "
      "KNN 240/326, RF 228/313\n"
      "              : row2 CV 40.2±20.9, normal 78.1%%, Sp 0.68±0.14, "
      "KNN 167/247, RF 135/201\n");
}

}  // namespace

int main() {
  run_area("Indoor (Airport) — paper Table 4", bench::airport_dataset(),
           /*has_T=*/true);
  run_area("Outdoor (Intersection) — paper Table 10",
           bench::intersection_dataset(), /*has_T=*/true);
  return 0;
}

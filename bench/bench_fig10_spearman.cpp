// Reproduces paper Fig. 10: Spearman's rank correlation between airport
// throughput traces, grouped by mobility direction (NB-NB, SB-SB pairs)
// versus across directions (NB-SB pairs).
#include "bench_util.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace {

using namespace lumos;

std::vector<std::vector<double>> traces_of(const data::Dataset& ds, int traj) {
  const auto sub = ds.filter(
      [traj](const data::SampleRecord& s) { return s.trajectory_id == traj; });
  return sub.throughput_traces();
}

std::vector<double> pair_coeffs(const std::vector<std::vector<double>>& a,
                                const std::vector<std::vector<double>>& b,
                                bool same_set) {
  std::vector<double> out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = same_set ? i + 1 : 0; j < b.size(); ++j) {
      const std::size_t len = std::min(a[i].size(), b[j].size());
      if (len < 30) continue;
      out.push_back(stats::spearman(std::span(a[i].data(), len),
                                    std::span(b[j].data(), len)));
    }
  }
  return out;
}

void print_box(const char* label, const std::vector<double>& coeffs) {
  if (coeffs.empty()) {
    std::printf("%-18s (no pairs)\n", label);
    return;
  }
  const auto s = stats::summarize(coeffs);
  std::printf("%-18s n=%3zu  mean=%6.3f  [min %5.2f | p25 %5.2f | med %5.2f "
              "| p75 %5.2f | max %5.2f]\n",
              label, s.n, s.mean, s.min, s.p25, s.median, s.p75, s.max);
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 10 — Spearman coefficients of airport traces, by direction");
  const auto ds = bench::airport_dataset();
  const auto nb = traces_of(ds, 1);
  const auto sb = traces_of(ds, 2);
  std::printf("NB traces: %zu, SB traces: %zu\n\n", nb.size(), sb.size());

  print_box("NB vs NB", pair_coeffs(nb, nb, true));
  print_box("SB vs SB", pair_coeffs(sb, sb, true));
  print_box("NB vs SB (cross)", pair_coeffs(nb, sb, false));

  std::printf(
      "\nPaper: same-direction means 0.61 (NB) and 0.74 (SB); "
      "cross-direction mean only 0.021 — grouping traces by direction is "
      "what makes them consistent.\n");
  return 0;
}

// Reproduces paper Fig. 22 (Appendix A.2): GDBT global feature importance
// for each feature-group combination on the Global dataset — the paper's
// evidence that no single feature dominates 5G throughput prediction.
// Doubles as the feature-group ablation harness called out in DESIGN.md.
#include "bench_util.h"
#include "ml/gbdt.h"

namespace {

using namespace lumos;

void importance_for(const data::Dataset& ds, const char* group,
                    const core::ExperimentConfig& cfg) {
  const auto spec = data::FeatureSetSpec::parse(group);
  const auto built = data::build_features(ds, spec, cfg.features);
  if (built.x.rows() < 100) {
    std::printf("\n%s: insufficient samples\n", group);
    return;
  }
  ml::GbdtRegressor model(cfg.gbdt);
  model.fit(built.x, built.y_reg);
  const auto imp = model.feature_importance();

  std::printf("\nFeature importance — %s\n", group);
  bench::print_rule();
  double max_imp = 0.0;
  for (double v : imp) max_imp = std::max(max_imp, v);
  for (std::size_t f = 0; f < imp.size(); ++f) {
    std::printf("  %-22s %6.1f%%  %s\n", built.feature_names[f].c_str(),
                100.0 * imp[f], bench::bar(imp[f], max_imp, 30).c_str());
  }
}

}  // namespace

int main() {
  bench::print_header("Fig. 22 — GDBT global feature importance (Global)");
  auto cfg = bench::standard_config();
  cfg.gbdt.n_estimators = 150;  // importance stabilizes well before 300
  const auto ds = bench::global_dataset();

  for (const char* g : {"L", "L+M", "T+M", "L+M+C", "T+M+C"}) {
    importance_for(ds, g, cfg);
  }

  std::printf(
      "\nPaper: no single feature dominates; in T+M+C the connection "
      "features, panel geometry and speed all carry significant weight.\n");
  return 0;
}

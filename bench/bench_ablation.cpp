// Ablation studies called out by the paper but not tabulated:
//   (a) §6.1  — hyperparameter robustness ("models were fairly robust to
//               multiple hyperparameter values"): GDBT tree count/depth
//               sweep, Seq2Seq window-length sweep.
//   (b) §5.2  — prediction horizon: next-second vs. k-seconds-ahead.
//   (c) fn. 5 — alternative throughput class boundaries.
//   (d) §8.1  — temporal generalizability (train on early passes, test on
//               later passes instead of a random split) and sensitivity
//               to input-feature inaccuracies (extra GPS/compass noise at
//               prediction time).
#include <cmath>

#include "bench_util.h"
#include "common/rng.h"
#include "data/split.h"
#include "ml/metrics.h"

namespace {

using namespace lumos;

void gdbt_sweep(const data::Dataset& ds) {
  bench::print_header("(a) GDBT hyperparameter robustness — Airport L+M+C");
  std::printf("%-10s %-8s %8s %8s\n", "trees", "depth", "MAE", "w-F1");
  bench::print_rule();
  for (std::size_t trees : {50u, 150u, 300u}) {
    for (int depth : {4, 8}) {
      core::ExperimentConfig cfg = bench::standard_config();
      cfg.gbdt.n_estimators = trees;
      cfg.gbdt.max_depth = depth;
      const auto r = core::evaluate_model(
          core::ModelKind::kGdbt, ds, data::FeatureSetSpec::parse("L+M+C"),
          cfg);
      std::printf("%-10zu %-8d %8.0f %8.2f\n", trees, depth, r.mae,
                  r.weighted_f1);
    }
  }
}

void seq2seq_window_sweep(const data::Dataset& ds) {
  bench::print_header("(a) Seq2Seq window-length sweep — Airport L+M+C");
  std::printf("%-10s %8s %8s\n", "window", "MAE", "w-F1");
  bench::print_rule();
  for (std::size_t win : {5u, 10u, 20u}) {
    core::ExperimentConfig cfg = bench::standard_config();
    cfg.seq2seq.seq_len = win;
    const auto r = core::evaluate_model(
        core::ModelKind::kSeq2Seq, ds, data::FeatureSetSpec::parse("L+M+C"),
        cfg);
    std::printf("%-10zu %8.0f %8.2f\n", win, r.mae, r.weighted_f1);
  }
}

void horizon_sweep(const data::Dataset& ds) {
  bench::print_header("(b) Prediction horizon — Airport, GDBT L+M+C");
  std::printf("%-12s %8s %8s %8s\n", "horizon (s)", "MAE", "RMSE", "w-F1");
  bench::print_rule();
  for (int h : {1, 5, 10, 30}) {
    core::ExperimentConfig cfg = bench::standard_config();
    cfg.features.horizon = h;
    const auto r = core::evaluate_model(
        core::ModelKind::kGdbt, ds, data::FeatureSetSpec::parse("L+M+C"),
        cfg);
    std::printf("%-12d %8.0f %8.0f %8.2f\n", h, r.mae, r.rmse,
                r.weighted_f1);
  }
  std::printf(
      "\nExpected: error grows with horizon as the connection-history "
      "features age out, approaching the geometry-only (L+M) level.\n");
}

void class_boundary_sweep(const data::Dataset& ds) {
  bench::print_header("(c) Alternative class boundaries — Airport, GDBT L+M+C");
  std::printf("%-18s %8s %10s\n", "low/high (Mbps)", "w-F1", "low-recall");
  bench::print_rule();
  const double bounds[][2] = {{200, 500}, {300, 700}, {400, 900}};
  for (const auto& b : bounds) {
    core::ExperimentConfig cfg = bench::standard_config();
    cfg.features.low_mbps = b[0];
    cfg.features.high_mbps = b[1];
    const auto r = core::evaluate_model(
        core::ModelKind::kGdbt, ds, data::FeatureSetSpec::parse("L+M+C"),
        cfg);
    std::printf("%4.0f / %-10.0f %8.2f %10.2f\n", b[0], b[1], r.weighted_f1,
                r.low_recall);
  }
  std::printf("\nPaper footnote 5: the models work well for other class "
              "choices too.\n");
}

void temporal_split(const data::Dataset& ds) {
  bench::print_header(
      "(d) Temporal generalizability — train on early passes, test on late");
  const auto cfg = bench::standard_config();
  const auto spec = data::FeatureSetSpec::parse("L+M+C");

  // Random-split reference.
  const auto random_r = core::evaluate_model(core::ModelKind::kGdbt, ds,
                                             spec, cfg);

  // Temporal split: first 70% of run ids train, last 30% test.
  int max_run = 0;
  for (const auto& s : ds.samples()) max_run = std::max(max_run, s.run_id);
  const int cut = static_cast<int>(0.7 * (max_run + 1));
  const auto train_ds = ds.filter(
      [cut](const data::SampleRecord& s) { return s.run_id < cut; });
  const auto test_ds = ds.filter(
      [cut](const data::SampleRecord& s) { return s.run_id >= cut; });
  const auto temporal_r =
      core::evaluate_transfer(core::ModelKind::kGdbt, train_ds, test_ds,
                              spec, cfg);

  std::printf("%-24s %8s %8s\n", "split", "MAE", "w-F1");
  bench::print_rule();
  std::printf("%-24s %8.0f %8.2f\n", "random 70/30 (paper)", random_r.mae,
              random_r.weighted_f1);
  std::printf("%-24s %8.0f %8.2f\n", "temporal (early->late)",
              temporal_r.mae, temporal_r.weighted_f1);
  std::printf(
      "\nExpected: mild degradation only — per-pass conditions vary but the "
      "area's structure is stable (paper §8.1 leaves deeper temporal drift "
      "to future work).\n");
}

void input_noise_sensitivity(const data::Dataset& ds) {
  bench::print_header(
      "(d) Sensitivity to input-feature inaccuracies — GDBT L+M");
  const auto cfg = bench::standard_config();
  const auto spec = data::FeatureSetSpec::parse("L+M");
  const auto built = data::build_features(ds, spec, cfg.features);
  const auto split = data::train_test_split(built.x.rows(),
                                            cfg.train_fraction,
                                            cfg.split_seed);
  const auto x_train = data::subset(built.x, split.train);
  const auto y_train = data::subset(built.y_reg, split.train);
  const auto y_test = data::subset(built.y_reg, split.test);
  ml::GbdtRegressor model(cfg.gbdt);
  model.fit(x_train, y_train);

  std::printf("%-26s %8s\n", "extra GPS noise at query", "MAE");
  bench::print_rule();
  for (double extra_m : {0.0, 2.0, 5.0, 10.0}) {
    Rng rng(424242);
    // Pixel columns are 0 and 1; ~0.85 m per pixel at zoom 17.
    const double px_noise = extra_m / 0.85;
    std::vector<double> pred;
    pred.reserve(split.test.size());
    std::vector<double> row;
    for (const std::size_t idx : split.test) {
      const auto src = built.x.row(idx);
      row.assign(src.begin(), src.end());
      row[0] += rng.normal(0.0, px_noise);
      row[1] += rng.normal(0.0, px_noise);
      pred.push_back(model.predict(row));
    }
    std::printf("%5.0f m %19s %8.0f\n", extra_m, "", ml::mae(pred, y_test));
  }
  std::printf(
      "\nExpected: graceful degradation — a few meters of extra error is "
      "within a grid cell or two; beyond ~10 m the location signal blurs "
      "(the rationale for the paper's 5 m GPS-quality cut, §3.1).\n");
}

}  // namespace

int main() {
  const auto ds = bench::airport_dataset();
  gdbt_sweep(ds);
  seq2seq_window_sweep(ds);
  horizon_sweep(ds);
  class_boundary_sweep(ds);
  temporal_split(ds);
  input_noise_sensitivity(ds);
  return 0;
}

// Shared infrastructure for the reproduction benchmarks: standard dataset
// builds (sizes scaled for a single-core CPU budget, seeds fixed for
// reproducibility) and table-printing helpers.
//
// Every bench binary regenerates one table or figure of the paper and
// prints it in a comparable text form; EXPERIMENTS.md records the
// paper-vs-measured comparison.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/evaluate.h"
#include "data/dataset.h"
#include "sim/areas.h"

namespace lumos::bench {

/// Build type of THIS translation unit (the library the benches measure),
/// as opposed to google-benchmark's `library_build_type` context key,
/// which only reflects how the benchmark library itself was compiled.
/// Recorded into the JSON context as `lumos_build_type` so benchgate can
/// refuse to gate a Release run against a debug baseline (or vice versa).
inline const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// Loud banner when the measured library was compiled without NDEBUG:
/// debug numbers are not comparable to the committed Release baseline and
/// must never be committed as one.
inline void warn_if_debug() {
#ifndef NDEBUG
  std::fprintf(stderr,
               "================================================================\n"
               "WARNING: bench built with assertions ON (lumos_build_type=debug).\n"
               "Numbers are NOT comparable to the committed Release baseline;\n"
               "do not refresh BENCH_micro.json from this run.\n"
               "================================================================\n");
#endif
}

/// Seeds for the three measurement campaigns. Fixed so every bench binary
/// sees the same datasets.
inline constexpr std::uint64_t kAirportSeed = 1001;
inline constexpr std::uint64_t kIntersectionSeed = 2002;
inline constexpr std::uint64_t kLoopSeed = 3003;

/// The paper walks each trajectory >= 30 times; we scale the pass counts
/// down so the whole suite runs in minutes on one core while keeping
/// thousands of samples per area.
inline data::Dataset airport_dataset() {
  return sim::collect_area_dataset(sim::make_airport(), /*walk_runs=*/20,
                                   /*drive_runs=*/0, kAirportSeed);
}

inline data::Dataset intersection_dataset() {
  return sim::collect_area_dataset(sim::make_intersection(), /*walk_runs=*/5,
                                   /*drive_runs=*/0, kIntersectionSeed);
}

inline data::Dataset loop_dataset() {
  return sim::collect_area_dataset(sim::make_loop(), /*walk_runs=*/2,
                                   /*drive_runs=*/3, kLoopSeed);
}

/// Union of the three areas (paper's "Global" dataset).
inline data::Dataset global_dataset() {
  data::Dataset ds = airport_dataset();
  ds.append_all(intersection_dataset());
  ds.append_all(loop_dataset());
  return ds;
}

/// Evaluation configuration used across Tables 7/8/9 benches. The paper's
/// 8000-tree GDBT and 2000-epoch Seq2Seq are scaled to CPU-sized budgets
/// with the same architecture shape.
inline core::ExperimentConfig standard_config() {
  core::ExperimentConfig cfg;
  cfg.gbdt.n_estimators = 300;
  cfg.seq2seq.hidden = 32;       // paper: 128
  cfg.seq2seq.layers = 2;        // paper: 2
  cfg.seq2seq.seq_len = 10;      // paper: 20
  cfg.seq2seq.out_len = 1;
  cfg.seq2seq.epochs = 10;       // paper: 2000
  cfg.seq2seq.batch_size = 96;   // paper: 256

  // Baselines configured after the cited 3G/4G systems (paper §6.3):
  // KNN on raw feature values (distances dominated by the coordinate
  // scale, like classic location-lookup predictors) and a moderate-depth
  // Random Forest as used for signal-strength maps [20]. The library
  // defaults are stronger; see EXPERIMENTS.md for the discussion.
  cfg.knn.k = 5;
  cfg.knn.standardize = false;
  cfg.knn.max_train = 6000;
  cfg.forest.n_trees = 60;
  cfg.forest.max_depth = 6;
  return cfg;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

/// Simple horizontal bar for text "plots".
inline std::string bar(double value, double max_value, int width = 40) {
  if (max_value <= 0.0) return "";
  int n = static_cast<int>(value / max_value * width + 0.5);
  if (n < 0) n = 0;
  if (n > width) n = width;
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace lumos::bench

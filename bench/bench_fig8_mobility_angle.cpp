// Reproduces paper Figs. 8 and 18: the impact of the UE-panel mobility
// angle theta_m on 5G throughput — overall and split by serving panel at
// the Airport, plus the Intersection for broader angle coverage.
#include "bench_util.h"
#include "stats/descriptive.h"

namespace {

using namespace lumos;

void angle_table(const char* title, const data::Dataset& ds,
                 int cell_filter /* -1 = all */) {
  std::printf("\n%s\n", title);
  std::printf("%-12s %6s %8s %8s %8s\n", "theta_m bin", "n", "p25", "median",
              "p75");
  bench::print_rule();
  for (int lo = 0; lo < 180; lo += 30) {
    std::vector<double> v;
    for (const auto& s : ds.samples()) {
      if (!s.has_panel_geometry()) continue;
      if (cell_filter >= 0 && s.cell_id != cell_filter) continue;
      if (s.radio_type != data::RadioType::kNrMmWave) continue;
      if (s.theta_m_deg >= lo && s.theta_m_deg < lo + 30) {
        v.push_back(s.throughput_mbps);
      }
    }
    if (v.size() < 15) {
      std::printf("[%3d,%3d)   %6zu %8s %8s %8s\n", lo, lo + 30, v.size(),
                  "n/a", "n/a", "n/a");
      continue;
    }
    const auto su = stats::summarize(v);
    std::printf("[%3d,%3d)   %6zu %8.0f %8.0f %8.0f  %s\n", lo, lo + 30,
                v.size(), su.p25, su.median, su.p75,
                bench::bar(su.median, 1200.0, 30).c_str());
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figs. 8 & 18 — impact of UE-panel mobility angle theta_m");
  std::printf(
      "Convention (paper Fig. 8): theta_m=180 moving head-on toward the\n"
      "panel face; theta_m=0 walking away (body blocks LoS).\n");

  const auto airport = bench::airport_dataset();
  angle_table("Fig. 8 — Airport, all panels", airport, -1);
  angle_table("Fig. 18a — Airport, south panel only", airport, 1);
  angle_table("Fig. 18b — Airport, north panel only", airport, 2);

  const auto intersection = bench::intersection_dataset();
  angle_table("Intersection (wider angle coverage)", intersection, -1);

  std::printf(
      "\nPaper: throughput is highest for theta_m in [150,180) and degrades "
      "toward 0 (body blockage); some NLoS bins salvaged by reflections.\n");
  return 0;
}

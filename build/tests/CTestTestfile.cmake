# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_props[1]_include.cmake")
include("/root/repo/build/tests/test_crowd[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_lint[1]_include.cmake")
add_test(test_lint_suite "/root/repo/build/tests/test_lint")
set_tests_properties(test_lint_suite PROPERTIES  LABELS "tier1" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;41;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_parallel_env_threads1 "/root/repo/build/tests/test_parallel")
set_tests_properties(test_parallel_env_threads1 PROPERTIES  ENVIRONMENT "LUMOS_THREADS=1" LABELS "tier1" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;46;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_parallel_env_threads8 "/root/repo/build/tests/test_parallel")
set_tests_properties(test_parallel_env_threads8 PROPERTIES  ENVIRONMENT "LUMOS_THREADS=8" LABELS "tier1" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;49;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_faults_env_threads1 "/root/repo/build/tests/test_faults")
set_tests_properties(test_faults_env_threads1 PROPERTIES  ENVIRONMENT "LUMOS_THREADS=1" LABELS "tier1" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;56;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_faults_env_threads8 "/root/repo/build/tests/test_faults")
set_tests_properties(test_faults_env_threads8 PROPERTIES  ENVIRONMENT "LUMOS_THREADS=8" LABELS "tier1" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;59;add_test;/root/repo/tests/CMakeLists.txt;0;")

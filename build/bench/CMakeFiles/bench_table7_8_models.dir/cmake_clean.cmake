file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_8_models.dir/bench_table7_8_models.cpp.o"
  "CMakeFiles/bench_table7_8_models.dir/bench_table7_8_models.cpp.o.d"
  "bench_table7_8_models"
  "bench_table7_8_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_8_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

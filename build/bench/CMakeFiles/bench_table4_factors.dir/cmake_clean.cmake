file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_factors.dir/bench_table4_factors.cpp.o"
  "CMakeFiles/bench_table4_factors.dir/bench_table4_factors.cpp.o.d"
  "bench_table4_factors"
  "bench_table4_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_speed.dir/bench_fig14_speed.cpp.o"
  "CMakeFiles/bench_fig14_speed.dir/bench_fig14_speed.cpp.o.d"
  "bench_fig14_speed"
  "bench_fig14_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_positional.dir/bench_fig13_positional.cpp.o"
  "CMakeFiles/bench_fig13_positional.dir/bench_fig13_positional.cpp.o.d"
  "bench_fig13_positional"
  "bench_fig13_positional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_positional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

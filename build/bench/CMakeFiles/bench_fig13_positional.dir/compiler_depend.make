# Empty compiler generated dependencies file for bench_fig13_positional.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig23_area_comparison.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_spearman.dir/bench_fig10_spearman.cpp.o"
  "CMakeFiles/bench_fig10_spearman.dir/bench_fig10_spearman.cpp.o.d"
  "bench_fig10_spearman"
  "bench_fig10_spearman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_spearman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_baselines.dir/bench_table9_baselines.cpp.o"
  "CMakeFiles/bench_table9_baselines.dir/bench_table9_baselines.cpp.o.d"
  "bench_table9_baselines"
  "bench_table9_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

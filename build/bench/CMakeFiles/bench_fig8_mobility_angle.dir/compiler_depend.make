# Empty compiler generated dependencies file for bench_fig8_mobility_angle.
# This may be replaced when dependencies are built.

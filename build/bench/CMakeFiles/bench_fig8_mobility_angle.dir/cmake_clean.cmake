file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_mobility_angle.dir/bench_fig8_mobility_angle.cpp.o"
  "CMakeFiles/bench_fig8_mobility_angle.dir/bench_fig8_mobility_angle.cpp.o.d"
  "bench_fig8_mobility_angle"
  "bench_fig8_mobility_angle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_mobility_angle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

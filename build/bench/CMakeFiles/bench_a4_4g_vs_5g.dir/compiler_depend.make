# Empty compiler generated dependencies file for bench_a4_4g_vs_5g.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_4g_vs_5g.dir/bench_a4_4g_vs_5g.cpp.o"
  "CMakeFiles/bench_a4_4g_vs_5g.dir/bench_a4_4g_vs_5g.cpp.o.d"
  "bench_a4_4g_vs_5g"
  "bench_a4_4g_vs_5g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_4g_vs_5g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

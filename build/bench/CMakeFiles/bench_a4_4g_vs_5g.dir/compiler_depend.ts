# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_a4_4g_vs_5g.

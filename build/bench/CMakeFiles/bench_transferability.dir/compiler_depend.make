# Empty compiler generated dependencies file for bench_transferability.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig1_2_traces.
# This may be replaced when dependencies are built.

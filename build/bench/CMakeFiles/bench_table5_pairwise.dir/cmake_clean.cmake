file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_pairwise.dir/bench_table5_pairwise.cpp.o"
  "CMakeFiles/bench_table5_pairwise.dir/bench_table5_pairwise.cpp.o.d"
  "bench_table5_pairwise"
  "bench_table5_pairwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_pairwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig6_9_maps.
# This may be replaced when dependencies are built.

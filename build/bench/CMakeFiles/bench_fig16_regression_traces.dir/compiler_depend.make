# Empty compiler generated dependencies file for bench_fig16_regression_traces.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lumos_common.dir/parallel.cpp.o"
  "CMakeFiles/lumos_common.dir/parallel.cpp.o.d"
  "liblumos_common.a"
  "liblumos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lumos_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblumos_common.a"
)

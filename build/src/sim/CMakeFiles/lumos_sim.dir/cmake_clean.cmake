file(REMOVE_RECURSE
  "CMakeFiles/lumos_sim.dir/areas.cpp.o"
  "CMakeFiles/lumos_sim.dir/areas.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/collector.cpp.o"
  "CMakeFiles/lumos_sim.dir/collector.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/congestion.cpp.o"
  "CMakeFiles/lumos_sim.dir/congestion.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/connection.cpp.o"
  "CMakeFiles/lumos_sim.dir/connection.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/environment.cpp.o"
  "CMakeFiles/lumos_sim.dir/environment.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/fading.cpp.o"
  "CMakeFiles/lumos_sim.dir/fading.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/faults.cpp.o"
  "CMakeFiles/lumos_sim.dir/faults.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/lte.cpp.o"
  "CMakeFiles/lumos_sim.dir/lte.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/mobility.cpp.o"
  "CMakeFiles/lumos_sim.dir/mobility.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/obstacle.cpp.o"
  "CMakeFiles/lumos_sim.dir/obstacle.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/propagation.cpp.o"
  "CMakeFiles/lumos_sim.dir/propagation.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/sensors.cpp.o"
  "CMakeFiles/lumos_sim.dir/sensors.cpp.o.d"
  "liblumos_sim.a"
  "liblumos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/areas.cpp" "src/sim/CMakeFiles/lumos_sim.dir/areas.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/areas.cpp.o.d"
  "/root/repo/src/sim/collector.cpp" "src/sim/CMakeFiles/lumos_sim.dir/collector.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/collector.cpp.o.d"
  "/root/repo/src/sim/congestion.cpp" "src/sim/CMakeFiles/lumos_sim.dir/congestion.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/congestion.cpp.o.d"
  "/root/repo/src/sim/connection.cpp" "src/sim/CMakeFiles/lumos_sim.dir/connection.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/connection.cpp.o.d"
  "/root/repo/src/sim/environment.cpp" "src/sim/CMakeFiles/lumos_sim.dir/environment.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/environment.cpp.o.d"
  "/root/repo/src/sim/fading.cpp" "src/sim/CMakeFiles/lumos_sim.dir/fading.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/fading.cpp.o.d"
  "/root/repo/src/sim/faults.cpp" "src/sim/CMakeFiles/lumos_sim.dir/faults.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/faults.cpp.o.d"
  "/root/repo/src/sim/lte.cpp" "src/sim/CMakeFiles/lumos_sim.dir/lte.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/lte.cpp.o.d"
  "/root/repo/src/sim/mobility.cpp" "src/sim/CMakeFiles/lumos_sim.dir/mobility.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/mobility.cpp.o.d"
  "/root/repo/src/sim/obstacle.cpp" "src/sim/CMakeFiles/lumos_sim.dir/obstacle.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/obstacle.cpp.o.d"
  "/root/repo/src/sim/propagation.cpp" "src/sim/CMakeFiles/lumos_sim.dir/propagation.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/propagation.cpp.o.d"
  "/root/repo/src/sim/sensors.cpp" "src/sim/CMakeFiles/lumos_sim.dir/sensors.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/sensors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/lumos_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/lumos_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lumos_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lumos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lumos_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "liblumos_sim.a"
)

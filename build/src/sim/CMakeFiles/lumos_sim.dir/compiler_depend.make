# Empty compiler generated dependencies file for lumos_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblumos_nn.a"
)

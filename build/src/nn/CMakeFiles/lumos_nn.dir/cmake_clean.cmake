file(REMOVE_RECURSE
  "CMakeFiles/lumos_nn.dir/adam.cpp.o"
  "CMakeFiles/lumos_nn.dir/adam.cpp.o.d"
  "CMakeFiles/lumos_nn.dir/dense.cpp.o"
  "CMakeFiles/lumos_nn.dir/dense.cpp.o.d"
  "CMakeFiles/lumos_nn.dir/loss.cpp.o"
  "CMakeFiles/lumos_nn.dir/loss.cpp.o.d"
  "CMakeFiles/lumos_nn.dir/lstm.cpp.o"
  "CMakeFiles/lumos_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/lumos_nn.dir/matrix.cpp.o"
  "CMakeFiles/lumos_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/lumos_nn.dir/seq2seq.cpp.o"
  "CMakeFiles/lumos_nn.dir/seq2seq.cpp.o.d"
  "liblumos_nn.a"
  "liblumos_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cpp" "src/nn/CMakeFiles/lumos_nn.dir/adam.cpp.o" "gcc" "src/nn/CMakeFiles/lumos_nn.dir/adam.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/lumos_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/lumos_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/lumos_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/lumos_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/lumos_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/lumos_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/nn/CMakeFiles/lumos_nn.dir/matrix.cpp.o" "gcc" "src/nn/CMakeFiles/lumos_nn.dir/matrix.cpp.o.d"
  "/root/repo/src/nn/seq2seq.cpp" "src/nn/CMakeFiles/lumos_nn.dir/seq2seq.cpp.o" "gcc" "src/nn/CMakeFiles/lumos_nn.dir/seq2seq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

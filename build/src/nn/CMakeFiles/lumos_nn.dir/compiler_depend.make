# Empty compiler generated dependencies file for lumos_nn.
# This may be replaced when dependencies are built.

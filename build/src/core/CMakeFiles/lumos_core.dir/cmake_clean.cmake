file(REMOVE_RECURSE
  "CMakeFiles/lumos_core.dir/crowd.cpp.o"
  "CMakeFiles/lumos_core.dir/crowd.cpp.o.d"
  "CMakeFiles/lumos_core.dir/evaluate.cpp.o"
  "CMakeFiles/lumos_core.dir/evaluate.cpp.o.d"
  "CMakeFiles/lumos_core.dir/lumos5g.cpp.o"
  "CMakeFiles/lumos_core.dir/lumos5g.cpp.o.d"
  "CMakeFiles/lumos_core.dir/throughput_map.cpp.o"
  "CMakeFiles/lumos_core.dir/throughput_map.cpp.o.d"
  "liblumos_core.a"
  "liblumos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

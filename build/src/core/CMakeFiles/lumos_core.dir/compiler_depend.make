# Empty compiler generated dependencies file for lumos_core.
# This may be replaced when dependencies are built.

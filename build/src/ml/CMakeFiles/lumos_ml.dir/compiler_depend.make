# Empty compiler generated dependencies file for lumos_ml.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lumos_ml.dir/forest.cpp.o"
  "CMakeFiles/lumos_ml.dir/forest.cpp.o.d"
  "CMakeFiles/lumos_ml.dir/gbdt.cpp.o"
  "CMakeFiles/lumos_ml.dir/gbdt.cpp.o.d"
  "CMakeFiles/lumos_ml.dir/harmonic.cpp.o"
  "CMakeFiles/lumos_ml.dir/harmonic.cpp.o.d"
  "CMakeFiles/lumos_ml.dir/knn.cpp.o"
  "CMakeFiles/lumos_ml.dir/knn.cpp.o.d"
  "CMakeFiles/lumos_ml.dir/kriging.cpp.o"
  "CMakeFiles/lumos_ml.dir/kriging.cpp.o.d"
  "CMakeFiles/lumos_ml.dir/linalg.cpp.o"
  "CMakeFiles/lumos_ml.dir/linalg.cpp.o.d"
  "CMakeFiles/lumos_ml.dir/metrics.cpp.o"
  "CMakeFiles/lumos_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/lumos_ml.dir/tree.cpp.o"
  "CMakeFiles/lumos_ml.dir/tree.cpp.o.d"
  "liblumos_ml.a"
  "liblumos_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

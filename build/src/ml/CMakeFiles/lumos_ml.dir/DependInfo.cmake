
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/lumos_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/gbdt.cpp" "src/ml/CMakeFiles/lumos_ml.dir/gbdt.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/gbdt.cpp.o.d"
  "/root/repo/src/ml/harmonic.cpp" "src/ml/CMakeFiles/lumos_ml.dir/harmonic.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/harmonic.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/lumos_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/kriging.cpp" "src/ml/CMakeFiles/lumos_ml.dir/kriging.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/kriging.cpp.o.d"
  "/root/repo/src/ml/linalg.cpp" "src/ml/CMakeFiles/lumos_ml.dir/linalg.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/linalg.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/lumos_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/lumos_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lumos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

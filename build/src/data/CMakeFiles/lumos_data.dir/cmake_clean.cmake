file(REMOVE_RECURSE
  "CMakeFiles/lumos_data.dir/csv.cpp.o"
  "CMakeFiles/lumos_data.dir/csv.cpp.o.d"
  "CMakeFiles/lumos_data.dir/dataset.cpp.o"
  "CMakeFiles/lumos_data.dir/dataset.cpp.o.d"
  "CMakeFiles/lumos_data.dir/features.cpp.o"
  "CMakeFiles/lumos_data.dir/features.cpp.o.d"
  "CMakeFiles/lumos_data.dir/quality.cpp.o"
  "CMakeFiles/lumos_data.dir/quality.cpp.o.d"
  "CMakeFiles/lumos_data.dir/split.cpp.o"
  "CMakeFiles/lumos_data.dir/split.cpp.o.d"
  "liblumos_data.a"
  "liblumos_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblumos_data.a"
)

# Empty compiler generated dependencies file for lumos_data.
# This may be replaced when dependencies are built.

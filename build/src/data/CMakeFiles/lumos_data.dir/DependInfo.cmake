
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cpp" "src/data/CMakeFiles/lumos_data.dir/csv.cpp.o" "gcc" "src/data/CMakeFiles/lumos_data.dir/csv.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/lumos_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/lumos_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/features.cpp" "src/data/CMakeFiles/lumos_data.dir/features.cpp.o" "gcc" "src/data/CMakeFiles/lumos_data.dir/features.cpp.o.d"
  "/root/repo/src/data/quality.cpp" "src/data/CMakeFiles/lumos_data.dir/quality.cpp.o" "gcc" "src/data/CMakeFiles/lumos_data.dir/quality.cpp.o.d"
  "/root/repo/src/data/split.cpp" "src/data/CMakeFiles/lumos_data.dir/split.cpp.o" "gcc" "src/data/CMakeFiles/lumos_data.dir/split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/lumos_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lumos_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lumos_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lumos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

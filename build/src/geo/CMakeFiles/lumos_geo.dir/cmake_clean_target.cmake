file(REMOVE_RECURSE
  "liblumos_geo.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lumos_geo.dir/angles.cpp.o"
  "CMakeFiles/lumos_geo.dir/angles.cpp.o.d"
  "CMakeFiles/lumos_geo.dir/coordinates.cpp.o"
  "CMakeFiles/lumos_geo.dir/coordinates.cpp.o.d"
  "CMakeFiles/lumos_geo.dir/grid.cpp.o"
  "CMakeFiles/lumos_geo.dir/grid.cpp.o.d"
  "CMakeFiles/lumos_geo.dir/local_frame.cpp.o"
  "CMakeFiles/lumos_geo.dir/local_frame.cpp.o.d"
  "liblumos_geo.a"
  "liblumos_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/angles.cpp" "src/geo/CMakeFiles/lumos_geo.dir/angles.cpp.o" "gcc" "src/geo/CMakeFiles/lumos_geo.dir/angles.cpp.o.d"
  "/root/repo/src/geo/coordinates.cpp" "src/geo/CMakeFiles/lumos_geo.dir/coordinates.cpp.o" "gcc" "src/geo/CMakeFiles/lumos_geo.dir/coordinates.cpp.o.d"
  "/root/repo/src/geo/grid.cpp" "src/geo/CMakeFiles/lumos_geo.dir/grid.cpp.o" "gcc" "src/geo/CMakeFiles/lumos_geo.dir/grid.cpp.o.d"
  "/root/repo/src/geo/local_frame.cpp" "src/geo/CMakeFiles/lumos_geo.dir/local_frame.cpp.o" "gcc" "src/geo/CMakeFiles/lumos_geo.dir/local_frame.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for lumos_geo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lumos_stats.dir/correlation.cpp.o"
  "CMakeFiles/lumos_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/lumos_stats.dir/descriptive.cpp.o"
  "CMakeFiles/lumos_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/lumos_stats.dir/distribution.cpp.o"
  "CMakeFiles/lumos_stats.dir/distribution.cpp.o.d"
  "CMakeFiles/lumos_stats.dir/hypothesis.cpp.o"
  "CMakeFiles/lumos_stats.dir/hypothesis.cpp.o.d"
  "CMakeFiles/lumos_stats.dir/normality.cpp.o"
  "CMakeFiles/lumos_stats.dir/normality.cpp.o.d"
  "CMakeFiles/lumos_stats.dir/special_functions.cpp.o"
  "CMakeFiles/lumos_stats.dir/special_functions.cpp.o.d"
  "liblumos_stats.a"
  "liblumos_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lumos_stats.
# This may be replaced when dependencies are built.

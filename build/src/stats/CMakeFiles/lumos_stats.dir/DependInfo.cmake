
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/lumos_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/lumos_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/lumos_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/lumos_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distribution.cpp" "src/stats/CMakeFiles/lumos_stats.dir/distribution.cpp.o" "gcc" "src/stats/CMakeFiles/lumos_stats.dir/distribution.cpp.o.d"
  "/root/repo/src/stats/hypothesis.cpp" "src/stats/CMakeFiles/lumos_stats.dir/hypothesis.cpp.o" "gcc" "src/stats/CMakeFiles/lumos_stats.dir/hypothesis.cpp.o.d"
  "/root/repo/src/stats/normality.cpp" "src/stats/CMakeFiles/lumos_stats.dir/normality.cpp.o" "gcc" "src/stats/CMakeFiles/lumos_stats.dir/normality.cpp.o.d"
  "/root/repo/src/stats/special_functions.cpp" "src/stats/CMakeFiles/lumos_stats.dir/special_functions.cpp.o" "gcc" "src/stats/CMakeFiles/lumos_stats.dir/special_functions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

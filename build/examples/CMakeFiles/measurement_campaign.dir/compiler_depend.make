# Empty compiler generated dependencies file for measurement_campaign.
# This may be replaced when dependencies are built.

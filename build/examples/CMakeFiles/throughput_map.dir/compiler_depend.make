# Empty compiler generated dependencies file for throughput_map.
# This may be replaced when dependencies are built.

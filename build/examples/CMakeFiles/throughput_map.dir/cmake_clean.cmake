file(REMOVE_RECURSE
  "CMakeFiles/throughput_map.dir/throughput_map.cpp.o"
  "CMakeFiles/throughput_map.dir/throughput_map.cpp.o.d"
  "throughput_map"
  "throughput_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/crowdsourced_map.dir/crowdsourced_map.cpp.o"
  "CMakeFiles/crowdsourced_map.dir/crowdsourced_map.cpp.o.d"
  "crowdsourced_map"
  "crowdsourced_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdsourced_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

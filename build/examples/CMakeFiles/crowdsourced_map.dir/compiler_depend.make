# Empty compiler generated dependencies file for crowdsourced_map.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for abr_streaming.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lumos_lint_tree "/root/repo/build/tools/lumos_lint" "--root" "/root/repo")
set_tests_properties(lumos_lint_tree PROPERTIES  LABELS "lint;tier1" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")

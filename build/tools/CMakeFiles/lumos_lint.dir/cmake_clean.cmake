file(REMOVE_RECURSE
  "CMakeFiles/lumos_lint.dir/lumos_lint/main.cpp.o"
  "CMakeFiles/lumos_lint.dir/lumos_lint/main.cpp.o.d"
  "lumos_lint"
  "lumos_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

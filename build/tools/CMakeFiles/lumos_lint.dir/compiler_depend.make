# Empty compiler generated dependencies file for lumos_lint.
# This may be replaced when dependencies are built.

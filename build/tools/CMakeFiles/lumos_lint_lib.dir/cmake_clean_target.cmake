file(REMOVE_RECURSE
  "liblumos_lint_lib.a"
)

# Empty dependencies file for lumos_lint_lib.
# This may be replaced when dependencies are built.

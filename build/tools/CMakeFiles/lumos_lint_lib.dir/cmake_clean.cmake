file(REMOVE_RECURSE
  "CMakeFiles/lumos_lint_lib.dir/lumos_lint/lint.cpp.o"
  "CMakeFiles/lumos_lint_lib.dir/lumos_lint/lint.cpp.o.d"
  "liblumos_lint_lib.a"
  "liblumos_lint_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_lint_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Operator workflow: run a measurement campaign, apply the paper's data
// quality pipeline, persist to CSV, reload, train per-feature-group
// models, and inspect GDBT feature importance — the full §3-§6 loop as a
// carrier or research team would run it.
//
// Usage: ./examples/measurement_campaign [output.csv]
#include <cstdio>
#include <string>

#include "core/evaluate.h"
#include "data/csv.h"
#include "ml/gbdt.h"
#include "sim/areas.h"

int main(int argc, char** argv) {
  using namespace lumos;
  const std::string csv_path =
      argc > 1 ? argv[1] : "/tmp/lumos5g_campaign.csv";

  // --- Collect (paper §3.1-3.2) ---
  std::printf("== campaign: intersection area, 4 passes per trajectory ==\n");
  const sim::Area area = sim::make_intersection();
  data::Dataset raw;
  const sim::MeasurementCollector collector(area.env);
  sim::CollectorConfig ccfg;
  ccfg.n_runs = 4;
  sim::MotionConfig walk;
  walk.mode = data::Activity::kWalking;
  Rng seeder(7777);
  for (const auto& traj : area.walking) {
    collector.collect(traj, walk, {}, ccfg, seeder.next_u64(), raw);
  }
  std::printf("raw samples: %zu\n", raw.size());

  // --- Clean (paper §3.1 quality rules) ---
  const std::size_t dropped = raw.clean();
  std::printf("cleaning dropped %zu samples (bad-GPS runs + warm-up)\n",
              dropped);

  // --- Persist & reload ---
  data::write_csv(raw, csv_path);
  const data::Dataset ds = data::read_csv(csv_path);
  std::printf("round-tripped %zu samples through %s\n\n", ds.size(),
              csv_path.c_str());

  // --- Train & evaluate per feature group (paper §6) ---
  core::ExperimentConfig cfg;
  cfg.gbdt.n_estimators = 200;
  std::printf("%-8s %8s %8s %8s %10s\n", "group", "MAE", "RMSE", "w-F1",
              "low-recall");
  std::printf("--------------------------------------------\n");
  for (const char* g : {"L", "L+M", "T+M", "L+M+C", "T+M+C"}) {
    const auto r = core::evaluate_model(core::ModelKind::kGdbt, ds,
                                        data::FeatureSetSpec::parse(g), cfg);
    if (r.valid) {
      std::printf("%-8s %8.0f %8.0f %8.2f %10.2f\n", g, r.mae, r.rmse,
                  r.weighted_f1, r.low_recall);
    } else {
      std::printf("%-8s %8s\n", g, "n/a");
    }
  }

  // --- Explain (paper Fig. 22) ---
  const auto spec = data::FeatureSetSpec::parse("T+M+C");
  const auto built = data::build_features(ds, spec, cfg.features);
  ml::GbdtRegressor model(cfg.gbdt);
  model.fit(built.x, built.y_reg);
  const auto imp = model.feature_importance();
  std::printf("\nGDBT feature importance (T+M+C):\n");
  for (std::size_t f = 0; f < imp.size(); ++f) {
    std::printf("  %-22s %5.1f%%\n", built.feature_names[f].c_str(),
                100.0 * imp[f]);
  }
  return 0;
}

// Crowdsourced 5G throughput mapping — the paper's §8.2 vision: many
// users' UEs contribute measurement campaigns; the platform fuses them
// into one map with per-cell contributor support, down-weighting devices
// with poor GPS. A single user covers a sliver of the area; the crowd
// covers it all.
//
// Usage: ./examples/crowdsourced_map [n_users]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/crowd.h"
#include "sim/areas.h"

int main(int argc, char** argv) {
  using namespace lumos;
  const int n_users = argc > 1 ? std::atoi(argv[1]) : 6;

  const sim::Area area = sim::make_intersection();
  const sim::MeasurementCollector collector(area.env);

  std::vector<core::Contribution> uploads;
  Rng seeder(31);
  std::printf("simulating %d contributors...\n", n_users);
  for (int u = 0; u < n_users; ++u) {
    // Each user walks a couple of (different) trajectories once.
    data::Dataset ds;
    sim::CollectorConfig cfg;
    cfg.n_runs = 1;
    sim::MotionConfig walk;
    const std::size_t t0 = static_cast<std::size_t>(u) % area.walking.size();
    const std::size_t t1 =
        (static_cast<std::size_t>(u) + 5) % area.walking.size();
    collector.collect(area.walking[t0], walk, {}, cfg, seeder.next_u64(), ds);
    collector.collect(area.walking[t1], walk, {}, cfg, seeder.next_u64(), ds);
    ds.clean();
    // Weight by the upload's GPS quality (mean reported accuracy).
    double err = 0.0;
    for (const auto& s : ds.samples()) err += s.gps_accuracy_m;
    err /= static_cast<double>(std::max<std::size_t>(1, ds.size()));
    core::Contribution c;
    c.samples = std::move(ds);
    c.weight = 1.0 / (1.0 + err);
    std::printf("  user %d: %zu samples, gps %.1f m, weight %.2f\n", u,
                c.samples.size(), err, c.weight);
    uploads.push_back(std::move(c));
  }

  // Single-user map vs crowd map.
  const auto solo = core::CrowdMap::build({uploads.front()});
  const auto crowd = core::CrowdMap::build(uploads);

  std::printf("\n%-28s %10s %10s\n", "", "1 user", "crowd");
  std::printf("---------------------------------------------------\n");
  std::printf("%-28s %10zu %10zu\n", "measured ~2m cells",
              solo.cells().size(), crowd.cells().size());
  std::printf("%-28s %9.0f%% %9.0f%%\n", "cells with >=2 contributors",
              100.0 * solo.fraction_with_support(2),
              100.0 * crowd.fraction_with_support(2));

  // Between-user agreement where at least 3 users overlap.
  double cv_sum = 0.0;
  std::size_t cv_n = 0;
  for (const auto& [key, c] : crowd.cells()) {
    if (c.contributors >= 3) {
      cv_sum += c.between_user_cv;
      ++cv_n;
    }
  }
  if (cv_n > 0) {
    std::printf("%-28s %10s %9.2f\n", "between-user CV (>=3 users)", "-",
                cv_sum / static_cast<double>(cv_n));
  }
  std::printf(
      "\nThe crowd map covers far more cells and exposes where users "
      "disagree (direction/device effects) — exactly the confidence signal "
      "a 5G-aware app needs (paper §8.2).\n");
  return 0;
}

// Server-loop quickstart: the resilient long-running serving layer on top
// of the flattened Predictor — what serve_quickstart's one-shot batch call
// becomes when it has to run for months.
//
//   1. Train a per-area model and compile it into a serve::Server with a
//      bounded queue, deadlines, watermark degradation, and session LRU/TTL.
//   2. Pump steady per-UE traffic through submit()/step() and watch the
//      tier column: under calm load everything answers from tier 0.
//   3. Flood the queue past the degrade watermarks: the same UEs are now
//      answered from cheaper tiers (reported honestly), and past the shed
//      watermark requests get typed kOverloaded rejections.
//   4. Hot-reload the model artifact mid-traffic — once with bytes damaged
//      in flight (rolled back, old model keeps serving), once intact
//      (atomic swap, generation bumps).
//
// Everything runs on a ManualClock so the demo is deterministic; a real
// deployment passes a lumos::SteadyClock instead and nothing else changes.
//
// Build & run:  ./examples/server_loop
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/clock.h"
#include "core/lumos5g.h"
#include "serve/model_io.h"
#include "serve/predictor.h"
#include "serve/server.h"
#include "sim/areas.h"

int main() {
  using namespace lumos;

  std::printf("collecting simulated airport campaign...\n");
  const data::Dataset ds =
      sim::collect_area_dataset(sim::make_airport(), /*walk_runs=*/8,
                                /*drive_runs=*/0, /*seed=*/1);

  core::Lumos5GConfig model_cfg;
  model_cfg.feature_spec = data::FeatureSetSpec::parse("T+M+C");
  model_cfg.gbdt.n_estimators = 150;
  core::Lumos5G trainer(model_cfg);
  if (const auto r = trainer.train(ds); !r) {
    std::printf("training failed: %s\n", r.error().describe().c_str());
    return 1;
  }
  auto predictor = serve::Predictor::compile(trainer);
  if (!predictor) {
    std::printf("compile failed: %s\n", predictor.error().describe().c_str());
    return 1;
  }

  // 1. A small server so the pressure mechanics are visible at demo scale.
  serve::ServerConfig cfg;
  cfg.queue_capacity = 16;
  cfg.shed_watermark = 0.75;          // shed at 12 queued
  cfg.degrade_watermarks = {0.25, 0.5};  // tier floor 1 at 4, 2 at 8
  cfg.default_deadline_ms = 2'000;
  cfg.max_sessions = 8;
  ManualClock clock;
  serve::Server server(std::move(*predictor), cfg, clock);

  const auto runs = ds.runs();
  // Each UE replays its own run in order, so session windows see forward
  // timestamps just as a live device would deliver them.
  std::size_t next_t[8] = {};
  const auto sample_for = [&](std::uint64_t ue) {
    const auto& run = runs[ue % runs.size()];
    return ds[run[(20 + next_t[ue]++) % run.size()]];
  };

  // Warm each UE's rolling window so the C-group lag features are
  // available and calm traffic can answer from the full tier-0 model.
  for (std::size_t t = 0; t < 32; ++t) {
    clock.advance_ms(1'000);
    (void)server.submit({t % 4, sample_for(t % 4), 0});
    (void)server.step();
  }

  // 2. Calm traffic: one UE request per virtual second, served immediately.
  std::printf("\n-- calm load: one request per tick --\n");
  for (std::size_t t = 0; t < 8; ++t) {
    clock.advance_ms(1'000);
    (void)server.submit({t % 4, sample_for(t % 4), 0});
    for (const auto& r : server.step()) {
      if (r.result) {
        std::printf("  tick %zu  ue%ju  %7.0f Mbps  tier %d  floor %zu\n", t,
                    static_cast<std::uintmax_t>(r.ue_id),
                    r.result->throughput_mbps, r.result->tier, r.min_tier);
      }
    }
  }

  // 3. Flood: 14 submissions against a capacity of 16 crosses both degrade
  //    watermarks and then the shed watermark.
  std::printf("\n-- flood: 14 requests in one tick --\n");
  std::size_t shed = 0;
  for (std::size_t i = 0; i < 14; ++i) {
    if (!server.submit({i % 8, sample_for(i % 8), 0})) ++shed;
  }
  std::printf("  queue %zu deep, %zu shed as kOverloaded\n",
              server.queue_depth(), shed);
  while (server.queue_depth() > 0) {
    for (const auto& r : server.step()) {
      if (r.result) {
        std::printf("  ue%ju  %7.0f Mbps  tier %d  (floor was %zu)\n",
                    static_cast<std::uintmax_t>(r.ue_id),
                    r.result->throughput_mbps, r.result->tier, r.min_tier);
      }
    }
  }

  // 4. Hot reload: a damaged artifact rolls back, an intact one swaps in.
  const auto path =
      std::filesystem::temp_directory_path() / "lumos_server_loop.l5gm";
  std::string bytes = serve::save_bytes(trainer);
  std::string damaged = bytes;
  damaged[damaged.size() / 3] ^= 0x10;

  std::printf("\n-- hot reload --\n");
  (void)serve::write_artifact(path, damaged);
  if (const auto r = server.reload(path); !r) {
    std::printf("  damaged artifact: %s\n", r.error().describe().c_str());
  }
  std::printf("  still serving generation %ju\n",
              static_cast<std::uintmax_t>(server.model_generation()));

  (void)serve::write_artifact(path, bytes);
  if (const auto r = server.reload(path); !r) {
    std::printf("  reload failed: %s\n", r.error().describe().c_str());
    return 1;
  }
  std::printf("  intact artifact swapped in: now generation %ju\n",
              static_cast<std::uintmax_t>(server.model_generation()));
  std::filesystem::remove(path);

  const auto& st = server.stats();
  std::printf("\nstats: %ju submitted, %ju served, %ju shed, %ju reloads ok, "
              "%ju rolled back\n",
              static_cast<std::uintmax_t>(st.submitted),
              static_cast<std::uintmax_t>(st.served),
              static_cast<std::uintmax_t>(st.shed),
              static_cast<std::uintmax_t>(st.reloads_ok),
              static_cast<std::uintmax_t>(st.reloads_failed));
  server.begin_shutdown();
  return 0;
}

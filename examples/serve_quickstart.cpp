// Serving quickstart: the paper's consumer story (§2.3, Fig. 4) end to
// end — train a per-area predictor once, save it as a binary artifact,
// reload it (as a freshly deployed device would), compile it into the
// flattened serving runtime, and answer a fleet of per-UE sessions.
//
//   1. Train core::Lumos5G with the T+M+C fallback chain on a simulated
//      airport campaign.
//   2. serve::save_model -> one versioned .l5gm artifact on disk.
//   3. serve::load_lumos5g + serve::Predictor::compile -> flattened
//      serving snapshot (16-byte nodes, iterative traversal).
//   4. Feed per-UE Sessions and predict_batch over the thread pool,
//      verifying the reloaded runtime matches the trainer bit for bit.
//
// Build & run:  ./examples/serve_quickstart
#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>

#include "core/lumos5g.h"
#include "serve/model_io.h"
#include "serve/predictor.h"
#include "sim/areas.h"

int main() {
  using namespace lumos;

  std::printf("collecting simulated airport campaign...\n");
  const data::Dataset ds =
      sim::collect_area_dataset(sim::make_airport(), /*walk_runs=*/8,
                                /*drive_runs=*/0, /*seed=*/1);
  std::printf("  %zu per-second samples\n", ds.size());

  // 1. Train the full fallback chain: T+M+C -> L+M+C -> L+M.
  core::Lumos5GConfig cfg;
  cfg.feature_spec = data::FeatureSetSpec::parse("T+M+C");
  cfg.gbdt.n_estimators = 150;
  core::Lumos5G trainer(cfg);
  if (const auto r = trainer.train(ds); !r) {
    std::printf("training failed: %s\n", r.error().describe().c_str());
    return 1;
  }

  // 2. Save one artifact.
  const auto path =
      std::filesystem::temp_directory_path() / "lumos_airport.l5gm";
  if (const auto r = serve::save_model(trainer, path); !r) {
    std::printf("save failed: %s\n", r.error().describe().c_str());
    return 1;
  }
  std::printf("saved artifact: %s (%ju bytes)\n", path.c_str(),
              static_cast<std::uintmax_t>(std::filesystem::file_size(path)));

  // 3. Reload and compile, as a serving process would at startup.
  const auto bytes = serve::read_artifact(path);
  if (!bytes) {
    std::printf("read failed: %s\n", bytes.error().describe().c_str());
    return 1;
  }
  const auto reloaded = serve::load_lumos5g(*bytes);
  if (!reloaded) {
    std::printf("load failed: %s\n", reloaded.error().describe().c_str());
    return 1;
  }
  const auto predictor = serve::Predictor::compile(*reloaded);
  if (!predictor) {
    std::printf("compile failed: %s\n", predictor.error().describe().c_str());
    return 1;
  }
  std::printf("compiled serving snapshot: %zu flat nodes (%zu KiB)\n",
              predictor->n_nodes(), predictor->n_nodes() * 16 / 1024);

  // 4. Serve a small fleet: one Session per replayed UE.
  const auto runs = ds.runs();
  std::vector<serve::Session> fleet;
  for (std::size_t r = 0; r < runs.size() && fleet.size() < 8; ++r) {
    serve::Session s;
    for (std::size_t i = 20; i < 28 && i < runs[r].size(); ++i) {
      s.observe(ds[runs[r][i]]);
    }
    fleet.push_back(std::move(s));
  }
  const auto batch = predictor->predict_batch(fleet);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto direct = trainer.predict(fleet[i].window());
    if (!batch[i] || !direct) {
      std::printf("  UE%zu: no prediction\n", i);
      continue;
    }
    if (std::bit_cast<std::uint64_t>(batch[i]->throughput_mbps) !=
        std::bit_cast<std::uint64_t>(direct->throughput_mbps)) {
      ++mismatches;
    }
    std::printf("  UE%zu: %7.0f Mbps  class %d  tier %d (%s)\n", i,
                batch[i]->throughput_mbps, batch[i]->throughput_class,
                batch[i]->tier, batch[i]->feature_group.c_str());
  }
  std::filesystem::remove(path);

  if (mismatches != 0) {
    std::printf("FAIL: %zu reloaded predictions differ from the trainer\n",
                mismatches);
    return 1;
  }
  std::printf("reloaded serving runtime matches the trainer bit for bit\n");
  return 0;
}
